module github.com/clasp-measurement/clasp

go 1.22
