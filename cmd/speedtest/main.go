// Command speedtest runs a real speed test against a server speaking one of
// the three supported protocols, optionally shaping the connection with the
// token-bucket limiter that stands in for the paper's tc setup.
//
// Usage:
//
//	speedtest -platform ookla   -server 127.0.0.1:8080
//	speedtest -platform mlab    -server 127.0.0.1:8081
//	speedtest -platform comcast -server 127.0.0.1:8081
//
// Flags:
//
//	-duration D     per-direction duration (default 5s)
//	-down-cap M     shape the receive direction at M Mbps (0 = unshaped)
//	-up-cap M       shape the send direction at M Mbps (0 = unshaped)
//	-json           print the result as JSON
//	-metrics-out F  enable metrics; write a Prometheus dump of the client's
//	                transfer counters to F after the test
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"github.com/clasp-measurement/clasp/internal/obs"
	"github.com/clasp-measurement/clasp/internal/shaper"
	"github.com/clasp-measurement/clasp/internal/speedtest"
	"github.com/clasp-measurement/clasp/internal/speedtest/ndt7"
	"github.com/clasp-measurement/clasp/internal/speedtest/ookla"
	"github.com/clasp-measurement/clasp/internal/speedtest/xfinity"
)

func main() {
	platform := flag.String("platform", "ookla", "protocol: ookla, mlab, comcast")
	server := flag.String("server", "127.0.0.1:8080", "server host:port")
	duration := flag.Duration("duration", 5*time.Second, "per-direction duration")
	downCap := flag.Float64("down-cap", 0, "receive shaping in Mbps (tc substitute)")
	upCap := flag.Float64("up-cap", 0, "send shaping in Mbps (tc substitute)")
	asJSON := flag.Bool("json", false, "JSON output")
	metricsOut := flag.String("metrics-out", "", "enable metrics and write a Prometheus text dump to this file")
	flag.Parse()
	if *metricsOut != "" {
		obs.SetEnabled(true)
	}

	dial := func(ctx context.Context, addr string) (net.Conn, error) {
		d := net.Dialer{Timeout: 10 * time.Second}
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			return nil, err
		}
		if *downCap > 0 || *upCap > 0 {
			conn = shaper.NewConn(conn, shaper.Options{ReadMbps: *downCap, WriteMbps: *upCap})
		}
		return conn, nil
	}

	var client speedtest.Client
	switch *platform {
	case "ookla":
		c := ookla.NewClient(ookla.Config{DownloadDuration: *duration, UploadDuration: *duration})
		c.Dial = dial
		client = c
	case "mlab":
		client = ndt7.NewClient(ndt7.Config{Duration: *duration, Dial: dial})
	case "comcast":
		client = xfinity.NewClient(xfinity.Config{Duration: *duration})
	default:
		log.Fatalf("speedtest: unknown platform %q", *platform)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 4**duration+30*time.Second)
	defer cancel()
	res, err := client.Run(ctx, *server)
	if err != nil {
		log.Fatalf("speedtest: %v", err)
	}
	if *metricsOut != "" {
		r := obs.Default()
		r.Counter("speedtest_bytes_total", "platform", res.Platform, "dir", "down").Add(uint64(res.BytesDown))
		r.Counter("speedtest_bytes_total", "platform", res.Platform, "dir", "up").Add(uint64(res.BytesUp))
		r.Histogram("speedtest_latency_ms").Observe(res.LatencyMs)
		f, err := os.Create(*metricsOut)
		if err != nil {
			log.Fatalf("speedtest: metrics-out: %v", err)
		}
		if err := r.WriteProm(f); err != nil {
			log.Fatalf("speedtest: metrics-out: %v", err)
		}
		f.Close()
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Printf("platform: %s  server: %s\n", res.Platform, res.Server)
	fmt.Printf("latency:  %8.2f ms\n", res.LatencyMs)
	fmt.Printf("download: %8.2f Mbps (%d bytes)\n", res.DownloadMbps, res.BytesDown)
	fmt.Printf("upload:   %8.2f Mbps (%d bytes)\n", res.UploadMbps, res.BytesUp)
}
