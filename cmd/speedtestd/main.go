// Command speedtestd serves all three speed test protocols on localhost:
// the Ookla TCP line protocol, M-Lab's ndt7 over WebSocket, and a Comcast
// Xfinity-style HTTP test, plus a server directory endpoint — a miniature
// of the infrastructure CLASP measures against.
//
// Usage:
//
//	speedtestd [-ookla :8080] [-http :8081] [-duration 10s]
//	           [-scrape-interval 5s] [-telemetry-retention 1h]
//	           [-telemetry-out self.blk]
//
// The HTTP listener serves ndt7 (/ndt/v7/download, /ndt/v7/upload), the
// Xfinity endpoints (/speedtest/*), and /servers.json. Live telemetry is
// exposed on the same listener: GET /metrics serves the obs registry in
// Prometheus text format, /debug/vars serves expvar JSON (full registry
// snapshot under "clasp_obs"), /debug/obs/history serves windowed JSON
// queries over the daemon's scraped self-telemetry store, and
// /debug/pprof/* serves the standard profiling endpoints. Every request is
// timed into the speedtestd_http_request_duration_ns{route,status}
// histogram family; the scrape pipeline samples the whole registry into a
// columnar tsdb store on -scrape-interval, keeps -telemetry-retention of
// history, and dumps it to -telemetry-out (block-file format, readable
// with tsdb.OpenBlockFile) on shutdown.
package main

import (
	"context"
	"flag"
	"log"
	"os/signal"
	"syscall"
	"time"

	"github.com/clasp-measurement/clasp/internal/daemon"
)

// shutdownTimeout bounds the graceful drain after SIGINT/SIGTERM: ongoing
// speed tests may finish within it, then remaining connections are closed.
const shutdownTimeout = 15 * time.Second

func main() {
	ooklaAddr := flag.String("ookla", "127.0.0.1:8080", "Ookla protocol listen address")
	httpAddr := flag.String("http", "127.0.0.1:8081", "HTTP listen address (ndt7 + xfinity + directory)")
	duration := flag.Duration("duration", 10*time.Second, "ndt7 test duration")
	scrapeInterval := flag.Duration("scrape-interval", 5*time.Second, "self-telemetry scrape cadence")
	retention := flag.Duration("telemetry-retention", time.Hour, "self-telemetry history retention (0 keeps everything)")
	telemetryOut := flag.String("telemetry-out", "", "write the scraped self-telemetry store to this block file on shutdown")
	flag.Parse()

	ret := *retention
	if ret == 0 {
		ret = -1 // daemon.Config: <0 keeps everything, 0 means default
	}
	d, err := daemon.Start(daemon.Config{
		OoklaAddr:      *ooklaAddr,
		HTTPAddr:       *httpAddr,
		NDT7Duration:   *duration,
		ScrapeInterval: *scrapeInterval,
		Retention:      ret,
		TelemetryOut:   *telemetryOut,
		Logf:           log.Printf,
	})
	if err != nil {
		log.Fatalf("speedtestd: %v", err)
	}

	// Serve until interrupted, then drain: in-flight tests get up to
	// shutdownTimeout to finish before the listeners are torn down.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-d.Err():
		log.Fatalf("speedtestd: %v", err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("shutting down (waiting up to %s for in-flight tests)", shutdownTimeout)
	sctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	if err := d.Shutdown(sctx); err != nil {
		log.Printf("speedtestd: shutdown: %v", err)
	}
}
