// Command speedtestd serves all three speed test protocols on localhost:
// the Ookla TCP line protocol, M-Lab's ndt7 over WebSocket, and a Comcast
// Xfinity-style HTTP test, plus a server directory endpoint — a miniature
// of the infrastructure CLASP measures against.
//
// Usage:
//
//	speedtestd [-ookla :8080] [-http :8081] [-duration 10s]
//
// The HTTP listener serves ndt7 (/ndt/v7/download, /ndt/v7/upload), the
// Xfinity endpoints (/speedtest/*), and /servers.json. Live telemetry is
// exposed on the same listener: GET /metrics serves the obs registry in
// Prometheus text exposition format and /debug/vars serves expvar JSON
// (including the full registry snapshot under the "clasp_obs" key).
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"github.com/clasp-measurement/clasp/internal/obs"
	"github.com/clasp-measurement/clasp/internal/speedtest"
	"github.com/clasp-measurement/clasp/internal/speedtest/ndt7"
	"github.com/clasp-measurement/clasp/internal/speedtest/ookla"
	"github.com/clasp-measurement/clasp/internal/speedtest/xfinity"
)

// shutdownTimeout bounds the graceful drain after SIGINT/SIGTERM: ongoing
// speed tests may finish within it, then remaining connections are closed.
const shutdownTimeout = 15 * time.Second

// obsRequests counts every HTTP request the daemon serves, by method.
var obsRequests = obs.Default().Counter("speedtestd_http_requests_total")

// countRequests wraps a handler with the request counter.
func countRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		obsRequests.Inc()
		next.ServeHTTP(w, r)
	})
}

func main() {
	ooklaAddr := flag.String("ookla", "127.0.0.1:8080", "Ookla protocol listen address")
	httpAddr := flag.String("http", "127.0.0.1:8081", "HTTP listen address (ndt7 + xfinity + directory)")
	duration := flag.Duration("duration", 10*time.Second, "ndt7 test duration")
	flag.Parse()

	// A long-lived daemon always runs with live metrics on; the registry's
	// cost is a handful of atomic adds per request.
	obs.SetEnabled(true)
	expvar.Publish("clasp_obs", expvar.Func(func() any { return obs.Default().Snapshot() }))

	srv, err := ookla.Listen(*ooklaAddr)
	if err != nil {
		log.Fatalf("speedtestd: %v", err)
	}
	log.Printf("ookla protocol on %s", srv.Addr())

	ln, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		log.Fatalf("speedtestd: %v", err)
	}
	log.Printf("ndt7 + xfinity + directory on http://%s", ln.Addr())

	directory := speedtest.NewDirectory([]speedtest.ServerInfo{
		{ID: 1, Platform: "ookla", Host: srv.Addr().String(), City: "localhost", Country: "US", Sponsor: "clasp"},
		{ID: 2, Platform: "mlab", Host: ln.Addr().String(), City: "localhost", Country: "US", Sponsor: "clasp"},
		{ID: 3, Platform: "comcast", Host: ln.Addr().String(), City: "localhost", Country: "US", Sponsor: "clasp"},
	})

	mux := http.NewServeMux()
	ndt := &ndt7.Handler{Duration: *duration}
	mux.Handle(ndt7.DownloadPath, ndt)
	mux.Handle(ndt7.UploadPath, ndt)
	xf := &xfinity.Handler{}
	mux.Handle(xfinity.LatencyPath, xf)
	mux.Handle(xfinity.DownloadPath, xf)
	mux.Handle(xfinity.UploadPath, xf)
	mux.Handle("/servers.json", directory)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = obs.Default().WriteProm(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "clasp speedtestd: /servers.json, /ndt/v7/{download,upload}, /speedtest/{latency,download,upload}, /metrics, /debug/vars")
	})

	// Serve until interrupted, then drain: in-flight tests get up to
	// shutdownTimeout to finish before the listener is torn down, so a
	// Ctrl-C mid-test no longer drops connections on the floor.
	httpSrv := &http.Server{Handler: countRequests(mux)}
	errc := make(chan error, 1)
	go func() {
		if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		log.Fatalf("speedtestd: %v", err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("shutting down (waiting up to %s for in-flight tests)", shutdownTimeout)
	sctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	// Both listeners drain symmetrically under the same deadline: the HTTP
	// side (ndt7/xfinity) and the Ookla TCP server each stop accepting and
	// let in-flight tests finish before remaining connections are severed.
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if err := httpSrv.Shutdown(sctx); err != nil {
			log.Printf("speedtestd: forced http shutdown: %v", err)
		}
	}()
	go func() {
		defer wg.Done()
		if err := srv.Shutdown(sctx); err != nil {
			log.Printf("speedtestd: forced ookla shutdown: %v", err)
		}
	}()
	wg.Wait()
}
