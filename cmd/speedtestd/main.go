// Command speedtestd serves all three speed test protocols on localhost:
// the Ookla TCP line protocol, M-Lab's ndt7 over WebSocket, and a Comcast
// Xfinity-style HTTP test, plus a server directory endpoint — a miniature
// of the infrastructure CLASP measures against.
//
// Usage:
//
//	speedtestd [-ookla :8080] [-http :8081] [-duration 10s]
//
// The HTTP listener serves ndt7 (/ndt/v7/download, /ndt/v7/upload), the
// Xfinity endpoints (/speedtest/*), and /servers.json.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"github.com/clasp-measurement/clasp/internal/speedtest"
	"github.com/clasp-measurement/clasp/internal/speedtest/ndt7"
	"github.com/clasp-measurement/clasp/internal/speedtest/ookla"
	"github.com/clasp-measurement/clasp/internal/speedtest/xfinity"
)

func main() {
	ooklaAddr := flag.String("ookla", "127.0.0.1:8080", "Ookla protocol listen address")
	httpAddr := flag.String("http", "127.0.0.1:8081", "HTTP listen address (ndt7 + xfinity + directory)")
	duration := flag.Duration("duration", 10*time.Second, "ndt7 test duration")
	flag.Parse()

	srv, err := ookla.Listen(*ooklaAddr)
	if err != nil {
		log.Fatalf("speedtestd: %v", err)
	}
	defer srv.Close()
	log.Printf("ookla protocol on %s", srv.Addr())

	ln, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		log.Fatalf("speedtestd: %v", err)
	}
	log.Printf("ndt7 + xfinity + directory on http://%s", ln.Addr())

	directory := speedtest.NewDirectory([]speedtest.ServerInfo{
		{ID: 1, Platform: "ookla", Host: srv.Addr().String(), City: "localhost", Country: "US", Sponsor: "clasp"},
		{ID: 2, Platform: "mlab", Host: ln.Addr().String(), City: "localhost", Country: "US", Sponsor: "clasp"},
		{ID: 3, Platform: "comcast", Host: ln.Addr().String(), City: "localhost", Country: "US", Sponsor: "clasp"},
	})

	mux := http.NewServeMux()
	ndt := &ndt7.Handler{Duration: *duration}
	mux.Handle(ndt7.DownloadPath, ndt)
	mux.Handle(ndt7.UploadPath, ndt)
	xf := &xfinity.Handler{}
	mux.Handle(xfinity.LatencyPath, xf)
	mux.Handle(xfinity.DownloadPath, xf)
	mux.Handle(xfinity.UploadPath, xf)
	mux.Handle("/servers.json", directory)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "clasp speedtestd: /servers.json, /ndt/v7/{download,upload}, /speedtest/{latency,download,upload}")
	})

	log.Fatal(http.Serve(ln, mux))
}
