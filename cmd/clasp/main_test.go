package main

import (
	"testing"
)

func TestRunUsageErrors(t *testing.T) {
	cases := [][]string{
		nil,
		{"frobnicate"},
		{"select"},
		{"select", "a", "b"},
		{"campaign"},
		{"report"},
		{"report", "fig99", "-scale", "0.1", "-days", "1"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v): want error", args)
		}
	}
}

func TestRunSelect(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	if err := run([]string{"select", "us-west1", "-scale", "0.1", "-seed", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCampaignAndReports(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	if err := run([]string{"campaign", "us-east1", "-scale", "0.1", "-days", "2"}); err != nil {
		t.Fatal(err)
	}
	for _, artifact := range []string{"table1", "fig3", "fig5", "fig6b", "fig7"} {
		if err := run([]string{"report", artifact, "-scale", "0.1", "-days", "2"}); err != nil {
			t.Fatalf("report %s: %v", artifact, err)
		}
	}
}

func TestRunUnknownRegion(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	if err := run([]string{"campaign", "mars-central1", "-scale", "0.1", "-days", "1"}); err == nil {
		t.Error("unknown region: want error")
	}
}
