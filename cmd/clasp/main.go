// Command clasp runs CLASP campaigns and regenerates the paper's tables
// and figures against the built-in simulated Internet.
//
// Usage:
//
//	clasp report <artifact> [flags]   regenerate a paper artifact:
//	                                  table1, fig2, fig3, fig4a, fig4b, fig4c,
//	                                  fig5, fig6a, fig6b, fig6c, fig7, fig8,
//	                                  headlines, all
//	clasp select <region> [flags]     run both selection methods for a region
//	clasp campaign <region> [flags]   run a topology campaign and print the
//	                                  congestion report
//	clasp costs [flags]               show the simulated cloud bill after a
//	                                  one-week all-region campaign
//	clasp run <scenario.json>         run one declarative scenario spec
//	                                  (see examples/scenarios/)
//	clasp fleet <dir>                 run every scenario spec in a directory
//	                                  concurrently over one shared topology;
//	                                  output is byte-identical to running
//	                                  each scenario alone
//	clasp resume <checkpoint>         continue a campaign from a checkpoint
//	                                  directory written by -checkpoint-dir;
//	                                  the finished run's output is
//	                                  byte-identical to a never-killed run
//
// Flags (ignored by run/fleet, which read everything from the spec):
//
//	-seed N         simulation seed (default 1)
//	-scale F        topology scale, 1.0 = paper scale (default 0.25)
//	-days N         campaign length in virtual days (default 30)
//	-samples N      differential-scan minimum tuple samples (default scales
//	                with the topology)
//	-parallelism N  concurrent VM workers per campaign round and analysis
//	                workers per report (default 1; campaigns and reports
//	                are identical at any value for the same seed)
//	-fault-profile P  fault-injection profile: none (default), flaky-vm,
//	                congested-server, or outage; campaigns retry, degrade and
//	                account for the injected failures deterministically per
//	                seed
//	-max-memory N   campaign record memory budget in MB (default 0 =
//	                unbounded); campaigns exceeding it stream records
//	                through a compressed, disk-spilled columnar log, with
//	                byte-identical reports
//	-spill-dir D    directory for spilled record logs (default: the system
//	                temp dir); spill files are unlinked at creation
//	-checkpoint-dir D      enable campaign checkpointing: commit progress and
//	                records under D by atomic rename; continue a killed run
//	                with `clasp resume D`
//	-checkpoint-every N    checkpoint every N campaign rounds (default 1
//	                once -checkpoint-dir is set)
//	-checkpoint-vm-hours N checkpoint once N VM-hours accrue since the last
//	                checkpoint, instead of a round cadence
//	-metrics-out F  enable metrics; write a Prometheus text dump to F and a
//	                JSON snapshot to F.json when the command finishes
//	-debug-addr A   enable metrics and serve live introspection on A while
//	                the command runs: /metrics (Prometheus text), /progress
//	                (per-region campaign progress, breaker state and ETA),
//	                /debug/obs/history (windowed queries over a 5s-cadence
//	                scrape of the registry) and /debug/pprof/*
//	-tracelog F     enable tracing; append span events as JSON lines to F
//	-cpuprofile F   write a CPU profile to file F
//	-memprofile F   write an allocation profile to file F on exit
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"github.com/clasp-measurement/clasp/internal/checkpoint"
	"github.com/clasp-measurement/clasp/internal/core"
	"github.com/clasp-measurement/clasp/internal/faults"
	"github.com/clasp-measurement/clasp/internal/obs"
	"github.com/clasp-measurement/clasp/internal/scenario"
	"github.com/clasp-measurement/clasp/internal/telemetry"

	clasp "github.com/clasp-measurement/clasp"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "clasp:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: clasp <report|select|campaign|costs|run|fleet|resume> ... (see -h)")
	}
	cmd, rest := args[0], args[1:]

	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "simulation seed")
	scale := fs.Float64("scale", 0.25, "topology scale (1.0 = paper scale)")
	days := fs.Int("days", 30, "campaign length in virtual days")
	samples := fs.Int("samples", 0, "differential-scan minimum tuple samples")
	parallelism := fs.Int("parallelism", 1, "concurrent VM workers per campaign round and analysis workers per report")
	faultProfile := fs.String("fault-profile", "none",
		fmt.Sprintf("fault-injection profile (%s)", strings.Join(faults.Names(), ", ")))
	maxMemory := fs.Int("max-memory", 0, "campaign record memory budget in MB (0 = unbounded); larger campaigns stream through a compressed spillable log")
	spillDir := fs.String("spill-dir", "", "directory for spilled record logs (default: the system temp dir)")
	checkpointDir := fs.String("checkpoint-dir", "", "enable campaign checkpointing into this directory; continue a killed run with `clasp resume`")
	checkpointEvery := fs.Int("checkpoint-every", 0, "checkpoint every N campaign rounds (default 1 once -checkpoint-dir is set)")
	checkpointVMHours := fs.Int("checkpoint-vm-hours", 0, "checkpoint once N VM-hours accrue since the last checkpoint")
	metricsOut := fs.String("metrics-out", "", "enable metrics and write Prometheus text to this file (JSON snapshot beside it as <file>.json)")
	debugAddr := fs.String("debug-addr", "", "enable metrics and serve live introspection (/metrics, /progress, /debug/obs/history, /debug/pprof/) on this address while the command runs")
	tracelog := fs.String("tracelog", "", "enable tracing and write span events as JSON lines to this file")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write an allocation profile to this file on exit")

	// Subcommand positional arguments come before flags.
	var positional []string
	for len(rest) > 0 && !strings.HasPrefix(rest[0], "-") {
		positional = append(positional, rest[0])
		rest = rest[1:]
	}
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		defer func() {
			runtime.GC() // flush up-to-date allocation stats
			_ = pprof.WriteHeapProfile(f)
			f.Close()
		}()
	}
	minSamples := *samples
	if minSamples == 0 {
		// Scale the paper's >=100 rule with the VP population.
		minSamples = int(100 * *scale)
		if minSamples < 6 {
			minSamples = 6
		}
	}

	// Telemetry: any of these flags turns the obs registry on; campaign
	// results are bit-identical with it on or off. The metrics dump is
	// written after the command finishes (even a failed one — a partial
	// campaign's telemetry is exactly what a failure investigation wants).
	if *metricsOut != "" || *tracelog != "" || *debugAddr != "" {
		obs.SetEnabled(true)
	}
	if *debugAddr != "" {
		// Live introspection while the command runs: the orchestrator
		// publishes per-region progress/ETA gauges the /progress endpoint
		// renders, and a background scrape pipeline gives /debug/obs/history
		// real time-series depth. Both are pure observers of the registry.
		pipe := telemetry.NewPipeline(telemetry.PipelineConfig{})
		pipe.Start()
		defer pipe.Stop()
		dbg, err := telemetry.StartDebug(*debugAddr, telemetry.Introspection{
			History:  pipe.Store,
			Progress: true,
		})
		if err != nil {
			return fmt.Errorf("debug-addr: %w", err)
		}
		fmt.Fprintf(os.Stderr, "clasp: introspection on http://%s (/metrics /progress /debug/obs/history /debug/pprof/)\n", dbg.Addr())
		defer dbg.Close()
	}
	if *tracelog != "" {
		f, err := os.Create(*tracelog)
		if err != nil {
			return fmt.Errorf("tracelog: %w", err)
		}
		bw := bufio.NewWriter(f)
		obs.SetTraceWriter(bw)
		defer func() {
			obs.SetTraceWriter(nil)
			_ = bw.Flush()
			f.Close()
		}()
	}

	out := os.Stdout

	// Scenario commands build their own platforms from the spec; the flag
	// set above configures only the classic subcommands.
	var cmdErr error
	switch cmd {
	case "run", "fleet":
		cmdErr = scenarioCmd(cmd, positional, out)
	case "resume":
		// The engine is rebuilt from the checkpoint's campaign identity;
		// only the runtime knobs (parallelism, memory budget) come from
		// flags — both may differ from the killed run without changing
		// output.
		cmdErr = resumeCmd(positional, out, *parallelism, *maxMemory, *spillDir)
	default:
		p, err := clasp.New(clasp.Options{
			Seed:              *seed,
			Scale:             *scale,
			Parallelism:       *parallelism,
			FaultProfile:      *faultProfile,
			MaxMemoryMB:       *maxMemory,
			SpillDir:          *spillDir,
			CheckpointDir:     *checkpointDir,
			CheckpointEvery:   *checkpointEvery,
			CheckpointVMHours: *checkpointVMHours,
		})
		if err != nil {
			return err
		}
		cmdErr = dispatch(cmd, positional, p, p.Engine(), out, *days, minSamples)
	}
	if *metricsOut != "" {
		if err := writeMetricsDump(*metricsOut); err != nil {
			if cmdErr != nil {
				return fmt.Errorf("%w (also: %v)", cmdErr, err)
			}
			return err
		}
	}
	return cmdErr
}

// costsDays is the campaign length of the `costs` command's all-region
// deployment, matching the paper's one-week bill.
const costsDays = 7

// costsRefs is the campaign set `costs` runs, in plan order.
func costsRefs() []core.CampaignRef {
	refs := make([]core.CampaignRef, len(core.TopologyRegions))
	for i, r := range core.TopologyRegions {
		refs[i] = core.CampaignRef{Kind: "topology", Region: r, Days: costsDays}
	}
	return refs
}

// printCosts renders the simulated bill after the costs campaign set.
func printCosts(out *os.File, p *clasp.Platform) {
	egress, storage, compute := p.Costs()
	fmt.Fprintf(out, "Simulated 7-day all-region bill:\n")
	fmt.Fprintf(out, "  egress:  $%8.2f\n  storage: $%8.2f\n  compute: $%8.2f\n  total:   $%8.2f\n",
		egress, storage, compute, egress+storage+compute)
	fmt.Fprintf(out, "(the paper's real deployment exceeded USD 6k/month)\n")
}

// resumeCmd continues a checkpointed command or campaign to completion and
// prints the finished run's output — byte-identical to what the
// uninterrupted command would have printed. A directory holding a command
// manifest re-enters the multi-campaign scheduler (finished campaigns are
// skipped, partial ones resume from their watermark, never-started ones
// run fresh); a bare campaign checkpoint takes the single-campaign path.
func resumeCmd(positional []string, out *os.File, parallelism, maxMemory int, spillDir string) error {
	if len(positional) != 1 {
		return fmt.Errorf("usage: clasp resume <checkpoint-dir>")
	}
	man, err := checkpoint.LoadManifest(positional[0])
	if err != nil {
		return err
	}
	if man != nil {
		return resumeCommand(man, positional[0], out, parallelism, maxMemory, spillDir)
	}
	ck, err := checkpoint.Load(positional[0])
	if err != nil {
		return err
	}
	opts := core.ResumeOptions(ck.Meta.Campaign)
	opts.Parallelism = parallelism
	opts.MaxMemoryMB = maxMemory
	opts.SpillDir = spillDir
	eng, err := core.New(opts)
	if err != nil {
		return err
	}
	res, err := eng.ResumeCampaign(ck)
	if err != nil {
		return err
	}
	p := clasp.NewFromCore(eng)
	if ck.Meta.Campaign.Kind == "differential" {
		fmt.Fprintf(out, "Campaign: %d tests over %d hours with %d VMs\n",
			res.Report.Tests, res.Report.Hours, res.Report.VMs)
		tc, err := p.CompareTiers(res)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "Tier comparison for %s over %d paired tests\n", tc.Region, tc.PairedTests)
		fmt.Fprintf(out, "  standard faster: %.1f%% of downloads, %.1f%% of uploads\n",
			tc.StdFasterDownload*100, tc.StdFasterUpload*100)
		return nil
	}
	return printCampaign(out, p, res, true)
}

// resumeCommand re-enters a killed multi-campaign command from its
// manifest: the engine is rebuilt from the recorded identity, a resume
// scheduler attaches the per-campaign checkpoints, and the command's
// normal render path runs — loading finished campaigns from their
// checkpoints, resuming partial ones, and running the rest.
func resumeCommand(man *checkpoint.Manifest, dir string, out *os.File, parallelism, maxMemory int, spillDir string) error {
	if len(man.Campaigns) == 0 {
		return fmt.Errorf("resume: manifest in %s lists no campaigns", dir)
	}
	eng, err := core.New(core.Options{
		Seed:              man.Seed,
		Scale:             man.Scale,
		FaultProfile:      man.FaultProfile,
		CaptureEvery:      man.CaptureEvery,
		TracerouteEvery:   man.TracerouteEvery,
		Parallelism:       parallelism,
		MaxMemoryMB:       maxMemory,
		SpillDir:          spillDir,
		CheckpointDir:     dir,
		CheckpointEvery:   man.Every,
		CheckpointVMHours: man.VMHours,
	})
	if err != nil {
		return err
	}
	p := clasp.NewFromCore(eng)
	name := man.Command
	if man.Artifact != "" {
		name += "-" + man.Artifact
	}
	sched := eng.NewResumeScheduler(name)
	sched.OnSkip = func(camp checkpoint.Campaign) {
		fmt.Fprintf(os.Stderr, "clasp: skipping finished campaign %s\n", checkpoint.CampaignDir(camp))
	}
	switch man.Command {
	case "report":
		cache := scenario.NewArtifactCache()
		cache.UseScheduler(sched)
		return scenario.RenderArtifact(out, p, cache, man.Artifact, man.Days, man.MinSamples)
	case "costs":
		regions := make([]string, len(man.Campaigns))
		for i, c := range man.Campaigns {
			regions[i] = c.Region
		}
		if _, err := p.RunTopologyCampaigns(regions, man.Days); err != nil {
			return err
		}
		printCosts(out, p)
		return nil
	default:
		return fmt.Errorf("resume: manifest in %s has unknown command %q", dir, man.Command)
	}
}

// printCampaign renders a finished campaign exactly like `clasp campaign`:
// the orchestration summary, the resilience line when anything degraded,
// and (optionally) the congestion report.
func printCampaign(out *os.File, p *clasp.Platform, res *core.CampaignResult, congestion bool) error {
	fmt.Fprintf(out, "Campaign: %d tests over %d hours with %d VMs\n",
		res.Report.Tests, res.Report.Hours, res.Report.VMs)
	if r := res.Report; r.Failed+r.Dropped+r.Retried+r.Preemptions+r.VMCreateRetries > 0 {
		fmt.Fprintf(out, "Resilience: %d failed, %d retried, %d dropped, %d preemptions, %d create retries, %d breaker-open rounds\n",
			r.Failed, r.Retried, r.Dropped, r.Preemptions, r.VMCreateRetries, r.BreakerOpenRounds)
	}
	if !congestion {
		return nil
	}
	rep, err := p.CongestionReport(res)
	if err != nil {
		return err
	}
	clasp.WriteReport(out, rep)
	return nil
}

// scenarioCmd runs the declarative-scenario subcommands.
func scenarioCmd(cmd string, positional []string, out *os.File) error {
	if len(positional) != 1 {
		return fmt.Errorf("usage: clasp %s <%s>", cmd, map[string]string{"run": "scenario.json", "fleet": "dir"}[cmd])
	}
	r := scenario.NewRunner()
	if cmd == "fleet" {
		return r.FleetDir(out, positional[0])
	}
	spec, err := scenario.LoadFile(positional[0])
	if err != nil {
		return err
	}
	return r.Run(out, spec)
}

// dispatch runs one classic subcommand against an initialised platform.
func dispatch(cmd string, positional []string, p *clasp.Platform, eng *core.CLASP, out *os.File, days, minSamples int) error {
	switch cmd {
	case "select":
		if len(positional) != 1 {
			return fmt.Errorf("usage: clasp select <region>")
		}
		region := positional[0]
		sel, err := eng.SelectTopologyServers(region)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "Topology-based selection (%s): pilot links %d, server links %d, selected %d (coverage %.1f%%)\n",
			region, sel.PilotLinks.LinkCount(), sel.ServerLinkCount, len(sel.Selected), sel.Coverage()*100)
		for _, s := range sel.Selected {
			fmt.Fprintf(out, "  %-38s %-18s AS%-10d hops=%d rtt=%.1fms far=%s\n",
				s.Server.Host, s.Server.City, s.Server.ASN, s.ASHops, s.RTTms, s.FarIP)
		}
		diff, _, err := eng.SelectDifferentialServers(region, minSamples)
		if err != nil {
			return err
		}
		core.WriteDifferentialSelection(out, region, diff)
		return nil

	case "campaign":
		if len(positional) != 1 {
			return fmt.Errorf("usage: clasp campaign <region>")
		}
		res, err := p.RunTopologyCampaign(positional[0], days)
		if err != nil {
			return err
		}
		return printCampaign(out, p, res, true)

	case "costs":
		// All regions measure concurrently, like the real deployment. The
		// command scheduler accounts whole-command progress and, with
		// -checkpoint-dir set, records the campaign set in a manifest so
		// `clasp resume` can skip whatever already finished.
		sched := eng.NewCommandScheduler("costs")
		if err := sched.WriteManifest("costs", "", costsRefs()); err != nil {
			return err
		}
		if _, err := p.RunTopologyCampaigns(core.TopologyRegions, costsDays); err != nil {
			return err
		}
		printCosts(out, p)
		return nil

	case "report":
		if len(positional) != 1 {
			return fmt.Errorf("usage: clasp report <table1|fig2|...|all>")
		}
		artifact := positional[0]
		sched := eng.NewCommandScheduler("report-" + artifact)
		if err := sched.WriteManifest("report", artifact, scenario.CampaignRefs([]string{artifact}, days, minSamples)); err != nil {
			return err
		}
		cache := scenario.NewArtifactCache()
		cache.UseScheduler(sched)
		return scenario.RenderArtifact(out, p, cache, artifact, days, minSamples)

	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// writeMetricsDump writes the end-of-run telemetry: Prometheus text
// exposition to path and the structured JSON snapshot to path.json.
func writeMetricsDump(path string) error {
	var buf strings.Builder
	if err := obs.Default().WriteProm(&buf); err != nil {
		return fmt.Errorf("metrics-out: %w", err)
	}
	if err := os.WriteFile(path, []byte(buf.String()), 0o644); err != nil {
		return fmt.Errorf("metrics-out: %w", err)
	}
	js, err := json.MarshalIndent(obs.Default().Snapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("metrics-out: %w", err)
	}
	if err := os.WriteFile(path+".json", append(js, '\n'), 0o644); err != nil {
		return fmt.Errorf("metrics-out: %w", err)
	}
	return nil
}
