// Package inband implements the paper's proposed in-band measurement
// extension (§5, after FlowTrace [PAM 2020] and ELF [TMA 2021]): packet
// trains injected into a flow estimate available bandwidth from receive
// dispersion in well under a second — against a multi-minute throughput
// test — and TTL-staggered trains locate the bottleneck segment on the
// path, directly addressing the cost problem that capped the paper's
// deployment at ~USD 6k/month of egress.
package inband

import (
	"fmt"
	"math"

	"github.com/clasp-measurement/clasp/internal/netsim"
)

// Train parameterises one probe train.
type Train struct {
	// Packets in the train (default 64).
	Packets int
	// PacketBytes per probe (default 1448).
	PacketBytes int
}

func (t Train) withDefaults() Train {
	if t.Packets <= 0 {
		t.Packets = 64
	}
	if t.PacketBytes <= 0 {
		t.PacketBytes = 1448
	}
	return t
}

// Bytes is the total wire bytes one train costs.
func (t Train) Bytes() int64 {
	t = t.withDefaults()
	return int64(t.Packets) * int64(t.PacketBytes)
}

// HopEstimate is the available bandwidth measured up to (and including)
// one path segment.
type HopEstimate struct {
	Index     int
	Name      string
	LinkID    int
	AvailMbps float64
}

// Result is a completed in-band measurement.
type Result struct {
	// AvailMbps is the end-to-end available-bandwidth estimate.
	AvailMbps float64
	// Hops are the per-segment estimates from TTL-staggered trains.
	Hops []HopEstimate
	// Bottleneck is the index into Hops where the rate first drops to
	// its end-to-end value (the bottleneck segment).
	Bottleneck int
	// ProbeBytes is the measurement traffic used, for the cost
	// comparison against a full throughput test.
	ProbeBytes int64
}

// Prober runs in-band measurements over the simulator.
type Prober struct {
	sim  *netsim.Sim
	seed int64
}

// NewProber creates a prober.
func NewProber(sim *netsim.Sim, seed int64) *Prober {
	return &Prober{sim: sim, seed: seed}
}

// dispersionRate pushes a train through a sequence of segment capacities:
// each segment spaces the packets at no faster than its available rate, so
// the receive rate is the minimum along the prefix — with a small
// measurement error that shrinks with the train length.
func (p *Prober) dispersionRate(segs []netsim.Segment, train Train, salt uint64) float64 {
	rate := segs[0].AvailMbps
	for _, s := range segs[1:] {
		if s.AvailMbps < rate {
			rate = s.AvailMbps
		}
	}
	// Relative error ~ 1/sqrt(packets), deterministic in the seed.
	t := train.withDefaults()
	sigma := 0.4 / sqrtF(float64(t.Packets))
	noise := 1 + sigma*hashNorm(p.seed, salt)
	if noise < 0.5 {
		noise = 0.5
	}
	return rate * noise
}

// Estimate measures end-to-end available bandwidth for the flow described
// by spec, using TTL-staggered trains to also locate the bottleneck.
func (p *Prober) Estimate(spec netsim.TestSpec, train Train) (*Result, error) {
	segs, err := p.sim.SegmentsFor(spec)
	if err != nil {
		return nil, fmt.Errorf("inband: %w", err)
	}
	if len(segs) == 0 {
		return nil, fmt.Errorf("inband: empty path")
	}
	train = train.withDefaults()
	res := &Result{}
	bottleneckRate := 0.0
	for i := range segs {
		rate := p.dispersionRate(segs[:i+1], train, uint64(i)<<8^uint64(spec.Server.ID))
		res.Hops = append(res.Hops, HopEstimate{
			Index: i, Name: segs[i].Name, LinkID: segs[i].LinkID, AvailMbps: rate,
		})
		res.ProbeBytes += train.Bytes()
		bottleneckRate = rate
	}
	res.AvailMbps = bottleneckRate
	// The bottleneck is the first hop whose estimate is within the
	// measurement error of the end-to-end rate.
	res.Bottleneck = len(res.Hops) - 1
	tol := 1 + 1.0/sqrtF(float64(train.Packets))
	for i, h := range res.Hops {
		if h.AvailMbps <= bottleneckRate*tol {
			res.Bottleneck = i
			break
		}
	}
	return res, nil
}

// CostRatio compares the probe bytes of an in-band estimate with the bytes
// a full throughput test of the given duration would transfer at the
// estimated rate. Values far below 1 quantify the egress-cost savings that
// motivated the extension.
func (r *Result) CostRatio(testDurationSec float64) float64 {
	testBytes := r.AvailMbps * 1e6 / 8 * testDurationSec
	if testBytes <= 0 {
		return 0
	}
	return float64(r.ProbeBytes) / testBytes
}

func sqrtF(x float64) float64 {
	if x <= 0 {
		return 1
	}
	return math.Sqrt(x)
}

// hashNorm derives a deterministic approximately standard-normal value
// from the seed and a salt (Irwin-Hall over four hashed uniforms).
func hashNorm(seed int64, salt uint64) float64 {
	sum := 0.0
	for i := uint64(0); i < 4; i++ {
		h := uint64(14695981039346656037)
		mix := func(v uint64) {
			for b := 0; b < 8; b++ {
				h ^= (v >> (8 * b)) & 0xff
				h *= 1099511628211
			}
		}
		mix(uint64(seed))
		mix(salt)
		mix(0x9e3779b97f4a7c15 + i)
		h ^= h >> 30
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 31
		sum += float64(h>>11) / (1 << 53)
	}
	return (sum - 2) / 0.5773502691896258
}
