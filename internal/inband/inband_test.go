package inband

import (
	"math"
	"testing"
	"time"

	"github.com/clasp-measurement/clasp/internal/bgp"
	"github.com/clasp-measurement/clasp/internal/netsim"
	"github.com/clasp-measurement/clasp/internal/topology"
)

func setup(t *testing.T) (*netsim.Sim, *Prober) {
	t.Helper()
	topo, err := topology.New(topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sim := netsim.New(topo, nil, netsim.Config{Seed: 9})
	return sim, NewProber(sim, 9)
}

var t0 = time.Date(2020, 5, 1, 8, 0, 0, 0, time.UTC)

func spec(sim *netsim.Sim, idx int) netsim.TestSpec {
	return netsim.TestSpec{
		Region: "us-east1",
		Server: sim.Topology().Servers()[idx],
		Tier:   bgp.Premium,
		Dir:    netsim.Download,
		Time:   t0,
	}
}

func TestEstimateMatchesGroundTruth(t *testing.T) {
	sim, p := setup(t)
	for idx := 0; idx < 25; idx++ {
		sp := spec(sim, idx)
		segs, err := sim.SegmentsFor(sp)
		if err != nil {
			t.Fatal(err)
		}
		truth := segs[0].AvailMbps
		for _, s := range segs {
			if s.AvailMbps < truth {
				truth = s.AvailMbps
			}
		}
		res, err := p.Estimate(sp, Train{Packets: 256})
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(res.AvailMbps-truth) / truth; rel > 0.15 {
			t.Errorf("server %d: estimate %.1f vs truth %.1f (%.0f%% off)", idx, res.AvailMbps, truth, rel*100)
		}
	}
}

func TestBottleneckLocation(t *testing.T) {
	sim, p := setup(t)
	correct, total := 0, 0
	for idx := 0; idx < 40; idx++ {
		sp := spec(sim, idx)
		segs, err := sim.SegmentsFor(sp)
		if err != nil {
			t.Fatal(err)
		}
		truthIdx, truthRate := 0, segs[0].AvailMbps
		for i, s := range segs {
			if s.AvailMbps < truthRate {
				truthRate, truthIdx = s.AvailMbps, i
			}
		}
		res, err := p.Estimate(sp, Train{Packets: 256})
		if err != nil {
			t.Fatal(err)
		}
		total++
		if res.Bottleneck == truthIdx {
			correct++
		}
		if res.Hops[res.Bottleneck].Name == "" {
			t.Error("bottleneck hop unnamed")
		}
	}
	if float64(correct) < float64(total)*0.8 {
		t.Errorf("bottleneck located correctly only %d/%d times", correct, total)
	}
}

func TestHopEstimatesNonIncreasing(t *testing.T) {
	sim, p := setup(t)
	res, err := p.Estimate(spec(sim, 3), Train{Packets: 512})
	if err != nil {
		t.Fatal(err)
	}
	// Modulo measurement noise, prefix minima are non-increasing.
	for i := 1; i < len(res.Hops); i++ {
		if res.Hops[i].AvailMbps > res.Hops[i-1].AvailMbps*1.2 {
			t.Errorf("hop %d estimate rose sharply: %.1f -> %.1f", i, res.Hops[i-1].AvailMbps, res.Hops[i].AvailMbps)
		}
	}
}

func TestLongerTrainsAreMoreAccurate(t *testing.T) {
	sim, p := setup(t)
	var errShort, errLong float64
	n := 0
	for idx := 0; idx < 30; idx++ {
		sp := spec(sim, idx)
		segs, err := sim.SegmentsFor(sp)
		if err != nil {
			t.Fatal(err)
		}
		truth := segs[0].AvailMbps
		for _, s := range segs {
			if s.AvailMbps < truth {
				truth = s.AvailMbps
			}
		}
		short, err := p.Estimate(sp, Train{Packets: 8})
		if err != nil {
			t.Fatal(err)
		}
		long, err := p.Estimate(sp, Train{Packets: 1024})
		if err != nil {
			t.Fatal(err)
		}
		errShort += math.Abs(short.AvailMbps-truth) / truth
		errLong += math.Abs(long.AvailMbps-truth) / truth
		n++
	}
	if errLong >= errShort {
		t.Errorf("1024-packet trains (err %.3f) not better than 8-packet (err %.3f)", errLong/float64(n), errShort/float64(n))
	}
}

func TestCostRatioTiny(t *testing.T) {
	sim, p := setup(t)
	res, err := p.Estimate(spec(sim, 1), Train{})
	if err != nil {
		t.Fatal(err)
	}
	// An in-band estimate must cost well under 1% of a 15s throughput
	// test — the point of the §5 extension.
	if ratio := res.CostRatio(15); ratio > 0.01 {
		t.Errorf("probe cost ratio %.4f, want < 0.01", ratio)
	}
	if res.ProbeBytes <= 0 {
		t.Error("probe bytes not accounted")
	}
}

func TestTrainDefaults(t *testing.T) {
	if b := (Train{}).Bytes(); b != 64*1448 {
		t.Errorf("default train bytes = %d", b)
	}
}

func TestEstimateErrors(t *testing.T) {
	sim, p := setup(t)
	sp := spec(sim, 0)
	sp.Server = nil
	if _, err := p.Estimate(sp, Train{}); err == nil {
		t.Error("nil server accepted")
	}
	sp = spec(sim, 0)
	sp.Region = "atlantis"
	if _, err := p.Estimate(sp, Train{}); err == nil {
		t.Error("unknown region accepted")
	}
}

func TestDeterministic(t *testing.T) {
	sim, p := setup(t)
	a, err := p.Estimate(spec(sim, 5), Train{})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := p.Estimate(spec(sim, 5), Train{})
	if a.AvailMbps != b.AvailMbps || a.Bottleneck != b.Bottleneck {
		t.Error("estimates not deterministic")
	}
}
