package scenario

import (
	"bytes"
	"sync"
	"testing"

	"github.com/clasp-measurement/clasp/internal/core"

	clasp "github.com/clasp-measurement/clasp"
)

// TestArtifactCacheSingleflight is the cache's concurrency contract (run
// under -race in CI): overlapping renderers requesting the same campaign
// coalesce onto one execution — every caller gets the same result, and the
// campaign is measured exactly once.
func TestArtifactCacheSingleflight(t *testing.T) {
	eng, err := core.New(core.Options{Seed: 3, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	cache := NewArtifactCache()

	const callers = 8
	results := make([]*core.CampaignResult, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _, errs[i] = cache.topology(eng, "us-west1", 1)
		}(i)
	}
	wg.Wait()

	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if results[i] == nil || results[i] != results[0] {
			t.Fatalf("caller %d got a different result object than caller 0", i)
		}
	}
	if got := cache.Fills(); got != 1 {
		t.Fatalf("cache executed the campaign %d times under %d concurrent callers, want exactly 1", got, callers)
	}
}

// renderAllWith runs `report all` end to end on a fresh engine at the
// given parallelism, with a command scheduler attached exactly like the
// CLI's report path, and returns the rendered bytes.
func renderAllWith(t *testing.T, parallelism int) []byte {
	t.Helper()
	eng, err := core.New(core.Options{Seed: 3, Scale: 0.1, Parallelism: parallelism})
	if err != nil {
		t.Fatal(err)
	}
	p := clasp.NewFromCore(eng)
	sched := eng.NewCommandScheduler("report-all")
	cache := NewArtifactCache()
	cache.UseScheduler(sched)
	var buf bytes.Buffer
	if err := RenderArtifact(&buf, p, cache, "all", 1, 6); err != nil {
		t.Fatalf("report all at parallelism %d: %v", parallelism, err)
	}
	return buf.Bytes()
}

// TestReportAllByteIdenticalAcrossParallelism pins the pipelined
// scheduler's determinism invariant: `report all` — campaigns running
// concurrently, artifacts rendering as their inputs complete — emits the
// same bytes at parallelism 1 and 4, and those bytes equal the plain
// sequential per-artifact loop with no scheduler attached.
func TestReportAllByteIdenticalAcrossParallelism(t *testing.T) {
	// Sequential reference: one artifact at a time, campaigns on demand,
	// no scheduler, no prelaunch — the pre-pipeline rendering order.
	eng, err := core.New(core.Options{Seed: 3, Scale: 0.1, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := clasp.NewFromCore(eng)
	cache := NewArtifactCache()
	var want bytes.Buffer
	for _, a := range artifactOrder {
		core.Separator(&want, a)
		if err := RenderArtifact(&want, p, cache, a, 1, 6); err != nil {
			t.Fatalf("sequential %s: %v", a, err)
		}
	}

	for _, par := range []int{1, 4} {
		got := renderAllWith(t, par)
		if err := diffBytes(got, want.Bytes()); err != nil {
			t.Errorf("pipelined report all at parallelism %d drifted from the sequential loop: %v", par, err)
		}
	}
}

// TestCampaignRefsDeduplicated: the campaign plan for "all" must name each
// campaign exactly once, in first-request order — it is what the command
// manifest records and what Prelaunch executes.
func TestCampaignRefsDeduplicated(t *testing.T) {
	refs := CampaignRefs([]string{"all"}, 2, 6)
	seen := make(map[core.CampaignRef]bool)
	topo, diff := 0, 0
	for _, r := range refs {
		if seen[r] {
			t.Fatalf("campaign %+v planned twice", r)
		}
		seen[r] = true
		switch r.Kind {
		case "topology":
			topo++
			if r.MinSamples != 0 {
				t.Errorf("topology campaign %+v carries minSamples", r)
			}
		case "differential":
			diff++
			if r.MinSamples != 6 {
				t.Errorf("differential campaign %+v lost its minSamples", r)
			}
		default:
			t.Fatalf("campaign %+v has unknown kind", r)
		}
	}
	// The full artifact set spans the topology regions plus every
	// differential region (DifferentialRegions ∪ {europe-west1}).
	if topo < len(core.TopologyRegions) || diff < len(core.DifferentialRegions) {
		t.Fatalf("plan has %d topology and %d differential campaigns, want at least %d and %d",
			topo, diff, len(core.TopologyRegions), len(core.DifferentialRegions))
	}
	if refs[0].Kind != "topology" {
		t.Fatalf("first planned campaign %+v, want the first topology dependency", refs[0])
	}
}
