package scenario

import (
	"bufio"
	"io"
	"os"
	"strconv"
	"strings"
	"testing"

	"github.com/clasp-measurement/clasp/internal/core"

	clasp "github.com/clasp-measurement/clasp"
)

// reportAllBenchShape is the campaign shape both report-all benchmarks
// run: small enough for -count=3 regression runs, large enough that the
// nine campaigns and thirteen artifacts exercise the real pipeline.
const (
	benchSeed  = 3
	benchScale = 0.1
	benchDays  = 2
)

// BenchmarkReportAllSequential is the sequential rendering order: one
// artifact at a time, campaigns measured on demand, no command scheduler.
// It still shares campaigns and memoized selections through the cache, so
// the gap to BenchmarkReportAllPipelined is the scheduling overlap alone;
// the full against-main wall-clock comparison (which also includes the
// shared-selection win) is recorded in EXPERIMENTS.md.
func BenchmarkReportAllSequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng, err := core.New(core.Options{Seed: benchSeed, Scale: benchScale, Parallelism: 4})
		if err != nil {
			b.Fatal(err)
		}
		p := clasp.NewFromCore(eng)
		cache := NewArtifactCache()
		for _, a := range artifactOrder {
			core.Separator(io.Discard, a)
			if err := RenderArtifact(io.Discard, p, cache, a, benchDays, 6); err != nil {
				b.Fatal(err)
			}
		}
	}
	reportPeakRSS(b)
}

// BenchmarkReportAllPipelined renders `report all` exactly like the CLI:
// command scheduler attached, campaigns prelaunched and running
// concurrently under the engine's worker budget, artifacts rendering as
// their inputs complete, output order pinned.
func BenchmarkReportAllPipelined(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng, err := core.New(core.Options{Seed: benchSeed, Scale: benchScale, Parallelism: 4})
		if err != nil {
			b.Fatal(err)
		}
		p := clasp.NewFromCore(eng)
		sched := eng.NewCommandScheduler("report-all")
		cache := NewArtifactCache()
		cache.UseScheduler(sched)
		if err := RenderArtifact(io.Discard, p, cache, "all", benchDays, 6); err != nil {
			b.Fatal(err)
		}
	}
	reportPeakRSS(b)
}

// reportPeakRSS attaches the process resident-set high-water mark (VmHWM)
// to the benchmark — the peak-memory figure the report-all bench record
// tracks next to wall-clock. Process-wide and monotone, so it covers
// everything the bench process ran so far; on non-Linux it is omitted.
func reportPeakRSS(b *testing.B) {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return
		}
		kb, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return
		}
		b.ReportMetric(kb/1024, "peak-RSS-MB")
		return
	}
}
