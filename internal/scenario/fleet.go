package scenario

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"sync"

	"github.com/clasp-measurement/clasp/internal/core"
)

// LoadDir loads every *.json scenario spec in dir. Specs are returned in
// name order and must have unique names (they address golden files and
// fleet output sections).
func LoadDir(dir string) ([]*Spec, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("scenario: no *.json specs in %s", dir)
	}
	sort.Strings(paths)
	specs := make([]*Spec, 0, len(paths))
	seen := make(map[string]string)
	var errs []error
	for _, path := range paths {
		s, err := LoadFile(path)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		if prev, dup := seen[s.Name]; dup {
			errs = append(errs, fmt.Errorf("%s: duplicate scenario name %q (also in %s)", path, s.Name, prev))
			continue
		}
		seen[s.Name] = path
		specs = append(specs, s)
	}
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	sortSpecs(specs)
	return specs, nil
}

func sortSpecs(specs []*Spec) {
	sort.Slice(specs, func(i, j int) bool { return specs[i].Name < specs[j].Name })
}

// RunAll runs the scenarios serially in name order, each under a
// "scenario <name>" banner. This is the reference output Fleet must
// reproduce byte-for-byte.
func (r *Runner) RunAll(w io.Writer, specs []*Spec) error {
	ordered := append([]*Spec(nil), specs...)
	sortSpecs(ordered)
	var errs []error
	for _, s := range ordered {
		core.Separator(w, "scenario "+s.Name)
		if err := r.Run(w, s); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Fleet runs the scenarios concurrently, one goroutine per scenario over
// the Runner's shared substrate cache, buffering each scenario's report
// and emitting them in name order. The output — including any partial
// output of a failed scenario — is byte-identical to RunAll over the same
// specs (pinned by TestFleetMatchesSerial): substrates are immutable and
// concurrent-safe, and all mutable engine state is per-scenario.
func (r *Runner) Fleet(w io.Writer, specs []*Spec) error {
	ordered := append([]*Spec(nil), specs...)
	sortSpecs(ordered)
	bufs := make([]bytes.Buffer, len(ordered))
	errs := make([]error, len(ordered))
	var wg sync.WaitGroup
	for i, s := range ordered {
		wg.Add(1)
		go func(i int, s *Spec) {
			defer wg.Done()
			errs[i] = r.Run(&bufs[i], s)
		}(i, s)
	}
	wg.Wait()
	for i, s := range ordered {
		core.Separator(w, "scenario "+s.Name)
		if _, err := io.Copy(w, &bufs[i]); err != nil {
			return fmt.Errorf("scenario: writing %s output: %w", s.Name, err)
		}
	}
	return errors.Join(errs...)
}

// FleetDir loads a directory of specs and runs them as a fleet — the
// `clasp fleet dir/` entry point.
func (r *Runner) FleetDir(w io.Writer, dir string) error {
	specs, err := LoadDir(dir)
	if err != nil {
		return err
	}
	return r.Fleet(w, specs)
}
