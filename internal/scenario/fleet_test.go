package scenario

import (
	"bytes"
	"testing"
)

// cheapSpecs loads the catalog minus the paper-scale scenario: four
// 10%-scale scenarios that all share one (seed, scale) substrate.
func cheapSpecs(t *testing.T) []*Spec {
	t.Helper()
	all, err := LoadDir(catalogDir)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", catalogDir, err)
	}
	specs := make([]*Spec, 0, len(all))
	for _, s := range all {
		if !s.Topology.PaperScale {
			specs = append(specs, s)
		}
	}
	if len(specs) < 2 {
		t.Fatalf("only %d cheap scenarios in the catalog; fleet test needs >= 2", len(specs))
	}
	return specs
}

// TestFleetMatchesSerial pins the fleet contract: running the catalog's
// cheap scenarios concurrently over one shared substrate produces output
// byte-identical to running them serially, one after another.
func TestFleetMatchesSerial(t *testing.T) {
	specs := cheapSpecs(t)

	var serial bytes.Buffer
	if err := NewRunner().RunAll(&serial, specs); err != nil {
		t.Fatalf("RunAll: %v", err)
	}

	fleet := NewRunner()
	var concurrent bytes.Buffer
	if err := fleet.Fleet(&concurrent, specs); err != nil {
		t.Fatalf("Fleet: %v", err)
	}

	if err := diffBytes(concurrent.Bytes(), serial.Bytes()); err != nil {
		t.Errorf("fleet output != serial output: %v", err)
	}

	// All cheap scenarios share (seed 1, scale 0.1), so the fleet must have
	// built exactly one substrate — the sharing the mode exists for.
	fleet.mu.Lock()
	subs := len(fleet.subs)
	fleet.mu.Unlock()
	if subs != 1 {
		t.Errorf("fleet built %d substrates for %d same-shape scenarios, want 1", subs, len(specs))
	}
}
