package scenario

import (
	"strings"
	"testing"
)

func TestParseSpecDefaults(t *testing.T) {
	s, err := ParseSpec([]byte(`{"name":"minimal","artifacts":["table1"]}`), "minimal.json")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if got := s.seed(); got != 1 {
		t.Errorf("seed() = %d, want 1", got)
	}
	if got := s.scale(); got != 0.25 {
		t.Errorf("scale() = %v, want 0.25", got)
	}
	if got := s.days(); got != 30 {
		t.Errorf("days() = %d, want 30", got)
	}
	// The CLI's -samples rule: int(100*scale), floored at 6.
	if got := s.minSamples(); got != 25 {
		t.Errorf("minSamples() = %d, want 25", got)
	}
	s.Topology.Scale = 0.01
	if got := s.minSamples(); got != 6 {
		t.Errorf("minSamples() at scale 0.01 = %d, want the floor 6", got)
	}
	s.Topology = TopologySpec{PaperScale: true}
	if got := s.scale(); got != 1.0 {
		t.Errorf("scale() with paperScale = %v, want 1.0", got)
	}
	if got := s.minSamples(); got != 100 {
		t.Errorf("minSamples() at paper scale = %d, want 100", got)
	}
}

func TestParseSpecCampaignSwitchDefaults(t *testing.T) {
	src := `{
		"name": "switches",
		"campaigns": [
			{"kind": "topology", "regions": ["us-east1"]},
			{"kind": "differential", "regions": ["us-east1"]},
			{"kind": "topology", "regions": ["us-east1"], "congestionReport": false},
			{"kind": "differential", "regions": ["us-east1"], "tierComparison": false, "congestionReport": true}
		]
	}`
	s, err := ParseSpec([]byte(src), "switches.json")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	cases := []struct {
		congestion, tiers bool
	}{
		{true, false},  // topology defaults
		{false, true},  // differential defaults
		{false, false}, // explicit off
		{true, false},  // explicit flip
	}
	for i, want := range cases {
		c := &s.Campaigns[i]
		if got := c.renderCongestion(); got != want.congestion {
			t.Errorf("campaigns[%d].renderCongestion() = %v, want %v", i, got, want.congestion)
		}
		if got := c.renderTiers(); got != want.tiers {
			t.Errorf("campaigns[%d].renderTiers() = %v, want %v", i, got, want.tiers)
		}
	}
}

// TestParseSpecLineErrors pins that parse failures point at the offending
// line and column of the source.
func TestParseSpecLineErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{
			name: "unknown field",
			src:  "{\n  \"name\": \"x\",\n  \"dayz\": 3\n}",
			want: "spec.json:3:3:", // the "dayz" key itself
		},
		{
			name: "type mismatch",
			src:  "{\n  \"name\": \"x\",\n  \"days\": \"three\"\n}",
			want: "spec.json:3:",
		},
		{
			name: "syntax error",
			src:  "{\n  \"name\": \"x\",\n}",
			want: "spec.json:3:",
		},
		{
			name: "trailing garbage",
			src:  `{"name":"x","artifacts":["all"]} {"again":true}`,
			want: "spec.json:1:33: trailing data",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseSpec([]byte(c.src), "spec.json")
			if err == nil {
				t.Fatal("ParseSpec accepted a bad spec")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not carry position %q", err, c.want)
			}
		})
	}
}

// TestValidateJoinsAllProblems pins that validation reports every problem
// at once, each naming its field.
func TestValidateJoinsAllProblems(t *testing.T) {
	src := `{
		"name": "Bad Name",
		"seed": -1,
		"faultProfile": "cosmic-rays",
		"campaigns": [
			{"kind": "quantum", "regions": ["atlantis"], "days": -2},
			{"kind": "topology", "regions": ["us-east1"], "tierComparison": true}
		],
		"artifacts": ["fig99"]
	}`
	_, err := ParseSpec([]byte(src), "bad.json")
	if err == nil {
		t.Fatal("ParseSpec accepted an invalid spec")
	}
	for _, want := range []string{
		`name: "Bad Name"`,
		"seed: must be non-negative",
		`faultProfile: "cosmic-rays"`,
		`campaigns[0].kind: "quantum"`,
		`campaigns[0].regions: unknown region "atlantis"`,
		"campaigns[0].days: must be non-negative",
		"campaigns[1].tierComparison: topology campaigns measure one tier",
		`artifacts[0]: unknown artifact "fig99"`,
	} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error is missing %q\nfull error:\n%v", want, err)
		}
	}
}

func TestValidateRejectsEmptySpec(t *testing.T) {
	_, err := ParseSpec([]byte(`{"name":"idle"}`), "idle.json")
	if err == nil || !strings.Contains(err.Error(), "runs nothing") {
		t.Errorf("empty spec error = %v, want a runs-nothing complaint", err)
	}
	_, err = ParseSpec([]byte(`{"name":"both","topology":{"scale":0.5,"paperScale":true},"artifacts":["all"]}`), "both.json")
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("scale+paperScale error = %v, want mutually-exclusive complaint", err)
	}
}

func TestArtifactsListStable(t *testing.T) {
	arts := Artifacts()
	if arts[len(arts)-1] != "all" {
		t.Errorf("Artifacts() = %v, want %q last", arts, "all")
	}
	if len(arts) != 14 {
		t.Errorf("Artifacts() has %d entries, want 14 (13 artifacts + all)", len(arts))
	}
}
