package scenario

import (
	"bytes"
	"path/filepath"
	"testing"
)

// TestBudgetedScenarioByteIdentical pins the storage-determinism contract
// end to end: the same scenario run under a 1 MB record budget — every
// campaign streamed through the compressed, disk-spilled record log —
// emits byte-for-byte the report of the unbounded in-memory run.
func TestBudgetedScenarioByteIdentical(t *testing.T) {
	spec, err := LoadFile(filepath.Join(catalogDir, "small-smoke.json"))
	if err != nil {
		t.Fatal(err)
	}
	// Ten virtual days pushes both campaigns past the 1 MB budget's
	// streaming threshold while staying cheap.
	spec.Days = 10

	var want bytes.Buffer
	if err := NewRunner().Run(&want, spec); err != nil {
		t.Fatal(err)
	}

	budgeted := *spec
	budgeted.MaxMemoryMB = 1
	budgeted.SpillDir = t.TempDir()
	var got bytes.Buffer
	if err := NewRunner().Run(&got, &budgeted); err != nil {
		t.Fatal(err)
	}
	if err := diffBytes(got.Bytes(), want.Bytes()); err != nil {
		t.Errorf("budgeted scenario drifted from the in-memory run: %v", err)
	}
}

// TestParseSpecBudgetFields pins the JSON spelling of the budget knobs.
func TestParseSpecBudgetFields(t *testing.T) {
	s, err := ParseSpec([]byte(`{
		"name": "budgeted",
		"maxMemoryMB": 64,
		"spillDir": "/tmp/clasp-spill",
		"campaigns": [{"kind": "topology", "regions": ["us-east1"]}]
	}`), "budgeted.json")
	if err != nil {
		t.Fatal(err)
	}
	if s.MaxMemoryMB != 64 || s.SpillDir != "/tmp/clasp-spill" {
		t.Fatalf("budget fields did not parse: %+v", s)
	}
	if _, err := ParseSpec([]byte(`{
		"name": "bad",
		"maxMemoryMB": -1,
		"campaigns": [{"kind": "topology", "regions": ["us-east1"]}]
	}`), "bad.json"); err == nil {
		t.Fatal("negative maxMemoryMB accepted")
	}
}
