package scenario

import (
	"fmt"
	"io"
	"path/filepath"
	"sync"

	"github.com/clasp-measurement/clasp/internal/core"
	"github.com/clasp-measurement/clasp/internal/topology"

	clasp "github.com/clasp-measurement/clasp"
)

// Runner executes scenarios. It caches warmed substrates (topology + BGP
// router) per (seed, scale), so a fleet of scenarios sharing generation
// parameters builds the expensive immutable state once; everything stateful
// stays per-scenario, which keeps every run byte-identical to running the
// same scenario alone.
type Runner struct {
	mu   sync.Mutex
	subs map[string]*subEntry
}

type subEntry struct {
	once sync.Once
	sub  *core.Substrate
	err  error
}

// NewRunner returns a Runner with an empty substrate cache.
func NewRunner() *Runner {
	return &Runner{subs: make(map[string]*subEntry)}
}

// substrate returns the shared substrate for (seed, scale), building it at
// most once even under concurrent fleet callers. The config is derived
// exactly like core.New derives it from Options{Seed, Scale}, so injecting
// the substrate passes core.New's config-match check.
func (r *Runner) substrate(seed int64, scale float64) (*core.Substrate, error) {
	key := fmt.Sprintf("%d/%g", seed, scale)
	r.mu.Lock()
	e, ok := r.subs[key]
	if !ok {
		e = &subEntry{}
		r.subs[key] = e
	}
	r.mu.Unlock()
	e.once.Do(func() {
		cfg := topology.PaperScaleConfig()
		cfg.Scale = scale
		cfg.Seed = seed
		e.sub, e.err = core.NewSubstrate(cfg)
	})
	return e.sub, e.err
}

// Run executes one scenario, writing its report to w. The output is a pure
// function of the spec: same spec, same bytes, at any parallelism and
// whether the run is alone or part of a fleet.
func (r *Runner) Run(w io.Writer, s *Spec) error {
	if err := s.Validate(); err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	sub, err := r.substrate(s.seed(), s.scale())
	if err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	ckDir := ""
	if s.CheckpointDir != "" {
		// Scope per scenario name, so fleet members sharing one
		// checkpoint root never write into each other's campaigns.
		ckDir = filepath.Join(s.CheckpointDir, s.Name)
	}
	eng, err := core.New(core.Options{
		Seed:              s.seed(),
		Scale:             s.scale(),
		Parallelism:       s.Parallelism,
		FaultProfile:      s.FaultProfile,
		CaptureEvery:      s.CaptureEvery,
		TracerouteEvery:   s.TracerouteEvery,
		MaxMemoryMB:       s.MaxMemoryMB,
		SpillDir:          s.SpillDir,
		CheckpointDir:     ckDir,
		CheckpointEvery:   s.CheckpointEvery,
		CheckpointVMHours: s.CheckpointVMHours,
		Substrate:         sub,
	})
	if err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	p := clasp.NewFromCore(eng)
	cache := NewArtifactCache()

	for i := range s.Campaigns {
		if err := r.runCampaign(w, s, &s.Campaigns[i], p, cache); err != nil {
			return fmt.Errorf("scenario %s: campaigns[%d]: %w", s.Name, i, err)
		}
	}
	for _, a := range s.Artifacts {
		// "all" emits its own per-artifact separators — rendering it bare is
		// what keeps paper-repro byte-identical to `clasp report all`.
		if a != "all" {
			core.Separator(w, a)
		}
		if err := RenderArtifact(w, p, cache, a, s.days(), s.minSamples()); err != nil {
			return fmt.Errorf("scenario %s: artifact %s: %w", s.Name, a, err)
		}
	}
	return nil
}

// runCampaign runs one campaign of a scenario across its regions.
func (r *Runner) runCampaign(w io.Writer, s *Spec, c *CampaignSpec, p *clasp.Platform, cache *ArtifactCache) error {
	eng := p.Engine()
	days := c.Days
	if days == 0 {
		days = s.days()
	}
	for _, region := range c.Regions {
		core.Separator(w, c.Kind+" "+region)
		var res *core.CampaignResult
		var err error
		// The cache keys on (kind, region, days, samples), so a campaign
		// matching an artifact's shape shares its result and an overridden
		// length gets its own entry.
		switch c.Kind {
		case KindTopology:
			res, _, err = cache.topology(eng, region, days)
		case KindDifferential:
			res, _, err = cache.differential(eng, region, days, s.minSamples())
		}
		if err != nil {
			return err
		}
		writeCampaignSummary(w, res)
		if c.renderCongestion() {
			rep, err := p.CongestionReport(res)
			if err != nil {
				return err
			}
			clasp.WriteReport(w, rep)
		}
		if c.renderTiers() {
			tc, err := p.CompareTiers(res)
			if err != nil {
				return err
			}
			writeTierComparison(w, tc)
		}
	}
	return nil
}

// writeCampaignSummary renders the orchestration report exactly like
// `clasp campaign` does.
func writeCampaignSummary(w io.Writer, res *core.CampaignResult) {
	fmt.Fprintf(w, "Campaign: %d tests over %d hours with %d VMs\n",
		res.Report.Tests, res.Report.Hours, res.Report.VMs)
	if r := res.Report; r.Failed+r.Dropped+r.Retried+r.Preemptions+r.VMCreateRetries > 0 {
		fmt.Fprintf(w, "Resilience: %d failed, %d retried, %d dropped, %d preemptions, %d create retries, %d breaker-open rounds\n",
			r.Failed, r.Retried, r.Dropped, r.Preemptions, r.VMCreateRetries, r.BreakerOpenRounds)
	}
}

// writeTierComparison renders the §4.1 premium-vs-standard summary.
func writeTierComparison(w io.Writer, tc *clasp.TierComparison) {
	fmt.Fprintf(w, "Tier comparison for %s over %d paired tests\n", tc.Region, tc.PairedTests)
	fmt.Fprintf(w, "  standard faster: %.1f%% of downloads, %.1f%% of uploads\n",
		tc.StdFasterDownload*100, tc.StdFasterUpload*100)
	fmt.Fprintf(w, "  downloads within 50%%: %.1f%%   median download delta: %+.3f\n",
		tc.Within50*100, tc.MedianDownloadDelta)
}
