package scenario

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the scenario golden files")

const catalogDir = "../../examples/scenarios"

// TestCatalogGoldens runs every catalog scenario and compares its report to
// the golden pinned beside it. Regenerate with:
//
//	go test ./internal/scenario -run TestCatalogGoldens -update
//
// paper-repro is the full 153-day paper-scale evaluation (minutes of CPU);
// it only runs when CLASP_SCENARIO_HEAVY is set, and its golden is pinned
// against paperscale_report.txt by the test below either way.
func TestCatalogGoldens(t *testing.T) {
	specs, err := LoadDir(catalogDir)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", catalogDir, err)
	}
	if len(specs) < 5 {
		t.Fatalf("catalog has %d scenarios, want at least 5", len(specs))
	}
	r := NewRunner()
	for _, s := range specs {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			if s.Name == "paper-repro" && os.Getenv("CLASP_SCENARIO_HEAVY") == "" {
				t.Skip("set CLASP_SCENARIO_HEAVY=1 to run the paper-scale scenario")
			}
			var buf bytes.Buffer
			if err := r.Run(&buf, s); err != nil {
				t.Fatalf("Run: %v", err)
			}
			golden := filepath.Join(catalogDir, s.Name+".golden")
			if *update {
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatalf("writing %s: %v", golden, err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("reading golden (run with -update to create it): %v", err)
			}
			if err := diffBytes(buf.Bytes(), want); err != nil {
				t.Errorf("scenario %s drifted from %s: %v", s.Name, golden, err)
			}
		})
	}
}

// TestPaperReproGoldenIsPaperscaleReport pins the repro contract without
// paying for the run: the paper-repro golden must be byte-identical to the
// repository's paperscale_report.txt, so
// `clasp run examples/scenarios/paper-repro.json` reproduces the paper
// report exactly.
func TestPaperReproGoldenIsPaperscaleReport(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join(catalogDir, "paper-repro.golden"))
	if err != nil {
		t.Fatalf("reading golden: %v", err)
	}
	want, err := os.ReadFile("../../paperscale_report.txt")
	if err != nil {
		t.Fatalf("reading paperscale_report.txt: %v", err)
	}
	if err := diffBytes(golden, want); err != nil {
		t.Errorf("paper-repro.golden != paperscale_report.txt: %v", err)
	}
}

// diffBytes reports the first divergence between got and want with a line
// of context, so a golden failure is actionable without external tooling.
func diffBytes(got, want []byte) error {
	if bytes.Equal(got, want) {
		return nil
	}
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	i := 0
	for i < n && got[i] == want[i] {
		i++
	}
	line := 1 + bytes.Count(got[:i], []byte("\n"))
	gotLine := surroundingLine(got, i)
	wantLine := surroundingLine(want, i)
	return fmt.Errorf("first difference at byte %d (line %d):\n  got:  %q\n  want: %q (got %d bytes, want %d)",
		i, line, gotLine, wantLine, len(got), len(want))
}

func surroundingLine(b []byte, i int) string {
	if i > len(b) {
		i = len(b)
	}
	start := bytes.LastIndexByte(b[:i], '\n') + 1
	end := bytes.IndexByte(b[i:], '\n')
	if end < 0 {
		end = len(b)
	} else {
		end += i
	}
	return string(b[start:end])
}
