// Package scenario is CLASP's declarative campaign layer: a JSON scenario
// spec covering the knobs a campaign is assembled from (topology scale,
// seed, regions, days, tiers via campaign kinds, parallelism, fault
// profile, capture/traceroute cadence, and which analysis artifacts to
// emit), a strict parser with line-level errors, a runner that executes a
// spec against a fully wired platform, and a fleet mode that runs many
// scenarios concurrently over one shared warmed substrate.
//
// Every scenario doubles as a regression pin: the catalog under
// examples/scenarios/ keeps a golden report per scenario, and the
// table-driven golden test (and the `make scenario-smoke` CI gate) fails
// on any byte of drift. The paper-repro scenario reproduces
// paperscale_report.txt exactly.
package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"github.com/clasp-measurement/clasp/internal/faults"
	"github.com/clasp-measurement/clasp/internal/topology"
)

// Spec is one declarative scenario. The zero value of every optional field
// means "use the platform default", mirroring the clasp CLI flags, so a
// minimal spec is just a name plus campaigns or artifacts.
type Spec struct {
	// Name identifies the scenario (lowercase letters, digits, dashes).
	// Catalog scenarios use it to locate their golden report.
	Name string `json:"name"`
	// Description is free-form documentation, not interpreted.
	Description string `json:"description,omitempty"`
	// Seed drives all topology generation and simulation randomness
	// (default 1). Equal specs produce byte-identical output.
	Seed int64 `json:"seed,omitempty"`
	// Topology sets the synthetic-Internet knobs.
	Topology TopologySpec `json:"topology,omitempty"`
	// Days is the default campaign length in virtual days (default 30);
	// individual campaigns may override it.
	Days int `json:"days,omitempty"`
	// MinSamples is the differential-scan tuple threshold (default: scales
	// with the topology, 100 at paper scale — the CLI's -samples rule).
	MinSamples int `json:"minSamples,omitempty"`
	// Parallelism bounds concurrent VM workers per campaign round and
	// analysis workers per report (default 1). Output is byte-identical at
	// any value — the engine's determinism contract.
	Parallelism int `json:"parallelism,omitempty"`
	// FaultProfile names the canned fault-injection profile every campaign
	// runs under (default "none"; see faults.Names).
	FaultProfile string `json:"faultProfile,omitempty"`
	// CaptureEvery uploads a packet capture + SoMeta metadata for every
	// Nth download test (0 disables). TracerouteEvery runs follow-up
	// traceroutes per server every N days (0 disables).
	CaptureEvery    int `json:"captureEvery,omitempty"`
	TracerouteEvery int `json:"tracerouteEvery,omitempty"`
	// MaxMemoryMB budgets the resident footprint of campaign records
	// (0 = unbounded). Campaigns exceeding it stream their records through
	// a compressed, disk-spilled columnar log; the report is byte-identical
	// either way — the engine's determinism contract extends to storage.
	MaxMemoryMB int `json:"maxMemoryMB,omitempty"`
	// SpillDir is where streaming campaigns place their spilled record
	// logs ("" = the system temp dir).
	SpillDir string `json:"spillDir,omitempty"`
	// CheckpointDir enables campaign checkpointing: each campaign commits
	// its progress and record stream under <checkpointDir>/<name>/ by
	// atomic rename, and a killed run can be continued with `clasp resume`
	// to byte-identical output ("" disables). The scenario name scopes the
	// directory so fleet members never collide.
	CheckpointDir string `json:"checkpointDir,omitempty"`
	// CheckpointEvery commits a checkpoint every N completed campaign
	// rounds (hours); CheckpointVMHours instead commits once N VM-hours
	// accrue. With checkpointDir set and both zero: every round.
	CheckpointEvery   int `json:"checkpointEvery,omitempty"`
	CheckpointVMHours int `json:"checkpointVmHours,omitempty"`
	// Campaigns lists measurement campaigns to run, in order.
	Campaigns []CampaignSpec `json:"campaigns,omitempty"`
	// Artifacts lists paper artifacts to regenerate after the campaigns
	// (see Artifacts() for the names; "all" expands to every one).
	Artifacts []string `json:"artifacts,omitempty"`
}

// TopologySpec holds the topology-generation knobs.
type TopologySpec struct {
	// Scale sizes the synthetic Internet (1.0 = paper scale; default 0.25).
	Scale float64 `json:"scale,omitempty"`
	// PaperScale is shorthand for Scale: 1.0; setting both is an error.
	PaperScale bool `json:"paperScale,omitempty"`
}

// CampaignSpec is one measurement campaign of a scenario.
type CampaignSpec struct {
	// Kind selects the selection method and tier set: "topology" measures
	// the topology-selected servers over the premium tier; "differential"
	// measures the differential-selected servers over both tiers.
	Kind string `json:"kind"`
	// Regions to run the campaign in, in order.
	Regions []string `json:"regions"`
	// Days overrides the spec-level campaign length when positive.
	Days int `json:"days,omitempty"`
	// CongestionReport controls whether the §3.3 congestion report is
	// rendered after each region's campaign (default true for topology
	// campaigns, false for differential ones).
	CongestionReport *bool `json:"congestionReport,omitempty"`
	// TierComparison controls whether the §4.1 premium-vs-standard summary
	// is rendered (default true for differential campaigns; invalid for
	// topology campaigns, which measure one tier).
	TierComparison *bool `json:"tierComparison,omitempty"`
}

// Campaign kinds.
const (
	KindTopology     = "topology"
	KindDifferential = "differential"
)

// scale returns the resolved topology scale.
func (s *Spec) scale() float64 {
	if s.Topology.PaperScale {
		return 1.0
	}
	if s.Topology.Scale == 0 {
		return 0.25
	}
	return s.Topology.Scale
}

// seed returns the resolved seed.
func (s *Spec) seed() int64 {
	if s.Seed == 0 {
		return 1
	}
	return s.Seed
}

// days returns the resolved default campaign length.
func (s *Spec) days() int {
	if s.Days == 0 {
		return 30
	}
	return s.Days
}

// minSamples resolves the differential-scan threshold, scaling the paper's
// >=100 rule with the VP population exactly like the CLI's -samples default.
func (s *Spec) minSamples() int {
	if s.MinSamples > 0 {
		return s.MinSamples
	}
	ms := int(100 * s.scale())
	if ms < 6 {
		ms = 6
	}
	return ms
}

// renderCongestion resolves the campaign's congestion-report switch.
func (c *CampaignSpec) renderCongestion() bool {
	if c.CongestionReport != nil {
		return *c.CongestionReport
	}
	return c.Kind == KindTopology
}

// renderTiers resolves the campaign's tier-comparison switch.
func (c *CampaignSpec) renderTiers() bool {
	if c.TierComparison != nil {
		return *c.TierComparison
	}
	return c.Kind == KindDifferential
}

// ParseSpec parses and validates one scenario spec. Unknown fields, syntax
// errors and type mismatches are reported with the offending line and
// column of src; semantic problems name the field. name is used only for
// error messages (typically the file path).
func ParseSpec(src []byte, name string) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(src))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, specError(src, name, dec, err)
	}
	// A spec is one JSON document; trailing garbage is a mistake. Report it
	// at the end of the document proper, whatever the garbage parses as.
	if end := dec.InputOffset(); dec.More() || dec.Decode(new(json.RawMessage)) != io.EOF {
		line, col := lineCol(src, end)
		return nil, fmt.Errorf("%s:%d:%d: trailing data after the spec document", name, line, col)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return &s, nil
}

// specError attaches src line/column information to a decoder error.
func specError(src []byte, name string, dec *json.Decoder, err error) error {
	off := dec.InputOffset()
	var serr *json.SyntaxError
	var terr *json.UnmarshalTypeError
	switch {
	case errors.As(err, &serr):
		off = serr.Offset
	case errors.As(err, &terr):
		off = terr.Offset
	default:
		// Unknown-field errors surface only once the enclosing object is
		// consumed; point at the field itself instead of the closing brace.
		if field, ok := strings.CutPrefix(err.Error(), `json: unknown field "`); ok {
			field = strings.TrimSuffix(field, `"`)
			if i := bytes.Index(src, []byte(`"`+field+`"`)); i >= 0 {
				off = int64(i)
			}
		}
	}
	line, col := lineCol(src, off)
	return fmt.Errorf("%s:%d:%d: %w", name, line, col, err)
}

// lineCol converts a byte offset into 1-based line and column numbers.
func lineCol(src []byte, off int64) (line, col int) {
	if off < 0 {
		off = 0
	}
	if off > int64(len(src)) {
		off = int64(len(src))
	}
	line, col = 1, 1
	for _, b := range src[:off] {
		if b == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return line, col
}

// LoadFile reads and parses one scenario spec file.
func LoadFile(path string) (*Spec, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return ParseSpec(src, path)
}

// validName constrains scenario names to safe slug form (they name golden
// files and appear in fleet banners).
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
		case r == '-' && i > 0 && i < len(name)-1:
		default:
			return false
		}
	}
	return true
}

// knownRegions is the static region set of the synthetic Internet.
func knownRegions() map[string]bool {
	out := make(map[string]bool)
	for _, r := range topology.Regions() {
		out[r.Name] = true
	}
	return out
}

// Validate checks the spec's semantic constraints. All problems are
// reported at once (joined), each naming the offending field.
func (s *Spec) Validate() error {
	var errs []error
	bad := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}
	if !validName(s.Name) {
		bad("name: %q is not a valid scenario name (want lowercase letters, digits and interior dashes)", s.Name)
	}
	if s.Seed < 0 {
		bad("seed: must be non-negative, got %d", s.Seed)
	}
	if s.Topology.Scale < 0 {
		bad("topology.scale: must be positive, got %v", s.Topology.Scale)
	}
	if s.Topology.PaperScale && s.Topology.Scale != 0 {
		bad("topology: scale and paperScale are mutually exclusive")
	}
	if s.Days < 0 {
		bad("days: must be non-negative, got %d", s.Days)
	}
	if s.MinSamples < 0 {
		bad("minSamples: must be non-negative, got %d", s.MinSamples)
	}
	if s.Parallelism < 0 {
		bad("parallelism: must be non-negative, got %d", s.Parallelism)
	}
	if s.CaptureEvery < 0 {
		bad("captureEvery: must be non-negative, got %d", s.CaptureEvery)
	}
	if s.TracerouteEvery < 0 {
		bad("tracerouteEvery: must be non-negative, got %d", s.TracerouteEvery)
	}
	if s.MaxMemoryMB < 0 {
		bad("maxMemoryMB: must be non-negative, got %d", s.MaxMemoryMB)
	}
	if s.CheckpointEvery < 0 {
		bad("checkpointEvery: must be non-negative, got %d", s.CheckpointEvery)
	}
	if s.CheckpointVMHours < 0 {
		bad("checkpointVmHours: must be non-negative, got %d", s.CheckpointVMHours)
	}
	if s.CheckpointDir == "" && (s.CheckpointEvery > 0 || s.CheckpointVMHours > 0) {
		bad("checkpointEvery/checkpointVmHours: need checkpointDir to take effect")
	}
	if _, err := faults.Named(s.FaultProfile); err != nil {
		bad("faultProfile: %q is not a canned profile (have %s)", s.FaultProfile, strings.Join(faults.Names(), ", "))
	}
	if len(s.Campaigns) == 0 && len(s.Artifacts) == 0 {
		bad("spec runs nothing: want at least one campaign or artifact")
	}
	regions := knownRegions()
	for i := range s.Campaigns {
		c := &s.Campaigns[i]
		field := fmt.Sprintf("campaigns[%d]", i)
		switch c.Kind {
		case KindTopology, KindDifferential:
		default:
			bad("%s.kind: %q is not a campaign kind (want %s or %s)", field, c.Kind, KindTopology, KindDifferential)
		}
		if len(c.Regions) == 0 {
			bad("%s.regions: want at least one region", field)
		}
		for _, r := range c.Regions {
			if !regions[r] {
				bad("%s.regions: unknown region %q (have %s)", field, r, strings.Join(regionNames(regions), ", "))
			}
		}
		if c.Days < 0 {
			bad("%s.days: must be non-negative, got %d", field, c.Days)
		}
		if c.Kind == KindTopology && c.TierComparison != nil && *c.TierComparison {
			bad("%s.tierComparison: topology campaigns measure one tier; use a differential campaign", field)
		}
	}
	known := knownArtifacts()
	for i, a := range s.Artifacts {
		if !known[a] {
			bad("artifacts[%d]: unknown artifact %q (have %s)", i, a, strings.Join(Artifacts(), ", "))
		}
	}
	return errors.Join(errs...)
}

// regionNames renders the known region set, sorted, for error messages.
func regionNames(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}
