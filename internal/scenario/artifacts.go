package scenario

import (
	"fmt"
	"io"

	"github.com/clasp-measurement/clasp/internal/bgp"
	"github.com/clasp-measurement/clasp/internal/core"
	"github.com/clasp-measurement/clasp/internal/selection"

	clasp "github.com/clasp-measurement/clasp"
)

// artifactOrder is every paper artifact, in the order "all" renders them.
var artifactOrder = []string{
	"table1", "fig2", "fig3", "fig4a", "fig4b", "fig4c",
	"fig5", "fig6a", "fig6b", "fig6c", "fig7", "fig8", "headlines",
}

// Artifacts returns the renderable artifact names ("all" last).
func Artifacts() []string {
	out := make([]string, 0, len(artifactOrder)+1)
	out = append(out, artifactOrder...)
	return append(out, "all")
}

// knownArtifacts is the Artifacts list as a set.
func knownArtifacts() map[string]bool {
	set := make(map[string]bool)
	for _, a := range Artifacts() {
		set[a] = true
	}
	return set
}

// ArtifactCache shares campaign results across the artifacts of one run so
// each region is measured exactly once (the `report all` economics: ten of
// the thirteen artifacts reuse the same six topology campaigns).
type ArtifactCache struct {
	topo    map[string]*core.CampaignResult
	topoSel map[string]*selection.TopoResult
	diff    map[string]*core.CampaignResult
	diffSel map[string][]selection.DiffSelected
}

// NewArtifactCache returns an empty cache.
func NewArtifactCache() *ArtifactCache {
	return &ArtifactCache{
		topo:    make(map[string]*core.CampaignResult),
		topoSel: make(map[string]*selection.TopoResult),
		diff:    make(map[string]*core.CampaignResult),
		diffSel: make(map[string][]selection.DiffSelected),
	}
}

func (c *ArtifactCache) topology(eng *core.CLASP, region string, days int) (*core.CampaignResult, *selection.TopoResult, error) {
	if res, ok := c.topo[region]; ok {
		return res, c.topoSel[region], nil
	}
	res, sel, err := eng.RunTopologyCampaign(region, days)
	if err != nil {
		return nil, nil, err
	}
	c.topo[region] = res
	c.topoSel[region] = sel
	return res, sel, nil
}

func (c *ArtifactCache) differential(eng *core.CLASP, region string, days, minSamples int) (*core.CampaignResult, []selection.DiffSelected, error) {
	if res, ok := c.diff[region]; ok {
		return res, c.diffSel[region], nil
	}
	res, sel, err := eng.RunDifferentialCampaign(region, days, minSamples)
	if err != nil {
		return nil, nil, err
	}
	c.diff[region] = res
	c.diffSel[region] = sel
	return res, sel, nil
}

// RenderArtifact regenerates one (or all) paper artifacts. It is the single
// artifact renderer: `clasp report` and scenario runs both call it, which
// is what makes a scenario's artifact section byte-identical to the CLI.
func RenderArtifact(out io.Writer, p *clasp.Platform, cache *ArtifactCache, artifact string, days, minSamples int) error {
	eng := p.Engine()

	topoCampaigns := func(regions []string) (map[string]*core.CampaignResult, error) {
		results := make(map[string]*core.CampaignResult)
		for _, r := range regions {
			res, _, err := cache.topology(eng, r, days)
			if err != nil {
				return nil, err
			}
			results[r] = res
		}
		return results, nil
	}

	switch artifact {
	case "table1":
		rows, err := eng.Table1(core.Table1Regions)
		if err != nil {
			return err
		}
		core.WriteTable1(out, rows)

	case "fig2":
		results, err := topoCampaigns(core.TopologyRegions)
		if err != nil {
			return err
		}
		core.WriteFig2(out, core.Fig2(results, nil, eng.Opts.Parallelism))

	case "fig3":
		res, _, err := cache.topology(eng, "us-west1", days)
		if err != nil {
			return err
		}
		d, err := eng.Fig3(res)
		if err != nil {
			return err
		}
		core.WriteFig3(out, d)

	case "fig4a":
		results, err := topoCampaigns(core.Table1Regions)
		if err != nil {
			return err
		}
		for _, r := range core.Table1Regions {
			d, err := core.Fig4(results[r], bgp.Premium)
			if err != nil {
				return err
			}
			core.WriteFig4(out, d)
		}

	case "fig4b", "fig4c":
		tier := bgp.Premium
		if artifact == "fig4c" {
			tier = bgp.Standard
		}
		for _, r := range core.DifferentialRegions {
			res, _, err := cache.differential(eng, r, days, minSamples)
			if err != nil {
				return err
			}
			d, err := core.Fig4(res, tier)
			if err != nil {
				return err
			}
			core.WriteFig4(out, d)
		}

	case "fig5":
		res, sel, err := cache.differential(eng, "europe-west1", days, minSamples)
		if err != nil {
			return err
		}
		s, err := core.Fig5(res, sel)
		if err != nil {
			return err
		}
		core.WriteFig5(out, s)

	case "fig6a", "fig6b":
		region := "us-east1"
		if artifact == "fig6b" {
			region = "us-west1"
		}
		res, _, err := cache.topology(eng, region, days)
		if err != nil {
			return err
		}
		core.WriteFig6(out, region, eng.Fig6(res, bgp.Premium, 10))

	case "fig6c":
		res, _, err := cache.differential(eng, "europe-west1", days, minSamples)
		if err != nil {
			return err
		}
		core.WriteFig6(out, "europe-west1 premium", eng.Fig6(res, bgp.Premium, 6))
		core.WriteFig6(out, "europe-west1 standard", eng.Fig6(res, bgp.Standard, 6))

	case "fig7":
		for _, region := range core.Table1Regions {
			_, sel, err := cache.topology(eng, region, days)
			if err != nil {
				return err
			}
			core.WriteFig7(out, eng.Fig7(region, sel, nil))
		}
		diff, _, err := eng.SelectDifferentialServers("europe-west1", minSamples)
		if err != nil {
			return err
		}
		core.WriteFig7(out, eng.Fig7("europe-west1", nil, diff))

	case "fig8":
		results, err := topoCampaigns(core.Table1Regions)
		if err != nil {
			return err
		}
		for _, r := range core.Table1Regions {
			core.WriteFig8(out, r, eng.Fig8(results[r], bgp.Premium))
		}

	case "headlines":
		results, err := topoCampaigns(core.TopologyRegions)
		if err != nil {
			return err
		}
		diff, _, err := cache.differential(eng, "europe-west1", days, minSamples)
		if err != nil {
			return err
		}
		core.WriteHeadlines(out, eng.ComputeHeadlines(results, diff))

	case "all":
		for _, a := range artifactOrder {
			core.Separator(out, a)
			if err := RenderArtifact(out, p, cache, a, days, minSamples); err != nil {
				return fmt.Errorf("%s: %w", a, err)
			}
		}

	default:
		return fmt.Errorf("unknown artifact %q", artifact)
	}
	return nil
}
