package scenario

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"github.com/clasp-measurement/clasp/internal/bgp"
	"github.com/clasp-measurement/clasp/internal/core"
	"github.com/clasp-measurement/clasp/internal/selection"

	clasp "github.com/clasp-measurement/clasp"
)

// artifactOrder is every paper artifact, in the order "all" renders them.
var artifactOrder = []string{
	"table1", "fig2", "fig3", "fig4a", "fig4b", "fig4c",
	"fig5", "fig6a", "fig6b", "fig6c", "fig7", "fig8", "headlines",
}

// Artifacts returns the renderable artifact names ("all" last).
func Artifacts() []string {
	out := make([]string, 0, len(artifactOrder)+1)
	out = append(out, artifactOrder...)
	return append(out, "all")
}

// knownArtifacts is the Artifacts list as a set.
func knownArtifacts() map[string]bool {
	set := make(map[string]bool)
	for _, a := range Artifacts() {
		set[a] = true
	}
	return set
}

// campaignKey identifies one campaign an artifact depends on. Days and
// minSamples are part of the key, so a scenario measuring the same region
// at two different lengths gets two distinct campaigns.
type campaignKey struct {
	kind       string
	region     string
	days       int
	minSamples int
}

func (k campaignKey) ref() core.CampaignRef {
	return core.CampaignRef{Kind: k.kind, Region: k.region, Days: k.days, MinSamples: k.minSamples}
}

// campaignEntry is the cache cell for one campaign: planning and running
// each happen exactly once (two-stage singleflight), and every concurrent
// requester blocks on the same execution instead of launching its own.
type campaignEntry struct {
	planOnce sync.Once
	plan     *core.PlannedCampaign
	planErr  error
	runOnce  sync.Once
	res      *core.CampaignResult
	runErr   error
}

// ArtifactCache shares campaign results across the artifacts of one run so
// each region is measured exactly once (the `report all` economics: ten of
// the thirteen artifacts reuse the same six topology campaigns). It is
// safe for concurrent use: overlapping renderers requesting the same
// campaign coalesce onto a single execution.
type ArtifactCache struct {
	mu      sync.Mutex
	entries map[campaignKey]*campaignEntry
	sched   *core.CommandScheduler
	fills   atomic.Int64
}

// NewArtifactCache returns an empty cache.
func NewArtifactCache() *ArtifactCache {
	return &ArtifactCache{entries: make(map[campaignKey]*campaignEntry)}
}

// UseScheduler routes the cache's campaign planning and execution through a
// command scheduler, which accounts whole-command progress and, on resume,
// skips campaigns whose checkpoints are already complete.
func (c *ArtifactCache) UseScheduler(s *core.CommandScheduler) { c.sched = s }

// Fills reports how many campaigns the cache has actually executed —
// concurrent requests for the same campaign count once.
func (c *ArtifactCache) Fills() int64 { return c.fills.Load() }

func (c *ArtifactCache) entry(k campaignKey) *campaignEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if !ok {
		e = &campaignEntry{}
		c.entries[k] = e
	}
	return e
}

// planEntry runs the campaign's planning phase (selection, checkpoint
// attachment) at most once.
func (c *ArtifactCache) planEntry(eng *core.CLASP, k campaignKey) *campaignEntry {
	e := c.entry(k)
	e.planOnce.Do(func() {
		if c.sched != nil {
			e.plan, e.planErr = c.sched.Plan(k.ref())
		} else {
			e.plan, e.planErr = eng.PlanRef(k.ref())
		}
	})
	return e
}

// runEntry executes the campaign at most once; concurrent callers block
// until the single execution finishes.
func (c *ArtifactCache) runEntry(eng *core.CLASP, k campaignKey) *campaignEntry {
	e := c.planEntry(eng, k)
	e.runOnce.Do(func() {
		if e.planErr != nil {
			e.runErr = e.planErr
			return
		}
		c.fills.Add(1)
		if c.sched != nil {
			e.res, e.runErr = c.sched.Run(e.plan)
		} else {
			e.res, e.runErr = eng.RunPlanned(e.plan)
		}
	})
	return e
}

func (c *ArtifactCache) topology(eng *core.CLASP, region string, days int) (*core.CampaignResult, *selection.TopoResult, error) {
	e := c.runEntry(eng, campaignKey{kind: "topology", region: region, days: days})
	if e.runErr != nil {
		return nil, nil, e.runErr
	}
	return e.res, e.plan.TopoSel, nil
}

func (c *ArtifactCache) differential(eng *core.CLASP, region string, days, minSamples int) (*core.CampaignResult, []selection.DiffSelected, error) {
	e := c.runEntry(eng, campaignKey{kind: "differential", region: region, days: days, minSamples: minSamples})
	if e.runErr != nil {
		return nil, nil, e.runErr
	}
	return e.res, e.plan.DiffSel, nil
}

// artifactCampaigns returns the campaigns one artifact renders from, in
// the order its renderer requests them. Selection-only artifacts (table1)
// return nothing; fig7 keeps its historical campaign dependency so its
// standalone cost accounting is unchanged.
func artifactCampaigns(artifact string, days, minSamples int) []campaignKey {
	topo := func(regions ...string) []campaignKey {
		out := make([]campaignKey, len(regions))
		for i, r := range regions {
			out[i] = campaignKey{kind: "topology", region: r, days: days}
		}
		return out
	}
	diff := func(regions ...string) []campaignKey {
		out := make([]campaignKey, len(regions))
		for i, r := range regions {
			out[i] = campaignKey{kind: "differential", region: r, days: days, minSamples: minSamples}
		}
		return out
	}
	switch artifact {
	case "fig2":
		return topo(core.TopologyRegions...)
	case "fig3", "fig6b":
		return topo("us-west1")
	case "fig4a", "fig7", "fig8":
		return topo(core.Table1Regions...)
	case "fig4b", "fig4c":
		return diff(core.DifferentialRegions...)
	case "fig5", "fig6c":
		return diff("europe-west1")
	case "fig6a":
		return topo("us-east1")
	case "headlines":
		return append(topo(core.TopologyRegions...), diff("europe-west1")...)
	}
	return nil
}

// CampaignRefs returns the deduplicated campaign set an artifact list
// depends on, in first-request order — the campaign plan a command
// manifest records and Prelaunch executes.
func CampaignRefs(artifacts []string, days, minSamples int) []core.CampaignRef {
	var refs []core.CampaignRef
	seen := make(map[campaignKey]bool)
	for _, a := range artifacts {
		names := []string{a}
		if a == "all" {
			names = artifactOrder
		}
		for _, name := range names {
			for _, k := range artifactCampaigns(name, days, minSamples) {
				if seen[k] {
					continue
				}
				seen[k] = true
				refs = append(refs, k.ref())
			}
		}
	}
	return refs
}

// Prelaunch plans every campaign the artifact set needs (sequentially —
// selections share pilot-scan state) and launches their executions in the
// background. Renderers then block only on the campaigns they consume, so
// analysis and rendering overlap measurement; the engine's shared worker
// pool bounds how much measurement actually runs at once. Planning errors
// return immediately; execution errors surface when a renderer requests
// the failed campaign.
func (c *ArtifactCache) Prelaunch(eng *core.CLASP, artifacts []string, days, minSamples int) error {
	var keys []campaignKey
	for _, ref := range CampaignRefs(artifacts, days, minSamples) {
		keys = append(keys, campaignKey{kind: ref.Kind, region: ref.Region, days: ref.Days, minSamples: ref.MinSamples})
	}
	for _, k := range keys {
		if e := c.planEntry(eng, k); e.planErr != nil {
			return e.planErr
		}
	}
	for _, k := range keys {
		k := k
		go c.runEntry(eng, k)
	}
	return nil
}

// renderAll renders every artifact of "all" concurrently, each into its
// own buffer, and streams the buffers to out in the pinned artifact order.
// Campaigns are prelaunched up front, so an artifact renders as soon as
// its input campaigns complete — while later campaigns still measure —
// and the concatenated output is byte-identical to the sequential loop.
func renderAll(out io.Writer, p *clasp.Platform, cache *ArtifactCache, days, minSamples int) error {
	if err := cache.Prelaunch(p.Engine(), artifactOrder, days, minSamples); err != nil {
		return err
	}
	type slot struct {
		buf  bytes.Buffer
		err  error
		done chan struct{}
	}
	slots := make([]*slot, len(artifactOrder))
	for i := range artifactOrder {
		s := &slot{done: make(chan struct{})}
		slots[i] = s
		go func(a string, s *slot) {
			defer close(s.done)
			core.Separator(&s.buf, a)
			if err := RenderArtifact(&s.buf, p, cache, a, days, minSamples); err != nil {
				s.err = fmt.Errorf("%s: %w", a, err)
			}
		}(artifactOrder[i], s)
	}
	for _, s := range slots {
		<-s.done
		if s.err != nil {
			return s.err
		}
		if _, err := out.Write(s.buf.Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// RenderArtifact regenerates one (or all) paper artifacts. It is the single
// artifact renderer: `clasp report` and scenario runs both call it, which
// is what makes a scenario's artifact section byte-identical to the CLI.
func RenderArtifact(out io.Writer, p *clasp.Platform, cache *ArtifactCache, artifact string, days, minSamples int) error {
	eng := p.Engine()

	topoCampaigns := func(regions []string) (map[string]*core.CampaignResult, error) {
		results := make(map[string]*core.CampaignResult)
		for _, r := range regions {
			res, _, err := cache.topology(eng, r, days)
			if err != nil {
				return nil, err
			}
			results[r] = res
		}
		return results, nil
	}

	switch artifact {
	case "table1":
		rows, err := eng.Table1(core.Table1Regions)
		if err != nil {
			return err
		}
		core.WriteTable1(out, rows)

	case "fig2":
		results, err := topoCampaigns(core.TopologyRegions)
		if err != nil {
			return err
		}
		core.WriteFig2(out, core.Fig2(results, nil, eng.Opts.Parallelism))

	case "fig3":
		res, _, err := cache.topology(eng, "us-west1", days)
		if err != nil {
			return err
		}
		d, err := eng.Fig3(res)
		if err != nil {
			return err
		}
		core.WriteFig3(out, d)

	case "fig4a":
		results, err := topoCampaigns(core.Table1Regions)
		if err != nil {
			return err
		}
		for _, r := range core.Table1Regions {
			d, err := core.Fig4(results[r], bgp.Premium)
			if err != nil {
				return err
			}
			core.WriteFig4(out, d)
		}

	case "fig4b", "fig4c":
		tier := bgp.Premium
		if artifact == "fig4c" {
			tier = bgp.Standard
		}
		for _, r := range core.DifferentialRegions {
			res, _, err := cache.differential(eng, r, days, minSamples)
			if err != nil {
				return err
			}
			d, err := core.Fig4(res, tier)
			if err != nil {
				return err
			}
			core.WriteFig4(out, d)
		}

	case "fig5":
		res, sel, err := cache.differential(eng, "europe-west1", days, minSamples)
		if err != nil {
			return err
		}
		s, err := core.Fig5(res, sel)
		if err != nil {
			return err
		}
		core.WriteFig5(out, s)

	case "fig6a", "fig6b":
		region := "us-east1"
		if artifact == "fig6b" {
			region = "us-west1"
		}
		res, _, err := cache.topology(eng, region, days)
		if err != nil {
			return err
		}
		core.WriteFig6(out, region, eng.Fig6(res, bgp.Premium, 10))

	case "fig6c":
		res, _, err := cache.differential(eng, "europe-west1", days, minSamples)
		if err != nil {
			return err
		}
		core.WriteFig6(out, "europe-west1 premium", eng.Fig6(res, bgp.Premium, 6))
		core.WriteFig6(out, "europe-west1 standard", eng.Fig6(res, bgp.Standard, 6))

	case "fig7":
		for _, region := range core.Table1Regions {
			_, sel, err := cache.topology(eng, region, days)
			if err != nil {
				return err
			}
			core.WriteFig7(out, eng.Fig7(region, sel, nil))
		}
		diff, _, err := eng.SelectDifferentialServers("europe-west1", minSamples)
		if err != nil {
			return err
		}
		core.WriteFig7(out, eng.Fig7("europe-west1", nil, diff))

	case "fig8":
		results, err := topoCampaigns(core.Table1Regions)
		if err != nil {
			return err
		}
		for _, r := range core.Table1Regions {
			core.WriteFig8(out, r, eng.Fig8(results[r], bgp.Premium))
		}

	case "headlines":
		results, err := topoCampaigns(core.TopologyRegions)
		if err != nil {
			return err
		}
		diff, _, err := cache.differential(eng, "europe-west1", days, minSamples)
		if err != nil {
			return err
		}
		core.WriteHeadlines(out, eng.ComputeHeadlines(results, diff))

	case "all":
		return renderAll(out, p, cache, days, minSamples)

	default:
		return fmt.Errorf("unknown artifact %q", artifact)
	}
	return nil
}
