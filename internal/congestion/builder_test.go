package congestion

import (
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// partitionFingerprint reduces a partition to its observable outputs.
func partitionFingerprint(p *Partition, det *Detector) map[string]any {
	congested, total := p.DayTally(det.H, det.MinSamples)
	events, hours := p.HourTally(det.H, det.MinSamples)
	return map[string]any{
		"days":      p.Days(det.MinSamples),
		"dayTally":  []int{congested, total},
		"hourTally": []int{events, hours},
		"medians":   p.DayMedians(),
		"events":    det.EventsIn(p),
	}
}

// TestPartitionBuilderMatchesNewPartition pins that chunk-at-a-time builds
// (the cursor path) produce partitions indistinguishable from the one-shot
// split, for sorted and unsorted input and any chunking.
func TestPartitionBuilderMatchesNewPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	base := time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)
	det := &Detector{H: 0.5, MinSamples: 4}
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(400)
		samples := make([]Sample, n)
		for i := range samples {
			at := base.Add(time.Duration(i) * time.Hour)
			if trial%3 == 2 { // unsorted variant
				at = base.Add(time.Duration(rng.Intn(600)) * time.Hour)
			}
			samples[i] = Sample{Time: at, Mbps: rng.Float64() * 500}
		}
		want := partitionFingerprint(NewPartition(Series{PairID: "p", Samples: samples}), det)

		b := NewPartitionBuilder("p")
		for off := 0; off < n; {
			sz := rng.Intn(64) + 1
			if off+sz > n {
				sz = n - off
			}
			b.Add(samples[off : off+sz])
			off += sz
		}
		if b.Len() != n {
			t.Fatalf("trial %d: builder Len = %d, want %d", trial, b.Len(), n)
		}
		got := partitionFingerprint(b.Finish(), det)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (n=%d): chunked partition differs from one-shot", trial, n)
		}
	}
}

// TestPartitionBuilderCopiesChunks pins that Add does not retain the
// caller's buffer — cursor batches are reused between Next calls.
func TestPartitionBuilderCopiesChunks(t *testing.T) {
	base := time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)
	buf := make([]Sample, 4)
	b := NewPartitionBuilder("p")
	for i := range buf {
		buf[i] = Sample{Time: base.Add(time.Duration(i) * time.Hour), Mbps: 100}
	}
	b.Add(buf)
	for i := range buf { // simulate cursor batch reuse
		buf[i] = Sample{Time: base.Add(time.Duration(100+i) * time.Hour), Mbps: -1}
	}
	b.Add(buf)
	p := b.Finish()
	if p.samples[0].Mbps != 100 {
		t.Fatal("builder aliased the first chunk")
	}
	if len(p.samples) != 8 {
		t.Fatalf("got %d samples, want 8", len(p.samples))
	}
}
