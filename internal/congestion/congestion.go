// Package congestion implements CLASP's throughput-variability congestion
// detection (§3.3):
//
//   - the normalised peak-to-trough daily difference
//     V(s,d) = (Tmax(s,d) - Tmin(s,d)) / Tmax(s,d),
//   - the normalised intra-day hourly difference
//     VH(s,t) = (Tmax(s,d) - T(s,t)) / Tmax(s,d),
//   - the elbow method over the congested-fraction-vs-threshold curve that
//     justified H = 0.5,
//   - congestion-event extraction and hourly congestion probability in the
//     test server's local time (Fig. 6).
package congestion

import (
	"fmt"
	"time"

	"github.com/clasp-measurement/clasp/internal/stats"
)

// DefaultThreshold is the paper's chosen variability threshold H.
const DefaultThreshold = 0.5

// Sample is one hourly throughput observation for a VM-server pair.
type Sample struct {
	Time time.Time // UTC
	Mbps float64
}

// Series is the hourly history of one VM-server pair, in time order.
type Series struct {
	PairID  string // e.g. "us-west1/ookla-123"
	Samples []Sample
}

// dayIndex buckets a UTC timestamp into a day number.
func dayIndex(t time.Time) int { return int(t.Unix() / 86400) }

// Day is the per-day summary of one pair.
type Day struct {
	PairID     string
	Day        int // days since the Unix epoch
	Tmax, Tmin float64
	V          float64 // (Tmax - Tmin) / Tmax
	Samples    int
}

// SplitDays summarises a series into per-day V(s,d) records. Days with
// fewer than minSamples observations are skipped (a half-covered day can
// fake a low V). One-shot convenience over NewPartition; callers that
// evaluate several thresholds or both day and hour views should build the
// Partition themselves and reuse it.
func SplitDays(s Series, minSamples int) []Day {
	return NewPartition(s).Days(minSamples)
}

// Event is one congested hour: VH(s,t) exceeded the threshold.
type Event struct {
	PairID string
	Time   time.Time
	Mbps   float64
	Tmax   float64 // the day's maximum
	VH     float64
}

// Detector labels days and hours against a threshold H.
type Detector struct {
	H          float64
	MinSamples int // minimum samples per day (default 4)
}

// NewDetector creates a detector with the paper's defaults.
func NewDetector() *Detector { return &Detector{H: DefaultThreshold} }

// CongestedDays returns the days of the series with V(s,d) > H.
func (d *Detector) CongestedDays(s Series) []Day {
	var out []Day
	for _, day := range SplitDays(s, d.MinSamples) {
		if day.V > d.H {
			out = append(out, day)
		}
	}
	return out
}

// Events returns the congested hours of the series: samples whose
// normalised intra-day difference VH(s,t) exceeds H.
func (d *Detector) Events(s Series) []Event {
	return d.EventsIn(NewPartition(s))
}

// FractionCongestedDays returns the fraction of pair-days with V > H
// across many series (one point of Fig. 2a).
func FractionCongestedDays(series []Series, h float64, minSamples int) float64 {
	total, congested := 0, 0
	for i := range series {
		c, t := NewPartition(series[i]).DayTally(h, minSamples)
		congested += c
		total += t
	}
	if total == 0 {
		return 0
	}
	return float64(congested) / float64(total)
}

// FractionCongestedHours returns the fraction of pair-hours with VH > H
// (one point of Fig. 2b). The denominator counts every sample on a
// qualifying day; samples on zero-peak days are measured hours that can
// never be events.
func FractionCongestedHours(series []Series, h float64, minSamples int) float64 {
	total, congested := 0, 0
	for i := range series {
		e, n := NewPartition(series[i]).HourTally(h, minSamples)
		congested += e
		total += n
	}
	if total == 0 {
		return 0
	}
	return float64(congested) / float64(total)
}

// SweepPoint is one point of the threshold sweep in Fig. 2.
type SweepPoint struct {
	H        float64
	Fraction float64
}

// SweepDays evaluates FractionCongestedDays over a threshold grid. Each
// series is split into days once; every threshold then scans the cached
// partition, so the sweep costs one split plus |hs| cheap tallies instead
// of |hs| full re-splits.
func SweepDays(series []Series, hs []float64, minSamples int) []SweepPoint {
	return SweepDaysPartitioned(Partitions(series), hs, minSamples)
}

// SweepHours evaluates FractionCongestedHours over a threshold grid, with
// the same split-once memoization as SweepDays.
func SweepHours(series []Series, hs []float64, minSamples int) []SweepPoint {
	return SweepHoursPartitioned(Partitions(series), hs, minSamples)
}

// ElbowThreshold locates the knee of a sweep with the maximum-distance-to-
// chord method, returning the H at the elbow.
func ElbowThreshold(sweep []SweepPoint) (float64, error) {
	if len(sweep) < 3 {
		return 0, fmt.Errorf("congestion: sweep too short for elbow detection")
	}
	xs := make([]float64, len(sweep))
	ys := make([]float64, len(sweep))
	for i, p := range sweep {
		xs[i] = p.H
		ys[i] = p.Fraction
	}
	idx, err := stats.Elbow(xs, ys)
	if err != nil {
		return 0, fmt.Errorf("congestion: %w", err)
	}
	return sweep[idx].H, nil
}

// HourlyProbability computes the congestion probability per local
// hour-of-day: events in that hour divided by measurements in that hour.
// utcOffset converts timestamps to the test server's local time, aligning
// with user activity as Fig. 6 does.
func HourlyProbability(s Series, events []Event, utcOffset int) [24]float64 {
	var meas, ev [24]int
	localHour := func(t time.Time) int {
		h := (t.Hour() + utcOffset) % 24
		if h < 0 {
			h += 24
		}
		return h
	}
	for _, smp := range s.Samples {
		meas[localHour(smp.Time)]++
	}
	for _, e := range events {
		ev[localHour(e.Time)]++
	}
	var out [24]float64
	for h := 0; h < 24; h++ {
		if meas[h] > 0 {
			out[h] = float64(ev[h]) / float64(meas[h])
		}
	}
	return out
}

// CongestedPair reports whether a pair qualifies as "congested" under the
// Fig. 8 rule: more than fracDays of its measured days contain at least one
// congestion event (the paper used 10 %).
func CongestedPair(s Series, det *Detector, fracDays float64) bool {
	return CongestedPairIn(NewPartition(s), det, fracDays)
}

// CongestedPairIn is CongestedPair over a prepared partition, so callers
// that already hold one (the incremental campaign feed, the memoized
// analyses) skip the re-partition.
func CongestedPairIn(p *Partition, det *Detector, fracDays float64) bool {
	if fracDays <= 0 {
		fracDays = 0.1
	}
	days := p.Days(det.MinSamples)
	if len(days) == 0 {
		return false
	}
	eventDays := make(map[int]bool)
	for _, e := range det.EventsIn(p) {
		eventDays[dayIndex(e.Time)] = true
	}
	return float64(len(eventDays))/float64(len(days)) > fracDays
}
