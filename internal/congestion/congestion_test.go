package congestion

import (
	"math"
	"testing"
	"time"
)

var t0 = time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)

// flatDaySeries builds `days` of hourly samples at `base` Mbps, dipping to
// `dip` Mbps between hour 19 and 22 on the given dip days.
func flatDaySeries(days int, base, dip float64, dipDays map[int]bool) Series {
	var s Series
	s.PairID = "test-pair"
	for d := 0; d < days; d++ {
		for h := 0; h < 24; h++ {
			v := base
			if dipDays[d] && h >= 19 && h <= 22 {
				v = dip
			}
			s.Samples = append(s.Samples, Sample{Time: t0.Add(time.Duration(d*24+h) * time.Hour), Mbps: v})
		}
	}
	return s
}

func TestSplitDaysV(t *testing.T) {
	s := flatDaySeries(3, 400, 100, map[int]bool{1: true})
	days := SplitDays(s, 0)
	if len(days) != 3 {
		t.Fatalf("days = %d", len(days))
	}
	if days[0].V != 0 {
		t.Errorf("flat day V = %v", days[0].V)
	}
	// Dip day: V = (400-100)/400 = 0.75.
	if math.Abs(days[1].V-0.75) > 1e-9 {
		t.Errorf("dip day V = %v, want 0.75", days[1].V)
	}
	if days[1].Tmax != 400 || days[1].Tmin != 100 {
		t.Errorf("day summary: %+v", days[1])
	}
	if days[0].Samples != 24 {
		t.Errorf("samples = %d", days[0].Samples)
	}
}

func TestSplitDaysMinSamples(t *testing.T) {
	var s Series
	for h := 0; h < 3; h++ { // only 3 samples in the day
		s.Samples = append(s.Samples, Sample{Time: t0.Add(time.Duration(h) * time.Hour), Mbps: 100})
	}
	if days := SplitDays(s, 4); len(days) != 0 {
		t.Errorf("under-covered day kept: %v", days)
	}
	if days := SplitDays(s, 3); len(days) != 1 {
		t.Errorf("3-sample day dropped at min 3")
	}
}

func TestDetectorCongestedDays(t *testing.T) {
	s := flatDaySeries(10, 400, 150, map[int]bool{2: true, 7: true})
	det := NewDetector()
	days := det.CongestedDays(s)
	if len(days) != 2 {
		t.Fatalf("congested days = %d, want 2", len(days))
	}
	// Shallow dip below threshold is not congested: V = (400-250)/400 = 0.375.
	s2 := flatDaySeries(5, 400, 250, map[int]bool{1: true})
	if days := det.CongestedDays(s2); len(days) != 0 {
		t.Errorf("shallow dip flagged: %v", days)
	}
}

func TestDetectorEvents(t *testing.T) {
	s := flatDaySeries(2, 400, 100, map[int]bool{0: true})
	det := NewDetector()
	events := det.Events(s)
	// Hours 19-22 of day 0: 4 events.
	if len(events) != 4 {
		t.Fatalf("events = %d, want 4", len(events))
	}
	for _, e := range events {
		if e.VH <= 0.5 {
			t.Errorf("event VH = %v", e.VH)
		}
		if e.Time.Hour() < 19 || e.Time.Hour() > 22 {
			t.Errorf("event at hour %d", e.Time.Hour())
		}
		if e.Tmax != 400 || e.Mbps != 100 {
			t.Errorf("event fields: %+v", e)
		}
	}
}

func TestFractions(t *testing.T) {
	series := []Series{
		flatDaySeries(10, 400, 100, map[int]bool{0: true}),
		flatDaySeries(10, 400, 100, nil),
	}
	fd := FractionCongestedDays(series, 0.5, 0)
	if math.Abs(fd-1.0/20) > 1e-9 {
		t.Errorf("fraction days = %v, want 0.05", fd)
	}
	fh := FractionCongestedHours(series, 0.5, 0)
	if math.Abs(fh-4.0/480) > 1e-9 {
		t.Errorf("fraction hours = %v, want %v", fh, 4.0/480)
	}
	// H = 0 labels every day with any variation; here flat days are
	// exactly flat so V=0 is not > 0.
	if f := FractionCongestedDays(series, 0, 0); math.Abs(f-1.0/20) > 1e-9 {
		t.Errorf("H=0 fraction = %v", f)
	}
}

func TestSweepMonotone(t *testing.T) {
	series := []Series{flatDaySeries(30, 400, 100, map[int]bool{1: true, 5: true, 9: true})}
	hs := []float64{0, 0.25, 0.5, 0.75, 1}
	sweep := SweepDays(series, hs, 0)
	for i := 1; i < len(sweep); i++ {
		if sweep[i].Fraction > sweep[i-1].Fraction {
			t.Errorf("sweep not non-increasing at %v", sweep[i].H)
		}
	}
	hsweep := SweepHours(series, hs, 0)
	for i := 1; i < len(hsweep); i++ {
		if hsweep[i].Fraction > hsweep[i-1].Fraction {
			t.Errorf("hour sweep not non-increasing at %v", hsweep[i].H)
		}
	}
}

func TestElbowThreshold(t *testing.T) {
	// A knee-shaped sweep: high fractions until 0.4, then a sharp drop.
	sweep := []SweepPoint{
		{0.0, 0.95}, {0.1, 0.9}, {0.2, 0.85}, {0.3, 0.8},
		{0.4, 0.5}, {0.5, 0.15}, {0.6, 0.08}, {0.7, 0.05},
		{0.8, 0.03}, {0.9, 0.02}, {1.0, 0.01},
	}
	h, err := ElbowThreshold(sweep)
	if err != nil {
		t.Fatal(err)
	}
	if h < 0.3 || h > 0.6 {
		t.Errorf("elbow at %v, want near 0.4-0.5", h)
	}
	if _, err := ElbowThreshold(sweep[:2]); err == nil {
		t.Error("short sweep: want error")
	}
}

func TestHourlyProbability(t *testing.T) {
	s := flatDaySeries(10, 400, 100, map[int]bool{0: true, 1: true, 2: true, 3: true, 4: true})
	det := NewDetector()
	events := det.Events(s)
	// UTC offset 0: events at hours 19-22 on half the days -> p = 0.5.
	probs := HourlyProbability(s, events, 0)
	for h := 19; h <= 22; h++ {
		if math.Abs(probs[h]-0.5) > 1e-9 {
			t.Errorf("hour %d probability = %v, want 0.5", h, probs[h])
		}
	}
	if probs[10] != 0 {
		t.Errorf("quiet hour probability = %v", probs[10])
	}
	// With a -5 offset the peak moves to local 14-17.
	probsLocal := HourlyProbability(s, events, -5)
	if math.Abs(probsLocal[14]-0.5) > 1e-9 {
		t.Errorf("local hour 14 probability = %v", probsLocal[14])
	}
	if probsLocal[19] != 0 {
		t.Errorf("local hour 19 should be quiet, got %v", probsLocal[19])
	}
}

func TestCongestedPair(t *testing.T) {
	det := NewDetector()
	// 2 event days of 10 -> 20% > 10% -> congested.
	s := flatDaySeries(10, 400, 100, map[int]bool{0: true, 5: true})
	if !CongestedPair(s, det, 0.1) {
		t.Error("20% event days not flagged")
	}
	// 1 event day of 20 -> 5% -> not congested.
	s2 := flatDaySeries(20, 400, 100, map[int]bool{3: true})
	if CongestedPair(s2, det, 0.1) {
		t.Error("5% event days flagged")
	}
	if CongestedPair(Series{}, det, 0.1) {
		t.Error("empty series flagged")
	}
}

func TestZeroThroughputDaySafe(t *testing.T) {
	var s Series
	for h := 0; h < 24; h++ {
		s.Samples = append(s.Samples, Sample{Time: t0.Add(time.Duration(h) * time.Hour), Mbps: 0})
	}
	days := SplitDays(s, 0)
	if len(days) != 1 || days[0].V != 0 {
		t.Errorf("all-zero day mishandled: %+v", days)
	}
	det := NewDetector()
	if events := det.Events(s); len(events) != 0 {
		t.Errorf("all-zero day produced events")
	}
}
