package congestion

import (
	"math/rand"
	"testing"
	"time"
)

// benchSeries builds `n` hourly series of `days` days with diurnal dips on
// every third pair, the shape the Fig. 2 sweeps consume.
func benchSeries(n, days int) []Series {
	rng := rand.New(rand.NewSource(11))
	start := time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)
	out := make([]Series, 0, n)
	for i := 0; i < n; i++ {
		s := Series{PairID: "bench-pair"}
		for h := 0; h < days*24; h++ {
			v := 300 + 80*rng.Float64()
			if i%3 == 0 && h%24 >= 19 && h%24 <= 22 {
				v *= 0.25 + 0.2*rng.Float64()
			}
			s.Samples = append(s.Samples, Sample{Time: start.Add(time.Duration(h) * time.Hour), Mbps: v})
		}
		out = append(out, s)
	}
	return out
}

func benchGrid() []float64 {
	hs := make([]float64, 0, 21)
	for i := 0; i <= 20; i++ {
		hs = append(hs, float64(i)/20)
	}
	return hs
}

// BenchmarkAnalysisSweepDays is the Fig. 2a threshold sweep: 21 thresholds
// over 48 series of 45 days.
func BenchmarkAnalysisSweepDays(b *testing.B) {
	series := benchSeries(48, 45)
	hs := benchGrid()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sweep := SweepDays(series, hs, 0)
		if len(sweep) != len(hs) {
			b.Fatal("bad sweep")
		}
	}
}

// BenchmarkAnalysisSweepHours is the Fig. 2b threshold sweep over the same
// series set.
func BenchmarkAnalysisSweepHours(b *testing.B) {
	series := benchSeries(48, 45)
	hs := benchGrid()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sweep := SweepHours(series, hs, 0)
		if len(sweep) != len(hs) {
			b.Fatal("bad sweep")
		}
	}
}

// BenchmarkAnalysisSplitDays is one series' day decomposition, the unit the
// memoized sweep amortises.
func BenchmarkAnalysisSplitDays(b *testing.B) {
	series := benchSeries(1, 45)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if days := SplitDays(series[0], 0); len(days) != 45 {
			b.Fatalf("days = %d", len(days))
		}
	}
}
