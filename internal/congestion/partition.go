package congestion

import (
	"math"
	"sort"
	"sync"

	"github.com/clasp-measurement/clasp/internal/obs"
	"github.com/clasp-measurement/clasp/internal/stats"
)

var (
	obsPartitions  = obs.Default().Counter("congestion_partitions_total")
	obsSweepPoints = obs.Default().Counter("congestion_sweep_points_total")
)

// Partition is the memoized per-day decomposition of one series. The
// threshold sweeps of Fig. 2 evaluate the same series at ~20 thresholds;
// before Partition existed every threshold re-split the series into days
// from scratch. A Partition splits once and answers day/hour tallies for
// any threshold from the cached decomposition, so a sweep is one split
// plus a cheap scan per threshold.
//
// A Partition is cheap to build (one pass when samples are time-sorted,
// as grouped campaign series are) and safe for concurrent use once built:
// campaigns prepare one partition per series during measurement and every
// downstream analysis — possibly several rendering concurrently — shares
// it, so the lazy caches are filled under a lock.
type Partition struct {
	pairID  string
	samples []Sample
	days    []Day   // ascending by day index; every day with >= 1 sample
	dayOf   []int32 // per-sample index into days

	mu sync.Mutex // guards the lazy caches below

	// vhq caches VH(s,t) for samples on qualifying days (>= vhqMin
	// samples); samples on zero-peak days are kept as NaN so they count
	// as measured hours but can never exceed a threshold.
	vhq    []float64
	vhqMin int

	medians []float64 // per-day sample medians, aligned with days
}

// NewPartition splits a series into its per-day summary once. All days
// are retained regardless of sample count; qualification thresholds are
// applied by the accessors so one partition serves any minSamples. The
// samples slice is referenced, not copied.
func NewPartition(s Series) *Partition {
	b := PartitionBuilder{pairID: s.PairID}
	b.add(s.Samples, false)
	return b.Finish()
}

// PartitionBuilder assembles a Partition from sample chunks — the
// streaming path, where a series arrives from a cursor one block at a time
// rather than as one contiguous buffer. Add copies its chunk (cursor
// batches are reused), and the per-day summary is extended incrementally
// while chunks stay time-sorted, so building from N chunks does the same
// single pass as NewPartition on the concatenation. Out-of-order input is
// detected on the fly and re-split at Finish, exactly like NewPartition's
// map fallback.
type PartitionBuilder struct {
	pairID   string
	samples  []Sample
	days     []Day
	dayOf    []int32
	unsorted bool
}

// NewPartitionBuilder starts an empty builder for one pair.
func NewPartitionBuilder(pairID string) *PartitionBuilder {
	return &PartitionBuilder{pairID: pairID}
}

// Add appends a chunk of samples (copied). Chunks are concatenated in call
// order; time order across and within chunks is not required, only cheaper.
func (b *PartitionBuilder) Add(chunk []Sample) { b.add(chunk, true) }

// Len returns the number of samples added so far.
func (b *PartitionBuilder) Len() int { return len(b.samples) }

// add extends the day decomposition with chunk; NewPartition passes
// copy=false to share its caller's backing array for the single-chunk case.
func (b *PartitionBuilder) add(chunk []Sample, copyChunk bool) {
	if len(chunk) == 0 {
		return
	}
	base := len(b.samples)
	if copyChunk || base > 0 {
		b.samples = append(b.samples, chunk...)
	} else {
		b.samples = chunk
	}
	if b.unsorted {
		return // day build deferred to Finish's re-split
	}
	if b.dayOf == nil {
		// Size for what we have so far: exact for the one-shot NewPartition
		// path, a head start for streamed chunks. Grouped campaign samples
		// are hourly, so days run ~n/24; n/16+1 leaves slack without waste.
		b.dayOf = make([]int32, 0, len(b.samples))
		b.days = make([]Day, 0, len(b.samples)/16+1)
	}
	for i := range chunk {
		smp := &chunk[i]
		d := dayIndex(smp.Time)
		if len(b.days) == 0 || d > b.days[len(b.days)-1].Day {
			b.days = append(b.days, Day{PairID: b.pairID, Day: d, Tmax: smp.Mbps, Tmin: smp.Mbps, Samples: 1})
		} else if d == b.days[len(b.days)-1].Day {
			day := &b.days[len(b.days)-1]
			if smp.Mbps > day.Tmax {
				day.Tmax = smp.Mbps
			}
			if smp.Mbps < day.Tmin {
				day.Tmin = smp.Mbps
			}
			day.Samples++
		} else {
			// Out of order: abandon the incremental build, Finish re-splits.
			b.unsorted = true
			b.days, b.dayOf = nil, nil
			return
		}
		b.dayOf = append(b.dayOf, int32(len(b.days)-1))
	}
}

// Finish seals the builder into a Partition. The builder must not be used
// afterwards.
func (b *PartitionBuilder) Finish() *Partition {
	obsPartitions.Inc()
	p := &Partition{pairID: b.pairID, samples: b.samples}
	n := len(b.samples)
	if n == 0 {
		return p
	}
	if !b.unsorted {
		p.days, p.dayOf = b.days, b.dayOf
	} else {
		// Arbitrary-order input: split through a day map, then re-establish
		// the ascending day order SplitDays promises and remap the
		// per-sample day indices to the sorted positions.
		p.dayOf = make([]int32, n)
		idx := make(map[int]int32)
		for i := range p.samples {
			smp := &p.samples[i]
			d := dayIndex(smp.Time)
			di, ok := idx[d]
			if !ok {
				di = int32(len(p.days))
				idx[d] = di
				p.days = append(p.days, Day{PairID: b.pairID, Day: d, Tmax: smp.Mbps, Tmin: smp.Mbps, Samples: 1})
			} else {
				day := &p.days[di]
				if smp.Mbps > day.Tmax {
					day.Tmax = smp.Mbps
				}
				if smp.Mbps < day.Tmin {
					day.Tmin = smp.Mbps
				}
				day.Samples++
			}
			p.dayOf[i] = di
		}
		perm := make([]int32, len(p.days))
		for i := range perm {
			perm[i] = int32(i)
		}
		sort.Slice(perm, func(a, b int) bool { return p.days[perm[a]].Day < p.days[perm[b]].Day })
		sortedDays := make([]Day, len(p.days))
		inv := make([]int32, len(p.days))
		for pos, old := range perm {
			sortedDays[pos] = p.days[old]
			inv[old] = int32(pos)
		}
		p.days = sortedDays
		for i, di := range p.dayOf {
			p.dayOf[i] = inv[di]
		}
	}
	for i := range p.days {
		day := &p.days[i]
		if day.Tmax > 0 {
			day.V = (day.Tmax - day.Tmin) / day.Tmax
		}
	}
	return p
}

// Days returns the per-day records with at least minSamples observations —
// the same output as SplitDays on the original series.
func (p *Partition) Days(minSamples int) []Day {
	if minSamples <= 0 {
		minSamples = 4
	}
	out := make([]Day, 0, len(p.days))
	for _, d := range p.days {
		if d.Samples >= minSamples {
			out = append(out, d)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// DayTally counts qualifying days and those with V > h without allocating.
func (p *Partition) DayTally(h float64, minSamples int) (congested, total int) {
	if minSamples <= 0 {
		minSamples = 4
	}
	for i := range p.days {
		if p.days[i].Samples < minSamples {
			continue
		}
		total++
		if p.days[i].V > h {
			congested++
		}
	}
	return congested, total
}

// hourVH returns VH(s,t) for every sample on a qualifying day, in sample
// order. Samples on zero-peak days are NaN: they count as measured hours
// but compare false against every threshold, matching Detector.Events'
// skip rule. The slice is cached per minSamples (callers overwhelmingly
// use one value).
func (p *Partition) hourVH(minSamples int) []float64 {
	if minSamples <= 0 {
		minSamples = 4
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.vhq != nil && p.vhqMin == minSamples {
		return p.vhq
	}
	vhq := make([]float64, 0, len(p.samples))
	for i := range p.samples {
		day := &p.days[p.dayOf[i]]
		if day.Samples < minSamples {
			continue
		}
		if day.Tmax <= 0 {
			vhq = append(vhq, math.NaN())
			continue
		}
		vhq = append(vhq, (day.Tmax-p.samples[i].Mbps)/day.Tmax)
	}
	p.vhq, p.vhqMin = vhq, minSamples
	return vhq
}

// HourTally counts qualifying samples and those with VH > h. The hours
// total matches FractionCongestedHours' denominator and events matches
// len(Detector.Events) at the same threshold.
func (p *Partition) HourTally(h float64, minSamples int) (events, hours int) {
	vhq := p.hourVH(minSamples)
	for _, v := range vhq {
		if v > h {
			events++
		}
	}
	return events, len(vhq)
}

// DayMedians returns the median throughput of every day in the partition
// (aligned with the full, unfiltered day list), computed once and cached.
// Medians are the robust per-day statistic variability detectors reach for
// when Tmax is noise-prone; keeping them beside the partition means a
// sweep that wants them pays one sort per day total, not per threshold.
func (p *Partition) DayMedians() []float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.medians != nil || len(p.days) == 0 {
		return p.medians
	}
	meds := make([]float64, len(p.days))
	scratch := make([]float64, 0, 32)
	start := 0
	for di := range p.days {
		scratch = scratch[:0]
		for i := start; i < len(p.samples); i++ {
			if int(p.dayOf[i]) != di {
				continue
			}
			scratch = append(scratch, p.samples[i].Mbps)
		}
		// Advance the scan start when samples are day-contiguous (the
		// sorted fast path); the inner scan above stays correct either way.
		for start < len(p.samples) && int(p.dayOf[start]) <= di {
			start++
		}
		sort.Float64s(scratch)
		meds[di] = stats.PercentileSorted(scratch, 50)
	}
	p.medians = meds
	return meds
}

// EventsIn extracts the congestion events of a pre-built partition —
// identical output to Events on the original series, without re-splitting.
func (d *Detector) EventsIn(p *Partition) []Event {
	min := d.MinSamples
	if min <= 0 {
		min = 4
	}
	var out []Event
	for i := range p.samples {
		day := &p.days[p.dayOf[i]]
		if day.Tmax <= 0 || day.Samples < min {
			continue
		}
		smp := &p.samples[i]
		vh := (day.Tmax - smp.Mbps) / day.Tmax
		if vh > d.H {
			out = append(out, Event{PairID: p.pairID, Time: smp.Time, Mbps: smp.Mbps, Tmax: day.Tmax, VH: vh})
		}
	}
	return out
}

// Partitions splits every series once, for callers that run several
// tallies (day sweep + hour sweep, say) over the same series set.
func Partitions(series []Series) []*Partition {
	out := make([]*Partition, len(series))
	for i := range series {
		out[i] = NewPartition(series[i])
	}
	return out
}

// SweepDaysPartitioned evaluates the Fig. 2a day sweep over pre-built
// partitions: one scan of the cached day summaries per threshold.
func SweepDaysPartitioned(parts []*Partition, hs []float64, minSamples int) []SweepPoint {
	out := make([]SweepPoint, len(hs))
	for i, h := range hs {
		congested, total := 0, 0
		for _, p := range parts {
			c, t := p.DayTally(h, minSamples)
			congested += c
			total += t
		}
		frac := 0.0
		if total > 0 {
			frac = float64(congested) / float64(total)
		}
		out[i] = SweepPoint{H: h, Fraction: frac}
	}
	obsSweepPoints.Add(uint64(len(hs)))
	return out
}

// SweepHoursPartitioned evaluates the Fig. 2b hour sweep over pre-built
// partitions; the per-sample VH cache is built once on the first threshold.
func SweepHoursPartitioned(parts []*Partition, hs []float64, minSamples int) []SweepPoint {
	out := make([]SweepPoint, len(hs))
	for i, h := range hs {
		congested, total := 0, 0
		for _, p := range parts {
			e, n := p.HourTally(h, minSamples)
			congested += e
			total += n
		}
		frac := 0.0
		if total > 0 {
			frac = float64(congested) / float64(total)
		}
		out[i] = SweepPoint{H: h, Fraction: frac}
	}
	obsSweepPoints.Add(uint64(len(hs)))
	return out
}
