package congestion

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"
)

// randomSeries exercises both partition build paths: time-sorted samples
// (the grouped-campaign shape) and shuffled ones (the map fallback), with
// occasional zero-throughput days and a short day that misses the
// min-samples cut.
func randomSeries(seed int64, days int, shuffled bool) Series {
	rng := rand.New(rand.NewSource(seed))
	start := time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)
	s := Series{PairID: "part-test"}
	for d := 0; d < days; d++ {
		hours := 24
		if d == days/2 {
			hours = 2 // below the default min-samples threshold
		}
		for h := 0; h < hours; h++ {
			v := 200 + 150*rng.Float64()
			if d%5 == 3 {
				v = 0 // dead day: Tmax <= 0
			}
			if h >= 19 && h <= 22 {
				v *= 0.3
			}
			s.Samples = append(s.Samples, Sample{Time: start.AddDate(0, 0, d).Add(time.Duration(h) * time.Hour), Mbps: v})
		}
	}
	if shuffled {
		rng.Shuffle(len(s.Samples), func(i, j int) {
			s.Samples[i], s.Samples[j] = s.Samples[j], s.Samples[i]
		})
	}
	return s
}

// naiveSplitDays is the pre-partition implementation, the reference the
// memoized decomposition must reproduce exactly.
func naiveSplitDays(s Series, minSamples int) []Day {
	if minSamples <= 0 {
		minSamples = 4
	}
	byDay := make(map[int][]float64)
	for _, smp := range s.Samples {
		byDay[dayIndex(smp.Time)] = append(byDay[dayIndex(smp.Time)], smp.Mbps)
	}
	days := make([]int, 0, len(byDay))
	for d := range byDay {
		days = append(days, d)
	}
	sort.Ints(days)
	var out []Day
	for _, d := range days {
		xs := byDay[d]
		if len(xs) < minSamples {
			continue
		}
		min, max := xs[0], xs[0]
		for _, x := range xs[1:] {
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
		}
		v := 0.0
		if max > 0 {
			v = (max - min) / max
		}
		out = append(out, Day{PairID: s.PairID, Day: d, Tmax: max, Tmin: min, V: v, Samples: len(xs)})
	}
	return out
}

func TestPartitionDaysMatchesNaive(t *testing.T) {
	for _, shuffled := range []bool{false, true} {
		s := randomSeries(21, 14, shuffled)
		for _, min := range []int{0, 1, 4, 10} {
			got := SplitDays(s, min)
			want := naiveSplitDays(s, min)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("shuffled=%v min=%d: SplitDays diverged\n got %+v\nwant %+v", shuffled, min, got, want)
			}
		}
	}
}

func TestPartitionTalliesMatchFractions(t *testing.T) {
	series := []Series{randomSeries(1, 10, false), randomSeries(2, 10, true), randomSeries(3, 3, false)}
	for _, h := range []float64{0, 0.25, 0.5, 0.9} {
		wantDays := FractionCongestedDays(series, h, 0)
		wantHours := FractionCongestedHours(series, h, 0)
		// Recompute from a shared partition set, as the sweeps do.
		parts := Partitions(series)
		d := SweepDaysPartitioned(parts, []float64{h}, 0)[0].Fraction
		hr := SweepHoursPartitioned(parts, []float64{h}, 0)[0].Fraction
		if d != wantDays {
			t.Errorf("h=%v: day fraction %v != %v", h, d, wantDays)
		}
		if hr != wantHours {
			t.Errorf("h=%v: hour fraction %v != %v", h, hr, wantHours)
		}
	}
}

func TestSweepsMatchPerThresholdFractions(t *testing.T) {
	series := []Series{randomSeries(5, 12, false), randomSeries(6, 12, true)}
	hs := []float64{0, 0.1, 0.3, 0.5, 0.7, 1}
	daySweep := SweepDays(series, hs, 0)
	hourSweep := SweepHours(series, hs, 0)
	for i, h := range hs {
		if want := FractionCongestedDays(series, h, 0); daySweep[i].Fraction != want {
			t.Errorf("day sweep at %v: %v != %v", h, daySweep[i].Fraction, want)
		}
		if want := FractionCongestedHours(series, h, 0); hourSweep[i].Fraction != want {
			t.Errorf("hour sweep at %v: %v != %v", h, hourSweep[i].Fraction, want)
		}
	}
}

func TestEventsInMatchesEvents(t *testing.T) {
	for _, shuffled := range []bool{false, true} {
		s := randomSeries(9, 10, shuffled)
		det := NewDetector()
		want := make([]Event, 0)
		// Events via the one-shot path and via an explicit partition.
		want = append(want, det.Events(s)...)
		got := det.EventsIn(NewPartition(s))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("shuffled=%v: EventsIn diverged (%d vs %d events)", shuffled, len(got), len(want))
		}
	}
}

func TestHourTallyCountsDeadDayHours(t *testing.T) {
	// A zero-peak day's samples are measured hours but never events.
	start := time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)
	s := Series{PairID: "dead"}
	for h := 0; h < 24; h++ {
		s.Samples = append(s.Samples, Sample{Time: start.Add(time.Duration(h) * time.Hour), Mbps: 0})
	}
	p := NewPartition(s)
	events, hours := p.HourTally(0.5, 0)
	if events != 0 || hours != 24 {
		t.Errorf("dead day: events=%d hours=%d, want 0/24", events, hours)
	}
	if got := FractionCongestedHours([]Series{s}, 0.5, 0); got != 0 {
		t.Errorf("dead-day fraction = %v", got)
	}
}

func TestPartitionDayMedians(t *testing.T) {
	s := randomSeries(33, 8, true)
	p := NewPartition(s)
	meds := p.DayMedians()
	allDays := p.Days(1)
	if len(meds) != len(allDays) {
		t.Fatalf("medians = %d, days = %d", len(meds), len(allDays))
	}
	// Validate against a direct per-day median.
	byDay := make(map[int][]float64)
	for _, smp := range s.Samples {
		byDay[dayIndex(smp.Time)] = append(byDay[dayIndex(smp.Time)], smp.Mbps)
	}
	for i, d := range allDays {
		xs := byDay[d.Day]
		sort.Float64s(xs)
		var want float64
		if n := len(xs); n%2 == 1 {
			want = xs[n/2]
		} else {
			want = (xs[n/2-1] + xs[n/2]) / 2
		}
		if math.Abs(meds[i]-want) > 1e-12 {
			t.Errorf("day %d: median %v, want %v", d.Day, meds[i], want)
		}
		if d.Tmin-1e-12 > meds[i] || meds[i] > d.Tmax+1e-12 {
			t.Errorf("day %d: median %v outside [%v, %v]", d.Day, meds[i], d.Tmin, d.Tmax)
		}
	}
	// Cached: second call returns the same slice.
	if &meds[0] != &p.DayMedians()[0] {
		t.Error("medians not cached")
	}
	// The VH cache is also built once per min-samples value.
	_, h1 := p.HourTally(0.3, 0)
	_, h2 := p.HourTally(0.8, 0)
	if h1 != h2 {
		t.Errorf("hour totals differ across thresholds: %d vs %d", h1, h2)
	}
}

func TestPartitionEmptySeries(t *testing.T) {
	p := NewPartition(Series{PairID: "empty"})
	if days := p.Days(0); len(days) != 0 {
		t.Errorf("empty series has %d days", len(days))
	}
	if e, h := p.HourTally(0.5, 0); e != 0 || h != 0 {
		t.Errorf("empty tally: %d/%d", e, h)
	}
	if meds := p.DayMedians(); meds != nil {
		t.Errorf("empty medians: %v", meds)
	}
}
