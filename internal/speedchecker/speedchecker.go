// Package speedchecker emulates the Speedchecker edge measurement platform
// the paper used for the differential method's preliminary scan (§3.1):
// vantage points in thousands of access networks ping the cloud regions
// over both network tiers; results are aggregated into medians per
// ⟨city, AS, region, tier⟩ tuple, keeping only tuples with enough samples.
package speedchecker

import (
	"sort"
	"time"

	"github.com/clasp-measurement/clasp/internal/bgp"
	"github.com/clasp-measurement/clasp/internal/netsim"
	"github.com/clasp-measurement/clasp/internal/stats"
	"github.com/clasp-measurement/clasp/internal/topology"
)

// TupleKey identifies one aggregate: where the VPs are, which region they
// probed, and over which tier.
type TupleKey struct {
	City   string
	ASN    topology.ASN
	Region string
	Tier   bgp.Tier
}

// Aggregate is the median latency for one tuple.
type Aggregate struct {
	Key      TupleKey
	MedianMs float64
	Samples  int
}

// Params tunes the preliminary scan.
type Params struct {
	// Regions to probe; nil probes every region.
	Regions []string
	// SamplesPerVP is how many probes each vantage point issues per
	// (region, tier) over the scan window (default 20).
	SamplesPerVP int
	// MinSamples is the minimum tuple size to report (the paper used
	// 100; tests lower it).
	MinSamples int
	// Start and Window position the probes in virtual time.
	Start  time.Time
	Window time.Duration
}

func (p Params) withDefaults() Params {
	if p.SamplesPerVP <= 0 {
		p.SamplesPerVP = 20
	}
	if p.MinSamples <= 0 {
		p.MinSamples = 100
	}
	if p.Window <= 0 {
		p.Window = 14 * 24 * time.Hour
	}
	if p.Start.IsZero() {
		p.Start = time.Date(2020, 4, 1, 0, 0, 0, 0, time.UTC)
	}
	return p
}

// Platform runs the emulated Speedchecker scan.
type Platform struct {
	sim *netsim.Sim
}

// New creates a platform over the simulator.
func New(sim *netsim.Sim) *Platform { return &Platform{sim: sim} }

// RunPreliminary probes every edge VP against the requested regions over
// both tiers and returns the qualifying tuple aggregates, sorted by key.
func (p *Platform) RunPreliminary(params Params) []Aggregate {
	params = params.withDefaults()
	topo := p.sim.Topology()
	regions := params.Regions
	if regions == nil {
		for _, r := range topo.Regions {
			regions = append(regions, r.Name)
		}
	}

	samples := make(map[TupleKey][]float64)
	for _, vp := range topo.EdgeVPs() {
		for _, region := range regions {
			for _, tier := range []bgp.Tier{bgp.Premium, bgp.Standard} {
				key := TupleKey{City: vp.City, ASN: vp.ASN, Region: region, Tier: tier}
				for i := 0; i < params.SamplesPerVP; i++ {
					frac := float64(vp.ID*params.SamplesPerVP+i) / float64(len(topo.EdgeVPs())*params.SamplesPerVP+1)
					at := params.Start.Add(time.Duration(frac * float64(params.Window)))
					salt := uint64(vp.ID)<<20 | uint64(i)<<8 | uint64(tier)
					rtt, err := p.sim.PingRTT(region, vp.ASN, vp.City, tier, at, salt)
					if err != nil {
						continue
					}
					samples[key] = append(samples[key], rtt)
				}
			}
		}
	}

	var out []Aggregate
	for key, xs := range samples {
		if len(xs) < params.MinSamples {
			continue
		}
		med, err := stats.Median(xs)
		if err != nil {
			continue
		}
		out = append(out, Aggregate{Key: key, MedianMs: med, Samples: len(xs)})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Key, out[j].Key
		if a.Region != b.Region {
			return a.Region < b.Region
		}
		if a.ASN != b.ASN {
			return a.ASN < b.ASN
		}
		if a.City != b.City {
			return a.City < b.City
		}
		return a.Tier < b.Tier
	})
	return out
}

// TierDelta is the per-⟨city, AS, region⟩ difference between standard and
// premium tier medians.
type TierDelta struct {
	City     string
	ASN      topology.ASN
	Region   string
	DeltaMs  float64 // standard - premium (positive: premium is faster)
	PremMs   float64
	StdMs    float64
	MinCount int // smaller of the two tuple sample counts
}

// Deltas pairs premium/standard aggregates into per-location deltas.
func Deltas(aggs []Aggregate) []TierDelta {
	type lk struct {
		city   string
		asn    topology.ASN
		region string
	}
	prem := make(map[lk]Aggregate)
	std := make(map[lk]Aggregate)
	for _, a := range aggs {
		k := lk{a.Key.City, a.Key.ASN, a.Key.Region}
		if a.Key.Tier == bgp.Premium {
			prem[k] = a
		} else {
			std[k] = a
		}
	}
	var out []TierDelta
	for k, p := range prem {
		s, ok := std[k]
		if !ok {
			continue
		}
		min := p.Samples
		if s.Samples < min {
			min = s.Samples
		}
		out = append(out, TierDelta{
			City: k.city, ASN: k.asn, Region: k.region,
			DeltaMs: s.MedianMs - p.MedianMs,
			PremMs:  p.MedianMs, StdMs: s.MedianMs,
			MinCount: min,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Region != out[j].Region {
			return out[i].Region < out[j].Region
		}
		if out[i].ASN != out[j].ASN {
			return out[i].ASN < out[j].ASN
		}
		return out[i].City < out[j].City
	})
	return out
}
