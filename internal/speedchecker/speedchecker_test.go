package speedchecker

import (
	"math"
	"testing"

	"github.com/clasp-measurement/clasp/internal/bgp"
	"github.com/clasp-measurement/clasp/internal/netsim"
	"github.com/clasp-measurement/clasp/internal/topology"
)

func setup(t *testing.T) (*netsim.Sim, *Platform) {
	t.Helper()
	topo, err := topology.New(topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sim := netsim.New(topo, nil, netsim.Config{Seed: 5})
	return sim, New(sim)
}

func quickParams() Params {
	return Params{
		Regions:      []string{"europe-west1"},
		SamplesPerVP: 3,
		MinSamples:   6,
	}
}

func TestRunPreliminaryAggregates(t *testing.T) {
	sim, p := setup(t)
	aggs := p.RunPreliminary(quickParams())
	if len(aggs) == 0 {
		t.Fatal("no aggregates produced")
	}
	topo := sim.Topology()
	tiers := map[bgp.Tier]int{}
	for _, a := range aggs {
		if a.Key.Region != "europe-west1" {
			t.Errorf("unexpected region %q", a.Key.Region)
		}
		if a.Samples < 6 {
			t.Errorf("aggregate below MinSamples: %+v", a)
		}
		if a.MedianMs <= 0 || a.MedianMs > 600 {
			t.Errorf("implausible median %v ms", a.MedianMs)
		}
		if topo.AS(a.Key.ASN) == nil {
			t.Errorf("aggregate for unknown AS%d", a.Key.ASN)
		}
		tiers[a.Key.Tier]++
	}
	if tiers[bgp.Premium] == 0 || tiers[bgp.Standard] == 0 {
		t.Errorf("missing a tier: %v", tiers)
	}
}

func TestMinSamplesFilters(t *testing.T) {
	_, p := setup(t)
	params := quickParams()
	params.MinSamples = 1 << 30
	if aggs := p.RunPreliminary(params); len(aggs) != 0 {
		t.Errorf("impossible MinSamples still produced %d aggregates", len(aggs))
	}
}

func TestAggregatesSortedAndDeterministic(t *testing.T) {
	_, p := setup(t)
	a := p.RunPreliminary(quickParams())
	b := p.RunPreliminary(quickParams())
	if len(a) != len(b) {
		t.Fatal("nondeterministic aggregate count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic aggregate %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	for i := 1; i < len(a); i++ {
		x, y := a[i-1].Key, a[i].Key
		if x.Region > y.Region || (x.Region == y.Region && x.ASN > y.ASN) {
			t.Error("aggregates not sorted")
			break
		}
	}
}

func TestDeltasPairTiers(t *testing.T) {
	_, p := setup(t)
	aggs := p.RunPreliminary(quickParams())
	deltas := Deltas(aggs)
	if len(deltas) == 0 {
		t.Fatal("no deltas")
	}
	for _, d := range deltas {
		if math.Abs(d.DeltaMs-(d.StdMs-d.PremMs)) > 1e-9 {
			t.Errorf("delta arithmetic wrong: %+v", d)
		}
		if d.MinCount <= 0 {
			t.Errorf("MinCount = %d", d.MinCount)
		}
	}
	// The WAN-profile classes guarantee all three delta regimes exist at
	// scale; check at least both signs appear.
	pos, neg := false, false
	for _, d := range deltas {
		if d.DeltaMs > 0 {
			pos = true
		}
		if d.DeltaMs < 0 {
			neg = true
		}
	}
	if !pos || !neg {
		t.Errorf("deltas lack sign diversity (pos=%v neg=%v)", pos, neg)
	}
}

func TestDeltasSkipUnpaired(t *testing.T) {
	aggs := []Aggregate{
		{Key: TupleKey{City: "X", ASN: 1, Region: "r", Tier: bgp.Premium}, MedianMs: 10, Samples: 100},
	}
	if d := Deltas(aggs); len(d) != 0 {
		t.Errorf("unpaired aggregate produced deltas: %+v", d)
	}
}
