// Package hmm implements the paper's proposed future-work congestion
// detector (§5): a Gaussian hidden Markov model over throughput time
// series, trained with Baum-Welch and decoded with Viterbi, plus the
// autocorrelation diagnostics (after Dhamdhere et al., SIGCOMM 2018) that
// reveal diurnal congestion patterns. Compared with the V > H threshold
// rule, the HMM captures state persistence: a congested hour is more likely
// to be followed by another congested hour.
package hmm

import (
	"errors"
	"fmt"
	"math"
)

// Model is a K-state HMM with Gaussian emissions.
type Model struct {
	K    int
	Pi   []float64   // initial state distribution
	A    [][]float64 // transition matrix
	Mean []float64
	Var  []float64
	// LogLikelihood of the training data after the final iteration.
	LogLikelihood float64
	// Iterations actually run by Fit.
	Iterations int
}

// NewModel initialises a K-state model with means spread across the data
// range — a standard k-quantile initialisation.
func NewModel(k int, data []float64) (*Model, error) {
	if k < 2 {
		return nil, errors.New("hmm: need at least 2 states")
	}
	if len(data) < 2*k {
		return nil, fmt.Errorf("hmm: %d observations too few for %d states", len(data), k)
	}
	min, max := data[0], data[0]
	var sum, sum2 float64
	for _, x := range data {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
		sum += x
		sum2 += x * x
	}
	n := float64(len(data))
	variance := sum2/n - (sum/n)*(sum/n)
	if variance <= 0 {
		variance = 1
	}
	m := &Model{
		K:    k,
		Pi:   make([]float64, k),
		A:    make([][]float64, k),
		Mean: make([]float64, k),
		Var:  make([]float64, k),
	}
	span := max - min
	if span == 0 {
		span = 1
	}
	for i := 0; i < k; i++ {
		m.Pi[i] = 1 / float64(k)
		m.A[i] = make([]float64, k)
		for j := 0; j < k; j++ {
			if i == j {
				m.A[i][j] = 0.8
			} else {
				m.A[i][j] = 0.2 / float64(k-1)
			}
		}
		m.Mean[i] = min + span*(float64(i)+0.5)/float64(k)
		m.Var[i] = variance / float64(k)
	}
	return m, nil
}

// gaussian is the emission density.
func gaussian(x, mean, variance float64) float64 {
	if variance < 1e-9 {
		variance = 1e-9
	}
	d := x - mean
	return math.Exp(-d*d/(2*variance)) / math.Sqrt(2*math.Pi*variance)
}

// forwardBackward runs the scaled forward-backward algorithm, returning
// gamma (state posteriors), xi sums (transition posteriors) and the data
// log-likelihood.
func (m *Model) forwardBackward(data []float64) (gamma [][]float64, xiSum [][]float64, ll float64) {
	T := len(data)
	K := m.K
	b := make([][]float64, T)
	for t := 0; t < T; t++ {
		b[t] = make([]float64, K)
		for i := 0; i < K; i++ {
			b[t][i] = gaussian(data[t], m.Mean[i], m.Var[i]) + 1e-300
		}
	}
	alpha := make([][]float64, T)
	scale := make([]float64, T)
	alpha[0] = make([]float64, K)
	for i := 0; i < K; i++ {
		alpha[0][i] = m.Pi[i] * b[0][i]
		scale[0] += alpha[0][i]
	}
	if scale[0] == 0 {
		scale[0] = 1e-300
	}
	for i := 0; i < K; i++ {
		alpha[0][i] /= scale[0]
	}
	for t := 1; t < T; t++ {
		alpha[t] = make([]float64, K)
		for j := 0; j < K; j++ {
			var s float64
			for i := 0; i < K; i++ {
				s += alpha[t-1][i] * m.A[i][j]
			}
			alpha[t][j] = s * b[t][j]
			scale[t] += alpha[t][j]
		}
		if scale[t] == 0 {
			scale[t] = 1e-300
		}
		for j := 0; j < K; j++ {
			alpha[t][j] /= scale[t]
		}
	}
	beta := make([][]float64, T)
	beta[T-1] = make([]float64, K)
	for i := 0; i < K; i++ {
		beta[T-1][i] = 1
	}
	for t := T - 2; t >= 0; t-- {
		beta[t] = make([]float64, K)
		for i := 0; i < K; i++ {
			var s float64
			for j := 0; j < K; j++ {
				s += m.A[i][j] * b[t+1][j] * beta[t+1][j]
			}
			beta[t][i] = s / scale[t+1]
		}
	}
	gamma = make([][]float64, T)
	for t := 0; t < T; t++ {
		gamma[t] = make([]float64, K)
		var norm float64
		for i := 0; i < K; i++ {
			gamma[t][i] = alpha[t][i] * beta[t][i]
			norm += gamma[t][i]
		}
		if norm > 0 {
			for i := 0; i < K; i++ {
				gamma[t][i] /= norm
			}
		}
	}
	xiSum = make([][]float64, K)
	for i := 0; i < K; i++ {
		xiSum[i] = make([]float64, K)
	}
	for t := 0; t < T-1; t++ {
		var norm float64
		tmp := make([][]float64, K)
		for i := 0; i < K; i++ {
			tmp[i] = make([]float64, K)
			for j := 0; j < K; j++ {
				v := alpha[t][i] * m.A[i][j] * b[t+1][j] * beta[t+1][j]
				tmp[i][j] = v
				norm += v
			}
		}
		if norm > 0 {
			for i := 0; i < K; i++ {
				for j := 0; j < K; j++ {
					xiSum[i][j] += tmp[i][j] / norm
				}
			}
		}
	}
	for t := 0; t < T; t++ {
		ll += math.Log(scale[t])
	}
	return gamma, xiSum, ll
}

// Fit runs Baum-Welch until the log-likelihood improves by less than tol or
// maxIter is reached.
func (m *Model) Fit(data []float64, maxIter int, tol float64) error {
	if len(data) < 2*m.K {
		return fmt.Errorf("hmm: %d observations too few", len(data))
	}
	if maxIter <= 0 {
		maxIter = 50
	}
	if tol <= 0 {
		tol = 1e-4
	}
	prev := math.Inf(-1)
	for iter := 0; iter < maxIter; iter++ {
		gamma, xiSum, ll := m.forwardBackward(data)
		m.LogLikelihood = ll
		m.Iterations = iter + 1
		if ll-prev < tol && iter > 0 {
			break
		}
		prev = ll
		// M-step.
		for i := 0; i < m.K; i++ {
			m.Pi[i] = gamma[0][i]
			var rowSum float64
			for j := 0; j < m.K; j++ {
				rowSum += xiSum[i][j]
			}
			if rowSum > 0 {
				for j := 0; j < m.K; j++ {
					m.A[i][j] = xiSum[i][j] / rowSum
				}
			}
			var wSum, mean float64
			for t := range data {
				wSum += gamma[t][i]
				mean += gamma[t][i] * data[t]
			}
			if wSum > 0 {
				mean /= wSum
				var variance float64
				for t := range data {
					d := data[t] - mean
					variance += gamma[t][i] * d * d
				}
				m.Mean[i] = mean
				m.Var[i] = variance/wSum + 1e-6
			}
		}
	}
	return nil
}

// Viterbi returns the most likely state sequence for the data.
func (m *Model) Viterbi(data []float64) []int {
	T := len(data)
	if T == 0 {
		return nil
	}
	K := m.K
	logA := make([][]float64, K)
	for i := 0; i < K; i++ {
		logA[i] = make([]float64, K)
		for j := 0; j < K; j++ {
			logA[i][j] = math.Log(m.A[i][j] + 1e-300)
		}
	}
	delta := make([][]float64, T)
	psi := make([][]int, T)
	delta[0] = make([]float64, K)
	psi[0] = make([]int, K)
	for i := 0; i < K; i++ {
		delta[0][i] = math.Log(m.Pi[i]+1e-300) + math.Log(gaussian(data[0], m.Mean[i], m.Var[i])+1e-300)
	}
	for t := 1; t < T; t++ {
		delta[t] = make([]float64, K)
		psi[t] = make([]int, K)
		for j := 0; j < K; j++ {
			best, arg := math.Inf(-1), 0
			for i := 0; i < K; i++ {
				if v := delta[t-1][i] + logA[i][j]; v > best {
					best, arg = v, i
				}
			}
			delta[t][j] = best + math.Log(gaussian(data[t], m.Mean[j], m.Var[j])+1e-300)
			psi[t][j] = arg
		}
	}
	states := make([]int, T)
	best, arg := math.Inf(-1), 0
	for i := 0; i < K; i++ {
		if delta[T-1][i] > best {
			best, arg = delta[T-1][i], i
		}
	}
	states[T-1] = arg
	for t := T - 2; t >= 0; t-- {
		states[t] = psi[t+1][states[t+1]]
	}
	return states
}

// CongestedState returns the index of the lowest-mean state (the congested
// regime for throughput data).
func (m *Model) CongestedState() int {
	best, arg := math.Inf(1), 0
	for i, mu := range m.Mean {
		if mu < best {
			best, arg = mu, i
		}
	}
	return arg
}

// DetectCongestion fits a 2-state model to an hourly throughput series and
// returns a boolean congestion label per sample plus the fitted model.
func DetectCongestion(mbps []float64) ([]bool, *Model, error) {
	m, err := NewModel(2, mbps)
	if err != nil {
		return nil, nil, err
	}
	if err := m.Fit(mbps, 50, 1e-4); err != nil {
		return nil, nil, err
	}
	states := m.Viterbi(mbps)
	congested := m.CongestedState()
	out := make([]bool, len(states))
	for i, s := range states {
		out[i] = s == congested
	}
	return out, m, nil
}

// Autocorrelation returns the sample autocorrelation of xs at the given
// lag (the diurnal signature shows as a peak at lag 24 for hourly data).
func Autocorrelation(xs []float64, lag int) (float64, error) {
	if lag < 0 || lag >= len(xs) {
		return 0, fmt.Errorf("hmm: lag %d out of range for %d samples", lag, len(xs))
	}
	n := len(xs)
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(n)
	var denom float64
	for _, x := range xs {
		d := x - mean
		denom += d * d
	}
	if denom == 0 {
		return 0, nil
	}
	var num float64
	for t := 0; t+lag < n; t++ {
		num += (xs[t] - mean) * (xs[t+lag] - mean)
	}
	return num / denom, nil
}

// DiurnalScore is the autocorrelation at the daily lag for hourly data; a
// high score marks a repeating time-of-day pattern.
func DiurnalScore(hourly []float64) (float64, error) {
	return Autocorrelation(hourly, 24)
}
