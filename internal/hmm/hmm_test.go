package hmm

import (
	"math"
	"math/rand"
	"testing"
)

// twoRegimeSeries generates hourly data alternating between a high regime
// (~400) and a low congested regime (~80) in 19-22h windows of some days.
func twoRegimeSeries(days int, congestEvery int, rng *rand.Rand) ([]float64, []bool) {
	var xs []float64
	var truth []bool
	for d := 0; d < days; d++ {
		for h := 0; h < 24; h++ {
			congested := congestEvery > 0 && d%congestEvery == 0 && h >= 19 && h <= 22
			if congested {
				xs = append(xs, 80+rng.NormFloat64()*10)
			} else {
				xs = append(xs, 400+rng.NormFloat64()*25)
			}
			truth = append(truth, congested)
		}
	}
	return xs, truth
}

func TestNewModelValidation(t *testing.T) {
	if _, err := NewModel(1, make([]float64, 100)); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := NewModel(2, []float64{1, 2}); err == nil {
		t.Error("too little data accepted")
	}
}

func TestFitRecoversRegimes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs, _ := twoRegimeSeries(30, 2, rng)
	m, err := NewModel(2, xs)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(xs, 60, 1e-5); err != nil {
		t.Fatal(err)
	}
	lo, hi := m.Mean[m.CongestedState()], m.Mean[1-m.CongestedState()]
	if math.Abs(lo-80) > 30 {
		t.Errorf("congested mean = %.1f, want ~80", lo)
	}
	if math.Abs(hi-400) > 40 {
		t.Errorf("clear mean = %.1f, want ~400", hi)
	}
	if m.Iterations == 0 || math.IsInf(m.LogLikelihood, 0) {
		t.Errorf("fit metadata: %+v", m)
	}
	// Transition matrix rows are stochastic.
	for i := 0; i < 2; i++ {
		sum := m.A[i][0] + m.A[i][1]
		if math.Abs(sum-1) > 1e-6 {
			t.Errorf("row %d sums to %v", i, sum)
		}
	}
}

func TestDetectCongestionAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs, truth := twoRegimeSeries(40, 2, rng)
	labels, m, err := DetectCongestion(xs)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != len(truth) {
		t.Fatal("label length mismatch")
	}
	agree := 0
	for i := range labels {
		if labels[i] == truth[i] {
			agree++
		}
	}
	acc := float64(agree) / float64(len(truth))
	if acc < 0.97 {
		t.Errorf("HMM accuracy %.3f, want >= 0.97", acc)
	}
	// Persistence: self-transitions dominate.
	for i := 0; i < 2; i++ {
		if m.A[i][i] < 0.5 {
			t.Errorf("state %d self-transition %.2f, want persistent", i, m.A[i][i])
		}
	}
}

func TestViterbiEmpty(t *testing.T) {
	m, _ := NewModel(2, []float64{1, 2, 3, 4, 5, 6})
	if m.Viterbi(nil) != nil {
		t.Error("empty viterbi should be nil")
	}
}

func TestFitConstantSeriesSafe(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = 42
	}
	m, err := NewModel(2, xs)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(xs, 20, 1e-4); err != nil {
		t.Fatal(err)
	}
	states := m.Viterbi(xs)
	if len(states) != 100 {
		t.Fatal("viterbi length")
	}
	// No NaNs anywhere.
	for i := 0; i < 2; i++ {
		if math.IsNaN(m.Mean[i]) || math.IsNaN(m.Var[i]) {
			t.Errorf("NaN parameters: %+v", m)
		}
	}
}

func TestAutocorrelation(t *testing.T) {
	// A clean 24h sinusoid has ACF ~1 at lag 24, ~-1 at lag 12.
	var xs []float64
	for i := 0; i < 24*20; i++ {
		xs = append(xs, math.Sin(2*math.Pi*float64(i)/24))
	}
	if v, err := Autocorrelation(xs, 24); err != nil || v < 0.9 {
		t.Errorf("ACF(24) = %v (err %v), want ~1", v, err)
	}
	if v, _ := Autocorrelation(xs, 12); v > -0.8 {
		t.Errorf("ACF(12) = %v, want ~-1", v)
	}
	if v, _ := Autocorrelation(xs, 0); math.Abs(v-1) > 1e-9 {
		t.Errorf("ACF(0) = %v", v)
	}
	if _, err := Autocorrelation(xs, -1); err == nil {
		t.Error("negative lag accepted")
	}
	if _, err := Autocorrelation(xs, len(xs)); err == nil {
		t.Error("oversized lag accepted")
	}
	// White noise has low ACF at lag 24.
	rng := rand.New(rand.NewSource(3))
	var noise []float64
	for i := 0; i < 24*20; i++ {
		noise = append(noise, rng.NormFloat64())
	}
	if v, _ := Autocorrelation(noise, 24); math.Abs(v) > 0.15 {
		t.Errorf("white noise ACF(24) = %v", v)
	}
	// Constant series: zero by convention.
	flat := make([]float64, 100)
	if v, _ := Autocorrelation(flat, 24); v != 0 {
		t.Errorf("flat ACF = %v", v)
	}
}

func TestDiurnalScoreSeparates(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	diurnal, _ := twoRegimeSeries(30, 1, rng) // dip every day
	sDiurnal, err := DiurnalScore(diurnal)
	if err != nil {
		t.Fatal(err)
	}
	var noise []float64
	for i := 0; i < 24*30; i++ {
		noise = append(noise, 400+rng.NormFloat64()*25)
	}
	sNoise, _ := DiurnalScore(noise)
	if sDiurnal < sNoise+0.3 {
		t.Errorf("diurnal score %.2f not separated from noise %.2f", sDiurnal, sNoise)
	}
}

func TestHMMVsThresholdOnIntermittentCongestion(t *testing.T) {
	// When congestion appears on only some days, the HMM still finds the
	// low regime; accuracy should remain high.
	rng := rand.New(rand.NewSource(11))
	xs, truth := twoRegimeSeries(60, 5, rng)
	labels, _, err := DetectCongestion(xs)
	if err != nil {
		t.Fatal(err)
	}
	tp, fp, fn := 0, 0, 0
	for i := range labels {
		switch {
		case labels[i] && truth[i]:
			tp++
		case labels[i] && !truth[i]:
			fp++
		case !labels[i] && truth[i]:
			fn++
		}
	}
	if tp == 0 {
		t.Fatal("no events recovered")
	}
	precision := float64(tp) / float64(tp+fp)
	recall := float64(tp) / float64(tp+fn)
	if precision < 0.9 || recall < 0.9 {
		t.Errorf("precision %.2f recall %.2f", precision, recall)
	}
}
