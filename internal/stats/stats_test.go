package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestPercentileBasic(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 15}, {100, 50}, {50, 35}, {25, 20}, {75, 40},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatalf("Percentile(%v): %v", c.p, err)
		}
		if !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileInterpolation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	got, err := Percentile(xs, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 2.5, 1e-9) {
		t.Errorf("median of 1..4 = %v, want 2.5", got)
	}
}

func TestPercentileErrors(t *testing.T) {
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Errorf("empty sample: got %v, want ErrEmpty", err)
	}
	if _, err := Percentile([]float64{1}, -1); err == nil {
		t.Error("p=-1: want error")
	}
	if _, err := Percentile([]float64{1}, 101); err == nil {
		t.Error("p=101: want error")
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	m, err := Mean(xs)
	if err != nil || !almostEqual(m, 5, 1e-9) {
		t.Errorf("Mean = %v (err %v), want 5", m, err)
	}
	v, err := Variance(xs)
	if err != nil || !almostEqual(v, 32.0/7.0, 1e-9) {
		t.Errorf("Variance = %v (err %v), want %v", v, err, 32.0/7.0)
	}
	sd, _ := StdDev(xs)
	if !almostEqual(sd, math.Sqrt(32.0/7.0), 1e-9) {
		t.Errorf("StdDev = %v", sd)
	}
}

func TestVarianceSingleElement(t *testing.T) {
	v, err := Variance([]float64{42})
	if err != nil || v != 0 {
		t.Errorf("Variance single = %v (err %v), want 0", v, err)
	}
}

func TestMinMax(t *testing.T) {
	min, max, err := MinMax([]float64{5, -2, 9, 0})
	if err != nil || min != -2 || max != 9 {
		t.Errorf("MinMax = %v,%v (err %v)", min, max, err)
	}
	if _, _, err := MinMax(nil); err != ErrEmpty {
		t.Errorf("MinMax empty: got %v", err)
	}
}

func TestCDF(t *testing.T) {
	pts, err := CDF([]float64{3, 1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	// values 1,2,2,3 → points (1,0.25) (2,0.75) (3,1.0)
	want := []CDFPoint{{1, 0.25}, {2, 0.75}, {3, 1}}
	if len(pts) != len(want) {
		t.Fatalf("CDF len = %d, want %d (%v)", len(pts), len(want), pts)
	}
	for i := range want {
		if !almostEqual(pts[i].X, want[i].X, 1e-9) || !almostEqual(pts[i].P, want[i].P, 1e-9) {
			t.Errorf("CDF[%d] = %+v, want %+v", i, pts[i], want[i])
		}
	}
}

func TestCDFAt(t *testing.T) {
	pts, _ := CDF([]float64{1, 2, 3, 4})
	cases := []struct {
		x, want float64
	}{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := CDFAt(pts, c.x); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("CDFAt(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestFractions(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if f := FractionBelow(xs, 3); !almostEqual(f, 0.4, 1e-9) {
		t.Errorf("FractionBelow = %v", f)
	}
	if f := FractionAbove(xs, 3); !almostEqual(f, 0.4, 1e-9) {
		t.Errorf("FractionAbove = %v", f)
	}
	if f := FractionBelow(nil, 3); f != 0 {
		t.Errorf("FractionBelow(nil) = %v", f)
	}
}

func TestKDEIntegratesToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.NormFloat64()*10 + 100
	}
	pts, err := KDE(xs, 256, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Trapezoidal integral should be ~1.
	integral := 0.0
	for i := 1; i < len(pts); i++ {
		integral += (pts[i].Density + pts[i-1].Density) / 2 * (pts[i].X - pts[i-1].X)
	}
	if !almostEqual(integral, 1, 0.02) {
		t.Errorf("KDE integral = %v, want ~1", integral)
	}
}

func TestKDEDegenerate(t *testing.T) {
	pts, err := KDE([]float64{5, 5, 5}, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Peak should be near x=5.
	best := pts[0]
	for _, p := range pts {
		if p.Density > best.Density {
			best = p
		}
	}
	if !almostEqual(best.X, 5, 1.5) {
		t.Errorf("KDE peak at %v, want near 5", best.X)
	}
}

func TestKDEErrors(t *testing.T) {
	if _, err := KDE(nil, 10, 0); err != ErrEmpty {
		t.Errorf("KDE(nil): %v", err)
	}
	if _, err := KDE([]float64{1}, 1, 0); err == nil {
		t.Error("KDE with 1 point: want error")
	}
}

func TestElbowOnKneeCurve(t *testing.T) {
	// y = 1/x style curve has a clear knee.
	xs := make([]float64, 0, 50)
	ys := make([]float64, 0, 50)
	for i := 1; i <= 50; i++ {
		x := float64(i)
		xs = append(xs, x)
		ys = append(ys, 50/x)
	}
	idx, err := Elbow(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if idx < 3 || idx > 15 {
		t.Errorf("Elbow index = %d, want a small-x knee", idx)
	}
}

func TestElbowErrors(t *testing.T) {
	if _, err := Elbow([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch: want error")
	}
	if _, err := Elbow([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Error("too few points: want error")
	}
	if _, err := Elbow([]float64{1, 1, 1}, []float64{2, 2, 2}); err == nil {
		t.Error("coincident endpoints: want error")
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 1000)
	var w Welford
	for i := range xs {
		xs[i] = rng.Float64() * 100
		w.Add(xs[i])
	}
	bm, _ := Mean(xs)
	bv, _ := Variance(xs)
	min, max, _ := MinMax(xs)
	if !almostEqual(w.Mean(), bm, 1e-9) {
		t.Errorf("Welford mean %v vs batch %v", w.Mean(), bm)
	}
	if !almostEqual(w.Variance(), bv, 1e-6) {
		t.Errorf("Welford var %v vs batch %v", w.Variance(), bv)
	}
	if w.Min() != min || w.Max() != max {
		t.Errorf("Welford min/max %v/%v vs %v/%v", w.Min(), w.Max(), min, max)
	}
	if w.N() != 1000 {
		t.Errorf("Welford N = %d", w.N())
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.N() != 0 {
		t.Error("zero-value Welford should report zeros")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.9, 10, 100} {
		h.Add(x)
	}
	if h.Total() != 8 {
		t.Errorf("Total = %d", h.Total())
	}
	// bins: [0,2) has -1,0,1.9 = 3; [2,4) has 2; [4,6) has 5; [8,10) has 9.9,10,100 = 3
	want := []int{3, 1, 1, 0, 3}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Errorf("bin %d = %d, want %d", i, h.Counts[i], w)
		}
	}
	if !almostEqual(h.BinCenter(0), 1, 1e-9) {
		t.Errorf("BinCenter(0) = %v", h.BinCenter(0))
	}
	if !almostEqual(h.Fraction(0), 3.0/8.0, 1e-9) {
		t.Errorf("Fraction(0) = %v", h.Fraction(0))
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic on invalid histogram")
		}
	}()
	NewHistogram(5, 5, 3)
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		min, max, _ := MinMax(xs)
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			v, err := Percentile(xs, p)
			if err != nil {
				return false
			}
			if v < prev || v < min-1e-9 || v > max+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: CDF is monotone non-decreasing and ends at 1.
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		pts, err := CDF(xs)
		if err != nil {
			return false
		}
		if !sort.SliceIsSorted(pts, func(i, j int) bool { return pts[i].X < pts[j].X }) {
			return false
		}
		prev := 0.0
		for _, p := range pts {
			if p.P < prev {
				return false
			}
			prev = p.P
		}
		return almostEqual(pts[len(pts)-1].P, 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Welford mean always lies within [min, max].
func TestWelfordBoundsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var w Welford
		for _, x := range raw {
			// Skip values whose differences overflow float64; the
			// accumulator targets measurement-scale magnitudes.
			if math.IsNaN(x) || math.Abs(x) > 1e150 {
				continue
			}
			w.Add(x)
		}
		if w.N() == 0 {
			return true
		}
		return w.Mean() >= w.Min()-1e-9 && w.Mean() <= w.Max()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPercentilesSortedMatchesPercentile(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ps := []float64{0, 5, 50, 95, 100}
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		sorted := make([]float64, n)
		copy(sorted, xs)
		sort.Float64s(sorted)
		got, err := PercentilesSorted(sorted, ps...)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range ps {
			want, err := Percentile(xs, p)
			if err != nil {
				t.Fatal(err)
			}
			if got[i] != want {
				t.Fatalf("trial %d n=%d p=%v: PercentilesSorted=%v Percentile=%v", trial, n, p, got[i], want)
			}
		}
		// A random p too, not just the paper's grid.
		p := rng.Float64() * 100
		one, err := PercentilesSorted(sorted, p)
		if err != nil {
			t.Fatal(err)
		}
		if want, _ := Percentile(xs, p); one[0] != want {
			t.Fatalf("trial %d p=%v: %v != %v", trial, p, one[0], want)
		}
	}
}

func TestPercentilesSortedErrors(t *testing.T) {
	if _, err := PercentilesSorted(nil, 50); err != ErrEmpty {
		t.Errorf("empty: err = %v", err)
	}
	if _, err := PercentilesSorted([]float64{1}, -1); err == nil {
		t.Error("p < 0 accepted")
	}
	if _, err := PercentilesSorted([]float64{1}, 101); err == nil {
		t.Error("p > 100 accepted")
	}
}

func TestDescribe(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	s, err := Describe(xs)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.P50 != 3 {
		t.Errorf("summary = %+v", s)
	}
	for _, pair := range [][2]float64{{s.P5, s.P25}, {s.P25, s.P50}, {s.P50, s.P75}, {s.P75, s.P95}} {
		if pair[0] > pair[1] {
			t.Errorf("percentiles not monotone: %+v", s)
		}
	}
	if xs[0] != 5 {
		t.Error("Describe mutated its input")
	}
	if _, err := Describe(nil); err != ErrEmpty {
		t.Errorf("empty: err = %v", err)
	}
}

func TestPercentileInPlaceMatchesPercentile(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	ps := []float64{0, 5, 25, 50, 75, 95, 100}
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			if trial%3 == 0 {
				// Quantized values force ties through the selection paths.
				xs[i] = float64(rng.Intn(8))
			} else {
				xs[i] = rng.NormFloat64() * 100
			}
		}
		p := ps[trial%len(ps)]
		if trial%7 == 0 {
			p = rng.Float64() * 100
		}
		want, err := Percentile(xs, p)
		if err != nil {
			t.Fatal(err)
		}
		work := append([]float64(nil), xs...)
		got, err := PercentileInPlace(work, p)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d (n=%d, p=%v): in-place %v != sorted %v", trial, n, p, got, want)
		}
		// Selection only permutes: same multiset afterwards.
		sort.Float64s(work)
		ref := append([]float64(nil), xs...)
		sort.Float64s(ref)
		for i := range ref {
			if work[i] != ref[i] {
				t.Fatalf("trial %d: element multiset changed at %d", trial, i)
			}
		}
	}
}

func TestPercentileInPlaceErrors(t *testing.T) {
	if _, err := PercentileInPlace(nil, 50); err != ErrEmpty {
		t.Errorf("empty: err = %v", err)
	}
	if _, err := PercentileInPlace([]float64{1, 2}, 101); err == nil {
		t.Error("p=101: no error")
	}
	if _, err := PercentileInPlace([]float64{1, 2}, -1); err == nil {
		t.Error("p=-1: no error")
	}
}
