// Package stats provides the statistical primitives used throughout CLASP:
// percentiles, empirical CDFs, Gaussian kernel density estimation, the elbow
// locator used to pick the congestion threshold H, and streaming moments.
//
// All functions are pure and operate on float64 slices. Functions that need
// sorted input document it; the exported helpers sort defensively on a copy
// unless noted otherwise.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that cannot operate on empty samples.
var ErrEmpty = errors.New("stats: empty sample")

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks (the same method as numpy's default).
// It copies and sorts the input.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of range [0,100]")
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return PercentileSorted(s, p), nil
}

// PercentileSorted returns the p-th percentile of an already-sorted sample.
// Behaviour is undefined for unsorted input. Panics on empty input.
func PercentileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// PercentilesSorted returns the ps-th percentiles of an already-sorted
// sample, one output per requested p — the sort-once companion of
// Percentile for callers that need several percentiles of the same sample
// (or own the buffer and can sort it in place). Behaviour is undefined for
// unsorted input.
func PercentilesSorted(sorted []float64, ps ...float64) ([]float64, error) {
	if len(sorted) == 0 {
		return nil, ErrEmpty
	}
	out := make([]float64, len(ps))
	for i, p := range ps {
		if p < 0 || p > 100 {
			return nil, errors.New("stats: percentile out of range [0,100]")
		}
		out[i] = PercentileSorted(sorted, p)
	}
	return out, nil
}

// PercentileInPlace returns the same value as Percentile but finds the two
// bracketing order statistics with quickselect instead of fully sorting —
// O(n) rather than O(n log n). It partially reorders xs (no copy): on
// return the selected rank k satisfies xs[:k] <= xs[k] <= xs[k+1:] under
// the same ordering sort.Float64s uses, so results agree bit-for-bit with
// the sorting implementations.
func PercentileInPlace(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of range [0,100]")
	}
	n := len(xs)
	if n == 1 {
		return xs[0], nil
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	xlo := selectKth(xs, lo)
	if lo == hi {
		return xlo, nil
	}
	// selectKth leaves xs[lo+1:] >= xs[lo]; the next order statistic is
	// that suffix's minimum.
	xhi := xs[lo+1]
	for _, v := range xs[lo+2:] {
		if fless(v, xhi) {
			xhi = v
		}
	}
	frac := rank - float64(lo)
	return xlo*(1-frac) + xhi*frac, nil
}

// fless is sort.Float64s's ordering — ascending with NaNs first — so
// selection and sorting agree on every input, not just NaN-free ones.
func fless(a, b float64) bool {
	return a < b || (math.IsNaN(a) && !math.IsNaN(b))
}

// selectKth moves the k-th smallest element of xs (under fless) to xs[k],
// with smaller elements to its left and larger ones to its right, and
// returns it. Deterministic median-of-three Hoare quickselect; small
// windows finish with an insertion sort.
func selectKth(xs []float64, k int) float64 {
	lo, hi := 0, len(xs)-1
	for hi-lo > 12 {
		mid := lo + (hi-lo)/2
		if fless(xs[mid], xs[lo]) {
			xs[mid], xs[lo] = xs[lo], xs[mid]
		}
		if fless(xs[hi], xs[lo]) {
			xs[hi], xs[lo] = xs[lo], xs[hi]
		}
		if fless(xs[hi], xs[mid]) {
			xs[hi], xs[mid] = xs[mid], xs[hi]
		}
		pivot := xs[mid]
		i, j := lo, hi
		for i <= j {
			for fless(xs[i], pivot) {
				i++
			}
			for fless(pivot, xs[j]) {
				j--
			}
			if i <= j {
				xs[i], xs[j] = xs[j], xs[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			hi = j
		case k >= i:
			lo = i
		default:
			return xs[k] // the i/j gap holds only pivot-equal elements
		}
	}
	for a := lo + 1; a <= hi; a++ {
		for b := a; b > lo && fless(xs[b], xs[b-1]); b-- {
			xs[b], xs[b-1] = xs[b-1], xs[b]
		}
	}
	return xs[k]
}

// Summary describes a sample with one sort: size, mean, extremes, and the
// percentiles the paper's figures lean on.
type Summary struct {
	N                      int
	Mean, Min, Max         float64
	P5, P25, P50, P75, P95 float64
}

// Describe computes a Summary, copying and sorting the input once.
func Describe(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return DescribeSorted(s), nil
}

// DescribeSorted computes a Summary from an already-sorted sample without
// allocating. Panics on empty input.
func DescribeSorted(sorted []float64) Summary {
	sum := 0.0
	for _, x := range sorted {
		sum += x
	}
	return Summary{
		N:    len(sorted),
		Mean: sum / float64(len(sorted)),
		Min:  sorted[0],
		Max:  sorted[len(sorted)-1],
		P5:   PercentileSorted(sorted, 5),
		P25:  PercentileSorted(sorted, 25),
		P50:  PercentileSorted(sorted, 50),
		P75:  PercentileSorted(sorted, 75),
		P95:  PercentileSorted(sorted, 95),
	}
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) (float64, error) { return Percentile(xs, 50) }

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// MinMax returns the minimum and maximum of xs.
func MinMax(xs []float64) (min, max float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max, nil
}

// Variance returns the unbiased sample variance of xs. A single-element
// sample has zero variance.
func Variance(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if len(xs) == 1 {
		return 0, nil
	}
	m, _ := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1), nil
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// CDFPoint is a single point of an empirical cumulative distribution.
type CDFPoint struct {
	X float64 // sample value
	P float64 // cumulative probability in (0, 1]
}

// CDF returns the empirical CDF of xs as a sorted sequence of points with
// P(i) = (i+1)/n. Duplicate values are collapsed, keeping the highest
// cumulative probability.
func CDF(xs []float64) ([]CDFPoint, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	n := float64(len(s))
	pts := make([]CDFPoint, 0, len(s))
	for i, x := range s {
		p := float64(i+1) / n
		if len(pts) > 0 && pts[len(pts)-1].X == x {
			pts[len(pts)-1].P = p
			continue
		}
		pts = append(pts, CDFPoint{X: x, P: p})
	}
	return pts, nil
}

// CDFAt evaluates an empirical CDF (from CDF) at x: the fraction of samples
// less than or equal to x.
func CDFAt(cdf []CDFPoint, x float64) float64 {
	// Binary search for the last point with X <= x.
	lo, hi := 0, len(cdf)
	for lo < hi {
		mid := (lo + hi) / 2
		if cdf[mid].X <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return cdf[lo-1].P
}

// FractionBelow returns the fraction of samples in xs strictly below x.
func FractionBelow(xs []float64, x float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, v := range xs {
		if v < x {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// FractionAbove returns the fraction of samples in xs strictly above x.
func FractionAbove(xs []float64, x float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, v := range xs {
		if v > x {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// KDEPoint is one evaluation point of a kernel density estimate.
type KDEPoint struct {
	X       float64
	Density float64
}

// KDE computes a Gaussian kernel density estimate of xs, evaluated at points
// equally spaced between min and max over `points` samples. Bandwidth is
// chosen by Silverman's rule of thumb when bw <= 0. This mirrors the marginal
// density curves on the axes of Fig. 4.
func KDE(xs []float64, points int, bw float64) ([]KDEPoint, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	if points < 2 {
		return nil, errors.New("stats: KDE needs at least 2 evaluation points")
	}
	if bw <= 0 {
		bw = SilvermanBandwidth(xs)
	}
	if bw <= 0 { // degenerate sample (all identical)
		bw = 1
	}
	min, max, _ := MinMax(xs)
	span := max - min
	if span == 0 {
		span = 1
	}
	lo := min - 3*bw
	hi := max + 3*bw
	step := (hi - lo) / float64(points-1)
	out := make([]KDEPoint, points)
	norm := 1 / (float64(len(xs)) * bw * math.Sqrt(2*math.Pi))
	for i := 0; i < points; i++ {
		x := lo + float64(i)*step
		d := 0.0
		for _, xi := range xs {
			u := (x - xi) / bw
			d += math.Exp(-0.5 * u * u)
		}
		out[i] = KDEPoint{X: x, Density: d * norm}
	}
	return out, nil
}

// SilvermanBandwidth returns Silverman's rule-of-thumb bandwidth:
// 0.9 * min(sd, IQR/1.34) * n^(-1/5).
func SilvermanBandwidth(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	sd, _ := StdDev(xs)
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	iqr := PercentileSorted(s, 75) - PercentileSorted(s, 25)
	a := sd
	if iqr > 0 && iqr/1.34 < a {
		a = iqr / 1.34
	}
	if a == 0 {
		a = sd
	}
	return 0.9 * a * math.Pow(float64(len(xs)), -0.2)
}

// Elbow locates the "elbow" of a monotonically decreasing curve y(x) using
// the maximum-distance-to-chord method: the point farthest from the straight
// line joining the first and last points. It returns the index of the elbow.
// This is the method CLASP uses on the congested-fraction-vs-H curve (§3.3)
// to justify H = 0.5.
func Elbow(xs, ys []float64) (int, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: elbow requires equal-length xs and ys")
	}
	if len(xs) < 3 {
		return 0, errors.New("stats: elbow requires at least 3 points")
	}
	x0, y0 := xs[0], ys[0]
	x1, y1 := xs[len(xs)-1], ys[len(ys)-1]
	dx, dy := x1-x0, y1-y0
	denom := math.Hypot(dx, dy)
	if denom == 0 {
		return 0, errors.New("stats: elbow endpoints coincide")
	}
	best, bestDist := 0, -1.0
	for i := range xs {
		// Perpendicular distance from (xs[i], ys[i]) to the chord.
		d := math.Abs(dy*xs[i]-dx*ys[i]+x1*y0-y1*x0) / denom
		if d > bestDist {
			bestDist = d
			best = i
		}
	}
	return best, nil
}

// Welford accumulates streaming mean and variance using Welford's online
// algorithm. The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates x into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of samples seen.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 for an empty accumulator).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased running variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the unbiased running standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest sample seen (0 for an empty accumulator).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest sample seen (0 for an empty accumulator).
func (w *Welford) Max() float64 { return w.max }

// Histogram counts samples into equal-width bins across [lo, hi). Samples
// outside the range are clamped to the first/last bin.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with n bins over [lo, hi). Panics if
// n <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram parameters")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, n)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	n := len(h.Counts)
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(n))
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	h.Counts[i]++
	h.total++
}

// Total returns the number of samples recorded.
func (h *Histogram) Total() int { return h.total }

// Fraction returns the fraction of samples in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}

// BinCenter returns the centre value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}
