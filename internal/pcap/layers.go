package pcap

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// LayerType identifies a protocol layer within a packet.
type LayerType int

// Supported layer types.
const (
	LayerTypeEthernet LayerType = iota
	LayerTypeIPv4
	LayerTypeIPv6
	LayerTypeTCP
	LayerTypeUDP
	LayerTypePayload
)

// String implements fmt.Stringer.
func (t LayerType) String() string {
	switch t {
	case LayerTypeEthernet:
		return "Ethernet"
	case LayerTypeIPv4:
		return "IPv4"
	case LayerTypeIPv6:
		return "IPv6"
	case LayerTypeTCP:
		return "TCP"
	case LayerTypeUDP:
		return "UDP"
	case LayerTypePayload:
		return "Payload"
	default:
		return fmt.Sprintf("LayerType(%d)", int(t))
	}
}

// Layer is one decoded protocol layer.
type Layer interface {
	LayerType() LayerType
}

// Ethernet is a decoded Ethernet II header.
type Ethernet struct {
	SrcMAC, DstMAC [6]byte
	EtherType      uint16
}

// EtherType values.
const (
	EtherTypeIPv4 = 0x0800
	EtherTypeIPv6 = 0x86dd
)

// LayerType implements Layer.
func (e *Ethernet) LayerType() LayerType { return LayerTypeEthernet }

func (e *Ethernet) encode(b []byte) {
	copy(b[0:6], e.DstMAC[:])
	copy(b[6:12], e.SrcMAC[:])
	binary.BigEndian.PutUint16(b[12:14], e.EtherType)
}

// IPv4 is a decoded IPv4 header (options are not interpreted).
type IPv4 struct {
	TTL      uint8
	Protocol uint8
	ID       uint16
	SrcIP    netip.Addr
	DstIP    netip.Addr
	Length   uint16 // total length from the header
}

// IP protocol numbers.
const (
	ProtoTCP  = 6
	ProtoUDP  = 17
	ProtoICMP = 1
)

// LayerType implements Layer.
func (ip *IPv4) LayerType() LayerType { return LayerTypeIPv4 }

// IPv6 is a (minimal) decoded IPv6 fixed header.
type IPv6 struct {
	NextHeader uint8
	HopLimit   uint8
	SrcIP      netip.Addr
	DstIP      netip.Addr
	Length     uint16 // payload length
}

// LayerType implements Layer.
func (ip *IPv6) LayerType() LayerType { return LayerTypeIPv6 }

// TCP is a decoded TCP header.
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	DataOffset       uint8 // header length in 32-bit words
	SYN, ACK, FIN    bool
	RST, PSH, URG    bool
	Window           uint16
	PayloadLen       int // bytes of data after the header within the IP packet
}

// LayerType implements Layer.
func (t *TCP) LayerType() LayerType { return LayerTypeTCP }

// UDP is a decoded UDP header.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16
}

// LayerType implements Layer.
func (u *UDP) LayerType() LayerType { return LayerTypeUDP }

// Payload carries any undecoded trailing bytes.
type Payload []byte

// LayerType implements Layer.
func (p Payload) LayerType() LayerType { return LayerTypePayload }

// --- Serialisation ----------------------------------------------------------

// TCPPacket serialises an Ethernet/IPv4/TCP packet with payloadLen bytes of
// zero-filled application data (header captures carry no real payload, but
// the IP total length records the true size, exactly like a tcpdump -s 96
// capture).
//
// capPayload limits how many payload bytes are materialised; the IP header
// length field always reflects payloadLen.
func TCPPacket(src, dst netip.Addr, tcp *TCP, ipID uint16, ttl uint8, payloadLen, capPayload int) []byte {
	if capPayload > payloadLen {
		capPayload = payloadLen
	}
	const ethLen, ipLen, tcpLen = 14, 20, 20
	buf := make([]byte, ethLen+ipLen+tcpLen+capPayload)
	eth := Ethernet{EtherType: EtherTypeIPv4}
	eth.SrcMAC = [6]byte{2, 0, 0, 0, 0, 1}
	eth.DstMAC = [6]byte{2, 0, 0, 0, 0, 2}
	eth.encode(buf)

	ip := buf[ethLen:]
	ip[0] = 0x45 // version 4, IHL 5
	binary.BigEndian.PutUint16(ip[2:], uint16(ipLen+tcpLen+payloadLen))
	binary.BigEndian.PutUint16(ip[4:], ipID)
	ip[8] = ttl
	ip[9] = ProtoTCP
	s4 := src.As4()
	d4 := dst.As4()
	copy(ip[12:16], s4[:])
	copy(ip[16:20], d4[:])
	binary.BigEndian.PutUint16(ip[10:], ipChecksum(ip[:ipLen]))

	th := buf[ethLen+ipLen:]
	binary.BigEndian.PutUint16(th[0:], tcp.SrcPort)
	binary.BigEndian.PutUint16(th[2:], tcp.DstPort)
	binary.BigEndian.PutUint32(th[4:], tcp.Seq)
	binary.BigEndian.PutUint32(th[8:], tcp.Ack)
	th[12] = 5 << 4 // data offset 5 words
	var flags byte
	if tcp.FIN {
		flags |= 0x01
	}
	if tcp.SYN {
		flags |= 0x02
	}
	if tcp.RST {
		flags |= 0x04
	}
	if tcp.PSH {
		flags |= 0x08
	}
	if tcp.ACK {
		flags |= 0x10
	}
	if tcp.URG {
		flags |= 0x20
	}
	th[13] = flags
	binary.BigEndian.PutUint16(th[14:], tcp.Window)
	return buf
}

func ipChecksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		if i == 10 {
			continue // checksum field itself
		}
		sum += uint32(binary.BigEndian.Uint16(hdr[i:]))
	}
	for sum > 0xffff {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// --- Decoding ---------------------------------------------------------------

// Packet is a decoded packet: an ordered list of layers plus convenience
// accessors in the gopacket style.
type Packet struct {
	ci     CaptureInfo
	layers []Layer
	err    error
}

// Decode parses packet bytes starting at the Ethernet layer. Decoding stops
// at the first malformed layer; Packet.Err reports what went wrong while
// the successfully decoded prefix remains accessible.
func Decode(ci CaptureInfo, data []byte) *Packet {
	p := &Packet{ci: ci}
	if len(data) < 14 {
		p.err = fmt.Errorf("pcap: ethernet header truncated (%d bytes)", len(data))
		return p
	}
	eth := &Ethernet{EtherType: binary.BigEndian.Uint16(data[12:14])}
	copy(eth.DstMAC[:], data[0:6])
	copy(eth.SrcMAC[:], data[6:12])
	p.layers = append(p.layers, eth)
	rest := data[14:]
	switch eth.EtherType {
	case EtherTypeIPv4:
		p.decodeIPv4(rest)
	case EtherTypeIPv6:
		p.decodeIPv6(rest)
	default:
		if len(rest) > 0 {
			p.layers = append(p.layers, Payload(rest))
		}
	}
	return p
}

func (p *Packet) decodeIPv4(data []byte) {
	if len(data) < 20 {
		p.err = fmt.Errorf("pcap: IPv4 header truncated")
		return
	}
	ihl := int(data[0]&0x0f) * 4
	if data[0]>>4 != 4 || ihl < 20 || ihl > len(data) {
		p.err = fmt.Errorf("pcap: bad IPv4 header (version/IHL byte %#x)", data[0])
		return
	}
	ip := &IPv4{
		TTL:      data[8],
		Protocol: data[9],
		ID:       binary.BigEndian.Uint16(data[4:]),
		SrcIP:    netip.AddrFrom4([4]byte(data[12:16])),
		DstIP:    netip.AddrFrom4([4]byte(data[16:20])),
		Length:   binary.BigEndian.Uint16(data[2:]),
	}
	p.layers = append(p.layers, ip)
	p.decodeTransport(ip.Protocol, data[ihl:], int(ip.Length)-ihl)
}

func (p *Packet) decodeIPv6(data []byte) {
	if len(data) < 40 {
		p.err = fmt.Errorf("pcap: IPv6 header truncated")
		return
	}
	ip := &IPv6{
		NextHeader: data[6],
		HopLimit:   data[7],
		SrcIP:      netip.AddrFrom16([16]byte(data[8:24])),
		DstIP:      netip.AddrFrom16([16]byte(data[24:40])),
		Length:     binary.BigEndian.Uint16(data[4:]),
	}
	p.layers = append(p.layers, ip)
	p.decodeTransport(ip.NextHeader, data[40:], int(ip.Length))
}

// decodeTransport parses the transport header. ipPayloadLen is the
// transport-layer length according to the IP header, which can exceed the
// captured bytes under a snaplen.
func (p *Packet) decodeTransport(proto uint8, data []byte, ipPayloadLen int) {
	switch proto {
	case ProtoTCP:
		if len(data) < 20 {
			p.err = fmt.Errorf("pcap: TCP header truncated")
			return
		}
		off := int(data[12]>>4) * 4
		if off < 20 {
			p.err = fmt.Errorf("pcap: bad TCP data offset %d", off)
			return
		}
		flags := data[13]
		t := &TCP{
			SrcPort:    binary.BigEndian.Uint16(data[0:]),
			DstPort:    binary.BigEndian.Uint16(data[2:]),
			Seq:        binary.BigEndian.Uint32(data[4:]),
			Ack:        binary.BigEndian.Uint32(data[8:]),
			DataOffset: data[12] >> 4,
			FIN:        flags&0x01 != 0,
			SYN:        flags&0x02 != 0,
			RST:        flags&0x04 != 0,
			PSH:        flags&0x08 != 0,
			ACK:        flags&0x10 != 0,
			URG:        flags&0x20 != 0,
			Window:     binary.BigEndian.Uint16(data[14:]),
		}
		if ipPayloadLen >= off {
			t.PayloadLen = ipPayloadLen - off
		}
		p.layers = append(p.layers, t)
		if off < len(data) {
			p.layers = append(p.layers, Payload(data[off:]))
		}
	case ProtoUDP:
		if len(data) < 8 {
			p.err = fmt.Errorf("pcap: UDP header truncated")
			return
		}
		u := &UDP{
			SrcPort: binary.BigEndian.Uint16(data[0:]),
			DstPort: binary.BigEndian.Uint16(data[2:]),
			Length:  binary.BigEndian.Uint16(data[4:]),
		}
		p.layers = append(p.layers, u)
		if len(data) > 8 {
			p.layers = append(p.layers, Payload(data[8:]))
		}
	default:
		if len(data) > 0 {
			p.layers = append(p.layers, Payload(data))
		}
	}
}

// CaptureInfo returns the record metadata.
func (p *Packet) CaptureInfo() CaptureInfo { return p.ci }

// Layers returns all decoded layers in order.
func (p *Packet) Layers() []Layer { return p.layers }

// Err reports a decoding problem, if any. Layers decoded before the error
// remain available (mirroring gopacket's ErrorLayer behaviour).
func (p *Packet) Err() error { return p.err }

// Layer returns the first layer of the given type, or nil.
func (p *Packet) Layer(t LayerType) Layer {
	for _, l := range p.layers {
		if l.LayerType() == t {
			return l
		}
	}
	return nil
}

// NetworkLayer returns the IPv4 or IPv6 layer, or nil.
func (p *Packet) NetworkLayer() Layer {
	if l := p.Layer(LayerTypeIPv4); l != nil {
		return l
	}
	return p.Layer(LayerTypeIPv6)
}

// TransportLayer returns the TCP or UDP layer, or nil.
func (p *Packet) TransportLayer() Layer {
	if l := p.Layer(LayerTypeTCP); l != nil {
		return l
	}
	return p.Layer(LayerTypeUDP)
}
