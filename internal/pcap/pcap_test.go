package pcap

import (
	"bytes"
	"io"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
	"time"
)

var (
	srcIP = netip.MustParseAddr("10.0.0.1")
	dstIP = netip.MustParseAddr("192.0.2.9")
)

func samplePacket(seq uint32, payload int) []byte {
	return TCPPacket(srcIP, dstIP, &TCP{
		SrcPort: 443, DstPort: 51000, Seq: seq, Ack: 100, ACK: true, PSH: payload > 0, Window: 65535,
	}, 7, 64, payload, 0)
}

func TestWriterReaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 96)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2020, 5, 1, 12, 0, 0, 123456000, time.UTC)
	var wrote [][]byte
	for i := 0; i < 5; i++ {
		pkt := samplePacket(uint32(i*1448), 1448)
		wrote = append(wrote, pkt)
		if err := w.WritePacket(CaptureInfo{Timestamp: base.Add(time.Duration(i) * time.Millisecond), Length: len(pkt) + 1448}, pkt); err != nil {
			t.Fatal(err)
		}
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Snaplen() != 96 {
		t.Errorf("snaplen = %d", r.Snaplen())
	}
	for i := 0; ; i++ {
		ci, data, err := r.ReadPacket()
		if err == io.EOF {
			if i != 5 {
				t.Fatalf("read %d packets, want 5", i)
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(data) > 96 {
			t.Errorf("packet %d exceeds snaplen: %d", i, len(data))
		}
		if ci.Length != len(wrote[i])+1448 {
			t.Errorf("packet %d wire length %d", i, ci.Length)
		}
		want := base.Add(time.Duration(i) * time.Millisecond)
		if ci.Timestamp.Unix() != want.Unix() {
			t.Errorf("packet %d timestamp %v, want %v", i, ci.Timestamp, want)
		}
		// Microsecond precision preserved.
		if ci.Timestamp.Nanosecond()/1000 != want.Nanosecond()/1000 {
			t.Errorf("packet %d usec %d, want %d", i, ci.Timestamp.Nanosecond()/1000, want.Nanosecond()/1000)
		}
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("not a pcap file at all......."))); err != ErrBadMagic {
		t.Errorf("garbage magic: %v", err)
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream: want error")
	}
}

func TestReaderRejectsImplausibleRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 0)
	_ = w
	// Append a record header claiming a 2 MB packet.
	rec := make([]byte, 16)
	rec[8] = 0
	rec[9] = 0
	rec[10] = 0x20 // caplen = 0x200000
	buf.Write(rec)
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.ReadPacket(); err == nil {
		t.Error("implausible caplen: want error")
	}
}

func TestDecodeTCPPacket(t *testing.T) {
	raw := TCPPacket(srcIP, dstIP, &TCP{
		SrcPort: 8080, DstPort: 443, Seq: 1000, Ack: 2000,
		SYN: true, ACK: true, Window: 29200,
	}, 42, 57, 0, 0)
	p := Decode(CaptureInfo{}, raw)
	if p.Err() != nil {
		t.Fatal(p.Err())
	}
	ip, ok := p.NetworkLayer().(*IPv4)
	if !ok {
		t.Fatal("no IPv4 layer")
	}
	if ip.SrcIP != srcIP || ip.DstIP != dstIP || ip.TTL != 57 || ip.ID != 42 {
		t.Errorf("IPv4 fields wrong: %+v", ip)
	}
	tcp, ok := p.TransportLayer().(*TCP)
	if !ok {
		t.Fatal("no TCP layer")
	}
	if tcp.SrcPort != 8080 || tcp.DstPort != 443 || tcp.Seq != 1000 || tcp.Ack != 2000 {
		t.Errorf("TCP fields wrong: %+v", tcp)
	}
	if !tcp.SYN || !tcp.ACK || tcp.FIN || tcp.RST {
		t.Errorf("TCP flags wrong: %+v", tcp)
	}
	if tcp.PayloadLen != 0 {
		t.Errorf("PayloadLen = %d", tcp.PayloadLen)
	}
}

func TestDecodePayloadLenFromIPHeader(t *testing.T) {
	// Payload of 1448 recorded in IP length, but zero bytes materialised
	// (header-only capture).
	raw := TCPPacket(srcIP, dstIP, &TCP{SrcPort: 443, DstPort: 50000, ACK: true}, 1, 64, 1448, 0)
	p := Decode(CaptureInfo{}, raw)
	tcp := p.TransportLayer().(*TCP)
	if tcp.PayloadLen != 1448 {
		t.Errorf("PayloadLen = %d, want 1448", tcp.PayloadLen)
	}
}

func TestDecodeTruncated(t *testing.T) {
	raw := samplePacket(0, 0)
	for _, cut := range []int{0, 5, 13, 20, 33, 40} {
		p := Decode(CaptureInfo{}, raw[:cut])
		if cut >= 34 {
			continue
		}
		if p.Err() == nil && cut < 34 && cut != 0 {
			// Ethernet-only truncations below IP+TCP must error...
			if cut >= 14 {
				t.Errorf("cut=%d: want decode error", cut)
			}
		}
	}
	// A clean Ethernet+IPv4 but truncated TCP must keep the IP layer.
	p := Decode(CaptureInfo{}, raw[:14+20+10])
	if p.Layer(LayerTypeIPv4) == nil {
		t.Error("IPv4 layer lost on TCP truncation")
	}
	if p.Err() == nil {
		t.Error("truncated TCP: want error recorded")
	}
}

func TestDecodeUnknownEtherType(t *testing.T) {
	raw := samplePacket(0, 0)
	raw[12], raw[13] = 0x08, 0x06 // ARP
	p := Decode(CaptureInfo{}, raw)
	if p.Err() != nil {
		t.Errorf("unknown ethertype should not error: %v", p.Err())
	}
	if p.NetworkLayer() != nil {
		t.Error("should have no network layer")
	}
	if p.Layer(LayerTypePayload) == nil {
		t.Error("trailing bytes should be payload")
	}
}

func TestDecodeBadIPVersion(t *testing.T) {
	raw := samplePacket(0, 0)
	raw[14] = 0x65 // version 6 in an IPv4 ethertype frame
	p := Decode(CaptureInfo{}, raw)
	if p.Err() == nil {
		t.Error("bad IP version: want error")
	}
}

func TestIPChecksumValid(t *testing.T) {
	raw := samplePacket(99, 10)
	ip := raw[14 : 14+20]
	// Recompute including the stored checksum: must sum to 0xffff.
	var sum uint32
	for i := 0; i+1 < len(ip); i += 2 {
		sum += uint32(ip[i])<<8 | uint32(ip[i+1])
	}
	for sum > 0xffff {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	if sum != 0xffff {
		t.Errorf("IP checksum does not verify: %#x", sum)
	}
}

func TestFlowHelpers(t *testing.T) {
	raw := TCPPacket(srcIP, dstIP, &TCP{SrcPort: 443, DstPort: 50000, ACK: true}, 1, 64, 0, 0)
	p := Decode(CaptureInfo{}, raw)
	nf, ok := p.NetworkFlow()
	if !ok || nf.Src.Addr != srcIP || nf.Dst.Addr != dstIP {
		t.Errorf("NetworkFlow = %v ok=%v", nf, ok)
	}
	tf, ok := p.TransportFlow()
	if !ok || tf.Src.Port != 443 || tf.Dst.Port != 50000 {
		t.Errorf("TransportFlow = %v ok=%v", tf, ok)
	}
	if tf.Reverse().Src != tf.Dst || tf.Reverse().Dst != tf.Src {
		t.Error("Reverse broken")
	}
	if tf.Canonical() != tf.Reverse().Canonical() {
		t.Error("Canonical not direction-independent")
	}
	if tf.String() == "" || tf.Src.String() == "" {
		t.Error("String broken")
	}
	// Endpoint without port renders as bare address.
	if (Endpoint{Addr: srcIP}).String() != "10.0.0.1" {
		t.Errorf("bare endpoint = %q", Endpoint{Addr: srcIP}.String())
	}
}

func TestFastHashSymmetry(t *testing.T) {
	f := func(a, b [4]byte, pa, pb uint16) bool {
		fl := Flow{
			Src: Endpoint{Addr: netip.AddrFrom4(a), Port: pa},
			Dst: Endpoint{Addr: netip.AddrFrom4(b), Port: pb},
		}
		return fl.FastHash() == fl.Reverse().FastHash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFastHashSpreads(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	shards := make(map[uint64]int)
	for i := 0; i < 4096; i++ {
		var a, b [4]byte
		rng.Read(a[:])
		rng.Read(b[:])
		fl := Flow{
			Src: Endpoint{Addr: netip.AddrFrom4(a), Port: uint16(rng.Intn(65536))},
			Dst: Endpoint{Addr: netip.AddrFrom4(b), Port: uint16(rng.Intn(65536))},
		}
		shards[fl.FastHash()&7]++
	}
	for s, n := range shards {
		if n < 300 || n > 750 {
			t.Errorf("shard %d has %d flows, badly skewed", s, n)
		}
	}
}

func TestLayerTypeStrings(t *testing.T) {
	for _, lt := range []LayerType{LayerTypeEthernet, LayerTypeIPv4, LayerTypeIPv6, LayerTypeTCP, LayerTypeUDP, LayerTypePayload} {
		if lt.String() == "" {
			t.Errorf("LayerType %d has empty string", lt)
		}
	}
}

// Property: encode->decode round-trips TCP header fields.
func TestTCPRoundTripProperty(t *testing.T) {
	f := func(sp, dp uint16, seq, ack uint32, win uint16, flags byte, payload uint16) bool {
		in := &TCP{
			SrcPort: sp, DstPort: dp, Seq: seq, Ack: ack, Window: win,
			SYN: flags&1 != 0, ACK: flags&2 != 0, FIN: flags&4 != 0,
			RST: flags&8 != 0, PSH: flags&16 != 0, URG: flags&32 != 0,
		}
		pl := int(payload % 1449)
		raw := TCPPacket(srcIP, dstIP, in, 3, 60, pl, 0)
		p := Decode(CaptureInfo{}, raw)
		out, ok := p.TransportLayer().(*TCP)
		if !ok {
			return false
		}
		return out.SrcPort == in.SrcPort && out.DstPort == in.DstPort &&
			out.Seq == in.Seq && out.Ack == in.Ack && out.Window == in.Window &&
			out.SYN == in.SYN && out.ACK == in.ACK && out.FIN == in.FIN &&
			out.RST == in.RST && out.PSH == in.PSH && out.URG == in.URG &&
			out.PayloadLen == pl
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
