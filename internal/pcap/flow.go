package pcap

import (
	"fmt"
	"net/netip"
)

// Endpoint is a hashable representation of one side of a flow: an address
// and, for transport flows, a port. Endpoints are comparable and usable as
// map keys (the gopacket Flow/Endpoint idiom).
type Endpoint struct {
	Addr netip.Addr
	Port uint16
}

// String implements fmt.Stringer.
func (e Endpoint) String() string {
	if e.Port == 0 {
		return e.Addr.String()
	}
	return fmt.Sprintf("%s:%d", e.Addr, e.Port)
}

// Flow is an ordered (src, dst) pair of endpoints.
type Flow struct {
	Src, Dst Endpoint
}

// Reverse returns the flow with the endpoints swapped.
func (f Flow) Reverse() Flow { return Flow{Src: f.Dst, Dst: f.Src} }

// String implements fmt.Stringer.
func (f Flow) String() string { return f.Src.String() + "->" + f.Dst.String() }

// Canonical returns a direction-independent representative of the flow (the
// lexicographically smaller orientation), so that both directions of a TCP
// connection map to one key.
func (f Flow) Canonical() Flow {
	if f.Src.Addr.Compare(f.Dst.Addr) < 0 {
		return f
	}
	if f.Src.Addr == f.Dst.Addr && f.Src.Port <= f.Dst.Port {
		return f
	}
	return f.Reverse()
}

// FastHash returns a symmetric 64-bit hash: both directions of a flow hash
// identically, so a flow and its reverse land in the same shard.
func (f Flow) FastHash() uint64 {
	h1 := endpointHash(f.Src)
	h2 := endpointHash(f.Dst)
	return h1 ^ h2 // XOR is commutative -> symmetric
}

func endpointHash(e Endpoint) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, b := range e.Addr.AsSlice() {
		h ^= uint64(b)
		h *= prime
	}
	h ^= uint64(e.Port)
	h *= prime
	return h
}

// NetworkFlow extracts the IP-level flow of a packet, or ok=false when it
// has no network layer.
func (p *Packet) NetworkFlow() (Flow, bool) {
	switch l := p.NetworkLayer().(type) {
	case *IPv4:
		return Flow{Endpoint{Addr: l.SrcIP}, Endpoint{Addr: l.DstIP}}, true
	case *IPv6:
		return Flow{Endpoint{Addr: l.SrcIP}, Endpoint{Addr: l.DstIP}}, true
	}
	return Flow{}, false
}

// TransportFlow extracts the 4-tuple flow of a packet, or ok=false when it
// has no transport layer.
func (p *Packet) TransportFlow() (Flow, bool) {
	nf, ok := p.NetworkFlow()
	if !ok {
		return Flow{}, false
	}
	switch l := p.TransportLayer().(type) {
	case *TCP:
		nf.Src.Port, nf.Dst.Port = l.SrcPort, l.DstPort
		return nf, true
	case *UDP:
		nf.Src.Port, nf.Dst.Port = l.SrcPort, l.DstPort
		return nf, true
	}
	return Flow{}, false
}
