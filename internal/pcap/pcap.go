// Package pcap implements the libpcap capture file format and a small
// gopacket-style packet decoding layer (Ethernet / IPv4 / IPv6 / TCP / UDP,
// with Flow and Endpoint abstractions). CLASP's measurement VMs run tcpdump
// during speed tests and the analysis VM re-derives RTT and loss from the
// captured TCP headers; this package is both the writer used when
// synthesising those captures and the reader used by the analysis.
package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Libpcap file constants.
const (
	magicMicroseconds = 0xa1b2c3d4
	versionMajor      = 2
	versionMinor      = 4
	// LinkTypeEthernet is the only link type we produce or consume.
	LinkTypeEthernet = 1
)

// ErrBadMagic is returned when a stream is not a microsecond little-endian
// pcap file.
var ErrBadMagic = errors.New("pcap: bad magic number")

// CaptureInfo describes one captured packet record.
type CaptureInfo struct {
	Timestamp     time.Time
	CaptureLength int // bytes stored in the file
	Length        int // original wire length
}

// Writer writes a pcap file. Create with NewWriter, which emits the global
// header immediately.
type Writer struct {
	w       io.Writer
	snaplen uint32
}

// NewWriter writes the pcap global header and returns a packet writer.
// snaplen 0 defaults to 65535 (tcpdump -s 0 behaviour is full packets; the
// paper captured headers only, so callers typically pass ~96).
func NewWriter(w io.Writer, snaplen uint32) (*Writer, error) {
	if snaplen == 0 {
		snaplen = 65535
	}
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:], magicMicroseconds)
	binary.LittleEndian.PutUint16(hdr[4:], versionMajor)
	binary.LittleEndian.PutUint16(hdr[6:], versionMinor)
	// thiszone, sigfigs = 0
	binary.LittleEndian.PutUint32(hdr[16:], snaplen)
	binary.LittleEndian.PutUint32(hdr[20:], LinkTypeEthernet)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: writing global header: %w", err)
	}
	return &Writer{w: w, snaplen: snaplen}, nil
}

// WritePacket writes one packet record, truncating data to the snaplen.
func (w *Writer) WritePacket(ci CaptureInfo, data []byte) error {
	if len(data) > int(w.snaplen) {
		data = data[:w.snaplen]
	}
	if ci.Length < len(data) {
		ci.Length = len(data)
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(ci.Timestamp.Unix()))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(ci.Timestamp.Nanosecond()/1000))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(data)))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(ci.Length))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("pcap: writing record header: %w", err)
	}
	if _, err := w.w.Write(data); err != nil {
		return fmt.Errorf("pcap: writing record data: %w", err)
	}
	return nil
}

// Reader reads a pcap file written in little-endian microsecond format.
type Reader struct {
	r       io.Reader
	snaplen uint32
}

// NewReader validates the global header and returns a packet reader.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: reading global header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != magicMicroseconds {
		return nil, ErrBadMagic
	}
	if lt := binary.LittleEndian.Uint32(hdr[20:]); lt != LinkTypeEthernet {
		return nil, fmt.Errorf("pcap: unsupported link type %d", lt)
	}
	return &Reader{r: r, snaplen: binary.LittleEndian.Uint32(hdr[16:])}, nil
}

// Snaplen returns the file's snapshot length.
func (r *Reader) Snaplen() uint32 { return r.snaplen }

// ReadPacket returns the next record. io.EOF signals a clean end of file.
func (r *Reader) ReadPacket() (CaptureInfo, []byte, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.EOF {
			return CaptureInfo{}, nil, io.EOF
		}
		return CaptureInfo{}, nil, fmt.Errorf("pcap: reading record header: %w", err)
	}
	sec := binary.LittleEndian.Uint32(hdr[0:])
	usec := binary.LittleEndian.Uint32(hdr[4:])
	capLen := binary.LittleEndian.Uint32(hdr[8:])
	wireLen := binary.LittleEndian.Uint32(hdr[12:])
	if capLen > 1<<20 {
		return CaptureInfo{}, nil, fmt.Errorf("pcap: implausible capture length %d", capLen)
	}
	data := make([]byte, capLen)
	if _, err := io.ReadFull(r.r, data); err != nil {
		return CaptureInfo{}, nil, fmt.Errorf("pcap: reading record data: %w", err)
	}
	return CaptureInfo{
		Timestamp:     time.Unix(int64(sec), int64(usec)*1000).UTC(),
		CaptureLength: int(capLen),
		Length:        int(wireLen),
	}, data, nil
}
