package daemon

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/clasp-measurement/clasp/internal/obs"
	"github.com/clasp-measurement/clasp/internal/speedtest/ndt7"
	"github.com/clasp-measurement/clasp/internal/speedtest/ookla"
	"github.com/clasp-measurement/clasp/internal/telemetry"
	"github.com/clasp-measurement/clasp/internal/tsdb"
)

// startTest boots a daemon on ephemeral ports with fast test settings.
func startTest(t *testing.T, telemetryOut string) *Daemon {
	t.Helper()
	d, err := Start(Config{
		OoklaAddr:      "127.0.0.1:0",
		HTTPAddr:       "127.0.0.1:0",
		NDT7Duration:   200 * time.Millisecond,
		ScrapeInterval: 50 * time.Millisecond,
		TelemetryOut:   telemetryOut,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func shutdown(t *testing.T, d *Daemon) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := d.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func histCount(id string) uint64 {
	for _, s := range obs.Default().Samples() {
		if s.ID == id {
			return s.Count
		}
	}
	return 0
}

// TestDaemonServesAndInstruments drives every protocol through the full
// in-process daemon and asserts the serving-path histograms, the scraped
// history endpoint, and the shutdown telemetry dump all work.
func TestDaemonServesAndInstruments(t *testing.T) {
	out := filepath.Join(t.TempDir(), "self.blk")
	d := startTest(t, out)
	base := "http://" + d.HTTPAddr().String()

	before := histCount(`speedtestd_http_request_duration_ns{route="/servers.json",status="200"}`)
	resp, err := http.Get(base + "/servers.json")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/servers.json: %d", resp.StatusCode)
	}

	// ndt7 runs over WebSocket: it only works if the middleware's recorder
	// forwards http.Hijacker, and it must record as status 101.
	nBefore := histCount(`speedtestd_http_request_duration_ns{route="` + ndt7.DownloadPath + `",status="101"}`)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if _, err := ndt7.NewClient(ndt7.Config{Duration: 100 * time.Millisecond}).Run(ctx, d.HTTPAddr().String()); err != nil {
		t.Fatalf("ndt7 client through middleware: %v", err)
	}
	if got := histCount(`speedtestd_http_request_duration_ns{route="` + ndt7.DownloadPath + `",status="101"}`); got != nBefore+1 {
		t.Fatalf("ndt7 download 101 count = %d, want %d", got, nBefore+1)
	}

	// Ookla over real TCP; the per-command histograms move.
	pingBefore := histCount(`ookla_command_duration_ns{cmd="PING"}`)
	if _, err := ookla.NewClient(ookla.Config{
		PingCount:        2,
		DownloadDuration: 50 * time.Millisecond,
		UploadDuration:   50 * time.Millisecond,
		BlockBytes:       64 << 10,
	}).Run(ctx, d.OoklaAddr().String()); err != nil {
		t.Fatalf("ookla client: %v", err)
	}
	if got := histCount(`ookla_command_duration_ns{cmd="PING"}`); got != pingBefore+2 {
		t.Fatalf("ookla PING count = %d, want %d", got, pingBefore+2)
	}

	if got := histCount(`speedtestd_http_request_duration_ns{route="/servers.json",status="200"}`); got != before+1 {
		t.Fatalf("/servers.json histogram count = %d, want %d", got, before+1)
	}

	// Force a scrape so /debug/obs/history has fresh data, then query the
	// serving-path family's history through the HTTP surface itself.
	if err := d.Pipeline.Cycle(); err != nil {
		t.Fatalf("cycle: %v", err)
	}
	resp, err = http.Get(base + "/debug/obs/history?measurement=speedtestd_http_request_duration_ns_bucket")
	if err != nil {
		t.Fatal(err)
	}
	var hr telemetry.HistoryResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatalf("history decode: %v", err)
	}
	resp.Body.Close()
	if len(hr.Series) == 0 {
		t.Fatal("no scraped bucket series in /debug/obs/history")
	}
	seenRoute := false
	for _, s := range hr.Series {
		if s.Tags["route"] == "/servers.json" && s.Tags["le"] != "" {
			seenRoute = true
		}
	}
	if !seenRoute {
		t.Fatalf("no /servers.json bucket series; got %d series", len(hr.Series))
	}

	// pprof and expvar stay reachable through the middleware.
	for _, path := range []string{"/debug/pprof/", "/debug/vars", "/metrics"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s: %d", path, resp.StatusCode)
		}
	}

	// /metrics must NOT carry the deleted bare request counter.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.Contains(string(b), "speedtestd_http_requests_total") {
		t.Fatal("stale speedtestd_http_requests_total still exposed")
	}
	if !strings.Contains(string(b), "speedtestd_http_request_duration_ns_count") {
		t.Fatal("labelled duration family missing from /metrics")
	}

	shutdown(t, d)

	// The telemetry dump reopens as a block file holding scraped series.
	fi, err := os.Stat(out)
	if err != nil || fi.Size() == 0 {
		t.Fatalf("telemetry out: %v (size %d)", err, fi.Size())
	}
	bf, err := tsdb.OpenBlockFile(out)
	if err != nil {
		t.Fatalf("OpenBlockFile: %v", err)
	}
	defer bf.Close()
	series, err := bf.Query("speedtestd_http_request_duration_ns", nil, time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) == 0 {
		t.Fatal("telemetry dump holds no serving-path history")
	}
}

func TestDaemonScraperRunsOnCadence(t *testing.T) {
	d := startTest(t, "")
	defer shutdown(t, d)
	deadline := time.Now().Add(5 * time.Second)
	for d.Pipeline.Scraper.Stats().Scrapes < 2 {
		if time.Now().After(deadline) {
			t.Fatal("scraper did not run twice on its cadence")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := d.SelfStore().SeriesCount(); got == 0 {
		t.Fatal("self-store empty after background scrapes")
	}
}
