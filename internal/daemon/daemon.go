// Package daemon is the embeddable core of cmd/speedtestd: the three
// speed-test protocol servers, the serving-path telemetry (per-route /
// per-status latency histograms through hijack-safe middleware, a
// self-telemetry scrape pipeline into a columnar tsdb store), and the
// introspection endpoints (/metrics, /debug/vars, /debug/obs/history,
// net/http/pprof). Extracting it from main() lets tests and the loadgen
// smoke gate boot the full daemon in-process on ephemeral ports.
package daemon

import (
	"context"
	"errors"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"github.com/clasp-measurement/clasp/internal/obs"
	"github.com/clasp-measurement/clasp/internal/speedtest"
	"github.com/clasp-measurement/clasp/internal/speedtest/ndt7"
	"github.com/clasp-measurement/clasp/internal/speedtest/ookla"
	"github.com/clasp-measurement/clasp/internal/speedtest/xfinity"
	"github.com/clasp-measurement/clasp/internal/telemetry"
	"github.com/clasp-measurement/clasp/internal/tsdb"
)

// HTTPDurationFamily is the serving-path histogram family recorded by the
// daemon's middleware (nanoseconds, labelled route/status). It supersedes
// the old unlabelled speedtestd_http_requests_total counter: the total is
// the sum of this family's _count series.
const HTTPDurationFamily = "speedtestd_http_request_duration_ns"

// Routes is the bounded route-label allow-list for the middleware; paths
// outside it record as "other". Entries ending in "/" match by prefix.
var Routes = []string{
	ndt7.DownloadPath,
	ndt7.UploadPath,
	xfinity.LatencyPath,
	xfinity.DownloadPath,
	xfinity.UploadPath,
	"/servers.json",
	"/metrics",
	"/debug/vars",
	"/debug/obs/history",
	"/debug/pprof/",
	"/",
}

// expvarOnce guards the process-global expvar registration: Publish panics
// on a duplicate name, and in-process tests boot more than one daemon.
var expvarOnce sync.Once

// Config configures a daemon. The zero value listens on the production
// defaults; tests pass "127.0.0.1:0" for ephemeral ports.
type Config struct {
	OoklaAddr    string        // default 127.0.0.1:8080
	HTTPAddr     string        // default 127.0.0.1:8081
	NDT7Duration time.Duration // ndt7 test length, default 10s

	// ScrapeInterval is the self-telemetry cadence; default 5s.
	ScrapeInterval time.Duration
	// Retention bounds self-store history; default 1h, <0 keeps everything.
	Retention time.Duration
	// TelemetryOut, when set, dumps the self-store in block-file format to
	// this path on Shutdown.
	TelemetryOut string

	// Logf receives startup/shutdown lines; nil discards them.
	Logf func(format string, args ...any)
}

// Daemon is a running speedtestd instance.
type Daemon struct {
	Pipeline *telemetry.Pipeline

	cfg     Config
	ookla   *ookla.Server
	httpSrv *http.Server
	httpLn  net.Listener
	errc    chan error
}

// Start boots the daemon: Ookla TCP server, HTTP listener (ndt7 + xfinity
// + directory + introspection) behind the telemetry middleware, and the
// self-telemetry scrape pipeline. It also enables the obs registry — a
// long-lived daemon always runs with live metrics on.
func Start(cfg Config) (*Daemon, error) {
	if cfg.OoklaAddr == "" {
		cfg.OoklaAddr = "127.0.0.1:8080"
	}
	if cfg.HTTPAddr == "" {
		cfg.HTTPAddr = "127.0.0.1:8081"
	}
	if cfg.NDT7Duration <= 0 {
		cfg.NDT7Duration = 10 * time.Second
	}
	if cfg.ScrapeInterval <= 0 {
		cfg.ScrapeInterval = 5 * time.Second
	}
	if cfg.Retention == 0 {
		cfg.Retention = time.Hour
	} else if cfg.Retention < 0 {
		cfg.Retention = 0 // explicit "keep everything"
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	obs.SetEnabled(true)
	expvarOnce.Do(func() {
		expvar.Publish("clasp_obs", expvar.Func(func() any { return obs.Default().Snapshot() }))
	})

	srv, err := ookla.Listen(cfg.OoklaAddr)
	if err != nil {
		return nil, fmt.Errorf("daemon: ookla listen: %w", err)
	}
	logf("ookla protocol on %s", srv.Addr())

	ln, err := net.Listen("tcp", cfg.HTTPAddr)
	if err != nil {
		_ = srv.Close()
		return nil, fmt.Errorf("daemon: http listen: %w", err)
	}
	logf("ndt7 + xfinity + directory on http://%s", ln.Addr())

	pipeline := telemetry.NewPipeline(telemetry.PipelineConfig{
		Interval:  cfg.ScrapeInterval,
		Retention: cfg.Retention,
	})
	pipeline.Start()

	directory := speedtest.NewDirectory([]speedtest.ServerInfo{
		{ID: 1, Platform: "ookla", Host: srv.Addr().String(), City: "localhost", Country: "US", Sponsor: "clasp"},
		{ID: 2, Platform: "mlab", Host: ln.Addr().String(), City: "localhost", Country: "US", Sponsor: "clasp"},
		{ID: 3, Platform: "comcast", Host: ln.Addr().String(), City: "localhost", Country: "US", Sponsor: "clasp"},
	})

	mux := http.NewServeMux()
	ndt := &ndt7.Handler{Duration: cfg.NDT7Duration}
	mux.Handle(ndt7.DownloadPath, ndt)
	mux.Handle(ndt7.UploadPath, ndt)
	xf := &xfinity.Handler{}
	mux.Handle(xfinity.LatencyPath, xf)
	mux.Handle(xfinity.DownloadPath, xf)
	mux.Handle(xfinity.UploadPath, xf)
	mux.Handle("/servers.json", directory)
	mux.Handle("/debug/vars", expvar.Handler())
	telemetry.Introspection{History: pipeline.Store}.Register(mux)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "clasp speedtestd: /servers.json, /ndt/v7/{download,upload}, /speedtest/{latency,download,upload}, /metrics, /debug/vars, /debug/obs/history, /debug/pprof/")
	})

	metrics := telemetry.NewHTTPMetrics(obs.Default(), HTTPDurationFamily, Routes)
	httpSrv := &http.Server{Handler: metrics.Wrap(mux)}
	d := &Daemon{
		Pipeline: pipeline,
		cfg:      cfg,
		ookla:    srv,
		httpSrv:  httpSrv,
		httpLn:   ln,
		errc:     make(chan error, 1),
	}
	go func() {
		if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			d.errc <- err
		}
	}()
	return d, nil
}

// HTTPAddr returns the bound HTTP address.
func (d *Daemon) HTTPAddr() net.Addr { return d.httpLn.Addr() }

// OoklaAddr returns the bound Ookla TCP address.
func (d *Daemon) OoklaAddr() net.Addr { return d.ookla.Addr() }

// Err yields a fatal serve error, if any; used by main to die loudly.
func (d *Daemon) Err() <-chan error { return d.errc }

// Shutdown drains both listeners symmetrically under ctx — in-flight tests
// get until the deadline before remaining connections are severed — then
// stops the telemetry pipeline and, when configured, writes the self-store
// block dump.
func (d *Daemon) Shutdown(ctx context.Context) error {
	logf := d.cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	var wg sync.WaitGroup
	var httpErr, ooklaErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		if err := d.httpSrv.Shutdown(ctx); err != nil {
			httpErr = err
			logf("daemon: forced http shutdown: %v", err)
		}
	}()
	go func() {
		defer wg.Done()
		if err := d.ookla.Shutdown(ctx); err != nil {
			ooklaErr = err
			logf("daemon: forced ookla shutdown: %v", err)
		}
	}()
	wg.Wait()
	// One final scrape catches requests served since the last tick, then
	// the loop stops and the history is (optionally) persisted.
	d.Pipeline.Stop()
	_ = d.Pipeline.Cycle()
	if d.cfg.TelemetryOut != "" {
		if err := d.writeTelemetry(); err != nil {
			logf("daemon: telemetry dump: %v", err)
			if httpErr == nil && ooklaErr == nil {
				return err
			}
		}
	}
	if httpErr != nil {
		return httpErr
	}
	return ooklaErr
}

func (d *Daemon) writeTelemetry() error {
	// Atomic-rename dump: a kill during shutdown never leaves a truncated
	// block file where the previous telemetry history used to be.
	return d.Pipeline.WriteBlocksFile(d.cfg.TelemetryOut)
}

// SelfStore returns the self-telemetry store (the /debug/obs/history
// backend) — exported for smoke gates that assert on scraped series.
func (d *Daemon) SelfStore() *tsdb.Store { return d.Pipeline.Store }
