package topology

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"sort"

	"github.com/clasp-measurement/clasp/internal/geo"
	"github.com/clasp-measurement/clasp/internal/pfx2as"
)

// Topology is the generated synthetic Internet. It is immutable after New.
type Topology struct {
	Cfg     Config
	Geo     *geo.DB
	Cloud   *AS
	Regions []Region

	ases    map[ASN]*AS
	asList  []*AS       // stable generation order
	asIndex map[ASN]int // ASN -> position in asList (contiguous AS index)

	edges     []ASEdge
	providers map[ASN][]ASN
	customers map[ASN][]ASN
	peers     map[ASN][]ASN

	links           []*Interconnect
	linksByNeighbor map[ASN][]*Interconnect
	linkByID        map[int]*Interconnect
	visible         map[string]map[int]bool // region name -> set of link IDs
	visibleDense    map[string][]bool       // region name -> link-ID-indexed set
	probeAddr       map[int]netip.Addr      // link ID -> probe target
	probeLink       map[netip.Prefix]int    // probe /24 -> link ID

	regionByName map[string]Region

	servers    []*Server
	serverByID map[int]*Server

	edgeVPs []EdgeVP

	routers     map[RouterID][]netip.Addr // far router -> alias interface IPs
	routerOfIP  map[netip.Addr]RouterID
	nextRouter  RouterID
	prefixTable *pfx2as.Table
}

// New generates a topology from cfg. Identical configs generate identical
// topologies.
func New(cfg Config) (*Topology, error) {
	if cfg.Scale <= 0 {
		return nil, fmt.Errorf("topology: scale must be positive, got %v", cfg.Scale)
	}
	t := &Topology{
		Cfg:             cfg,
		Geo:             geo.DefaultDB(),
		Regions:         Regions(),
		ases:            make(map[ASN]*AS),
		asIndex:         make(map[ASN]int),
		providers:       make(map[ASN][]ASN),
		customers:       make(map[ASN][]ASN),
		peers:           make(map[ASN][]ASN),
		linksByNeighbor: make(map[ASN][]*Interconnect),
		linkByID:        make(map[int]*Interconnect),
		visible:         make(map[string]map[int]bool),
		regionByName:    make(map[string]Region),
		probeAddr:       make(map[int]netip.Addr),
		probeLink:       make(map[netip.Prefix]int),
		serverByID:      make(map[int]*Server),
		routers:         make(map[RouterID][]netip.Addr),
		routerOfIP:      make(map[netip.Addr]RouterID),
		prefixTable:     pfx2as.New(),
	}
	for _, r := range t.Regions {
		t.regionByName[r.Name] = r
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	t.buildASes(rng)
	t.buildRelationships(rng)
	t.buildInterconnects(rng)
	t.buildServers(rng)
	t.buildEdgeVPs(rng)
	t.buildPrefixTable()
	// Dense visibility sets: link IDs are contiguous, so a region's usable
	// subset flattens to one bool slice and IsVisible is two array reads.
	t.visibleDense = make(map[string][]bool, len(t.visible))
	for name, set := range t.visible {
		dense := make([]bool, len(t.links))
		for id := range set {
			dense[id] = true
		}
		t.visibleDense[name] = dense
	}
	return t, nil
}

// --- AS construction -------------------------------------------------------

// asIndex is incremented per created AS and drives prefix allocation.
func asPrefix(index int) netip.Prefix {
	a := byte(20 + index/200)
	b := byte(index % 200)
	return netip.PrefixFrom(netip.AddrFrom4([4]byte{a, b, 0, 0}), 16)
}

// cloudPrefix is the cloud provider's address block.
var cloudPrefix = netip.PrefixFrom(netip.AddrFrom4([4]byte{15, 0, 0, 0}), 8)

func (t *Topology) addAS(a *AS) *AS {
	t.ases[a.ASN] = a
	t.asIndex[a.ASN] = len(t.asList)
	t.asList = append(t.asList, a)
	return a
}

func (t *Topology) buildASes(rng *rand.Rand) {
	cfg := t.Cfg
	usCities := t.Geo.InCountry("US")
	usNames := make([]string, len(usCities))
	for i, c := range usCities {
		usNames[i] = c.Name
	}
	intlCities := []geo.City{}
	for _, c := range t.Geo.All() {
		if c.Country != "US" {
			intlCities = append(intlCities, c)
		}
	}

	// Cloud provider.
	t.Cloud = t.addAS(&AS{
		ASN: cloudASN, Name: "GCP", Type: TypeCloud, Country: "US",
		Cities: regionCities(), Prefix: cloudPrefix, Business: BizBusiness,
	})

	nextIdx := 0
	take := func() int { i := nextIdx; nextIdx++; return i }

	fromSpec := func(s anchorSpec, cities []string) *AS {
		return t.addAS(&AS{
			ASN: s.asn, Name: s.name, Type: s.typ, Country: s.country,
			Cities: cities, Prefix: asPrefix(take()), Business: s.biz,
			Congestion: s.congestion,
		})
	}

	// Tier-1 anchors get broad PoP footprints across the big metros plus
	// international hubs.
	for _, s := range tier1Anchors {
		n := 40
		if n > len(usNames) {
			n = len(usNames)
		}
		cities := sampleStrings(rng, usNames, n)
		cities = append(cities, intlHubCities...)
		fromSpec(s, dedupe(cities))
	}
	for _, s := range accessAnchors {
		fromSpec(s, s.cities)
	}
	for _, s := range intlAnchors {
		fromSpec(s, s.cities)
	}

	genCongestion := func(rng *rand.Rand) CongestionProfile {
		p := CongestionProfile{PeakHourLocal: 20 + rng.Intn(3)}
		if rng.Float64() < cfg.CongestionProneFrac {
			p.Prone = true
			p.PeakDepth = 0.55 + rng.Float64()*0.3
			p.LossAtPeak = 0.03 + rng.Float64()*0.12
		} else {
			p.PeakDepth = 0.08 + rng.Float64()*0.34
		}
		return p
	}

	// Transit providers.
	for i := 0; i < cfg.scaled(cfg.NumTransit, 6); i++ {
		n := 5 + rng.Intn(11)
		t.addAS(&AS{
			ASN: ASN(4200000000 + uint32(nextIdx)), Name: fmt.Sprintf("Transit-%d", i),
			Type: TypeTransit, Country: "US",
			Cities: sampleStrings(rng, usNames, n), Prefix: asPrefix(take()),
			Business:   BizISP,
			Congestion: CongestionProfile{PeakHourLocal: 21, PeakDepth: 0.1 + rng.Float64()*0.2},
		})
	}
	// US access ISPs.
	for i := 0; i < cfg.scaled(cfg.NumAccessUS, 20); i++ {
		n := 1 + rng.Intn(8)
		t.addAS(&AS{
			ASN: ASN(4200000000 + uint32(nextIdx)), Name: fmt.Sprintf("AccessUS-%d", i),
			Type: TypeAccess, Country: "US",
			Cities: sampleStrings(rng, usNames, n), Prefix: asPrefix(take()),
			Business:   BizISP,
			Congestion: genCongestion(rng),
		})
	}
	// International access ISPs: cluster each in one country.
	for i := 0; i < cfg.scaled(cfg.NumAccessIntl, 8); i++ {
		home := intlCities[rng.Intn(len(intlCities))]
		var cities []string
		for _, c := range t.Geo.InCountry(home.Country) {
			cities = append(cities, c.Name)
			if len(cities) >= 1+rng.Intn(4) {
				break
			}
		}
		t.addAS(&AS{
			ASN: ASN(4200000000 + uint32(nextIdx)), Name: fmt.Sprintf("AccessIntl-%d", i),
			Type: TypeAccess, Country: home.Country,
			Cities: cities, Prefix: asPrefix(take()),
			Business:   BizISP,
			Congestion: genCongestion(rng),
		})
	}
	// Hosting companies at hub metros.
	for i := 0; i < cfg.scaled(cfg.NumHosting, 10); i++ {
		n := 1 + rng.Intn(2)
		t.addAS(&AS{
			ASN: ASN(4200000000 + uint32(nextIdx)), Name: fmt.Sprintf("Hosting-%d", i),
			Type: TypeHosting, Country: "US",
			Cities: sampleStrings(rng, hubCities, n), Prefix: asPrefix(take()),
			Business:   BizHosting,
			Congestion: CongestionProfile{PeakHourLocal: 15, PeakDepth: 0.05 + rng.Float64()*0.15},
		})
	}
	// Education networks.
	for i := 0; i < cfg.scaled(cfg.NumEducation, 4); i++ {
		t.addAS(&AS{
			ASN: ASN(4200000000 + uint32(nextIdx)), Name: fmt.Sprintf("Edu-%d", i),
			Type: TypeEducation, Country: "US",
			Cities: sampleStrings(rng, usNames, 1), Prefix: asPrefix(take()),
			Business:   BizEducation,
			Congestion: CongestionProfile{Daytime: true, PeakHourLocal: 14, PeakDepth: 0.1 + rng.Float64()*0.25},
		})
	}
}

func regionCities() []string {
	var out []string
	for _, r := range Regions() {
		out = append(out, r.City)
	}
	return out
}

// --- Relationships ---------------------------------------------------------

func (t *Topology) addEdge(a, b ASN, rel RelKind) {
	// Skip duplicates.
	if rel == RelP2P {
		for _, p := range t.peers[a] {
			if p == b {
				return
			}
		}
		t.peers[a] = append(t.peers[a], b)
		t.peers[b] = append(t.peers[b], a)
	} else {
		for _, p := range t.providers[a] {
			if p == b {
				return
			}
		}
		t.providers[a] = append(t.providers[a], b)
		t.customers[b] = append(t.customers[b], a)
	}
	t.edges = append(t.edges, ASEdge{A: a, B: b, Rel: rel})
}

func (t *Topology) byType(typ ASType) []*AS {
	var out []*AS
	for _, a := range t.asList {
		if a.Type == typ {
			out = append(out, a)
		}
	}
	return out
}

func (t *Topology) buildRelationships(rng *rand.Rand) {
	tier1s := t.byType(TypeTier1)
	transits := t.byType(TypeTransit)

	// Tier-1 full mesh peering.
	for i := range tier1s {
		for j := i + 1; j < len(tier1s); j++ {
			t.addEdge(tier1s[i].ASN, tier1s[j].ASN, RelP2P)
		}
	}
	pickAS := func(pool []*AS) *AS { return pool[rng.Intn(len(pool))] }

	// Transit: customer of two tier-1s, peer of two other transits.
	for _, tr := range transits {
		t.addEdge(tr.ASN, pickAS(tier1s).ASN, RelC2P)
		t.addEdge(tr.ASN, pickAS(tier1s).ASN, RelC2P)
		if len(transits) > 1 {
			for k := 0; k < 2; k++ {
				o := pickAS(transits)
				if o.ASN != tr.ASN {
					t.addEdge(tr.ASN, o.ASN, RelP2P)
				}
			}
		}
	}
	// Access: big ISPs buy from tier-1s, small ones from transits.
	for _, a := range t.byType(TypeAccess) {
		big := len(a.Cities) >= 5 || isAnchor(a.ASN)
		if big {
			t.addEdge(a.ASN, pickAS(tier1s).ASN, RelC2P)
			if rng.Float64() < 0.6 {
				t.addEdge(a.ASN, pickAS(tier1s).ASN, RelC2P)
			}
		} else {
			// Small ISPs cluster behind the popular transit providers,
			// which is why most test servers share interconnections with
			// their upstreams (75.5-91.6%, Table 1 discussion).
			popular := transits
			if len(popular) > 15 {
				popular = popular[:15]
			}
			t.addEdge(a.ASN, pickAS(popular).ASN, RelC2P)
			if rng.Float64() < 0.5 {
				t.addEdge(a.ASN, pickAS(popular).ASN, RelC2P)
			}
		}
	}
	// Hosting: mixed upstreams.
	for _, h := range t.byType(TypeHosting) {
		if rng.Float64() < 0.4 {
			t.addEdge(h.ASN, pickAS(tier1s).ASN, RelC2P)
		} else {
			t.addEdge(h.ASN, pickAS(transits).ASN, RelC2P)
		}
		if rng.Float64() < 0.3 {
			t.addEdge(h.ASN, pickAS(transits).ASN, RelC2P)
		}
	}
	// Education: single transit upstream.
	for _, e := range t.byType(TypeEducation) {
		t.addEdge(e.ASN, pickAS(transits).ASN, RelC2P)
	}
}

func isAnchor(asn ASN) bool {
	for _, s := range accessAnchors {
		if s.asn == asn {
			return true
		}
	}
	for _, s := range intlAnchors {
		if s.asn == asn {
			return true
		}
	}
	return false
}

func anchorDirectPeer(asn ASN) bool {
	for _, s := range accessAnchors {
		if s.asn == asn {
			return s.directPeer
		}
	}
	for _, s := range intlAnchors {
		if s.asn == asn {
			return s.directPeer
		}
	}
	return false
}

// --- Interconnects ---------------------------------------------------------

func (t *Topology) buildInterconnects(rng *rand.Rand) {
	cfg := t.Cfg
	// Decide the cloud's direct neighbors.
	var neighbors []*AS
	for _, a := range t.asList {
		switch a.Type {
		case TypeCloud:
			continue
		case TypeTier1:
			neighbors = append(neighbors, a)
		case TypeTransit:
			// Not every transit provider peers with the cloud; traffic
			// for the rest rides the tier-1s, concentrating server-bound
			// paths onto fewer interconnects (Table 1's 111-325 links).
			if rng.Float64() < 0.6 {
				neighbors = append(neighbors, a)
			}
		case TypeAccess:
			switch {
			case anchorDirectPeer(a.ASN):
				neighbors = append(neighbors, a)
			case isAnchor(a.ASN):
				// named but not forced to peer
			case a.Country != "US" && rng.Float64() < 0.5:
				neighbors = append(neighbors, a)
			case len(a.Cities) >= 4 && rng.Float64() < 0.35:
				neighbors = append(neighbors, a)
			case rng.Float64() < 0.08:
				neighbors = append(neighbors, a)
			}
		case TypeHosting:
			if rng.Float64() < 0.15 {
				neighbors = append(neighbors, a)
			}
		case TypeEducation:
			if rng.Float64() < 0.2 {
				neighbors = append(neighbors, a)
			}
		}
	}

	linkCount := func(a *AS) int {
		switch a.Type {
		case TypeTier1:
			return 60 + rng.Intn(41)
		case TypeTransit:
			return 45 + rng.Intn(46)
		case TypeAccess:
			return 8 + rng.Intn(21)
		default:
			return 1 + rng.Intn(3)
		}
	}

	// Per-neighbor link multiplicity shrinks with the square root of the
	// scale so that small test topologies keep multi-link neighbors.
	linkScale := math.Sqrt(cfg.Scale)
	if linkScale > 1 {
		linkScale = 1
	}
	nextLinkID := 0
	for _, nb := range neighbors {
		// Peering edge in the AS graph.
		t.addEdge(t.Cloud.ASN, nb.ASN, RelP2P)
		n := linkCount(nb)
		n = int(float64(n)*linkScale + 0.5)
		if n < 1 {
			n = 1
		}
		if n > 120 {
			n = 120
		}
		hubs := hubCities
		if nb.Country != "US" {
			hubs = intlHubCities
		}
		// Each neighbor interconnects mostly at a handful of "home" hub
		// facilities (private interconnects cluster at a few colos).
		// This concentrates server-bound egress onto few links per
		// neighbor, giving Table 1's 111-325 server-traversed links.
		nHome := 2 + rng.Intn(3)
		if nHome > len(hubs) {
			nHome = len(hubs)
		}
		homeHubs := sampleStrings(rng, hubs, nHome)
		var prevRouter RouterID = -1
		var prevCity string
		for i := 0; i < n; i++ {
			var city string
			if rng.Float64() < 0.85 || len(nb.Cities) == 0 {
				city = homeHubs[rng.Intn(len(homeHubs))]
			} else {
				city = nb.Cities[rng.Intn(len(nb.Cities))]
			}
			link := &Interconnect{
				ID:       nextLinkID,
				Neighbor: nb.ASN,
				City:     city,
			}
			if c, ok := t.Geo.Lookup(city); ok {
				link.Coord = c.Coord()
				link.CoordOK = true
				link.UTCOffset = c.UTCOffset
			}
			nextLinkID++
			idx := len(t.linksByNeighbor[nb.ASN])
			t.allocLinkIPs(rng, link, nb, idx)
			// Same-city consecutive links of a neighbor sometimes
			// terminate on the same far router (alias sets).
			if city == prevCity && prevRouter >= 0 && rng.Float64() < 0.5 {
				link.FarRouter = prevRouter
				t.routers[prevRouter] = append(t.routers[prevRouter], link.FarIP)
				t.routerOfIP[link.FarIP] = prevRouter
			} else {
				rid := t.nextRouter
				t.nextRouter++
				link.FarRouter = rid
				// Router loopback plus this interface.
				loop := addrInPrefix(nb.Prefix, 0, byte(idx+1))
				t.routers[rid] = []netip.Addr{loop, link.FarIP}
				t.routerOfIP[loop] = rid
				t.routerOfIP[link.FarIP] = rid
			}
			prevRouter, prevCity = link.FarRouter, city

			// Capacity and typical headroom for one new flow.
			link.CapacityMbps = []float64{10000, 20000, 40000, 100000}[rng.Intn(4)]
			link.Headroom = 200 + rng.Float64()*500 // 200-700 Mbps off-peak
			t.links = append(t.links, link)
			t.linkByID[link.ID] = link
			t.linksByNeighbor[nb.ASN] = append(t.linksByNeighbor[nb.ASN], link)

			// Probe prefix for pilot scans: a /24 of neighbor
			// customer-cone space engineered through this link.
			pp := netip.PrefixFrom(addrInPrefix(nb.Prefix, byte(128+idx%126), 0), 24)
			t.probeLink[pp] = link.ID
			t.probeAddr[link.ID] = addrInPrefix(nb.Prefix, byte(128+idx%126), 1)
		}
	}

	// Mark chronically lossy interconnects: a handful of premium-tier
	// egress ports (§4.1 found eight differential targets behind >10 %
	// average loss).
	for _, l := range t.links {
		if rng.Float64() < 0.04 {
			l.Lossy = true
			l.LossRate = 0.05 + rng.Float64()*0.12
		}
	}

	// Region visibility: sample each region's usable link subset, but
	// guarantee each neighbor keeps at least one visible link per region.
	for _, r := range t.Regions {
		frac, ok := cfg.RegionVisibility[r.Name]
		if !ok {
			frac = 0.85
		}
		set := make(map[int]bool)
		seen := make(map[ASN]bool)
		for _, l := range t.links {
			if rng.Float64() < frac {
				set[l.ID] = true
				seen[l.Neighbor] = true
			}
		}
		for nb, ls := range t.linksByNeighbor {
			if !seen[nb] && len(ls) > 0 {
				set[ls[0].ID] = true
			}
		}
		t.visible[r.Name] = set
	}
}

// allocLinkIPs assigns the /30 interface addresses of a link. A fraction of
// links are numbered from the cloud's space (so a prefix-to-AS lookup of the
// far IP misleadingly returns the cloud).
func (t *Topology) allocLinkIPs(rng *rand.Rand, link *Interconnect, nb *AS, idx int) {
	if rng.Float64() < t.Cfg.FarIPCloudSpaceFrac {
		link.FarIPFromCloudSpace = true
		// 15.240.0.0/12 region of cloud space, 4 addresses per link.
		base := uint32(15)<<24 | uint32(240)<<16 | uint32(link.ID*4)
		link.NearIP = addrFromU32(base + 1)
		link.FarIP = addrFromU32(base + 2)
	} else {
		// Top /23 of the neighbor's /16: x.y.254.0 - x.y.255.255.
		off := idx * 4 % 512
		third := byte(254 + off/256)
		fourth := byte(off % 256)
		link.FarIP = addrInPrefix(nb.Prefix, third, fourth+1)
		link.NearIP = addrInPrefix(nb.Prefix, third, fourth+2)
	}
}

func addrFromU32(v uint32) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

// addrInPrefix returns prefixBase.third.fourth inside a /16.
func addrInPrefix(p netip.Prefix, third, fourth byte) netip.Addr {
	b := p.Addr().As4()
	return netip.AddrFrom4([4]byte{b[0], b[1], third, fourth})
}

// --- Servers ---------------------------------------------------------------

// anchorServerSpec forces particular named servers to exist (the paper
// discusses them individually).
type anchorServerSpec struct {
	asn      ASN
	city     string
	platform Platform
	host     string
}

var anchorServers = []anchorServerSpec{
	{22773, "Las Vegas", PlatformOokla, "speedtest.lv.cox.net"},
	{22773, "San Diego", PlatformOokla, "speedtest.sd.cox.net"},
	{22773, "Henderson", PlatformOokla, "speedtest.hend.cox.net"},
	{19108, "Lubbock", PlatformOokla, "speedtest.lbk.suddenlink.net"},
	{33548, "Fresno", PlatformOokla, "speedtest.fresno.unwired.net"},
	{46276, "Grass Valley", PlatformOokla, "speedtest.smarterbroadband.net"},
	{174, "Dallas", PlatformOokla, "speedtest.axigent.net"},
	{174, "Chicago", PlatformOokla, "speedtest.fdcservers.net"},
	{7922, "Philadelphia", PlatformComcast, "xfinity.phl.comcast.net"},
	{7922, "Denver", PlatformComcast, "xfinity.den.comcast.net"},
	{7922, "Chicago", PlatformMLab, "ndt.chi.measurement-lab.org"},
	{1221, "Sydney", PlatformOokla, "speedtest.syd.telstra.net"},
	{1221, "Melbourne", PlatformOokla, "speedtest.mel.telstra.net"},
	{136334, "Mumbai", PlatformOokla, "speedtest.vortexnetsol.in"},
	{45194, "Mumbai", PlatformOokla, "speedtest.mum.joister.in"},
	{45194, "Delhi", PlatformOokla, "speedtest.del.joister.in"},
}

func (t *Topology) buildServers(rng *rand.Rand) {
	nextID := 0
	nextHostIP := make(map[ASN]int)
	add := func(a *AS, city string, platform Platform, host string) *Server {
		c, ok := t.Geo.Lookup(city)
		if !ok {
			return nil
		}
		n := nextHostIP[a.ASN]
		nextHostIP[a.ASN] = n + 1
		// Server IPs live in the .16-.127 third-octet band.
		ip := addrInPrefix(a.Prefix, byte(16+(n/250)%112), byte(n%250+1))
		if host == "" {
			host = fmt.Sprintf("st%d.%s.example.net", nextID, platform)
		}
		s := &Server{
			ID: nextID, Platform: platform, Host: host,
			ASN: a.ASN, City: city, Country: c.Country, IP: ip,
			AccessMbps: 1000, Lat: c.Lat, Lon: c.Lon, UTCOffset: c.UTCOffset,
		}
		if rng.Float64() < 0.2 {
			s.AccessMbps = 10000
		}
		nextID++
		t.servers = append(t.servers, s)
		t.serverByID[s.ID] = s
		return s
	}

	for _, sp := range anchorServers {
		if a, ok := t.ases[sp.asn]; ok {
			add(a, sp.city, sp.platform, sp.host)
		}
	}

	// Weighted AS pool for procedural US servers: hosting companies and
	// access ISPs dominate; some education and a few carrier-hosted.
	var pool []*AS
	var weights []float64
	for _, a := range t.asList {
		var w float64
		switch a.Type {
		case TypeHosting:
			w = 2.6
		case TypeAccess:
			if a.Country == "US" {
				w = 0.9 * float64(1+len(a.Cities))
			}
		case TypeEducation:
			w = 1.4
		case TypeTransit:
			w = 0.35
		case TypeTier1:
			w = 0.3
		}
		if w > 0 && len(a.Cities) > 0 {
			pool = append(pool, a)
			weights = append(weights, w)
		}
	}
	pickWeighted := func() *AS {
		total := 0.0
		for _, w := range weights {
			total += w
		}
		r := rng.Float64() * total
		for i, w := range weights {
			r -= w
			if r <= 0 {
				return pool[i]
			}
		}
		return pool[len(pool)-1]
	}
	platformFor := func(r float64) Platform {
		switch {
		case r < 0.65:
			return PlatformOokla
		case r < 0.85:
			return PlatformComcast
		default:
			return PlatformMLab
		}
	}

	usTarget := t.Cfg.scaled(t.Cfg.USServers, 40)
	for len(t.servers) < usTarget {
		a := pickWeighted()
		city := a.Cities[rng.Intn(len(a.Cities))]
		add(a, city, platformFor(rng.Float64()), "")
	}

	// International servers (differential-method candidate pool).
	var intlPool []*AS
	for _, a := range t.asList {
		if a.Type == TypeAccess && a.Country != "US" && len(a.Cities) > 0 {
			intlPool = append(intlPool, a)
		}
	}
	intlTarget := t.Cfg.scaled(t.Cfg.IntlServers, 20)
	for i := 0; i < intlTarget && len(intlPool) > 0; i++ {
		a := intlPool[rng.Intn(len(intlPool))]
		city := a.Cities[rng.Intn(len(a.Cities))]
		add(a, city, platformFor(rng.Float64()), "")
	}
}

func (t *Topology) buildEdgeVPs(rng *rand.Rand) {
	var pool []*AS
	for _, a := range t.asList {
		if a.Type == TypeAccess && len(a.Cities) > 0 {
			pool = append(pool, a)
		}
	}
	if len(pool) == 0 {
		return
	}
	n := t.Cfg.scaled(t.Cfg.NumEdgeVPs, 200)
	for i := 0; i < n; i++ {
		a := pool[rng.Intn(len(pool))]
		city := a.Cities[rng.Intn(len(a.Cities))]
		ip := addrInPrefix(a.Prefix, byte(1+i%15), byte(rng.Intn(250)+1))
		t.edgeVPs = append(t.edgeVPs, EdgeVP{ID: i, ASN: a.ASN, City: city, IP: ip})
	}
}

func (t *Topology) buildPrefixTable() {
	for _, a := range t.asList {
		p := a.Prefix
		if a.Type == TypeCloud {
			// The cloud announces its service/infrastructure space
			// (15.0.0.0/10) but, as on the real Internet, interconnect
			// /30s carved from 15.240.0.0/12 stay unannounced — the case
			// bdrmap's next-hop heuristic exists for.
			p = netip.PrefixFrom(p.Addr(), 10)
		}
		// Errors impossible: generated prefixes and origins are valid.
		_ = t.prefixTable.Insert(p, pfx2as.Origin{a.ASN})
	}
}

// --- Accessors ---------------------------------------------------------------

// AS returns the AS with the given number, or nil.
func (t *Topology) AS(asn ASN) *AS { return t.ases[asn] }

// ASes returns all ASes in generation order (cloud first).
func (t *Topology) ASes() []*AS { return t.asList }

// NumASes returns the number of ASes.
func (t *Topology) NumASes() int { return len(t.asList) }

// ASIndex returns the contiguous index of an AS: its position in the stable
// generation order, usable as a dense-slice key by route computations.
func (t *Topology) ASIndex(asn ASN) (int, bool) {
	i, ok := t.asIndex[asn]
	return i, ok
}

// ASAt returns the AS at a contiguous index (the inverse of ASIndex).
func (t *Topology) ASAt(i int) *AS { return t.asList[i] }

// Providers returns the AS's transit providers.
func (t *Topology) Providers(asn ASN) []ASN { return t.providers[asn] }

// Customers returns the AS's customers.
func (t *Topology) Customers(asn ASN) []ASN { return t.customers[asn] }

// Peers returns the AS's settlement-free peers.
func (t *Topology) Peers(asn ASN) []ASN { return t.peers[asn] }

// Links returns every interconnect of the cloud.
func (t *Topology) Links() []*Interconnect { return t.links }

// Link returns the interconnect with the given ID, or nil.
func (t *Topology) Link(id int) *Interconnect { return t.linkByID[id] }

// LinksOf returns the cloud's interconnects with a particular neighbor.
func (t *Topology) LinksOf(neighbor ASN) []*Interconnect {
	return t.linksByNeighbor[neighbor]
}

// CloudNeighbors returns the ASes directly interconnected with the cloud,
// sorted by ASN.
func (t *Topology) CloudNeighbors() []ASN {
	out := make([]ASN, 0, len(t.linksByNeighbor))
	for asn := range t.linksByNeighbor {
		out = append(out, asn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IsVisible reports whether a link is usable from a region.
func (t *Topology) IsVisible(region string, linkID int) bool {
	dense := t.visibleDense[region]
	return linkID >= 0 && linkID < len(dense) && dense[linkID]
}

// VisibleLinks returns the interconnects usable from a region, in ID order.
func (t *Topology) VisibleLinks(region string) []*Interconnect {
	set := t.visible[region]
	out := make([]*Interconnect, 0, len(set))
	for _, l := range t.links {
		if set[l.ID] {
			out = append(out, l)
		}
	}
	return out
}

// ProbeTarget returns the pilot-scan probe address engineered through a
// link (an address in the neighbor's customer cone routed via that link).
func (t *Topology) ProbeTarget(linkID int) (netip.Addr, bool) {
	a, ok := t.probeAddr[linkID]
	return a, ok
}

// LinkForProbe resolves a probe address back to the engineered link, or -1.
// Probe prefixes are /24s, so masking the address to its /24 turns the old
// O(prefixes) scan into one map lookup.
func (t *Topology) LinkForProbe(addr netip.Addr) int {
	p, err := addr.Prefix(24)
	if err != nil {
		return -1
	}
	if id, ok := t.probeLink[p]; ok {
		return id
	}
	return -1
}

// Servers returns every speed test server.
func (t *Topology) Servers() []*Server { return t.servers }

// Server returns the server with the given ID, or nil.
func (t *Topology) Server(id int) *Server { return t.serverByID[id] }

// ServersInCountry filters servers by country code.
func (t *Topology) ServersInCountry(cc string) []*Server {
	var out []*Server
	for _, s := range t.servers {
		if s.Country == cc {
			out = append(out, s)
		}
	}
	return out
}

// EdgeVPs returns the Speedchecker-style vantage points.
func (t *Topology) EdgeVPs() []EdgeVP { return t.edgeVPs }

// PrefixTable returns the prefix-to-AS table for the generated Internet.
// Link /30 subnets are deliberately absent (or, for cloud-numbered links,
// resolve to the cloud), as on the real Internet.
func (t *Topology) PrefixTable() *pfx2as.Table { return t.prefixTable }

// RouterAliases returns the interface IPs of a far-side border router.
func (t *Topology) RouterAliases(r RouterID) []netip.Addr { return t.routers[r] }

// RouterOf returns the router owning an interface IP, or -1.
func (t *Topology) RouterOf(ip netip.Addr) RouterID {
	if r, ok := t.routerOfIP[ip]; ok {
		return r
	}
	return -1
}

// Region returns the region with the given name.
func (t *Topology) Region(name string) (Region, bool) {
	r, ok := t.regionByName[name]
	return r, ok
}

// CityCoord returns the coordinates of a city in the embedded geo DB.
func (t *Topology) CityCoord(name string) (geo.Coord, bool) {
	c, ok := t.Geo.Lookup(name)
	if !ok {
		return geo.Coord{}, false
	}
	return c.Coord(), true
}

// CityOf returns the full city record for a name.
func (t *Topology) CityOf(name string) (geo.City, bool) { return t.Geo.Lookup(name) }

// --- small helpers -----------------------------------------------------------

func sampleStrings(rng *rand.Rand, pool []string, n int) []string {
	if n >= len(pool) {
		out := make([]string, len(pool))
		copy(out, pool)
		return out
	}
	idx := rng.Perm(len(pool))[:n]
	out := make([]string, n)
	for i, j := range idx {
		out[i] = pool[j]
	}
	return out
}

func dedupe(in []string) []string {
	seen := make(map[string]bool, len(in))
	out := in[:0]
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
