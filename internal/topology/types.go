// Package topology builds the synthetic Internet CLASP measures: an AS-level
// graph with business relationships, geographic footprints, a cloud provider
// with regions and thousands of interconnections (interdomain links), speed
// test servers hosted across the edge, and edge vantage points.
//
// The real study ran against the Internet and Google Cloud Platform; this
// package is the offline substitute. It preserves the structural properties
// the paper's methodology depends on: ~6k interdomain links visible per
// cloud region, heavy sharing of interconnects among test servers
// (75-92 %), diverse server business types, and named anchor ISPs (Cox,
// Comcast, Cogent, ...) whose congestion behaviour the paper describes.
package topology

import (
	"fmt"
	"net/netip"

	"github.com/clasp-measurement/clasp/internal/geo"
	"github.com/clasp-measurement/clasp/internal/pfx2as"
)

// ASN aliases the pfx2as AS number type for convenience.
type ASN = pfx2as.ASN

// ASType classifies an autonomous system's business role.
type ASType int

// AS business roles.
const (
	TypeTier1     ASType = iota // settlement-free backbone carrier
	TypeTransit                 // regional/national transit provider
	TypeAccess                  // eyeball/access ISP
	TypeHosting                 // web hosting / datacentre operator
	TypeEducation               // university or research network
	TypeCloud                   // the measured cloud provider
)

// String implements fmt.Stringer.
func (t ASType) String() string {
	switch t {
	case TypeTier1:
		return "tier1"
	case TypeTransit:
		return "transit"
	case TypeAccess:
		return "access"
	case TypeHosting:
		return "hosting"
	case TypeEducation:
		return "education"
	case TypeCloud:
		return "cloud"
	default:
		return fmt.Sprintf("ASType(%d)", int(t))
	}
}

// BusinessType mirrors the ipinfo.io company categories used in Fig. 8.
type BusinessType int

// Business categories for speed test server networks.
const (
	BizISP BusinessType = iota
	BizHosting
	BizBusiness
	BizEducation
	BizUnknown
)

// String implements fmt.Stringer.
func (b BusinessType) String() string {
	switch b {
	case BizISP:
		return "ISP"
	case BizHosting:
		return "Hosting"
	case BizBusiness:
		return "Business"
	case BizEducation:
		return "Education"
	default:
		return "Unknown"
	}
}

// CongestionProfile describes the diurnal load behaviour of an AS's access
// infrastructure and its interconnects. The network simulator turns this
// into time-varying available bandwidth, queueing delay and loss.
type CongestionProfile struct {
	// Prone marks the network as congestion-prone: its peak-hour dip is
	// deep enough to trip CLASP's V > 0.5 detector on some days.
	Prone bool
	// PeakHourLocal is the centre of the evening peak in local time
	// (FCC defines peak as 7-11 pm; typical centre 21).
	PeakHourLocal int
	// PeakDepth is the fractional reduction of available bandwidth at the
	// centre of the peak (0 = flat, 0.9 = severe evening congestion).
	PeakDepth float64
	// Daytime shifts congestion into working hours (the Cox pattern in
	// §4.2: high congestion frequency during the daytime).
	Daytime bool
	// LossAtPeak is the packet loss rate at the centre of the peak on a
	// congested day (e.g. Cox reverse-path loss reached >50 %).
	LossAtPeak float64
}

// AS is one autonomous system.
type AS struct {
	ASN     ASN
	Name    string
	Type    ASType
	Country string       // home country code
	Cities  []string     // PoP cities (names in the geo DB)
	Prefix  netip.Prefix // primary address block
	// Business is the ipinfo-style category of networks inside this AS.
	Business BusinessType
	// Congestion describes this AS's access-network behaviour.
	Congestion CongestionProfile
}

// HasCity reports whether the AS has a PoP in the named city.
func (a *AS) HasCity(city string) bool {
	for _, c := range a.Cities {
		if c == city {
			return true
		}
	}
	return false
}

// RelKind is the business relationship on an AS-level edge.
type RelKind int

// Relationship kinds.
const (
	RelC2P RelKind = iota // A is a customer of B
	RelP2P                // A and B are settlement-free peers
)

// ASEdge is one AS-level adjacency. For RelC2P, A is the customer and B the
// provider.
type ASEdge struct {
	A, B ASN
	Rel  RelKind
}

// RouterID identifies a border router (for alias resolution).
type RouterID int

// Interconnect is one interdomain link between the cloud AS and a neighbor.
// bdrmap identifies these by the far-side interface IP.
type Interconnect struct {
	ID       int
	Neighbor ASN        // neighbor AS on the far side
	City     string     // colocation facility city
	NearIP   netip.Addr // cloud-side interface
	FarIP    netip.Addr // neighbor-side interface (bdrmap's identifier)
	// FarRouter groups interconnects that terminate on the same physical
	// neighbor router; alias resolution recovers this grouping.
	FarRouter RouterID
	// FarIPFromCloudSpace records that the /30 linking subnet was
	// allocated from the cloud's address space, so a naive prefix-to-AS
	// lookup of FarIP returns the cloud AS instead of the neighbor. This
	// is the case bdrmap's inference rules exist to handle.
	FarIPFromCloudSpace bool
	// CapacityMbps is the provisioned capacity of the interconnect.
	CapacityMbps float64
	// Headroom is the typical bandwidth (Mbps) available to one new flow
	// at off-peak hours, reflecting the background load from other
	// tenants and services sharing the port.
	Headroom float64
	// Lossy marks a chronically lossy interconnect (the premium-tier
	// pathology of §4.1: eight targets saw >10 % average loss).
	Lossy bool
	// LossRate is the average loss rate when Lossy.
	LossRate float64
	// Coord/CoordOK/UTCOffset intern the facility city's geo record so the
	// routing and simulation hot paths need no per-call name lookup.
	// CoordOK is false when City is absent from the geo DB.
	Coord     geo.Coord
	CoordOK   bool
	UTCOffset int
}

// Platform identifies a speed test platform.
type Platform int

// Speed test platforms used by CLASP.
const (
	PlatformOokla Platform = iota
	PlatformMLab
	PlatformComcast
)

// String implements fmt.Stringer.
func (p Platform) String() string {
	switch p {
	case PlatformOokla:
		return "ookla"
	case PlatformMLab:
		return "mlab"
	case PlatformComcast:
		return "comcast"
	default:
		return fmt.Sprintf("Platform(%d)", int(p))
	}
}

// Server is a speed test server deployed somewhere on the synthetic
// Internet.
type Server struct {
	ID       int
	Platform Platform
	Host     string // DNS-style identifier
	ASN      ASN
	City     string
	Country  string
	IP       netip.Addr
	// AccessMbps is the server's access link capacity (Ookla requires
	// at least 1 Gbps).
	AccessMbps float64
	// Lat/Lon duplicate the city coordinates for the Fig. 7 maps.
	Lat, Lon float64
	// UTCOffset interns the city's UTC offset for the diurnal model.
	UTCOffset int
}

// Region is one cloud region.
type Region struct {
	Name  string // e.g. "us-west1"
	City  string // host city in the geo DB
	Zones []string
}

// EdgeVP is a Speedchecker-style edge vantage point used for the
// differential method's preliminary latency scan.
type EdgeVP struct {
	ID   int
	ASN  ASN
	City string
	IP   netip.Addr
}
