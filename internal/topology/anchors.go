package topology

// Anchor ASes: networks the paper names explicitly, with ASNs and behaviour
// taken from §4.2 and Fig. 6. Generated ASes fill in the rest of the graph
// around these.

// cloudASN is the measured cloud provider (Google, AS 15169).
const cloudASN ASN = 15169

// anchorSpec seeds a named AS before procedural generation.
type anchorSpec struct {
	asn        ASN
	name       string
	typ        ASType
	country    string
	cities     []string
	biz        BusinessType
	congestion CongestionProfile
	// directPeer forces a direct interconnection with the cloud.
	directPeer bool
}

// tier1Anchors are the settlement-free backbone carriers. Cogent (AS174) is
// called out in §4.2: two test servers with Cogent IPs showed congestion in
// the 7-11 pm FCC peak window.
var tier1Anchors = []anchorSpec{
	{asn: 174, name: "Cogent", typ: TypeTier1, country: "US", biz: BizISP,
		congestion: CongestionProfile{Prone: true, PeakHourLocal: 21, PeakDepth: 0.62, LossAtPeak: 0.04}},
	{asn: 3356, name: "Lumen", typ: TypeTier1, country: "US", biz: BizISP,
		congestion: CongestionProfile{PeakHourLocal: 21, PeakDepth: 0.12}},
	{asn: 1299, name: "Telia", typ: TypeTier1, country: "SE", biz: BizISP,
		congestion: CongestionProfile{PeakHourLocal: 21, PeakDepth: 0.10}},
	{asn: 2914, name: "NTT", typ: TypeTier1, country: "JP", biz: BizISP,
		congestion: CongestionProfile{PeakHourLocal: 21, PeakDepth: 0.10}},
	{asn: 3257, name: "GTT", typ: TypeTier1, country: "US", biz: BizISP,
		congestion: CongestionProfile{PeakHourLocal: 21, PeakDepth: 0.15}},
	{asn: 6461, name: "Zayo", typ: TypeTier1, country: "US", biz: BizISP,
		congestion: CongestionProfile{PeakHourLocal: 21, PeakDepth: 0.12}},
	{asn: 6453, name: "TATA", typ: TypeTier1, country: "IN", biz: BizISP,
		congestion: CongestionProfile{PeakHourLocal: 21, PeakDepth: 0.14}},
	{asn: 701, name: "Verizon", typ: TypeTier1, country: "US", biz: BizISP,
		congestion: CongestionProfile{PeakHourLocal: 21, PeakDepth: 0.12}},
}

// accessAnchors are the access ISPs named in the paper's congestion
// analysis (§4.2, Fig. 6a/6b).
var accessAnchors = []anchorSpec{
	// Cox: three test servers in Southern California and Nevada showed
	// daytime congestion with reverse-path loss rising from 3 % to >50 %.
	{asn: 22773, name: "Cox", typ: TypeAccess, country: "US", biz: BizISP, directPeer: true,
		cities:     []string{"Las Vegas", "San Diego", "Phoenix", "Henderson", "Irvine", "Santa Ana", "Tulsa", "New Orleans", "Virginia Beach", "Wichita"},
		congestion: CongestionProfile{Prone: true, Daytime: true, PeakHourLocal: 13, PeakDepth: 0.72, LossAtPeak: 0.5}},
	{asn: 7922, name: "Comcast", typ: TypeAccess, country: "US", biz: BizISP, directPeer: true,
		cities:     []string{"Philadelphia", "Chicago", "Denver", "Seattle", "San Francisco", "Houston", "Atlanta", "Boston", "Miami", "Portland", "Sacramento", "Salt Lake City", "Indianapolis", "Nashville", "Pittsburgh"},
		congestion: CongestionProfile{PeakHourLocal: 21, PeakDepth: 0.25}},
	{asn: 20115, name: "Charter", typ: TypeAccess, country: "US", biz: BizISP, directPeer: true,
		cities:     []string{"St. Louis", "Charlotte", "Los Angeles", "Dallas", "Austin", "Columbus", "Milwaukee", "Rochester", "Birmingham", "Madison"},
		congestion: CongestionProfile{PeakHourLocal: 21, PeakDepth: 0.3}},
	{asn: 7018, name: "ATT", typ: TypeAccess, country: "US", biz: BizISP, directPeer: true,
		cities:     []string{"Dallas", "Atlanta", "Chicago", "Los Angeles", "Miami", "San Antonio", "Detroit", "Cleveland", "Oklahoma City", "Memphis"},
		congestion: CongestionProfile{PeakHourLocal: 21, PeakDepth: 0.2}},
	{asn: 209, name: "CenturyLink", typ: TypeAccess, country: "US", biz: BizISP, directPeer: true,
		cities:     []string{"Denver", "Phoenix", "Seattle", "Minneapolis", "Omaha", "Boise", "Albuquerque", "Tucson"},
		congestion: CongestionProfile{PeakHourLocal: 21, PeakDepth: 0.28}},
	{asn: 5650, name: "Frontier", typ: TypeAccess, country: "US", biz: BizISP,
		cities:     []string{"Tampa", "Fort Wayne", "Bakersfield", "Durham", "Provo"},
		congestion: CongestionProfile{Prone: true, PeakHourLocal: 21, PeakDepth: 0.55, LossAtPeak: 0.06}},
	// Suddenlink (AS19108): evening-peak congestion upticks (us-west1).
	{asn: 19108, name: "Suddenlink", typ: TypeAccess, country: "US", biz: BizISP, directPeer: true,
		cities:     []string{"Lubbock", "Amarillo", "Shreveport", "Little Rock", "Flagstaff"},
		congestion: CongestionProfile{Prone: true, PeakHourLocal: 21, PeakDepth: 0.68, LossAtPeak: 0.12}},
	// unWired Broadband (AS33548): California WISP, evening congestion.
	{asn: 33548, name: "unWired Broadband", typ: TypeAccess, country: "US", biz: BizISP, directPeer: true,
		cities:     []string{"Fresno", "Bakersfield", "Stockton"},
		congestion: CongestionProfile{Prone: true, PeakHourLocal: 20, PeakDepth: 0.7, LossAtPeak: 0.1}},
	// Smarterbroadband (AS46276): degraded throughout the day, 10am-8pm
	// (its us-east1 path exits at Equinix San Jose and crosses the country).
	{asn: 46276, name: "Smarterbroadband", typ: TypeAccess, country: "US", biz: BizISP, directPeer: true,
		cities:     []string{"Grass Valley"},
		congestion: CongestionProfile{Prone: true, Daytime: true, PeakHourLocal: 15, PeakDepth: 0.75, LossAtPeak: 0.2}},
	{asn: 30036, name: "Mediacom", typ: TypeAccess, country: "US", biz: BizISP,
		cities:     []string{"Des Moines", "Council Bluffs", "Sioux Falls"},
		congestion: CongestionProfile{Prone: true, PeakHourLocal: 21, PeakDepth: 0.6, LossAtPeak: 0.05}},
	{asn: 11492, name: "CableOne", typ: TypeAccess, country: "US", biz: BizISP,
		cities:     []string{"Boise", "Fargo", "Billings"},
		congestion: CongestionProfile{PeakHourLocal: 21, PeakDepth: 0.35}},
	{asn: 12083, name: "WOW", typ: TypeAccess, country: "US", biz: BizISP,
		cities:     []string{"Detroit", "Columbus", "Knoxville"},
		congestion: CongestionProfile{PeakHourLocal: 21, PeakDepth: 0.3}},
}

// intlAnchors are the international networks from the europe-west1
// differential experiment (Fig. 6c): two Indian ISPs and Telstra showed more
// congestion on the standard tier.
var intlAnchors = []anchorSpec{
	{asn: 1221, name: "Telstra", typ: TypeAccess, country: "AU", biz: BizISP, directPeer: true,
		cities:     []string{"Sydney", "Melbourne", "Brisbane", "Perth"},
		congestion: CongestionProfile{Prone: true, PeakHourLocal: 21, PeakDepth: 0.55, LossAtPeak: 0.05}},
	{asn: 136334, name: "Vortex Netsol", typ: TypeAccess, country: "IN", biz: BizISP,
		cities:     []string{"Mumbai", "Delhi"},
		congestion: CongestionProfile{Prone: true, PeakHourLocal: 22, PeakDepth: 0.65, LossAtPeak: 0.08}},
	{asn: 45194, name: "Joister Broadband", typ: TypeAccess, country: "IN", biz: BizISP,
		cities:     []string{"Mumbai", "Delhi", "Bangalore"},
		congestion: CongestionProfile{Prone: true, PeakHourLocal: 22, PeakDepth: 0.6, LossAtPeak: 0.07}},
}

// hubCities are the interconnection hub metros where most cloud facilities
// concentrate (Equinix-style). Egress engineering collapses most
// server-bound traffic onto links in these hubs, which is why ~1.3k servers
// traverse only 100-350 distinct interdomain links (Table 1).
var hubCities = []string{
	"San Jose", "Los Angeles", "Seattle", "Dallas", "Chicago",
	"Ashburn", "New York", "Miami", "Atlanta", "Denver",
	"Las Vegas", "Kansas City",
}

// intlHubCities extends the hub list for the europe-west1 region and the
// differential method's global servers.
var intlHubCities = []string{
	"Brussels", "Amsterdam", "London", "Frankfurt", "Paris",
	"Madrid", "Milan", "Stockholm", "Warsaw",
	"Mumbai", "Singapore", "Sydney", "Tokyo", "Sao Paulo", "Toronto",
}
