package topology

import (
	"net/netip"
	"testing"
)

func small(t *testing.T) *Topology {
	t.Helper()
	cfg := DefaultConfig()
	topo, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestNewRejectsBadScale(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 0
	if _, err := New(cfg); err == nil {
		t.Error("scale 0: want error")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Links()) != len(b.Links()) || len(a.Servers()) != len(b.Servers()) {
		t.Fatalf("same seed differs: links %d/%d servers %d/%d",
			len(a.Links()), len(b.Links()), len(a.Servers()), len(b.Servers()))
	}
	for i, l := range a.Links() {
		m := b.Links()[i]
		if l.FarIP != m.FarIP || l.City != m.City || l.Neighbor != m.Neighbor {
			t.Fatalf("link %d differs: %+v vs %+v", i, l, m)
		}
	}
	cfg2 := cfg
	cfg2.Seed = 99
	c, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	same := len(a.Links()) == len(c.Links())
	if same {
		diff := false
		for i := range a.Links() {
			if a.Links()[i].FarIP != c.Links()[i].FarIP {
				diff = true
				break
			}
		}
		same = !diff
	}
	if same {
		t.Error("different seeds produced identical link sets")
	}
}

func TestCloudAndRegions(t *testing.T) {
	topo := small(t)
	if topo.Cloud == nil || topo.Cloud.ASN != 15169 || topo.Cloud.Type != TypeCloud {
		t.Fatalf("cloud AS wrong: %+v", topo.Cloud)
	}
	if len(topo.Regions) != 7 {
		t.Errorf("regions = %d, want 7", len(topo.Regions))
	}
	for _, r := range topo.Regions {
		if _, ok := topo.Geo.Lookup(r.City); !ok {
			t.Errorf("region %s host city %q not in geo DB", r.Name, r.City)
		}
		if len(r.Zones) != 3 {
			t.Errorf("region %s has %d zones", r.Name, len(r.Zones))
		}
	}
	if _, ok := topo.Region("us-west1"); !ok {
		t.Error("us-west1 missing")
	}
	if _, ok := topo.Region("mars-east1"); ok {
		t.Error("unexpected region found")
	}
}

func TestAnchorASesPresent(t *testing.T) {
	topo := small(t)
	checks := []struct {
		asn  ASN
		name string
		typ  ASType
	}{
		{174, "Cogent", TypeTier1},
		{22773, "Cox", TypeAccess},
		{7922, "Comcast", TypeAccess},
		{19108, "Suddenlink", TypeAccess},
		{33548, "unWired Broadband", TypeAccess},
		{46276, "Smarterbroadband", TypeAccess},
		{1221, "Telstra", TypeAccess},
		{136334, "Vortex Netsol", TypeAccess},
		{45194, "Joister Broadband", TypeAccess},
	}
	for _, c := range checks {
		a := topo.AS(c.asn)
		if a == nil {
			t.Errorf("missing anchor AS%d", c.asn)
			continue
		}
		if a.Name != c.name || a.Type != c.typ {
			t.Errorf("AS%d = %s/%v, want %s/%v", c.asn, a.Name, a.Type, c.name, c.typ)
		}
	}
	// Cox must be congestion-prone with the daytime pattern (§4.2).
	cox := topo.AS(22773)
	if !cox.Congestion.Prone || !cox.Congestion.Daytime {
		t.Errorf("Cox congestion profile wrong: %+v", cox.Congestion)
	}
}

func TestRelationshipsValleyFreeStructure(t *testing.T) {
	topo := small(t)
	// Every non-cloud, non-tier1 AS must have at least one provider,
	// otherwise it would be unreachable.
	for _, a := range topo.ASes() {
		if a.Type == TypeCloud || a.Type == TypeTier1 {
			continue
		}
		if len(topo.Providers(a.ASN)) == 0 {
			t.Errorf("%s (AS%d, %v) has no providers", a.Name, a.ASN, a.Type)
		}
	}
	// Tier-1s must not have providers.
	for _, a := range topo.ASes() {
		if a.Type == TypeTier1 && len(topo.Providers(a.ASN)) > 0 {
			t.Errorf("tier1 %s has providers", a.Name)
		}
	}
	// Peering symmetry.
	for _, a := range topo.ASes() {
		for _, p := range topo.Peers(a.ASN) {
			found := false
			for _, q := range topo.Peers(p) {
				if q == a.ASN {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("peering %d-%d not symmetric", a.ASN, p)
			}
		}
	}
	// Provider/customer consistency.
	for _, a := range topo.ASes() {
		for _, p := range topo.Providers(a.ASN) {
			found := false
			for _, c := range topo.Customers(p) {
				if c == a.ASN {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("c2p %d->%d missing reverse customer edge", a.ASN, p)
			}
		}
	}
}

func TestInterconnectIntegrity(t *testing.T) {
	topo := small(t)
	links := topo.Links()
	if len(links) < 200 {
		t.Fatalf("links = %d, want a few hundred at 0.1 scale", len(links))
	}
	seenFar := make(map[netip.Addr]bool)
	for _, l := range links {
		if topo.AS(l.Neighbor) == nil {
			t.Fatalf("link %d neighbor AS%d unknown", l.ID, l.Neighbor)
		}
		if _, ok := topo.Geo.Lookup(l.City); !ok {
			t.Errorf("link %d city %q not in geo DB", l.ID, l.City)
		}
		if !l.NearIP.IsValid() || !l.FarIP.IsValid() || l.NearIP == l.FarIP {
			t.Errorf("link %d bad interface IPs %v/%v", l.ID, l.NearIP, l.FarIP)
		}
		if seenFar[l.FarIP] {
			t.Errorf("duplicate far IP %v", l.FarIP)
		}
		seenFar[l.FarIP] = true
		if l.CapacityMbps < 10000 {
			t.Errorf("link %d capacity %v too small", l.ID, l.CapacityMbps)
		}
		if l.Headroom < 200 || l.Headroom > 700 {
			t.Errorf("link %d headroom %v outside [200,700]", l.ID, l.Headroom)
		}
		if topo.Link(l.ID) != l {
			t.Errorf("Link(%d) lookup broken", l.ID)
		}
	}
}

func TestFarIPAddressing(t *testing.T) {
	topo := small(t)
	pt := topo.PrefixTable()
	cloudSpace, neighborSpace := 0, 0
	for _, l := range topo.Links() {
		asn := pt.LookupASN(l.FarIP)
		if l.FarIPFromCloudSpace {
			cloudSpace++
			// Interconnect /30s from cloud space are unannounced, so the
			// lookup must miss (bdrmap's next-hop heuristic case).
			if asn != 0 {
				t.Errorf("cloud-numbered link %d far IP resolves to AS%d, want unrouted", l.ID, asn)
			}
		} else {
			neighborSpace++
			if asn != l.Neighbor {
				t.Errorf("link %d far IP %v resolves to AS%d, want AS%d", l.ID, l.FarIP, asn, l.Neighbor)
			}
		}
	}
	total := cloudSpace + neighborSpace
	frac := float64(cloudSpace) / float64(total)
	if frac < 0.15 || frac > 0.45 {
		t.Errorf("cloud-space far-IP fraction = %.2f, want ~0.3", frac)
	}
}

func TestRegionVisibility(t *testing.T) {
	topo := small(t)
	total := len(topo.Links())
	for _, r := range topo.Regions {
		vis := topo.VisibleLinks(r.Name)
		frac := float64(len(vis)) / float64(total)
		if frac < 0.6 || frac > 1.0 {
			t.Errorf("%s visibility %.2f outside [0.6,1]", r.Name, frac)
		}
		// Every cloud neighbor must keep at least one visible link.
		seen := make(map[ASN]bool)
		for _, l := range vis {
			seen[l.Neighbor] = true
		}
		for _, nb := range topo.CloudNeighbors() {
			if !seen[nb] {
				t.Errorf("%s: neighbor AS%d has no visible link", r.Name, nb)
			}
		}
		for _, l := range vis {
			if !topo.IsVisible(r.Name, l.ID) {
				t.Errorf("IsVisible inconsistent for link %d", l.ID)
			}
		}
	}
}

func TestProbeTargets(t *testing.T) {
	topo := small(t)
	for _, l := range topo.Links() {
		addr, ok := topo.ProbeTarget(l.ID)
		if !ok {
			t.Fatalf("link %d has no probe target", l.ID)
		}
		// The probe address must be inside the neighbor's prefix so the
		// pilot's prefix-to-AS resolution maps it to the neighbor.
		nb := topo.AS(l.Neighbor)
		if !nb.Prefix.Contains(addr) {
			t.Errorf("probe %v for link %d outside neighbor prefix %v", addr, l.ID, nb.Prefix)
		}
	}
	// Reverse resolution round-trips for a sample.
	for _, l := range topo.Links()[:20] {
		addr, _ := topo.ProbeTarget(l.ID)
		got := topo.LinkForProbe(addr)
		// Multiple links can share a probe band only if idx wrapped; at
		// small scale indices stay unique per neighbor.
		if got != l.ID {
			gl := topo.Link(got)
			if gl == nil || gl.Neighbor != l.Neighbor {
				t.Errorf("LinkForProbe(%v) = %d, want %d", addr, got, l.ID)
			}
		}
	}
	if topo.LinkForProbe(netip.MustParseAddr("203.0.113.1")) != -1 {
		t.Error("LinkForProbe of unrelated address should be -1")
	}
}

func TestServers(t *testing.T) {
	topo := small(t)
	servers := topo.Servers()
	if len(servers) < 50 {
		t.Fatalf("servers = %d", len(servers))
	}
	seenIP := make(map[netip.Addr]bool)
	platforms := make(map[Platform]int)
	for _, s := range servers {
		a := topo.AS(s.ASN)
		if a == nil {
			t.Fatalf("server %d in unknown AS%d", s.ID, s.ASN)
		}
		if !a.Prefix.Contains(s.IP) {
			t.Errorf("server %d IP %v outside AS prefix %v", s.ID, s.IP, a.Prefix)
		}
		if seenIP[s.IP] {
			t.Errorf("duplicate server IP %v", s.IP)
		}
		seenIP[s.IP] = true
		if s.AccessMbps < 1000 {
			t.Errorf("server %d access %v < 1000 (Ookla requirement)", s.ID, s.AccessMbps)
		}
		if topo.Server(s.ID) != s {
			t.Errorf("Server(%d) lookup broken", s.ID)
		}
		platforms[s.Platform]++
	}
	for _, p := range []Platform{PlatformOokla, PlatformMLab, PlatformComcast} {
		if platforms[p] == 0 {
			t.Errorf("no servers on platform %v", p)
		}
	}
	// Anchor servers the analysis narrates must exist.
	var coxLV, cogentHosted bool
	for _, s := range servers {
		if s.ASN == 22773 && s.City == "Las Vegas" {
			coxLV = true
		}
		if s.ASN == 174 {
			cogentHosted = true
		}
	}
	if !coxLV {
		t.Error("missing Cox Las Vegas server (needed for Fig 3)")
	}
	if !cogentHosted {
		t.Error("missing Cogent-hosted servers (needed for Fig 6a)")
	}
}

func TestServersInCountry(t *testing.T) {
	topo := small(t)
	us := topo.ServersInCountry("US")
	if len(us) == 0 {
		t.Fatal("no US servers")
	}
	intl := len(topo.Servers()) - len(us)
	if intl == 0 {
		t.Error("no international servers (differential method needs them)")
	}
	for _, s := range us {
		if s.Country != "US" {
			t.Errorf("ServersInCountry returned %s server", s.Country)
		}
	}
}

func TestEdgeVPs(t *testing.T) {
	topo := small(t)
	vps := topo.EdgeVPs()
	if len(vps) < 200 {
		t.Fatalf("edge VPs = %d", len(vps))
	}
	asns := make(map[ASN]bool)
	for _, v := range vps {
		a := topo.AS(v.ASN)
		if a == nil || a.Type != TypeAccess {
			t.Fatalf("VP %d in non-access AS", v.ID)
		}
		if !a.Prefix.Contains(v.IP) {
			t.Errorf("VP %d IP outside AS prefix", v.ID)
		}
		asns[v.ASN] = true
	}
	if len(asns) < 20 {
		t.Errorf("VPs span only %d ASes", len(asns))
	}
}

func TestRouterAliases(t *testing.T) {
	topo := small(t)
	multi := 0
	for _, l := range topo.Links() {
		aliases := topo.RouterAliases(l.FarRouter)
		if len(aliases) < 2 {
			t.Errorf("router %d has %d interfaces, want >= 2 (loopback + link)", l.FarRouter, len(aliases))
		}
		found := false
		for _, a := range aliases {
			if a == l.FarIP {
				found = true
			}
			if got := topo.RouterOf(a); got != l.FarRouter {
				t.Errorf("RouterOf(%v) = %d, want %d", a, got, l.FarRouter)
			}
		}
		if !found {
			t.Errorf("router %d aliases missing its far IP", l.FarRouter)
		}
		if len(aliases) > 2 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("no multi-link routers generated; alias resolution has nothing to do")
	}
	if topo.RouterOf(netip.MustParseAddr("203.0.113.7")) != -1 {
		t.Error("RouterOf unknown IP should be -1")
	}
}

func TestLossyLinksExist(t *testing.T) {
	topo := small(t)
	lossy := 0
	for _, l := range topo.Links() {
		if l.Lossy {
			lossy++
			if l.LossRate < 0.05 || l.LossRate > 0.2 {
				t.Errorf("lossy link %d rate %v outside [0.05,0.2]", l.ID, l.LossRate)
			}
		}
	}
	frac := float64(lossy) / float64(len(topo.Links()))
	if frac < 0.01 || frac > 0.1 {
		t.Errorf("lossy fraction %.3f, want ~0.04", frac)
	}
}

func TestPaperScaleStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale generation in -short mode")
	}
	topo, err := New(PaperScaleConfig())
	if err != nil {
		t.Fatal(err)
	}
	// ~6k interdomain links discovered per region (Table 1: 5,255-6,609).
	nl := len(topo.Links())
	if nl < 4000 || nl > 11000 {
		t.Errorf("global links = %d, want order 6-8k", nl)
	}
	for _, r := range topo.Regions {
		v := len(topo.VisibleLinks(r.Name))
		if v < 3500 || v > 10000 {
			t.Errorf("%s visible links = %d, want order 5-7k", r.Name, v)
		}
	}
	// ~1.3k US servers (paper found 1,329).
	us := len(topo.ServersInCountry("US"))
	if us < 1100 || us > 1500 {
		t.Errorf("US servers = %d, want ~1329", us)
	}
	// >10k networks of edge vantage points.
	if len(topo.EdgeVPs()) < 9000 {
		t.Errorf("edge VPs = %d, want ~10k", len(topo.EdgeVPs()))
	}
}
