package topology

// Config controls synthetic Internet generation. The zero value is not
// useful; start from DefaultConfig or PaperScaleConfig.
type Config struct {
	// Seed drives all randomness; equal seeds give identical topologies.
	Seed int64

	// Scale multiplies the entity counts below. 1.0 reproduces the
	// paper-scale Internet (~6k interdomain links per region, ~1.3k US
	// test servers); tests use smaller scales for speed.
	Scale float64

	// NumTransit is the number of procedurally generated transit ASes
	// (in addition to the anchor tier-1 carriers).
	NumTransit int
	// NumAccessUS / NumAccessIntl are the procedurally generated access
	// ISP counts (in addition to the named anchors).
	NumAccessUS   int
	NumAccessIntl int
	// NumHosting and NumEducation are generated hosting and university
	// AS counts.
	NumHosting   int
	NumEducation int

	// USServers is the target number of US speed test servers across the
	// three platforms (paper: ~1,329). IntlServers is the rest-of-world
	// server count used by the differential method's candidate pool.
	USServers   int
	IntlServers int

	// RegionVisibility is the fraction of global interconnects usable
	// from each region (egress availability differs per region, which is
	// why bdrmap discovers different link counts per region — Table 1).
	RegionVisibility map[string]float64

	// FarIPCloudSpaceFrac is the fraction of interconnect /30s allocated
	// from the cloud's address space, the case bdrmap's inference rules
	// must untangle.
	FarIPCloudSpaceFrac float64

	// CongestionProneFrac is the fraction of generated access ISPs whose
	// evening peak is deep enough to trip the V > 0.5 detector
	// (paper finding: 30-70 % of ISPs showed congestion evidence).
	CongestionProneFrac float64

	// NumEdgeVPs is the number of Speedchecker-style edge vantage points
	// (paper: >10,000 networks).
	NumEdgeVPs int
}

// DefaultConfig returns a small topology suitable for unit tests: a few
// hundred interconnects and a couple hundred servers.
func DefaultConfig() Config {
	c := PaperScaleConfig()
	c.Scale = 0.1
	return c
}

// PaperScaleConfig reproduces the structural scale of the paper's
// measurement campaign.
func PaperScaleConfig() Config {
	return Config{
		Seed:          1,
		Scale:         1.0,
		NumTransit:    70,
		NumAccessUS:   430,
		NumAccessIntl: 120,
		NumHosting:    200,
		NumEducation:  80,
		USServers:     1329,
		IntlServers:   700,
		RegionVisibility: map[string]float64{
			"us-west1":     0.86,
			"us-west2":     0.98,
			"us-west4":     0.94,
			"us-east1":     0.95,
			"us-east4":     0.85,
			"us-central1":  0.97,
			"europe-west1": 0.90,
		},
		FarIPCloudSpaceFrac: 0.3,
		CongestionProneFrac: 0.5,
		NumEdgeVPs:          10000,
	}
}

// scaled applies the Scale factor to a count, keeping at least min.
func (c Config) scaled(n, min int) int {
	v := int(float64(n) * c.Scale)
	if v < min {
		v = min
	}
	return v
}

// Regions returns the cloud regions the paper deployed in (Appendix A).
func Regions() []Region {
	mk := func(name, city string) Region {
		return Region{
			Name:  name,
			City:  city,
			Zones: []string{name + "-a", name + "-b", name + "-c"},
		}
	}
	return []Region{
		mk("us-west1", "The Dalles"),
		mk("us-west2", "Los Angeles"),
		mk("us-west4", "Las Vegas"),
		mk("us-east1", "Moncks Corner"),
		mk("us-east4", "Ashburn"),
		mk("us-central1", "Council Bluffs"),
		mk("europe-west1", "St. Ghislain"),
	}
}
