// Package shaper rate-limits net.Conn traffic with a token bucket, standing
// in for the Linux tc configuration the paper applied to its measurement
// VMs (1 Gbps downlink / 100 Mbps uplink, §3.2). Wrapping a connection used
// by the real speed test protocols reproduces the capped-throughput
// behaviour of the shaped NIC on loopback.
package shaper

import (
	"net"
	"sync"
	"time"
)

// Bucket is a token bucket: tokens accrue at Rate bytes/second up to Burst
// bytes. The zero value is invalid; use NewBucket.
type Bucket struct {
	mu     sync.Mutex
	rate   float64 // bytes per second
	burst  float64 // max accumulated bytes
	tokens float64
	last   time.Time
	now    func() time.Time
	sleep  func(time.Duration)
}

// NewBucket creates a bucket. rateMbps <= 0 means unlimited. burstBytes <= 0
// defaults to 64 KiB or one 50 ms window at the rate, whichever is larger.
func NewBucket(rateMbps float64, burstBytes int) *Bucket {
	b := &Bucket{
		now:   time.Now,
		sleep: time.Sleep,
	}
	if rateMbps > 0 {
		b.rate = rateMbps * 1e6 / 8
		burst := float64(burstBytes)
		if burst <= 0 {
			burst = b.rate * 0.05
			if burst < 64<<10 {
				burst = 64 << 10
			}
		}
		b.burst = burst
		b.tokens = burst
	}
	return b
}

// Unlimited reports whether the bucket imposes no limit.
func (b *Bucket) Unlimited() bool { return b.rate <= 0 }

// Wait blocks until n bytes of tokens are available and consumes them.
// Requests larger than the burst are split internally.
func (b *Bucket) Wait(n int) {
	if b.Unlimited() || n <= 0 {
		return
	}
	for n > 0 {
		chunk := n
		if float64(chunk) > b.burst {
			chunk = int(b.burst)
		}
		if d := b.reserve(chunk); d > 0 {
			b.sleep(d)
		}
		n -= chunk
	}
}

// reserve consumes chunk tokens (going negative) and returns how long the
// caller must wait for the balance to become non-negative.
func (b *Bucket) reserve(chunk int) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	b.tokens -= float64(chunk)
	if b.tokens >= 0 {
		return 0
	}
	return time.Duration(-b.tokens / b.rate * float64(time.Second))
}

// Options configures a shaped connection.
type Options struct {
	// ReadMbps / WriteMbps cap the two directions; <= 0 leaves a
	// direction unlimited.
	ReadMbps  float64
	WriteMbps float64
	// BurstBytes overrides the bucket burst size.
	BurstBytes int
	// Latency is added once before the first read delivers data,
	// approximating connection RTT. (tc itself shapes rate only; CLASP's
	// latency comes from the network, so this is off by default.)
	Latency time.Duration
}

// Conn is a rate-limited net.Conn.
type Conn struct {
	net.Conn
	rd, wr    *Bucket
	latency   time.Duration
	firstRead sync.Once
}

// NewConn wraps c with token-bucket shaping.
func NewConn(c net.Conn, opts Options) *Conn {
	return &Conn{
		Conn:    c,
		rd:      NewBucket(opts.ReadMbps, opts.BurstBytes),
		wr:      NewBucket(opts.WriteMbps, opts.BurstBytes),
		latency: opts.Latency,
	}
}

// Read implements net.Conn, pacing consumption at the read rate.
func (c *Conn) Read(p []byte) (int, error) {
	c.firstRead.Do(func() {
		if c.latency > 0 {
			time.Sleep(c.latency)
		}
	})
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.rd.Wait(n)
	}
	return n, err
}

// Write implements net.Conn, pacing output at the write rate.
func (c *Conn) Write(p []byte) (int, error) {
	// Pace before sending so the receiver never sees a burst above the
	// configured rate.
	c.wr.Wait(len(p))
	return c.Conn.Write(p)
}

// Listener wraps an accepting listener so every connection is shaped.
type Listener struct {
	net.Listener
	Opts Options
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return NewConn(c, l.Opts), nil
}
