package shaper

import (
	"io"
	"net"
	"testing"
	"time"
)

// fakeClock drives a bucket deterministically.
type fakeClock struct {
	t     time.Time
	slept time.Duration
}

func newFakeBucket(rateMbps float64, burst int) (*Bucket, *fakeClock) {
	fc := &fakeClock{t: time.Unix(0, 0)}
	b := NewBucket(rateMbps, burst)
	b.now = func() time.Time { return fc.t }
	b.sleep = func(d time.Duration) {
		fc.slept += d
		fc.t = fc.t.Add(d)
	}
	return b, fc
}

func TestBucketUnlimited(t *testing.T) {
	b, fc := newFakeBucket(0, 0)
	if !b.Unlimited() {
		t.Fatal("rate 0 should be unlimited")
	}
	b.Wait(1 << 30)
	if fc.slept != 0 {
		t.Errorf("unlimited bucket slept %v", fc.slept)
	}
}

func TestBucketRateEnforced(t *testing.T) {
	// 8 Mbps = 1 MB/s. Waiting for 2 MB beyond the burst must take ~2 s.
	b, fc := newFakeBucket(8, 1024)
	b.Wait(2_000_000 + 1024)
	got := fc.slept.Seconds()
	if got < 1.8 || got > 2.2 {
		t.Errorf("slept %.2fs for 2MB at 1MB/s, want ~2s", got)
	}
}

func TestBucketBurstFreeOfCharge(t *testing.T) {
	b, fc := newFakeBucket(8, 100000)
	b.Wait(100000) // exactly the initial burst
	if fc.slept != 0 {
		t.Errorf("burst-sized request slept %v", fc.slept)
	}
	// The next byte must wait.
	b.Wait(1000)
	if fc.slept == 0 {
		t.Error("post-burst request did not wait")
	}
}

func TestBucketRefillsOverTime(t *testing.T) {
	b, fc := newFakeBucket(8, 10000)
	b.Wait(10000)
	// Advance one second: 1 MB of tokens accrue (capped at burst 10 KB).
	fc.t = fc.t.Add(time.Second)
	before := fc.slept
	b.Wait(10000)
	if fc.slept != before {
		t.Errorf("refilled bucket slept %v", fc.slept-before)
	}
}

func TestBucketLargeRequestSplit(t *testing.T) {
	b, fc := newFakeBucket(80, 10000)
	// 1 MB at 10 MB/s: ~0.1 s even though burst is tiny.
	b.Wait(1 << 20)
	got := fc.slept.Seconds()
	if got < 0.08 || got > 0.15 {
		t.Errorf("slept %.3fs, want ~0.105", got)
	}
}

func TestBucketZeroAndNegative(t *testing.T) {
	b, fc := newFakeBucket(8, 1000)
	b.Wait(0)
	b.Wait(-5)
	if fc.slept != 0 {
		t.Errorf("no-op waits slept %v", fc.slept)
	}
}

// pipeConn builds a shaped loopback TCP pair.
func pipeConn(t *testing.T, opts Options) (client net.Conn, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			close(done)
			return
		}
		done <- c
	}()
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	s, ok := <-done
	if !ok {
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { c.Close(); s.Close() })
	return NewConn(c, opts), s
}

func TestShapedWriteThroughput(t *testing.T) {
	// 80 Mbps write cap; sending 2 MB should take ~0.2s (±generous CI slack).
	client, server := pipeConn(t, Options{WriteMbps: 80, BurstBytes: 64 << 10})
	go func() {
		io.Copy(io.Discard, server)
	}()
	payload := make([]byte, 256<<10)
	start := time.Now()
	total := 0
	for total < 2<<20 {
		n, err := client.Write(payload)
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	elapsed := time.Since(start).Seconds()
	mbps := float64(total) * 8 / 1e6 / elapsed
	if mbps > 110 {
		t.Errorf("shaped write ran at %.0f Mbps, cap 80", mbps)
	}
	if mbps < 40 {
		t.Errorf("shaped write ran at %.0f Mbps, suspiciously slow", mbps)
	}
}

func TestShapedReadThroughput(t *testing.T) {
	client, server := pipeConn(t, Options{ReadMbps: 80, BurstBytes: 64 << 10})
	go func() {
		payload := make([]byte, 256<<10)
		for i := 0; i < 10; i++ {
			if _, err := server.Write(payload); err != nil {
				return
			}
		}
		server.Close()
	}()
	start := time.Now()
	n, _ := io.Copy(io.Discard, client)
	elapsed := time.Since(start).Seconds()
	mbps := float64(n) * 8 / 1e6 / elapsed
	if mbps > 115 {
		t.Errorf("shaped read ran at %.0f Mbps, cap 80", mbps)
	}
}

func TestLatencyOption(t *testing.T) {
	client, server := pipeConn(t, Options{Latency: 80 * time.Millisecond})
	go server.Write([]byte("pong"))
	start := time.Now()
	buf := make([]byte, 4)
	if _, err := io.ReadFull(client, buf); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 75*time.Millisecond {
		t.Errorf("first read returned after %v, want >= 80ms", d)
	}
	// Second read has no added latency.
	go server.Write([]byte("pong"))
	start = time.Now()
	if _, err := io.ReadFull(client, buf); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 50*time.Millisecond {
		t.Errorf("second read took %v", d)
	}
}

func TestListenerWrapsConns(t *testing.T) {
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := &Listener{Listener: raw, Opts: Options{WriteMbps: 50}}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		if _, ok := c.(*Conn); !ok {
			t.Error("accepted conn not shaped")
		}
		c.Close()
	}()
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
}
