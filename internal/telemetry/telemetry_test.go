package telemetry

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/clasp-measurement/clasp/internal/obs"
	"github.com/clasp-measurement/clasp/internal/tsdb"
)

// TestPipelineDeterministicSelfStore pins the exact self-store contents
// after two scrape cycles under a fake clock: the satellite-required
// deterministic scraper test, at the pipeline level where the real tsdb
// store is the sink.
func TestPipelineDeterministicSelfStore(t *testing.T) {
	reg := obs.NewRegistry()
	reg.SetEnabled(true)
	c := reg.Counter("serve_total", "route", "/metrics")
	h := reg.Histogram("serve_ns", "route", "/metrics")

	now := time.Unix(2000, 0).UTC()
	p := NewPipeline(PipelineConfig{Registry: reg, Now: func() time.Time { return now }})

	c.Add(4)
	h.Observe(3) // le=4
	if err := p.Cycle(); err != nil {
		t.Fatalf("cycle 1: %v", err)
	}
	now = now.Add(5 * time.Second)
	c.Add(6) // 6 over 5s = 1.2/s
	h.Observe(100)
	h.Observe(90) // both le=128
	if err := p.Cycle(); err != nil {
		t.Fatalf("cycle 2: %v", err)
	}

	// Counter series: {value, rate} at both instants.
	got := p.Store.Query("serve_total", nil, time.Time{}, time.Time{})
	if len(got) != 1 {
		t.Fatalf("serve_total series = %d, want 1", len(got))
	}
	wantPoints := []struct {
		sec   int64
		value float64
		rate  float64
	}{{2000, 4, 0}, {2005, 10, 1.2}}
	if len(got[0].Points) != len(wantPoints) {
		t.Fatalf("serve_total points = %d, want %d", len(got[0].Points), len(wantPoints))
	}
	if got[0].Tags["route"] != "/metrics" {
		t.Fatalf("serve_total tags = %v", got[0].Tags)
	}
	for i, w := range wantPoints {
		pt := got[0].Points[i]
		if pt.Time.Unix() != w.sec || pt.Fields["value"] != w.value || pt.Fields["rate"] != w.rate {
			t.Fatalf("serve_total point %d = %v %v, want t=%d value=%g rate=%g", i, pt.Time.Unix(), pt.Fields, w.sec, w.value, w.rate)
		}
	}

	// Histogram family series: count/sum/rate.
	fam := p.Store.Query("serve_ns", nil, time.Time{}, time.Time{})
	if len(fam) != 1 || len(fam[0].Points) != 2 {
		t.Fatalf("serve_ns series/points = %d", len(fam))
	}
	p1, p2 := fam[0].Points[0], fam[0].Points[1]
	if p1.Fields["count"] != 1 || p1.Fields["sum"] != 3 || p1.Fields["rate"] != 0 {
		t.Fatalf("serve_ns point 1 = %v", p1.Fields)
	}
	if p2.Fields["count"] != 3 || p2.Fields["sum"] != 193 || p2.Fields["rate"] != 0.4 {
		t.Fatalf("serve_ns point 2 = %v", p2.Fields)
	}

	// Bucket series: le=4 both cycles, le=128 only the second.
	buckets := p.Store.Query("serve_ns_bucket", nil, time.Time{}, time.Time{})
	if len(buckets) != 2 {
		t.Fatalf("serve_ns_bucket series = %d, want 2 (le=4, le=128)", len(buckets))
	}
	for _, sr := range buckets {
		switch sr.Tags["le"] {
		case "4":
			if len(sr.Points) != 2 || sr.Points[0].Fields["cum"] != 1 || sr.Points[1].Fields["cum"] != 1 {
				t.Fatalf("le=4 points = %+v", sr.Points)
			}
		case "128":
			if len(sr.Points) != 1 || sr.Points[0].Fields["cum"] != 3 {
				t.Fatalf("le=128 points = %+v", sr.Points)
			}
		default:
			t.Fatalf("unexpected bucket le=%q", sr.Tags["le"])
		}
		if sr.Tags["route"] != "/metrics" {
			t.Fatalf("bucket tags = %v", sr.Tags)
		}
	}
}

// TestScrapedSeriesBlockFileRoundTrip is the acceptance-criterion pin:
// scraped self-telemetry series survive Store.WriteBlocks → OpenBlockFile
// with identical contents.
func TestScrapedSeriesBlockFileRoundTrip(t *testing.T) {
	reg := obs.NewRegistry()
	reg.SetEnabled(true)
	c := reg.Counter("rt_total", "shard", "3")
	h := reg.Histogram("rt_ns")

	now := time.Unix(3000, 0).UTC()
	p := NewPipeline(PipelineConfig{Registry: reg, Now: func() time.Time { return now }})
	// Enough cycles to cross the seal threshold on at least one series.
	p.Store.SetSealThreshold(16)
	for i := 0; i < 50; i++ {
		c.Add(uint64(i))
		h.Observe(float64(i%7 + 1))
		if err := p.Cycle(); err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		now = now.Add(time.Second)
	}
	if blocks, _, _ := p.Store.BlockStats(); blocks == 0 {
		t.Fatal("no series sealed; round-trip would not cover the block path")
	}

	path := filepath.Join(t.TempDir(), "self.blk")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.WriteBlocks(f); err != nil {
		t.Fatalf("WriteBlocks: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	bf, err := tsdb.OpenBlockFile(path)
	if err != nil {
		t.Fatalf("OpenBlockFile: %v", err)
	}
	defer bf.Close()

	for _, m := range []string{"rt_total", "rt_ns", "rt_ns_bucket"} {
		want := p.Store.Query(m, nil, time.Time{}, time.Time{})
		got, err := bf.Query(m, nil, time.Time{}, time.Time{})
		if err != nil {
			t.Fatalf("block query %s: %v", m, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d series from file, want %d", m, len(got), len(want))
		}
		for i := range want {
			ws, gs := want[i], got[i]
			if len(gs.Points) != len(ws.Points) {
				t.Fatalf("%s series %d: %d points, want %d", m, i, len(gs.Points), len(ws.Points))
			}
			for j := range ws.Points {
				wp, gp := ws.Points[j], gs.Points[j]
				if !wp.Time.Equal(gp.Time) {
					t.Fatalf("%s[%d][%d]: time %v != %v", m, i, j, gp.Time, wp.Time)
				}
				if len(wp.Fields) != len(gp.Fields) {
					t.Fatalf("%s[%d][%d]: fields %v != %v", m, i, j, gp.Fields, wp.Fields)
				}
				for k, wv := range wp.Fields {
					if gv := gp.Fields[k]; gv != wv {
						t.Fatalf("%s[%d][%d].%s: %g != %g", m, i, j, k, gv, wv)
					}
				}
			}
		}
	}
}

func TestPipelineRetention(t *testing.T) {
	reg := obs.NewRegistry()
	reg.SetEnabled(true)
	c := reg.Counter("old_total")

	now := time.Unix(5000, 0).UTC()
	p := NewPipeline(PipelineConfig{Registry: reg, Retention: 10 * time.Second, Now: func() time.Time { return now }})
	for i := 0; i < 5; i++ {
		c.Inc()
		if err := p.Cycle(); err != nil {
			t.Fatal(err)
		}
		now = now.Add(5 * time.Second)
	}
	// Cycles at t=5000..5020; final retention pass ran at t=5020 with
	// cutoff 5010, so points at 5000 and 5005 must be gone.
	got := p.Store.Query("old_total", nil, time.Time{}, time.Time{})
	if len(got) != 1 {
		t.Fatalf("series = %d, want 1", len(got))
	}
	if len(got[0].Points) != 3 {
		t.Fatalf("points after retention = %d, want 3", len(got[0].Points))
	}
	if first := got[0].Points[0].Time.Unix(); first != 5010 {
		t.Fatalf("oldest surviving point at %d, want 5010", first)
	}
}

func TestHistogramWindowsAndQuantile(t *testing.T) {
	st := tsdb.NewStore()
	ins := func(le string, sec int64, cum float64) {
		if err := st.Insert("lat_ns_bucket", tsdb.Tags{"route": "/x", "le": le}, time.Unix(sec, 0).UTC(), map[string]float64{"cum": cum}); err != nil {
			t.Fatal(err)
		}
	}
	// t=100: 10 obs <= 8, 20 obs total (<= 64).
	ins("8", 100, 10)
	ins("64", 100, 20)
	// t=200: 30 <= 8, 60 <= 64, 70 total <= 128 (le=128 first appears here).
	ins("8", 200, 30)
	ins("64", 200, 60)
	ins("128", 200, 70)

	// Window (100, 200]: deltas 20/40/50 — le=128's baseline must inherit
	// the lower buckets' running start (20), not zero.
	ws := HistogramWindows(st, "lat_ns", nil, time.Unix(150, 0), time.Unix(200, 0))
	if len(ws) != 1 {
		t.Fatalf("windows = %d, want 1", len(ws))
	}
	w := ws[0]
	if w.Tags["route"] != "/x" {
		t.Fatalf("window tags = %v", w.Tags)
	}
	if w.Count != 50 {
		t.Fatalf("window count = %d, want 50", w.Count)
	}
	wantDeltas := []BucketDelta{{LE: 8, Count: 20}, {LE: 64, Count: 40}, {LE: 128, Count: 50}}
	if len(w.Buckets) != len(wantDeltas) {
		t.Fatalf("buckets = %+v, want %+v", w.Buckets, wantDeltas)
	}
	for i, wd := range wantDeltas {
		if w.Buckets[i] != wd {
			t.Fatalf("bucket %d = %+v, want %+v", i, w.Buckets[i], wd)
		}
	}

	// Quantiles: median rank 25 falls in (8, 64] with 20 in-bucket below
	// it of 20 → 8 + 56 * (25-20)/20 = 22.
	if got := w.Quantile(0.5); math.Abs(got-22) > 1e-9 {
		t.Fatalf("p50 = %g, want 22", got)
	}
	// p10 rank 5 inside the first bucket: 0 + 8 * 5/20 = 2.
	if got := w.Quantile(0.1); math.Abs(got-2) > 1e-9 {
		t.Fatalf("p10 = %g, want 2", got)
	}
	if got := w.Quantile(1); math.Abs(got-128) > 1e-9 {
		t.Fatalf("p100 = %g, want 128", got)
	}

	// Unbounded window covers everything: count 70.
	all := HistogramWindows(st, "lat_ns", nil, time.Time{}, time.Time{})
	if len(all) != 1 || all[0].Count != 70 {
		t.Fatalf("unbounded window = %+v", all)
	}

	// Empty window: NaN quantile.
	empty := HistogramWindow{}
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Fatal("empty window quantile should be NaN")
	}

	// Overflow-bucket rank returns the highest finite bound.
	inf := HistogramWindow{Count: 10, Buckets: []BucketDelta{{LE: 4, Count: 5}, {LE: math.Inf(1), Count: 10}}}
	if got := inf.Quantile(0.99); got != 4 {
		t.Fatalf("overflow quantile = %g, want 4", got)
	}
}

func TestBuildProgress(t *testing.T) {
	reg := obs.NewRegistry()
	reg.SetEnabled(true)
	reg.Counter("campaign_tests_scheduled_total", "region", "us-west1").Add(100)
	reg.Counter("campaign_tests_completed_total", "region", "us-west1").Add(60)
	reg.Counter("campaign_tests_dropped_total", "region", "us-west1").Add(2)
	reg.Gauge("campaign_hours_total", "region", "us-west1").Set(24)
	reg.Gauge("campaign_hours_done", "region", "us-west1").Set(6)
	reg.Gauge("campaign_eta_seconds", "region", "us-west1").Set(90)
	reg.Gauge("campaign_breaker_state", "region", "us-west1").Set(2)
	reg.Gauge("campaign_phase_seconds_total", "region", "us-west1", "phase", "measure").Set(1.5)
	reg.Counter("campaign_tests_scheduled_total", "region", "eu-west4").Add(10)
	reg.Counter("unrelated_total").Add(5)

	got := BuildProgress(reg)
	if len(got.Regions) != 2 {
		t.Fatalf("regions = %d, want 2", len(got.Regions))
	}
	if got.Regions[0].Region != "eu-west4" || got.Regions[1].Region != "us-west1" {
		t.Fatalf("region order = %s, %s", got.Regions[0].Region, got.Regions[1].Region)
	}
	us := got.Regions[1]
	if us.Scheduled != 100 || us.Completed != 60 || us.Dropped != 2 {
		t.Fatalf("us-west1 counts = %+v", us)
	}
	if us.HoursTotal != 24 || us.HoursDone != 6 || us.ETASeconds != 90 {
		t.Fatalf("us-west1 progress = %+v", us)
	}
	if us.Breaker != "open" {
		t.Fatalf("breaker = %q, want open", us.Breaker)
	}
	if us.PhaseSecs["measure"] != 1.5 {
		t.Fatalf("phase seconds = %v", us.PhaseSecs)
	}
	if got.Regions[0].Breaker != "closed" {
		t.Fatalf("eu-west4 breaker = %q, want closed default", got.Regions[0].Breaker)
	}
	if len(got.Commands) != 0 {
		t.Fatalf("single-campaign snapshot grew a commands section: %+v", got.Commands)
	}
}

// TestBuildProgressCommands: command-labelled gauges (published by
// core.CommandScheduler for report all / costs) aggregate into the
// whole-command section, separate from and alongside the region series.
func TestBuildProgressCommands(t *testing.T) {
	reg := obs.NewRegistry()
	reg.SetEnabled(true)
	reg.Gauge("command_campaigns_total", "command", "report-all").Set(9)
	reg.Gauge("command_campaigns_done", "command", "report-all").Set(3)
	reg.Gauge("command_hours_total", "command", "report-all").Set(432)
	reg.Gauge("command_hours_done", "command", "report-all").Set(150)
	reg.Gauge("command_eta_seconds", "command", "report-all").Set(42)
	reg.Gauge("command_campaigns_total", "command", "costs").Set(6)
	reg.Gauge("campaign_hours_total", "region", "us-west1").Set(48)

	got := BuildProgress(reg)
	if len(got.Commands) != 2 {
		t.Fatalf("commands = %+v, want costs and report-all", got.Commands)
	}
	if got.Commands[0].Command != "costs" || got.Commands[1].Command != "report-all" {
		t.Fatalf("command order = %s, %s", got.Commands[0].Command, got.Commands[1].Command)
	}
	ra := got.Commands[1]
	if ra.CampaignsTotal != 9 || ra.CampaignsDone != 3 || ra.HoursTotal != 432 || ra.HoursDone != 150 || ra.ETASeconds != 42 {
		t.Fatalf("report-all progress = %+v", ra)
	}
	// The region series still builds independently.
	if len(got.Regions) != 1 || got.Regions[0].HoursTotal != 48 {
		t.Fatalf("regions = %+v, want the one us-west1 entry", got.Regions)
	}
}

func TestDropBeforeKeepsHandles(t *testing.T) {
	st := tsdb.NewStore()
	h, err := st.Handle("m", tsdb.Tags{"k": "v"})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		if err := h.Insert(time.Unix(i, 0).UTC(), map[string]float64{"f": float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if n := st.DropBefore(time.Unix(5, 0).UTC()); n != 5 {
		t.Fatalf("dropped %d, want 5", n)
	}
	// Handle keeps working after retention emptied part of its series.
	if err := h.Insert(time.Unix(20, 0).UTC(), map[string]float64{"f": 20}); err != nil {
		t.Fatal(err)
	}
	got := st.Query("m", nil, time.Time{}, time.Time{})
	if len(got) != 1 || len(got[0].Points) != 6 {
		t.Fatalf("after drop: %+v", got)
	}
	if got[0].Points[0].Time.Unix() != 5 {
		t.Fatalf("oldest = %d, want 5", got[0].Points[0].Time.Unix())
	}

	// Drop everything — the series survives as an empty shell.
	st.DropBefore(time.Unix(100, 0).UTC())
	if got := st.Query("m", nil, time.Time{}, time.Time{}); len(got) != 0 {
		t.Fatalf("expected no queryable points, got %+v", got)
	}
	if err := h.Insert(time.Unix(200, 0).UTC(), map[string]float64{"f": 1}); err != nil {
		t.Fatal(err)
	}
	if got := st.Query("m", nil, time.Time{}, time.Time{}); len(got) != 1 || len(got[0].Points) != 1 {
		t.Fatalf("handle insert after full drop lost: %+v", got)
	}
}

// TestDropBeforeSealedBlocks pins whole-block retention granularity: only
// blocks entirely before the cutoff are dropped.
func TestDropBeforeSealedBlocks(t *testing.T) {
	st := tsdb.NewStore()
	st.SetSealThreshold(4)
	for i := int64(0); i < 20; i++ {
		if err := st.Insert("m", nil, time.Unix(i, 0).UTC(), map[string]float64{"f": float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	blocksBefore, pointsBefore, _ := st.BlockStats()
	if blocksBefore == 0 {
		t.Fatal("expected sealed blocks")
	}
	dropped := st.DropBefore(time.Unix(10, 0).UTC())
	blocksAfter, pointsAfter, _ := st.BlockStats()
	if blocksAfter >= blocksBefore {
		t.Fatalf("blocks %d -> %d, expected a drop", blocksBefore, blocksAfter)
	}
	if pointsBefore-pointsAfter != dropped {
		// All dropped points were sealed here (cutoff 10 < first tail point).
		t.Fatalf("block points dropped %d, DropBefore reported %d", pointsBefore-pointsAfter, dropped)
	}
	// Remaining data is exactly the suffix from the first surviving block.
	got := st.Query("m", nil, time.Time{}, time.Time{})
	if len(got) != 1 {
		t.Fatalf("series = %d", len(got))
	}
	first := got[0].Points[0].Time.Unix()
	if first > 10 {
		t.Fatalf("first surviving point %d — dropped a block overlapping the cutoff", first)
	}
	for i := 1; i < len(got[0].Points); i++ {
		if got[0].Points[i].Time.Unix() != got[0].Points[i-1].Time.Unix()+1 {
			t.Fatal("gap inside surviving points")
		}
	}
}

func TestParseHistoryTime(t *testing.T) {
	if got, err := parseHistoryTime(""); err != nil || !got.IsZero() {
		t.Fatalf("empty = %v, %v", got, err)
	}
	if got, err := parseHistoryTime("2026-08-08T10:00:00Z"); err != nil || got.Unix() != 1786183200 {
		t.Fatalf("rfc3339 = %v (%d), %v", got, got.Unix(), err)
	}
	if got, err := parseHistoryTime("12345"); err != nil || got.Unix() != 12345 {
		t.Fatalf("unix = %v, %v", got, err)
	}
	if _, err := parseHistoryTime("yesterday"); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestPipelineStartStop(t *testing.T) {
	reg := obs.NewRegistry()
	reg.SetEnabled(true)
	reg.Counter("tick_total").Inc()
	p := NewPipeline(PipelineConfig{Registry: reg, Interval: time.Millisecond})
	p.Start()
	deadline := time.Now().Add(5 * time.Second)
	for p.Scraper.Stats().Scrapes == 0 {
		if time.Now().After(deadline) {
			t.Fatal("pipeline never scraped")
		}
		time.Sleep(time.Millisecond)
	}
	p.Stop()
	p.Stop()
	if got := p.Store.Query("tick_total", nil, time.Time{}, time.Time{}); len(got) != 1 {
		t.Fatalf("self-store series = %d, want 1", len(got))
	}
}

func TestStoreAppenderRejectsBadIdent(t *testing.T) {
	st := tsdb.NewStore()
	app := StoreAppender{Store: st}
	err := app.Append("bad measurement", nil, time.Unix(0, 0), map[string]float64{"f": 1})
	if err == nil {
		t.Fatal("space in measurement accepted")
	}
	if err := app.Append("ok", map[string]string{"le": "+Inf"}, time.Unix(0, 0), map[string]float64{"f": 1}); err != nil {
		t.Fatalf("+Inf tag value rejected: %v", err)
	}
}
