package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/clasp-measurement/clasp/internal/obs"
	"github.com/clasp-measurement/clasp/internal/tsdb"
)

func TestHTTPMetricsRoutesAndStatuses(t *testing.T) {
	reg := obs.NewRegistry()
	reg.SetEnabled(true)
	m := NewHTTPMetrics(reg, "d_ns", []string{"/servers.json", "/speedtest/", "/metrics"})

	mux := http.NewServeMux()
	mux.HandleFunc("/servers.json", func(w http.ResponseWriter, r *http.Request) { fmt.Fprint(w, "ok") })
	mux.HandleFunc("/speedtest/latency", func(w http.ResponseWriter, r *http.Request) { fmt.Fprint(w, "ok") })
	mux.HandleFunc("/missing", func(w http.ResponseWriter, r *http.Request) { http.NotFound(w, r) })
	srv := httptest.NewServer(m.Wrap(mux))
	defer srv.Close()

	for _, path := range []string{"/servers.json", "/speedtest/latency", "/speedtest/upload", "/missing", "/also-missing"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	want := map[string]uint64{
		`d_ns{route="/servers.json",status="200"}`: 1,
		`d_ns{route="/speedtest/",status="200"}`:   1, // latency, exact-ish
		`d_ns{route="/speedtest/",status="404"}`:   1, // upload has no handler
		`d_ns{route="other",status="404"}`:         2, // /missing and /also-missing
	}
	for _, s := range reg.Samples() {
		if s.Kind != obs.KindHistogram {
			continue
		}
		if n, ok := want[s.ID]; ok {
			if s.Count != n {
				t.Errorf("%s count = %d, want %d", s.ID, s.Count, n)
			}
			delete(want, s.ID)
		} else {
			t.Errorf("unexpected series %s (count %d)", s.ID, s.Count)
		}
	}
	for id := range want {
		t.Errorf("missing series %s", id)
	}
}

// TestHTTPMetricsHijack pins that the middleware's recorder forwards
// http.Hijacker — without it, wsock.Upgrade (ndt7's WebSocket path) fails
// on every instrumented route — and that a hijacked connection records as
// status 101.
func TestHTTPMetricsHijack(t *testing.T) {
	reg := obs.NewRegistry()
	reg.SetEnabled(true)
	m := NewHTTPMetrics(reg, "d_ns", []string{"/ws"})

	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hj, ok := w.(http.Hijacker)
		if !ok {
			t.Error("middleware hid http.Hijacker from the handler")
			http.Error(w, "no hijack", http.StatusInternalServerError)
			return
		}
		conn, bw, err := hj.Hijack()
		if err != nil {
			t.Errorf("hijack: %v", err)
			return
		}
		defer conn.Close()
		_, _ = bw.WriteString("HTTP/1.1 101 Switching Protocols\r\n\r\n")
		_ = bw.Flush()
	})
	srv := httptest.NewServer(m.Wrap(handler))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/ws")
	if err == nil {
		resp.Body.Close()
	}

	found := false
	for _, s := range reg.Samples() {
		if s.ID == `d_ns{route="/ws",status="101"}` {
			found = true
			if s.Count != 1 {
				t.Fatalf("hijack series count = %d, want 1", s.Count)
			}
		}
	}
	if !found {
		t.Fatal("no status=101 series recorded for the hijacked request")
	}
}

func TestHistoryHandler(t *testing.T) {
	st := tsdb.NewStore()
	for i := int64(0); i < 5; i++ {
		if err := st.Insert("m_total", tsdb.Tags{"route": "/a"}, time.Unix(100+i, 0).UTC(), map[string]float64{"value": float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Insert("m_total", tsdb.Tags{"route": "/b"}, time.Unix(102, 0).UTC(), map[string]float64{"value": 9}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(&HistoryHandler{Store: st})
	defer srv.Close()

	get := func(query string) (*http.Response, HistoryResponse) {
		resp, err := http.Get(srv.URL + "/debug/obs/history?" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var hr HistoryResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
				t.Fatalf("decode: %v", err)
			}
		}
		return resp, hr
	}

	// Missing measurement → 400 with a JSON error body.
	resp, _ := get("")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("no measurement: status %d, want 400", resp.StatusCode)
	}

	// Full fetch: both series, window-inclusive `to`.
	_, hr := get("measurement=m_total&from=100&to=104")
	if len(hr.Series) != 2 {
		t.Fatalf("series = %d, want 2", len(hr.Series))
	}
	var a, b *HistorySeries
	for i := range hr.Series {
		switch hr.Series[i].Tags["route"] {
		case "/a":
			a = &hr.Series[i]
		case "/b":
			b = &hr.Series[i]
		}
	}
	if a == nil || b == nil {
		t.Fatalf("missing series: %+v", hr.Series)
	}
	if len(a.Points) != 5 {
		t.Fatalf("/a points = %d, want 5 (to must be inclusive)", len(a.Points))
	}
	if len(b.Points) != 1 || b.Points[0].Fields["value"] != 9 {
		t.Fatalf("/b points = %+v", b.Points)
	}

	// Tag filter.
	_, hr = get("measurement=m_total&tag.route=%2Fb")
	if len(hr.Series) != 1 || hr.Series[0].Tags["route"] != "/b" {
		t.Fatalf("tag filter: %+v", hr.Series)
	}

	// Windowing cuts the early points.
	_, hr = get("measurement=m_total&from=103&tag.route=%2Fa")
	if len(hr.Series) != 1 || len(hr.Series[0].Points) != 2 {
		t.Fatalf("windowed: %+v", hr.Series)
	}

	// ToSeries round-trip keeps timestamps and fields.
	series := hr.ToSeries()
	if len(series) != 1 || series[0].Points[0].Time.Unix() != 103 {
		t.Fatalf("ToSeries: %+v", series)
	}

	// Unknown measurement: empty but well-formed.
	resp, hr = get("measurement=nope_total")
	if resp.StatusCode != http.StatusOK || hr.Series == nil || len(hr.Series) != 0 {
		t.Fatalf("unknown measurement: status %d, series %+v", resp.StatusCode, hr.Series)
	}

	// Bad time → 400.
	resp, _ = get("measurement=m_total&from=tuesday")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad from: status %d, want 400", resp.StatusCode)
	}
}

func TestIntrospectionEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	reg.SetEnabled(true)
	reg.Counter("campaign_tests_scheduled_total", "region", "r1").Add(3)
	st := tsdb.NewStore()
	if err := st.Insert("x_total", nil, time.Unix(1, 0).UTC(), map[string]float64{"value": 1}); err != nil {
		t.Fatal(err)
	}

	d, err := StartDebug("127.0.0.1:0", Introspection{Registry: reg, History: st, Progress: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	base := "http://" + d.Addr().String()

	body := func(path string) (int, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if code, b := body("/metrics"); code != 200 || !strings.Contains(b, `campaign_tests_scheduled_total{region="r1"} 3`) {
		t.Fatalf("/metrics: %d %q", code, b)
	}
	if code, b := body("/progress"); code != 200 || !strings.Contains(b, `"region": "r1"`) {
		t.Fatalf("/progress: %d %q", code, b)
	}
	if code, b := body("/debug/obs/history?measurement=x_total"); code != 200 || !strings.Contains(b, `"series"`) {
		t.Fatalf("/debug/obs/history: %d %q", code, b)
	}
	// pprof index answers; that's enough to know the handlers are wired.
	if code, _ := body("/debug/pprof/"); code != 200 {
		t.Fatalf("/debug/pprof/: %d", code)
	}
}
