package telemetry

import (
	"math"
	"sort"
	"strconv"
	"time"

	"github.com/clasp-measurement/clasp/internal/tsdb"
)

// BucketDelta is one le bucket of a windowed histogram: the cumulative
// count of observations <= LE that fell inside the window.
type BucketDelta struct {
	LE    float64
	Count uint64
}

// HistogramWindow is one histogram series' activity within a time window,
// reconstructed from scraped cumulative bucket series: Buckets are
// cumulative and ascending by LE, Count is the total observations in the
// window.
type HistogramWindow struct {
	Tags    tsdb.Tags // family tags, "le" removed
	Buckets []BucketDelta
	Count   uint64
}

// Quantile estimates the q-th quantile (q in [0,1]) of the window with
// Prometheus histogram_quantile semantics: find the bucket the rank falls
// in and interpolate linearly between its bounds (the lower bound of the
// first bucket is 0; a rank landing in the overflow bucket returns the
// highest finite bound). Returns NaN for an empty window.
func (w HistogramWindow) Quantile(q float64) float64 {
	if w.Count == 0 || len(w.Buckets) == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(w.Count)
	var lower float64
	var prevCum uint64
	for _, b := range w.Buckets {
		if float64(b.Count) >= rank {
			if math.IsInf(b.LE, 1) {
				return lower // overflow bucket: best answer is its floor
			}
			in := b.Count - prevCum
			if in == 0 {
				return b.LE
			}
			return lower + (b.LE-lower)*(rank-float64(prevCum))/float64(in)
		}
		if !math.IsInf(b.LE, 1) {
			lower = b.LE
		}
		prevCum = b.Count
	}
	last := w.Buckets[len(w.Buckets)-1].LE
	if math.IsInf(last, 1) {
		return lower
	}
	return last
}

// HistogramWindows reconstructs the windowed histograms of one metric
// family from a store holding its scraped "<family>_bucket" series. match
// filters on family tags (never "le"); from/to bound the window, zero
// times meaning unbounded on that side.
func HistogramWindows(st *tsdb.Store, family string, match tsdb.Tags, from, to time.Time) []HistogramWindow {
	// Query everything up to the window's end: the baseline at `from` and
	// the end state at `to` are both "last cumulative value at or before
	// the boundary", which may predate the window itself.
	var end time.Time
	if !to.IsZero() {
		end = to.Add(time.Nanosecond) // Query's upper bound is exclusive
	}
	return WindowsFromSeries(st.Query(family+"_bucket", match, time.Time{}, end), from, to)
}

// WindowsFromSeries is HistogramWindows over already-fetched bucket series
// (e.g. decoded from a /debug/obs/history response). Each input series must
// carry an "le" tag and the scraped "cum" field; series without them are
// skipped. The series' points must already be bounded above by the window
// end — pass the same `to` used to fetch them.
func WindowsFromSeries(series []tsdb.Series, from, to time.Time) []HistogramWindow {
	type bucketState struct {
		le         float64
		start, end uint64 // cumulative values at the window edges
		haveStart  bool
	}
	groups := make(map[string][]bucketState)
	groupTags := make(map[string]tsdb.Tags)
	for _, sr := range series {
		leStr, ok := sr.Tags["le"]
		if !ok {
			continue
		}
		le, err := parseBound(leStr)
		if err != nil {
			continue
		}
		st := bucketState{le: le}
		for _, p := range sr.Points {
			if !to.IsZero() && p.Time.After(to) {
				continue
			}
			cum, ok := p.Fields["cum"]
			if !ok {
				continue
			}
			// Points are time-ordered, so the last survivor of each filter
			// wins: end is cum at the last point <= to, start is cum at the
			// last point strictly before `from`.
			st.end = uint64(cum)
			if !from.IsZero() && p.Time.Before(from) {
				st.start = uint64(cum)
				st.haveStart = true
			}
		}
		key := groupKey(sr.Tags)
		groups[key] = append(groups[key], st)
		if _, seen := groupTags[key]; !seen {
			t := make(tsdb.Tags, len(sr.Tags))
			for k, v := range sr.Tags {
				if k != "le" {
					t[k] = v
				}
			}
			groupTags[key] = t
		}
	}

	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	out := make([]HistogramWindow, 0, len(keys))
	for _, k := range keys {
		bs := groups[k]
		sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
		w := HistogramWindow{Tags: groupTags[k]}
		// Cumulative counts are monotone in le at any instant, but a bucket
		// first populated mid-window has no explicit baseline: its true
		// start value is the running maximum of the baselines below it.
		var runStart, runEnd uint64
		for _, b := range bs {
			if b.haveStart && b.start > runStart {
				runStart = b.start
			}
			if b.end > runEnd {
				runEnd = b.end
			}
			var delta uint64
			if runEnd > runStart {
				delta = runEnd - runStart
			}
			w.Buckets = append(w.Buckets, BucketDelta{LE: b.le, Count: delta})
		}
		if n := len(w.Buckets); n > 0 {
			w.Count = w.Buckets[n-1].Count
		}
		out = append(out, w)
	}
	return out
}

// groupKey renders a series' tags minus "le" in canonical sorted form.
func groupKey(tags tsdb.Tags) string {
	keys := make([]string, 0, len(tags))
	for k := range tags {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += "," + k + "=" + tags[k]
	}
	return out
}

// parseBound parses a scraped le tag value ("+Inf" or a decimal bound).
func parseBound(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}
