package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"github.com/clasp-measurement/clasp/internal/tsdb"
)

// HistoryResponse is the JSON shape served by HistoryHandler: the windowed
// contents of one measurement in the self-telemetry store.
type HistoryResponse struct {
	Measurement string          `json:"measurement"`
	FromNs      int64           `json:"from_ns,omitempty"`
	ToNs        int64           `json:"to_ns,omitempty"`
	Series      []HistorySeries `json:"series"`
}

// HistorySeries is one tagged series in a HistoryResponse.
type HistorySeries struct {
	Tags   map[string]string `json:"tags,omitempty"`
	Points []HistoryPoint    `json:"points"`
}

// HistoryPoint is one sample: unix-nanosecond timestamp plus fields.
type HistoryPoint struct {
	TimeNs int64              `json:"t"`
	Fields map[string]float64 `json:"fields"`
}

// ToSeries converts a decoded response back into tsdb series — the form
// WindowsFromSeries consumes, letting loadgen compute percentiles from the
// daemon's own scraped history.
func (h HistoryResponse) ToSeries() []tsdb.Series {
	out := make([]tsdb.Series, 0, len(h.Series))
	for _, s := range h.Series {
		sr := tsdb.Series{Measurement: h.Measurement, Tags: tsdb.Tags(s.Tags)}
		for _, p := range s.Points {
			sr.Points = append(sr.Points, tsdb.Point{Time: time.Unix(0, p.TimeNs).UTC(), Fields: p.Fields})
		}
		out = append(out, sr)
	}
	return out
}

// HistoryHandler serves GET /debug/obs/history over a self-telemetry
// store. Query parameters:
//
//	measurement  required; the scraped series family (e.g. "tsdb_inserts_total"
//	             or "speedtestd_http_request_duration_ns_bucket")
//	from, to     optional window bounds, RFC 3339 or integer unix seconds;
//	             `to` is inclusive (the handler widens the store's
//	             exclusive upper bound by 1ns)
//	last         optional duration (e.g. "5m") meaning from = now - last;
//	             overrides `from`
//	tag.<k>=<v>  optional tag filters, all must match
//
// Responses are always JSON; errors use status 400 with {"error": ...}.
type HistoryHandler struct {
	Store *tsdb.Store
	// Now is the clock behind `last`; defaults to time.Now.
	Now func() time.Time
}

func (h *HistoryHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	q := r.URL.Query()
	measurement := q.Get("measurement")
	if measurement == "" {
		historyError(w, http.StatusBadRequest, "missing required parameter: measurement")
		return
	}
	from, err := parseHistoryTime(q.Get("from"))
	if err != nil {
		historyError(w, http.StatusBadRequest, "bad from: %v", err)
		return
	}
	to, err := parseHistoryTime(q.Get("to"))
	if err != nil {
		historyError(w, http.StatusBadRequest, "bad to: %v", err)
		return
	}
	if last := q.Get("last"); last != "" {
		d, err := time.ParseDuration(last)
		if err != nil {
			historyError(w, http.StatusBadRequest, "bad last: %v", err)
			return
		}
		now := time.Now
		if h.Now != nil {
			now = h.Now
		}
		from = now().Add(-d)
	}
	match := tsdb.Tags{}
	for k, vs := range q {
		if tag, ok := strings.CutPrefix(k, "tag."); ok && len(vs) > 0 {
			match[tag] = vs[0]
		}
	}

	var end time.Time
	if !to.IsZero() {
		end = to.Add(time.Nanosecond)
	}
	resp := HistoryResponse{Measurement: measurement, Series: []HistorySeries{}}
	if !from.IsZero() {
		resp.FromNs = from.UnixNano()
	}
	if !to.IsZero() {
		resp.ToNs = to.UnixNano()
	}
	for _, sr := range h.Store.Query(measurement, match, from, end) {
		hs := HistorySeries{Tags: sr.Tags, Points: make([]HistoryPoint, 0, len(sr.Points))}
		for _, p := range sr.Points {
			hs.Points = append(hs.Points, HistoryPoint{TimeNs: p.Time.UnixNano(), Fields: p.Fields})
		}
		resp.Series = append(resp.Series, hs)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
}

func historyError(w http.ResponseWriter, code int, format string, args ...any) {
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// parseHistoryTime accepts RFC 3339 or integer unix seconds; "" is the
// zero time (unbounded).
func parseHistoryTime(s string) (time.Time, error) {
	if s == "" {
		return time.Time{}, nil
	}
	if t, err := time.Parse(time.RFC3339, s); err == nil {
		return t, nil
	}
	var sec int64
	if _, err := fmt.Sscanf(s, "%d", &sec); err == nil && fmt.Sprintf("%d", sec) == s {
		return time.Unix(sec, 0).UTC(), nil
	}
	return time.Time{}, fmt.Errorf("want RFC3339 or unix seconds, got %q", s)
}
