package telemetry

import (
	"bufio"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/clasp-measurement/clasp/internal/obs"
)

// HTTPMetrics records per-route, per-status request-duration histograms
// for an HTTP handler chain. Route values come from a fixed allow-list so
// label cardinality stays bounded no matter what paths clients probe:
// exact entries match verbatim, entries ending in "/" match as prefixes,
// everything else collapses to "other".
type HTTPMetrics struct {
	reg      *obs.Registry
	family   string
	exact    map[string]string
	prefixes []string

	hists sync.Map // route + "\x00" + status -> *obs.Histogram
}

// NewHTTPMetrics builds middleware recording into family (a histogram of
// nanoseconds, labelled route/status) on reg. routes is the allow-list;
// entries ending in "/" match by prefix.
func NewHTTPMetrics(reg *obs.Registry, family string, routes []string) *HTTPMetrics {
	m := &HTTPMetrics{
		reg:    reg,
		family: family,
		exact:  make(map[string]string, len(routes)),
	}
	for _, r := range routes {
		if strings.HasSuffix(r, "/") {
			m.prefixes = append(m.prefixes, r)
		}
		m.exact[r] = r
	}
	return m
}

// route maps a request path onto its bounded label value.
func (m *HTTPMetrics) route(path string) string {
	if r, ok := m.exact[path]; ok {
		return r
	}
	for _, p := range m.prefixes {
		if strings.HasPrefix(path, p) {
			return p
		}
	}
	return "other"
}

// histogram interns the (route, status) handle so the steady-state request
// path costs one sync.Map load instead of a registry lock.
func (m *HTTPMetrics) histogram(route, status string) *obs.Histogram {
	key := route + "\x00" + status
	if h, ok := m.hists.Load(key); ok {
		return h.(*obs.Histogram)
	}
	h := m.reg.Histogram(m.family, "route", route, "status", status)
	m.hists.Store(key, h)
	return h
}

// Wrap instruments next. The recorder forwards Hijack and Flush so
// WebSocket upgrades (ndt7 over wsock) and streaming responses work
// through the middleware; a hijacked connection records as status 101.
func (m *HTTPMetrics) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(rec, r)
		m.histogram(m.route(r.URL.Path), rec.statusLabel()).Observe(float64(time.Since(start)))
	})
}

// statusRecorder captures the response status while passing the optional
// http.Hijacker / http.Flusher interfaces through to the real writer —
// wsock.Upgrade type-asserts Hijacker, so a wrapper that hides it would
// break every WebSocket route.
type statusRecorder struct {
	http.ResponseWriter
	status   int
	hijacked bool
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (r *statusRecorder) Hijack() (net.Conn, *bufio.ReadWriter, error) {
	h, ok := r.ResponseWriter.(http.Hijacker)
	if !ok {
		return nil, nil, fmt.Errorf("telemetry: underlying ResponseWriter does not support hijacking")
	}
	r.hijacked = true
	return h.Hijack()
}

// statusLabel renders the final status as a metric label: an explicit
// code, 101 for hijacked (upgraded) connections, 200 for an implicit OK.
func (r *statusRecorder) statusLabel() string {
	switch {
	case r.hijacked && r.status == 0:
		return "101"
	case r.status == 0:
		return "200"
	default:
		return strconv.Itoa(r.status)
	}
}
