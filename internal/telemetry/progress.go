package telemetry

import (
	"encoding/json"
	"net/http"
	"sort"

	"github.com/clasp-measurement/clasp/internal/obs"
)

// RegionProgress is one region's live campaign state, assembled from the
// orchestrator's obs series (see DESIGN.md §8 and §13).
type RegionProgress struct {
	Region     string             `json:"region"`
	Scheduled  uint64             `json:"scheduled"`
	Completed  uint64             `json:"completed"`
	Failed     uint64             `json:"failed"`
	Retried    uint64             `json:"retried"`
	Dropped    uint64             `json:"dropped"`
	HoursTotal float64            `json:"hours_total"`
	HoursDone  float64            `json:"hours_done"`
	ETASeconds float64            `json:"eta_seconds"`
	Breaker    string             `json:"breaker"`
	PhaseSecs  map[string]float64 `json:"phase_seconds,omitempty"`
}

// CommandProgress is the whole-command position a multi-campaign command
// (report all, costs) publishes across its concurrently running campaigns:
// hours aggregate over every campaign of the set, and the ETA covers the
// full command rather than any single region.
type CommandProgress struct {
	Command        string  `json:"command"`
	CampaignsTotal float64 `json:"campaigns_total"`
	CampaignsDone  float64 `json:"campaigns_done"`
	HoursTotal     float64 `json:"hours_total"`
	HoursDone      float64 `json:"hours_done"`
	ETASeconds     float64 `json:"eta_seconds"`
}

// ProgressResponse is the JSON document served at /progress.
type ProgressResponse struct {
	// Commands aggregates whole-command progress (one entry per active
	// multi-campaign command; empty for single-campaign runs).
	Commands []CommandProgress `json:"commands,omitempty"`
	Regions  []RegionProgress  `json:"regions"`
}

// breakerName renders the faults.BreakerState gauge values.
func breakerName(v float64) string {
	switch v {
	case 1:
		return "half-open"
	case 2:
		return "open"
	default:
		return "closed"
	}
}

// BuildProgress assembles per-region progress from a registry snapshot.
// Regions are discovered from any campaign_* series carrying a region
// label, so it works mid-campaign with whatever has registered so far.
func BuildProgress(reg *obs.Registry) ProgressResponse {
	byRegion := make(map[string]*RegionProgress)
	byCommand := make(map[string]*CommandProgress)
	getCmd := func(labels []string) *CommandProgress {
		var name string
		for i := 0; i+1 < len(labels); i += 2 {
			if labels[i] == "command" {
				name = labels[i+1]
			}
		}
		if name == "" {
			return nil
		}
		cp := byCommand[name]
		if cp == nil {
			cp = &CommandProgress{Command: name}
			byCommand[name] = cp
		}
		return cp
	}
	get := func(labels []string) (*RegionProgress, string) {
		var region, phase string
		for i := 0; i+1 < len(labels); i += 2 {
			switch labels[i] {
			case "region":
				region = labels[i+1]
			case "phase":
				phase = labels[i+1]
			}
		}
		if region == "" {
			return nil, ""
		}
		rp := byRegion[region]
		if rp == nil {
			rp = &RegionProgress{Region: region, Breaker: "closed"}
			byRegion[region] = rp
		}
		return rp, phase
	}
	for _, s := range reg.Samples() {
		if cp := getCmd(s.Labels); cp != nil {
			switch s.Name {
			case "command_campaigns_total":
				cp.CampaignsTotal = s.Value
			case "command_campaigns_done":
				cp.CampaignsDone = s.Value
			case "command_hours_total":
				cp.HoursTotal = s.Value
			case "command_hours_done":
				cp.HoursDone = s.Value
			case "command_eta_seconds":
				cp.ETASeconds = s.Value
			}
			continue
		}
		rp, phase := get(s.Labels)
		if rp == nil {
			continue
		}
		switch s.Name {
		case "campaign_tests_scheduled_total":
			rp.Scheduled = s.Counter
		case "campaign_tests_completed_total":
			rp.Completed = s.Counter
		case "campaign_tests_failed_total":
			rp.Failed = s.Counter
		case "campaign_tests_retried_total":
			rp.Retried = s.Counter
		case "campaign_tests_dropped_total":
			rp.Dropped = s.Counter
		case "campaign_hours_total":
			rp.HoursTotal = s.Value
		case "campaign_hours_done":
			rp.HoursDone = s.Value
		case "campaign_eta_seconds":
			rp.ETASeconds = s.Value
		case "campaign_breaker_state":
			rp.Breaker = breakerName(s.Value)
		case "campaign_phase_seconds_total":
			if phase != "" {
				if rp.PhaseSecs == nil {
					rp.PhaseSecs = make(map[string]float64)
				}
				rp.PhaseSecs[phase] = s.Value
			}
		}
	}
	resp := ProgressResponse{Regions: make([]RegionProgress, 0, len(byRegion))}
	for _, rp := range byRegion {
		resp.Regions = append(resp.Regions, *rp)
	}
	sort.Slice(resp.Regions, func(i, j int) bool { return resp.Regions[i].Region < resp.Regions[j].Region })
	for _, cp := range byCommand {
		resp.Commands = append(resp.Commands, *cp)
	}
	sort.Slice(resp.Commands, func(i, j int) bool { return resp.Commands[i].Command < resp.Commands[j].Command })
	return resp
}

// ProgressHandler serves BuildProgress as JSON — the live answer to "how
// far along is this campaign" that previously required waiting for exit.
type ProgressHandler struct {
	Registry *obs.Registry
}

func (h *ProgressHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(BuildProgress(h.Registry))
}
