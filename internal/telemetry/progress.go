package telemetry

import (
	"encoding/json"
	"net/http"
	"sort"

	"github.com/clasp-measurement/clasp/internal/obs"
)

// RegionProgress is one region's live campaign state, assembled from the
// orchestrator's obs series (see DESIGN.md §8 and §13).
type RegionProgress struct {
	Region     string             `json:"region"`
	Scheduled  uint64             `json:"scheduled"`
	Completed  uint64             `json:"completed"`
	Failed     uint64             `json:"failed"`
	Retried    uint64             `json:"retried"`
	Dropped    uint64             `json:"dropped"`
	HoursTotal float64            `json:"hours_total"`
	HoursDone  float64            `json:"hours_done"`
	ETASeconds float64            `json:"eta_seconds"`
	Breaker    string             `json:"breaker"`
	PhaseSecs  map[string]float64 `json:"phase_seconds,omitempty"`
}

// ProgressResponse is the JSON document served at /progress.
type ProgressResponse struct {
	Regions []RegionProgress `json:"regions"`
}

// breakerName renders the faults.BreakerState gauge values.
func breakerName(v float64) string {
	switch v {
	case 1:
		return "half-open"
	case 2:
		return "open"
	default:
		return "closed"
	}
}

// BuildProgress assembles per-region progress from a registry snapshot.
// Regions are discovered from any campaign_* series carrying a region
// label, so it works mid-campaign with whatever has registered so far.
func BuildProgress(reg *obs.Registry) ProgressResponse {
	byRegion := make(map[string]*RegionProgress)
	get := func(labels []string) (*RegionProgress, string) {
		var region, phase string
		for i := 0; i+1 < len(labels); i += 2 {
			switch labels[i] {
			case "region":
				region = labels[i+1]
			case "phase":
				phase = labels[i+1]
			}
		}
		if region == "" {
			return nil, ""
		}
		rp := byRegion[region]
		if rp == nil {
			rp = &RegionProgress{Region: region, Breaker: "closed"}
			byRegion[region] = rp
		}
		return rp, phase
	}
	for _, s := range reg.Samples() {
		rp, phase := get(s.Labels)
		if rp == nil {
			continue
		}
		switch s.Name {
		case "campaign_tests_scheduled_total":
			rp.Scheduled = s.Counter
		case "campaign_tests_completed_total":
			rp.Completed = s.Counter
		case "campaign_tests_failed_total":
			rp.Failed = s.Counter
		case "campaign_tests_retried_total":
			rp.Retried = s.Counter
		case "campaign_tests_dropped_total":
			rp.Dropped = s.Counter
		case "campaign_hours_total":
			rp.HoursTotal = s.Value
		case "campaign_hours_done":
			rp.HoursDone = s.Value
		case "campaign_eta_seconds":
			rp.ETASeconds = s.Value
		case "campaign_breaker_state":
			rp.Breaker = breakerName(s.Value)
		case "campaign_phase_seconds_total":
			if phase != "" {
				if rp.PhaseSecs == nil {
					rp.PhaseSecs = make(map[string]float64)
				}
				rp.PhaseSecs[phase] = s.Value
			}
		}
	}
	resp := ProgressResponse{Regions: make([]RegionProgress, 0, len(byRegion))}
	for _, rp := range byRegion {
		resp.Regions = append(resp.Regions, *rp)
	}
	sort.Slice(resp.Regions, func(i, j int) bool { return resp.Regions[i].Region < resp.Regions[j].Region })
	return resp
}

// ProgressHandler serves BuildProgress as JSON — the live answer to "how
// far along is this campaign" that previously required waiting for exit.
type ProgressHandler struct {
	Registry *obs.Registry
}

func (h *ProgressHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(BuildProgress(h.Registry))
}
