// Package telemetry is the self-observation pipeline: it dogfoods the
// columnar tsdb as the history backend for the obs registry, turning the
// point-in-time metrics CLASP's subsystems already publish into queryable
// time series about the platform itself.
//
// The pieces compose rather than assume each other:
//
//   - StoreAppender adapts *tsdb.Store to obs.Appender, closing the loop
//     the import graph forbids obs from closing itself (tsdb instruments
//     its shards against obs, so obs cannot import tsdb).
//   - Pipeline bundles a dedicated self-telemetry store, a scraper feeding
//     it on a cadence, and age-based retention via Store.DropBefore.
//   - HTTPMetrics is hijack-safe handler middleware recording per-route /
//     per-status request-duration histograms (speedtestd's serving path).
//   - HistoryHandler serves windowed JSON queries over the self-store
//     (/debug/obs/history); ProgressHandler renders the orchestrator's
//     campaign gauges as a live progress document (/progress).
//   - Introspection wires all of it plus net/http/pprof onto a mux, and
//     StartDebug serves that mux on a side listener (clasp -debug-addr).
//   - HistogramWindows / LogBucketQuantile recover latency percentiles
//     from scraped cumulative bucket series — the shape loadgen consumes.
//
// Nothing here feeds back into measurement arithmetic: scrapes read the
// registry through Registry.Samples (lock-free for updaters) and write to a
// store campaigns never query, preserving the bit-identical-results
// invariant pinned by TestMetricsDoNotChangeResults.
package telemetry

import (
	"io"
	"sync"
	"time"

	"github.com/clasp-measurement/clasp/internal/obs"
	"github.com/clasp-measurement/clasp/internal/tsdb"
)

// StoreAppender adapts a tsdb.Store to the obs.Appender interface the
// scraper writes through.
type StoreAppender struct {
	Store *tsdb.Store
}

// Append inserts one scraped point.
func (a StoreAppender) Append(measurement string, tags map[string]string, at time.Time, fields map[string]float64) error {
	return a.Store.Insert(measurement, tsdb.Tags(tags), at, fields)
}

// PipelineConfig configures a self-telemetry Pipeline.
type PipelineConfig struct {
	// Registry to scrape. Defaults to obs.Default().
	Registry *obs.Registry
	// Interval between scrapes. Defaults to 5s.
	Interval time.Duration
	// Retention drops self-store history older than this on every cycle;
	// 0 keeps everything (short runs, tests).
	Retention time.Duration
	// Now is the clock, injectable for tests. Defaults to time.Now.
	Now func() time.Time
}

// Pipeline owns a dedicated self-telemetry store and the scraper feeding
// it. The store is separate from any campaign store on purpose: campaign
// analysis never sees telemetry series, and sealing/retention policies can
// differ.
type Pipeline struct {
	Store   *tsdb.Store
	Scraper *obs.Scraper

	interval  time.Duration
	retention time.Duration
	now       func() time.Time

	startOnce sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewPipeline builds the pipeline; call Start to begin scraping on the
// cadence, or drive Cycle directly for deterministic tests.
func NewPipeline(cfg PipelineConfig) *Pipeline {
	if cfg.Registry == nil {
		cfg.Registry = obs.Default()
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 5 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	store := tsdb.NewStore()
	return &Pipeline{
		Store:     store,
		Scraper:   obs.NewScraper(cfg.Registry, StoreAppender{Store: store}, obs.ScrapeConfig{Interval: cfg.Interval, Now: cfg.Now}),
		interval:  cfg.Interval,
		retention: cfg.Retention,
		now:       cfg.Now,
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
}

// Cycle runs one scrape pass followed by retention enforcement.
func (p *Pipeline) Cycle() error {
	err := p.Scraper.ScrapeOnce()
	if p.retention > 0 {
		p.Store.DropBefore(p.now().Add(-p.retention))
	}
	return err
}

// Start launches the background scrape/retention loop. Subsequent calls
// no-op; Stop terminates it.
func (p *Pipeline) Start() {
	p.startOnce.Do(func() {
		go func() {
			defer close(p.done)
			t := time.NewTicker(p.interval)
			defer t.Stop()
			for {
				select {
				case <-p.stop:
					return
				case <-t.C:
					_ = p.Cycle() // errors accumulate in Scraper.Stats()
				}
			}
		}()
	})
}

// Stop terminates a Start-ed loop and waits for it. Safe without Start and
// safe to call twice.
func (p *Pipeline) Stop() {
	select {
	case <-p.stop:
	default:
		close(p.stop)
	}
	p.startOnce.Do(func() { close(p.done) })
	<-p.done
}

// WriteBlocks seals nothing extra but dumps the self-store — tail and
// sealed blocks both — in the indexed block-file format, so telemetry
// history survives the process and reopens with tsdb.OpenBlockFile.
func (p *Pipeline) WriteBlocks(w io.Writer) (int64, error) {
	return p.Store.WriteBlocks(w)
}

// WriteBlocksFile dumps the self-store to path via temp file and atomic
// rename (tsdb.Store.WriteBlocksFile), so a process killed mid-dump never
// leaves a truncated telemetry file behind.
func (p *Pipeline) WriteBlocksFile(path string) error {
	return p.Store.WriteBlocksFile(path)
}
