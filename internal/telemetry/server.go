package telemetry

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/pprof"

	"github.com/clasp-measurement/clasp/internal/obs"
	"github.com/clasp-measurement/clasp/internal/tsdb"
)

// Introspection describes which debug endpoints to expose on a mux.
type Introspection struct {
	// Registry serves /metrics (Prometheus text) and, when Progress is
	// set, /progress. Defaults to obs.Default().
	Registry *obs.Registry
	// History, when non-nil, serves /debug/obs/history over the store.
	History *tsdb.Store
	// Progress registers the /progress campaign endpoint.
	Progress bool
}

// Register wires the introspection endpoints plus net/http/pprof onto mux.
// pprof needs explicit registration because these muxes are private — the
// handlers only self-register on http.DefaultServeMux.
func (in Introspection) Register(mux *http.ServeMux) {
	reg := in.Registry
	if reg == nil {
		reg = obs.Default()
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = reg.WriteProm(w)
	})
	if in.History != nil {
		mux.Handle("/debug/obs/history", &HistoryHandler{Store: in.History})
	}
	if in.Progress {
		mux.Handle("/progress", &ProgressHandler{Registry: reg})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// DebugServer is a running introspection listener (clasp -debug-addr).
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// StartDebug listens on addr (":0" picks an ephemeral port) and serves the
// introspection endpoints in the background. The listener lives on a side
// goroutine and never blocks or feeds back into campaign work.
func StartDebug(addr string, in Introspection) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	in.Register(mux)
	srv := &http.Server{Handler: mux}
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			// The debug listener is best-effort; a serve error must never
			// take the campaign down with it.
			_ = err
		}
	}()
	return &DebugServer{ln: ln, srv: srv}, nil
}

// Addr returns the bound address (useful with ":0").
func (d *DebugServer) Addr() net.Addr { return d.ln.Addr() }

// Close shuts the listener down immediately.
func (d *DebugServer) Close() error { return d.srv.Close() }

// Shutdown drains gracefully under ctx.
func (d *DebugServer) Shutdown(ctx context.Context) error { return d.srv.Shutdown(ctx) }
