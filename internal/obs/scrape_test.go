package obs

import (
	"bytes"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeAppender records every Append call for inspection.
type fakeAppender struct {
	mu    sync.Mutex
	fail  bool
	lines []string
}

func (f *fakeAppender) Append(measurement string, tags map[string]string, at time.Time, fields map[string]float64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail {
		return fmt.Errorf("sink down")
	}
	tk := make([]string, 0, len(tags))
	for k := range tags {
		tk = append(tk, k)
	}
	sort.Strings(tk)
	var tb strings.Builder
	for _, k := range tk {
		fmt.Fprintf(&tb, ",%s=%s", k, tags[k])
	}
	fk := make([]string, 0, len(fields))
	for k := range fields {
		fk = append(fk, k)
	}
	sort.Strings(fk)
	var fb strings.Builder
	for i, k := range fk {
		if i > 0 {
			fb.WriteByte(' ')
		}
		fmt.Fprintf(&fb, "%s=%g", k, fields[k])
	}
	f.lines = append(f.lines, fmt.Sprintf("%s%s @%d %s", measurement, tb.String(), at.Unix(), fb.String()))
	return nil
}

func (f *fakeAppender) sorted() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := append([]string(nil), f.lines...)
	sort.Strings(out)
	return out
}

// TestScraperDeterministicSeries pins the exact series contents produced by
// two scrape cycles under a fake clock: counter value+rate, gauge value,
// histogram family count/sum/rate and cumulative le-tagged buckets.
func TestScraperDeterministicSeries(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	c := r.Counter("reqs_total", "route", "/metrics")
	g := r.Gauge("depth")
	h := r.Histogram("lat_ns")

	c.Add(10)
	g.Set(3.5)
	h.Observe(1) // bucket le=1
	h.Observe(3) // bucket le=4

	now := time.Unix(1000, 0).UTC()
	app := &fakeAppender{}
	sc := NewScraper(r, app, ScrapeConfig{Now: func() time.Time { return now }})

	if err := sc.ScrapeOnce(); err != nil {
		t.Fatalf("first scrape: %v", err)
	}
	now = now.Add(10 * time.Second)
	c.Add(50)    // rate 5/s over the 10s window
	h.Observe(3) // second point in le=4
	if err := sc.ScrapeOnce(); err != nil {
		t.Fatalf("second scrape: %v", err)
	}

	want := []string{
		// First pass (t=1000): rates are 0, no history yet.
		"depth @1000 value=3.5",
		"lat_ns @1000 count=2 rate=0 sum=4",
		"lat_ns_bucket,le=1 @1000 cum=1",
		"lat_ns_bucket,le=4 @1000 cum=2",
		"reqs_total,route=/metrics @1000 rate=0 value=10",
		// Second pass (t=1010): counter 10→60 is 5/s, histogram 2→3 is 0.1/s.
		"depth @1010 value=3.5",
		"lat_ns @1010 count=3 rate=0.1 sum=7",
		"lat_ns_bucket,le=1 @1010 cum=1",
		"lat_ns_bucket,le=4 @1010 cum=3",
		"reqs_total,route=/metrics @1010 rate=5 value=60",
	}
	sort.Strings(want)
	got := app.sorted()
	if len(got) != len(want) {
		t.Fatalf("appended %d points, want %d:\n%s", len(got), len(want), strings.Join(got, "\n"))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("point %d:\n got %q\nwant %q", i, got[i], want[i])
		}
	}

	st := sc.Stats()
	if st.Scrapes != 2 || st.Errors != 0 {
		t.Fatalf("stats = %+v, want 2 scrapes, 0 errors", st)
	}
	if st.Samples != uint64(len(want)) {
		t.Fatalf("stats.Samples = %d, want %d", st.Samples, len(want))
	}
	if !st.Last.Equal(now) {
		t.Fatalf("stats.Last = %v, want %v", st.Last, now)
	}
}

func TestScraperAppendErrorsCounted(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	r.Counter("a_total").Add(1)
	r.Counter("b_total").Add(1)

	app := &fakeAppender{fail: true}
	sc := NewScraper(r, app, ScrapeConfig{Now: func() time.Time { return time.Unix(0, 0) }})
	if err := sc.ScrapeOnce(); err == nil {
		t.Fatal("scrape into a failing sink returned nil error")
	}
	st := sc.Stats()
	if st.Errors != 2 {
		t.Fatalf("stats.Errors = %d, want 2 (one per series, pass continues past failures)", st.Errors)
	}
	if st.Samples != 0 {
		t.Fatalf("stats.Samples = %d, want 0", st.Samples)
	}
}

func TestScraperCounterResetYieldsZeroRate(t *testing.T) {
	// deltaRate guards cur < old (a restarted process re-registering) by
	// reporting 0 instead of a huge unsigned wraparound.
	prev := map[string]uint64{"x": 100}
	if got := deltaRate(prev, "x", 40, 10); got != 0 {
		t.Fatalf("rate after reset = %g, want 0", got)
	}
	if got := deltaRate(prev, "x", 90, 10); got != 5 {
		t.Fatalf("rate after recovery = %g, want 5", got)
	}
}

func TestScraperStartStop(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	r.Counter("ticks_total").Inc()
	app := &fakeAppender{}
	sc := NewScraper(r, app, ScrapeConfig{Interval: time.Millisecond})
	sc.Start()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if sc.Stats().Scrapes > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background scraper never ran")
		}
		time.Sleep(time.Millisecond)
	}
	sc.Stop()
	sc.Stop() // idempotent
	after := sc.Stats().Scrapes
	time.Sleep(5 * time.Millisecond)
	if got := sc.Stats().Scrapes; got != after {
		t.Fatalf("scraper kept running after Stop: %d -> %d", after, got)
	}
}

func TestScraperStopWithoutStart(t *testing.T) {
	r := NewRegistry()
	sc := NewScraper(r, &fakeAppender{}, ScrapeConfig{})
	sc.Stop() // must not hang or panic
}

// TestSamplesSnapshot pins the structured snapshot contract: sorted by id,
// kinds discriminated, labels as sorted pairs, cumulative populated buckets.
func TestSamplesSnapshot(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	r.Counter("zz_total", "b", "2", "a", "1").Add(7)
	r.Gauge("gg").Set(-2.5)
	h := r.Histogram("hh_ns")
	h.Observe(100) // le=128
	h.Observe(5)   // le=8
	h.Observe(5)

	got := r.Samples()
	if len(got) != 3 {
		t.Fatalf("Samples returned %d entries, want 3", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i].ID < got[j].ID }) {
		t.Fatal("Samples not sorted by id")
	}
	if s := got[0]; s.ID != "gg" || s.Kind != KindGauge || s.Value != -2.5 {
		t.Fatalf("gauge sample = %+v", s)
	}
	if s := got[1]; s.ID != "hh_ns" || s.Kind != KindHistogram || s.Count != 3 || s.Sum != 110 {
		t.Fatalf("histogram sample = %+v", s)
	}
	wantBuckets := []BucketCount{{LE: 8, Cum: 2}, {LE: 128, Cum: 3}}
	if len(got[1].Buckets) != len(wantBuckets) {
		t.Fatalf("histogram buckets = %+v, want %+v", got[1].Buckets, wantBuckets)
	}
	for i, b := range wantBuckets {
		if got[1].Buckets[i] != b {
			t.Fatalf("bucket %d = %+v, want %+v", i, got[1].Buckets[i], b)
		}
	}
	if s := got[2]; s.ID != `zz_total{a="1",b="2"}` || s.Kind != KindCounter || s.Counter != 7 {
		t.Fatalf("counter sample = %+v", s)
	}
	if want := []string{"a", "1", "b", "2"}; len(got[2].Labels) != 4 ||
		got[2].Labels[0] != want[0] || got[2].Labels[1] != want[1] ||
		got[2].Labels[2] != want[2] || got[2].Labels[3] != want[3] {
		t.Fatalf("counter labels = %v, want %v", got[2].Labels, want)
	}
}

// TestWritePromDuringRegistration is the -race regression test for the
// WriteProm data race: dumps must snapshot metric pointers under the lock
// instead of iterating the live maps while registration grows them.
func TestWritePromDuringRegistration(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			r.Counter("churn_total", "i", fmt.Sprintf("%d", i%512)).Inc()
			r.Histogram("churn_ns", "i", fmt.Sprintf("%d", i%512)).Observe(float64(i))
		}
	}()
	for i := 0; i < 200; i++ {
		var buf bytes.Buffer
		if err := r.WriteProm(&buf); err != nil {
			t.Fatalf("WriteProm: %v", err)
		}
		r.Samples()
	}
	close(stop)
	wg.Wait()
}

func TestObserveRejectsNonFinite(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	h := r.Histogram("lat_ns")
	h.Observe(5)
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	h.Observe(math.Inf(-1))
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1 (non-finite observations dropped)", h.Count())
	}
	if h.Sum() != 5 {
		t.Fatalf("sum = %g, want 5 — NaN/Inf poisoned the sum", h.Sum())
	}
}

func TestGaugeAddRejectsNonFinite(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	g := r.Gauge("depth")
	g.Add(3)
	g.Add(math.NaN())
	g.Add(math.Inf(1))
	if g.Value() != 3 {
		t.Fatalf("gauge = %g, want 3 — non-finite delta applied", g.Value())
	}
	// Set remains unguarded by design: an explicit Set(NaN) is a caller
	// choice, not accumulation poisoning.
	g.Set(math.Inf(1))
	if !math.IsInf(g.Value(), 1) {
		t.Fatal("Set(+Inf) should store +Inf")
	}
}

func TestObserveHugeValues(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	h := r.Histogram("lat_ns")
	huge := []float64{
		float64(uint64(1) << 39),   // exactly the top finite bound
		float64(uint64(1)<<39) + 1, // just past it
		math.MaxFloat64,            // would overflow uint64(math.Ceil(v))
		float64(uint64(1) << 63),   // 2^63, undefined in float→uint64
		math.Nextafter(1e300, math.Inf(1)),
	}
	for _, v := range huge {
		h.Observe(v)
	}
	if h.Count() != uint64(len(huge)) {
		t.Fatalf("count = %d, want %d", h.Count(), len(huge))
	}
	// The top finite bound lands in the last finite bucket; everything
	// bigger must land in the overflow bucket, never a garbage index.
	if got := h.buckets[histBuckets-1].Load(); got != 1 {
		t.Fatalf("top finite bucket = %d, want 1", got)
	}
	if got := h.buckets[histBuckets].Load(); got != uint64(len(huge)-1) {
		t.Fatalf("overflow bucket = %d, want %d", got, len(huge)-1)
	}
}

func TestBucketIndexBounds(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0},
		{1, 0},
		{1.5, 1},
		{2, 1},
		{3, 2},
		{float64(uint64(1) << 39), histBuckets - 1},
		{float64(uint64(1)<<39) + 1, histBuckets},
		{float64(uint64(1) << 62), histBuckets},
		{float64(uint64(1) << 63), histBuckets},
		{math.MaxFloat64, histBuckets},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%g) = %d, want %d", c.v, got, c.want)
		}
	}
}
