package obs

import (
	"fmt"
	"sync"
	"time"
)

// Appender is the sink a Scraper writes into. It is satisfied by
// telemetry.StoreAppender (backed by tsdb.Store.Insert); obs cannot import
// tsdb directly because tsdb instruments itself against this package.
type Appender interface {
	Append(measurement string, tags map[string]string, at time.Time, fields map[string]float64) error
}

// ScrapeConfig configures a Scraper.
type ScrapeConfig struct {
	// Interval is the cadence for Start's background loop. Defaults to 5s.
	Interval time.Duration
	// Now supplies timestamps; tests inject a fake clock for deterministic
	// series contents. Defaults to time.Now.
	Now func() time.Time
}

// ScrapeStats summarises a Scraper's activity so far.
type ScrapeStats struct {
	Scrapes uint64    // completed ScrapeOnce passes
	Samples uint64    // points appended across all passes
	Errors  uint64    // append errors (scrape continues past them)
	Last    time.Time // timestamp of the most recent pass
}

// Scraper samples a Registry on a cadence and appends the readings to an
// Appender, turning point-in-time metrics into history:
//
//   - counters become points {value, rate} where rate is the per-second
//     delta since the previous scrape (0 on the first pass);
//   - gauges become points {value};
//   - histograms become a family point {count, sum, rate} (rate is the
//     per-second observation rate) plus one point per populated bucket on
//     the "<name>_bucket" measurement, tagged le=<bound>, with the
//     cumulative count in field "cum" — the shape
//     telemetry.LogBucketQuantile consumes for windowed percentiles.
//
// Metric labels become tsdb tags verbatim. All methods are safe for
// concurrent use; the scrape itself reads the registry through
// Registry.Samples, so it never blocks metric updates.
type Scraper struct {
	r   *Registry
	app Appender
	cfg ScrapeConfig

	mu        sync.Mutex
	prevCount map[string]uint64 // series id -> counter value / histogram count
	prevAt    time.Time
	stats     ScrapeStats

	startOnce sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewScraper creates a scraper over r feeding app. Defaults are applied for
// zero ScrapeConfig fields.
func NewScraper(r *Registry, app Appender, cfg ScrapeConfig) *Scraper {
	if r == nil {
		panic("obs: NewScraper with nil registry")
	}
	if app == nil {
		panic("obs: NewScraper with nil appender")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 5 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Scraper{
		r:         r,
		app:       app,
		cfg:       cfg,
		prevCount: make(map[string]uint64),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
}

// ScrapeOnce performs one scrape pass at the clock's current time. It
// returns the first append error encountered, after attempting every
// series — one bad series does not hide the rest of the pass.
func (s *Scraper) ScrapeOnce() error {
	samples := s.r.Samples()
	at := s.cfg.Now()

	s.mu.Lock()
	defer s.mu.Unlock()
	var dt float64 // seconds since previous pass; 0 on the first
	if !s.prevAt.IsZero() {
		dt = at.Sub(s.prevAt).Seconds()
	}

	var firstErr error
	appended := uint64(0)
	record := func(measurement string, tags map[string]string, fields map[string]float64) {
		if err := s.app.Append(measurement, tags, at, fields); err != nil {
			s.stats.Errors++
			if firstErr == nil {
				firstErr = fmt.Errorf("obs: scrape %s: %w", measurement, err)
			}
			return
		}
		appended++
	}

	for _, m := range samples {
		tags := labelTags(m.Labels)
		switch m.Kind {
		case KindCounter:
			record(m.Name, tags, map[string]float64{
				"value": float64(m.Counter),
				"rate":  deltaRate(s.prevCount, m.ID, m.Counter, dt),
			})
		case KindGauge:
			record(m.Name, tags, map[string]float64{"value": m.Value})
		case KindHistogram:
			record(m.Name, tags, map[string]float64{
				"count": float64(m.Count),
				"sum":   m.Sum,
				"rate":  deltaRate(s.prevCount, m.ID, m.Count, dt),
			})
			for _, b := range m.Buckets {
				bt := make(map[string]string, len(tags)+1)
				for k, v := range tags {
					bt[k] = v
				}
				bt["le"] = formatBound(b.LE)
				record(m.Name+"_bucket", bt, map[string]float64{"cum": float64(b.Cum)})
			}
		}
	}

	s.prevAt = at
	s.stats.Scrapes++
	s.stats.Samples += appended
	s.stats.Last = at
	return firstErr
}

// deltaRate updates prev[id] to cur and returns the per-second rate over
// dt seconds (0 when dt is 0, i.e. the first pass, or on counter reset).
func deltaRate(prev map[string]uint64, id string, cur uint64, dt float64) float64 {
	old, seen := prev[id]
	prev[id] = cur
	if !seen || dt <= 0 || cur < old {
		return 0
	}
	return float64(cur-old) / dt
}

// labelTags converts sorted alternating key/value label pairs to a tag map.
func labelTags(pairs []string) map[string]string {
	if len(pairs) == 0 {
		return nil
	}
	t := make(map[string]string, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		t[pairs[i]] = pairs[i+1]
	}
	return t
}

// Start launches the background scrape loop at the configured interval.
// Safe to call once; subsequent calls no-op. Stop terminates the loop.
func (s *Scraper) Start() {
	s.startOnce.Do(func() {
		go func() {
			defer close(s.done)
			t := time.NewTicker(s.cfg.Interval)
			defer t.Stop()
			for {
				select {
				case <-s.stop:
					return
				case <-t.C:
					_ = s.ScrapeOnce() // errors are counted in Stats
				}
			}
		}()
	})
}

// Stop terminates a Start-ed loop and waits for it to exit. Calling Stop
// without Start, or twice, is safe.
func (s *Scraper) Stop() {
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	s.startOnce.Do(func() { close(s.done) }) // never started: mark done
	<-s.done
}

// Stats returns a copy of the scraper's counters.
func (s *Scraper) Stats() ScrapeStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}
