// Package obs is CLASP's observability layer: a dependency-free,
// concurrency-safe metrics registry (counters, gauges, and histograms with
// fixed log-scale buckets) plus lightweight phase-scoped tracing spans
// (trace.go). It exists so the campaign engine's load-bearing subsystems —
// the bgp route caches, the netsim flow cache, the sharded tsdb store, the
// orchestrator's phases — expose what they are doing at runtime without
// perturbing what they compute.
//
// # Disabled-path invariant
//
// The registry starts disabled. Every update operation (Counter.Add,
// Gauge.Set, Histogram.Observe, Tracer spans) first loads one atomic bool
// and returns; the disabled path performs zero heap allocations and no
// synchronisation beyond that load, so instrumented hot paths (netsim's
// warm Measure, tsdb inserts) keep their PR 2 performance when metrics are
// off. TestDisabledPathZeroAllocs and the BenchmarkObsDisabled* benchmarks
// in BENCH_obs.json pin this. Metrics never feed back into measurement
// arithmetic, so campaign results are bit-identical whether the registry is
// enabled or not (pinned by TestMetricsDoNotChangeResults in the
// orchestrator package).
//
// # Usage
//
// Instrumented packages register their metrics once at package init against
// the process-wide Default registry:
//
//	var cacheHits = obs.Default().Counter("bgp_tree_cache_hits_total")
//
// and update them unconditionally (updates no-op while disabled). Binaries
// that want telemetry call obs.SetEnabled(true) and dump the registry with
// WriteProm (Prometheus text format) or WriteJSON.
package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// MetricKind discriminates registered metric types — for conflict detection
// at registration and for consumers of the structured Samples snapshot.
type MetricKind uint8

const (
	KindCounter MetricKind = iota
	KindGauge
	KindHistogram
)

func (k MetricKind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Registry holds named metrics. All methods are safe for concurrent use:
// registration takes a mutex (cold path), updates are lock-free atomics.
// The zero registry is not usable; create one with NewRegistry or use the
// process-wide Default.
type Registry struct {
	enabled atomic.Bool
	tracer  Tracer

	mu         sync.Mutex
	kinds      map[string]MetricKind // series id -> kind
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry creates an empty, disabled registry.
func NewRegistry() *Registry {
	return &Registry{
		kinds:      make(map[string]MetricKind),
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// defaultRegistry is the process-wide registry every instrumented package
// registers against.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// SetEnabled turns metric collection on or off for the default registry.
func SetEnabled(on bool) { defaultRegistry.SetEnabled(on) }

// Enabled reports whether the default registry is collecting.
func Enabled() bool { return defaultRegistry.Enabled() }

// SetEnabled turns metric collection on or off.
func (r *Registry) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports whether the registry is collecting.
func (r *Registry) Enabled() bool { return r.enabled.Load() }

// Tracer returns the registry's span tracer.
func (r *Registry) Tracer() *Tracer { return &r.tracer }

// seriesID renders the canonical series identity — name plus a sorted,
// Prometheus-style label block ({k="v",...}) when labels are present — and
// returns the sorted alternating key/value pairs alongside it, which each
// metric keeps for structured snapshots (Samples) and the scraper.
func seriesID(name string, labels []string) (string, []string) {
	if err := validateName(name); err != nil {
		panic(err)
	}
	if len(labels) == 0 {
		return name, nil
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: metric %s: odd label list (want key/value pairs)", name))
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		if err := validateName(labels[i]); err != nil {
			panic(err)
		}
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	sorted := make([]string, 0, len(labels))
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString("=\"")
		b.WriteString(p.v)
		b.WriteByte('"')
		sorted = append(sorted, p.k, p.v)
	}
	b.WriteByte('}')
	return b.String(), sorted
}

// validateName rejects identifiers that would corrupt the Prometheus text
// exposition ([a-zA-Z_:][a-zA-Z0-9_:]*).
func validateName(s string) error {
	if s == "" {
		return fmt.Errorf("obs: empty metric name")
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("obs: invalid metric name %q", s)
		}
	}
	return nil
}

// checkKind records the series' kind, panicking when the same series id was
// already registered as a different metric type — duplicate names across
// kinds are programmer errors the obs-smoke CI step also guards against.
// Callers hold r.mu.
func (r *Registry) checkKind(id string, k MetricKind) {
	if prev, ok := r.kinds[id]; ok && prev != k {
		panic(fmt.Sprintf("obs: metric %s already registered as %s, re-registered as %s", id, prev, k))
	}
	r.kinds[id] = k
}

// --- Counter -------------------------------------------------------------------

// Counter is a monotonically increasing uint64 metric. Updates are a single
// atomic add; while the registry is disabled they return after one atomic
// load with zero allocations.
type Counter struct {
	r          *Registry
	name       string   // metric family
	labels     string   // rendered label block ("" when unlabelled)
	labelPairs []string // sorted alternating key/value pairs
	v          atomic.Uint64
}

// Counter registers (or fetches) a counter. labels are alternating
// key/value pairs; the same (name, labels) always returns the same counter.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	id, pairs := seriesID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkKind(id, KindCounter)
	if c, ok := r.counters[id]; ok {
		return c
	}
	c := &Counter{r: r, name: name, labels: strings.TrimPrefix(id, name), labelPairs: pairs}
	r.counters[id] = c
	return c
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter. No-op while the registry is disabled.
func (c *Counter) Add(n uint64) {
	if c == nil || !c.r.enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// --- Gauge ---------------------------------------------------------------------

// Gauge is a float64 metric that can go up and down (stored as atomic
// bits). Updates no-op while the registry is disabled.
type Gauge struct {
	r          *Registry
	name       string
	labels     string
	labelPairs []string
	bits       atomic.Uint64
}

// Gauge registers (or fetches) a gauge.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	id, pairs := seriesID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkKind(id, KindGauge)
	if g, ok := r.gauges[id]; ok {
		return g
	}
	g := &Gauge{r: r, name: name, labels: strings.TrimPrefix(id, name), labelPairs: pairs}
	r.gauges[id] = g
	return g
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil || !g.r.enabled.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the gauge by delta (CAS loop; safe for concurrent use).
// Non-finite deltas are dropped — one NaN would stick the gauge at NaN for
// the rest of the process.
func (g *Gauge) Add(delta float64) {
	if g == nil || !g.r.enabled.Load() {
		return
	}
	if math.IsNaN(delta) || math.IsInf(delta, 0) {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge reading.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// --- Histogram -----------------------------------------------------------------

// histBuckets is the fixed bucket count of every histogram: log-scale
// (power-of-two) upper bounds 1, 2, 4, ..., 2^39, plus an overflow bucket.
// 2^39 ns ≈ 9.2 minutes, comfortably covering every duration CLASP times in
// nanoseconds while keeping bucket lookup a single bits.Len64.
const histBuckets = 40

// Histogram counts observations in fixed log-scale buckets. Observe is an
// O(1) bit operation plus three atomic updates; it allocates nothing and,
// while the registry is disabled, returns after one atomic load.
type Histogram struct {
	r          *Registry
	name       string
	labels     string
	labelPairs []string
	count      atomic.Uint64
	sumBits    atomic.Uint64 // float64 sum, CAS-updated
	buckets    [histBuckets + 1]atomic.Uint64
}

// Histogram registers (or fetches) a histogram.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	id, pairs := seriesID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkKind(id, KindHistogram)
	if h, ok := r.histograms[id]; ok {
		return h
	}
	h := &Histogram{r: r, name: name, labels: strings.TrimPrefix(id, name), labelPairs: pairs}
	r.histograms[id] = h
	return h
}

// bucketIndex maps an observation to its log-scale bucket: bucket i holds
// values v with 2^(i-1) < v <= 2^i (bucket 0 holds v <= 1).
func bucketIndex(v float64) int {
	if v <= 1 {
		return 0
	}
	if v > float64(uint64(1)<<(histBuckets-1)) {
		// Overflow bucket, decided in float space: float64→uint64
		// conversion is undefined for v >= 2^63, so values past the top
		// bound must never reach the conversion below.
		return histBuckets
	}
	u := uint64(math.Ceil(v))
	idx := bits.Len64(u - 1) // ceil(log2(u))
	if idx > histBuckets {
		return histBuckets // overflow (+Inf)
	}
	return idx
}

// BucketBound returns the inclusive upper bound of bucket i (+Inf for the
// overflow bucket). Exported for dump writers and tests.
func BucketBound(i int) float64 {
	if i >= histBuckets {
		return math.Inf(1)
	}
	return float64(uint64(1) << uint(i))
}

// Observe records one value. No-op while the registry is disabled.
// Non-finite observations (NaN, ±Inf) are dropped entirely: a single NaN
// would poison _sum forever, and an infinite duration carries no signal the
// overflow bucket doesn't already express.
func (h *Histogram) Observe(v float64) {
	if h == nil || !h.r.enabled.Load() {
		return
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	h.buckets[bucketIndex(v)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// --- Dumps ---------------------------------------------------------------------

// HistogramValue is a histogram snapshot for the JSON dump: cumulative
// counts per populated bucket bound.
type HistogramValue struct {
	Count   uint64            `json:"count"`
	Sum     float64           `json:"sum"`
	Buckets map[string]uint64 `json:"buckets,omitempty"` // le -> cumulative count
}

// Snapshot returns a point-in-time copy of every metric, keyed by series id
// (counters as uint64, gauges as float64, histograms as HistogramValue).
// The map is freshly built and safe to mutate or marshal.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.kinds))
	for id, c := range r.counters {
		out[id] = c.Value()
	}
	for id, g := range r.gauges {
		out[id] = g.Value()
	}
	for id, h := range r.histograms {
		hv := HistogramValue{Count: h.Count(), Sum: h.Sum()}
		var cum uint64
		for i := 0; i <= histBuckets; i++ {
			n := h.buckets[i].Load()
			cum += n
			if n == 0 {
				continue
			}
			if hv.Buckets == nil {
				hv.Buckets = make(map[string]uint64)
			}
			hv.Buckets[formatBound(BucketBound(i))] = cum
		}
		out[id] = hv
	}
	return out
}

func formatBound(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// metricRef is one registered series captured under r.mu: the id, its kind,
// and the live metric pointer. Snapshotting refs (not the maps themselves)
// lets dump and sample paths read atomics lock-free without racing against
// concurrent registration growing the maps.
type metricRef struct {
	id   string
	kind MetricKind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// snapshotRefs copies every (id, kind, pointer) tuple under the lock and
// returns them sorted by series id.
func (r *Registry) snapshotRefs() []metricRef {
	r.mu.Lock()
	refs := make([]metricRef, 0, len(r.kinds))
	for id, c := range r.counters {
		refs = append(refs, metricRef{id: id, kind: KindCounter, c: c})
	}
	for id, g := range r.gauges {
		refs = append(refs, metricRef{id: id, kind: KindGauge, g: g})
	}
	for id, h := range r.histograms {
		refs = append(refs, metricRef{id: id, kind: KindHistogram, h: h})
	}
	r.mu.Unlock()
	sort.Slice(refs, func(i, j int) bool { return refs[i].id < refs[j].id })
	return refs
}

// WriteProm writes every metric in Prometheus text exposition format,
// sorted by series id, with one # TYPE line per family. Histograms emit
// cumulative _bucket{le=...}, _sum and _count series.
func (r *Registry) WriteProm(w io.Writer) error {
	typed := make(map[string]bool)
	for _, ref := range r.snapshotRefs() {
		switch ref.kind {
		case KindCounter:
			c := ref.c
			if !typed[c.name] {
				typed[c.name] = true
				if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", c.name); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", ref.id, c.Value()); err != nil {
				return err
			}
		case KindGauge:
			g := ref.g
			if !typed[g.name] {
				typed[g.name] = true
				if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", g.name); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s %s\n", ref.id, strconv.FormatFloat(g.Value(), 'g', -1, 64)); err != nil {
				return err
			}
		case KindHistogram:
			h := ref.h
			if !typed[h.name] {
				typed[h.name] = true
				if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", h.name); err != nil {
					return err
				}
			}
			if err := writePromHistogram(w, h); err != nil {
				return err
			}
		}
	}
	return nil
}

// --- Structured samples ---------------------------------------------------------

// BucketCount is one populated histogram bucket in a MetricSample:
// cumulative count of observations <= LE.
type BucketCount struct {
	LE  float64
	Cum uint64
}

// MetricSample is one series in a structured registry snapshot. Exactly the
// fields matching Kind are meaningful: Counter for KindCounter, Value for
// KindGauge, Count/Sum/Buckets for KindHistogram.
type MetricSample struct {
	ID     string // canonical series id (name{k="v",...})
	Kind   MetricKind
	Name   string   // metric family name
	Labels []string // sorted alternating key/value pairs (nil when unlabelled)

	Counter uint64
	Value   float64
	Count   uint64
	Sum     float64
	Buckets []BucketCount // populated buckets only, cumulative, ascending LE
}

// Samples returns a point-in-time structured snapshot of every registered
// series, sorted by series id. Pointers are captured under the registration
// lock and values read atomically after it is released, so Samples is safe
// against concurrent registration and updates; it is the feed for the
// Scraper and the introspection endpoints.
func (r *Registry) Samples() []MetricSample {
	refs := r.snapshotRefs()
	out := make([]MetricSample, 0, len(refs))
	for _, ref := range refs {
		s := MetricSample{ID: ref.id, Kind: ref.kind}
		switch ref.kind {
		case KindCounter:
			s.Name = ref.c.name
			s.Labels = ref.c.labelPairs
			s.Counter = ref.c.Value()
		case KindGauge:
			s.Name = ref.g.name
			s.Labels = ref.g.labelPairs
			s.Value = ref.g.Value()
		case KindHistogram:
			h := ref.h
			s.Name = h.name
			s.Labels = h.labelPairs
			s.Count = h.Count()
			s.Sum = h.Sum()
			var cum uint64
			for i := 0; i <= histBuckets; i++ {
				n := h.buckets[i].Load()
				if n == 0 {
					continue
				}
				cum += n
				s.Buckets = append(s.Buckets, BucketCount{LE: BucketBound(i), Cum: cum})
			}
		}
		out = append(out, s)
	}
	return out
}

// writePromHistogram renders one histogram's _bucket/_sum/_count series.
// Only populated buckets (plus +Inf) are emitted to keep dumps compact;
// cumulative counts stay correct because they accumulate across skipped
// buckets.
func writePromHistogram(w io.Writer, h *Histogram) error {
	labels := strings.TrimSuffix(strings.TrimPrefix(h.labels, "{"), "}")
	var cum uint64
	for i := 0; i <= histBuckets; i++ {
		n := h.buckets[i].Load()
		cum += n
		if n == 0 && i != histBuckets {
			continue
		}
		le := formatBound(BucketBound(i))
		var err error
		if labels == "" {
			_, err = fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.name, le, cum)
		} else {
			_, err = fmt.Fprintf(w, "%s_bucket{%s,le=%q} %d\n", h.name, labels, le, cum)
		}
		if err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", h.name, h.labels, strconv.FormatFloat(h.Sum(), 'g', -1, 64)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", h.name, h.labels, h.Count())
	return err
}
