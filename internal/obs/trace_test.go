package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestSpanEventsAreJSONL(t *testing.T) {
	var buf bytes.Buffer
	var tr Tracer
	tr.SetWriter(&buf)

	root := tr.Span("campaign").With("region", "us-west1")
	child := root.Child("round").WithInt("hour", 4).WithTime("virtual", time.Date(2020, 5, 1, 4, 0, 0, 0, time.UTC))
	child.End()
	root.End()
	tr.SetWriter(nil)

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d span events, want 2:\n%s", len(lines), buf.String())
	}

	type event struct {
		Span   string            `json:"span"`
		ID     uint64            `json:"id"`
		Parent uint64            `json:"parent"`
		Start  string            `json:"start"`
		DurNs  int64             `json:"dur_ns"`
		Attrs  map[string]string `json:"attrs"`
	}
	var childEv, rootEv event
	if err := json.Unmarshal([]byte(lines[0]), &childEv); err != nil {
		t.Fatalf("child event not valid JSON: %v\n%s", err, lines[0])
	}
	if err := json.Unmarshal([]byte(lines[1]), &rootEv); err != nil {
		t.Fatalf("root event not valid JSON: %v\n%s", err, lines[1])
	}
	if childEv.Span != "round" || rootEv.Span != "campaign" {
		t.Fatalf("span names = %q, %q", childEv.Span, rootEv.Span)
	}
	if childEv.Parent != rootEv.ID {
		t.Fatalf("child parent = %d, want root id %d", childEv.Parent, rootEv.ID)
	}
	if childEv.Attrs["hour"] != "4" {
		t.Errorf("child hour attr = %q, want 4", childEv.Attrs["hour"])
	}
	if childEv.Attrs["virtual"] != "2020-05-01T04:00:00Z" {
		t.Errorf("child virtual attr = %q", childEv.Attrs["virtual"])
	}
	if rootEv.Attrs["region"] != "us-west1" {
		t.Errorf("root region attr = %q", rootEv.Attrs["region"])
	}
	if childEv.DurNs < 0 || rootEv.DurNs < 0 {
		t.Error("negative span duration")
	}
	if _, err := time.Parse(time.RFC3339Nano, rootEv.Start); err != nil {
		t.Errorf("root start %q not RFC3339Nano: %v", rootEv.Start, err)
	}
}

func TestDisabledTracerNoOps(t *testing.T) {
	var tr Tracer
	sp := tr.Span("x")
	if sp.tr != nil {
		t.Fatal("disabled tracer returned a live span")
	}
	// All methods must be callable on the zero span.
	sp.With("k", "v").WithInt("i", 1).Child("y").End()
	sp.End()
	if tr.Enabled() {
		t.Fatal("tracer enabled without a writer")
	}
	var nilTracer *Tracer
	if nilTracer.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	nilTracer.Span("z").End()
}

func TestSpanAttrCapacity(t *testing.T) {
	var buf bytes.Buffer
	var tr Tracer
	tr.SetWriter(&buf)
	sp := tr.Span("crowded")
	for i := 0; i < spanAttrs+3; i++ {
		sp = sp.WithInt("k", i)
	}
	sp.End()
	var ev struct {
		Attrs map[string]string `json:"attrs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &ev); err != nil {
		t.Fatalf("overflowing attrs corrupted the event: %v\n%s", err, buf.String())
	}
}
