package obs

import (
	"testing"
)

// The BenchmarkObs* benchmarks feed BENCH_obs.json via `make bench`. The
// Disabled variants pin the no-op cost paid by instrumented hot paths when
// metrics are off (must be a few ns and 0 allocs/op); the Enabled variants
// record the live-update cost.

func BenchmarkObsDisabledCounter(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkObsDisabledHistogram(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_ns")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i))
	}
}

func BenchmarkObsDisabledSpan(b *testing.B) {
	r := NewRegistry()
	tr := r.Tracer()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := tr.Span("test").With("region", "us-east1").WithInt("server", i)
		sp.Child("leaf").End()
		sp.End()
	}
}

func BenchmarkObsEnabledCounter(b *testing.B) {
	r := NewRegistry()
	r.SetEnabled(true)
	c := r.Counter("bench_total")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkObsEnabledHistogram(b *testing.B) {
	r := NewRegistry()
	r.SetEnabled(true)
	h := r.Histogram("bench_ns")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i & 0xfffff))
	}
}
