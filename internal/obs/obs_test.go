package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total")
	g := r.Gauge("queue_depth")

	// Disabled: updates are dropped.
	c.Inc()
	g.Set(5)
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatalf("disabled registry recorded updates: counter=%d gauge=%g", c.Value(), g.Value())
	}

	r.SetEnabled(true)
	c.Inc()
	c.Add(4)
	g.Set(2.5)
	g.Add(-0.5)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if g.Value() != 2.0 {
		t.Fatalf("gauge = %g, want 2", g.Value())
	}

	// Re-registration returns the same instance.
	if r.Counter("requests_total") != c {
		t.Fatal("re-registering a counter returned a new instance")
	}
	if r.Gauge("queue_depth") != g {
		t.Fatal("re-registering a gauge returned a new instance")
	}
}

func TestLabelledSeriesIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("inserts_total", "shard", "3", "store", "main")
	b := r.Counter("inserts_total", "store", "main", "shard", "3") // same series, reordered labels
	if a != b {
		t.Fatal("label order changed series identity")
	}
	c := r.Counter("inserts_total", "shard", "4", "store", "main")
	if a == c {
		t.Fatal("distinct labels mapped to one series")
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_metric")
	defer func() {
		if recover() == nil {
			t.Fatal("registering dup_metric as a gauge after a counter did not panic")
		}
	}()
	r.Gauge("dup_metric")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name did not panic")
		}
	}()
	r.Counter("bad name with spaces")
}

func TestHistogramBuckets(t *testing.T) {
	if got := bucketIndex(0); got != 0 {
		t.Errorf("bucketIndex(0) = %d, want 0", got)
	}
	if got := bucketIndex(1); got != 0 {
		t.Errorf("bucketIndex(1) = %d, want 0", got)
	}
	if got := bucketIndex(2); got != 1 {
		t.Errorf("bucketIndex(2) = %d, want 1", got)
	}
	if got := bucketIndex(3); got != 2 {
		t.Errorf("bucketIndex(3) = %d, want 2 (le=4)", got)
	}
	if got := bucketIndex(1024); got != 10 {
		t.Errorf("bucketIndex(1024) = %d, want 10", got)
	}
	if got := bucketIndex(1025); got != 11 {
		t.Errorf("bucketIndex(1025) = %d, want 11", got)
	}
	if got := bucketIndex(math.MaxUint64); got != histBuckets {
		t.Errorf("bucketIndex(maxuint) = %d, want overflow bucket %d", got, histBuckets)
	}
	if !math.IsInf(BucketBound(histBuckets), 1) {
		t.Error("overflow bucket bound is not +Inf")
	}

	r := NewRegistry()
	r.SetEnabled(true)
	h := r.Histogram("latency_ns")
	for _, v := range []float64{1, 2, 3, 1024, 1 << 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	wantSum := 1.0 + 2 + 3 + 1024 + (1 << 50)
	if h.Sum() != wantSum {
		t.Fatalf("sum = %g, want %g", h.Sum(), wantSum)
	}
}

func TestWritePromAndSnapshot(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	r.Counter("hits_total", "cache", "tree").Add(7)
	r.Gauge("progress").Set(0.5)
	h := r.Histogram("wait_ns")
	h.Observe(3)
	h.Observe(100)

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE hits_total counter",
		`hits_total{cache="tree"} 7`,
		"# TYPE progress gauge",
		"progress 0.5",
		"# TYPE wait_ns histogram",
		`wait_ns_bucket{le="4"} 1`,
		`wait_ns_bucket{le="128"} 2`,
		`wait_ns_bucket{le="+Inf"} 2`,
		"wait_ns_sum 103",
		"wait_ns_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom dump missing %q:\n%s", want, out)
		}
	}

	// Every line is either a comment or "<id> <value>"; no duplicate ids.
	seen := make(map[string]bool)
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		id, _, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed prom line %q", line)
		}
		if seen[id] {
			t.Fatalf("duplicate series %q in prom dump", id)
		}
		seen[id] = true
	}

	snap := r.Snapshot()
	if got := snap[`hits_total{cache="tree"}`]; got != uint64(7) {
		t.Errorf("snapshot counter = %v, want 7", got)
	}
	if got := snap["progress"]; got != 0.5 {
		t.Errorf("snapshot gauge = %v, want 0.5", got)
	}
	hv, ok := snap["wait_ns"].(HistogramValue)
	if !ok || hv.Count != 2 || hv.Buckets["4"] != 1 || hv.Buckets["128"] != 2 {
		t.Errorf("snapshot histogram = %+v", snap["wait_ns"])
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot does not marshal: %v", err)
	}
}

// TestRegistryConcurrent drives counters, gauges, histograms, spans,
// registration and dumps from 12 goroutines; run under -race this is the
// satellite's registry race test, and the final counts pin atomicity.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	r.Tracer().SetWriter(&syncDiscard{})
	c := r.Counter("conc_total")
	g := r.Gauge("conc_gauge")
	h := r.Histogram("conc_hist")

	const goroutines = 12
	const iters = 2000
	var wg sync.WaitGroup
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 4096))
				if i%512 == 0 {
					// Concurrent registration and dumping.
					r.Counter("conc_total")
					var buf bytes.Buffer
					if err := r.WriteProm(&buf); err != nil {
						t.Error(err)
						return
					}
					sp := r.Tracer().Span("iter").WithInt("g", gi)
					sp.Child("leaf").End()
					sp.End()
				}
			}
		}(gi)
	}
	wg.Wait()

	if c.Value() != goroutines*iters {
		t.Fatalf("counter = %d, want %d", c.Value(), goroutines*iters)
	}
	if g.Value() != goroutines*iters {
		t.Fatalf("gauge = %g, want %d", g.Value(), goroutines*iters)
	}
	if h.Count() != goroutines*iters {
		t.Fatalf("histogram count = %d, want %d", h.Count(), goroutines*iters)
	}
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
	}
	if cum != goroutines*iters {
		t.Fatalf("bucket total = %d, want %d", cum, goroutines*iters)
	}
}

// syncDiscard is an io.Writer safe for concurrent spans.
type syncDiscard struct{ mu sync.Mutex }

func (d *syncDiscard) Write(p []byte) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(p), nil
}

// TestDisabledPathZeroAllocs pins the disabled-path invariant: with the
// registry off, counter/gauge/histogram updates and full span chains
// allocate nothing, so instrumented hot paths keep their PR 2 numbers.
func TestDisabledPathZeroAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("off_total")
	g := r.Gauge("off_gauge")
	h := r.Histogram("off_hist")

	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(1)
		g.Add(2)
		h.Observe(42)
		sp := r.Tracer().Span("campaign").With("region", "us-east1").WithInt("hour", 3)
		child := sp.Child("test").WithTime("at", time.Time{})
		child.End()
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled metrics path allocates %.1f allocs/op, want 0", allocs)
	}
}
