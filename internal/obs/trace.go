package obs

import (
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer emits phase-scoped span events as JSON lines, one object per
// completed span: {"span","id","parent","start","dur_ns","attrs"}. It is
// disabled until SetWriter installs a destination; while disabled, Span and
// every Span method are zero-allocation no-ops, so per-test spans on the
// orchestrator's hot path cost a single atomic load when tracing is off.
//
// Spans form the campaign hierarchy (campaign → round → vm-hour → test)
// through Child, which stamps the parent span id into the event; offline
// tools reassemble the tree from (id, parent).
type Tracer struct {
	enabled atomic.Bool
	ids     atomic.Uint64

	mu sync.Mutex
	w  io.Writer
}

// SetWriter installs the span event destination; nil disables the tracer.
func (t *Tracer) SetWriter(w io.Writer) {
	t.mu.Lock()
	t.w = w
	t.mu.Unlock()
	t.enabled.Store(w != nil)
}

// Enabled reports whether spans are being recorded.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// Trace starts a span on the default registry's tracer.
func Trace(name string) Span { return defaultRegistry.tracer.Span(name) }

// TraceEnabled reports whether the default registry's tracer is recording.
func TraceEnabled() bool { return defaultRegistry.tracer.Enabled() }

// SetTraceWriter installs the default tracer's destination (nil disables).
func SetTraceWriter(w io.Writer) { defaultRegistry.tracer.SetWriter(w) }

// spanAttrs bounds the attribute pairs one span can carry; later With calls
// are dropped. Six pairs cover the deepest CLASP span (test: server, tier,
// dir, hour, plus slack).
const spanAttrs = 6

// Span is one in-flight trace span. It is a value type: starting, tagging
// and ending a span allocates nothing beyond the final event write, and the
// zero Span (returned while tracing is disabled) no-ops every method.
type Span struct {
	tr     *Tracer
	id     uint64
	parent uint64
	name   string
	start  time.Time
	nattrs int
	attrs  [2 * spanAttrs]string
}

// Span starts a root span. Returns the zero Span while disabled.
func (t *Tracer) Span(name string) Span {
	if t == nil || !t.enabled.Load() {
		return Span{}
	}
	return Span{tr: t, id: t.ids.Add(1), name: name, start: time.Now()}
}

// Child starts a span whose event records this span as its parent.
func (s Span) Child(name string) Span {
	if s.tr == nil {
		return Span{}
	}
	c := s.tr.Span(name)
	c.parent = s.id
	return c
}

// With attaches a key/value attribute and returns the updated span. Values
// beyond the fixed capacity are dropped.
func (s Span) With(k, v string) Span {
	if s.tr == nil || s.nattrs >= spanAttrs {
		return s
	}
	s.attrs[2*s.nattrs] = k
	s.attrs[2*s.nattrs+1] = v
	s.nattrs++
	return s
}

// WithInt attaches an integer attribute. The conversion only runs when the
// span is live, keeping the disabled path allocation-free.
func (s Span) WithInt(k string, v int) Span {
	if s.tr == nil {
		return s
	}
	return s.With(k, strconv.Itoa(v))
}

// WithTime attaches a virtual-clock timestamp attribute (RFC 3339). The
// formatting only runs when the span is live.
func (s Span) WithTime(k string, v time.Time) Span {
	if s.tr == nil {
		return s
	}
	return s.With(k, v.UTC().Format(time.RFC3339))
}

// End completes the span and writes its event. No-op on the zero Span.
func (s Span) End() {
	if s.tr == nil {
		return
	}
	dur := time.Since(s.start)
	// Build the JSON line without encoding/json: span names and attribute
	// keys are code-controlled identifiers, and values pass through
	// strconv.Quote, so the output is always valid JSON.
	buf := make([]byte, 0, 192)
	buf = append(buf, `{"span":`...)
	buf = strconv.AppendQuote(buf, s.name)
	buf = append(buf, `,"id":`...)
	buf = strconv.AppendUint(buf, s.id, 10)
	if s.parent != 0 {
		buf = append(buf, `,"parent":`...)
		buf = strconv.AppendUint(buf, s.parent, 10)
	}
	buf = append(buf, `,"start":`...)
	buf = strconv.AppendQuote(buf, s.start.UTC().Format(time.RFC3339Nano))
	buf = append(buf, `,"dur_ns":`...)
	buf = strconv.AppendInt(buf, dur.Nanoseconds(), 10)
	if s.nattrs > 0 {
		buf = append(buf, `,"attrs":{`...)
		for i := 0; i < s.nattrs; i++ {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = strconv.AppendQuote(buf, s.attrs[2*i])
			buf = append(buf, ':')
			buf = strconv.AppendQuote(buf, s.attrs[2*i+1])
		}
		buf = append(buf, '}')
	}
	buf = append(buf, '}', '\n')

	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	if s.tr.w != nil {
		_, _ = s.tr.w.Write(buf)
	}
}
