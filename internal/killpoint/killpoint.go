// Package killpoint is the crash-test hook behind the `make resume-smoke`
// kill matrix: it SIGKILLs the current process at a named, deterministic
// point of a campaign so the checkpoint/resume machinery can be proven
// against real uncooperative deaths (no deferred cleanup, no flushes).
//
// The hook is armed through the environment: CLASP_KILL_POINT="<point>:<hour>"
// kills the process the first time Maybe(point, hour) is reached. With the
// variable unset — every production run — Maybe is a single nil check on a
// package variable, so the hook costs nothing and cannot fire.
//
// The points the orchestrator and checkpoint writer expose:
//
//	mid-round       a round has executed but its records are not yet
//	                emitted or checkpointed — the work since the last
//	                checkpoint must be re-executed on resume
//	block-flush     the checkpoint's record blocks are written to the
//	                temp file but not yet atomically renamed — the
//	                previous checkpoint must stay intact
//	round-boundary  a checkpoint just committed — resume must continue
//	                from exactly this round
//	campaign-done   the Nth campaign of a multi-campaign command (report
//	                all, costs) just completed — here the "hour" is the
//	                1-based completion count, and resume must skip the
//	                finished campaigns instead of re-measuring them
package killpoint

import (
	"os"
	"strconv"
	"strings"
)

// EnvVar arms the kill hook: "<point>:<hour>".
const EnvVar = "CLASP_KILL_POINT"

type armed struct {
	point string
	hour  int
}

var target *armed

func init() {
	v := os.Getenv(EnvVar)
	if v == "" {
		return
	}
	point, hourStr, ok := strings.Cut(v, ":")
	if !ok || point == "" {
		return
	}
	hour, err := strconv.Atoi(hourStr)
	if err != nil {
		return
	}
	target = &armed{point: point, hour: hour}
}

// Maybe SIGKILLs the process if the (point, hour) pair matches the armed
// kill point. SIGKILL cannot be caught, so nothing after this call — no
// defers, no sink flushes, no checkpoint writes — runs when it fires,
// exactly like a crash or an OOM kill.
func Maybe(point string, hour int) {
	if target == nil || target.point != point || target.hour != hour {
		return
	}
	p, err := os.FindProcess(os.Getpid())
	if err == nil {
		_ = p.Kill()
	}
	// Kill delivery is asynchronous in principle; never let execution
	// continue past an armed kill point.
	select {}
}
