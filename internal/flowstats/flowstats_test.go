package flowstats

import (
	"bytes"
	"math"
	"net/netip"
	"testing"
	"time"
)

var (
	clientIP = netip.MustParseAddr("15.10.0.10")
	serverIP = netip.MustParseAddr("20.5.16.1")
	start    = time.Date(2020, 5, 1, 12, 0, 0, 0, time.UTC)
)

func synth(t *testing.T, cfg SynthConfig) []*FlowStats {
	t.Helper()
	if cfg.Client == (netip.Addr{}) {
		cfg.Client = clientIP
	}
	if cfg.Server == (netip.Addr{}) {
		cfg.Server = serverIP
	}
	if cfg.ClientPort == 0 {
		cfg.ClientPort = 50123
	}
	if cfg.Start.IsZero() {
		cfg.Start = start
	}
	var buf bytes.Buffer
	if err := Synthesize(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	flows, err := Analyze(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return flows
}

func TestSynthesizeAnalyzeRTT(t *testing.T) {
	flows := synth(t, SynthConfig{RTTms: 48, RateMbps: 100, DurationSec: 2, Seed: 1})
	if len(flows) != 1 {
		t.Fatalf("flows = %d", len(flows))
	}
	f := flows[0]
	if math.Abs(f.HandshakeRTTms-48) > 1 {
		t.Errorf("handshake RTT = %.1f, want ~48", f.HandshakeRTTms)
	}
}

func TestSynthesizeAnalyzeLoss(t *testing.T) {
	cases := []float64{0, 0.02, 0.10, 0.30}
	for _, loss := range cases {
		flows := synth(t, SynthConfig{RTTms: 40, RateMbps: 80, DurationSec: 4, Loss: loss, Seed: 9})
		f := flows[0]
		got := f.LossRate
		tol := 0.25*loss + 0.005
		if math.Abs(got-loss) > tol {
			t.Errorf("loss %.2f: estimated %.4f (tolerance %.4f)", loss, got, tol)
		}
	}
}

func TestSynthesizeAnalyzeThroughput(t *testing.T) {
	flows := synth(t, SynthConfig{RTTms: 30, RateMbps: 200, DurationSec: 3, Seed: 2})
	f := flows[0]
	got := f.ThroughputMbps()
	if got < 150 || got > 250 {
		t.Errorf("estimated throughput %.1f Mbps, modelled 200", got)
	}
	if f.BytesToClient < f.BytesToServer {
		t.Error("download flow moved more data to the server than the client")
	}
}

func TestTransactionsIdentified(t *testing.T) {
	flows := synth(t, SynthConfig{RTTms: 40, RateMbps: 100, DurationSec: 4, Requests: 4, Seed: 3})
	f := flows[0]
	if len(f.Transactions) < 3 || len(f.Transactions) > 5 {
		t.Fatalf("transactions = %d, want ~4", len(f.Transactions))
	}
	var total int64
	for _, tx := range f.Transactions {
		if tx.RespB <= 0 {
			t.Errorf("transaction with no response bytes: %+v", tx)
		}
		if tx.End.Before(tx.Start) {
			t.Errorf("transaction ends before it starts: %+v", tx)
		}
		total += tx.RespB
	}
	if total < f.BytesToClient*8/10 {
		t.Errorf("transactions cover %d of %d bytes", total, f.BytesToClient)
	}
}

func TestEstimateLossAggregates(t *testing.T) {
	// Two separate captures (distinct client ports), aggregated.
	var all []*FlowStats
	for port := uint16(1000); port < 1002; port++ {
		all = append(all, synth(t, SynthConfig{
			ClientPort: port, RTTms: 30, RateMbps: 50, DurationSec: 2,
			Loss: 0.1, Seed: int64(port),
		})...)
	}
	if len(all) != 2 {
		t.Fatalf("flows = %d", len(all))
	}
	agg := EstimateLoss(all)
	if math.Abs(agg-0.1) > 0.04 {
		t.Errorf("aggregate loss = %.4f, want ~0.1", agg)
	}
}

func TestMedianHandshakeRTT(t *testing.T) {
	if !math.IsNaN(MedianHandshakeRTT(nil)) {
		t.Error("empty median should be NaN")
	}
	flows := []*FlowStats{{HandshakeRTTms: 10}, {HandshakeRTTms: 30}, {HandshakeRTTms: 20}}
	if m := MedianHandshakeRTT(flows); m != 20 {
		t.Errorf("median = %v", m)
	}
}

func TestEstimateLossEmpty(t *testing.T) {
	if EstimateLoss(nil) != 0 {
		t.Error("empty loss should be 0")
	}
}

func TestSynthesizeValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := Synthesize(&buf, SynthConfig{Client: clientIP, Server: serverIP}); err == nil {
		t.Error("zero rate/duration accepted")
	}
}

func TestAnalyzeGarbage(t *testing.T) {
	if _, err := Analyze(bytes.NewReader([]byte("not a pcap"))); err == nil {
		t.Error("garbage capture accepted")
	}
}

func TestAnalyzeMultipleFlows(t *testing.T) {
	// Interleave two flows in one capture by synthesising into one buffer
	// won't work (two global headers), so synthesise one flow and verify
	// the flow keying keeps both directions together.
	flows := synth(t, SynthConfig{RTTms: 25, RateMbps: 60, DurationSec: 1, Seed: 5})
	if len(flows) != 1 {
		t.Fatalf("directions split into %d flows", len(flows))
	}
	if flows[0].Packets < 10 {
		t.Errorf("packets = %d", flows[0].Packets)
	}
}
