// Package flowstats re-derives transport metrics from packet-header
// captures, as CLASP's analysis VM does with the tcpdump output of each
// speed test (§3.3): it identifies HTTP(S) transactions inside encrypted
// flows, estimates round-trip latency from the TCP handshake and
// request/response turns, and estimates the packet loss rate from
// retransmission signatures (segments arriving below the highest sequence
// number already seen).
//
// The package also synthesises captures from a modelled flow (the
// simulator's ground truth), so the estimation path can be validated
// end-to-end: synthesise with known RTT/loss, analyse, compare.
package flowstats

import (
	"fmt"
	"io"
	"math"
	"net/netip"
	"sort"
	"time"

	"github.com/clasp-measurement/clasp/internal/pcap"
)

// FlowStats summarises one TCP connection seen in a capture.
type FlowStats struct {
	Flow pcap.Flow // canonical orientation (client = Src side of first SYN)

	Packets        int
	DataSegments   int // segments carrying payload toward the client
	RetransSegs    int
	BytesToClient  int64
	BytesToServer  int64
	HandshakeRTTms float64 // SYN -> SYN/ACK at the capture point
	LossRate       float64 // RetransSegs / DataSegments
	Transactions   []Transaction
	First, Last    time.Time
}

// Transaction is one request/response exchange inside the flow, identified
// without decrypting payloads: a client push followed by a server burst.
type Transaction struct {
	Start     time.Time
	End       time.Time
	RespB     int64
	TurnRTTms float64 // request -> first response byte
}

// ThroughputMbps is the mean goodput toward the client over the flow's
// lifetime.
func (f *FlowStats) ThroughputMbps() float64 {
	d := f.Last.Sub(f.First).Seconds()
	if d <= 0 {
		return 0
	}
	return float64(f.BytesToClient) * 8 / 1e6 / d
}

// Analyze reads a pcap stream and returns per-flow statistics, sorted by
// first-packet time.
func Analyze(r io.Reader) ([]*FlowStats, error) {
	pr, err := pcap.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("flowstats: %w", err)
	}
	type state struct {
		stats     *FlowStats
		client    pcap.Endpoint // initiator
		synTime   time.Time
		synSeen   bool
		rttDone   bool
		maxSeq    uint32
		maxSeqSet bool
		reqTime   time.Time
		reqOpen   bool
		lastResp  time.Time
		txStart   time.Time
		txBytes   int64
		txFirst   time.Time
	}
	flows := make(map[pcap.Flow]*state)

	finishTx := func(st *state) {
		if st.txBytes > 0 {
			turn := 0.0
			if !st.txFirst.IsZero() && !st.reqTime.IsZero() {
				turn = st.txFirst.Sub(st.reqTime).Seconds() * 1000
			}
			st.stats.Transactions = append(st.stats.Transactions, Transaction{
				Start: st.txStart, End: st.lastResp, RespB: st.txBytes, TurnRTTms: turn,
			})
		}
		st.txBytes = 0
		st.txFirst = time.Time{}
		st.reqOpen = false
	}

	for {
		ci, data, err := pr.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("flowstats: %w", err)
		}
		pkt := pcap.Decode(ci, data)
		tcp, ok := pkt.TransportLayer().(*pcap.TCP)
		if !ok {
			continue
		}
		tf, ok := pkt.TransportFlow()
		if !ok {
			continue
		}
		key := tf.Canonical()
		st := flows[key]
		if st == nil {
			st = &state{stats: &FlowStats{Flow: key, First: ci.Timestamp}}
			flows[key] = st
		}
		st.stats.Packets++
		st.stats.Last = ci.Timestamp

		// Handshake: SYN fixes the client side; SYN/ACK gives the RTT at
		// the capture point.
		switch {
		case tcp.SYN && !tcp.ACK:
			st.client = tf.Src
			st.synTime = ci.Timestamp
			st.synSeen = true
		case tcp.SYN && tcp.ACK && st.synSeen && !st.rttDone:
			st.stats.HandshakeRTTms = ci.Timestamp.Sub(st.synTime).Seconds() * 1000
			st.rttDone = true
		}

		toClient := st.synSeen && tf.Dst == st.client
		if tcp.PayloadLen > 0 {
			if toClient {
				st.stats.DataSegments++
				st.stats.BytesToClient += int64(tcp.PayloadLen)
				// Retransmission signature: a data segment whose end does
				// not advance the highest sequence already seen.
				end := tcp.Seq + uint32(tcp.PayloadLen)
				if st.maxSeqSet && int32(end-st.maxSeq) <= 0 {
					st.stats.RetransSegs++
				}
				if !st.maxSeqSet || int32(end-st.maxSeq) > 0 {
					st.maxSeq = end
					st.maxSeqSet = true
				}
				// Transaction response accounting.
				if st.reqOpen && st.txFirst.IsZero() {
					st.txFirst = ci.Timestamp
				}
				st.txBytes += int64(tcp.PayloadLen)
				st.lastResp = ci.Timestamp
			} else {
				st.stats.BytesToServer += int64(tcp.PayloadLen)
				if st.synSeen && tf.Src == st.client && tcp.PSH {
					// Client push = start of a new transaction.
					finishTx(st)
					st.reqOpen = true
					st.reqTime = ci.Timestamp
					st.txStart = ci.Timestamp
				}
			}
		}
	}
	var out []*FlowStats
	for _, st := range flows {
		finishTx(st)
		if st.stats.DataSegments > 0 {
			st.stats.LossRate = float64(st.stats.RetransSegs) / float64(st.stats.DataSegments)
		}
		out = append(out, st.stats)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].First.Before(out[j].First) })
	return out, nil
}

// SynthConfig models one flow to synthesise into a capture taken at the
// client (the measurement VM).
type SynthConfig struct {
	Client, Server netip.Addr
	ClientPort     uint16
	ServerPort     uint16 // default 443
	Start          time.Time
	RTTms          float64
	Loss           float64 // probability a data segment needs retransmission
	RateMbps       float64 // delivery rate toward the client
	DurationSec    float64
	MSS            int   // default 1448
	Seed           int64 // drives deterministic loss placement
	// Requests inserts n client request pushes evenly through the flow
	// (HTTPS transactions); 1 by default.
	Requests int
}

// Synthesize writes a header-only capture of the modelled download flow.
func Synthesize(w io.Writer, cfg SynthConfig) error {
	if cfg.ServerPort == 0 {
		cfg.ServerPort = 443
	}
	if cfg.MSS <= 0 {
		cfg.MSS = 1448
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 1
	}
	if cfg.RateMbps <= 0 || cfg.DurationSec <= 0 {
		return fmt.Errorf("flowstats: rate and duration must be positive")
	}
	pw, err := pcap.NewWriter(w, 96)
	if err != nil {
		return err
	}
	rtt := time.Duration(cfg.RTTms * float64(time.Millisecond))
	now := cfg.Start
	var ipID uint16

	emit := func(at time.Time, src, dst netip.Addr, t *pcap.TCP, payload int) error {
		ipID++
		pkt := pcap.TCPPacket(src, dst, t, ipID, 60, payload, 0)
		return pw.WritePacket(pcap.CaptureInfo{Timestamp: at, Length: len(pkt) + payload}, pkt)
	}

	// Handshake as captured at the client: SYN out, SYN/ACK in after one
	// RTT, ACK out.
	cSeq, sSeq := uint32(1000), uint32(5000)
	if err := emit(now, cfg.Client, cfg.Server, &pcap.TCP{SrcPort: cfg.ClientPort, DstPort: cfg.ServerPort, Seq: cSeq, SYN: true, Window: 65535}, 0); err != nil {
		return err
	}
	now = now.Add(rtt)
	if err := emit(now, cfg.Server, cfg.Client, &pcap.TCP{SrcPort: cfg.ServerPort, DstPort: cfg.ClientPort, Seq: sSeq, Ack: cSeq + 1, SYN: true, ACK: true, Window: 65535}, 0); err != nil {
		return err
	}
	cSeq++
	sSeq++
	if err := emit(now, cfg.Client, cfg.Server, &pcap.TCP{SrcPort: cfg.ClientPort, DstPort: cfg.ServerPort, Seq: cSeq, Ack: sSeq, ACK: true, Window: 65535}, 0); err != nil {
		return err
	}

	totalBytes := int64(cfg.RateMbps * 1e6 / 8 * cfg.DurationSec)
	nSegs := int(totalBytes / int64(cfg.MSS))
	if nSegs < 1 {
		nSegs = 1
	}
	segGap := time.Duration(cfg.DurationSec * float64(time.Second) / float64(nSegs))
	reqEvery := nSegs / cfg.Requests

	h := uint64(cfg.Seed)
	if h == 0 {
		h = 0x9e3779b97f4a7c15 // xorshift must not start at zero
	}
	nextRand := func() float64 {
		h ^= h << 13
		h ^= h >> 7
		h ^= h << 17
		return float64(h%1_000_000) / 1_000_000
	}

	type pending struct {
		at  time.Time
		seq uint32
	}
	var retrans []pending
	ackEvery := 2
	for i := 0; i < nSegs; i++ {
		// Client request pushes (transaction boundaries).
		if reqEvery > 0 && i%reqEvery == 0 {
			if err := emit(now, cfg.Client, cfg.Server, &pcap.TCP{SrcPort: cfg.ClientPort, DstPort: cfg.ServerPort, Seq: cSeq, Ack: sSeq, ACK: true, PSH: true, Window: 65535}, 200); err != nil {
				return err
			}
			cSeq += 200
			now = now.Add(rtt / 2)
		}
		// Flush due retransmissions first.
		for len(retrans) > 0 && !retrans[0].at.After(now) {
			p := retrans[0]
			retrans = retrans[1:]
			if err := emit(p.at, cfg.Server, cfg.Client, &pcap.TCP{SrcPort: cfg.ServerPort, DstPort: cfg.ClientPort, Seq: p.seq, Ack: cSeq, ACK: true, Window: 65535}, cfg.MSS); err != nil {
				return err
			}
		}
		lost := nextRand() < cfg.Loss
		if lost {
			// The original never reaches the client; the retransmission
			// shows up roughly one RTT later with the old sequence.
			retrans = append(retrans, pending{at: now.Add(rtt + rtt/4), seq: sSeq})
		} else {
			if err := emit(now, cfg.Server, cfg.Client, &pcap.TCP{SrcPort: cfg.ServerPort, DstPort: cfg.ClientPort, Seq: sSeq, Ack: cSeq, ACK: true, PSH: i%16 == 15, Window: 65535}, cfg.MSS); err != nil {
				return err
			}
		}
		sSeq += uint32(cfg.MSS)
		if i%ackEvery == ackEvery-1 {
			if err := emit(now, cfg.Client, cfg.Server, &pcap.TCP{SrcPort: cfg.ClientPort, DstPort: cfg.ServerPort, Seq: cSeq, Ack: sSeq, ACK: true, Window: 65535}, 0); err != nil {
				return err
			}
		}
		now = now.Add(segGap)
	}
	for _, p := range retrans {
		if err := emit(p.at, cfg.Server, cfg.Client, &pcap.TCP{SrcPort: cfg.ServerPort, DstPort: cfg.ClientPort, Seq: p.seq, Ack: cSeq, ACK: true, Window: 65535}, cfg.MSS); err != nil {
			return err
		}
	}
	// FIN exchange.
	if err := emit(now, cfg.Server, cfg.Client, &pcap.TCP{SrcPort: cfg.ServerPort, DstPort: cfg.ClientPort, Seq: sSeq, Ack: cSeq, ACK: true, FIN: true, Window: 65535}, 0); err != nil {
		return err
	}
	return emit(now.Add(rtt/2), cfg.Client, cfg.Server, &pcap.TCP{SrcPort: cfg.ClientPort, DstPort: cfg.ServerPort, Seq: cSeq, Ack: sSeq + 1, ACK: true, FIN: true, Window: 65535}, 0)
}

// EstimateLoss is a convenience: the mean loss rate across flows weighted
// by data segments.
func EstimateLoss(flows []*FlowStats) float64 {
	segs, retrans := 0, 0
	for _, f := range flows {
		segs += f.DataSegments
		retrans += f.RetransSegs
	}
	if segs == 0 {
		return 0
	}
	return float64(retrans) / float64(segs)
}

// MedianHandshakeRTT returns the median handshake RTT across flows that
// completed a handshake, or NaN when none did.
func MedianHandshakeRTT(flows []*FlowStats) float64 {
	var xs []float64
	for _, f := range flows {
		if f.HandshakeRTTms > 0 {
			xs = append(xs, f.HandshakeRTTms)
		}
	}
	if len(xs) == 0 {
		return math.NaN()
	}
	sort.Float64s(xs)
	return xs[len(xs)/2]
}
