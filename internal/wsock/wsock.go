// Package wsock is a minimal RFC 6455 WebSocket implementation (stdlib
// only) sufficient for the ndt7 speed test protocol: HTTP/1.1 upgrade
// handshake, text/binary messages with client-side masking, fragmentation
// on read, and ping/pong/close control frames.
package wsock

import (
	"bufio"
	"crypto/rand"
	"crypto/sha1"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"
)

// websocketGUID is the fixed RFC 6455 handshake GUID.
const websocketGUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

// Message opcodes.
const (
	OpContinuation = 0x0
	OpText         = 0x1
	OpBinary       = 0x2
	OpClose        = 0x8
	OpPing         = 0x9
	OpPong         = 0xa
)

// ErrClosed is returned after a close frame has been exchanged.
var ErrClosed = errors.New("wsock: connection closed")

// MaxMessageSize bounds a reassembled message (16 MiB) to keep a broken
// peer from exhausting memory.
const MaxMessageSize = 16 << 20

// Conn is a WebSocket connection over an underlying net.Conn.
type Conn struct {
	conn   net.Conn
	br     *bufio.Reader
	client bool // client connections mask outgoing frames
	closed bool
}

// AcceptKey computes the Sec-WebSocket-Accept value for a handshake key.
func AcceptKey(key string) string {
	h := sha1.Sum([]byte(key + websocketGUID))
	return base64.StdEncoding.EncodeToString(h[:])
}

// Upgrade performs the server side of the handshake on an http request and
// hijacks the connection. subprotocol, when non-empty, is echoed in
// Sec-WebSocket-Protocol.
func Upgrade(w http.ResponseWriter, r *http.Request, subprotocol string) (*Conn, error) {
	if !strings.EqualFold(r.Header.Get("Upgrade"), "websocket") ||
		!headerContainsToken(r.Header.Get("Connection"), "upgrade") {
		http.Error(w, "not a websocket handshake", http.StatusBadRequest)
		return nil, fmt.Errorf("wsock: not a websocket handshake")
	}
	key := r.Header.Get("Sec-WebSocket-Key")
	if key == "" {
		http.Error(w, "missing Sec-WebSocket-Key", http.StatusBadRequest)
		return nil, fmt.Errorf("wsock: missing Sec-WebSocket-Key")
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		http.Error(w, "hijacking unsupported", http.StatusInternalServerError)
		return nil, fmt.Errorf("wsock: response writer cannot hijack")
	}
	conn, rw, err := hj.Hijack()
	if err != nil {
		return nil, fmt.Errorf("wsock: hijack: %w", err)
	}
	var b strings.Builder
	b.WriteString("HTTP/1.1 101 Switching Protocols\r\n")
	b.WriteString("Upgrade: websocket\r\n")
	b.WriteString("Connection: Upgrade\r\n")
	b.WriteString("Sec-WebSocket-Accept: " + AcceptKey(key) + "\r\n")
	if subprotocol != "" {
		b.WriteString("Sec-WebSocket-Protocol: " + subprotocol + "\r\n")
	}
	b.WriteString("\r\n")
	if _, err := conn.Write([]byte(b.String())); err != nil {
		conn.Close()
		return nil, fmt.Errorf("wsock: writing handshake response: %w", err)
	}
	return &Conn{conn: conn, br: rw.Reader, client: false}, nil
}

func headerContainsToken(header, token string) bool {
	for _, part := range strings.Split(header, ",") {
		if strings.EqualFold(strings.TrimSpace(part), token) {
			return true
		}
	}
	return false
}

// Dial connects to a WebSocket endpoint over TCP ("ws://host/path" style;
// host must include the port).
func Dial(host, path, subprotocol string, timeout time.Duration) (*Conn, error) {
	conn, err := net.DialTimeout("tcp", host, timeout)
	if err != nil {
		return nil, fmt.Errorf("wsock: dial: %w", err)
	}
	c, err := ClientHandshake(conn, host, path, subprotocol)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// ClientHandshake performs the client side of the upgrade over an existing
// connection (useful for shaped or in-memory transports).
func ClientHandshake(conn net.Conn, host, path, subprotocol string) (*Conn, error) {
	var keyBytes [16]byte
	if _, err := rand.Read(keyBytes[:]); err != nil {
		return nil, fmt.Errorf("wsock: generating key: %w", err)
	}
	key := base64.StdEncoding.EncodeToString(keyBytes[:])

	var b strings.Builder
	fmt.Fprintf(&b, "GET %s HTTP/1.1\r\n", path)
	fmt.Fprintf(&b, "Host: %s\r\n", host)
	b.WriteString("Upgrade: websocket\r\n")
	b.WriteString("Connection: Upgrade\r\n")
	fmt.Fprintf(&b, "Sec-WebSocket-Key: %s\r\n", key)
	b.WriteString("Sec-WebSocket-Version: 13\r\n")
	if subprotocol != "" {
		fmt.Fprintf(&b, "Sec-WebSocket-Protocol: %s\r\n", subprotocol)
	}
	b.WriteString("\r\n")
	if _, err := conn.Write([]byte(b.String())); err != nil {
		return nil, fmt.Errorf("wsock: writing handshake: %w", err)
	}
	br := bufio.NewReader(conn)
	resp, err := http.ReadResponse(br, nil)
	if err != nil {
		return nil, fmt.Errorf("wsock: reading handshake response: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusSwitchingProtocols {
		return nil, fmt.Errorf("wsock: handshake rejected: %s", resp.Status)
	}
	if got := resp.Header.Get("Sec-WebSocket-Accept"); got != AcceptKey(key) {
		return nil, fmt.Errorf("wsock: bad Sec-WebSocket-Accept %q", got)
	}
	return &Conn{conn: conn, br: br, client: true}, nil
}

// WriteMessage sends one unfragmented message with the given opcode.
func (c *Conn) WriteMessage(opcode int, payload []byte) error {
	if c.closed {
		return ErrClosed
	}
	return c.writeFrame(opcode, payload)
}

func (c *Conn) writeFrame(opcode int, payload []byte) error {
	var hdr [14]byte
	hdr[0] = 0x80 | byte(opcode) // FIN set
	n := 2
	switch {
	case len(payload) < 126:
		hdr[1] = byte(len(payload))
	case len(payload) <= 0xffff:
		hdr[1] = 126
		binary.BigEndian.PutUint16(hdr[2:], uint16(len(payload)))
		n = 4
	default:
		hdr[1] = 127
		binary.BigEndian.PutUint64(hdr[2:], uint64(len(payload)))
		n = 10
	}
	var body []byte
	if c.client {
		hdr[1] |= 0x80
		var mask [4]byte
		if _, err := rand.Read(mask[:]); err != nil {
			return fmt.Errorf("wsock: generating mask: %w", err)
		}
		copy(hdr[n:], mask[:])
		n += 4
		body = make([]byte, len(payload))
		for i, b := range payload {
			body[i] = b ^ mask[i%4]
		}
	} else {
		body = payload
	}
	if _, err := c.conn.Write(hdr[:n]); err != nil {
		return fmt.Errorf("wsock: writing frame header: %w", err)
	}
	if len(body) > 0 {
		if _, err := c.conn.Write(body); err != nil {
			return fmt.Errorf("wsock: writing frame body: %w", err)
		}
	}
	return nil
}

// ReadMessage reads the next data message, transparently answering pings
// and handling fragmentation. A close frame returns ErrClosed after echoing
// the close.
func (c *Conn) ReadMessage() (opcode int, payload []byte, err error) {
	if c.closed {
		return 0, nil, ErrClosed
	}
	var msg []byte
	msgOp := -1
	for {
		fin, op, data, err := c.readFrame()
		if err != nil {
			return 0, nil, err
		}
		switch op {
		case OpPing:
			if err := c.writeFrame(OpPong, data); err != nil {
				return 0, nil, err
			}
			continue
		case OpPong:
			continue
		case OpClose:
			_ = c.writeFrame(OpClose, data)
			c.closed = true
			return 0, nil, ErrClosed
		case OpContinuation:
			if msgOp < 0 {
				return 0, nil, fmt.Errorf("wsock: unexpected continuation frame")
			}
		case OpText, OpBinary:
			if msgOp >= 0 {
				return 0, nil, fmt.Errorf("wsock: new data frame inside fragmented message")
			}
			msgOp = op
		default:
			return 0, nil, fmt.Errorf("wsock: unknown opcode %#x", op)
		}
		if len(msg)+len(data) > MaxMessageSize {
			return 0, nil, fmt.Errorf("wsock: message exceeds %d bytes", MaxMessageSize)
		}
		msg = append(msg, data...)
		if fin {
			return msgOp, msg, nil
		}
	}
}

func (c *Conn) readFrame() (fin bool, opcode int, payload []byte, err error) {
	var h [2]byte
	if _, err := io.ReadFull(c.br, h[:]); err != nil {
		return false, 0, nil, fmt.Errorf("wsock: reading frame header: %w", err)
	}
	fin = h[0]&0x80 != 0
	opcode = int(h[0] & 0x0f)
	masked := h[1]&0x80 != 0
	length := uint64(h[1] & 0x7f)
	switch length {
	case 126:
		var ext [2]byte
		if _, err := io.ReadFull(c.br, ext[:]); err != nil {
			return false, 0, nil, err
		}
		length = uint64(binary.BigEndian.Uint16(ext[:]))
	case 127:
		var ext [8]byte
		if _, err := io.ReadFull(c.br, ext[:]); err != nil {
			return false, 0, nil, err
		}
		length = binary.BigEndian.Uint64(ext[:])
	}
	if length > MaxMessageSize {
		return false, 0, nil, fmt.Errorf("wsock: frame of %d bytes too large", length)
	}
	var mask [4]byte
	if masked {
		if _, err := io.ReadFull(c.br, mask[:]); err != nil {
			return false, 0, nil, err
		}
	}
	payload = make([]byte, length)
	if _, err := io.ReadFull(c.br, payload); err != nil {
		return false, 0, nil, fmt.Errorf("wsock: reading frame payload: %w", err)
	}
	if masked {
		for i := range payload {
			payload[i] ^= mask[i%4]
		}
	}
	return fin, opcode, payload, nil
}

// Close sends a close frame (best effort) and closes the transport.
func (c *Conn) Close() error {
	if !c.closed {
		c.closed = true
		_ = c.writeFrame(OpClose, nil)
	}
	return c.conn.Close()
}

// SetDeadline sets the read/write deadline on the underlying transport.
func (c *Conn) SetDeadline(t time.Time) error { return c.conn.SetDeadline(t) }

// LocalAddr returns the transport's local address.
func (c *Conn) LocalAddr() net.Addr { return c.conn.LocalAddr() }

// RemoteAddr returns the transport's remote address.
func (c *Conn) RemoteAddr() net.Addr { return c.conn.RemoteAddr() }
