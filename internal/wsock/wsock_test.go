package wsock

import (
	"bytes"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// startEchoServer runs a WebSocket echo server and returns its host:port.
func startEchoServer(t *testing.T) string {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c, err := Upgrade(w, r, r.Header.Get("Sec-WebSocket-Protocol"))
		if err != nil {
			return
		}
		defer c.Close()
		for {
			op, msg, err := c.ReadMessage()
			if err != nil {
				return
			}
			if err := c.WriteMessage(op, msg); err != nil {
				return
			}
		}
	}))
	t.Cleanup(srv.Close)
	return strings.TrimPrefix(srv.URL, "http://")
}

func TestAcceptKeyRFCVector(t *testing.T) {
	// The example from RFC 6455 §1.3.
	got := AcceptKey("dGhlIHNhbXBsZSBub25jZQ==")
	want := "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
	if got != want {
		t.Errorf("AcceptKey = %q, want %q", got, want)
	}
}

func TestEchoTextAndBinary(t *testing.T) {
	host := startEchoServer(t)
	c, err := Dial(host, "/ws", "", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.WriteMessage(OpText, []byte("hello clasp")); err != nil {
		t.Fatal(err)
	}
	op, msg, err := c.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if op != OpText || string(msg) != "hello clasp" {
		t.Errorf("echo = op %d %q", op, msg)
	}

	bin := make([]byte, 100000) // forces the 16-bit... actually 64-bit length path
	for i := range bin {
		bin[i] = byte(i)
	}
	if err := c.WriteMessage(OpBinary, bin); err != nil {
		t.Fatal(err)
	}
	op, msg, err = c.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if op != OpBinary || !bytes.Equal(msg, bin) {
		t.Errorf("binary echo mismatch: op %d len %d", op, len(msg))
	}
}

func TestMediumFrameLengthPath(t *testing.T) {
	host := startEchoServer(t)
	c, err := Dial(host, "/ws", "", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// 200 bytes exercises the 126/16-bit extended length.
	payload := bytes.Repeat([]byte{0xab}, 200)
	if err := c.WriteMessage(OpBinary, payload); err != nil {
		t.Fatal(err)
	}
	_, msg, err := c.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(msg, payload) {
		t.Error("200-byte frame mismatch")
	}
}

func TestSubprotocolEchoed(t *testing.T) {
	host := startEchoServer(t)
	c, err := Dial(host, "/ndt/v7/download", "net.measurementlab.ndt.v7", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
}

func TestCloseHandshake(t *testing.T) {
	host := startEchoServer(t)
	c, err := Dial(host, "/ws", "", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteMessage(OpText, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("write after close: %v", err)
	}
	if _, _, err := c.ReadMessage(); !errors.Is(err, ErrClosed) {
		t.Errorf("read after close: %v", err)
	}
}

func TestServerReceivesClose(t *testing.T) {
	done := make(chan error, 1)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c, err := Upgrade(w, r, "")
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		_, _, err = c.ReadMessage()
		done <- err
	}))
	defer srv.Close()
	host := strings.TrimPrefix(srv.URL, "http://")
	c, err := Dial(host, "/", "", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("server saw %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("server never observed close")
	}
}

func TestPingAnsweredTransparently(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c, err := Upgrade(w, r, "")
		if err != nil {
			return
		}
		defer c.Close()
		// Send a ping, then a data message; the client must pong and
		// still deliver the data message to its caller.
		if err := c.writeFrame(OpPing, []byte("probe")); err != nil {
			return
		}
		if err := c.WriteMessage(OpText, []byte("after-ping")); err != nil {
			return
		}
		// Expect the pong back.
		fin, op, data, err := c.readFrame()
		if err == nil && fin && op == OpPong && string(data) == "probe" {
			_ = c.WriteMessage(OpText, []byte("pong-ok"))
		} else {
			_ = c.WriteMessage(OpText, []byte("pong-bad"))
		}
		// Wait for client close.
		_, _, _ = c.ReadMessage()
	}))
	defer srv.Close()
	host := strings.TrimPrefix(srv.URL, "http://")
	c, err := Dial(host, "/", "", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, msg, err := c.ReadMessage()
	if err != nil || string(msg) != "after-ping" {
		t.Fatalf("first message = %q, %v", msg, err)
	}
	_, msg, err = c.ReadMessage()
	if err != nil || string(msg) != "pong-ok" {
		t.Fatalf("pong verdict = %q, %v", msg, err)
	}
}

func TestFragmentedMessageReassembly(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c, err := Upgrade(w, r, "")
		if err != nil {
			return
		}
		defer c.Close()
		// Hand-craft a fragmented text message: "frag" + "ment" + "ed".
		raw := c.conn
		frames := [][]byte{
			{0x01, 4, 'f', 'r', 'a', 'g'}, // text, no FIN
			{0x00, 4, 'm', 'e', 'n', 't'}, // continuation, no FIN
			{0x80, 2, 'e', 'd'},           // continuation, FIN
		}
		for _, f := range frames {
			if _, err := raw.Write(f); err != nil {
				return
			}
		}
		_, _, _ = c.ReadMessage() // wait for close
	}))
	defer srv.Close()
	host := strings.TrimPrefix(srv.URL, "http://")
	c, err := Dial(host, "/", "", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	op, msg, err := c.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if op != OpText || string(msg) != "fragmented" {
		t.Errorf("reassembled = op %d %q", op, msg)
	}
}

func TestUpgradeRejectsPlainHTTP(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, err := Upgrade(w, r, ""); err == nil {
			t.Error("plain GET upgraded")
		}
	}))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestDialErrors(t *testing.T) {
	// Connection refused.
	if _, err := Dial("127.0.0.1:1", "/", "", 300*time.Millisecond); err == nil {
		t.Error("dial to closed port succeeded")
	}
	// Non-websocket HTTP server.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusTeapot)
	}))
	defer srv.Close()
	host := strings.TrimPrefix(srv.URL, "http://")
	if _, err := Dial(host, "/", "", time.Second); err == nil {
		t.Error("handshake against teapot succeeded")
	}
}

func TestClientHandshakeBadAccept(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, 4096)
		conn.Read(buf)
		conn.Write([]byte("HTTP/1.1 101 Switching Protocols\r\nUpgrade: websocket\r\nConnection: Upgrade\r\nSec-WebSocket-Accept: bogus\r\n\r\n"))
	}()
	if _, err := Dial(ln.Addr().String(), "/", "", time.Second); err == nil {
		t.Error("bad accept key accepted")
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c, err := Upgrade(w, r, "")
		if err != nil {
			return
		}
		defer c.Close()
		// Claim a 1 GiB frame.
		hdr := []byte{0x82, 127, 0, 0, 0, 0, 0x40, 0, 0, 0}
		c.conn.Write(hdr)
		time.Sleep(100 * time.Millisecond)
	}))
	defer srv.Close()
	host := strings.TrimPrefix(srv.URL, "http://")
	c, err := Dial(host, "/", "", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(time.Second))
	if _, _, err := c.ReadMessage(); err == nil {
		t.Error("oversize frame accepted")
	}
}
