// Command blocksmoke is the CI gate for the columnar storage layer. It
// pins the storage-determinism contract from three directions:
//
//  1. The catalog's small-smoke scenario run with the record-memory budget
//     and spill enabled must stay byte-identical to its committed golden —
//     the budget knob must never change results, only where they live.
//  2. A longer small-smoke variant (enough records to actually cross the
//     streaming threshold) run budgeted and unbounded must produce
//     byte-identical reports, so every analysis over the compressed,
//     disk-spilled record log matches the in-memory path exactly.
//  3. A direct campaign under the budget must really stream: records land
//     in a sealed, spilled record log (no in-memory slice), decode to the
//     same count the orchestration report claims, and compress to at
//     least 4x fewer bytes than the 88-byte in-memory Measurement.
package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"github.com/clasp-measurement/clasp/internal/core"
	"github.com/clasp-measurement/clasp/internal/scenario"
)

// measurementBytes mirrors core's in-memory record size for the
// compression-ratio assertion.
const measurementBytes = 88

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "blocksmoke: FAIL:", err)
		os.Exit(1)
	}
}

func run() error {
	spillDir, err := os.MkdirTemp("", "blocksmoke-")
	if err != nil {
		return err
	}
	// Spill files are unlinked at creation; only the directory remains.
	defer os.RemoveAll(spillDir)

	const dir = "examples/scenarios"
	spec, err := scenario.LoadFile(filepath.Join(dir, "small-smoke.json"))
	if err != nil {
		return err
	}
	golden, err := os.ReadFile(filepath.Join(dir, "small-smoke.golden"))
	if err != nil {
		return fmt.Errorf("reading golden: %w", err)
	}

	// Gate 1: the budget knob must not move a byte of the golden.
	budgeted := *spec
	budgeted.MaxMemoryMB = 1
	budgeted.SpillDir = spillDir
	var got bytes.Buffer
	if err := scenario.NewRunner().Run(&got, &budgeted); err != nil {
		return err
	}
	if !bytes.Equal(got.Bytes(), golden) {
		return fmt.Errorf("small-smoke under a memory budget drifted from its golden (%d bytes, want %d)", got.Len(), len(golden))
	}

	// Gate 2: a ten-day variant crosses the 1 MB streaming threshold in
	// both campaigns; budgeted and unbounded runs must be byte-identical.
	long := *spec
	long.Days = 10
	var unbounded bytes.Buffer
	if err := scenario.NewRunner().Run(&unbounded, &long); err != nil {
		return err
	}
	longBudgeted := long
	longBudgeted.MaxMemoryMB = 1
	longBudgeted.SpillDir = spillDir
	var streamed bytes.Buffer
	if err := scenario.NewRunner().Run(&streamed, &longBudgeted); err != nil {
		return err
	}
	if !bytes.Equal(streamed.Bytes(), unbounded.Bytes()) {
		return fmt.Errorf("streamed 10-day small-smoke (%d bytes) differs from the in-memory run (%d bytes)", streamed.Len(), unbounded.Len())
	}

	// Gate 3: the budget must actually engage the streaming path.
	eng, err := core.New(core.Options{Seed: 1, Scale: 0.1, MaxMemoryMB: 1, SpillDir: spillDir})
	if err != nil {
		return err
	}
	res, _, err := eng.RunTopologyCampaign("us-east1", 10)
	if err != nil {
		return err
	}
	defer res.Close()
	if res.Log == nil || res.Records != nil {
		return fmt.Errorf("budgeted 10-day campaign did not stream its records")
	}
	if !res.Log.Spilled() {
		return fmt.Errorf("streamed campaign's record log was not spilled to disk")
	}
	if res.NumRecords() != res.Report.Tests {
		return fmt.Errorf("record log holds %d records, report says %d tests", res.NumRecords(), res.Report.Tests)
	}
	perRecord := float64(res.Log.CompressedBytes()) / float64(res.NumRecords())
	if ratio := measurementBytes / perRecord; ratio < 4 {
		return fmt.Errorf("record log compresses to %.1f bytes/record (%.1fx vs the %d B struct), want >= 4x",
			perRecord, ratio, measurementBytes)
	}

	fmt.Printf("blocksmoke: OK: budgeted small-smoke matches golden (%d bytes); streamed 10-day run byte-identical (%d bytes); %d records spilled at %.1f B/record (%.1fx)\n",
		len(golden), streamed.Len(), res.NumRecords(), perRecord, measurementBytes/perRecord)
	return nil
}
