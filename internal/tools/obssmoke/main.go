// Command obssmoke is the CI gate for the observability layer: it runs a
// tiny metrics-enabled campaign, then asserts that the Prometheus dump
// parses, contains the core series with nonzero values, has no duplicate
// series, and agrees with the JSON snapshot (no unregistered or orphaned
// metric families on either side). It then scrapes the registry into a
// real self-telemetry store and validates the scraped-series naming
// contract (counter value/rate fields, histogram family + _bucket/le/cum
// shape, tsdb ident validity). It exits nonzero with a diagnostic on any
// violation.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	clasp "github.com/clasp-measurement/clasp"
	"github.com/clasp-measurement/clasp/internal/obs"
	"github.com/clasp-measurement/clasp/internal/telemetry"
	"github.com/clasp-measurement/clasp/internal/tsdb"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "obssmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("obssmoke: OK")
}

// coreSeries are the families the smoke campaign must populate with
// nonzero values: cache effectiveness, measure latency, shard ingest and
// campaign progress.
var coreSeries = []string{
	"netsim_flowcache_hits_total",
	"netsim_flowcache_misses_total",
	"bgp_tree_cache_misses_total",
	"bgp_link_cache_hits_total",
	"netsim_measure_latency_ns_count",
	"tsdb_inserts_total",
	"campaign_tests_completed_total",
	"campaign_someta_snapshots_total",
	"cloud_egress_bytes_total",
}

func run() error {
	obs.SetEnabled(true)

	p, err := clasp.New(clasp.Options{Seed: 1, Scale: 0.25, Parallelism: 2})
	if err != nil {
		return err
	}
	res, err := p.RunTopologyCampaign("us-west1", 1)
	if err != nil {
		return err
	}
	if res.Report.Tests == 0 {
		return fmt.Errorf("smoke campaign ran no tests")
	}

	var prom strings.Builder
	if err := obs.Default().WriteProm(&prom); err != nil {
		return fmt.Errorf("WriteProm: %w", err)
	}
	sums, err := parseProm(prom.String())
	if err != nil {
		return err
	}

	for _, name := range coreSeries {
		v, ok := sums[name]
		if !ok {
			return fmt.Errorf("core series %s missing from Prometheus dump", name)
		}
		if v <= 0 {
			return fmt.Errorf("core series %s is zero after a %d-test campaign", name, res.Report.Tests)
		}
	}

	// The JSON snapshot must serialise cleanly and name exactly the same
	// metric families as the text dump: a mismatch means a metric was
	// emitted without being registered (or vice versa).
	snap := obs.Default().Snapshot()
	js, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("snapshot does not serialise: %w", err)
	}
	var back map[string]any
	if err := json.Unmarshal(js, &back); err != nil {
		return fmt.Errorf("snapshot JSON does not parse back: %w", err)
	}
	snapFamilies := make(map[string]bool)
	for id := range snap {
		snapFamilies[familyOf(id)] = true
	}
	promFamilies := make(map[string]bool)
	for name := range sums {
		promFamilies[histBase(name)] = true
	}
	var missing []string
	for f := range promFamilies {
		if !snapFamilies[f] {
			missing = append(missing, f)
		}
	}
	for f := range snapFamilies {
		if !promFamilies[f] {
			missing = append(missing, f)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return fmt.Errorf("prom dump and JSON snapshot disagree on families: %v", missing)
	}

	// Scrape the post-campaign registry into a real self-telemetry store
	// and validate the scraped-series naming contract: counters and gauges
	// keep their family name and gain value (+rate for counters) fields;
	// histograms produce the family (count/sum/rate) plus a "<family>_bucket"
	// measurement whose series carry parseable le tags and the cum field.
	// Inserting through the real store also proves every scraped name,
	// tag and field passes tsdb ident validation.
	pipe := telemetry.NewPipeline(telemetry.PipelineConfig{})
	if err := pipe.Cycle(); err != nil {
		return fmt.Errorf("scrape cycle over campaign registry: %w", err)
	}
	scraped := 0
	for _, s := range obs.Default().Samples() {
		series := pipe.Store.Query(s.Name, nil, time.Time{}, time.Time{})
		if len(series) == 0 {
			return fmt.Errorf("scrape: family %s has no self-store series", s.Name)
		}
		scraped++
		switch s.Kind {
		case obs.KindCounter:
			if err := wantFields(series, "value", "rate"); err != nil {
				return fmt.Errorf("scrape: counter %s: %w", s.Name, err)
			}
		case obs.KindGauge:
			if err := wantFields(series, "value"); err != nil {
				return fmt.Errorf("scrape: gauge %s: %w", s.Name, err)
			}
		case obs.KindHistogram:
			if err := wantFields(series, "count", "sum", "rate"); err != nil {
				return fmt.Errorf("scrape: histogram %s: %w", s.Name, err)
			}
			if s.Count == 0 {
				continue // no observations, no bucket series
			}
			buckets := pipe.Store.Query(s.Name+"_bucket", nil, time.Time{}, time.Time{})
			if len(buckets) == 0 {
				return fmt.Errorf("scrape: histogram %s has no _bucket series", s.Name)
			}
			for _, b := range buckets {
				le := b.Tags["le"]
				if le == "" {
					return fmt.Errorf("scrape: %s_bucket series lacks le tag: %v", s.Name, b.Tags)
				}
				if le != "+Inf" {
					if _, err := strconv.ParseFloat(le, 64); err != nil {
						return fmt.Errorf("scrape: %s_bucket has unparseable le %q", s.Name, le)
					}
				}
				if err := wantFields([]tsdb.Series{b}, "cum"); err != nil {
					return fmt.Errorf("scrape: %s_bucket: %w", s.Name, err)
				}
			}
		}
	}
	if scraped == 0 {
		return fmt.Errorf("scrape produced no series")
	}

	fmt.Printf("obssmoke: %d tests, %d prom series, %d families, %d scraped, flowcache hit rate %.1f%%\n",
		res.Report.Tests, len(sums), len(promFamilies), scraped,
		100*sums["netsim_flowcache_hits_total"]/(sums["netsim_flowcache_hits_total"]+sums["netsim_flowcache_misses_total"]))
	return nil
}

// wantFields asserts every point of every series carries the named fields.
func wantFields(series []tsdb.Series, names ...string) error {
	for _, sr := range series {
		for _, p := range sr.Points {
			for _, n := range names {
				if _, ok := p.Fields[n]; !ok {
					return fmt.Errorf("series %v point lacks field %q (has %v)", sr.Tags, n, p.Fields)
				}
			}
		}
	}
	return nil
}

// parseProm validates the text exposition format line by line and returns
// per-family value sums (labels aggregated). It rejects duplicate series
// and samples for families with no preceding # TYPE header.
func parseProm(text string) (map[string]float64, error) {
	sums := make(map[string]float64)
	seen := make(map[string]bool)
	typed := make(map[string]string)
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				return nil, fmt.Errorf("line %d: malformed TYPE header %q", ln+1, line)
			}
			if prev, dup := typed[parts[2]]; dup {
				return nil, fmt.Errorf("line %d: duplicate TYPE for %s (already %s)", ln+1, parts[2], prev)
			}
			typed[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		// sample: name{labels} value  |  name value
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("line %d: no value separator in %q", ln+1, line)
		}
		id, valStr := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad value %q: %v", ln+1, valStr, err)
		}
		if seen[id] {
			return nil, fmt.Errorf("line %d: duplicate series %q", ln+1, id)
		}
		seen[id] = true
		name := id
		if b := strings.IndexByte(name, '{'); b >= 0 {
			if !strings.HasSuffix(name, "}") {
				return nil, fmt.Errorf("line %d: unbalanced label block in %q", ln+1, id)
			}
			name = name[:b]
		}
		if _, ok := typed[histBase(name)]; !ok {
			return nil, fmt.Errorf("line %d: sample %q has no # TYPE header", ln+1, id)
		}
		sums[name] += v
	}
	if len(sums) == 0 {
		return nil, fmt.Errorf("empty Prometheus dump")
	}
	return sums, nil
}

// familyOf strips a snapshot series id down to its family name.
func familyOf(id string) string {
	if b := strings.IndexByte(id, '{'); b >= 0 {
		return id[:b]
	}
	return id
}

// histBase maps histogram sample names (_bucket/_sum/_count) to the family
// they were registered under.
func histBase(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if s, ok := strings.CutSuffix(name, suf); ok {
			return s
		}
	}
	return name
}
