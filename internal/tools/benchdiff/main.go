// Command benchdiff is the CI performance gate: it parses a fresh
// `go test -bench -benchmem` run from stdin and compares every benchmark
// that also appears in the committed BENCH_*.json records (-against,
// repeatable). A benchmark fails the gate when its ns/op exceeds the
// committed number by more than -max-ns-frac (default 0.25, i.e. +25%),
// or when its allocs/op rises by more than -max-allocs-frac (default
// 0.002). Allocation counts on serial micro-benchmarks are deterministic,
// and 0.2% of a small count rounds to zero — any increase still fails;
// the slack only absorbs the scheduling jitter of concurrent
// macro-benchmarks like the report-all pipeline, whose per-op counts in
// the hundreds of thousands wobble by tens between runs. Timings get
// +25% for machine noise. A committed record none of whose entries match
// the fresh run is itself a failure: it means the bench regex drifted and
// the gate is no longer measuring anything.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// record is one committed benchmark entry (a subset of benchjson's output
// fields; unknown JSON keys are ignored).
type record struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

type benchFile struct {
	Note       string   `json:"note"`
	Benchmarks []record `json:"benchmarks"`
}

func main() {
	var against []string
	flag.Func("against", "committed BENCH_*.json record to compare with (repeatable)", func(s string) error {
		against = append(against, s)
		return nil
	})
	maxNsFrac := flag.Float64("max-ns-frac", 0.25,
		"allowed fractional ns/op increase over the committed number")
	maxAllocsFrac := flag.Float64("max-allocs-frac", 0.002,
		"allowed fractional allocs/op increase over the committed number")
	flag.Parse()
	if len(against) == 0 {
		fatal(fmt.Errorf("no -against files given"))
	}

	fresh, err := parseBench(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(fresh) == 0 {
		fatal(fmt.Errorf("no benchmark lines on stdin"))
	}

	bad, compared := 0, 0
	for _, path := range against {
		raw, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		var bf benchFile
		if err := json.Unmarshal(raw, &bf); err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		matched := 0
		for _, c := range bf.Benchmarks {
			f, ok := fresh[c.Name]
			if !ok {
				continue
			}
			matched++
			if c.NsPerOp > 0 && f.NsPerOp > c.NsPerOp*(1+*maxNsFrac) {
				fmt.Printf("benchdiff: FAIL %s: %.4g ns/op vs committed %.4g (+%.0f%%, budget +%.0f%%) [%s]\n",
					c.Name, f.NsPerOp, c.NsPerOp,
					(f.NsPerOp/c.NsPerOp-1)*100, *maxNsFrac*100, path)
				bad++
			}
			if f.AllocsPerOp > c.AllocsPerOp*(1+*maxAllocsFrac) {
				fmt.Printf("benchdiff: FAIL %s: %.0f allocs/op vs committed %.0f (budget +%.1f%%) [%s]\n",
					c.Name, f.AllocsPerOp, c.AllocsPerOp, *maxAllocsFrac*100, path)
				bad++
			}
		}
		if matched == 0 {
			fatal(fmt.Errorf("no fresh benchmark matches any entry in %s — bench regex drift?", path))
		}
		compared += matched
	}
	if bad > 0 {
		os.Exit(1)
	}
	fmt.Printf("benchdiff: OK (%d comparisons across %d committed records, all within budget)\n",
		compared, len(against))
}

// parseBench extracts Benchmark lines from `go test -bench` output, the
// same format benchjson records: the Benchmark prefix and the trailing -N
// GOMAXPROCS suffix are stripped so names join against the JSON entries.
// With -count=N the same name appears N times; the minimum ns/op and
// allocs/op are kept — the minimum is the most repeatable timing
// estimator on a noisy machine, and the gate only looks for regressions.
func parseBench(r io.Reader) (map[string]record, error) {
	out := map[string]record{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			name = name[:i]
		}
		res := record{Name: name}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			}
		}
		if prev, ok := out[res.Name]; ok {
			if prev.NsPerOp < res.NsPerOp {
				res.NsPerOp = prev.NsPerOp
			}
			if prev.AllocsPerOp < res.AllocsPerOp {
				res.AllocsPerOp = prev.AllocsPerOp
			}
		}
		out[res.Name] = res
	}
	return out, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
