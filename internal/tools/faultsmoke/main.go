// Command faultsmoke is the CI fault-injection gate: it runs a small
// topology campaign under the flaky-vm profile and asserts the platform
// degrades gracefully instead of aborting — the campaign completes, the
// injected faults actually fired, and the partial-round accounting
// balances (completed + dropped = scheduled). It is the end-to-end
// counterpart of the orchestrator's fault unit tests, exercising the
// whole stack from the public clasp API down through core, cloud and
// netsim with injection live.
package main

import (
	"fmt"
	"os"

	"github.com/clasp-measurement/clasp"
	"github.com/clasp-measurement/clasp/internal/orchestrator"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "faultsmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("faultsmoke: OK")
}

func run() error {
	p, err := clasp.New(clasp.Options{
		Seed:         7,
		Scale:        0.25,
		Parallelism:  2,
		FaultProfile: "flaky-vm",
	})
	if err != nil {
		return err
	}
	res, err := p.RunTopologyCampaign("us-east1", 1)
	if err != nil {
		return fmt.Errorf("flaky-vm campaign aborted instead of degrading: %w", err)
	}
	rep := res.Report
	if rep.Tests == 0 {
		return fmt.Errorf("flaky-vm campaign completed no tests")
	}
	if res.NumRecords() != rep.Tests {
		return fmt.Errorf("result holds %d records, report says %d tests completed",
			res.NumRecords(), rep.Tests)
	}

	// The gate is meaningless if nothing fired: flaky-vm at this seed and
	// scale must inject at least one fault somewhere in the stack.
	fired := rep.Failed + rep.Retried + rep.Dropped + rep.Preemptions + rep.VMCreateRetries
	if fired == 0 {
		return fmt.Errorf("flaky-vm profile injected nothing (report %+v)", rep)
	}

	// Partial-round accounting must balance: every scheduled test is either
	// completed or explicitly dropped, never silently lost.
	scheduled := len(res.Selected) * orchestrator.TestsPerServerPerHour * 24
	if rep.Tests+rep.Dropped != scheduled {
		return fmt.Errorf("books don't balance: %d completed + %d dropped != %d scheduled",
			rep.Tests, rep.Dropped, scheduled)
	}
	if rep.Failed < rep.Dropped {
		return fmt.Errorf("Failed (%d) < Dropped (%d): a drop implies at least one failed attempt",
			rep.Failed, rep.Dropped)
	}

	fmt.Printf("faultsmoke: %d/%d tests completed; %d failed attempts, %d retries, %d dropped, %d preemptions, %d create retries\n",
		rep.Tests, scheduled, rep.Failed, rep.Retried, rep.Dropped, rep.Preemptions, rep.VMCreateRetries)
	return nil
}
