// Command loadgen drives a speedtestd with concurrent real-protocol
// clients and prints the daemon's serving-path latency percentiles,
// reconstructed from the daemon's own scraped self-telemetry history.
//
// Usage:
//
//	loadgen -http HOST:PORT [-ookla HOST:PORT] [flags]   drive a running daemon
//	loadgen -boot [flags]                                boot an in-process
//	                                                     daemon on ephemeral
//	                                                     ports and drive that
//
// Flags:
//
//	-clients N       concurrent clients (default 100)
//	-per-client N    tests per client (default 2)
//	-duration D      per-phase transfer duration (default 100ms)
//	-platforms LIST  comma-separated mix: ookla,mlab,comcast (default all)
//	-scrape-interval D  self-telemetry cadence for -boot (default 500ms)
//	-json            emit the full result as JSON instead of a table
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/clasp-measurement/clasp/internal/daemon"
	"github.com/clasp-measurement/clasp/internal/loadgen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run() error {
	httpAddr := flag.String("http", "", "daemon HTTP address (ndt7 + xfinity + history)")
	ooklaAddr := flag.String("ookla", "", "daemon Ookla TCP address (omit to skip ookla)")
	boot := flag.Bool("boot", false, "boot an in-process daemon on ephemeral ports and drive it")
	clients := flag.Int("clients", 100, "concurrent clients")
	perClient := flag.Int("per-client", 2, "tests per client")
	duration := flag.Duration("duration", 100*time.Millisecond, "per-phase transfer duration")
	platforms := flag.String("platforms", "", "comma-separated platform mix (ookla,mlab,comcast)")
	scrapeInterval := flag.Duration("scrape-interval", 500*time.Millisecond, "self-telemetry cadence for -boot")
	asJSON := flag.Bool("json", false, "emit the full result as JSON")
	flag.Parse()

	if *boot {
		d, err := daemon.Start(daemon.Config{
			OoklaAddr:      "127.0.0.1:0",
			HTTPAddr:       "127.0.0.1:0",
			NDT7Duration:   *duration,
			ScrapeInterval: *scrapeInterval,
		})
		if err != nil {
			return err
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
			defer cancel()
			_ = d.Shutdown(ctx)
		}()
		*httpAddr = d.HTTPAddr().String()
		*ooklaAddr = d.OoklaAddr().String()
		fmt.Fprintf(os.Stderr, "loadgen: booted daemon http=%s ookla=%s\n", *httpAddr, *ooklaAddr)
	}
	if *httpAddr == "" {
		return fmt.Errorf("need -http HOST:PORT (or -boot)")
	}

	cfg := loadgen.Config{
		HTTPAddr:  *httpAddr,
		OoklaAddr: *ooklaAddr,
		Clients:   *clients,
		PerClient: *perClient,
		Duration:  *duration,
	}
	if *platforms != "" {
		cfg.Platforms = strings.Split(*platforms, ",")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	res, err := loadgen.Run(ctx, cfg)
	if err != nil {
		return err
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	fmt.Printf("loadgen: %d/%d tests ok (%d failed) in %s\n",
		res.Succeeded, res.Requested, res.Failed, res.Elapsed.Round(time.Millisecond))
	plats := make([]string, 0, len(res.ByPlat))
	for p := range res.ByPlat {
		plats = append(plats, p)
	}
	sort.Strings(plats)
	for _, p := range plats {
		fmt.Printf("  %-8s %d ok\n", p, res.ByPlat[p])
	}
	for _, e := range res.Errors {
		fmt.Printf("  error: %s\n", e)
	}
	fmt.Printf("serving-path latency (daemon-side, from scraped history):\n")
	printQuantiles(res.HTTP)
	if len(res.Ookla) > 0 {
		fmt.Printf("ookla command latency:\n")
		printQuantiles(res.Ookla)
	}
	return nil
}

func printQuantiles(qs []loadgen.Quantiles) {
	for _, q := range qs {
		keys := make([]string, 0, len(q.Tags))
		for k := range q.Tags {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			parts = append(parts, k+"="+q.Tags[k])
		}
		fmt.Printf("  %-52s n=%-6d p50=%-10s p90=%-10s p99=%s\n",
			strings.Join(parts, " "), q.Count, ms(q.P50), ms(q.P90), ms(q.P99))
	}
}

// ms renders a nanosecond quantile as milliseconds.
func ms(ns float64) string {
	if math.IsNaN(ns) {
		return "n/a"
	}
	return fmt.Sprintf("%.3fms", ns/1e6)
}
