// Command scenariosmoke is the CI gate for the declarative scenario layer:
// it runs the catalog's small-smoke scenario twice — alone and as part of a
// two-scenario fleet sharing one substrate — and fails unless both outputs
// are byte-identical to the committed golden. On success it prints the
// golden's size, so drift shows up as a diff against a known artifact
// rather than a flaky assertion.
package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"github.com/clasp-measurement/clasp/internal/scenario"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "scenariosmoke: FAIL:", err)
		os.Exit(1)
	}
}

func run() error {
	const dir = "examples/scenarios"
	spec, err := scenario.LoadFile(filepath.Join(dir, "small-smoke.json"))
	if err != nil {
		return err
	}
	golden, err := os.ReadFile(filepath.Join(dir, "small-smoke.golden"))
	if err != nil {
		return fmt.Errorf("reading golden: %w", err)
	}

	var alone bytes.Buffer
	if err := scenario.NewRunner().Run(&alone, spec); err != nil {
		return err
	}
	if !bytes.Equal(alone.Bytes(), golden) {
		return fmt.Errorf("small-smoke output drifted from its golden (%d bytes, want %d); regenerate with `go test ./internal/scenario -run TestCatalogGoldens -update` and review the diff", alone.Len(), len(golden))
	}

	// Fleet mode must reproduce the same bytes for the scenario even while
	// another scenario runs concurrently on the shared substrate.
	outage, err := scenario.LoadFile(filepath.Join(dir, "outage-drill.json"))
	if err != nil {
		return err
	}
	var fleet bytes.Buffer
	if err := scenario.NewRunner().Fleet(&fleet, []*scenario.Spec{spec, outage}); err != nil {
		return err
	}
	section := fleetSection(fleet.Bytes(), spec.Name)
	if section == nil {
		return fmt.Errorf("fleet output has no %q section", spec.Name)
	}
	if !bytes.Equal(section, golden) {
		return fmt.Errorf("fleet section for %s (%d bytes) differs from the solo golden (%d bytes)", spec.Name, len(section), len(golden))
	}
	fmt.Printf("scenariosmoke: OK: small-smoke solo and in-fleet both match golden (%d bytes)\n", len(golden))
	return nil
}

// fleetSection extracts one scenario's bytes from fleet output: everything
// after its "scenario <name>" banner up to the next scenario banner.
func fleetSection(out []byte, name string) []byte {
	banner := []byte("\nscenario " + name + "\n")
	i := bytes.Index(out, banner)
	if i < 0 {
		return nil
	}
	// Skip the banner's underline line too.
	rest := out[i+len(banner):]
	if j := bytes.IndexByte(rest, '\n'); j >= 0 {
		rest = rest[j+1:]
	}
	// The next banner's leading newline is the separator's own, not the
	// section's: cut before it.
	if j := bytes.Index(rest, []byte("\nscenario ")); j >= 0 {
		rest = rest[:j]
	}
	return rest
}
