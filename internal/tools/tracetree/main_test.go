package main

import (
	"bytes"
	"strings"
	"testing"

	"github.com/clasp-measurement/clasp/internal/obs"
)

// emitTrace drives the real obs tracer through a miniature campaign shape
// (campaign → rounds → vm-hours → tests) so the reconstruction is tested
// against genuine tracer output, not hand-written JSON.
func emitTrace(t *testing.T) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	obs.SetTraceWriter(&buf)
	defer obs.SetTraceWriter(nil)

	camp := obs.Trace("campaign").With("region", "us-east1")
	warm := camp.Child("warm").WithInt("destinations", 3)
	warm.End()
	for hour := 0; hour < 2; hour++ {
		round := camp.Child("round").WithInt("hour", hour)
		for vm := 0; vm < 2; vm++ {
			vh := round.Child("vm-hour").WithInt("vm", vm)
			for i := 0; i < 3; i++ {
				test := vh.Child("test").WithInt("idx", i)
				test.End()
			}
			vh.End()
		}
		round.End()
	}
	camp.End()
	return &buf
}

func TestParseRebuildsHierarchy(t *testing.T) {
	f, err := Parse(emitTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	// 1 campaign + 1 warm + 2 rounds + 4 vm-hours + 12 tests.
	if f.Spans != 20 {
		t.Fatalf("parsed %d spans, want 20", f.Spans)
	}
	if len(f.Roots) != 1 || f.Orphan != 0 {
		t.Fatalf("roots=%d orphan=%d, want 1 root, 0 orphans", len(f.Roots), f.Orphan)
	}
	root := f.Roots[0]
	if root.Span != "campaign" || root.Attrs["region"] != "us-east1" {
		t.Fatalf("root = %s%v", root.Span, root.Attrs)
	}
	if len(root.Children) != 3 { // warm + 2 rounds
		t.Fatalf("campaign has %d children, want 3", len(root.Children))
	}
	var rounds int
	for _, c := range root.Children {
		if c.Span != "round" {
			continue
		}
		rounds++
		if len(c.Children) != 2 {
			t.Fatalf("round has %d vm-hours, want 2", len(c.Children))
		}
		for _, vh := range c.Children {
			if vh.Span != "vm-hour" || len(vh.Children) != 3 {
				t.Fatalf("vm-hour %v has %d tests, want 3", vh.Attrs, len(vh.Children))
			}
			for _, test := range vh.Children {
				if test.Span != "test" || len(test.Children) != 0 {
					t.Fatalf("leaf = %s with %d children", test.Span, len(test.Children))
				}
			}
		}
	}
	if rounds != 2 {
		t.Fatalf("found %d rounds, want 2", rounds)
	}
}

func TestRenderRollupsAndCriticalPath(t *testing.T) {
	f, err := Parse(emitTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	Render(&out, f, 4)
	s := out.String()
	for _, want := range []string{
		"20 spans, 1 roots",
		"campaign{region=us-east1}",
		"round ×2",
		"vm-hour ×4", // merged across the round rollup
		"test ×12",
		"critical path:",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("render output missing %q:\n%s", want, s)
		}
	}
	// The critical path must descend campaign → round → vm-hour → test.
	cpIdx := strings.Index(s, "critical path:")
	cp := s[cpIdx:]
	last := -1
	for _, name := range []string{"campaign", "round{", "vm-hour{", "test{"} {
		i := strings.Index(cp, name)
		if i < 0 {
			t.Fatalf("critical path missing %q:\n%s", name, cp)
		}
		if i < last {
			t.Fatalf("critical path out of order at %q:\n%s", name, cp)
		}
		last = i
	}
}

func TestParseReRootsOrphans(t *testing.T) {
	// Simulate a truncated log: the campaign root's end event is missing,
	// so its direct children must surface as roots instead of vanishing.
	full := emitTrace(t).String()
	var kept []string
	for _, line := range strings.Split(full, "\n") {
		if strings.Contains(line, `"span":"campaign"`) {
			continue
		}
		if line != "" {
			kept = append(kept, line)
		}
	}
	f, err := Parse(strings.NewReader(strings.Join(kept, "\n")))
	if err != nil {
		t.Fatal(err)
	}
	if f.Spans != 19 {
		t.Fatalf("parsed %d spans, want 19", f.Spans)
	}
	// warm + 2 rounds re-rooted; their subtrees intact.
	if len(f.Roots) != 3 || f.Orphan != 3 {
		t.Fatalf("roots=%d orphan=%d, want 3 and 3", len(f.Roots), f.Orphan)
	}
}

func TestParseRejectsBadInput(t *testing.T) {
	if _, err := Parse(strings.NewReader("not json\n")); err == nil {
		t.Error("malformed line accepted")
	}
	if _, err := Parse(strings.NewReader(`{"span":"x","id":1,"dur_ns":5}` + "\n" + `{"span":"y","id":1,"dur_ns":5}` + "\n")); err == nil {
		t.Error("duplicate span id accepted")
	}
	if _, err := Parse(strings.NewReader(`{"span":"x","dur_ns":5}` + "\n")); err == nil {
		t.Error("missing id accepted")
	}
}
