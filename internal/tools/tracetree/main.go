// Command tracetree reconstructs the span hierarchy from a clasp trace
// log (-tracelog JSONL: one {"span","id","parent","start","dur_ns","attrs"}
// object per completed span) and renders the campaign tree — campaign →
// warm/deploy/round/traceroute → vm-hour → test — with per-phase rollups
// and the critical path.
//
// Usage:
//
//	tracetree [-depth N] trace.jsonl
//
// Sibling spans sharing a name are collapsed into one rollup line (count,
// total, mean, max), so a month-long campaign's 720 rounds render as a
// handful of lines instead of a forest. The critical path descends from
// each root through its slowest child, showing where the wall-clock time
// of the campaign actually went.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"
)

func main() {
	depth := flag.Int("depth", 4, "maximum tree depth to render")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracetree [-depth N] <trace.jsonl>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracetree:", err)
		os.Exit(1)
	}
	defer f.Close()
	forest, err := Parse(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracetree:", err)
		os.Exit(1)
	}
	Render(os.Stdout, forest, *depth)
}

// Event is one trace log line.
type Event struct {
	Span   string            `json:"span"`
	ID     uint64            `json:"id"`
	Parent uint64            `json:"parent"`
	Start  time.Time         `json:"start"`
	DurNS  int64             `json:"dur_ns"`
	Attrs  map[string]string `json:"attrs"`
}

// Node is one reconstructed span with its children attached.
type Node struct {
	Event
	Children []*Node
}

// Forest is the reconstructed hierarchy: every span whose parent id is 0
// or references a span missing from the log becomes a root.
type Forest struct {
	Roots  []*Node
	Spans  int
	Orphan int // spans re-rooted because their parent never completed
}

// Parse reads a trace log and reassembles the span tree from (id, parent).
// Children complete (and are written) before their parents, so linking is
// a two-pass job: index every event, then attach.
func Parse(r io.Reader) (*Forest, error) {
	byID := make(map[uint64]*Node)
	var order []*Node
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(strings.TrimSpace(sc.Text())) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		if ev.ID == 0 {
			return nil, fmt.Errorf("line %d: span %q has no id", line, ev.Span)
		}
		if byID[ev.ID] != nil {
			return nil, fmt.Errorf("line %d: duplicate span id %d", line, ev.ID)
		}
		n := &Node{Event: ev}
		byID[ev.ID] = n
		order = append(order, n)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	f := &Forest{Spans: len(order)}
	for _, n := range order {
		if n.Parent == 0 {
			f.Roots = append(f.Roots, n)
			continue
		}
		p := byID[n.Parent]
		if p == nil {
			// The parent never wrote its end event (crash, truncation);
			// keep the subtree visible instead of dropping it.
			f.Orphan++
			f.Roots = append(f.Roots, n)
			continue
		}
		p.Children = append(p.Children, n)
	}
	// Children were appended in completion order; present them in start
	// order so the tree reads chronologically.
	var sortRec func(n *Node)
	sortRec = func(n *Node) {
		sort.SliceStable(n.Children, func(i, j int) bool {
			return n.Children[i].Start.Before(n.Children[j].Start)
		})
		for _, c := range n.Children {
			sortRec(c)
		}
	}
	sort.SliceStable(f.Roots, func(i, j int) bool { return f.Roots[i].Start.Before(f.Roots[j].Start) })
	for _, root := range f.Roots {
		sortRec(root)
	}
	return f, nil
}

// rollup aggregates same-named sibling spans.
type rollup struct {
	name     string
	count    int
	total    time.Duration
	max      time.Duration
	children []*Node // all members' children, merged for the next level
	first    *Node
}

// rollups groups a sibling list by span name, preserving first-start order.
func rollups(siblings []*Node) []*rollup {
	byName := make(map[string]*rollup)
	var out []*rollup
	for _, n := range siblings {
		r := byName[n.Span]
		if r == nil {
			r = &rollup{name: n.Span, first: n}
			byName[n.Span] = r
			out = append(out, r)
		}
		r.count++
		d := time.Duration(n.DurNS)
		r.total += d
		if d > r.max {
			r.max = d
		}
		r.children = append(r.children, n.Children...)
	}
	return out
}

// Render writes the collapsed tree, per-phase totals and critical path.
func Render(w io.Writer, f *Forest, maxDepth int) {
	fmt.Fprintf(w, "%d spans, %d roots", f.Spans, len(f.Roots))
	if f.Orphan > 0 {
		fmt.Fprintf(w, " (%d orphaned: parent span never completed)", f.Orphan)
	}
	fmt.Fprintln(w)
	for _, root := range f.Roots {
		fmt.Fprintf(w, "\n%s%s  %s\n", root.Span, attrSuffix(root.Attrs), time.Duration(root.DurNS).Round(time.Microsecond))
		renderLevel(w, root.Children, "  ", 1, maxDepth, time.Duration(root.DurNS))
		fmt.Fprintf(w, "\ncritical path:\n")
		for i, n := range criticalPath(root) {
			fmt.Fprintf(w, "  %s%s%s  %s\n", strings.Repeat("  ", i), n.Span, attrSuffix(n.Attrs), time.Duration(n.DurNS).Round(time.Microsecond))
		}
	}
}

func renderLevel(w io.Writer, siblings []*Node, indent string, depth, maxDepth int, parentDur time.Duration) {
	if depth > maxDepth || len(siblings) == 0 {
		return
	}
	for _, r := range rollups(siblings) {
		share := ""
		if parentDur > 0 {
			share = fmt.Sprintf(" (%.0f%% of parent)", 100*float64(r.total)/float64(parentDur))
		}
		if r.count == 1 {
			fmt.Fprintf(w, "%s%s%s  %s%s\n", indent, r.name, attrSuffix(r.first.Attrs), r.total.Round(time.Microsecond), share)
		} else {
			fmt.Fprintf(w, "%s%s ×%d  total %s, mean %s, max %s%s\n",
				indent, r.name, r.count, r.total.Round(time.Microsecond),
				(r.total / time.Duration(r.count)).Round(time.Microsecond),
				r.max.Round(time.Microsecond), share)
		}
		renderLevel(w, r.children, indent+"  ", depth+1, maxDepth, r.total)
	}
}

// criticalPath descends from root through the slowest child at each level:
// the chain of spans that dominated the campaign's wall-clock time.
func criticalPath(root *Node) []*Node {
	path := []*Node{root}
	n := root
	for len(n.Children) > 0 {
		slowest := n.Children[0]
		for _, c := range n.Children[1:] {
			if c.DurNS > slowest.DurNS {
				slowest = c
			}
		}
		path = append(path, slowest)
		n = slowest
	}
	return path
}

// attrSuffix renders span attributes as {k=v ...}, keys sorted.
func attrSuffix(attrs map[string]string) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+attrs[k])
	}
	return "{" + strings.Join(parts, " ") + "}"
}
