// Command loadgensmoke is the CI gate for the serving-path telemetry
// pipeline: it boots the full speedtestd daemon in-process on ephemeral
// ports, fires a concurrent burst of real-protocol clients at it, and then
// asserts that (1) the burst succeeded, (2) the daemon's per-route latency
// histograms moved, (3) /debug/obs/history serves well-formed windowed
// JSON over the scraped self-store, and (4) the percentiles loadgen
// reconstructs from that history are sane. It exits nonzero with a
// diagnostic on any violation.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"os"
	"time"

	"github.com/clasp-measurement/clasp/internal/daemon"
	"github.com/clasp-measurement/clasp/internal/loadgen"
	"github.com/clasp-measurement/clasp/internal/speedtest/ndt7"
	"github.com/clasp-measurement/clasp/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgensmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("loadgensmoke: OK")
}

func run() error {
	d, err := daemon.Start(daemon.Config{
		OoklaAddr:      "127.0.0.1:0",
		HTTPAddr:       "127.0.0.1:0",
		NDT7Duration:   50 * time.Millisecond,
		ScrapeInterval: 100 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		_ = d.Shutdown(ctx)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := loadgen.Run(ctx, loadgen.Config{
		HTTPAddr:  d.HTTPAddr().String(),
		OoklaAddr: d.OoklaAddr().String(),
		Clients:   24,
		PerClient: 2,
		Duration:  50 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	if res.Failed > 0 {
		return fmt.Errorf("%d/%d tests failed under load: %v", res.Failed, res.Requested, res.Errors)
	}
	if res.Succeeded != res.Requested {
		return fmt.Errorf("succeeded %d != requested %d", res.Succeeded, res.Requested)
	}

	// Per-route serving-path histograms must be non-zero for both HTTP
	// platforms, with finite positive percentiles.
	want := map[string]bool{ndt7.DownloadPath: false, "/speedtest/download": false}
	for _, q := range res.HTTP {
		route := q.Tags["route"]
		if _, ok := want[route]; ok && q.Count > 0 {
			want[route] = true
		}
		if q.Count > 0 {
			for _, p := range []float64{q.P50, q.P90, q.P99} {
				if math.IsNaN(p) || p <= 0 {
					return fmt.Errorf("route %q: bad percentile %v with count %d", route, p, q.Count)
				}
			}
			if q.P50 > q.P99 {
				return fmt.Errorf("route %q: p50 %v > p99 %v", route, q.P50, q.P99)
			}
		}
	}
	for route, seen := range want {
		if !seen {
			return fmt.Errorf("no serving-path histogram activity for route %q", route)
		}
	}
	// The Ookla TCP path records through its own command family.
	sawPing := false
	for _, q := range res.Ookla {
		if q.Tags["cmd"] == "PING" && q.Count > 0 {
			sawPing = true
		}
	}
	if !sawPing {
		return fmt.Errorf("no ookla PING command histogram activity")
	}

	// /debug/obs/history must serve well-formed windowed JSON directly:
	// every series tagged, every point carrying the scraped cum field,
	// timestamps inside the requested window.
	base := "http://" + d.HTTPAddr().String()
	from := time.Now().Add(-time.Minute)
	url := fmt.Sprintf("%s/debug/obs/history?measurement=%s_bucket&from=%d",
		base, loadgen.HTTPDurationFamily, from.Unix())
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		return fmt.Errorf("history endpoint: HTTP %d", resp.StatusCode)
	}
	var hr telemetry.HistoryResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		return fmt.Errorf("history response is not valid JSON: %w", err)
	}
	if hr.Measurement != loadgen.HTTPDurationFamily+"_bucket" {
		return fmt.Errorf("history echoes measurement %q", hr.Measurement)
	}
	if len(hr.Series) == 0 {
		return fmt.Errorf("history holds no scraped bucket series")
	}
	for _, s := range hr.Series {
		if s.Tags["le"] == "" || s.Tags["route"] == "" || s.Tags["status"] == "" {
			return fmt.Errorf("bucket series missing le/route/status tags: %v", s.Tags)
		}
		if len(s.Points) == 0 {
			return fmt.Errorf("series %v has no points", s.Tags)
		}
		for _, p := range s.Points {
			if _, ok := p.Fields["cum"]; !ok {
				return fmt.Errorf("series %v point lacks cum field: %v", s.Tags, p.Fields)
			}
			if p.TimeNs < from.UnixNano() {
				return fmt.Errorf("series %v point at %d predates window start %d", s.Tags, p.TimeNs, from.UnixNano())
			}
		}
	}

	// A bad measurement parameter must yield a structured 400, not a 500.
	resp, err = http.Get(base + "/debug/obs/history")
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		return fmt.Errorf("missing-measurement request: HTTP %d, want 400", resp.StatusCode)
	}

	fmt.Printf("loadgensmoke: %d tests, %d http groups, %d ookla groups, %d history series\n",
		res.Succeeded, len(res.HTTP), len(res.Ookla), len(hr.Series))
	return nil
}
