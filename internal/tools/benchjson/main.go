// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a JSON record of the hot-path numbers (ns/op, B/op, allocs/op per
// benchmark). With -baseline it also joins pre-change numbers from a saved
// bench output file and reports the speedup, so `make bench` produces a
// self-contained before/after artifact (BENCH_hotpath.json).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"b_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Extra holds custom b.ReportMetric units (e.g. "bytes/sample" from the
	// block-compression benchmarks). benchdiff ignores unknown JSON keys, so
	// records carrying extras stay usable by the regression gate.
	Extra map[string]float64 `json:"extra,omitempty"`

	BaselineNsPerOp     float64 `json:"baseline_ns_per_op,omitempty"`
	BaselineBytesPerOp  float64 `json:"baseline_b_per_op,omitempty"`
	BaselineAllocsPerOp float64 `json:"baseline_allocs_per_op,omitempty"`
	// Speedup is baseline ns/op divided by current ns/op (2.0 = twice as
	// fast as the recorded baseline).
	Speedup float64 `json:"speedup,omitempty"`
}

type output struct {
	Note       string   `json:"note"`
	Benchmarks []result `json:"benchmarks"`
}

func main() {
	baseline := flag.String("baseline", "", "bench output file with pre-change numbers to join")
	out := flag.String("out", "", "output JSON path (default stdout)")
	note := flag.String("note", "hot-path benchmarks; baselines are the pre-overhaul numbers from BENCH_baseline.txt",
		"note string recorded in the output JSON")
	flag.Parse()

	cur, err := parseBench(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(cur) == 0 {
		fatal(fmt.Errorf("no benchmark lines on stdin"))
	}

	base := map[string]result{}
	if *baseline != "" {
		f, err := os.Open(*baseline)
		if err != nil {
			fatal(err)
		}
		bs, err := parseBench(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		for _, b := range bs {
			base[b.Name] = b
		}
	}

	names := make([]string, 0, len(cur))
	for n := range cur {
		names = append(names, n)
	}
	sort.Strings(names)

	o := output{Note: *note}
	for _, n := range names {
		r := cur[n]
		if b, ok := base[n]; ok {
			r.BaselineNsPerOp = b.NsPerOp
			r.BaselineBytesPerOp = b.BytesPerOp
			r.BaselineAllocsPerOp = b.AllocsPerOp
			if r.NsPerOp > 0 {
				r.Speedup = b.NsPerOp / r.NsPerOp
			}
		}
		o.Benchmarks = append(o.Benchmarks, r)
	}

	enc, err := json.MarshalIndent(o, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
}

// parseBench extracts Benchmark lines from `go test -bench` output. The
// trailing -N GOMAXPROCS suffix is stripped so names join across machines.
// When -count repeats a benchmark, the lowest-ns/op run wins — the same
// min-of-N estimator benchdiff uses, so artifacts stay comparable to the
// bench-check gate on noisy boxes.
func parseBench(r io.Reader) (map[string]result, error) {
	out := map[string]result{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			name = name[:i]
		}
		res := result{Name: name}
		res.Iterations, _ = strconv.ParseInt(fields[1], 10, 64)
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			default:
				// Custom b.ReportMetric units ride along verbatim.
				if res.Extra == nil {
					res.Extra = map[string]float64{}
				}
				res.Extra[unit] = v
			}
		}
		if prev, ok := out[res.Name]; !ok || res.NsPerOp < prev.NsPerOp {
			out[res.Name] = res
		}
	}
	return out, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
