// Command analysissmoke is the CI gate for the parallel analysis engine's
// determinism contract: it runs the same campaign and congestion report at
// parallelism 1 and 4 and fails unless the rendered reports are
// byte-identical (the engine's index-ordered merge invariant). On success
// it prints a one-line distribution summary of the per-pair event counts.
package main

import (
	"bytes"
	"fmt"
	"os"

	clasp "github.com/clasp-measurement/clasp"
	"github.com/clasp-measurement/clasp/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "analysissmoke: FAIL:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		region = "us-west1"
		days   = 7
	)
	reports := make(map[int]string, 2)
	var pairs int
	var events []float64
	for _, par := range []int{1, 4} {
		p, err := clasp.New(clasp.Options{Seed: 1, Scale: 0.12, Parallelism: par})
		if err != nil {
			return fmt.Errorf("platform (parallelism %d): %w", par, err)
		}
		res, err := p.RunTopologyCampaign(region, days)
		if err != nil {
			return fmt.Errorf("campaign (parallelism %d): %w", par, err)
		}
		rep, err := p.CongestionReport(res)
		if err != nil {
			return fmt.Errorf("report (parallelism %d): %w", par, err)
		}
		var buf bytes.Buffer
		clasp.WriteReport(&buf, rep)
		reports[par] = buf.String()
		pairs = len(rep.Pairs)
		if par == 1 {
			for _, pr := range rep.Pairs {
				events = append(events, float64(pr.Events))
			}
		}
	}
	if reports[1] != reports[4] {
		fmt.Fprintf(os.Stderr, "--- parallelism 1 ---\n%s\n--- parallelism 4 ---\n%s\n", reports[1], reports[4])
		return fmt.Errorf("reports differ between parallelism 1 and 4")
	}
	sum, err := stats.Describe(events)
	if err != nil {
		return fmt.Errorf("no pairs in report: %w", err)
	}
	fmt.Printf("analysissmoke: OK — %d pairs, events/pair mean=%.1f p50=%.0f p95=%.0f max=%.0f; %d-byte report identical at parallelism 1 and 4\n",
		pairs, sum.Mean, sum.P50, sum.P95, sum.Max, len(reports[1]))
	return nil
}
