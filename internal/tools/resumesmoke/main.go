// Command resumesmoke is the kill-matrix CI gate for campaign
// checkpoint/resume: it proves that a campaign process SIGKILLed at each
// of the three interesting moments — mid-round (work since the last
// checkpoint unflushed), block-flush (new record sidecar written but not
// yet renamed), and round-boundary (a checkpoint just committed) — resumes
// to stdout byte-identical to a never-killed run.
//
// The matrix runs against the real `clasp` binary, not an in-process
// harness: the child dies by actual SIGKILL (armed via CLASP_KILL_POINT,
// see internal/killpoint), so no deferred cleanup or sink flush can paper
// over a durability bug, and the resume goes through the public
// `clasp resume` command. The whole matrix runs at parallelism 1 and 4 —
// resume output must not depend on worker count, even when the resumed
// parallelism differs from the killed run's.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"

	"github.com/clasp-measurement/clasp/internal/killpoint"
)

// The campaign under test: small enough to run the full matrix in
// seconds, long enough (48 rounds) that the kill hour sits well inside
// the run with real work on both sides of it.
const (
	region   = "us-west1"
	days     = "2"
	seed     = "3"
	scale    = "0.1"
	killHour = 7
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "resumesmoke: FAIL:", err)
		os.Exit(1)
	}
}

func run() error {
	work, err := os.MkdirTemp("", "resumesmoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(work)

	// One build, many runs: the matrix re-executes the real CLI binary.
	bin := filepath.Join(work, "clasp")
	goTool := os.Getenv("GO")
	if goTool == "" {
		goTool = "go"
	}
	if out, err := exec.Command(goTool, "build", "-o", bin, "./cmd/clasp").CombinedOutput(); err != nil {
		return fmt.Errorf("building clasp: %v\n%s", err, out)
	}

	points := []string{"mid-round", "block-flush", "round-boundary"}
	for _, par := range []string{"1", "4"} {
		want, err := campaign(bin, par, "", "")
		if err != nil {
			return fmt.Errorf("uninterrupted run (parallelism %s): %w", par, err)
		}
		for _, point := range points {
			if err := killAndResume(bin, work, par, point, want); err != nil {
				return fmt.Errorf("parallelism %s, kill at %s: %w", par, point, err)
			}
		}
		fmt.Printf("resumesmoke: parallelism %s: %d kill points resumed byte-identically (%d bytes each)\n",
			par, len(points), len(want))
	}
	return nil
}

// killAndResume runs one matrix cell: arm the kill point, watch the child
// die by SIGKILL, check what the checkpoint on disk claims, resume it at
// the same parallelism through `clasp resume`, and compare bytes.
func killAndResume(bin, work, par, point string, want []byte) error {
	ckDir := filepath.Join(work, fmt.Sprintf("ck-p%s-%s", par, point))
	kill := fmt.Sprintf("%s:%d", point, killHour)
	if _, err := campaign(bin, par, ckDir, kill); err == nil {
		return fmt.Errorf("armed child exited cleanly instead of dying")
	} else if !diedBySIGKILL(err) {
		return fmt.Errorf("armed child failed but not by SIGKILL: %v", err)
	}

	next, err := watermark(ckDir)
	if err != nil {
		return err
	}
	// The checkpoint must be mid-campaign (or a full re-run would also
	// "pass") and consistent with the kill point: round-boundary dies
	// after hour killHour's checkpoint committed, the other two before.
	if next <= 0 || next >= 48 {
		return fmt.Errorf("checkpoint watermark %d is not mid-campaign", next)
	}
	wantNext := killHour
	if point == "round-boundary" {
		wantNext = killHour + 1
	}
	if next != wantNext {
		return fmt.Errorf("checkpoint watermark %d, want %d", next, wantNext)
	}

	got, err := resume(bin, ckDir, par)
	if err != nil {
		return fmt.Errorf("resume: %w", err)
	}
	if !bytes.Equal(got, want) {
		return fmt.Errorf("resumed output (%d bytes) differs from uninterrupted run (%d bytes):\n--- resumed ---\n%s--- uninterrupted ---\n%s",
			len(got), len(want), got, want)
	}
	return nil
}

// campaign runs `clasp campaign` and returns its stdout. ckDir enables
// checkpointing; kill arms the kill point in the child's environment.
func campaign(bin, par, ckDir, kill string) ([]byte, error) {
	args := []string{"campaign", region, "-seed", seed, "-scale", scale, "-days", days, "-parallelism", par}
	if ckDir != "" {
		args = append(args, "-checkpoint-dir", ckDir)
	}
	cmd := exec.Command(bin, args...)
	cmd.Env = cleanEnv()
	if kill != "" {
		cmd.Env = append(cmd.Env, killpoint.EnvVar+"="+kill)
	}
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("%w\n%s", err, stderr.Bytes())
	}
	return stdout.Bytes(), nil
}

// resume runs `clasp resume` on a checkpoint directory; the kill point is
// never armed here — the resumed process must run to completion.
func resume(bin, ckDir, par string) ([]byte, error) {
	cmd := exec.Command(bin, "resume", ckDir, "-parallelism", par)
	cmd.Env = cleanEnv()
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("%w\n%s", err, stderr.Bytes())
	}
	return stdout.Bytes(), nil
}

// cleanEnv is the parent environment minus any inherited kill point, so a
// developer's shell can never arm a child unintentionally.
func cleanEnv() []string {
	env := os.Environ()
	out := env[:0]
	for _, e := range env {
		if !strings.HasPrefix(e, killpoint.EnvVar+"=") {
			out = append(out, e)
		}
	}
	return out
}

// diedBySIGKILL reports whether a child's exit error is an uncaught
// SIGKILL — the only acceptable way for an armed child to stop.
func diedBySIGKILL(err error) bool {
	ee, ok := err.(*exec.ExitError)
	if !ok {
		// campaign() wraps the error with stderr; unwrap one level.
		type wrapper interface{ Unwrap() error }
		if w, okw := err.(wrapper); okw {
			ee, ok = w.Unwrap().(*exec.ExitError)
		}
		if !ok {
			return false
		}
	}
	ws, ok := ee.Sys().(syscall.WaitStatus)
	return ok && ws.Signaled() && ws.Signal() == syscall.SIGKILL
}

// watermark reads NextHour out of the checkpoint metadata under ckDir
// (single-campaign layout: one <region>-<kind> subdirectory).
func watermark(ckDir string) (int, error) {
	raw, err := os.ReadFile(filepath.Join(ckDir, region+"-topology", "checkpoint.json"))
	if err != nil {
		return 0, fmt.Errorf("reading checkpoint metadata: %w", err)
	}
	var meta struct {
		Progress struct {
			NextHour int `json:"nextHour"`
		} `json:"progress"`
	}
	if err := json.Unmarshal(raw, &meta); err != nil {
		return 0, fmt.Errorf("parsing checkpoint metadata: %w", err)
	}
	return meta.Progress.NextHour, nil
}
