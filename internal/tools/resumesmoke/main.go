// Command resumesmoke is the kill-matrix CI gate for campaign
// checkpoint/resume: it proves that a campaign process SIGKILLed at each
// of the three interesting moments — mid-round (work since the last
// checkpoint unflushed), block-flush (new record sidecar written but not
// yet renamed), and round-boundary (a checkpoint just committed) — resumes
// to stdout byte-identical to a never-killed run.
//
// The matrix runs against the real `clasp` binary, not an in-process
// harness: the child dies by actual SIGKILL (armed via CLASP_KILL_POINT,
// see internal/killpoint), so no deferred cleanup or sink flush can paper
// over a durability bug, and the resume goes through the public
// `clasp resume` command. The whole matrix runs at parallelism 1 and 4 —
// resume output must not depend on worker count, even when the resumed
// parallelism differs from the killed run's.
//
// A fourth cell covers multi-campaign commands: a checkpointing
// `report all` is killed the moment its second campaign completes
// (CLASP_KILL_POINT=campaign-done:2), and the resume must skip the
// finished campaigns (loading their results from the checkpoints instead
// of re-measuring) while still reproducing the full report byte-for-byte.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"

	"github.com/clasp-measurement/clasp/internal/killpoint"
)

// The campaign under test: small enough to run the full matrix in
// seconds, long enough (48 rounds) that the kill hour sits well inside
// the run with real work on both sides of it.
const (
	region   = "us-west1"
	days     = "2"
	seed     = "3"
	scale    = "0.1"
	killHour = 7
)

// The multi-campaign cell kills `report all` (same seed/scale/days, nine
// campaigns) the moment its second campaign completes, then resumes the
// whole command: finished campaigns must be skipped, not re-measured, and
// stdout must still be byte-identical to a never-killed run.
const reportAllKillCount = 2

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "resumesmoke: FAIL:", err)
		os.Exit(1)
	}
}

func run() error {
	work, err := os.MkdirTemp("", "resumesmoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(work)

	// One build, many runs: the matrix re-executes the real CLI binary.
	bin := filepath.Join(work, "clasp")
	goTool := os.Getenv("GO")
	if goTool == "" {
		goTool = "go"
	}
	if out, err := exec.Command(goTool, "build", "-o", bin, "./cmd/clasp").CombinedOutput(); err != nil {
		return fmt.Errorf("building clasp: %v\n%s", err, out)
	}

	points := []string{"mid-round", "block-flush", "round-boundary"}
	for _, par := range []string{"1", "4"} {
		want, err := campaign(bin, par, "", "")
		if err != nil {
			return fmt.Errorf("uninterrupted run (parallelism %s): %w", par, err)
		}
		for _, point := range points {
			if err := killAndResume(bin, work, par, point, want); err != nil {
				return fmt.Errorf("parallelism %s, kill at %s: %w", par, point, err)
			}
		}
		fmt.Printf("resumesmoke: parallelism %s: %d kill points resumed byte-identically (%d bytes each)\n",
			par, len(points), len(want))
	}
	if err := reportAllCell(bin, work); err != nil {
		return fmt.Errorf("report all, kill at campaign-done:%d: %w", reportAllKillCount, err)
	}
	return nil
}

// reportAllCell runs the multi-campaign matrix cell: arm the campaign-done
// kill point on a checkpointing `report all`, watch the child die by
// SIGKILL mid-set, resume the command through `clasp resume`, and require
// the finished campaigns skipped plus byte-identical output.
func reportAllCell(bin, work string) error {
	want, _, err := reportAll(bin, "", "")
	if err != nil {
		return fmt.Errorf("uninterrupted run: %w", err)
	}
	ckDir := filepath.Join(work, "ck-reportall")
	kill := fmt.Sprintf("campaign-done:%d", reportAllKillCount)
	if _, _, err := reportAll(bin, ckDir, kill); err == nil {
		return fmt.Errorf("armed child exited cleanly instead of dying")
	} else if !diedBySIGKILL(err) {
		return fmt.Errorf("armed child failed but not by SIGKILL: %v", err)
	}

	total, finished, err := campaignWatermarks(ckDir)
	if err != nil {
		return err
	}
	// The kill fires as the Nth campaign completes, so at least N final
	// watermarks are on disk; and the set must be mid-command (some
	// campaign unfinished or never started) or a full re-run would also
	// "pass".
	if finished < reportAllKillCount {
		return fmt.Errorf("%d campaigns at their final watermark, want at least %d", finished, reportAllKillCount)
	}
	if finished >= total {
		return fmt.Errorf("all %d campaigns finished before the kill — checkpoint set is not mid-command", total)
	}

	got, stderr, err := resumeCommand(bin, ckDir)
	if err != nil {
		return fmt.Errorf("resume: %w", err)
	}
	if skips := strings.Count(string(stderr), "skipping finished campaign"); skips != finished {
		return fmt.Errorf("resume skipped %d campaigns, want the %d finished ones\n%s", skips, finished, stderr)
	}
	if !bytes.Equal(got, want) {
		return fmt.Errorf("resumed output (%d bytes) differs from uninterrupted run (%d bytes)", len(got), len(want))
	}
	fmt.Printf("resumesmoke: report all: killed at campaign %d/%d, resume skipped %d finished campaigns, output byte-identical (%d bytes)\n",
		reportAllKillCount, total, finished, len(want))
	return nil
}

// reportAll runs `clasp report all` and returns its stdout and stderr.
func reportAll(bin, ckDir, kill string) ([]byte, []byte, error) {
	args := []string{"report", "all", "-seed", seed, "-scale", scale, "-days", days, "-parallelism", "4"}
	if ckDir != "" {
		args = append(args, "-checkpoint-dir", ckDir)
	}
	cmd := exec.Command(bin, args...)
	cmd.Env = cleanEnv()
	if kill != "" {
		cmd.Env = append(cmd.Env, killpoint.EnvVar+"="+kill)
	}
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		return nil, nil, fmt.Errorf("%w\n%s", err, stderr.Bytes())
	}
	return stdout.Bytes(), stderr.Bytes(), nil
}

// resumeCommand runs `clasp resume` on a command checkpoint set, returning
// stdout and stderr (the skip lines land on stderr).
func resumeCommand(bin, ckDir string) ([]byte, []byte, error) {
	cmd := exec.Command(bin, "resume", ckDir, "-parallelism", "4")
	cmd.Env = cleanEnv()
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		return nil, nil, fmt.Errorf("%w\n%s", err, stderr.Bytes())
	}
	return stdout.Bytes(), stderr.Bytes(), nil
}

// campaignWatermarks reads the command manifest under ckDir and counts how
// many of its campaigns have a checkpoint at the final watermark
// (days*24). Campaigns without a checkpoint subdirectory never started.
func campaignWatermarks(ckDir string) (total, finished int, err error) {
	raw, err := os.ReadFile(filepath.Join(ckDir, "command.json"))
	if err != nil {
		return 0, 0, fmt.Errorf("reading command manifest: %w", err)
	}
	var man struct {
		Days      int `json:"days"`
		Campaigns []struct {
			Kind   string `json:"kind"`
			Region string `json:"region"`
		} `json:"campaigns"`
	}
	if err := json.Unmarshal(raw, &man); err != nil {
		return 0, 0, fmt.Errorf("parsing command manifest: %w", err)
	}
	for _, c := range man.Campaigns {
		raw, err := os.ReadFile(filepath.Join(ckDir, c.Region+"-"+c.Kind, "checkpoint.json"))
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			return 0, 0, fmt.Errorf("reading campaign checkpoint: %w", err)
		}
		var meta struct {
			Progress struct {
				NextHour int `json:"nextHour"`
			} `json:"progress"`
		}
		if err := json.Unmarshal(raw, &meta); err != nil {
			return 0, 0, fmt.Errorf("parsing campaign checkpoint: %w", err)
		}
		if meta.Progress.NextHour >= man.Days*24 {
			finished++
		}
	}
	return len(man.Campaigns), finished, nil
}

// killAndResume runs one matrix cell: arm the kill point, watch the child
// die by SIGKILL, check what the checkpoint on disk claims, resume it at
// the same parallelism through `clasp resume`, and compare bytes.
func killAndResume(bin, work, par, point string, want []byte) error {
	ckDir := filepath.Join(work, fmt.Sprintf("ck-p%s-%s", par, point))
	kill := fmt.Sprintf("%s:%d", point, killHour)
	if _, err := campaign(bin, par, ckDir, kill); err == nil {
		return fmt.Errorf("armed child exited cleanly instead of dying")
	} else if !diedBySIGKILL(err) {
		return fmt.Errorf("armed child failed but not by SIGKILL: %v", err)
	}

	next, err := watermark(ckDir)
	if err != nil {
		return err
	}
	// The checkpoint must be mid-campaign (or a full re-run would also
	// "pass") and consistent with the kill point: round-boundary dies
	// after hour killHour's checkpoint committed, the other two before.
	if next <= 0 || next >= 48 {
		return fmt.Errorf("checkpoint watermark %d is not mid-campaign", next)
	}
	wantNext := killHour
	if point == "round-boundary" {
		wantNext = killHour + 1
	}
	if next != wantNext {
		return fmt.Errorf("checkpoint watermark %d, want %d", next, wantNext)
	}

	got, err := resume(bin, ckDir, par)
	if err != nil {
		return fmt.Errorf("resume: %w", err)
	}
	if !bytes.Equal(got, want) {
		return fmt.Errorf("resumed output (%d bytes) differs from uninterrupted run (%d bytes):\n--- resumed ---\n%s--- uninterrupted ---\n%s",
			len(got), len(want), got, want)
	}
	return nil
}

// campaign runs `clasp campaign` and returns its stdout. ckDir enables
// checkpointing; kill arms the kill point in the child's environment.
func campaign(bin, par, ckDir, kill string) ([]byte, error) {
	args := []string{"campaign", region, "-seed", seed, "-scale", scale, "-days", days, "-parallelism", par}
	if ckDir != "" {
		args = append(args, "-checkpoint-dir", ckDir)
	}
	cmd := exec.Command(bin, args...)
	cmd.Env = cleanEnv()
	if kill != "" {
		cmd.Env = append(cmd.Env, killpoint.EnvVar+"="+kill)
	}
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("%w\n%s", err, stderr.Bytes())
	}
	return stdout.Bytes(), nil
}

// resume runs `clasp resume` on a checkpoint directory; the kill point is
// never armed here — the resumed process must run to completion.
func resume(bin, ckDir, par string) ([]byte, error) {
	cmd := exec.Command(bin, "resume", ckDir, "-parallelism", par)
	cmd.Env = cleanEnv()
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("%w\n%s", err, stderr.Bytes())
	}
	return stdout.Bytes(), nil
}

// cleanEnv is the parent environment minus any inherited kill point, so a
// developer's shell can never arm a child unintentionally.
func cleanEnv() []string {
	env := os.Environ()
	out := env[:0]
	for _, e := range env {
		if !strings.HasPrefix(e, killpoint.EnvVar+"=") {
			out = append(out, e)
		}
	}
	return out
}

// diedBySIGKILL reports whether a child's exit error is an uncaught
// SIGKILL — the only acceptable way for an armed child to stop.
func diedBySIGKILL(err error) bool {
	ee, ok := err.(*exec.ExitError)
	if !ok {
		// campaign() wraps the error with stderr; unwrap one level.
		type wrapper interface{ Unwrap() error }
		if w, okw := err.(wrapper); okw {
			ee, ok = w.Unwrap().(*exec.ExitError)
		}
		if !ok {
			return false
		}
	}
	ws, ok := ee.Sys().(syscall.WaitStatus)
	return ok && ws.Signaled() && ws.Signal() == syscall.SIGKILL
}

// watermark reads NextHour out of the checkpoint metadata under ckDir
// (single-campaign layout: one <region>-<kind> subdirectory).
func watermark(ckDir string) (int, error) {
	raw, err := os.ReadFile(filepath.Join(ckDir, region+"-topology", "checkpoint.json"))
	if err != nil {
		return 0, fmt.Errorf("reading checkpoint metadata: %w", err)
	}
	var meta struct {
		Progress struct {
			NextHour int `json:"nextHour"`
		} `json:"progress"`
	}
	if err := json.Unmarshal(raw, &meta); err != nil {
		return 0, fmt.Errorf("parsing checkpoint metadata: %w", err)
	}
	return meta.Progress.NextHour, nil
}
