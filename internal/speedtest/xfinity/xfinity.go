// Package xfinity implements a Comcast Xfinity-style HTTP speed test:
// latency via small GETs, download via ranged GETs of sized objects, and
// upload via POSTs, run over several parallel HTTP connections the way the
// web client does.
package xfinity

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/clasp-measurement/clasp/internal/speedtest"
)

// Endpoint paths.
const (
	LatencyPath  = "/speedtest/latency"
	DownloadPath = "/speedtest/download" // ?size=N
	UploadPath   = "/speedtest/upload"
)

// MaxObject bounds one downloadable object (256 MiB).
const MaxObject = 256 << 20

// Handler serves the three endpoints.
type Handler struct{}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case LatencyPath:
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprintln(w, "pong")
	case DownloadPath:
		size, err := strconv.ParseInt(r.URL.Query().Get("size"), 10, 64)
		if err != nil || size <= 0 || size > MaxObject {
			http.Error(w, "bad size", http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
		chunk := make([]byte, 64<<10)
		for size > 0 {
			n := int64(len(chunk))
			if n > size {
				n = size
			}
			if _, err := w.Write(chunk[:n]); err != nil {
				return
			}
			size -= n
		}
	case UploadPath:
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		n, err := io.Copy(io.Discard, r.Body)
		if err != nil {
			http.Error(w, "read error", http.StatusBadRequest)
			return
		}
		fmt.Fprintf(w, "%d\n", n)
	default:
		http.NotFound(w, r)
	}
}

// Config tunes the client.
type Config struct {
	// Connections is the number of parallel HTTP streams (default 4).
	Connections int
	// Duration bounds each direction (default 10 s).
	Duration time.Duration
	// ObjectBytes is the per-request object size (default 8 MiB).
	ObjectBytes int64
	// PingCount is the number of latency probes (default 5).
	PingCount int
	// HTTPClient substitutes the transport; nil uses a dedicated client.
	HTTPClient *http.Client
}

func (c Config) withDefaults() Config {
	if c.Connections <= 0 {
		c.Connections = 4
	}
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.ObjectBytes <= 0 {
		c.ObjectBytes = 8 << 20
	}
	if c.PingCount <= 0 {
		c.PingCount = 5
	}
	return c
}

// Client runs Xfinity-style tests.
type Client struct {
	cfg  Config
	http *http.Client
}

// NewClient creates a client.
func NewClient(cfg Config) *Client {
	cfg = cfg.withDefaults()
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: cfg.Connections * 2,
		}}
	}
	return &Client{cfg: cfg, http: hc}
}

// Platform implements speedtest.Client.
func (c *Client) Platform() string { return "comcast" }

// Run implements speedtest.Client.
func (c *Client) Run(ctx context.Context, addr string) (speedtest.Result, error) {
	base := "http://" + addr
	res := speedtest.Result{Platform: c.Platform(), Server: addr, Start: time.Now()}

	// Latency: minimum of PingCount small GETs.
	best := -1.0
	for i := 0; i < c.cfg.PingCount; i++ {
		start := time.Now()
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+LatencyPath, nil)
		if err != nil {
			return res, fmt.Errorf("xfinity: %w", err)
		}
		resp, err := c.http.Do(req)
		if err != nil {
			return res, fmt.Errorf("xfinity: latency probe: %w", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		rtt := time.Since(start).Seconds() * 1000
		if best < 0 || rtt < best {
			best = rtt
		}
	}
	res.LatencyMs = best

	// Download: parallel workers fetching sized objects.
	down, err := c.transferPhase(ctx, func(workerCtx context.Context) (int64, error) {
		url := fmt.Sprintf("%s%s?size=%d", base, DownloadPath, c.cfg.ObjectBytes)
		req, err := http.NewRequestWithContext(workerCtx, http.MethodGet, url, nil)
		if err != nil {
			return 0, err
		}
		resp, err := c.http.Do(req)
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("status %s", resp.Status)
		}
		return io.Copy(io.Discard, resp.Body)
	})
	if err != nil {
		return res, fmt.Errorf("xfinity: download: %w", err)
	}
	res.BytesDown = down.bytes
	res.DownloadMbps = speedtest.Mbps(down.bytes, down.elapsed)

	// Upload: parallel POSTs.
	up, err := c.transferPhase(ctx, func(workerCtx context.Context) (int64, error) {
		body := io.LimitReader(zeroReader{}, c.cfg.ObjectBytes)
		req, err := http.NewRequestWithContext(workerCtx, http.MethodPost, base+UploadPath, body)
		if err != nil {
			return 0, err
		}
		req.ContentLength = c.cfg.ObjectBytes
		resp, err := c.http.Do(req)
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("status %s", resp.Status)
		}
		return c.cfg.ObjectBytes, nil
	})
	if err != nil {
		return res, fmt.Errorf("xfinity: upload: %w", err)
	}
	res.BytesUp = up.bytes
	res.UploadMbps = speedtest.Mbps(up.bytes, up.elapsed)
	res.Duration = time.Since(res.Start).Seconds()
	return res, nil
}

type phaseResult struct {
	bytes   int64
	elapsed time.Duration
}

// transferPhase runs `one` repeatedly on Connections workers for Duration.
// Context cancellation at the phase deadline is expected and not an error;
// other failures abort the phase.
func (c *Client) transferPhase(ctx context.Context, one func(context.Context) (int64, error)) (phaseResult, error) {
	phaseCtx, cancel := context.WithTimeout(ctx, c.cfg.Duration)
	defer cancel()
	var total atomic.Int64
	var wg sync.WaitGroup
	errCh := make(chan error, c.cfg.Connections)
	start := time.Now()
	for w := 0; w < c.cfg.Connections; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for phaseCtx.Err() == nil {
				n, err := one(phaseCtx)
				total.Add(n)
				if err != nil {
					if phaseCtx.Err() != nil {
						return // deadline reached mid-transfer
					}
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return phaseResult{}, err
	default:
	}
	if err := ctx.Err(); err != nil {
		return phaseResult{}, err
	}
	return phaseResult{bytes: total.Load(), elapsed: elapsed}, nil
}

// zeroReader yields zero bytes forever.
type zeroReader struct{}

func (zeroReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 0
	}
	return len(p), nil
}
