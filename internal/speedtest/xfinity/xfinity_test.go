package xfinity

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func startServer(t *testing.T) string {
	t.Helper()
	srv := httptest.NewServer(&Handler{})
	t.Cleanup(srv.Close)
	return strings.TrimPrefix(srv.URL, "http://")
}

func quickCfg() Config {
	return Config{
		Connections: 2,
		Duration:    300 * time.Millisecond,
		ObjectBytes: 1 << 20,
		PingCount:   3,
	}
}

func TestFullTestLoopback(t *testing.T) {
	addr := startServer(t)
	c := NewClient(quickCfg())
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	res, err := c.Run(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	if res.DownloadMbps <= 0 || res.UploadMbps <= 0 {
		t.Errorf("throughput missing: %+v", res)
	}
	if res.LatencyMs <= 0 || res.LatencyMs > 100 {
		t.Errorf("latency = %v", res.LatencyMs)
	}
	if res.Platform != "comcast" {
		t.Errorf("platform = %q", res.Platform)
	}
	if res.BytesDown <= 0 || res.BytesUp <= 0 {
		t.Errorf("byte counts: %+v", res)
	}
}

func TestHandlerEndpoints(t *testing.T) {
	addr := startServer(t)
	base := "http://" + addr

	// Latency endpoint.
	resp, err := http.Get(base + LatencyPath)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "pong") {
		t.Errorf("latency endpoint: %d %q", resp.StatusCode, body)
	}

	// Download size honoured exactly.
	resp, err = http.Get(base + DownloadPath + "?size=12345")
	if err != nil {
		t.Fatal(err)
	}
	n, _ := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if n != 12345 {
		t.Errorf("download returned %d bytes, want 12345", n)
	}

	// Bad sizes rejected.
	for _, q := range []string{"?size=0", "?size=-1", "?size=abc", ""} {
		resp, err := http.Get(base + DownloadPath + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("download%s: status %d, want 400", q, resp.StatusCode)
		}
	}

	// Upload echoes the byte count.
	resp, err = http.Post(base+UploadPath, "application/octet-stream", strings.NewReader("0123456789"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.TrimSpace(string(body)) != "10" {
		t.Errorf("upload ack = %q", body)
	}

	// Upload requires POST.
	resp, err = http.Get(base + UploadPath)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET upload: status %d", resp.StatusCode)
	}

	// Unknown path.
	resp, err = http.Get(base + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path: status %d", resp.StatusCode)
	}
}

func TestParallelConnectionsUsed(t *testing.T) {
	addr := startServer(t)
	cfg := quickCfg()
	cfg.Connections = 4
	c := NewClient(cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	res, err := c.Run(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	// With 4 workers and 1 MiB objects in 300 ms on loopback we must see
	// several objects' worth of data.
	if res.BytesDown < 4<<20 {
		t.Errorf("parallel download moved only %d bytes", res.BytesDown)
	}
}

func TestClientErrorPaths(t *testing.T) {
	c := NewClient(quickCfg())
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := c.Run(ctx, "127.0.0.1:1"); err == nil {
		t.Error("refused connection: want error")
	}

	// A server that 500s the download phase must surface an error.
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == LatencyPath {
			io.WriteString(w, "pong\n")
			return
		}
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer bad.Close()
	if _, err := c.Run(ctx, strings.TrimPrefix(bad.URL, "http://")); err == nil {
		t.Error("500ing server: want error")
	}
}
