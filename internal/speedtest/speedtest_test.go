package speedtest

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"
)

func sampleServers() []ServerInfo {
	return []ServerInfo{
		{ID: 2, Platform: "ookla", Host: "b.example.net", City: "Denver", Country: "US", ASN: 7922},
		{ID: 1, Platform: "ookla", Host: "a.example.net", City: "Las Vegas", Country: "US", ASN: 22773},
		{ID: 3, Platform: "mlab", Host: "c.example.net", City: "Sydney", Country: "AU", ASN: 1221},
	}
}

func TestDirectorySortsAndCopies(t *testing.T) {
	d := NewDirectory(sampleServers())
	got := d.Servers()
	if len(got) != 3 || got[0].ID != 1 || got[2].ID != 3 {
		t.Errorf("directory order wrong: %+v", got)
	}
	got[0].Host = "mutated"
	if d.Servers()[0].Host == "mutated" {
		t.Error("Servers() exposes internal state")
	}
}

func TestCrawlRoundTrip(t *testing.T) {
	d := NewDirectory(sampleServers())
	srv := httptest.NewServer(d)
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	servers, err := Crawl(ctx, nil, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if len(servers) != 3 {
		t.Fatalf("crawled %d servers", len(servers))
	}
	if servers[0].City != "Las Vegas" || servers[0].ASN != 22773 {
		t.Errorf("server metadata lost: %+v", servers[0])
	}
}

func TestCrawlCountryFilter(t *testing.T) {
	d := NewDirectory(sampleServers())
	srv := httptest.NewServer(d)
	defer srv.Close()
	ctx := context.Background()
	us, err := Crawl(ctx, nil, srv.URL+"?country=US")
	if err != nil {
		t.Fatal(err)
	}
	if len(us) != 2 {
		t.Errorf("US filter returned %d", len(us))
	}
	none, err := Crawl(ctx, nil, srv.URL+"?country=XX")
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Errorf("XX filter returned %d", len(none))
	}
}

func TestCrawlErrors(t *testing.T) {
	ctx := context.Background()
	if _, err := Crawl(ctx, nil, "http://127.0.0.1:1/"); err == nil {
		t.Error("unreachable host: want error")
	}
	d := NewDirectory(nil)
	srv := httptest.NewServer(d)
	defer srv.Close()
	// POST is rejected.
	if _, err := Crawl(ctx, nil, srv.URL+"/%zz"); err == nil {
		t.Error("bad URL: want error")
	}
}

func TestMbps(t *testing.T) {
	if v := Mbps(1_250_000, time.Second); v != 10 {
		t.Errorf("Mbps = %v, want 10", v)
	}
	if v := Mbps(100, 0); v != 0 {
		t.Errorf("Mbps zero duration = %v", v)
	}
}
