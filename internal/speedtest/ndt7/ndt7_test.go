package ndt7

import (
	"context"
	"encoding/json"
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/clasp-measurement/clasp/internal/shaper"
	"github.com/clasp-measurement/clasp/internal/wsock"
)

func startServer(t *testing.T, d time.Duration) string {
	t.Helper()
	srv := httptest.NewServer(&Handler{Duration: d})
	t.Cleanup(srv.Close)
	return strings.TrimPrefix(srv.URL, "http://")
}

func TestDownloadUploadLoopback(t *testing.T) {
	addr := startServer(t, 400*time.Millisecond)
	c := NewClient(Config{Duration: 400 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := c.Run(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	if res.DownloadMbps <= 0 || res.UploadMbps <= 0 {
		t.Errorf("throughput missing: %+v", res)
	}
	if res.BytesDown < minMessageSize || res.BytesUp < minMessageSize {
		t.Errorf("byte counts too small: %+v", res)
	}
	if res.LatencyMs <= 0 || res.LatencyMs > 200 {
		t.Errorf("handshake RTT = %v", res.LatencyMs)
	}
	if res.Platform != "mlab" {
		t.Errorf("platform = %q", res.Platform)
	}
}

func TestServerSendsMeasurements(t *testing.T) {
	addr := startServer(t, 600*time.Millisecond)
	conn, err := wsock.Dial(addr, DownloadPath, Subprotocol, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	gotMeasurement := false
	var lastBytes int64
	deadline := time.Now().Add(3 * time.Second)
	conn.SetDeadline(deadline)
	var received int64
	for time.Now().Before(deadline) {
		op, msg, err := conn.ReadMessage()
		if err != nil {
			break
		}
		switch op {
		case wsock.OpBinary:
			received += int64(len(msg))
		case wsock.OpText:
			var m Measurement
			if err := json.Unmarshal(msg, &m); err != nil {
				t.Fatalf("bad measurement JSON: %v (%q)", err, msg)
			}
			if m.Origin != "server" || m.Test != "download" || m.AppInfo == nil {
				t.Errorf("measurement fields: %+v", m)
			}
			if m.AppInfo.NumBytes < lastBytes {
				t.Error("NumBytes went backwards")
			}
			lastBytes = m.AppInfo.NumBytes
			gotMeasurement = true
		}
	}
	if !gotMeasurement {
		t.Error("no server measurement message observed")
	}
	if received == 0 {
		t.Error("no binary data received")
	}
}

func TestUploadServerCounts(t *testing.T) {
	addr := startServer(t, time.Second)
	conn, err := wsock.Dial(addr, UploadPath, Subprotocol, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(3 * time.Second))
	payload := make([]byte, 1<<16)
	var sent int64
	// Send for ~400ms then wait for a measurement echoing our count.
	start := time.Now()
	for time.Since(start) < 400*time.Millisecond {
		if err := conn.WriteMessage(wsock.OpBinary, payload); err != nil {
			t.Fatal(err)
		}
		sent += int64(len(payload))
	}
	op, msg, err := conn.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if op != wsock.OpText {
		t.Fatalf("expected measurement, got opcode %d", op)
	}
	var m Measurement
	if err := json.Unmarshal(msg, &m); err != nil {
		t.Fatal(err)
	}
	if m.Test != "upload" || m.AppInfo == nil {
		t.Fatalf("measurement: %+v", m)
	}
	if m.AppInfo.NumBytes <= 0 || m.AppInfo.NumBytes > sent {
		t.Errorf("server counted %d bytes, client sent %d", m.AppInfo.NumBytes, sent)
	}
}

func TestShapedDownloadRespectsCap(t *testing.T) {
	addr := startServer(t, 900*time.Millisecond)
	c := NewClient(Config{
		Duration: 900 * time.Millisecond,
		Dial: func(ctx context.Context, a string) (net.Conn, error) {
			raw, err := net.Dial("tcp", a)
			if err != nil {
				return nil, err
			}
			return shaper.NewConn(raw, shaper.Options{ReadMbps: 100}), nil
		},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	mbps, _, _, err := c.Download(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	if mbps > 140 {
		t.Errorf("shaped ndt7 download = %.0f Mbps, cap 100", mbps)
	}
	if mbps < 20 {
		t.Errorf("shaped ndt7 download = %.0f Mbps, suspiciously slow", mbps)
	}
}

func TestUnknownPath404(t *testing.T) {
	addr := startServer(t, time.Second)
	if _, err := wsock.Dial(addr, "/ndt/v7/bogus", Subprotocol, time.Second); err == nil {
		t.Error("bogus path upgraded")
	}
}

func TestClientErrors(t *testing.T) {
	c := NewClient(Config{Duration: 100 * time.Millisecond})
	ctx := context.Background()
	if _, err := c.Run(ctx, "127.0.0.1:1"); err == nil {
		t.Error("refused connection: want error")
	}
}

func TestMessageSizeScaling(t *testing.T) {
	addr := startServer(t, 500*time.Millisecond)
	conn, err := wsock.Dial(addr, DownloadPath, Subprotocol, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(3 * time.Second))
	sizes := map[int]bool{}
	for {
		op, msg, err := conn.ReadMessage()
		if err != nil {
			break
		}
		if op == wsock.OpBinary {
			sizes[len(msg)] = true
		}
	}
	if len(sizes) < 2 {
		t.Errorf("message size never scaled: %v", sizes)
	}
	if !sizes[minMessageSize] {
		t.Error("initial message size not observed")
	}
}
