// Package ndt7 implements M-Lab's ndt7 speed test protocol: WebSocket
// transfers on /ndt/v7/download and /ndt/v7/upload with the
// "net.measurementlab.ndt.v7" subprotocol and periodic JSON measurement
// messages, per the ndt7 protocol specification.
package ndt7

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"

	"github.com/clasp-measurement/clasp/internal/speedtest"
	"github.com/clasp-measurement/clasp/internal/wsock"
)

// Protocol constants.
const (
	// Subprotocol is the required WebSocket subprotocol.
	Subprotocol = "net.measurementlab.ndt.v7"
	// DownloadPath and UploadPath are the ndt7 endpoints.
	DownloadPath = "/ndt/v7/download"
	UploadPath   = "/ndt/v7/upload"
	// minMessageSize is the initial binary message size; the sender
	// doubles it as the transfer speeds up, capped at maxMessageSize.
	minMessageSize = 1 << 13
	maxMessageSize = 1 << 20
	// measureInterval is how often measurement JSON is emitted.
	measureInterval = 250 * time.Millisecond
)

// Measurement is the ndt7 measurement message (subset of the spec).
type Measurement struct {
	AppInfo *AppInfo `json:"AppInfo,omitempty"`
	Origin  string   `json:"Origin,omitempty"` // "client" or "server"
	Test    string   `json:"Test,omitempty"`   // "download" or "upload"
}

// AppInfo carries application-level transfer progress.
type AppInfo struct {
	ElapsedTime int64 `json:"ElapsedTime"` // microseconds
	NumBytes    int64 `json:"NumBytes"`
}

// Handler serves the two ndt7 endpoints.
type Handler struct {
	// Duration bounds each test (default 10 s; tests shorten it).
	Duration time.Duration
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case DownloadPath:
		h.download(w, r)
	case UploadPath:
		h.upload(w, r)
	default:
		http.NotFound(w, r)
	}
}

func (h *Handler) duration() time.Duration {
	if h.Duration > 0 {
		return h.Duration
	}
	return 10 * time.Second
}

func (h *Handler) download(w http.ResponseWriter, r *http.Request) {
	c, err := wsock.Upgrade(w, r, Subprotocol)
	if err != nil {
		return
	}
	defer c.Close()
	_ = c.SetDeadline(time.Now().Add(h.duration() + 15*time.Second))

	start := time.Now()
	var sent int64
	size := minMessageSize
	buf := make([]byte, maxMessageSize)
	nextMeasure := start.Add(measureInterval)
	for time.Since(start) < h.duration() {
		if err := c.WriteMessage(wsock.OpBinary, buf[:size]); err != nil {
			return
		}
		sent += int64(size)
		// Scale the message size as the transfer proceeds (ndt7 rule:
		// grow while the message is under 1/16 of bytes sent).
		if size < maxMessageSize && int64(size) < sent/16 {
			size *= 2
		}
		if now := time.Now(); now.After(nextMeasure) {
			m := Measurement{
				Origin: "server",
				Test:   "download",
				AppInfo: &AppInfo{
					ElapsedTime: time.Since(start).Microseconds(),
					NumBytes:    sent,
				},
			}
			data, err := json.Marshal(m)
			if err != nil {
				return
			}
			if err := c.WriteMessage(wsock.OpText, data); err != nil {
				return
			}
			nextMeasure = now.Add(measureInterval)
		}
	}
}

func (h *Handler) upload(w http.ResponseWriter, r *http.Request) {
	c, err := wsock.Upgrade(w, r, Subprotocol)
	if err != nil {
		return
	}
	defer c.Close()
	_ = c.SetDeadline(time.Now().Add(h.duration() + 15*time.Second))

	start := time.Now()
	var received int64
	nextMeasure := start.Add(measureInterval)
	for {
		op, msg, err := c.ReadMessage()
		if err != nil {
			return
		}
		if op == wsock.OpBinary {
			received += int64(len(msg))
		}
		if now := time.Now(); now.After(nextMeasure) {
			m := Measurement{
				Origin: "server",
				Test:   "upload",
				AppInfo: &AppInfo{
					ElapsedTime: time.Since(start).Microseconds(),
					NumBytes:    received,
				},
			}
			data, err := json.Marshal(m)
			if err != nil {
				return
			}
			if err := c.WriteMessage(wsock.OpText, data); err != nil {
				return
			}
			nextMeasure = now.Add(measureInterval)
		}
	}
}

// Config tunes the client.
type Config struct {
	// Duration bounds each direction (default 10 s).
	Duration time.Duration
	// DialTimeout bounds connection establishment (default 10 s).
	DialTimeout time.Duration
	// Dial substitutes the transport (e.g. a shaped connection); nil
	// uses plain TCP.
	Dial func(ctx context.Context, addr string) (net.Conn, error)
}

func (c Config) withDefaults() Config {
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 10 * time.Second
	}
	return c
}

// Client runs ndt7 tests.
type Client struct {
	cfg Config
}

// NewClient creates an ndt7 client.
func NewClient(cfg Config) *Client { return &Client{cfg: cfg.withDefaults()} }

// Platform implements speedtest.Client.
func (c *Client) Platform() string { return "mlab" }

func (c *Client) connect(ctx context.Context, addr, path string) (*wsock.Conn, time.Duration, error) {
	start := time.Now()
	var raw net.Conn
	var err error
	if c.cfg.Dial != nil {
		raw, err = c.cfg.Dial(ctx, addr)
	} else {
		d := net.Dialer{Timeout: c.cfg.DialTimeout}
		raw, err = d.DialContext(ctx, "tcp", addr)
	}
	if err != nil {
		return nil, 0, fmt.Errorf("ndt7: dial: %w", err)
	}
	conn, err := wsock.ClientHandshake(raw, addr, path, Subprotocol)
	if err != nil {
		raw.Close()
		return nil, 0, fmt.Errorf("ndt7: handshake: %w", err)
	}
	return conn, time.Since(start), nil
}

// Download runs the download direction, returning Mbps, bytes and the
// connection setup RTT.
func (c *Client) Download(ctx context.Context, addr string) (mbps float64, bytes int64, rtt time.Duration, err error) {
	conn, rtt, err := c.connect(ctx, addr, DownloadPath)
	if err != nil {
		return 0, 0, 0, err
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(c.cfg.Duration + 15*time.Second))
	start := time.Now()
	for time.Since(start) < c.cfg.Duration {
		if err := ctx.Err(); err != nil {
			return 0, bytes, rtt, err
		}
		op, msg, err := conn.ReadMessage()
		if errors.Is(err, wsock.ErrClosed) {
			break
		}
		if err != nil {
			// The server stops sending at its duration; a clean EOF
			// after data is fine.
			if bytes > 0 {
				break
			}
			return 0, 0, rtt, fmt.Errorf("ndt7: download: %w", err)
		}
		if op == wsock.OpBinary {
			bytes += int64(len(msg))
		}
	}
	elapsed := time.Since(start)
	return speedtest.Mbps(bytes, elapsed), bytes, rtt, nil
}

// Upload runs the upload direction.
func (c *Client) Upload(ctx context.Context, addr string) (mbps float64, bytes int64, err error) {
	conn, _, err := c.connect(ctx, addr, UploadPath)
	if err != nil {
		return 0, 0, err
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(c.cfg.Duration + 15*time.Second))
	start := time.Now()
	size := minMessageSize
	buf := make([]byte, maxMessageSize)
	for time.Since(start) < c.cfg.Duration {
		if err := ctx.Err(); err != nil {
			return 0, bytes, err
		}
		if err := conn.WriteMessage(wsock.OpBinary, buf[:size]); err != nil {
			return 0, bytes, fmt.Errorf("ndt7: upload: %w", err)
		}
		bytes += int64(size)
		if size < maxMessageSize && int64(size) < bytes/16 {
			size *= 2
		}
	}
	elapsed := time.Since(start)
	return speedtest.Mbps(bytes, elapsed), bytes, nil
}

// Run implements speedtest.Client: download then upload.
func (c *Client) Run(ctx context.Context, addr string) (speedtest.Result, error) {
	res := speedtest.Result{Platform: c.Platform(), Server: addr, Start: time.Now()}
	down, bytesDown, rtt, err := c.Download(ctx, addr)
	if err != nil {
		return res, err
	}
	res.DownloadMbps = down
	res.BytesDown = bytesDown
	res.LatencyMs = float64(rtt.Microseconds()) / 1000
	up, bytesUp, err := c.Upload(ctx, addr)
	if err != nil {
		return res, err
	}
	res.UploadMbps = up
	res.BytesUp = bytesUp
	res.Duration = time.Since(res.Start).Seconds()
	return res, nil
}
