// Package ookla implements the Ookla legacy TCP speed test protocol
// (the line-oriented HI/PING/DOWNLOAD/UPLOAD dialect spoken by
// speedtest-mini and classic server daemons) — both the server and a
// measuring client.
//
// Protocol summary (client -> server lines, '\n'-terminated):
//
//	HI                     -> HELLO 2.9 (clasp)
//	PING <ms>              -> PONG <server ms>
//	DOWNLOAD <n>           -> "DOWNLOAD " + filler, n bytes total + '\n'
//	UPLOAD <n> 0 ; <data>  -> OK <n> <elapsed-ms>
//	QUIT                   -> connection closes
package ookla

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/clasp-measurement/clasp/internal/obs"
	"github.com/clasp-measurement/clasp/internal/speedtest"
)

// MaxBlock bounds a single DOWNLOAD/UPLOAD request (64 MiB).
const MaxBlock = 64 << 20

// obsCmdDur times the server side of each protocol command, by verb. The
// verb set is fixed (unknown verbs collapse to "other") so label
// cardinality stays bounded under hostile input; updates no-op while the
// obs registry is disabled.
var obsCmdDur = func() map[string]*obs.Histogram {
	m := make(map[string]*obs.Histogram, 6)
	for _, c := range []string{"HI", "PING", "DOWNLOAD", "UPLOAD", "QUIT", "other"} {
		m[c] = obs.Default().Histogram("ookla_command_duration_ns", "cmd", c)
	}
	return m
}()

// observeCmd records one completed command's server-side duration.
func observeCmd(cmd string, start time.Time) {
	if start.IsZero() {
		return
	}
	h := obsCmdDur[cmd]
	if h == nil {
		h = obsCmdDur["other"]
	}
	h.Observe(float64(time.Since(start)))
}

// Server is an Ookla-protocol speed test server.
type Server struct {
	ln        net.Listener
	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once

	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

// Serve starts accepting connections on ln; it owns the listener.
func Serve(ln net.Listener) *Server {
	s := &Server{ln: ln, closed: make(chan struct{}), conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Listen starts a server on addr ("127.0.0.1:0" for tests).
func Listen(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ookla: listen: %w", err)
	}
	return Serve(ln), nil
}

// Addr returns the listening address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops the server immediately: it stops accepting, severs every
// active connection, and waits for handlers to finish. In-flight tests are
// dropped — use Shutdown for a graceful drain. Safe to call multiple times.
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.closed)
		err = s.ln.Close()
		s.closeActiveConns()
		s.wg.Wait()
	})
	return err
}

// Shutdown gracefully stops the server: it stops accepting new connections
// and waits for active tests to finish on their own. If ctx expires first,
// the remaining connections are severed (mid-transfer clients see a read
// error, exactly like a network drop) and ctx.Err() is returned. Like
// http.Server.Shutdown, it is safe to call concurrently with Close and
// returns nil once every handler has exited.
func (s *Server) Shutdown(ctx context.Context) error {
	s.closeOnce.Do(func() {
		close(s.closed)
		_ = s.ln.Close()
	})
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.closeActiveConns()
		<-done
		return ctx.Err()
	}
}

// closeActiveConns severs every tracked connection, unblocking its handler.
func (s *Server) closeActiveConns() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for c := range s.conns {
		_ = c.Close()
	}
}

// track registers (add) or forgets (remove) an active connection; it reports
// whether the server is still open. A false return means the server stopped
// accepting between Accept and track, and the caller must drop the conn.
func (s *Server) track(conn net.Conn, add bool) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if add {
		select {
		case <-s.closed:
			return false
		default:
		}
		s.conns[conn] = struct{}{}
	} else {
		delete(s.conns, conn)
	}
	return true
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				return
			}
		}
		if !s.track(conn, true) {
			conn.Close()
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.track(conn, false)
			defer conn.Close()
			s.handle(conn)
		}()
	}
}

// filler is the repeated payload pattern for DOWNLOAD responses.
var filler = func() []byte {
	b := make([]byte, 8192)
	const alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	for i := range b {
		b[i] = alphabet[i%len(alphabet)]
	}
	return b
}()

func (s *Server) handle(conn net.Conn) {
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)
	for {
		_ = conn.SetReadDeadline(time.Now().Add(60 * time.Second))
		line, err := br.ReadString('\n')
		if err != nil {
			return
		}
		line = strings.TrimSpace(line)
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		cmd := strings.ToUpper(fields[0])
		// Only completed commands are timed: a handler that returns mid-
		// command (client gone, QUIT) records nothing, so the histograms
		// describe successful serving-path work.
		var cmdStart time.Time
		if obs.Enabled() {
			cmdStart = time.Now()
		}
		switch cmd {
		case "HI":
			fmt.Fprintf(bw, "HELLO 2.9 (clasp)\n")
		case "PING":
			fmt.Fprintf(bw, "PONG %d\n", time.Now().UnixMilli())
		case "DOWNLOAD":
			n, err := parseSize(fields, 1)
			if err != nil {
				fmt.Fprintf(bw, "ERROR %v\n", err)
				bw.Flush()
				continue
			}
			if err := writeDownload(bw, n); err != nil {
				return
			}
		case "UPLOAD":
			n, err := parseSize(fields, 1)
			if err != nil {
				fmt.Fprintf(bw, "ERROR %v\n", err)
				bw.Flush()
				continue
			}
			start := time.Now()
			// The first line (already consumed) counts toward n in the
			// real protocol; we count the remaining payload only, which
			// the client sizes accordingly.
			if _, err := io.CopyN(io.Discard, br, int64(n)); err != nil {
				return
			}
			fmt.Fprintf(bw, "OK %d %d\n", n, time.Since(start).Milliseconds())
		case "QUIT":
			bw.Flush()
			return
		default:
			fmt.Fprintf(bw, "ERROR unknown command\n")
		}
		observeCmd(cmd, cmdStart)
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

func parseSize(fields []string, idx int) (int, error) {
	if len(fields) <= idx {
		return 0, errors.New("missing size")
	}
	n, err := strconv.Atoi(fields[idx])
	if err != nil || n <= 0 || n > MaxBlock {
		return 0, fmt.Errorf("bad size %q", fields[idx])
	}
	return n, nil
}

// writeDownload emits "DOWNLOAD " + filler so the full line is n bytes
// including the trailing newline.
func writeDownload(bw *bufio.Writer, n int) error {
	const prefix = "DOWNLOAD "
	if n < len(prefix)+1 {
		n = len(prefix) + 1
	}
	if _, err := bw.WriteString(prefix); err != nil {
		return err
	}
	remaining := n - len(prefix) - 1
	for remaining > 0 {
		chunk := remaining
		if chunk > len(filler) {
			chunk = len(filler)
		}
		if _, err := bw.Write(filler[:chunk]); err != nil {
			return err
		}
		remaining -= chunk
	}
	return bw.WriteByte('\n')
}

// Config tunes the client.
type Config struct {
	// PingCount is the number of PING exchanges (default 5; the minimum
	// is reported as the latency, like the Ookla client).
	PingCount int
	// DownloadDuration / UploadDuration bound each phase (default 10 s;
	// tests use shorter values).
	DownloadDuration time.Duration
	UploadDuration   time.Duration
	// BlockBytes is the per-request transfer size (default 1 MiB).
	BlockBytes int
	// DialTimeout bounds connection establishment (default 10 s).
	DialTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.PingCount <= 0 {
		c.PingCount = 5
	}
	if c.DownloadDuration <= 0 {
		c.DownloadDuration = 10 * time.Second
	}
	if c.UploadDuration <= 0 {
		c.UploadDuration = 10 * time.Second
	}
	if c.BlockBytes <= 0 {
		c.BlockBytes = 1 << 20
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 10 * time.Second
	}
	return c
}

// Client measures against an Ookla-protocol server.
type Client struct {
	cfg Config
	// Dial allows tests to substitute shaped transports; nil uses TCP.
	Dial func(ctx context.Context, addr string) (net.Conn, error)
}

// NewClient creates a client with the given configuration.
func NewClient(cfg Config) *Client { return &Client{cfg: cfg.withDefaults()} }

// Platform implements speedtest.Client.
func (c *Client) Platform() string { return "ookla" }

func (c *Client) dial(ctx context.Context, addr string) (net.Conn, error) {
	if c.Dial != nil {
		return c.Dial(ctx, addr)
	}
	d := net.Dialer{Timeout: c.cfg.DialTimeout}
	return d.DialContext(ctx, "tcp", addr)
}

// Run implements speedtest.Client.
func (c *Client) Run(ctx context.Context, addr string) (speedtest.Result, error) {
	res := speedtest.Result{Platform: c.Platform(), Server: addr, Start: time.Now()}
	conn, err := c.dial(ctx, addr)
	if err != nil {
		return res, fmt.Errorf("ookla: %w", err)
	}
	defer conn.Close()
	if dl, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(dl)
	}
	br := bufio.NewReaderSize(conn, 256<<10)

	// Handshake.
	if _, err := io.WriteString(conn, "HI\n"); err != nil {
		return res, fmt.Errorf("ookla: handshake: %w", err)
	}
	hello, err := br.ReadString('\n')
	if err != nil || !strings.HasPrefix(hello, "HELLO") {
		return res, fmt.Errorf("ookla: bad HELLO %q: %v", strings.TrimSpace(hello), err)
	}

	// Latency: minimum of PingCount RTTs.
	best := -1.0
	for i := 0; i < c.cfg.PingCount; i++ {
		start := time.Now()
		if _, err := fmt.Fprintf(conn, "PING %d\n", start.UnixMilli()); err != nil {
			return res, fmt.Errorf("ookla: ping: %w", err)
		}
		line, err := br.ReadString('\n')
		if err != nil || !strings.HasPrefix(line, "PONG") {
			return res, fmt.Errorf("ookla: bad PONG %q: %v", strings.TrimSpace(line), err)
		}
		rtt := time.Since(start).Seconds() * 1000
		if best < 0 || rtt < best {
			best = rtt
		}
	}
	res.LatencyMs = best

	// Download phase: request blocks until the duration budget is used.
	dlStart := time.Now()
	var dlBytes int64
	buf := make([]byte, 64<<10)
	for time.Since(dlStart) < c.cfg.DownloadDuration {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		if _, err := fmt.Fprintf(conn, "DOWNLOAD %d\n", c.cfg.BlockBytes); err != nil {
			return res, fmt.Errorf("ookla: download request: %w", err)
		}
		remaining := c.cfg.BlockBytes
		for remaining > 0 {
			chunk := remaining
			if chunk > len(buf) {
				chunk = len(buf)
			}
			n, err := io.ReadFull(br, buf[:chunk])
			dlBytes += int64(n)
			if err != nil {
				return res, fmt.Errorf("ookla: download read: %w", err)
			}
			remaining -= n
		}
	}
	res.BytesDown = dlBytes
	res.DownloadMbps = speedtest.Mbps(dlBytes, time.Since(dlStart))

	// Upload phase.
	ulStart := time.Now()
	var ulBytes int64
	block := make([]byte, c.cfg.BlockBytes)
	for i := range block {
		block[i] = filler[i%len(filler)]
	}
	for time.Since(ulStart) < c.cfg.UploadDuration {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		if _, err := fmt.Fprintf(conn, "UPLOAD %d 0\n", len(block)); err != nil {
			return res, fmt.Errorf("ookla: upload request: %w", err)
		}
		if _, err := conn.Write(block); err != nil {
			return res, fmt.Errorf("ookla: upload write: %w", err)
		}
		line, err := br.ReadString('\n')
		if err != nil || !strings.HasPrefix(line, "OK") {
			return res, fmt.Errorf("ookla: bad upload ack %q: %v", strings.TrimSpace(line), err)
		}
		ulBytes += int64(len(block))
	}
	res.BytesUp = ulBytes
	res.UploadMbps = speedtest.Mbps(ulBytes, time.Since(ulStart))

	_, _ = io.WriteString(conn, "QUIT\n")
	res.Duration = time.Since(res.Start).Seconds()
	return res, nil
}
