package ookla

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/clasp-measurement/clasp/internal/shaper"
)

func startServer(t *testing.T) *Server {
	t.Helper()
	s, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func quickCfg() Config {
	return Config{
		PingCount:        3,
		DownloadDuration: 300 * time.Millisecond,
		UploadDuration:   300 * time.Millisecond,
		BlockBytes:       256 << 10,
	}
}

func TestFullTestLoopback(t *testing.T) {
	s := startServer(t)
	c := NewClient(quickCfg())
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := c.Run(ctx, s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if res.DownloadMbps <= 0 || res.UploadMbps <= 0 {
		t.Errorf("throughput not measured: %+v", res)
	}
	if res.LatencyMs <= 0 || res.LatencyMs > 100 {
		t.Errorf("loopback latency = %v ms", res.LatencyMs)
	}
	if res.BytesDown < int64(quickCfg().BlockBytes) || res.BytesUp < int64(quickCfg().BlockBytes) {
		t.Errorf("byte counts too small: %+v", res)
	}
	if res.Platform != "ookla" {
		t.Errorf("platform = %q", res.Platform)
	}
}

func TestShapedUploadRespectsCap(t *testing.T) {
	// Shape the client's writes at 80 Mbps — the tc substitute — and
	// check the measured upload honours the cap.
	s := startServer(t)
	cfg := quickCfg()
	cfg.UploadDuration = 800 * time.Millisecond
	c := NewClient(cfg)
	c.Dial = func(ctx context.Context, addr string) (net.Conn, error) {
		raw, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		return shaper.NewConn(raw, shaper.Options{WriteMbps: 80}), nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	res, err := c.Run(ctx, s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if res.UploadMbps > 110 {
		t.Errorf("shaped upload measured %.0f Mbps, cap 80", res.UploadMbps)
	}
}

func TestProtocolConversation(t *testing.T) {
	s := startServer(t)
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	send := func(line string) {
		if _, err := fmt.Fprintf(conn, "%s\n", line); err != nil {
			t.Fatal(err)
		}
	}
	expectPrefix := func(prefix string) string {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("reading reply to %q: %v", prefix, err)
		}
		if !strings.HasPrefix(line, prefix) {
			t.Fatalf("reply %q, want prefix %q", strings.TrimSpace(line), prefix)
		}
		return line
	}
	send("HI")
	expectPrefix("HELLO")
	send("PING 12345")
	expectPrefix("PONG")
	send("DOWNLOAD 1000")
	// Exactly 1000 bytes including trailing newline.
	got := make([]byte, 1000)
	for read := 0; read < 1000; {
		n, err := br.Read(got[read:])
		if err != nil {
			t.Fatal(err)
		}
		read += n
	}
	if !strings.HasPrefix(string(got), "DOWNLOAD ") || got[999] != '\n' {
		t.Errorf("download block malformed: %q...", got[:20])
	}
	send("UPLOAD 10 0")
	conn.Write([]byte("0123456789"))
	expectPrefix("OK 10")
	send("BOGUS")
	expectPrefix("ERROR")
	send("DOWNLOAD notanumber")
	expectPrefix("ERROR")
	send("DOWNLOAD -5")
	expectPrefix("ERROR")
	send("QUIT")
}

func TestDownloadMinimumSize(t *testing.T) {
	s := startServer(t)
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	fmt.Fprintf(conn, "DOWNLOAD 1\n")
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "DOWNLOAD ") {
		t.Errorf("tiny download reply %q", line)
	}
}

func TestClientErrorOnRefusedConnection(t *testing.T) {
	c := NewClient(quickCfg())
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := c.Run(ctx, "127.0.0.1:1"); err == nil {
		t.Error("connection to closed port succeeded")
	}
}

func TestClientContextCancellation(t *testing.T) {
	s := startServer(t)
	cfg := quickCfg()
	cfg.DownloadDuration = 10 * time.Second
	c := NewClient(cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Run(ctx, s.Addr().String())
	if err == nil {
		t.Error("cancelled run succeeded")
	}
	if time.Since(start) > 5*time.Second {
		t.Error("cancellation not honoured promptly")
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	s := startServer(t)
	addr := s.Addr().String()
	s.Close()
	if _, err := net.DialTimeout("tcp", addr, 500*time.Millisecond); err == nil {
		t.Error("closed server still accepting")
	}
}

// TestCloseWhileHandlersActive closes the server while clients are mid
// conversation. Close must wait for the in-flight handlers, must not race
// with them (-race), and must return once the clients hang up.
func TestCloseWhileHandlersActive(t *testing.T) {
	s := startServer(t)
	addr := s.Addr().String()
	const clients = 4
	started := make(chan struct{}, clients)
	done := make(chan struct{})
	for i := 0; i < clients; i++ {
		go func() {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				started <- struct{}{}
				return
			}
			defer conn.Close()
			br := bufio.NewReader(conn)
			fmt.Fprintf(conn, "HI\n")
			br.ReadString('\n')
			started <- struct{}{}
			// Keep the handler busy while Close runs; errors are expected
			// once the server tears the connection down.
			for j := 0; j < 20; j++ {
				if _, err := fmt.Fprintf(conn, "PING %d\n", j); err != nil {
					return
				}
				if _, err := br.ReadString('\n'); err != nil {
					return
				}
			}
			fmt.Fprintf(conn, "QUIT\n")
		}()
	}
	for i := 0; i < clients; i++ {
		<-started
	}
	go func() {
		s.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not return while handlers were active")
	}
	if _, err := net.DialTimeout("tcp", addr, 500*time.Millisecond); err == nil {
		t.Error("server still accepting after Close")
	}
}

func TestServerConcurrentClients(t *testing.T) {
	s := startServer(t)
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			c := NewClient(quickCfg())
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_, err := c.Run(ctx, s.Addr().String())
			errs <- err
		}()
	}
	for i := 0; i < 4; i++ {
		if err := <-errs; err != nil {
			t.Errorf("concurrent client: %v", err)
		}
	}
}

// TestShutdownWaitsForInFlight pins the graceful-drain contract: Shutdown
// stops accepting immediately but lets an in-flight test finish on its own
// before returning nil.
func TestShutdownWaitsForInFlight(t *testing.T) {
	s := startServer(t)
	addr := s.Addr().String()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	fmt.Fprintf(conn, "HI\n")
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()

	// Shutdown must not return while the test is still running.
	select {
	case err := <-done:
		t.Fatalf("Shutdown returned %v while a connection was active", err)
	case <-time.After(100 * time.Millisecond):
	}
	// New connections are refused during the drain.
	if c2, err := net.DialTimeout("tcp", addr, 500*time.Millisecond); err == nil {
		c2.Close()
		t.Error("draining server accepted a new connection")
	}
	// The in-flight conversation still works end to end.
	fmt.Fprintf(conn, "DOWNLOAD 1000\n")
	buf := make([]byte, 1000)
	if _, err := io.ReadFull(br, buf); err != nil {
		t.Fatalf("in-flight download failed during drain: %v", err)
	}
	fmt.Fprintf(conn, "QUIT\n")
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("Shutdown = %v after client finished, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown did not return after the client quit")
	}
}

// TestShutdownDeadlineSeversConnections pins the other half of the
// contract: when the context expires before clients finish, Shutdown severs
// the stragglers, returns the context error, and still waits for handlers
// to exit.
func TestShutdownDeadlineSeversConnections(t *testing.T) {
	s := startServer(t)
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	fmt.Fprintf(conn, "HI\n")
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = s.Shutdown(ctx) // the idle client never quits
	if err != context.DeadlineExceeded {
		t.Errorf("Shutdown = %v, want context.DeadlineExceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("Shutdown did not honour its deadline promptly")
	}
	// The straggler was severed: its next read fails once the buffer drains.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := br.ReadString('\n'); err == nil {
		t.Error("severed connection still readable")
	}
}
