// Package speedtest defines the common vocabulary of CLASP's three speed
// test platforms — result records, server metadata, and the crawler that
// fetches platform server lists — plus the Client interface each protocol
// implementation (ookla, ndt7, xfinity) satisfies.
package speedtest

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"
)

// Result is the outcome of one speed test as the web UI would report it.
type Result struct {
	Platform     string    `json:"platform"`
	Server       string    `json:"server"` // host:port or identifier
	DownloadMbps float64   `json:"download_mbps"`
	UploadMbps   float64   `json:"upload_mbps"`
	LatencyMs    float64   `json:"latency_ms"`
	Start        time.Time `json:"start"`
	Duration     float64   `json:"duration_sec"`
	BytesDown    int64     `json:"bytes_down"`
	BytesUp      int64     `json:"bytes_up"`
}

// Client runs a speed test against one server.
type Client interface {
	// Run executes latency, download and upload phases against the
	// server at addr (host:port) and returns the combined result.
	Run(ctx context.Context, addr string) (Result, error)
	// Platform names the protocol family ("ookla", "mlab", "comcast").
	Platform() string
}

// ServerInfo is the metadata a platform's server directory exposes: what
// CLASP crawls to build its candidate list (§3.1).
type ServerInfo struct {
	ID       int     `json:"id"`
	Platform string  `json:"platform"`
	Host     string  `json:"host"`
	IP       string  `json:"ip"`
	City     string  `json:"city"`
	Country  string  `json:"country"`
	Lat      float64 `json:"lat"`
	Lon      float64 `json:"lon"`
	Sponsor  string  `json:"sponsor"` // network operating the server
	ASN      uint32  `json:"asn"`
}

// Directory serves a platform's server list as JSON, mirroring the
// endpoints the paper crawled (e.g. Ookla's server list API).
type Directory struct {
	servers []ServerInfo
}

// NewDirectory creates a directory over a fixed server list.
func NewDirectory(servers []ServerInfo) *Directory {
	cp := make([]ServerInfo, len(servers))
	copy(cp, servers)
	sort.Slice(cp, func(i, j int) bool { return cp[i].ID < cp[j].ID })
	return &Directory{servers: cp}
}

// Servers returns a copy of the directory contents.
func (d *Directory) Servers() []ServerInfo {
	cp := make([]ServerInfo, len(d.servers))
	copy(cp, d.servers)
	return cp
}

// ServeHTTP implements http.Handler: GET returns the JSON server list,
// optionally filtered by ?country=XX.
func (d *Directory) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	list := d.servers
	if cc := r.URL.Query().Get("country"); cc != "" {
		filtered := make([]ServerInfo, 0, len(list))
		for _, s := range list {
			if s.Country == cc {
				filtered = append(filtered, s)
			}
		}
		list = filtered
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(list); err != nil {
		// Too late for an HTTP error; the connection is what it is.
		return
	}
}

// Crawl fetches a platform server list from a directory URL.
func Crawl(ctx context.Context, client *http.Client, url string) ([]ServerInfo, error) {
	if client == nil {
		client = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, fmt.Errorf("speedtest: building crawl request: %w", err)
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("speedtest: crawling %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("speedtest: crawling %s: status %s", url, resp.Status)
	}
	var servers []ServerInfo
	if err := json.NewDecoder(resp.Body).Decode(&servers); err != nil {
		return nil, fmt.Errorf("speedtest: decoding server list: %w", err)
	}
	return servers, nil
}

// Mbps converts a byte count and elapsed duration to megabits per second.
func Mbps(bytes int64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(bytes) * 8 / 1e6 / elapsed.Seconds()
}
