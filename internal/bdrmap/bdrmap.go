// Package bdrmap infers the interdomain links between the cloud network and
// its neighbors from traceroute data, prefix-to-AS mappings and alias sets,
// following the structure of bdrmap (Luckie et al., IMC 2016): find the
// cloud's border in each traceroute, identify the far-side interface, infer
// its owning AS (directly when the interface is numbered from the neighbor's
// space, via next-hop heuristics when it is numbered from the cloud's own
// space), and merge interfaces into routers using alias resolution.
package bdrmap

import (
	"fmt"
	"net/netip"
	"sort"

	"github.com/clasp-measurement/clasp/internal/alias"
	"github.com/clasp-measurement/clasp/internal/pfx2as"
	"github.com/clasp-measurement/clasp/internal/topology"
	"github.com/clasp-measurement/clasp/internal/traceroute"
)

// ASN aliases the pfx2as AS number type.
type ASN = pfx2as.ASN

// Link is one inferred interdomain link, identified by its far-side
// interface address.
type Link struct {
	FarIP    netip.Addr
	Neighbor ASN // inferred owner of the far side
	// Router groups far IPs resolved to one physical router; -1 when
	// alias resolution found nothing.
	Router int
	// Evidence counts the traceroutes that crossed this link.
	Evidence int
	// ViaNextHop marks links whose owner was inferred from subsequent
	// hops because the far interface is numbered from the cloud's space.
	ViaNextHop bool
}

// Result is a completed border inference.
type Result struct {
	Region string
	Links  []Link
	// Traces is the number of traceroutes consumed.
	Traces int
}

// LinkCount returns the number of inferred links.
func (r *Result) LinkCount() int { return len(r.Links) }

// Neighbors returns the distinct inferred neighbor ASes, sorted.
func (r *Result) Neighbors() []ASN {
	set := make(map[ASN]bool)
	for _, l := range r.Links {
		set[l.Neighbor] = true
	}
	out := make([]ASN, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Mapper runs border inference for one cloud region.
type Mapper struct {
	cloudASN ASN
	table    *pfx2as.Table
	resolver *alias.Prober
}

// New creates a mapper. resolver may be nil to skip alias grouping.
func New(cloudASN ASN, table *pfx2as.Table, resolver *alias.Prober) *Mapper {
	return &Mapper{cloudASN: cloudASN, table: table, resolver: resolver}
}

// FromTopology builds a mapper wired to a generated topology.
func FromTopology(t *topology.Topology, resolver *alias.Prober) *Mapper {
	return New(t.Cloud.ASN, t.PrefixTable(), resolver)
}

// borderObs is one observation of a candidate border crossing.
type borderObs struct {
	farIP   netip.Addr
	owner   ASN
	viaNext bool
}

// Infer consumes traceroutes from VMs in one region and returns the
// inferred interdomain links.
func (m *Mapper) Infer(region string, traces []traceroute.Result) (*Result, error) {
	if m.table == nil {
		return nil, fmt.Errorf("bdrmap: nil prefix table")
	}
	type agg struct {
		owners   map[ASN]int
		viaNext  int
		evidence int
	}
	byFar := make(map[netip.Addr]*agg)

	for ti := range traces {
		obs, ok := m.findBorder(&traces[ti])
		if !ok {
			continue
		}
		a := byFar[obs.farIP]
		if a == nil {
			a = &agg{owners: make(map[ASN]int)}
			byFar[obs.farIP] = a
		}
		a.owners[obs.owner]++
		a.evidence++
		if obs.viaNext {
			a.viaNext++
		}
	}

	// Build links with majority-vote owners.
	var links []Link
	for far, a := range byFar {
		var best ASN
		bestN := -1
		for owner, n := range a.owners {
			if n > bestN || (n == bestN && owner < best) {
				best, bestN = owner, n
			}
		}
		if best == 0 || best == m.cloudASN {
			continue // could not attribute to a neighbor
		}
		links = append(links, Link{
			FarIP:      far,
			Neighbor:   best,
			Router:     -1,
			Evidence:   a.evidence,
			ViaNextHop: a.viaNext > a.evidence/2,
		})
	}

	// Alias-resolve far interfaces per neighbor to group them into
	// routers (far IPs of one router belong to the same neighbor).
	if m.resolver != nil {
		byNeighbor := make(map[ASN][]netip.Addr)
		idx := make(map[netip.Addr]*Link)
		for i := range links {
			byNeighbor[links[i].Neighbor] = append(byNeighbor[links[i].Neighbor], links[i].FarIP)
			idx[links[i].FarIP] = &links[i]
		}
		routerID := 0
		var neighbors []ASN
		for nb := range byNeighbor {
			neighbors = append(neighbors, nb)
		}
		sort.Slice(neighbors, func(i, j int) bool { return neighbors[i] < neighbors[j] })
		for _, nb := range neighbors {
			for _, group := range m.resolver.Resolve(byNeighbor[nb]) {
				for _, ip := range group {
					if l := idx[ip]; l != nil {
						l.Router = routerID
					}
				}
				routerID++
			}
		}
	}

	sort.Slice(links, func(i, j int) bool { return links[i].FarIP.Compare(links[j].FarIP) < 0 })
	return &Result{Region: region, Links: links, Traces: len(traces)}, nil
}

// findBorder locates the cloud border crossing in one traceroute: the last
// responding hop owned by the cloud followed by the first responding hop
// beyond it.
func (m *Mapper) findBorder(tr *traceroute.Result) (borderObs, bool) {
	hops := tr.Hops
	lastCloud := -1
	for i, h := range hops {
		if !h.Responded {
			continue
		}
		if m.isCloudAddr(h.IP) {
			lastCloud = i
		}
	}
	if lastCloud < 0 {
		return borderObs{}, false
	}
	// Far side: first responding hop after the cloud border whose address
	// is NOT a later cloud hop (it may still be numbered from cloud space).
	farIdx := -1
	for i := lastCloud + 1; i < len(hops); i++ {
		if hops[i].Responded {
			farIdx = i
			break
		}
	}
	if farIdx < 0 {
		return borderObs{}, false
	}
	far := hops[farIdx].IP
	owner := m.table.LookupASN(far)
	viaNext := false
	if owner == 0 || owner == m.cloudASN {
		// The far interface is numbered from the cloud's own space (or
		// unrouted link space): attribute it to the first subsequent hop
		// that resolves outside the cloud — bdrmap's next-hop heuristic.
		viaNext = true
		owner = 0
		for i := farIdx + 1; i < len(hops); i++ {
			if !hops[i].Responded {
				continue
			}
			if o := m.table.LookupASN(hops[i].IP); o != 0 && o != m.cloudASN {
				owner = o
				break
			}
		}
		if owner == 0 {
			return borderObs{}, false
		}
	}
	return borderObs{farIP: far, owner: owner, viaNext: viaNext}, true
}

// isCloudAddr reports whether an address resolves to the cloud's announced
// space. Unannounced interconnect /30s deliberately do not count: they are
// border candidates, not interior hops.
func (m *Mapper) isCloudAddr(ip netip.Addr) bool {
	return m.table.LookupASN(ip) == m.cloudASN
}
