package bdrmap

import (
	"testing"

	"github.com/clasp-measurement/clasp/internal/alias"
	"github.com/clasp-measurement/clasp/internal/bgp"
	"github.com/clasp-measurement/clasp/internal/netsim"
	"github.com/clasp-measurement/clasp/internal/topology"
	"github.com/clasp-measurement/clasp/internal/traceroute"
)

type fixture struct {
	topo   *topology.Topology
	sim    *netsim.Sim
	prober *traceroute.Prober
	mapper *Mapper
	region string
}

func setup(t *testing.T) *fixture {
	t.Helper()
	topo, err := topology.New(topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sim := netsim.New(topo, nil, netsim.Config{Seed: 21})
	region := "us-east1"
	return &fixture{
		topo:   topo,
		sim:    sim,
		prober: traceroute.NewProber(sim, region, 21),
		mapper: FromTopology(topo, alias.NewProber(topo, 21)),
		region: region,
	}
}

// pilotTraces traces to every visible link's engineered probe target.
func (f *fixture) pilotTraces(t *testing.T, limit int) []traceroute.Result {
	t.Helper()
	var traces []traceroute.Result
	links := f.topo.VisibleLinks(f.region)
	if limit > 0 && len(links) > limit {
		links = links[:limit]
	}
	for _, l := range links {
		addr, ok := f.topo.ProbeTarget(l.ID)
		if !ok {
			continue
		}
		nb := f.topo.AS(l.Neighbor)
		res, err := f.prober.Trace(traceroute.Destination{
			IP: addr, ASN: l.Neighbor, City: nb.Cities[0], LinkID: l.ID, Tier: bgp.Premium,
		}, traceroute.Options{Mode: traceroute.Paris, FlowID: uint64(l.ID)})
		if err != nil {
			t.Fatalf("trace to link %d: %v", l.ID, err)
		}
		traces = append(traces, res)
	}
	return traces
}

func TestInferRecoversLinks(t *testing.T) {
	f := setup(t)
	traces := f.pilotTraces(t, 0)
	res, err := f.mapper.Infer(f.region, traces)
	if err != nil {
		t.Fatal(err)
	}
	visible := len(f.topo.VisibleLinks(f.region))
	// Response loss hides a few links per run; the bulk must be found.
	if res.LinkCount() < visible*85/100 {
		t.Errorf("inferred %d links of %d visible", res.LinkCount(), visible)
	}
	if res.Traces != len(traces) {
		t.Errorf("Traces = %d, want %d", res.Traces, len(traces))
	}
}

func TestInferredOwnersCorrect(t *testing.T) {
	f := setup(t)
	traces := f.pilotTraces(t, 0)
	res, err := f.mapper.Infer(f.region, traces)
	if err != nil {
		t.Fatal(err)
	}
	// Index ground truth by far IP.
	truth := make(map[string]ASN)
	for _, l := range f.topo.Links() {
		truth[l.FarIP.String()] = l.Neighbor
	}
	wrong, viaNext := 0, 0
	for _, l := range res.Links {
		want, ok := truth[l.FarIP.String()]
		if !ok {
			t.Errorf("inferred link at %v does not exist", l.FarIP)
			continue
		}
		if l.Neighbor != want {
			wrong++
		}
		if l.ViaNextHop {
			viaNext++
		}
		if l.Evidence < 1 {
			t.Errorf("link %v has no evidence", l.FarIP)
		}
	}
	if frac := float64(wrong) / float64(len(res.Links)); frac > 0.02 {
		t.Errorf("%.1f%% of inferred owners wrong", frac*100)
	}
	// The cloud-space-numbered fraction must be inferred via next hop.
	if viaNext == 0 {
		t.Error("no links inferred via next-hop heuristic; the hard case never exercised")
	}
}

func TestNeighborsList(t *testing.T) {
	f := setup(t)
	traces := f.pilotTraces(t, 120)
	res, err := f.mapper.Infer(f.region, traces)
	if err != nil {
		t.Fatal(err)
	}
	nbs := res.Neighbors()
	if len(nbs) == 0 {
		t.Fatal("no neighbors inferred")
	}
	for i := 1; i < len(nbs); i++ {
		if nbs[i] <= nbs[i-1] {
			t.Error("Neighbors not sorted/unique")
		}
	}
	for _, nb := range nbs {
		if f.topo.AS(nb) == nil {
			t.Errorf("inferred unknown neighbor AS%d", nb)
		}
	}
}

func TestAliasGroupingPopulatesRouters(t *testing.T) {
	f := setup(t)
	traces := f.pilotTraces(t, 0)
	res, err := f.mapper.Infer(f.region, traces)
	if err != nil {
		t.Fatal(err)
	}
	withRouter := 0
	routers := make(map[int][]Link)
	for _, l := range res.Links {
		if l.Router >= 0 {
			withRouter++
			routers[l.Router] = append(routers[l.Router], l)
		}
	}
	if withRouter < len(res.Links)/2 {
		t.Errorf("only %d/%d links grouped into routers", withRouter, len(res.Links))
	}
	// All links of one inferred router must share a neighbor.
	multi := 0
	for _, ls := range routers {
		if len(ls) > 1 {
			multi++
			for _, l := range ls[1:] {
				if l.Neighbor != ls[0].Neighbor {
					t.Errorf("router mixes neighbors %d and %d", l.Neighbor, ls[0].Neighbor)
				}
			}
		}
	}
	if multi == 0 {
		t.Error("no multi-interface routers recovered")
	}
}

func TestInferFromServerTraces(t *testing.T) {
	f := setup(t)
	// Trace to US servers (the Table 1 second column: links traversed by
	// all US test servers).
	var traces []traceroute.Result
	for _, s := range f.topo.ServersInCountry("US") {
		res, err := f.prober.Trace(traceroute.Destination{
			IP: s.IP, ASN: s.ASN, City: s.City, LinkID: -1, Tier: bgp.Premium,
		}, traceroute.Options{Mode: traceroute.Paris, FlowID: uint64(s.ID)})
		if err != nil {
			t.Fatal(err)
		}
		traces = append(traces, res)
	}
	res, err := f.mapper.Infer(f.region, traces)
	if err != nil {
		t.Fatal(err)
	}
	if res.LinkCount() == 0 {
		t.Fatal("no links from server traces")
	}
	// Server-bound traffic concentrates on far fewer links than the pilot
	// found (75-92 % of servers share interconnections, §4).
	if res.LinkCount() >= len(traces) {
		t.Errorf("links (%d) not shared across servers (%d)", res.LinkCount(), len(traces))
	}
}

func TestInferEmptyAndNilSafety(t *testing.T) {
	f := setup(t)
	res, err := f.mapper.Infer(f.region, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.LinkCount() != 0 {
		t.Error("links from no traces")
	}
	m := New(15169, nil, nil)
	if _, err := m.Infer("r", nil); err == nil {
		t.Error("nil table: want error")
	}
}

func TestInferWithoutResolver(t *testing.T) {
	f := setup(t)
	m := FromTopology(f.topo, nil)
	res, err := m.Infer(f.region, f.pilotTraces(t, 50))
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range res.Links {
		if l.Router != -1 {
			t.Error("router set without a resolver")
		}
	}
}
