package checkpoint

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestManifestRoundTrip pins the command.json contract: every identity
// field a resume needs to rebuild the engine and the full campaign set
// survive a write/load cycle unchanged.
func TestManifestRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ck")
	man := Manifest{
		Command:         "report",
		Artifact:        "all",
		Days:            2,
		MinSamples:      6,
		Seed:            3,
		Scale:           0.1,
		FaultProfile:    "flaky-vm",
		CaptureEvery:    4,
		TracerouteEvery: 8,
		Every:           1,
		VMHours:         0,
		Campaigns: []Campaign{
			{Kind: "topology", Region: "us-west1", Days: 2, Seed: 3, Scale: 0.1},
			{Kind: "differential", Region: "europe-west1", Days: 2, MinSamples: 6, Seed: 3, Scale: 0.1},
		},
	}
	if err := WriteManifest(dir, man); err != nil {
		t.Fatalf("WriteManifest: %v", err)
	}
	got, err := LoadManifest(dir)
	if err != nil {
		t.Fatalf("LoadManifest: %v", err)
	}
	if got == nil {
		t.Fatal("LoadManifest returned nil for a written manifest")
	}
	if got.Version != ManifestVersion {
		t.Errorf("Version = %d, want %d", got.Version, ManifestVersion)
	}
	want := man
	want.Version = ManifestVersion
	gotJSON, _ := json.Marshal(got)
	wantJSON, _ := json.Marshal(&want)
	if string(gotJSON) != string(wantJSON) {
		t.Errorf("manifest drifted through the round trip:\n got %s\nwant %s", gotJSON, wantJSON)
	}
}

// TestLoadManifestAbsent pins the fallback contract: a directory without a
// command.json loads as (nil, nil), so `clasp resume` can tell a
// single-campaign checkpoint from a command set without extra probing.
func TestLoadManifestAbsent(t *testing.T) {
	m, err := LoadManifest(t.TempDir())
	if err != nil {
		t.Fatalf("LoadManifest on empty dir: %v", err)
	}
	if m != nil {
		t.Fatalf("LoadManifest on empty dir = %+v, want nil", m)
	}
}

// TestLoadManifestVersionMismatch: a future-format manifest must refuse to
// load rather than resume with misread identity.
func TestLoadManifestVersionMismatch(t *testing.T) {
	dir := t.TempDir()
	raw := []byte(`{"version": 99, "command": "report", "campaigns": []}`)
	if err := os.WriteFile(filepath.Join(dir, ManifestFile), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadManifest(dir)
	if err == nil || !strings.Contains(err.Error(), "version 99") {
		t.Fatalf("LoadManifest on version 99 = %v, want a version error", err)
	}
}

// TestLoadCampaignAbsent: a campaign of the set that never checkpointed
// (killed before its first commit) loads as (nil, nil) — the resume path
// then runs it from scratch.
func TestLoadCampaignAbsent(t *testing.T) {
	camp := Campaign{Kind: "topology", Region: "us-west1", Days: 2, Seed: 3}
	ck, err := LoadCampaign(t.TempDir(), camp)
	if err != nil {
		t.Fatalf("LoadCampaign with no subdirectory: %v", err)
	}
	if ck != nil {
		t.Fatal("LoadCampaign with no subdirectory returned a checkpoint")
	}
}

// TestCampaignDirLayout pins the per-campaign subdirectory naming the
// resume smoke and the skip messages both key on.
func TestCampaignDirLayout(t *testing.T) {
	got := CampaignDir(Campaign{Kind: "differential", Region: "europe-west1"})
	if got != "europe-west1-differential" {
		t.Fatalf("CampaignDir = %q, want %q", got, "europe-west1-differential")
	}
}
