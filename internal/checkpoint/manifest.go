package checkpoint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// ManifestFile is the command-level manifest a multi-campaign command
// (report all, costs) writes at the root of its -checkpoint-dir. Each
// campaign of the command still checkpoints independently into its own
// <region>-<kind> subdirectory; the manifest records the command identity
// and the full planned campaign set, so `clasp resume` can rebuild the
// engine, skip the campaigns whose checkpoints are already at their final
// watermark, resume the partial ones, and run the never-started ones — in
// other words, re-enter the command's scheduler mid-set.
const ManifestFile = "command.json"

// ManifestVersion is the manifest format version.
const ManifestVersion = 1

// Manifest is the command.json payload.
type Manifest struct {
	Version int `json:"version"`
	// Command is the CLI command the checkpoint set belongs to:
	// "report" or "costs".
	Command string `json:"command"`
	// Artifact is the report target ("all", "fig2", ...); empty for costs.
	Artifact string `json:"artifact,omitempty"`
	// Days / MinSamples are the command-level campaign shape flags.
	Days       int `json:"days"`
	MinSamples int `json:"minSamples,omitempty"`
	// Engine identity, mirroring Campaign: everything needed to rebuild
	// the engine so the remaining campaigns reproduce the original run.
	Seed            int64   `json:"seed"`
	Scale           float64 `json:"scale"`
	FaultProfile    string  `json:"faultProfile,omitempty"`
	CaptureEvery    int     `json:"captureEvery,omitempty"`
	TracerouteEvery int     `json:"tracerouteEvery,omitempty"`
	// Every / VMHours are the checkpoint cadences the campaigns ran with.
	Every   int `json:"checkpointEvery,omitempty"`
	VMHours int `json:"checkpointVmHours,omitempty"`
	// Campaigns is the full planned campaign set in plan order. Resume
	// walks it in order, so a fresh run and a resumed run schedule the
	// remaining work identically.
	Campaigns []Campaign `json:"campaigns"`
}

// CampaignDir returns the subdirectory (relative to the manifest's
// directory) a campaign of the set checkpoints into — the same
// <region>-<kind> layout single-campaign runs use.
func CampaignDir(camp Campaign) string {
	return camp.Region + "-" + camp.Kind
}

// WriteManifest commits the manifest into dir by atomic rename, creating
// the directory if needed. It is written once, before any campaign starts,
// so a kill at any later point leaves a loadable manifest behind.
func WriteManifest(dir string, m Manifest) error {
	m.Version = ManifestVersion
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return atomicWrite(filepath.Join(dir, ManifestFile), func(f *os.File) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		return enc.Encode(m)
	}, nil)
}

// LoadManifest reads the command manifest under dir. It returns
// (nil, nil) when dir exists but holds no manifest — the caller then falls
// back to the single-campaign resume path.
func LoadManifest(dir string) (*Manifest, error) {
	raw, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("checkpoint: parsing %s: %w", filepath.Join(dir, ManifestFile), err)
	}
	if m.Version != ManifestVersion {
		return nil, fmt.Errorf("checkpoint: %s has manifest version %d, want %d", filepath.Join(dir, ManifestFile), m.Version, ManifestVersion)
	}
	return &m, nil
}

// LoadCampaign loads one campaign's checkpoint from its subdirectory of a
// command checkpoint set. It returns (nil, nil) when the campaign never
// checkpointed (killed before its first commit) — the resume path then
// runs it from scratch.
func LoadCampaign(dir string, camp Campaign) (*Checkpoint, error) {
	sub := filepath.Join(dir, CampaignDir(camp))
	if _, err := os.Stat(filepath.Join(sub, MetaFile)); os.IsNotExist(err) {
		return nil, nil
	}
	return Load(sub)
}
