package checkpoint

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/clasp-measurement/clasp/internal/analysis"
	"github.com/clasp-measurement/clasp/internal/bgp"
	"github.com/clasp-measurement/clasp/internal/faults"
	"github.com/clasp-measurement/clasp/internal/netsim"
	"github.com/clasp-measurement/clasp/internal/orchestrator"
)

// randomProgress builds an arbitrary orchestrator snapshot from rng. All
// floats are finite — encoding/json round-trips finite float64 exactly —
// and optional fields flip between present and absent so both JSON shapes
// are exercised.
func randomProgress(rng *rand.Rand) orchestrator.Progress {
	p := orchestrator.Progress{
		NextHour:  rng.Intn(720),
		Downloads: rng.Intn(100000),
		Report: orchestrator.Report{
			Region:            fmt.Sprintf("region-%d", rng.Intn(9)),
			VMs:               rng.Intn(40),
			Tests:             rng.Intn(1 << 20),
			Hours:             rng.Intn(720),
			Traceroutes:       rng.Intn(5000),
			Captures:          rng.Intn(5000),
			MaxVMCPUUtil:      rng.Float64(),
			Failed:            rng.Intn(300),
			Retried:           rng.Intn(300),
			Dropped:           rng.Intn(300),
			Preemptions:       rng.Intn(50),
			VMCreateRetries:   rng.Intn(50),
			BreakerOpenRounds: rng.Intn(50),
		},
		Breaker: faults.BreakerSnapshot{
			State:      faults.BreakerState(rng.Intn(3)),
			OpenRounds: rng.Intn(10),
		},
	}
	if rng.Intn(2) == 0 {
		p.VMCreateAttempts = map[string]int{}
		for i, n := 0, rng.Intn(4)+1; i < n; i++ {
			p.VMCreateAttempts[fmt.Sprintf("vm-%d", rng.Intn(32))] = rng.Intn(5) + 1
		}
	}
	if rng.Intn(2) == 0 {
		for i, n := 0, rng.Intn(3)+1; i < n; i++ {
			p.DeadVMs = append(p.DeadVMs, rng.Intn(32))
		}
	}
	return p
}

func randomCampaign(rng *rand.Rand) Campaign {
	kinds := []string{"topology", "differential"}
	return Campaign{
		Kind:            kinds[rng.Intn(2)],
		Region:          fmt.Sprintf("region-%d", rng.Intn(9)),
		Days:            rng.Intn(30) + 1,
		Seed:            rng.Int63(),
		Scale:           rng.Float64(),
		FaultProfile:    []string{"", "none", "flaky-vm", "storm"}[rng.Intn(4)],
		CaptureEvery:    rng.Intn(500),
		TracerouteEvery: rng.Intn(24),
		MinSamples:      rng.Intn(100),
		Every:           rng.Intn(5),
		VMHours:         rng.Intn(200),
	}
}

// testRecords builds n campaign-shaped measurements deterministically.
func testRecords(n int) []analysis.Measurement {
	rng := rand.New(rand.NewSource(7))
	base := time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)
	regions := []string{"us-west1", "us-east1", "europe-west1"}
	ms := make([]analysis.Measurement, n)
	for i := range ms {
		ms[i] = analysis.Measurement{
			ServerID: i % 40,
			Region:   regions[(i/40)%len(regions)],
			Tier:     bgp.Tier(i % 2),
			Dir:      netsim.Direction((i / 2) % 2),
			Time:     base.Add(time.Duration(i/160) * time.Hour),
			Mbps:     rng.Float64() * 900,
			RTTms:    rng.Float64() * 80,
			Loss:     3e-7,
		}
	}
	return ms
}

func newTestLog(t *testing.T, ms []analysis.Measurement) *analysis.RecordLog {
	t.Helper()
	l := analysis.NewRecordLog()
	for _, m := range ms {
		l.Append(m)
	}
	return l
}

// TestCheckpointRoundTripProperty is the encode/decode property test: for
// many random (Campaign, Progress, record prefix) triples, Commit → Load
// reproduces the metadata bit-exactly (reflect.DeepEqual over structs that
// include floats, maps and nested state) and Replay yields exactly the
// records the snapshot covers, in order.
func TestCheckpointRoundTripProperty(t *testing.T) {
	ms := testRecords(600)
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		camp := randomCampaign(rng)
		prog := randomProgress(rng)

		n := rng.Intn(len(ms) + 1)
		log := newTestLog(t, ms[:n])
		dir := t.TempDir()
		w, err := NewWriter(dir, camp, log)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Commit(prog); err != nil {
			t.Fatal(err)
		}

		ck, err := Load(dir)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if ck.Meta.Version != Version {
			t.Fatalf("seed %d: version %d", seed, ck.Meta.Version)
		}
		if !reflect.DeepEqual(ck.Meta.Campaign, camp) {
			t.Fatalf("seed %d: campaign drifted:\n in: %+v\nout: %+v", seed, camp, ck.Meta.Campaign)
		}
		if !reflect.DeepEqual(ck.Meta.Progress, prog) {
			t.Fatalf("seed %d: progress drifted:\n in: %+v\nout: %+v", seed, prog, ck.Meta.Progress)
		}
		if ck.NumRecords() != n {
			t.Fatalf("seed %d: NumRecords = %d, want %d", seed, ck.NumRecords(), n)
		}
		var got []analysis.Measurement
		if err := ck.Replay(func(m analysis.Measurement) { got = append(got, m) }); err != nil {
			t.Fatal(err)
		}
		if len(got) != n {
			t.Fatalf("seed %d: replayed %d records, want %d", seed, len(got), n)
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], ms[i]) {
				t.Fatalf("seed %d: record %d drifted", seed, i)
			}
		}
	}
}

// TestCheckpointSidecarAhead pins the partial-commit contract: when the
// record sidecar runs ahead of the metadata (a kill between the two Commit
// renames), Load succeeds with the old snapshot and Replay truncates the
// extra records — the partial-round dedupe.
func TestCheckpointSidecarAhead(t *testing.T) {
	ms := testRecords(300)
	log := newTestLog(t, ms[:200])
	dir := t.TempDir()
	w, err := NewWriter(dir, Campaign{Kind: "topology", Region: "us-west1", Days: 1, Seed: 3}, log)
	if err != nil {
		t.Fatal(err)
	}
	prog := orchestrator.Progress{NextHour: 5}
	if err := w.Commit(prog); err != nil {
		t.Fatal(err)
	}
	// The next round emits 100 more records; the process dies after the
	// sidecar rename but before the metadata rename.
	for _, m := range ms[200:] {
		log.Append(m)
	}
	if err := w.commitRecords(5); err != nil {
		t.Fatal(err)
	}

	ck, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Meta.Progress.NextHour != 5 {
		t.Fatalf("NextHour = %d, want the old snapshot's 5", ck.Meta.Progress.NextHour)
	}
	if ck.NumRecords() != 200 {
		t.Fatalf("NumRecords = %d, want 200", ck.NumRecords())
	}
	var got []analysis.Measurement
	if err := ck.Replay(func(m analysis.Measurement) { got = append(got, m) }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 200 {
		t.Fatalf("replayed %d records, want 200 (truncated)", len(got))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], ms[i]) {
			t.Fatalf("record %d drifted", i)
		}
	}

	// The reverse — a sidecar shorter than the metadata expects — means
	// the checkpoint directory was tampered with or the rename ordering
	// violated; Load must refuse.
	short := newTestLog(t, ms[:50])
	w2, err := NewWriter(dir, Campaign{}, short)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.commitRecords(0); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Fatal("sidecar behind metadata should not load")
	}
}

// TestCheckpointOverwrite pins that each Commit fully supersedes the last
// and leaves no temp files behind.
func TestCheckpointOverwrite(t *testing.T) {
	ms := testRecords(120)
	log := newTestLog(t, ms[:40])
	dir := t.TempDir()
	w, err := NewWriter(dir, Campaign{Kind: "topology"}, log)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range []int{40, 80, 120} {
		for _, m := range ms[log.Len():n] {
			log.Append(m)
		}
		if err := w.Commit(orchestrator.Progress{NextHour: i + 1}); err != nil {
			t.Fatal(err)
		}
		ck, err := Load(dir)
		if err != nil {
			t.Fatal(err)
		}
		if ck.NumRecords() != n || ck.Meta.Progress.NextHour != i+1 {
			t.Fatalf("commit %d: NumRecords=%d NextHour=%d, want %d/%d", i, ck.NumRecords(), ck.Meta.Progress.NextHour, n, i+1)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("checkpoint dir holds %d entries, want exactly {%s, %s}: %v", len(entries), MetaFile, RecordsFile, entries)
	}
}

// TestLoadPathForms pins every accepted argument shape of Load/findMeta:
// the metadata file itself, the checkpoint directory, and a parent with
// exactly one checkpointed subdirectory — plus the error cases (none, or
// several and ambiguous).
func TestLoadPathForms(t *testing.T) {
	commit := func(t *testing.T, dir string) {
		t.Helper()
		w, err := NewWriter(dir, Campaign{Kind: "topology", Region: "us-west1"}, newTestLog(t, testRecords(10)))
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Commit(orchestrator.Progress{NextHour: 1}); err != nil {
			t.Fatal(err)
		}
	}

	parent := t.TempDir()
	sub := filepath.Join(parent, "us-west1-topology")
	commit(t, sub)

	for _, path := range []string{
		filepath.Join(sub, MetaFile),
		sub,
		parent,
	} {
		ck, err := Load(path)
		if err != nil {
			t.Fatalf("Load(%s): %v", path, err)
		}
		if ck.Dir != sub || ck.NumRecords() != 10 {
			t.Fatalf("Load(%s): Dir=%s NumRecords=%d", path, ck.Dir, ck.NumRecords())
		}
	}

	if _, err := Load(t.TempDir()); err == nil || !strings.Contains(err.Error(), "no "+MetaFile) {
		t.Fatalf("empty parent: got %v", err)
	}
	if _, err := Load(filepath.Join(parent, "absent")); err == nil {
		t.Fatal("missing path should fail")
	}

	commit(t, filepath.Join(parent, "us-east1-topology"))
	if _, err := Load(parent); err == nil || !strings.Contains(err.Error(), "pass one directly") {
		t.Fatalf("ambiguous parent: got %v", err)
	}
}

// TestWriterRefusals pins the writer's error paths: a nil record log, an
// uncreatable directory, and a commit into a directory that has been
// yanked out from under the writer (atomicWrite's temp-file failure).
func TestWriterRefusals(t *testing.T) {
	if _, err := NewWriter(t.TempDir(), Campaign{}, nil); err == nil {
		t.Fatal("nil record log should be refused")
	}

	blocked := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(blocked, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewWriter(filepath.Join(blocked, "sub"), Campaign{}, newTestLog(t, nil)); err == nil {
		t.Fatal("uncreatable directory should be refused")
	}

	dir := filepath.Join(t.TempDir(), "ck")
	w, err := NewWriter(dir, Campaign{}, newTestLog(t, testRecords(5)))
	if err != nil {
		t.Fatal(err)
	}
	if w.Dir() != dir {
		t.Fatalf("Dir() = %s, want %s", w.Dir(), dir)
	}
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(orchestrator.Progress{NextHour: 1}); err == nil {
		t.Fatal("commit into a removed directory should fail")
	}
}

// TestReplayTruncatedStream pins Replay's own refusal: metadata demanding
// more records than the loaded sidecar stream can deliver. (Load catches
// this up front; the check in Replay guards the invariant independently.)
func TestReplayTruncatedStream(t *testing.T) {
	ck := &Checkpoint{
		Meta: Meta{Version: Version, NumRecords: 10},
		log:  newTestLog(t, testRecords(5)),
	}
	err := ck.Replay(func(analysis.Measurement) {})
	if err == nil || !strings.Contains(err.Error(), "ended at 5 of 10") {
		t.Fatalf("got %v", err)
	}
}

// TestLoadRejectsBadCheckpoints pins the refusal paths: wrong format
// version, unparsable metadata, and a missing records sidecar.
func TestLoadRejectsBadCheckpoints(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir, Campaign{Kind: "topology"}, newTestLog(t, testRecords(10)))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(orchestrator.Progress{NextHour: 1}); err != nil {
		t.Fatal(err)
	}

	metaPath := filepath.Join(dir, MetaFile)
	good, err := os.ReadFile(metaPath)
	if err != nil {
		t.Fatal(err)
	}

	bad := strings.Replace(string(good), `"version": 1`, `"version": 99`, 1)
	if bad == string(good) {
		t.Fatal("test assumption broken: version field not found in metadata")
	}
	if err := os.WriteFile(metaPath, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil || !strings.Contains(err.Error(), "version 99") {
		t.Fatalf("future version: got %v", err)
	}

	if err := os.WriteFile(metaPath, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Fatal("garbage metadata should not load")
	}

	if err := os.WriteFile(metaPath, good, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, RecordsFile)); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Fatal("missing records sidecar should not load")
	}
}
