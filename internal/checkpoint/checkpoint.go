// Package checkpoint persists a running campaign's progress so a killed
// process can resume and finish with byte-identical output. A checkpoint
// is a directory holding two files, each committed by atomic rename:
//
//	records.clog    the record stream emitted so far, in the RecordLog
//	                columnar format (analysis.RecordLog.WriteTo)
//	checkpoint.json the metadata: campaign identity (enough to rebuild
//	                the engine), the orchestrator Progress snapshot, and
//	                NumRecords — how many records of the sidecar the
//	                snapshot covers
//
// Commit writes the records sidecar first and the metadata second. A kill
// between the two renames therefore leaves new records under old metadata,
// never the reverse: Meta.NumRecords is always ≤ the sidecar's record
// count, and replay simply truncates to NumRecords — that truncation is
// the partial-round dedupe. A kill before either rename (the block-flush
// kill point) leaves the previous checkpoint fully intact.
//
// Everything beyond the checkpoint is re-derived on resume, because the
// engine is deterministic: per-hour test orders, fault decisions and
// measurement results are pure functions of the seed and task coordinates
// (see orchestrator.Progress), so replaying the checkpointed records and
// re-executing from the watermark reproduces the uninterrupted run
// bit-exactly at any parallelism.
package checkpoint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"github.com/clasp-measurement/clasp/internal/analysis"
	"github.com/clasp-measurement/clasp/internal/killpoint"
	"github.com/clasp-measurement/clasp/internal/orchestrator"
)

// File names inside a checkpoint directory.
const (
	MetaFile    = "checkpoint.json"
	RecordsFile = "records.clog"
)

// Version is the checkpoint format version; Load rejects anything else.
const Version = 1

// Campaign identifies the run a checkpoint belongs to: everything `clasp
// resume` needs to rebuild the engine and re-run the (deterministic)
// server selection. Parallelism and memory budget are deliberately absent
// — both may change across a resume without changing the output.
type Campaign struct {
	// Kind is the selection method: "topology" or "differential".
	Kind   string `json:"kind"`
	Region string `json:"region"`
	Days   int    `json:"days"`
	Seed   int64  `json:"seed"`
	// Scale is the topology scale the engine was built with.
	Scale float64 `json:"scale"`
	// FaultProfile is the canned fault-injection profile name.
	FaultProfile    string `json:"faultProfile,omitempty"`
	CaptureEvery    int    `json:"captureEvery,omitempty"`
	TracerouteEvery int    `json:"tracerouteEvery,omitempty"`
	// MinSamples is the differential-scan threshold (differential only).
	MinSamples int `json:"minSamples,omitempty"`
	// Every / VMHours are the checkpoint cadences, so a resumed run keeps
	// checkpointing on the same schedule without re-specifying flags.
	Every   int `json:"checkpointEvery,omitempty"`
	VMHours int `json:"checkpointVmHours,omitempty"`
}

// Meta is the checkpoint.json payload.
type Meta struct {
	Version  int      `json:"version"`
	Campaign Campaign `json:"campaign"`
	// NumRecords is how many records of the sidecar this snapshot covers.
	// The sidecar may hold more (a kill between the two Commit renames);
	// replay truncates to this count.
	NumRecords int `json:"numRecords"`
	// Progress is the orchestrator's cross-round state at the watermark.
	Progress orchestrator.Progress `json:"progress"`
}

// Writer commits checkpoints for one campaign into one directory. It is
// driven from the campaign goroutine (orchestrator.Config.OnCheckpoint)
// and is not safe for concurrent use.
type Writer struct {
	dir  string
	camp Campaign
	log  *analysis.RecordLog
}

// NewWriter prepares a checkpoint directory for a campaign whose record
// stream accumulates in log (the streaming campaign's own RecordLog, or a
// shadow log the caller tees records into). The directory is created if
// needed; an existing checkpoint in it is overwritten at the first Commit.
func NewWriter(dir string, camp Campaign, log *analysis.RecordLog) (*Writer, error) {
	if log == nil {
		return nil, fmt.Errorf("checkpoint: nil record log")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return &Writer{dir: dir, camp: camp, log: log}, nil
}

// Dir returns the checkpoint directory.
func (w *Writer) Dir() string { return w.dir }

// Commit durably records a progress snapshot: records sidecar first, then
// metadata, each written to a temp file in the same directory and renamed
// over the previous version. The record log must already contain every
// record of the completed rounds p covers (the orchestrator emits before
// it checkpoints), so NumRecords is simply the log's current length.
func (w *Writer) Commit(p orchestrator.Progress) error {
	if err := w.commitRecords(p.NextHour - 1); err != nil {
		return err
	}
	meta := Meta{
		Version:    Version,
		Campaign:   w.camp,
		NumRecords: w.log.Len(),
		Progress:   p,
	}
	return atomicWrite(filepath.Join(w.dir, MetaFile), func(f *os.File) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		return enc.Encode(meta)
	}, nil)
}

func (w *Writer) commitRecords(hour int) error {
	return atomicWrite(filepath.Join(w.dir, RecordsFile), func(f *os.File) error {
		_, err := w.log.WriteTo(f)
		return err
	}, func() {
		// Crash-test point: the new sidecar is fully written but not yet
		// renamed — a kill here must leave the previous checkpoint intact.
		killpoint.Maybe("block-flush", hour)
	})
}

// atomicWrite writes via fill into a temp file in path's directory, syncs,
// runs beforeRename (the kill-point hook) and renames over path, so path
// always holds either the previous complete version or the new one.
func atomicWrite(path string, fill func(*os.File) error, beforeRename func()) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: writing %s: %w", filepath.Base(path), err)
	}
	if err := fill(f); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: writing %s: %w", filepath.Base(path), err)
	}
	if beforeRename != nil {
		beforeRename()
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: committing %s: %w", filepath.Base(path), err)
	}
	return nil
}

// Checkpoint is a loaded checkpoint, ready to replay.
type Checkpoint struct {
	// Dir is the directory the checkpoint was loaded from; a resumed
	// campaign keeps committing new checkpoints there.
	Dir  string
	Meta Meta

	log *analysis.RecordLog
}

// Load reads a checkpoint. path may be the checkpoint.json file itself, a
// directory containing one, or a parent directory (such as the
// -checkpoint-dir of a single-campaign run) exactly one of whose
// subdirectories contains one.
func Load(path string) (*Checkpoint, error) {
	metaPath, err := findMeta(path)
	if err != nil {
		return nil, err
	}
	dir := filepath.Dir(metaPath)
	raw, err := os.ReadFile(metaPath)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	var meta Meta
	if err := json.Unmarshal(raw, &meta); err != nil {
		return nil, fmt.Errorf("checkpoint: parsing %s: %w", metaPath, err)
	}
	if meta.Version != Version {
		return nil, fmt.Errorf("checkpoint: %s has format version %d, want %d", metaPath, meta.Version, Version)
	}
	rf, err := os.Open(filepath.Join(dir, RecordsFile))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	defer rf.Close()
	log, err := analysis.ReadRecordLog(rf)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %s: %w", filepath.Join(dir, RecordsFile), err)
	}
	// The sidecar commits before the metadata, so it may run ahead of the
	// snapshot (kill between the renames) but never behind it.
	if log.Len() < meta.NumRecords {
		return nil, fmt.Errorf("checkpoint: records sidecar holds %d records, metadata expects %d", log.Len(), meta.NumRecords)
	}
	return &Checkpoint{Dir: dir, Meta: meta, log: log}, nil
}

// findMeta resolves the user-supplied path to the checkpoint.json file.
func findMeta(path string) (string, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	if !fi.IsDir() {
		return path, nil
	}
	direct := filepath.Join(path, MetaFile)
	if _, err := os.Stat(direct); err == nil {
		return direct, nil
	}
	entries, err := os.ReadDir(path)
	if err != nil {
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	var found []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		p := filepath.Join(path, e.Name(), MetaFile)
		if _, err := os.Stat(p); err == nil {
			found = append(found, p)
		}
	}
	sort.Strings(found)
	switch len(found) {
	case 0:
		return "", fmt.Errorf("checkpoint: no %s under %s", MetaFile, path)
	case 1:
		return found[0], nil
	default:
		return "", fmt.Errorf("checkpoint: %d checkpoints under %s (%s ...); pass one directly", len(found), path, filepath.Dir(found[0]))
	}
}

// NumRecords returns how many records Replay will deliver.
func (c *Checkpoint) NumRecords() int { return c.Meta.NumRecords }

// Replay streams the snapshot's records — the sidecar truncated to
// Meta.NumRecords — in original emission order. The resume path feeds
// them into the same sinks a live round's emit phase would, rebuilding
// the record slice/log, the store index and the next checkpoint's shadow
// log in one pass.
func (c *Checkpoint) Replay(fn func(analysis.Measurement)) error {
	cur := c.log.Cursor()
	n := 0
	for n < c.Meta.NumRecords {
		batch := cur.Next()
		if len(batch) == 0 {
			return fmt.Errorf("checkpoint: record stream ended at %d of %d records", n, c.Meta.NumRecords)
		}
		if rest := c.Meta.NumRecords - n; len(batch) > rest {
			batch = batch[:rest]
		}
		for _, m := range batch {
			fn(m)
		}
		n += len(batch)
	}
	return nil
}
