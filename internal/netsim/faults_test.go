package netsim

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"github.com/clasp-measurement/clasp/internal/bgp"
)

// stubFaults fails the first failFirst attempts of every test.
type stubFaults struct {
	failFirst int
	err       error
	calls     int
}

func (s *stubFaults) BeforeMeasure(ctx context.Context, spec TestSpec) error {
	s.calls++
	if spec.Attempt < s.failFirst {
		return s.err
	}
	return nil
}

func TestMeasureCtxNilFaultsEqualsMeasure(t *testing.T) {
	s := newSim(t)
	srv := s.Topology().Servers()[5]
	spec := TestSpec{Region: "us-east1", Server: srv, Tier: bgp.Premium, Dir: Download, Time: t0.Add(9 * time.Hour)}
	want, err := s.Measure(spec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.MeasureCtx(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("MeasureCtx(nil faults) = %+v, want Measure result %+v", got, want)
	}
	// A nil context on the pass-through path must not panic either.
	if _, err := s.MeasureCtx(nil, spec, &stubFaults{}); err != nil { //nolint:staticcheck
		t.Errorf("nil ctx: %v", err)
	}
}

func TestMeasureCtxInjectedFailure(t *testing.T) {
	s := newSim(t)
	srv := s.Topology().Servers()[5]
	spec := TestSpec{Region: "us-east1", Server: srv, Tier: bgp.Premium, Dir: Upload, Time: t0.Add(3 * time.Hour)}
	sentinel := errors.New("injected")
	f := &stubFaults{failFirst: 1, err: sentinel}

	res, err := s.MeasureCtx(context.Background(), spec, f)
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the injected error wrapped", err)
	}
	if !reflect.DeepEqual(res, TestResult{}) {
		t.Errorf("failed test returned a non-zero result: %+v", res)
	}

	// The retry redraws per attempt: attempt 1 passes through and matches
	// the fault-free measurement bit for bit.
	spec.Attempt = 1
	got, err := s.MeasureCtx(context.Background(), spec, f)
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.Measure(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("retried result %+v differs from fault-free %+v", got, want)
	}
	if f.calls != 2 {
		t.Errorf("fault hook called %d times, want 2", f.calls)
	}
}

// TestAttemptDoesNotChangeMeasurement pins that TestSpec.Attempt is carried
// for the fault layer only — the measurement arithmetic must ignore it, or
// retried tests would stop matching the paper's fault-free campaigns.
func TestAttemptDoesNotChangeMeasurement(t *testing.T) {
	s := newSim(t)
	srv := s.Topology().Servers()[2]
	spec := TestSpec{Region: "us-west1", Server: srv, Tier: bgp.Premium, Dir: Download, Time: t0.Add(17 * time.Hour)}
	base, err := s.Measure(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, attempt := range []int{1, 2, 7} {
		spec.Attempt = attempt
		got, err := s.Measure(spec)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, base) {
			t.Errorf("attempt %d changed the measurement: %+v vs %+v", attempt, got, base)
		}
	}
}
