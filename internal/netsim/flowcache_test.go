package netsim

import (
	"sync"
	"testing"
	"time"

	"github.com/clasp-measurement/clasp/internal/bgp"
	"github.com/clasp-measurement/clasp/internal/tcpmodel"
	"github.com/clasp-measurement/clasp/internal/topology"
)

// measureUncached recomputes a Measure result through the original per-call
// path — route resolution plus pathRTT/pathBandwidth — with no flow cache.
// The flow cache must be bit-identical to this.
func measureUncached(t *testing.T, s *Sim, spec TestSpec) TestResult {
	t.Helper()
	if spec.DurationSec <= 0 {
		spec.DurationSec = 15
	}
	var choice bgp.EgressChoice
	var err error
	if spec.Dir == Download {
		choice, err = s.router.IngressLink(spec.Region, spec.Server.ASN, spec.Server.City, spec.Tier)
	} else {
		choice, err = s.router.EgressLink(spec.Region, spec.Server.ASN, spec.Server.City, spec.Tier)
	}
	if err != nil {
		t.Fatal(err)
	}
	rtt := s.pathRTT(spec.Region, spec.Server.ASN, spec.Server.City, choice, spec.Tier, spec.Time, uint64(spec.Server.ID))
	avail, loss := s.pathBandwidth(spec, choice, spec.Time)
	tput := tcpmodel.Throughput(tcpmodel.FlowParams{
		RTTms:          rtt,
		Loss:           loss,
		BottleneckMbps: avail,
		DurationSec:    spec.DurationSec,
		Streams:        s.cfg.ParallelStreams,
	})
	sigma := s.cfg.NoiseSigmaPremium
	if spec.Tier == bgp.Standard {
		sigma = s.cfg.NoiseSigmaStandard
	}
	n := hashNorm(s.cfg.Seed, s.regionHash(spec.Region), uint64(spec.Server.ID), dayOf(spec.Time), uint64(spec.Time.Hour()), uint64(spec.Dir), uint64(spec.Tier), 0xa1)
	tput *= clamp(1+sigma*n, 0.4, 1.6)
	return TestResult{
		ThroughputMbps: tput,
		RTTms:          rtt,
		LossRate:       loss,
		Link:           choice.Link,
		ASPath:         choice.Path,
		Dir:            spec.Dir,
		Tier:           spec.Tier,
	}
}

// TestFlowCacheMatchesUncached sweeps servers, tiers, directions and times
// — including repeated hits on warmed entries — and asserts every cached
// Measure equals the uncached recomputation bit for bit.
func TestFlowCacheMatchesUncached(t *testing.T) {
	topo, err := topology.New(topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sim := New(topo, nil, Config{Seed: 7})
	start := time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)

	servers := topo.Servers()
	if len(servers) > 12 {
		servers = servers[:12]
	}
	regions := []string{"us-east1", "us-west1"}
	checked := 0
	for _, region := range regions {
		for _, srv := range servers {
			for _, tier := range []bgp.Tier{bgp.Premium, bgp.Standard} {
				for _, dir := range []Direction{Download, Upload} {
					for _, dh := range []int{0, 5, 21, 24*9 + 13} {
						spec := TestSpec{
							Region: region, Server: srv, Tier: tier, Dir: dir,
							Time: start.Add(time.Duration(dh) * time.Hour),
						}
						got, err := sim.Measure(spec)
						if err != nil {
							t.Fatal(err)
						}
						want := measureUncached(t, sim, spec)
						if got.ThroughputMbps != want.ThroughputMbps ||
							got.RTTms != want.RTTms ||
							got.LossRate != want.LossRate {
							t.Fatalf("%s srv%d %v %v t+%dh: cached (%v, %v, %v) != uncached (%v, %v, %v)",
								region, srv.ID, tier, dir, dh,
								got.ThroughputMbps, got.RTTms, got.LossRate,
								want.ThroughputMbps, want.RTTms, want.LossRate)
						}
						if got.Link != want.Link {
							t.Fatalf("%s srv%d %v %v: cached link %d != uncached link %d",
								region, srv.ID, tier, dir, got.Link.ID, want.Link.ID)
						}
						if len(got.ASPath) != len(want.ASPath) {
							t.Fatalf("AS path lengths differ: %v vs %v", got.ASPath, want.ASPath)
						}
						for i := range got.ASPath {
							if got.ASPath[i] != want.ASPath[i] {
								t.Fatalf("AS paths differ: %v vs %v", got.ASPath, want.ASPath)
							}
						}
						checked++
					}
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no specs checked")
	}
}

// TestMeasureConcurrentCold races many goroutines into a cold simulator —
// flow cache, route trees and link cache all populate under contention —
// and asserts everyone observes the same values. Run under -race this pins
// the lock-free fast paths.
func TestMeasureConcurrentCold(t *testing.T) {
	topo, err := topology.New(topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	servers := topo.Servers()
	if len(servers) > 8 {
		servers = servers[:8]
	}
	start := time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)
	var specs []TestSpec
	for i, srv := range servers {
		for _, tier := range []bgp.Tier{bgp.Premium, bgp.Standard} {
			for _, dir := range []Direction{Download, Upload} {
				specs = append(specs, TestSpec{
					Region: "us-east1", Server: srv, Tier: tier, Dir: dir,
					Time: start.Add(time.Duration(i) * time.Hour),
				})
			}
		}
	}

	sim := New(topo, nil, Config{Seed: 7})
	const goroutines = 8
	results := make([][]TestResult, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]TestResult, len(specs))
			for i, spec := range specs {
				res, err := sim.Measure(spec)
				if err != nil {
					t.Error(err)
					return
				}
				out[i] = res
			}
			results[g] = out
		}(g)
	}
	wg.Wait()

	for g := 1; g < goroutines; g++ {
		for i := range specs {
			a, b := results[0][i], results[g][i]
			if a.ThroughputMbps != b.ThroughputMbps || a.RTTms != b.RTTms || a.LossRate != b.LossRate || a.Link != b.Link {
				t.Fatalf("goroutine %d spec %d diverged: %+v vs %+v", g, i, a, b)
			}
		}
	}
}
