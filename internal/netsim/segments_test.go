package netsim

import (
	"testing"
	"time"

	"github.com/clasp-measurement/clasp/internal/bgp"
)

func TestSegmentsForDownloadStructure(t *testing.T) {
	s := newSim(t)
	srv := s.Topology().Servers()[2]
	segs, err := s.SegmentsFor(TestSpec{
		Region: "us-east1", Server: srv, Tier: bgp.Premium, Dir: Download,
		Time: time.Date(2020, 5, 1, 8, 0, 0, 0, time.UTC),
	})
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(segs))
	for i, seg := range segs {
		names[i] = seg.Name
		if seg.AvailMbps <= 0 {
			t.Errorf("segment %s has avail %v", seg.Name, seg.AvailMbps)
		}
		if seg.Loss < 0 || seg.Loss > 1 {
			t.Errorf("segment %s has loss %v", seg.Name, seg.Loss)
		}
	}
	want := []string{"server-access", "isp-aggregation", "interconnect", "vm-nic"}
	if len(names) != len(want) {
		t.Fatalf("segments = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("segment %d = %s, want %s", i, names[i], want[i])
		}
	}
	// Only the interconnect segment carries a link ID.
	for _, seg := range segs {
		if (seg.Name == "interconnect") != (seg.LinkID >= 0) {
			t.Errorf("segment %s link ID %d", seg.Name, seg.LinkID)
		}
	}
	// The vm-nic segment equals the shaped downlink.
	if segs[3].AvailMbps != 1000 {
		t.Errorf("vm-nic = %v, want 1000", segs[3].AvailMbps)
	}
}

func TestSegmentsForUploadStructure(t *testing.T) {
	s := newSim(t)
	srv := s.Topology().Servers()[2]
	segs, err := s.SegmentsFor(TestSpec{
		Region: "us-east1", Server: srv, Tier: bgp.Premium, Dir: Upload,
		Time: t0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if segs[0].Name != "vm-nic" || segs[0].AvailMbps != 100 {
		t.Errorf("upload first segment: %+v", segs[0])
	}
	if segs[len(segs)-1].Name != "server-access" {
		t.Errorf("upload last segment: %+v", segs[len(segs)-1])
	}
}

func TestSegmentsMatchMeasureBottleneck(t *testing.T) {
	s := newSim(t)
	// The minimum segment availability must upper-bound the measured
	// throughput (modulo the 1.6x noise clamp).
	for _, srv := range s.Topology().Servers()[:25] {
		spec := TestSpec{Region: "us-central1", Server: srv, Tier: bgp.Premium, Dir: Download, Time: t0.Add(5 * time.Hour)}
		segs, err := s.SegmentsFor(spec)
		if err != nil {
			t.Fatal(err)
		}
		min := segs[0].AvailMbps
		for _, seg := range segs {
			if seg.AvailMbps < min {
				min = seg.AvailMbps
			}
		}
		res, err := s.Measure(spec)
		if err != nil {
			t.Fatal(err)
		}
		if res.ThroughputMbps > min*1.6+1 {
			t.Errorf("server %d: measured %.1f exceeds bottleneck %.1f", srv.ID, res.ThroughputMbps, min)
		}
	}
}

func TestSegmentsForErrors(t *testing.T) {
	s := newSim(t)
	if _, err := s.SegmentsFor(TestSpec{Region: "us-east1", Server: nil, Time: t0}); err == nil {
		t.Error("nil server accepted")
	}
	if _, err := s.SegmentsFor(TestSpec{Region: "bogus", Server: s.Topology().Servers()[0], Time: t0}); err == nil {
		t.Error("bogus region accepted")
	}
}

func TestLossyLinksPremiumOnly(t *testing.T) {
	s := newSim(t)
	topo := s.Topology()
	// Find a server whose premium ingress crosses a lossy link.
	for _, srv := range topo.Servers() {
		spec := TestSpec{Region: "us-east1", Server: srv, Tier: bgp.Premium, Dir: Download, Time: t0}
		segs, err := s.SegmentsFor(spec)
		if err != nil {
			continue
		}
		var link *Segment
		for i := range segs {
			if segs[i].Name == "interconnect" {
				link = &segs[i]
			}
		}
		if link == nil || link.LinkID < 0 {
			continue
		}
		l := topo.Link(link.LinkID)
		if l == nil || !l.Lossy {
			continue
		}
		// Premium crosses the lossy port: segment loss must include it.
		if link.Loss < l.LossRate*0.5 {
			t.Errorf("premium lossy link %d: segment loss %.4f < %.4f", l.ID, link.Loss, l.LossRate*0.5)
		}
		// Standard ingress over the same server must not carry that
		// chronic loss (different port or tier exemption).
		stdSegs, err := s.SegmentsFor(TestSpec{Region: "us-east1", Server: srv, Tier: bgp.Standard, Dir: Download, Time: t0})
		if err != nil {
			t.Fatal(err)
		}
		for _, seg := range stdSegs {
			if seg.Name == "interconnect" && seg.LinkID == l.ID && seg.Loss > 0.02 {
				t.Errorf("standard tier carries chronic loss %.4f on link %d", seg.Loss, l.ID)
			}
		}
		return
	}
	t.Skip("no premium path over a lossy link at this scale")
}
