// Package netsim is the flow-level network simulator CLASP measures
// against. It composes the synthetic topology and BGP tier policies into
// end-to-end path properties — round-trip time, available bandwidth, and
// loss — that vary over virtual time with the diurnal load model, and runs
// modelled TCP speed tests over those paths.
//
// Everything is deterministic in the seed: a measurement at (server,
// region, tier, direction, time) always yields the same result.
//
// A Sim is safe for concurrent use. Measure, PingRTT, ForwardPath and the
// segment helpers are pure per call: every stochastic choice is a hash of
// (seed, key...), the Sim's own fields are read-only after New, and the
// shared caches — the BGP router's route trees and link choices, and the
// Sim's per-flow cache (flowcache.go) — serve hits as lock-free sync.Map
// reads and singleflight their fills, which never changes a value (each
// cached entry is a pure function of topology and seed). The parallel
// campaign engine in internal/orchestrator relies on this to fan hourly
// rounds out across goroutines without changing any measured value.
package netsim

import (
	"fmt"
	"sync"
	"time"

	"github.com/clasp-measurement/clasp/internal/bgp"
	"github.com/clasp-measurement/clasp/internal/geo"
	"github.com/clasp-measurement/clasp/internal/tcpmodel"
	"github.com/clasp-measurement/clasp/internal/topology"
)

// ASN aliases the topology AS number type.
type ASN = topology.ASN

// Direction of a throughput test relative to the cloud VM.
type Direction int

// Test directions.
const (
	// Download transfers from the speed test server to the cloud VM
	// (cloud ingress; the paper's primary congestion findings are here).
	Download Direction = iota
	// Upload transfers from the cloud VM to the speed test server
	// (cloud egress, capped at the VM's 100 Mbps shaped uplink).
	Upload
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	if d == Download {
		return "download"
	}
	return "upload"
}

// Config tunes the simulator. Zero values are replaced by defaults in New.
type Config struct {
	Seed int64

	// VM NIC shaping, mirroring the paper's tc setup (§3.2).
	VMDownMbps float64 // default 1000
	VMUpMbps   float64 // default 100

	// BaseLoss is the residual loss rate of a clean path.
	BaseLoss float64 // default 3e-7

	// PremiumAvailFactor scales interconnect headroom on the premium
	// tier (its egress ports carry more aggregated Google traffic).
	PremiumAvailFactor float64 // default 0.77
	// PremiumExtraLoss is the additional residual loss on premium-tier
	// interconnects; §4.1 traces the standard tier's higher throughput to
	// loss on the premium egress ports.
	PremiumExtraLoss float64 // default 1.5e-7
	// NoiseSigmaPremium / NoiseSigmaStandard are the lognormal sigma of
	// per-test throughput noise; the standard tier (public Internet) is
	// noisier (§4.1: "higher throughput but higher variance").
	NoiseSigmaPremium  float64 // default 0.08
	NoiseSigmaStandard float64 // default 0.17

	// Congestion-event realisation probabilities per day.
	CongestionDayProbProne float64 // default 0.26
	CongestionDayProbBase  float64 // default 0.03
	// OffDayDepthFactor scales the dip on non-event days.
	OffDayDepthFactor float64 // default 0.3
	// Dip widths in hours.
	EveningSigmaHours float64 // default 2.2
	DaytimeSigmaHours float64 // default 3.5

	// QueueDelayMaxMs is the added queueing RTT at a fully realised dip.
	QueueDelayMaxMs float64 // default 35

	// RegionCongestionFactor scales event probability per region
	// (us-west1 showed the least congestion, us-east4 the most; Fig. 2).
	RegionCongestionFactor map[string]float64

	// ParallelStreams is the number of concurrent TCP connections a
	// speed test opens (default 6, matching web speed test clients).
	ParallelStreams int

	// PerASHopMs is the per-AS-hop processing/queueing RTT cost.
	PerASHopMs float64 // default 0.8
	// WANStretchFactor scales the great-circle public-Internet RTT for
	// the leg carried on the cloud's private WAN.
	// (Per-pair variation is drawn around it.)
	WANStretchFactor float64 // default 0.82
}

// DefaultConfig returns the calibrated simulator configuration.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:                   seed,
		VMDownMbps:             1000,
		VMUpMbps:               100,
		BaseLoss:               3e-7,
		PremiumAvailFactor:     0.77,
		PremiumExtraLoss:       1.5e-7,
		NoiseSigmaPremium:      0.08,
		NoiseSigmaStandard:     0.17,
		CongestionDayProbProne: 0.26,
		CongestionDayProbBase:  0.03,
		OffDayDepthFactor:      0.3,
		EveningSigmaHours:      2.2,
		DaytimeSigmaHours:      3.5,
		QueueDelayMaxMs:        35,
		RegionCongestionFactor: map[string]float64{
			"us-west1":     0.65,
			"us-west2":     0.9,
			"us-west4":     1.35,
			"us-east1":     1.0,
			"us-east4":     1.45,
			"us-central1":  1.15,
			"europe-west1": 1.0,
		},
		ParallelStreams:  6,
		PerASHopMs:       0.8,
		WANStretchFactor: 0.82,
	}
}

// Sim is the network simulator.
type Sim struct {
	topo   *topology.Topology
	router *bgp.Router
	cfg    Config

	// regionHashes interns the FNV hash of every region name so hot-path
	// hash keys need no per-call string walk.
	regionHashes map[string]uint64
	// flows caches per-(region, server, tier, dir) routing decisions and
	// static model inputs; see flowcache.go.
	flows sync.Map
}

// New creates a simulator over the topology. A nil router is constructed
// internally.
func New(t *topology.Topology, r *bgp.Router, cfg Config) *Sim {
	if r == nil {
		r = bgp.NewRouter(t)
	}
	d := DefaultConfig(cfg.Seed)
	if cfg.VMDownMbps == 0 {
		cfg.VMDownMbps = d.VMDownMbps
	}
	if cfg.VMUpMbps == 0 {
		cfg.VMUpMbps = d.VMUpMbps
	}
	if cfg.BaseLoss == 0 {
		cfg.BaseLoss = d.BaseLoss
	}
	if cfg.PremiumAvailFactor == 0 {
		cfg.PremiumAvailFactor = d.PremiumAvailFactor
	}
	if cfg.PremiumExtraLoss == 0 {
		cfg.PremiumExtraLoss = d.PremiumExtraLoss
	}
	if cfg.NoiseSigmaPremium == 0 {
		cfg.NoiseSigmaPremium = d.NoiseSigmaPremium
	}
	if cfg.NoiseSigmaStandard == 0 {
		cfg.NoiseSigmaStandard = d.NoiseSigmaStandard
	}
	if cfg.CongestionDayProbProne == 0 {
		cfg.CongestionDayProbProne = d.CongestionDayProbProne
	}
	if cfg.CongestionDayProbBase == 0 {
		cfg.CongestionDayProbBase = d.CongestionDayProbBase
	}
	if cfg.OffDayDepthFactor == 0 {
		cfg.OffDayDepthFactor = d.OffDayDepthFactor
	}
	if cfg.EveningSigmaHours == 0 {
		cfg.EveningSigmaHours = d.EveningSigmaHours
	}
	if cfg.DaytimeSigmaHours == 0 {
		cfg.DaytimeSigmaHours = d.DaytimeSigmaHours
	}
	if cfg.QueueDelayMaxMs == 0 {
		cfg.QueueDelayMaxMs = d.QueueDelayMaxMs
	}
	if cfg.RegionCongestionFactor == nil {
		cfg.RegionCongestionFactor = d.RegionCongestionFactor
	}
	if cfg.ParallelStreams == 0 {
		cfg.ParallelStreams = d.ParallelStreams
	}
	if cfg.PerASHopMs == 0 {
		cfg.PerASHopMs = d.PerASHopMs
	}
	if cfg.WANStretchFactor == 0 {
		cfg.WANStretchFactor = d.WANStretchFactor
	}
	s := &Sim{topo: t, router: r, cfg: cfg}
	s.regionHashes = make(map[string]uint64, len(t.Regions))
	for _, reg := range t.Regions {
		s.regionHashes[reg.Name] = regionKey(reg.Name)
	}
	return s
}

// regionHash returns the interned hash of a region name, falling back to
// computing it for names outside the topology.
func (s *Sim) regionHash(region string) uint64 {
	if h, ok := s.regionHashes[region]; ok {
		return h
	}
	return regionKey(region)
}

// Topology returns the simulated Internet.
func (s *Sim) Topology() *topology.Topology { return s.topo }

// Router returns the BGP router.
func (s *Sim) Router() *bgp.Router { return s.router }

// TestSpec describes one speed test run from a region against a server.
type TestSpec struct {
	Region      string
	Server      *topology.Server
	Tier        bgp.Tier
	Dir         Direction
	Time        time.Time // virtual UTC timestamp
	DurationSec float64   // default 15
	// VMDownMbps / VMUpMbps override the configured NIC shaping when > 0.
	VMDownMbps float64
	VMUpMbps   float64
	// Attempt is the 0-based retry attempt of this execution. It never
	// enters the measurement arithmetic — results are identical at any
	// value — but the fault layer keys per-attempt decisions on it so a
	// retried test can deterministically succeed (see internal/faults).
	Attempt int
}

// TestResult is the outcome the speed test UI would report, plus the
// ground-truth path attributes the analysis pipeline later re-estimates
// from packet captures.
type TestResult struct {
	ThroughputMbps float64
	RTTms          float64
	LossRate       float64
	Link           *topology.Interconnect // interconnect crossed
	ASPath         []ASN
	Dir            Direction
	Tier           bgp.Tier
}

// Measure runs one modelled speed test. The flow's routing decision and
// static model inputs come from the per-flow cache, so a steady-state call
// does no path walk and near-zero allocation.
func (s *Sim) Measure(spec TestSpec) (TestResult, error) {
	if spec.Server == nil {
		return TestResult{}, fmt.Errorf("netsim: nil server")
	}
	if spec.DurationSec <= 0 {
		spec.DurationSec = 15
	}
	var timeStart time.Time
	timed := sampleMeasure()
	if timed {
		timeStart = time.Now()
	}
	fe, err := s.flowFor(spec)
	if err != nil {
		return TestResult{}, err
	}

	rtt := fe.rttAt(s, spec.Time)
	avail, loss := fe.bandwidthAt(s, spec, spec.Time)

	tput := tcpmodel.Throughput(tcpmodel.FlowParams{
		RTTms:          rtt,
		Loss:           loss,
		BottleneckMbps: avail,
		DurationSec:    spec.DurationSec,
		Streams:        s.cfg.ParallelStreams,
	})
	// Per-test multiplicative measurement noise. The hash key includes the
	// region so two regions measuring the same server in the same hour
	// draw independent noise.
	sigma := s.cfg.NoiseSigmaPremium
	if spec.Tier == bgp.Standard {
		sigma = s.cfg.NoiseSigmaStandard
	}
	n := hashNorm(s.cfg.Seed, fe.regionHash, uint64(spec.Server.ID), dayOf(spec.Time), uint64(spec.Time.Hour()), uint64(spec.Dir), uint64(spec.Tier), 0xa1)
	tput *= clamp(1+sigma*n, 0.4, 1.6)

	if timed {
		obsMeasureLat.Observe(float64(time.Since(timeStart)))
	}
	return TestResult{
		ThroughputMbps: tput,
		RTTms:          rtt,
		LossRate:       loss,
		Link:           fe.choice.Link,
		ASPath:         fe.choice.Path,
		Dir:            spec.Dir,
		Tier:           spec.Tier,
	}, nil
}

// Segment is one capacity-relevant element of a simulated path, ordered
// from the traffic source toward the cloud VM (download) or the server
// (upload). The in-band measurement extension probes these per hop.
type Segment struct {
	Name      string
	LinkID    int // interconnect ID, or -1
	AvailMbps float64
	Loss      float64 // loss contributed by this segment
}

// PathSegments decomposes the path of a test into its capacity segments at
// the given time. The first segment is nearest the remote endpoint.
func (s *Sim) PathSegments(spec TestSpec, choice bgp.EgressChoice, t time.Time) []Segment {
	srv := spec.Server
	link := choice.Link
	regionFactor := s.cfg.RegionCongestionFactor[spec.Region]
	if regionFactor == 0 {
		regionFactor = 1
	}
	vmDown, vmUp := spec.VMDownMbps, spec.VMUpMbps
	if vmDown <= 0 {
		vmDown = s.cfg.VMDownMbps
	}
	if vmUp <= 0 {
		vmUp = s.cfg.VMUpMbps
	}

	srvAS := s.topo.AS(srv.ASN)
	srvCity, _ := s.topo.CityOf(srv.City)
	linkCity, _ := s.topo.CityOf(link.City)
	nbAS := s.topo.AS(link.Neighbor)

	baseLoss := s.cfg.BaseLoss
	if spec.Tier == bgp.Premium {
		baseLoss += s.cfg.PremiumExtraLoss
	}

	headroom := link.Headroom
	if spec.Tier == bgp.Premium {
		headroom *= s.cfg.PremiumAvailFactor
	}

	var segs []Segment
	if spec.Dir == Download {
		// Server access link.
		segs = append(segs, Segment{Name: "server-access", LinkID: -1, AvailMbps: srv.AccessMbps})

		// ISP access-aggregation: the per-server congestion signal
		// (keyed by server so distinct servers of one ISP behave like
		// the paper's distinct pairs), at the server's local time.
		ispDip := s.congestionDip(srvAS.Congestion, serverKey(srv.ID), srvCity.UTCOffset, t, regionFactor)
		agg := hashRange(s.cfg.Seed, 500, 1400, serverKey(srv.ID), 0xb2) * (1 - ispDip)
		segs = append(segs, Segment{
			Name: "isp-aggregation", LinkID: -1, AvailMbps: agg,
			Loss: congestionLoss(srvAS.Congestion, ispDip),
		})

		// Interdomain link into the cloud, modulated by the neighbor's
		// profile at the facility's local time. The congestion dips live
		// on the upstream (edge -> core) direction: the paper's download
		// tests crossed them while uploads stayed near the cap. Ports are
		// provisioned with more slack than access aggregation, so the dip
		// is capped and couples weakly into loss; the server-specific
		// ISP-aggregation dip above is the dominant congestion signal.
		linkDip := s.congestionDip(nbAS.Congestion, linkKey(link.ID), linkCity.UTCOffset, t, regionFactor)
		if linkDip > 0.8 {
			linkDip = 0.8
		}
		linkLoss := baseLoss + congestionLoss(nbAS.Congestion, linkDip)*0.25
		// Chronically lossy interconnects: the §4.1 pathology lives on
		// the private-interconnect ports the premium tier rides; the
		// standard tier's transit ingress does not cross them.
		if link.Lossy && spec.Tier == bgp.Premium {
			linkLoss += link.LossRate * hashRange(s.cfg.Seed, 0.8, 1.2, linkKey(link.ID), dayOf(t), 0xb3)
		}
		segs = append(segs, Segment{
			Name: "interconnect", LinkID: link.ID,
			AvailMbps: headroom * (1 - linkDip), Loss: linkLoss,
		})

		// VM NIC shaping (tc).
		segs = append(segs, Segment{Name: "vm-nic", LinkID: -1, AvailMbps: vmDown})
	} else {
		segs = append(segs, Segment{Name: "vm-nic", LinkID: -1, AvailMbps: vmUp})
		// Mild downstream (cloud -> edge) evening load.
		linkDip := s.congestionDip(nbAS.Congestion, linkKey(link.ID)^0x5555, linkCity.UTCOffset, t, regionFactor*0.3)
		segs = append(segs, Segment{
			Name: "interconnect", LinkID: link.ID,
			AvailMbps: headroom * (1 - 0.3*linkDip), Loss: baseLoss,
		})
		segs = append(segs, Segment{Name: "server-access", LinkID: -1, AvailMbps: srv.AccessMbps})
	}
	return segs
}

// pathBandwidth computes the bandwidth available to the test flow and the
// path loss rate at the given time.
func (s *Sim) pathBandwidth(spec TestSpec, choice bgp.EgressChoice, t time.Time) (availMbps, loss float64) {
	segs := s.PathSegments(spec, choice, t)
	availMbps = segs[0].AvailMbps
	for _, seg := range segs {
		if seg.AvailMbps < availMbps {
			availMbps = seg.AvailMbps
		}
		loss += seg.Loss
	}
	// Upload paths carry at least the clean-path base loss.
	if loss == 0 {
		loss = s.cfg.BaseLoss
	}
	if loss > 0.9 {
		loss = 0.9
	}
	if availMbps < 0.1 {
		availMbps = 0.1
	}
	return availMbps, loss
}

// SegmentsFor resolves the routing for a test and returns its segments;
// a convenience for the in-band measurement tools.
func (s *Sim) SegmentsFor(spec TestSpec) ([]Segment, error) {
	if spec.Server == nil {
		return nil, fmt.Errorf("netsim: nil server")
	}
	var choice bgp.EgressChoice
	var err error
	if spec.Dir == Download {
		choice, err = s.router.IngressLink(spec.Region, spec.Server.ASN, spec.Server.City, spec.Tier)
	} else {
		choice, err = s.router.EgressLink(spec.Region, spec.Server.ASN, spec.Server.City, spec.Tier)
	}
	if err != nil {
		return nil, err
	}
	return s.PathSegments(spec, choice, spec.Time), nil
}

// pathRTT models the round-trip time between a region VM and an endpoint
// (asn, city) through the chosen interconnect under a tier policy.
func (s *Sim) pathRTT(region string, endASN ASN, endCity string, choice bgp.EgressChoice, tier bgp.Tier, t time.Time, flowKey uint64) float64 {
	rtt := s.staticRTT(region, endASN, endCity, choice, tier)
	// Queueing delay under congestion at the endpoint's local time.
	endCityRec, ok := s.topo.CityOf(endCity)
	if ok {
		srvAS := s.topo.AS(endASN)
		if srvAS != nil {
			regionFactor := s.cfg.RegionCongestionFactor[region]
			if regionFactor == 0 {
				regionFactor = 1
			}
			dip := s.congestionDip(srvAS.Congestion, flowKey, endCityRec.UTCOffset, t, regionFactor)
			rtt += dip * s.cfg.QueueDelayMaxMs
		}
	}
	// Small jitter.
	rtt *= clamp(1+0.03*hashNorm(s.cfg.Seed, flowKey, dayOf(t), uint64(t.Hour()), 0xc1), 0.9, 1.15)
	return rtt
}

// staticRTT is the time-invariant portion of pathRTT: propagation, WAN
// policy, and per-hop processing. The flow cache stores this partial sum so
// steady-state calls skip the geometry entirely; the accumulation order
// here must not change, or cached and uncached results diverge.
func (s *Sim) staticRTT(region string, endASN ASN, endCity string, choice bgp.EgressChoice, tier bgp.Tier) float64 {
	reg, _ := s.topo.Region(region)
	regCoord, _ := s.topo.CityCoord(reg.City)
	endCoord, ok := s.topo.CityCoord(endCity)
	if !ok {
		endCoord = regCoord
	}
	linkCoord := choice.Link.Coord
	if !choice.Link.CoordOK {
		linkCoord = regCoord
	}

	// Edge leg: endpoint to the interconnect facility over the public
	// Internet, plus fixed access delay.
	rtt := 2.0 + geo.RTTMs(endCoord, linkCoord)
	// Cloud leg: facility to the region over the private WAN. Per
	// (AS, region) pairs differ in WAN efficiency; some pairs carry a
	// cold-potato routing penalty that makes the premium tier slower
	// (the "standard lower latency" class in Fig. 5c).
	wanLeg := geo.RTTMs(linkCoord, regCoord)
	if tier == bgp.Premium {
		wf, penalty := s.wanProfile(endASN, region)
		rtt += wanLeg*wf + penalty
	} else {
		rtt += wanLeg
	}
	// Per-AS-hop processing.
	rtt += float64(len(choice.Path)) * s.cfg.PerASHopMs
	return rtt
}

// wanProfile returns the premium-tier WAN stretch factor (relative to the
// public-Internet stretch) and additive penalty for an (AS, region) pair.
func (s *Sim) wanProfile(asn ASN, region string) (factor, penaltyMs float64) {
	key := []uint64{uint64(asn), s.regionHash(region), 0xe1}
	r := hash01(s.cfg.Seed, key...)
	switch {
	case r < 0.25:
		// Private WAN clearly faster (premium lower latency class).
		return hashRange(s.cfg.Seed, 0.55, 0.72, key...), 0
	case r < 0.60:
		// Comparable (within a few ms on typical distances).
		return hashRange(s.cfg.Seed, 0.93, 1.0, key...), 0
	case r < 0.85:
		// Mildly faster.
		return s.cfg.WANStretchFactor, 0
	default:
		// Cold-potato detour: premium slower by tens of ms.
		return 1.0, hashRange(s.cfg.Seed, 40, 90, key...)
	}
}

// PingRTT returns an unloaded-latency measurement (as a traceroute or
// Speedchecker probe would see) between a region and an endpoint AS/city
// over the given tier. flowSalt decorrelates repeated probes.
func (s *Sim) PingRTT(region string, endASN ASN, endCity string, tier bgp.Tier, t time.Time, flowSalt uint64) (float64, error) {
	choice, err := s.router.IngressLink(region, endASN, endCity, tier)
	if err != nil {
		return 0, err
	}
	return s.pathRTT(region, endASN, endCity, choice, tier, t, flowSalt), nil
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func serverKey(id int) uint64 { return 0x530000000000 + uint64(id) }
func linkKey(id int) uint64   { return 0x110000000000 + uint64(id) }
func regionKey(r string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(r); i++ {
		h ^= uint64(r[i])
		h *= fnvPrime
	}
	return h
}
