package netsim

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"github.com/clasp-measurement/clasp/internal/bgp"
	"github.com/clasp-measurement/clasp/internal/stats"
	"github.com/clasp-measurement/clasp/internal/topology"
)

func newSim(t *testing.T) *Sim {
	t.Helper()
	topo, err := topology.New(topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return New(topo, nil, Config{Seed: 7})
}

var t0 = time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)

func TestMeasureDeterminism(t *testing.T) {
	s := newSim(t)
	srv := s.Topology().Servers()[3]
	spec := TestSpec{Region: "us-west1", Server: srv, Tier: bgp.Premium, Dir: Download, Time: t0.Add(13 * time.Hour)}
	a, err := s.Measure(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Measure(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.ThroughputMbps != b.ThroughputMbps || a.RTTms != b.RTTms || a.LossRate != b.LossRate {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestMeasureErrors(t *testing.T) {
	s := newSim(t)
	if _, err := s.Measure(TestSpec{Region: "us-west1", Server: nil, Time: t0}); err == nil {
		t.Error("nil server: want error")
	}
	srv := s.Topology().Servers()[0]
	if _, err := s.Measure(TestSpec{Region: "bogus", Server: srv, Time: t0}); err == nil {
		t.Error("bogus region: want error")
	}
}

func TestDownloadBounds(t *testing.T) {
	s := newSim(t)
	for _, srv := range s.Topology().Servers()[:40] {
		res, err := s.Measure(TestSpec{Region: "us-east1", Server: srv, Tier: bgp.Premium, Dir: Download, Time: t0.Add(9 * time.Hour)})
		if err != nil {
			t.Fatalf("server %d: %v", srv.ID, err)
		}
		if res.ThroughputMbps <= 0 || res.ThroughputMbps > 1000*1.6 {
			t.Errorf("server %d download %.1f Mbps out of range", srv.ID, res.ThroughputMbps)
		}
		if res.RTTms <= 0 || res.RTTms > 500 {
			t.Errorf("server %d RTT %.1f ms out of range", srv.ID, res.RTTms)
		}
		if res.LossRate < 0 || res.LossRate > 0.9 {
			t.Errorf("server %d loss %v out of range", srv.ID, res.LossRate)
		}
		if res.Link == nil || len(res.ASPath) < 2 {
			t.Errorf("server %d missing path attribution", srv.ID)
		}
	}
}

func TestUploadNearCap(t *testing.T) {
	s := newSim(t)
	near := 0
	n := 0
	for _, srv := range s.Topology().ServersInCountry("US")[:60] {
		res, err := s.Measure(TestSpec{Region: "us-central1", Server: srv, Tier: bgp.Premium, Dir: Upload, Time: t0.Add(6 * time.Hour), DurationSec: 30})
		if err != nil {
			continue
		}
		n++
		if res.ThroughputMbps > 100*1.6 {
			t.Errorf("upload %.1f exceeds shaped cap band", res.ThroughputMbps)
		}
		if res.ThroughputMbps > 75 {
			near++
		}
	}
	// The paper: "most of the reported upload throughputs were close to
	// the uplink capacity of the measurement VMs (100 Mbps)".
	if float64(near)/float64(n) < 0.7 {
		t.Errorf("only %d/%d uploads near the 100 Mbps cap", near, n)
	}
}

func TestDiurnalCongestionOnProneISP(t *testing.T) {
	s := newSim(t)
	// Find the Cox Las Vegas server: its profile guarantees daytime events.
	var srv *topology.Server
	for _, sv := range s.Topology().Servers() {
		if sv.ASN == 22773 && sv.City == "Las Vegas" {
			srv = sv
			break
		}
	}
	if srv == nil {
		t.Fatal("no Cox Las Vegas server")
	}
	// Over 60 days of hourly samples the min/max spread must show deep
	// dips on some days (V(s,d) > 0.5), and clean days must exist too.
	deepDays, cleanDays := 0, 0
	for d := 0; d < 60; d++ {
		var day []float64
		for h := 0; h < 24; h++ {
			at := t0.Add(time.Duration(d*24+h) * time.Hour)
			res, err := s.Measure(TestSpec{Region: "us-west1", Server: srv, Tier: bgp.Premium, Dir: Download, Time: at})
			if err != nil {
				t.Fatal(err)
			}
			day = append(day, res.ThroughputMbps)
		}
		min, max, _ := stats.MinMax(day)
		v := (max - min) / max
		if v > 0.5 {
			deepDays++
		}
		if v < 0.5 {
			cleanDays++
		}
	}
	if deepDays < 5 {
		t.Errorf("Cox server saw only %d/60 deep-dip days, want >= 5", deepDays)
	}
	if cleanDays < 10 {
		t.Errorf("Cox server saw only %d/60 clean days", cleanDays)
	}
}

func TestPremiumVsStandardVariance(t *testing.T) {
	s := newSim(t)
	servers := s.Topology().ServersInCountry("US")
	var dPrem, dStd []float64
	if len(servers) > 120 {
		servers = servers[:120]
	}
	for _, srv := range servers {
		for h := 0; h < 24; h += 3 {
			at := t0.Add(time.Duration(h) * time.Hour)
			p, err1 := s.Measure(TestSpec{Region: "us-east1", Server: srv, Tier: bgp.Premium, Dir: Download, Time: at})
			q, err2 := s.Measure(TestSpec{Region: "us-east1", Server: srv, Tier: bgp.Standard, Dir: Download, Time: at})
			if err1 != nil || err2 != nil {
				continue
			}
			dPrem = append(dPrem, p.ThroughputMbps)
			dStd = append(dStd, q.ThroughputMbps)
		}
	}
	mp, _ := stats.Mean(dPrem)
	ms, _ := stats.Mean(dStd)
	// §4.1: the standard tier generally had higher throughput.
	if ms <= mp {
		t.Errorf("standard mean %.1f not above premium mean %.1f", ms, mp)
	}
}

func TestLatencyTopologyServersUnder150ms(t *testing.T) {
	s := newSim(t)
	over := 0
	n := 0
	for _, srv := range s.Topology().ServersInCountry("US") {
		res, err := s.Measure(TestSpec{Region: "us-central1", Server: srv, Tier: bgp.Premium, Dir: Download, Time: t0.Add(8 * time.Hour)})
		if err != nil {
			continue
		}
		n++
		if res.RTTms > 150 {
			over++
		}
	}
	// Fig 4a: over 90% of topology-based measurements had latency < 150ms.
	if frac := float64(over) / float64(n); frac > 0.2 {
		t.Errorf("%.0f%% of US servers above 150ms from us-central1", frac*100)
	}
}

func TestPingRTTStable(t *testing.T) {
	s := newSim(t)
	srv := s.Topology().Servers()[0]
	r1, err := s.PingRTT("us-west1", srv.ASN, srv.City, bgp.Premium, t0, 1)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := s.PingRTT("us-west1", srv.ASN, srv.City, bgp.Premium, t0, 1)
	if r1 != r2 {
		t.Error("PingRTT not deterministic for same salt")
	}
	if r1 <= 0 || r1 > 400 {
		t.Errorf("PingRTT = %v", r1)
	}
}

func TestWanProfileClassesExist(t *testing.T) {
	s := newSim(t)
	classes := map[string]int{}
	for _, a := range s.Topology().ASes() {
		f, p := s.wanProfile(a.ASN, "europe-west1")
		switch {
		case p > 0:
			classes["penalty"]++
		case f < 0.75:
			classes["fast"]++
		case f >= 0.93:
			classes["comparable"]++
		default:
			classes["mild"]++
		}
	}
	for _, c := range []string{"penalty", "fast", "comparable", "mild"} {
		if classes[c] == 0 {
			t.Errorf("WAN profile class %q never drawn", c)
		}
	}
}

func TestForwardPathStructure(t *testing.T) {
	s := newSim(t)
	srv := s.Topology().Servers()[5]
	hops, err := s.ForwardPath("us-west1", srv.IP, srv.ASN, srv.City, -1, bgp.Premium, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(hops) < 4 {
		t.Fatalf("too few hops: %d", len(hops))
	}
	// First hops inside the cloud.
	if hops[0].ASN != s.Topology().Cloud.ASN {
		t.Errorf("first hop AS = %d", hops[0].ASN)
	}
	// Exactly one hop carries a link ID (the far side of the border).
	borders := 0
	var borderIdx int
	for i, h := range hops {
		if h.LinkID >= 0 {
			borders++
			borderIdx = i
		}
	}
	if borders != 1 {
		t.Fatalf("found %d border hops, want 1", borders)
	}
	link := s.Topology().Link(hops[borderIdx].LinkID)
	if hops[borderIdx].IP != link.FarIP {
		t.Errorf("border hop IP %v != link far IP %v", hops[borderIdx].IP, link.FarIP)
	}
	// The hop before the border is a cloud border router (inbound
	// interface, not the /30 near side — forward traceroutes never show it).
	if hops[borderIdx-1].ASN != s.Topology().Cloud.ASN {
		t.Errorf("hop before border owned by AS%d, want cloud", hops[borderIdx-1].ASN)
	}
	if hops[borderIdx-1].IP == link.NearIP {
		t.Error("forward path leaked the near-side /30 interface")
	}
	// Last hop is the destination.
	last := hops[len(hops)-1]
	if last.IP != srv.IP || last.ASN != srv.ASN {
		t.Errorf("last hop %v/%d, want %v/%d", last.IP, last.ASN, srv.IP, srv.ASN)
	}
	// RTT must be nondecreasing.
	for i := 1; i < len(hops); i++ {
		if hops[i].RTTms < hops[i-1].RTTms {
			t.Errorf("RTT decreases at hop %d: %v -> %v", i, hops[i-1].RTTms, hops[i].RTTms)
		}
	}
}

func TestForwardPathParisStability(t *testing.T) {
	s := newSim(t)
	srv := s.Topology().Servers()[9]
	a, err := s.ForwardPath("us-east1", srv.IP, srv.ASN, srv.City, -1, bgp.Premium, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := s.ForwardPath("us-east1", srv.IP, srv.ASN, srv.City, -1, bgp.Premium, 7)
	if len(a) != len(b) {
		t.Fatal("same flow ID gave different lengths")
	}
	for i := range a {
		if a[i].IP != b[i].IP {
			t.Errorf("hop %d differs for same flow ID", i)
		}
	}
	// Different flow IDs may differ (ECMP) but must keep the same border.
	c, _ := s.ForwardPath("us-east1", srv.IP, srv.ASN, srv.City, -1, bgp.Premium, 8)
	var borderA, borderC int
	for i, h := range a {
		if h.LinkID >= 0 {
			borderA = a[i].LinkID
		}
	}
	for i, h := range c {
		if h.LinkID >= 0 {
			borderC = c[i].LinkID
		}
	}
	if borderA != borderC {
		t.Errorf("border changed across flow IDs: %d vs %d", borderA, borderC)
	}
}

func TestForwardPathToProbeTargets(t *testing.T) {
	s := newSim(t)
	topo := s.Topology()
	region := "us-central1"
	ok := 0
	links := topo.VisibleLinks(region)
	if len(links) > 100 {
		links = links[:100]
	}
	for _, l := range links {
		addr, _ := topo.ProbeTarget(l.ID)
		nb := topo.AS(l.Neighbor)
		hops, err := s.ForwardPath(region, addr, l.Neighbor, nb.Cities[0], l.ID, bgp.Premium, 1)
		if err != nil {
			t.Fatalf("probe path to link %d: %v", l.ID, err)
		}
		for _, h := range hops {
			if h.LinkID == l.ID {
				ok++
				break
			}
		}
	}
	if ok < len(links)*9/10 {
		t.Errorf("engineered probes traversed their link only %d/%d times", ok, len(links))
	}
}

func TestVMAddr(t *testing.T) {
	s := newSim(t)
	a := s.VMAddr("us-west1", 0, 1)
	b := s.VMAddr("us-west1", 0, 2)
	c := s.VMAddr("us-east1", 0, 1)
	if a == b || a == c {
		t.Error("VM addresses must be distinct")
	}
	if a.As4()[0] != 15 {
		t.Errorf("VM address %v outside cloud space", a)
	}
}

func TestHashUniformity(t *testing.T) {
	var w stats.Welford
	for i := uint64(0); i < 10000; i++ {
		w.Add(hash01(1, i))
	}
	if math.Abs(w.Mean()-0.5) > 0.02 {
		t.Errorf("hash01 mean = %v", w.Mean())
	}
	// Variance of U(0,1) is 1/12.
	if math.Abs(w.Variance()-1.0/12) > 0.01 {
		t.Errorf("hash01 variance = %v", w.Variance())
	}
}

func TestHashNormMoments(t *testing.T) {
	var w stats.Welford
	for i := uint64(0); i < 20000; i++ {
		w.Add(hashNorm(3, i))
	}
	if math.Abs(w.Mean()) > 0.03 {
		t.Errorf("hashNorm mean = %v", w.Mean())
	}
	if math.Abs(w.StdDev()-1) > 0.05 {
		t.Errorf("hashNorm sd = %v", w.StdDev())
	}
}

func TestDipShape(t *testing.T) {
	if d := dipShape(21, 21, 2); d != 1 {
		t.Errorf("dip at peak = %v", d)
	}
	if d := dipShape(9, 21, 2); d > 0.01 {
		t.Errorf("dip 12h away = %v", d)
	}
	// Wraparound: 23h vs peak 1h is only 2h apart.
	if d := dipShape(23, 1, 2); d < 0.5 {
		t.Errorf("circular dip = %v", d)
	}
}

// TestMeasureConcurrentPurity drives Measure from many goroutines against
// one Sim and checks every result matches a sequential baseline. Run with
// -race this enforces the "pure per call" contract the parallel campaign
// engine depends on.
func TestMeasureConcurrentPurity(t *testing.T) {
	s := newSim(t)
	servers := s.Topology().ServersInCountry("US")[:16]
	specs := make([]TestSpec, 0, len(servers)*4)
	for i, srv := range servers {
		for h := 0; h < 4; h++ {
			dir := Download
			if (i+h)%2 == 1 {
				dir = Upload
			}
			specs = append(specs, TestSpec{
				Region: "us-east1", Server: srv, Tier: bgp.Premium,
				Dir: dir, Time: t0.Add(time.Duration(h*6) * time.Hour),
			})
		}
	}
	want := make([]TestResult, len(specs))
	for i, spec := range specs {
		r, err := s.Measure(spec)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}
	var wg sync.WaitGroup
	errs := make([]error, len(specs))
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := range specs {
				r, err := s.Measure(specs[(i+g)%len(specs)])
				if err != nil {
					errs[g] = err
					return
				}
				w := want[(i+g)%len(specs)]
				if r.ThroughputMbps != w.ThroughputMbps || r.RTTms != w.RTTms || r.LossRate != w.LossRate {
					errs[g] = fmt.Errorf("spec %d: concurrent %+v != sequential %+v", (i+g)%len(specs), r, w)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestDirectionString(t *testing.T) {
	if Download.String() != "download" || Upload.String() != "upload" {
		t.Error("Direction.String broken")
	}
}
