package netsim

import (
	"sync/atomic"

	"github.com/clasp-measurement/clasp/internal/obs"
)

// Simulator telemetry (see DESIGN.md §8). The flow-cache counters are
// plain atomic adds; the Measure latency histogram is sampled so the two
// time.Now calls it needs are amortised — with metrics enabled, the warm
// Measure path stays within the 5% overhead budget recorded in
// BENCH_obs.json, and with metrics disabled every update is a single
// atomic load (0 allocs/op, pinned in internal/obs).
var (
	obsFlowHits       = obs.Default().Counter("netsim_flowcache_hits_total")
	obsFlowMisses     = obs.Default().Counter("netsim_flowcache_misses_total")
	obsMeasureLat     = obs.Default().Histogram("netsim_measure_latency_ns")
	obsInjectedFaults = obs.Default().Counter("netsim_injected_faults_total")

	measureSampleN atomic.Uint64
)

// measureSampleEvery is the latency-histogram sampling stride: one in every
// 16 Measure calls is timed. At ~620 ns/op steady state, amortised timer
// cost is ~3 ns; the histogram still sees thousands of samples per
// campaign-day.
const measureSampleEvery = 16

// sampleMeasure reports whether this Measure call should be timed.
func sampleMeasure() bool {
	if !obs.Enabled() {
		return false
	}
	return measureSampleN.Add(1)%measureSampleEvery == 0
}
