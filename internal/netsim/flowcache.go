package netsim

import (
	"sync"
	"time"

	"github.com/clasp-measurement/clasp/internal/bgp"
	"github.com/clasp-measurement/clasp/internal/topology"
)

// The per-flow route cache. A flow is one (region, server, tier, direction)
// combination; its routing decision and every time-invariant input to the
// RTT and bandwidth models are pure functions of (topology, seed), so they
// are resolved once and reused for the campaign's remaining samples. The
// cached fast path replays exactly the arithmetic of pathRTT/pathBandwidth
// — same operations in the same order — so a warmed Measure is bit-identical
// to a cold one; TestFlowCacheMatchesUncached pins this.

// flowKeyT identifies one measured flow.
type flowKeyT struct {
	region string
	server int
	tier   bgp.Tier
	dir    Direction
}

// flowEntry is the resolved routing decision plus interned static model
// inputs for one flow. Immutable once built.
type flowEntry struct {
	choice  bgp.EgressChoice
	flowKey uint64 // per-flow hash key (the server ID)

	// RTT model.
	baseRTT      float64 // static partial sum, accumulated in pathRTT's order
	hasDip       bool    // endpoint city and AS resolved
	endCong      topology.CongestionProfile
	endUTC       int
	regionFactor float64
	regionHash   uint64

	// Bandwidth model.
	srvCong      topology.CongestionProfile
	nbCong       topology.CongestionProfile
	srvUTC       int
	linkUTC      int
	linkID       int
	accessMbps   float64
	aggBase      float64 // download ISP-aggregation capacity before the dip
	headroom     float64 // tier-adjusted interconnect headroom
	baseLoss     float64 // tier-adjusted residual loss
	lossyPremium bool
	lossRate     float64
}

// flowHolder singleflights one flow's resolution.
type flowHolder struct {
	once sync.Once
	fe   *flowEntry
	err  error
}

// flowFor returns the cached flow entry for spec, resolving it on first use.
// Hits are lock-free; misses compute once per key.
func (s *Sim) flowFor(spec TestSpec) (*flowEntry, error) {
	key := flowKeyT{region: spec.Region, server: spec.Server.ID, tier: spec.Tier, dir: spec.Dir}
	v, ok := s.flows.Load(key)
	if ok {
		obsFlowHits.Inc()
	} else {
		obsFlowMisses.Inc()
		v, _ = s.flows.LoadOrStore(key, new(flowHolder))
	}
	h := v.(*flowHolder)
	h.once.Do(func() { h.fe, h.err = s.buildFlow(spec) })
	return h.fe, h.err
}

func (s *Sim) buildFlow(spec TestSpec) (*flowEntry, error) {
	srv := spec.Server
	var choice bgp.EgressChoice
	var err error
	if spec.Dir == Download {
		choice, err = s.router.IngressLink(spec.Region, srv.ASN, srv.City, spec.Tier)
	} else {
		choice, err = s.router.EgressLink(spec.Region, srv.ASN, srv.City, spec.Tier)
	}
	if err != nil {
		return nil, err
	}
	link := choice.Link

	regionFactor := s.cfg.RegionCongestionFactor[spec.Region]
	if regionFactor == 0 {
		regionFactor = 1
	}

	fe := &flowEntry{
		choice:       choice,
		flowKey:      uint64(srv.ID),
		baseRTT:      s.staticRTT(spec.Region, srv.ASN, srv.City, choice, spec.Tier),
		regionFactor: regionFactor,
		regionHash:   s.regionHash(spec.Region),
		srvUTC:       srv.UTCOffset,
		linkUTC:      link.UTCOffset,
		linkID:       link.ID,
		accessMbps:   srv.AccessMbps,
		headroom:     link.Headroom,
		baseLoss:     s.cfg.BaseLoss,
	}
	if endCity, ok := s.topo.CityOf(srv.City); ok {
		if endAS := s.topo.AS(srv.ASN); endAS != nil {
			fe.hasDip = true
			fe.endCong = endAS.Congestion
			fe.endUTC = endCity.UTCOffset
		}
	}
	fe.srvCong = s.topo.AS(srv.ASN).Congestion
	fe.nbCong = s.topo.AS(link.Neighbor).Congestion
	fe.aggBase = hashRange(s.cfg.Seed, 500, 1400, serverKey(srv.ID), 0xb2)
	if spec.Tier == bgp.Premium {
		fe.headroom *= s.cfg.PremiumAvailFactor
		fe.baseLoss += s.cfg.PremiumExtraLoss
		if link.Lossy {
			fe.lossyPremium = true
			fe.lossRate = link.LossRate
		}
	}
	return fe, nil
}

// rttAt is the cached counterpart of pathRTT: baseRTT already holds the
// static partial sum, so only the congestion dip and jitter remain.
func (fe *flowEntry) rttAt(s *Sim, t time.Time) float64 {
	rtt := fe.baseRTT
	if fe.hasDip {
		dip := s.congestionDip(fe.endCong, fe.flowKey, fe.endUTC, t, fe.regionFactor)
		rtt += dip * s.cfg.QueueDelayMaxMs
	}
	rtt *= clamp(1+0.03*hashNorm(s.cfg.Seed, fe.flowKey, dayOf(t), uint64(t.Hour()), 0xc1), 0.9, 1.15)
	return rtt
}

// bandwidthAt is the cached counterpart of pathBandwidth: it reproduces the
// segment walk's min/sum arithmetic without building the segment slice.
// vmDown/vmUp come from the spec because shaper experiments override them
// per test.
func (fe *flowEntry) bandwidthAt(s *Sim, spec TestSpec, t time.Time) (availMbps, loss float64) {
	if spec.Dir == Download {
		vmDown := spec.VMDownMbps
		if vmDown <= 0 {
			vmDown = s.cfg.VMDownMbps
		}
		ispDip := s.congestionDip(fe.srvCong, serverKey(spec.Server.ID), fe.srvUTC, t, fe.regionFactor)
		agg := fe.aggBase * (1 - ispDip)
		linkDip := s.congestionDip(fe.nbCong, linkKey(fe.linkID), fe.linkUTC, t, fe.regionFactor)
		if linkDip > 0.8 {
			linkDip = 0.8
		}
		linkLoss := fe.baseLoss + congestionLoss(fe.nbCong, linkDip)*0.25
		if fe.lossyPremium {
			linkLoss += fe.lossRate * hashRange(s.cfg.Seed, 0.8, 1.2, linkKey(fe.linkID), dayOf(t), 0xb3)
		}
		linkAvail := fe.headroom * (1 - linkDip)

		availMbps = fe.accessMbps
		if agg < availMbps {
			availMbps = agg
		}
		if linkAvail < availMbps {
			availMbps = linkAvail
		}
		if vmDown < availMbps {
			availMbps = vmDown
		}
		loss = congestionLoss(fe.srvCong, ispDip) + linkLoss
	} else {
		vmUp := spec.VMUpMbps
		if vmUp <= 0 {
			vmUp = s.cfg.VMUpMbps
		}
		linkDip := s.congestionDip(fe.nbCong, linkKey(fe.linkID)^0x5555, fe.linkUTC, t, fe.regionFactor*0.3)
		linkAvail := fe.headroom * (1 - 0.3*linkDip)

		availMbps = vmUp
		if linkAvail < availMbps {
			availMbps = linkAvail
		}
		if fe.accessMbps < availMbps {
			availMbps = fe.accessMbps
		}
		loss = fe.baseLoss
	}
	if loss == 0 {
		loss = s.cfg.BaseLoss
	}
	if loss > 0.9 {
		loss = 0.9
	}
	if availMbps < 0.1 {
		availMbps = 0.1
	}
	return availMbps, loss
}
