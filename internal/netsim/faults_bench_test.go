package netsim

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

// The fault-path benchmarks behind `make bench` / BENCH_faults.json.
// BenchmarkFaultsDisabledMeasureCtx is the one that matters for every
// fault-free campaign: MeasureCtx with a nil injector must cost the same as
// Measure — one branch, zero allocations (budget pinned by
// TestMeasureCtxDisabledPathZeroAlloc).

// BenchmarkFaultsDisabledMeasureCtx is BenchmarkMeasureWarm routed through
// the fault-aware entry point with injection disabled; the delta against
// MeasureWarm in BENCH_faults.json is the disabled-path overhead.
func BenchmarkFaultsDisabledMeasureCtx(b *testing.B) {
	topo, specs := benchSetup(b)
	sim := New(topo, nil, Config{Seed: 7})
	for _, sp := range specs {
		if _, err := sim.Measure(sp); err != nil {
			b.Fatal(err)
		}
	}
	ctx := context.Background()
	var next atomic.Int64
	b.ReportAllocs()
	b.SetParallelism(4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(next.Add(1)) % len(specs)
			if _, err := sim.MeasureCtx(ctx, specs[i], nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestMeasureCtxDisabledPathZeroAlloc enforces the disabled-path budget
// from BENCH_faults.json in the ordinary test suite: with no injector,
// MeasureCtx must not allocate beyond Measure itself (0 allocs/op warm).
func TestMeasureCtxDisabledPathZeroAlloc(t *testing.T) {
	s := newSim(t)
	srv := s.Topology().Servers()[1]
	spec := TestSpec{Region: "us-east1", Server: srv, Dir: Download, Time: t0.Add(5 * time.Hour)}
	ctx := context.Background()
	if _, err := s.MeasureCtx(ctx, spec, nil); err != nil { // warm caches
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := s.MeasureCtx(ctx, spec, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("disabled fault path allocates %.1f per op, budget is 0", allocs)
	}
}
