package netsim

import (
	"fmt"
	"net/netip"

	"github.com/clasp-measurement/clasp/internal/bgp"
	"github.com/clasp-measurement/clasp/internal/geo"
)

// Hop is one router interface on a forward path, as a traceroute probe
// would reveal it.
type Hop struct {
	IP    netip.Addr
	ASN   ASN // ground-truth owner (the prober must infer this)
	RTTms float64
	// LinkID is the interconnect this hop's interface belongs to, or -1.
	// The far-side hop of the interdomain link carries the link ID.
	LinkID int
}

// ForwardPath constructs the hop-level forward path from a region VM to a
// destination address, as revealed by TTL-limited probing. dst selects the
// routing: engineered probe targets pin their interconnect; other addresses
// follow the tier policy toward (asn, city).
//
// flowID provides paris-traceroute semantics: hops are stable for a fixed
// flowID; classic traceroute (varying flow IDs) can oscillate between
// intra-AS parallel paths.
func (s *Sim) ForwardPath(region string, dstIP netip.Addr, dstASN ASN, dstCity string, linkID int, tier bgp.Tier, flowID uint64) ([]Hop, error) {
	var choice bgp.EgressChoice
	var err error
	if linkID >= 0 {
		choice, err = s.router.EgressForProbe(region, &bgp.ProbeDest{ASN: dstASN, City: dstCity, LinkID: linkID})
	} else {
		choice, err = s.router.EgressLink(region, dstASN, dstCity, tier)
	}
	if err != nil {
		return nil, err
	}
	reg, ok := s.topo.Region(region)
	if !ok {
		return nil, fmt.Errorf("netsim: unknown region %q", region)
	}
	regCoord, _ := s.topo.CityCoord(reg.City)
	linkCoord, ok := s.topo.CityCoord(choice.Link.City)
	if !ok {
		linkCoord = regCoord
	}
	dstCoord, ok := s.topo.CityCoord(dstCity)
	if !ok {
		dstCoord = linkCoord
	}

	var hops []Hop
	cloud := s.topo.Cloud.ASN
	add := func(ip netip.Addr, asn ASN, rtt float64, link int) {
		hops = append(hops, Hop{IP: ip, ASN: asn, RTTms: rtt, LinkID: link})
	}

	// Intra-cloud hops: first-hop gateway and a backbone router. The
	// backbone router is chosen per flow ID among parallel LAG members,
	// which is what paris-traceroute keeps stable.
	gw := cloudRouterIP(1, uint64(s.regionHash(region))%250)
	add(gw, cloud, 0.3, -1)
	lag := flowID % 4
	bb := cloudRouterIP(2, uint64(s.regionHash(region))%60*4+lag)
	wanMs := geo.RTTMs(regCoord, linkCoord) * 0.82
	add(bb, cloud, 0.6+wanMs*0.5, -1)

	// The cloud border router answers with its inbound (WAN-facing)
	// interface; the /30 interconnect interface on the near side never
	// appears in a forward traceroute.
	add(cloudRouterIP(3, uint64(choice.Link.ID)), cloud, 1.0+wanMs, -1)
	// Far side: the neighbor's border router replies with the
	// interconnect interface. This is what bdrmap must identify.
	add(choice.Link.FarIP, choice.Link.Neighbor, 1.3+wanMs, choice.Link.ID)

	// Intra-neighbor and onward AS hops toward the destination.
	path := choice.Path
	// path[0] = cloud, path[1] = neighbor, ..., path[len-1] = dst AS.
	remaining := geo.RTTMs(linkCoord, dstCoord)
	cum := 1.6 + wanMs
	nHops := len(path) - 1
	if nHops == 0 {
		nHops = 1
	}
	step := remaining / float64(nHops+1)
	for i := 1; i < len(path); i++ {
		asn := path[i]
		a := s.topo.AS(asn)
		if a == nil {
			continue
		}
		cum += step
		if i > 1 || len(path) == 2 {
			// A core router inside this AS. Addresses come from the
			// .0.130-249 band, which never collides with border-router
			// loopbacks (.0.1+), servers (.16+) or link subnets (.254+).
			rid := (uint64(asn) + flowID%2) % 120
			add(loopbackIP(a.Prefix, 0, byte(130+rid)), asn, cum, -1)
		}
	}
	// Destination itself.
	cum += step
	add(dstIP, dstASN, cum, -1)
	return hops, nil
}

// VMAddr returns the address of a measurement VM instance in a region zone.
// VM addresses stay inside the cloud's announced 15.0.0.0/10.
func (s *Sim) VMAddr(region string, zoneIdx, vmIdx int) netip.Addr {
	rk := s.regionHash(region) % 40
	return netip.AddrFrom4([4]byte{15, byte(10 + rk), byte(zoneIdx), byte(10 + vmIdx)})
}

func cloudRouterIP(tier byte, n uint64) netip.Addr {
	return netip.AddrFrom4([4]byte{15, tier, byte(n / 250), byte(n%250 + 1)})
}

func loopbackIP(prefix netip.Prefix, third, fourth byte) netip.Addr {
	b := prefix.Addr().As4()
	return netip.AddrFrom4([4]byte{b[0], b[1], third, fourth})
}
