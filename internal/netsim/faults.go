package netsim

import (
	"context"
	"fmt"
)

// TestFaults injects failures into measurement execution. The orchestrator
// passes the campaign's injector (internal/faults) here; implementations
// must be deterministic in the spec — including spec.Attempt — and safe
// for concurrent use, or the engine's bit-identical-results guarantee
// breaks. BeforeMeasure may block to model slow or hung tests, bounded by
// ctx; a non-nil error fails the test without running it.
type TestFaults interface {
	BeforeMeasure(ctx context.Context, spec TestSpec) error
}

// MeasureCtx runs Measure under fault injection: f may fail the test, delay
// it (bounded by ctx), or pass it through untouched. A nil f makes
// MeasureCtx equivalent to Measure — the disabled path adds one branch and
// zero allocations (BenchmarkFaultsDisabledMeasureCtx pins this), so the
// orchestrator can call it unconditionally.
func (s *Sim) MeasureCtx(ctx context.Context, spec TestSpec, f TestFaults) (TestResult, error) {
	if f != nil && spec.Server != nil {
		if ctx == nil {
			ctx = context.Background()
		}
		if err := f.BeforeMeasure(ctx, spec); err != nil {
			obsInjectedFaults.Inc()
			return TestResult{}, fmt.Errorf("netsim: server %d %s/%s: %w", spec.Server.ID, spec.Tier, spec.Dir, err)
		}
	}
	return s.Measure(spec)
}
