package netsim

// Deterministic hash-based randomness. Every stochastic choice in the
// simulator is a pure function of (seed, key...), so a campaign replayed
// with the same seed produces identical measurements regardless of
// execution order or concurrency.

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// hash64 is FNV-1a over the seed and keys.
func hash64(seed int64, keys ...uint64) uint64 {
	h := uint64(fnvOffset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= fnvPrime
		}
	}
	mix(uint64(seed))
	for _, k := range keys {
		mix(k)
	}
	// Final avalanche (splitmix64 finaliser) to decorrelate nearby keys.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// hash01 maps (seed, keys) to a uniform float64 in [0, 1).
func hash01(seed int64, keys ...uint64) float64 {
	return float64(hash64(seed, keys...)>>11) / (1 << 53)
}

// hashRange maps (seed, keys) to a uniform float64 in [lo, hi).
func hashRange(seed int64, lo, hi float64, keys ...uint64) float64 {
	return lo + (hi-lo)*hash01(seed, keys...)
}

// hashNorm maps (seed, keys) to an approximately standard normal value
// using an Irwin-Hall sum of four uniforms.
func hashNorm(seed int64, keys ...uint64) float64 {
	s := 0.0
	for i := uint64(0); i < 4; i++ {
		s += hash01(seed, append(keys, 0x9e3779b97f4a7c15+i)...)
	}
	// Sum of 4 U(0,1): mean 2, variance 4/12 -> scale to unit variance.
	return (s - 2) / 0.5773502691896258
}
