package netsim

// Deterministic hash-based randomness. Every stochastic choice in the
// simulator is a pure function of (seed, key...), so a campaign replayed
// with the same seed produces identical measurements regardless of
// execution order or concurrency.

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// fnvMix folds one 64-bit value into an FNV-1a state byte by byte,
// low byte first. Unrolled: this is the simulator's innermost loop.
func fnvMix(h, v uint64) uint64 {
	h = (h ^ (v & 0xff)) * fnvPrime
	h = (h ^ ((v >> 8) & 0xff)) * fnvPrime
	h = (h ^ ((v >> 16) & 0xff)) * fnvPrime
	h = (h ^ ((v >> 24) & 0xff)) * fnvPrime
	h = (h ^ ((v >> 32) & 0xff)) * fnvPrime
	h = (h ^ ((v >> 40) & 0xff)) * fnvPrime
	h = (h ^ ((v >> 48) & 0xff)) * fnvPrime
	h = (h ^ ((v >> 56) & 0xff)) * fnvPrime
	return h
}

// fnvFinal applies the splitmix64 finaliser to decorrelate nearby keys.
func fnvFinal(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// hash64 is FNV-1a over the seed and keys.
func hash64(seed int64, keys ...uint64) uint64 {
	h := fnvMix(fnvOffset, uint64(seed))
	for _, k := range keys {
		h = fnvMix(h, k)
	}
	return fnvFinal(h)
}

// hash01 maps (seed, keys) to a uniform float64 in [0, 1).
func hash01(seed int64, keys ...uint64) float64 {
	return float64(hash64(seed, keys...)>>11) / (1 << 53)
}

// hashRange maps (seed, keys) to a uniform float64 in [lo, hi).
func hashRange(seed int64, lo, hi float64, keys ...uint64) float64 {
	return lo + (hi-lo)*hash01(seed, keys...)
}

// hashNorm maps (seed, keys) to an approximately standard normal value
// using an Irwin-Hall sum of four uniforms. The four draws share the
// (seed, keys) FNV prefix and differ only in a trailing salt, so the
// prefix state is folded once and re-salted per draw — the same value
// sequence hash01(seed, keys..., salt_i) would produce, at a quarter of
// the mixing work and with no allocation.
func hashNorm(seed int64, keys ...uint64) float64 {
	h := fnvMix(fnvOffset, uint64(seed))
	for _, k := range keys {
		h = fnvMix(h, k)
	}
	s := 0.0
	for i := uint64(0); i < 4; i++ {
		u := fnvFinal(fnvMix(h, 0x9e3779b97f4a7c15+i))
		s += float64(u>>11) / (1 << 53)
	}
	// Sum of 4 U(0,1): mean 2, variance 4/12 -> scale to unit variance.
	return (s - 2) / 0.5773502691896258
}
