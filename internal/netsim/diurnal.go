package netsim

import (
	"math"
	"time"

	"github.com/clasp-measurement/clasp/internal/topology"
)

// The diurnal load model. Access networks carry an evening traffic peak
// (the FCC's 7-11 pm window); congestion-prone networks realise a deep
// capacity dip on a fraction of days, centred near their profile's peak
// hour with some day-to-day drift. Daytime-pattern networks (the Cox case
// in §4.2) dip during working hours instead, over a wider window.

// dayOf returns a stable integer day index for hashing.
func dayOf(t time.Time) uint64 {
	return uint64(t.Unix() / 86400)
}

// hourOfDayLocal converts t (UTC) to fractional local hour for a UTC offset.
func hourOfDayLocal(t time.Time, utcOffset int) float64 {
	h := float64(t.Hour()) + float64(t.Minute())/60 + float64(utcOffset)
	for h < 0 {
		h += 24
	}
	for h >= 24 {
		h -= 24
	}
	return h
}

// circularDelta returns the shortest signed distance between two hours on
// the 24h circle.
func circularDelta(a, b float64) float64 {
	d := a - b
	for d > 12 {
		d -= 24
	}
	for d < -12 {
		d += 24
	}
	return d
}

// dipShape models the bell-shaped congestion window around the peak hour.
func dipShape(localHour, peakHour, sigma float64) float64 {
	d := circularDelta(localHour, peakHour)
	return math.Exp(-d * d / (2 * sigma * sigma))
}

// congestionDip returns the fractional reduction in available bandwidth for
// an entity (keyed by entityKey) with the given profile, at UTC time t in a
// city with the given UTC offset. regionFactor scales the daily congestion
// probability (regions differ, Fig. 2).
func (s *Sim) congestionDip(profile topology.CongestionProfile, entityKey uint64, utcOffset int, t time.Time, regionFactor float64) float64 {
	day := dayOf(t)
	local := hourOfDayLocal(t, utcOffset)

	// Does this entity realise a congestion event today?
	dayProb := s.cfg.CongestionDayProbBase
	if profile.Prone {
		dayProb = s.cfg.CongestionDayProbProne
	}
	dayProb *= regionFactor
	congestedToday := hash01(s.cfg.Seed, entityKey, day, 0xd1) < dayProb

	// The realised peak drifts several hours day to day, so a server's
	// hour-of-day congestion probability stays moderate (Fig. 6 shows
	// probabilities mostly below 0.1-0.2 even for the worst servers).
	peak := float64(profile.PeakHourLocal) + hashRange(s.cfg.Seed, -5, 5, entityKey, day, 0xd2)
	sigma := s.cfg.EveningSigmaHours
	if profile.Daytime {
		sigma = s.cfg.DaytimeSigmaHours
	}
	shape := dipShape(local, peak, sigma)

	depth := profile.PeakDepth * s.cfg.OffDayDepthFactor
	if congestedToday {
		depth = profile.PeakDepth * hashRange(s.cfg.Seed, 0.85, 1.1, entityKey, day, 0xd3)
	}
	dip := depth * shape
	if dip < 0 {
		dip = 0
	}
	if dip > 0.97 {
		dip = 0.97
	}
	return dip
}

// congestionLoss returns the extra packet loss induced by a realised dip.
// Loss grows superlinearly as the dip deepens (queues overflow).
func congestionLoss(profile topology.CongestionProfile, dip float64) float64 {
	if profile.PeakDepth <= 0 {
		return 0
	}
	frac := dip / profile.PeakDepth // 0..~1.1 position within the event
	if frac < 0.5 {
		return 0
	}
	x := (frac - 0.5) / 0.5
	return profile.LossAtPeak * x * x
}
