package netsim

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/clasp-measurement/clasp/internal/bgp"
	"github.com/clasp-measurement/clasp/internal/obs"
	"github.com/clasp-measurement/clasp/internal/topology"
)

// The hot-path benchmarks behind `make bench` / BENCH_hotpath.json.
// BenchmarkMeasureWarm is the steady-state campaign cost: routing and flow
// caches populated, 4 concurrent workers per proc (the shape runRound
// produces at Parallelism >= 4).

var (
	benchOnce  sync.Once
	benchTopo  *topology.Topology
	benchSpecs []TestSpec
)

func benchSetup(b *testing.B) (*topology.Topology, []TestSpec) {
	b.Helper()
	benchOnce.Do(func() {
		topo, err := topology.New(topology.DefaultConfig())
		if err != nil {
			panic(err)
		}
		benchTopo = topo
		start := time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)
		servers := topo.Servers()
		if len(servers) > 24 {
			servers = servers[:24]
		}
		i := 0
		for _, srv := range servers {
			for _, tier := range []bgp.Tier{bgp.Premium, bgp.Standard} {
				for _, dir := range []Direction{Download, Upload} {
					benchSpecs = append(benchSpecs, TestSpec{
						Region: "us-east1", Server: srv, Tier: tier, Dir: dir,
						Time: start.Add(time.Duration(i%48) * time.Hour),
					})
					i++
				}
			}
		}
	})
	if benchTopo == nil {
		b.Fatal("bench topology failed to build")
	}
	return benchTopo, benchSpecs
}

// BenchmarkMeasureCold includes route-tree computation: a fresh router and
// simulator per iteration, so every Measure pays the full path resolution.
func BenchmarkMeasureCold(b *testing.B) {
	topo, specs := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim := New(topo, nil, Config{Seed: 7})
		if _, err := sim.Measure(specs[i%len(specs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMeasureWarm is the steady-state cost after the first round: all
// routing state cached, four goroutines per proc measuring concurrently.
func BenchmarkMeasureWarm(b *testing.B) {
	topo, specs := benchSetup(b)
	sim := New(topo, nil, Config{Seed: 7})
	for _, sp := range specs {
		if _, err := sim.Measure(sp); err != nil {
			b.Fatal(err)
		}
	}
	var next atomic.Int64
	b.ReportAllocs()
	b.SetParallelism(4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(next.Add(1)) % len(specs)
			if _, err := sim.Measure(specs[i]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMeasureWarmObs is BenchmarkMeasureWarm with the obs registry
// enabled: the delta between the two is the metrics-enabled overhead on the
// steady-state campaign path, recorded side by side in BENCH_obs.json
// (budget: within 5% — the latency histogram's 1-in-16 sampling and the
// flow-cache counter atomics are sized for that).
func BenchmarkMeasureWarmObs(b *testing.B) {
	topo, specs := benchSetup(b)
	sim := New(topo, nil, Config{Seed: 7})
	for _, sp := range specs {
		if _, err := sim.Measure(sp); err != nil {
			b.Fatal(err)
		}
	}
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	var next atomic.Int64
	b.ReportAllocs()
	b.SetParallelism(4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(next.Add(1)) % len(specs)
			if _, err := sim.Measure(specs[i]); err != nil {
				b.Fatal(err)
			}
		}
	})
}
