package faults

// BreakerState is a circuit-breaker state.
type BreakerState int

// Circuit-breaker states. Closed admits traffic; Open sheds a whole round
// (the orchestrator drops its tests with explicit accounting); HalfOpen
// admits one probe round whose outcome closes or reopens the breaker.
const (
	Closed BreakerState = iota
	HalfOpen
	Open
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case HalfOpen:
		return "half-open"
	default:
		return "open"
	}
}

// Breaker is a round-granular circuit breaker for one region's campaign.
// State only changes at round boundaries, driven by order-independent
// per-round counts, so campaigns remain deterministic at any parallelism
// (no failure-arrival races can flip the trip point). It is used from one
// campaign goroutine and needs no locking; all methods are safe on a nil
// receiver (a nil breaker never opens).
type Breaker struct {
	failFrac   float64
	minSamples int
	cooldown   int

	state      BreakerState
	openRounds int // cooldown rounds remaining while Open
}

// NewBreaker builds a breaker that opens when a round drops at least
// failFrac of its tasks (with at least minSamples tasks scheduled) and
// stays open for cooldown rounds before probing.
func NewBreaker(failFrac float64, minSamples, cooldown int) *Breaker {
	if failFrac <= 0 {
		failFrac = 0.5
	}
	if minSamples <= 0 {
		minSamples = 1
	}
	if cooldown <= 0 {
		cooldown = 1
	}
	return &Breaker{failFrac: failFrac, minSamples: minSamples, cooldown: cooldown}
}

// State returns the current state.
func (b *Breaker) State() BreakerState {
	if b == nil {
		return Closed
	}
	return b.state
}

// Allow reports whether the next round may execute. False means the caller
// should shed the round (dropping its tasks) and report it via
// ObserveRound(dropped, 0 executed) — by convention ObserveRound with
// total == 0 while Open advances the cooldown.
func (b *Breaker) Allow() bool { return b.State() != Open }

// ObserveRound ingests one round boundary: failed is the number of tasks
// that ended without a result (dropped), total the number that executed.
// While Open, call it with total == 0 for each shed round to advance the
// cooldown toward HalfOpen.
func (b *Breaker) ObserveRound(failed, total int) {
	if b == nil {
		return
	}
	switch b.state {
	case Open:
		b.openRounds--
		if b.openRounds <= 0 {
			b.state = HalfOpen
		}
	case HalfOpen:
		if total == 0 {
			return
		}
		if float64(failed) >= b.failFrac*float64(total) {
			b.trip()
		} else {
			b.state = Closed
		}
	default: // Closed
		if total >= b.minSamples && float64(failed) >= b.failFrac*float64(total) {
			b.trip()
		}
	}
}

func (b *Breaker) trip() {
	b.state = Open
	b.openRounds = b.cooldown
}

// BreakerSnapshot is the serializable dynamic state of a Breaker — the
// campaign checkpoint persists it so a resumed run re-enters the exact
// breaker state (including mid-cooldown) the killed run was in. The static
// configuration (fail fraction, min samples, cooldown length) is not part
// of the snapshot: it is re-derived from the fault profile on resume.
type BreakerSnapshot struct {
	State      BreakerState `json:"state"`
	OpenRounds int          `json:"openRounds"`
}

// Snapshot captures the breaker's dynamic state. Safe on a nil receiver
// (returns the zero snapshot: Closed, no cooldown).
func (b *Breaker) Snapshot() BreakerSnapshot {
	if b == nil {
		return BreakerSnapshot{}
	}
	return BreakerSnapshot{State: b.state, OpenRounds: b.openRounds}
}

// Restore re-enters a snapshotted state. Safe on a nil receiver (no-op), so
// resume paths need not branch on whether the profile has a breaker.
func (b *Breaker) Restore(s BreakerSnapshot) {
	if b == nil {
		return
	}
	b.state = s.State
	b.openRounds = s.OpenRounds
}
