package faults

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/clasp-measurement/clasp/internal/netsim"
	"github.com/clasp-measurement/clasp/internal/topology"
)

func activeProfile() Profile {
	return Profile{
		Name:             "test",
		VMCreateFailProb: 0.3,
		VMPreemptProb:    0.1,
		TransientErrProb: 0.2,
		HangProb:         0.01,
		TestTimeout:      5 * time.Millisecond,
		MaxRetries:       3,
		BackoffBase:      time.Millisecond,
		BackoffCap:       4 * time.Millisecond,
	}
}

func TestNamedProfiles(t *testing.T) {
	p, err := Named("")
	if err != nil || p.Name != "none" {
		t.Errorf(`Named("") = %+v, %v; want the none profile`, p, err)
	}
	if p.Active() {
		t.Error("none profile reports Active")
	}
	for _, name := range []string{"flaky-vm", "congested-server"} {
		p, err := Named(name)
		if err != nil {
			t.Fatalf("Named(%q): %v", name, err)
		}
		if !p.Active() {
			t.Errorf("profile %q is not active", name)
		}
		if p.Name != name {
			t.Errorf("profile %q self-reports as %q", name, p.Name)
		}
	}
	if _, err := Named("no-such-profile"); err == nil {
		t.Error("unknown profile name did not error")
	}
	names := Names()
	if len(names) != 4 {
		t.Fatalf("Names() = %v, want 4 canned profiles", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names() not sorted: %v", names)
		}
	}
}

func TestNormalizedFillsPolicyDefaults(t *testing.T) {
	p := Profile{TransientErrProb: 0.5}.Normalized()
	if p.TestTimeout <= 0 || p.MaxRetries <= 0 || p.BackoffBase <= 0 ||
		p.BackoffCap <= 0 || p.BreakerFailFrac <= 0 ||
		p.BreakerMinSamples <= 0 || p.BreakerCooldown <= 0 {
		t.Errorf("Normalized left zero policy fields: %+v", p)
	}
}

func TestErrorRetryable(t *testing.T) {
	cases := []struct {
		kind Kind
		want bool
	}{
		{KindVMCreate, true},
		{KindTransient, true},
		{KindHang, true},
		{KindUnavailable, false},
	}
	for _, c := range cases {
		e := &Error{Kind: c.kind, Site: "x"}
		if e.Retryable() != c.want {
			t.Errorf("(%s).Retryable() = %v, want %v", c.kind, e.Retryable(), c.want)
		}
	}
}

func TestAsErrorUnwrapsChains(t *testing.T) {
	inner := &Error{Kind: KindTransient, Site: "server 3"}
	wrapped := errors.Join(errors.New("outer"), inner)
	fe, ok := AsError(wrapped)
	if !ok || fe.Kind != KindTransient {
		t.Errorf("AsError(wrapped) = %v, %v; want the inner fault", fe, ok)
	}
	if _, ok := AsError(errors.New("plain")); ok {
		t.Error("AsError matched a non-fault error")
	}
}

func TestNewInjectorNilForInactiveProfiles(t *testing.T) {
	if in := NewInjector(Profile{}, 1); in != nil {
		t.Error("zero profile produced a non-nil injector")
	}
	none, _ := Named("none")
	if in := NewInjector(none, 1); in != nil {
		t.Error("none profile produced a non-nil injector")
	}
	if in := NewInjector(activeProfile(), 1); in == nil {
		t.Error("active profile produced a nil injector")
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if err := in.FailVMCreate("vm", 0); err != nil {
		t.Errorf("nil FailVMCreate = %v", err)
	}
	if in.PreemptVM("vm", 3) {
		t.Error("nil PreemptVM preempted")
	}
	spec := netsim.TestSpec{Server: &topology.Server{ID: 1}}
	if err := in.BeforeMeasure(context.Background(), spec); err != nil {
		t.Errorf("nil BeforeMeasure = %v", err)
	}
	if d := in.Backoff(2, 7); d != 0 {
		t.Errorf("nil Backoff = %v, want 0", d)
	}
}

// TestDecisionsDeterministicPerSeed pins the package's core invariant: all
// decisions are pure functions of (seed, site, keys), so two injectors with
// the same seed agree everywhere and a different seed disagrees somewhere.
func TestDecisionsDeterministicPerSeed(t *testing.T) {
	prof := activeProfile()
	a := NewInjector(prof, 42)
	b := NewInjector(prof, 42)
	c := NewInjector(prof, 43)

	sameVM, sameCreate, diff := 0, 0, 0
	for vm := 0; vm < 20; vm++ {
		name := "clasp-us-east1-premium-" + string(rune('a'+vm))
		for hour := 0; hour < 48; hour++ {
			if a.PreemptVM(name, hour) != b.PreemptVM(name, hour) {
				t.Fatalf("same-seed PreemptVM diverged at vm=%d hour=%d", vm, hour)
			}
			if a.PreemptVM(name, hour) {
				sameVM++
			}
			if a.PreemptVM(name, hour) != c.PreemptVM(name, hour) {
				diff++
			}
		}
		for attempt := 0; attempt < 4; attempt++ {
			ea := a.FailVMCreate(name, attempt)
			eb := b.FailVMCreate(name, attempt)
			if (ea == nil) != (eb == nil) {
				t.Fatalf("same-seed FailVMCreate diverged at vm=%d attempt=%d", vm, attempt)
			}
			if ea != nil {
				sameCreate++
			}
		}
	}
	if sameVM == 0 || sameCreate == 0 {
		t.Errorf("no faults drawn at all (preempts=%d creates=%d); probabilities broken", sameVM, sameCreate)
	}
	if diff == 0 {
		t.Error("different seeds produced identical decision streams")
	}
}

// TestBackoffSchedule pins the retry schedule: deterministic per (seed,
// keys), capped-exponential growth, and never above BackoffCap.
func TestBackoffSchedule(t *testing.T) {
	prof := activeProfile()
	a := NewInjector(prof, 7)
	b := NewInjector(prof, 7)

	var sched []time.Duration
	for attempt := 0; attempt < 8; attempt++ {
		da := a.Backoff(attempt, 11, 22)
		db := b.Backoff(attempt, 11, 22)
		if da != db {
			t.Fatalf("same-seed schedules diverge at attempt %d: %v vs %v", attempt, da, db)
		}
		if da <= 0 {
			t.Errorf("attempt %d: non-positive delay %v", attempt, da)
		}
		if da > prof.BackoffCap {
			t.Errorf("attempt %d: delay %v exceeds cap %v", attempt, da, prof.BackoffCap)
		}
		// Jitter scales base·2^attempt into [0.5, 1.0), cap applied after.
		exp := prof.BackoffBase << uint(attempt)
		if exp > prof.BackoffCap {
			exp = prof.BackoffCap
		}
		if da < exp/2 {
			t.Errorf("attempt %d: delay %v below jitter floor %v", attempt, da, exp/2)
		}
		sched = append(sched, da)
	}
	// Huge attempt numbers must not overflow the shift into a negative or
	// zero delay.
	if d := a.Backoff(200, 11, 22); d <= 0 || d > prof.BackoffCap {
		t.Errorf("Backoff(200) = %v, want within (0, %v]", d, prof.BackoffCap)
	}
	// Different key sets draw different jitter somewhere in the schedule.
	same := true
	for attempt := range sched {
		if a.Backoff(attempt, 33, 44) != sched[attempt] {
			same = false
			break
		}
	}
	if same {
		t.Error("backoff schedule ignores site keys")
	}
}

func TestBeforeMeasureUnavailableWindowIgnoresAttempt(t *testing.T) {
	prof := activeProfile()
	prof.ServerUnavailProb = 1 // every (server, hour) window is down
	in := NewInjector(prof, 5)
	spec := netsim.TestSpec{
		Region: "us-east1",
		Server: &topology.Server{ID: 9},
		Time:   time.Date(2020, 5, 1, 3, 0, 0, 0, time.UTC),
	}
	for attempt := 0; attempt < 4; attempt++ {
		spec.Attempt = attempt
		err := in.BeforeMeasure(context.Background(), spec)
		fe, ok := AsError(err)
		if !ok || fe.Kind != KindUnavailable {
			t.Fatalf("attempt %d: got %v, want an unavailable fault", attempt, err)
		}
		if fe.Retryable() {
			t.Fatal("unavailability window reported retryable")
		}
	}
}

func TestBeforeMeasureHangBlocksUntilDeadline(t *testing.T) {
	prof := activeProfile()
	prof.ServerUnavailProb = 0
	prof.HangProb = 1
	in := NewInjector(prof, 5)
	spec := netsim.TestSpec{
		Region: "us-east1",
		Server: &topology.Server{ID: 2},
		Time:   time.Date(2020, 5, 1, 7, 0, 0, 0, time.UTC),
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := in.BeforeMeasure(ctx, spec)
	if fe, ok := AsError(err); !ok || fe.Kind != KindHang {
		t.Fatalf("got %v, want a hang fault", err)
	}
	if waited := time.Since(start); waited < 10*time.Millisecond {
		t.Errorf("hang returned after %v, before the %v deadline", waited, 10*time.Millisecond)
	}
}

func TestBeforeMeasureSlowAddsLatencyThenPasses(t *testing.T) {
	prof := Profile{
		Name:        "slow-only",
		SlowProb:    1,
		SlowLatency: 5 * time.Millisecond,
	}
	in := NewInjector(prof, 5)
	spec := netsim.TestSpec{
		Region: "us-east1",
		Server: &topology.Server{ID: 4},
		Time:   time.Date(2020, 5, 1, 9, 0, 0, 0, time.UTC),
	}
	start := time.Now()
	if err := in.BeforeMeasure(context.Background(), spec); err != nil {
		t.Fatalf("slow test failed: %v", err)
	}
	if waited := time.Since(start); waited < 5*time.Millisecond {
		t.Errorf("slow test waited only %v, want >= %v", waited, 5*time.Millisecond)
	}
	// A deadline shorter than the latency converts the slow test to a hang.
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	err := in.BeforeMeasure(ctx, spec)
	if fe, ok := AsError(err); !ok || fe.Kind != KindHang {
		t.Errorf("slow test under a short deadline: got %v, want a hang fault", err)
	}
}

// TestTransientRetryCanSucceed pins the attempt-keyed redraw: a spec whose
// first attempt fails must deterministically succeed at the same later
// attempt on every rerun.
func TestTransientRetryCanSucceed(t *testing.T) {
	prof := Profile{Name: "transient-only", TransientErrProb: 0.5}
	in := NewInjector(prof, 11)
	succeedsAt := func(serverID int) int {
		spec := netsim.TestSpec{
			Region: "us-east1",
			Server: &topology.Server{ID: serverID},
			Time:   time.Date(2020, 5, 1, 12, 0, 0, 0, time.UTC),
		}
		for attempt := 0; attempt < 16; attempt++ {
			spec.Attempt = attempt
			if in.BeforeMeasure(context.Background(), spec) == nil {
				return attempt
			}
		}
		return -1
	}
	sawRetrySuccess := false
	for id := 0; id < 32; id++ {
		first := succeedsAt(id)
		if first < 0 {
			continue // pathologically unlucky server; others cover the case
		}
		if again := succeedsAt(id); again != first {
			t.Fatalf("server %d: success attempt moved %d -> %d across reruns", id, first, again)
		}
		if first > 0 {
			sawRetrySuccess = true
		}
	}
	if !sawRetrySuccess {
		t.Error("no server needed a retry at p=0.5; attempt keying broken")
	}
}
