package faults

import "testing"

func TestBreakerNilSafe(t *testing.T) {
	var b *Breaker
	if !b.Allow() || b.State() != Closed {
		t.Error("nil breaker is not permanently closed")
	}
	b.ObserveRound(100, 100) // must not panic
	if !b.Allow() {
		t.Error("nil breaker opened")
	}
}

func TestBreakerStateStrings(t *testing.T) {
	if Closed.String() != "closed" || HalfOpen.String() != "half-open" || Open.String() != "open" {
		t.Errorf("state strings: %v %v %v", Closed, HalfOpen, Open)
	}
}

func TestBreakerTripAndRecover(t *testing.T) {
	b := NewBreaker(0.5, 10, 2)

	// Below the sample floor: even a fully failed round cannot trip.
	b.ObserveRound(5, 5)
	if b.State() != Closed {
		t.Fatalf("tripped below minSamples: %v", b.State())
	}
	// At the floor but under the failure fraction: stays closed.
	b.ObserveRound(4, 10)
	if b.State() != Closed {
		t.Fatalf("tripped under failFrac: %v", b.State())
	}
	// At the floor and fraction: trips.
	b.ObserveRound(5, 10)
	if b.State() != Open || b.Allow() {
		t.Fatalf("did not trip at failFrac: %v", b.State())
	}

	// Two shed rounds of cooldown, then the half-open probe.
	b.ObserveRound(10, 0)
	if b.State() != Open {
		t.Fatalf("cooldown ended after 1 of 2 rounds: %v", b.State())
	}
	b.ObserveRound(10, 0)
	if b.State() != HalfOpen || !b.Allow() {
		t.Fatalf("not half-open after cooldown: %v", b.State())
	}

	// An empty probe round is no evidence; the breaker stays half-open.
	b.ObserveRound(0, 0)
	if b.State() != HalfOpen {
		t.Fatalf("empty probe round moved state: %v", b.State())
	}

	// A failed probe reopens for a fresh cooldown...
	b.ObserveRound(10, 10)
	if b.State() != Open {
		t.Fatalf("failed probe did not reopen: %v", b.State())
	}
	b.ObserveRound(10, 0)
	b.ObserveRound(10, 0)
	if b.State() != HalfOpen {
		t.Fatalf("second cooldown did not end: %v", b.State())
	}
	// ...and a healthy probe closes it. A half-open probe needs no
	// minSamples: any executed round with a healthy failure fraction closes.
	b.ObserveRound(0, 3)
	if b.State() != Closed || !b.Allow() {
		t.Fatalf("healthy probe did not close: %v", b.State())
	}
}

func TestNewBreakerGuardsDegenerateConfig(t *testing.T) {
	b := NewBreaker(0, 0, 0)
	// Defaults: fail fraction 0.5, one-sample floor, one-round cooldown.
	b.ObserveRound(1, 1)
	if b.State() != Open {
		t.Fatalf("defaulted breaker did not trip on a fully failed round: %v", b.State())
	}
	b.ObserveRound(1, 0)
	if b.State() != HalfOpen {
		t.Fatalf("defaulted cooldown is not one round: %v", b.State())
	}
}
