// Package faults is CLASP's deterministic fault-injection layer. The
// paper's month-long campaigns on real GCP survived VM preemptions, failed
// speed tests and unreachable servers (failed tests are discarded and
// VM-hours re-planned, §3.2); this package injects those failures into the
// simulated substrate so the orchestrator's resilience machinery — context
// timeouts, capped-exponential retries, a per-region circuit breaker and
// partial-round accounting — is exercised and testable.
//
// # Determinism invariant
//
// Every injection decision is a pure function of (campaign seed, injection
// site, site keys): the injector draws from a splitmix64-style finaliser
// chain — the same idiom as the orchestrator's per-hour schedule seeds —
// and holds no mutable state. Two runs with the same seed therefore fail
// in exactly the same places, retry on exactly the same schedule, and drop
// exactly the same tests, at any parallelism. Retry-sensitive sites
// (transient errors, hangs, VM creation) key on the attempt number so a
// retry can deterministically succeed; a server-unavailability window keys
// on (server, hour) only, so retrying inside the window always fails and
// callers drop the test instead.
//
// With no active profile the injector is nil and every consumer skips the
// fault path entirely; campaign results are bit-identical to a fault-free
// build (pinned by TestFaultProfileNoneBitIdentical in the orchestrator
// package).
package faults

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/clasp-measurement/clasp/internal/netsim"
)

// Kind enumerates the injectable fault classes.
type Kind uint8

// Fault classes.
const (
	// KindVMCreate rejects a CreateVM attempt (control-plane error or
	// quota blip). Keyed per attempt, so retries can succeed.
	KindVMCreate Kind = iota + 1
	// KindTransient fails one speed test execution (connection reset,
	// protocol error). Keyed per attempt, so retries can succeed.
	KindTransient
	// KindUnavailable marks a server unreachable for a whole campaign
	// hour. Keyed by (server, hour) only: retries inside the window keep
	// failing, so callers should drop the test instead of retrying.
	KindUnavailable
	// KindHang blocks a test until its context deadline expires — the
	// injected-latency model of a hung test.
	KindHang
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindVMCreate:
		return "vm-create"
	case KindTransient:
		return "transient"
	case KindUnavailable:
		return "unavailable"
	case KindHang:
		return "hang"
	default:
		return "unknown"
	}
}

// Error is one injected fault.
type Error struct {
	Kind Kind
	Site string
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("injected %s fault (%s)", e.Kind, e.Site)
}

// Retryable reports whether the fault class re-draws its decision per
// attempt, so an immediate retry can succeed. Unavailability windows span a
// whole hour regardless of attempts and are not retryable.
func (e *Error) Retryable() bool {
	switch e.Kind {
	case KindVMCreate, KindTransient, KindHang:
		return true
	default:
		return false
	}
}

// AsError extracts an injected fault from an error chain.
func AsError(err error) (*Error, bool) {
	var fe *Error
	if errors.As(err, &fe) {
		return fe, true
	}
	return nil, false
}

// Profile describes one fault-injection scenario plus the resilience
// policy the orchestrator applies under it. The zero Profile injects
// nothing.
type Profile struct {
	Name string

	// Injection probabilities.
	VMCreateFailProb  float64 // per CreateVM attempt
	VMPreemptProb     float64 // per VM-hour
	TransientErrProb  float64 // per test attempt
	ServerUnavailProb float64 // per (server, hour) window
	HangProb          float64 // per test attempt; hung tests always exceed TestTimeout
	SlowProb          float64 // per test attempt; slow tests still succeed
	SlowLatency       time.Duration

	// Resilience policy.
	TestTimeout time.Duration // per-test context deadline
	MaxRetries  int           // retries after the first failed attempt
	BackoffBase time.Duration // first retry delay before jitter
	BackoffCap  time.Duration // hard ceiling on any single delay

	// Circuit breaker (round-granular, per region).
	BreakerFailFrac   float64 // dropped fraction of one round that opens the breaker
	BreakerMinSamples int     // minimum tasks in a round before it can trip
	BreakerCooldown   int     // rounds the breaker stays open before probing
}

// Active reports whether the profile injects any fault at all. Inactive
// profiles disable the fault machinery entirely (NewInjector returns nil).
func (p Profile) Active() bool {
	return p.VMCreateFailProb > 0 || p.VMPreemptProb > 0 ||
		p.TransientErrProb > 0 || p.ServerUnavailProb > 0 ||
		p.HangProb > 0 || p.SlowProb > 0
}

// Normalized fills policy defaults so an active profile always has a
// usable timeout, retry budget and breaker configuration.
func (p Profile) Normalized() Profile {
	if p.TestTimeout <= 0 {
		p.TestTimeout = 100 * time.Millisecond
	}
	if p.MaxRetries <= 0 {
		p.MaxRetries = 3
	}
	if p.BackoffBase <= 0 {
		p.BackoffBase = time.Millisecond
	}
	if p.BackoffCap <= 0 {
		p.BackoffCap = 16 * time.Millisecond
	}
	if p.BreakerFailFrac <= 0 {
		p.BreakerFailFrac = 0.5
	}
	if p.BreakerMinSamples <= 0 {
		p.BreakerMinSamples = 10
	}
	if p.BreakerCooldown <= 0 {
		p.BreakerCooldown = 2
	}
	return p
}

// profiles are the canned scenarios exposed on the clasp CLI.
var profiles = map[string]Profile{
	"none": {Name: "none"},
	// flaky-vm models an unreliable control plane: CreateVM rejections,
	// VM preemptions mid-campaign, and occasional transient or hung tests.
	"flaky-vm": {
		Name:             "flaky-vm",
		VMCreateFailProb: 0.25,
		VMPreemptProb:    0.05,
		TransientErrProb: 0.03,
		HangProb:         0.005,
		TestTimeout:      25 * time.Millisecond,
		MaxRetries:       3,
		BackoffBase:      time.Millisecond,
		BackoffCap:       8 * time.Millisecond,
		// VM faults should not trip the per-region breaker.
		BreakerFailFrac:   0.9,
		BreakerMinSamples: 20,
		BreakerCooldown:   1,
	},
	// outage models a regional failure event: most (server, hour) windows
	// unreachable with frequent transient errors on what remains — the
	// scenario the round-granular circuit breaker exists for. Whole rounds
	// are shed while the outage persists and the cooldown probes recovery.
	"outage": {
		Name:              "outage",
		ServerUnavailProb: 0.55,
		TransientErrProb:  0.20,
		HangProb:          0.01,
		TestTimeout:       25 * time.Millisecond,
		MaxRetries:        2,
		BackoffBase:       time.Millisecond,
		BackoffCap:        4 * time.Millisecond,
		BreakerFailFrac:   0.35,
		BreakerMinSamples: 10,
		BreakerCooldown:   2,
	},
	// congested-server models an unhealthy server population: hour-long
	// unavailability windows, frequent transient failures and slow tests.
	"congested-server": {
		Name:              "congested-server",
		ServerUnavailProb: 0.10,
		TransientErrProb:  0.12,
		HangProb:          0.002,
		SlowProb:          0.05,
		SlowLatency:       2 * time.Millisecond,
		TestTimeout:       50 * time.Millisecond,
		MaxRetries:        2,
		BackoffBase:       time.Millisecond,
		BackoffCap:        4 * time.Millisecond,
		BreakerFailFrac:   0.5,
		BreakerMinSamples: 10,
		BreakerCooldown:   2,
	},
}

// Named resolves a canned profile by name ("" is "none").
func Named(name string) (Profile, error) {
	if name == "" {
		name = "none"
	}
	p, ok := profiles[name]
	if !ok {
		return Profile{}, fmt.Errorf("faults: unknown profile %q (have %v)", name, Names())
	}
	return p, nil
}

// Names lists the canned profiles, sorted.
func Names() []string {
	out := make([]string, 0, len(profiles))
	for n := range profiles {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Injection-site salts, one per decision class, so distinct sites sharing
// keys draw independent outcomes.
const (
	siteVMCreate uint64 = 0xFA01
	sitePreempt  uint64 = 0xFA02
	siteTrans    uint64 = 0xFA03
	siteUnavail  uint64 = 0xFA04
	siteHang     uint64 = 0xFA05
	siteSlow     uint64 = 0xFA06
	siteBackoff  uint64 = 0xFA07
)

// Injector draws deterministic fault decisions for one campaign. It is
// immutable after creation and safe for concurrent use; every method is
// safe on a nil receiver (a nil injector injects nothing).
type Injector struct {
	prof Profile
	seed int64
}

// NewInjector builds an injector for a campaign seed, or nil when the
// profile injects nothing — callers branch on nil to skip the fault path.
func NewInjector(p Profile, seed int64) *Injector {
	if !p.Active() {
		return nil
	}
	return &Injector{prof: p.Normalized(), seed: seed}
}

// Profile returns the normalized profile the injector runs.
func (in *Injector) Profile() Profile { return in.prof }

// mix64 is the splitmix64 finaliser (same idiom as the orchestrator's
// per-hour schedule seeds).
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// hash folds the seed and site keys through a splitmix64 chain.
func (in *Injector) hash(keys ...uint64) uint64 {
	z := uint64(in.seed)
	for _, k := range keys {
		z += 0x9e3779b97f4a7c15 * (k + 1)
		z = mix64(z)
	}
	return z
}

// hit draws a deterministic Bernoulli(p) decision for a site.
func (in *Injector) hit(p float64, keys ...uint64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return float64(in.hash(keys...)>>11)/(1<<53) < p
}

// KeyString hashes a string (VM name, region) into a fault-site key.
func KeyString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// FailVMCreate decides whether CreateVM attempt `attempt` (0-based) for
// the named VM is rejected. Implements cloud.VMFaults.
func (in *Injector) FailVMCreate(name string, attempt int) error {
	if in == nil || !in.hit(in.prof.VMCreateFailProb, siteVMCreate, KeyString(name), uint64(attempt)) {
		return nil
	}
	return &Error{Kind: KindVMCreate, Site: name}
}

// PreemptVM decides whether the named VM is preempted during the given
// campaign hour.
func (in *Injector) PreemptVM(name string, hour int) bool {
	return in != nil && in.hit(in.prof.VMPreemptProb, sitePreempt, KeyString(name), uint64(hour))
}

// BeforeMeasure injects measurement faults for one test execution:
// an unavailability window, a hang (blocks until ctx expires), added
// latency on a slow test, or a transient error. Implements
// netsim.TestFaults; ctx bounds every injected delay.
func (in *Injector) BeforeMeasure(ctx context.Context, spec netsim.TestSpec) error {
	if in == nil || spec.Server == nil {
		return nil
	}
	srv := uint64(spec.Server.ID)
	hour := uint64(spec.Time.Unix() / 3600)
	reg := KeyString(spec.Region)
	dir, tier := uint64(spec.Dir), uint64(spec.Tier)
	attempt := uint64(spec.Attempt)
	site := fmt.Sprintf("server %d/%s/%s", spec.Server.ID, spec.Tier, spec.Dir)

	// The whole-hour window first: it ignores the attempt number so the
	// caller sees a non-retryable fault on every attempt.
	if in.hit(in.prof.ServerUnavailProb, siteUnavail, reg, srv, hour) {
		return &Error{Kind: KindUnavailable, Site: site}
	}
	if in.hit(in.prof.HangProb, siteHang, reg, srv, hour, dir, tier, attempt) {
		<-ctx.Done()
		return &Error{Kind: KindHang, Site: site}
	}
	if in.prof.SlowLatency > 0 && in.hit(in.prof.SlowProb, siteSlow, reg, srv, hour, dir, tier, attempt) {
		t := time.NewTimer(in.prof.SlowLatency)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return &Error{Kind: KindHang, Site: site}
		}
	}
	if in.hit(in.prof.TransientErrProb, siteTrans, reg, srv, hour, dir, tier, attempt) {
		return &Error{Kind: KindTransient, Site: site}
	}
	return nil
}

// Backoff returns the delay before retry `attempt` (0-based) at a site.
// The schedule is capped exponential with hashed — not wall-clock-random —
// jitter: base·2^attempt scaled into [0.5, 1.0), never above BackoffCap.
// The schedule is a pure function of (seed, keys, attempt); tests pin it.
func (in *Injector) Backoff(attempt int, keys ...uint64) time.Duration {
	if in == nil {
		return 0
	}
	d := in.prof.BackoffCap
	if attempt < 62 {
		if exp := in.prof.BackoffBase << uint(attempt); exp > 0 && exp < d {
			d = exp
		}
	}
	ks := make([]uint64, 0, len(keys)+2)
	ks = append(ks, siteBackoff)
	ks = append(ks, keys...)
	ks = append(ks, uint64(attempt))
	jitter := 0.5 + 0.5*float64(in.hash(ks...)>>11)/(1<<53)
	d = time.Duration(float64(d) * jitter)
	if d > in.prof.BackoffCap {
		d = in.prof.BackoffCap
	}
	return d
}
