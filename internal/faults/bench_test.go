package faults

import (
	"context"
	"testing"
	"time"

	"github.com/clasp-measurement/clasp/internal/netsim"
	"github.com/clasp-measurement/clasp/internal/topology"
)

// Fault-layer benchmarks for BENCH_faults.json: the per-test decision cost
// an active profile adds to the hot path (the common all-miss case), and
// the deterministic backoff computation on the retry path.

func benchSpec() netsim.TestSpec {
	return netsim.TestSpec{
		Region: "us-east1",
		Server: &topology.Server{ID: 42},
		Time:   time.Date(2020, 5, 1, 12, 0, 0, 0, time.UTC),
	}
}

// BenchmarkFaultsBeforeMeasureMiss is the decision cost injected campaigns
// pay per test when nothing fires — four hash draws, no blocking.
func BenchmarkFaultsBeforeMeasureMiss(b *testing.B) {
	prof := Profile{
		Name:              "bench",
		TransientErrProb:  1e-12,
		ServerUnavailProb: 1e-12,
		HangProb:          1e-12,
		SlowProb:          1e-12,
		SlowLatency:       time.Millisecond,
	}
	in := NewInjector(prof, 7)
	ctx := context.Background()
	spec := benchSpec()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec.Attempt = i
		if err := in.BeforeMeasure(ctx, spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFaultsNilInjector pins the disabled decision cost: one nil check.
func BenchmarkFaultsNilInjector(b *testing.B) {
	var in *Injector
	ctx := context.Background()
	spec := benchSpec()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := in.BeforeMeasure(ctx, spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFaultsBackoff is the per-retry schedule computation.
func BenchmarkFaultsBackoff(b *testing.B) {
	in := NewInjector(Profile{Name: "bench", TransientErrProb: 0.5}, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := in.Backoff(i%4, 11, 22, 33); d <= 0 {
			b.Fatal("non-positive backoff")
		}
	}
}
