package someta

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

var t0 = time.Date(2020, 5, 1, 12, 0, 0, 0, time.UTC)

func TestLocalProbeSnapshot(t *testing.T) {
	c := NewCollector("vm-test", nil)
	s := c.Snap(t0)
	if s.Hostname != "vm-test" {
		t.Errorf("hostname = %q", s.Hostname)
	}
	if s.CPUUtil < 0 || s.CPUUtil > 1 {
		t.Errorf("cpu = %v", s.CPUUtil)
	}
	if s.MemUsedMB <= 0 {
		t.Errorf("mem = %v", s.MemUsedMB)
	}
	if s.Goroutines <= 0 || !strings.HasPrefix(s.GoVersion, "go") {
		t.Errorf("runtime fields: %+v", s)
	}
	if !s.Timestamp.Equal(t0) {
		t.Errorf("timestamp = %v", s.Timestamp)
	}
}

func TestLocalProbeNetCounters(t *testing.T) {
	p := &LocalProbe{}
	p.AddNetBytes(100, 50)
	p.AddNetBytes(10, 5)
	_, _, in, out := p.Sample()
	if in != 110 || out != 55 {
		t.Errorf("net counters = %d/%d", in, out)
	}
}

func TestFuncProbe(t *testing.T) {
	c := NewCollector("sim-vm", FuncProbe(func() (float64, float64, int64, int64) {
		return 0.42, 1024, 7, 9
	}))
	s := c.Snap(t0)
	if s.CPUUtil != 0.42 || s.MemUsedMB != 1024 || s.NetBytesIn != 7 || s.NetBytesOut != 9 {
		t.Errorf("probe values lost: %+v", s)
	}
}

func TestClampUtil(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{-0.5, 0}, {0, 0}, {0.42, 0.42}, {1, 1}, {1.7, 1}, {100, 1},
	}
	for _, c := range cases {
		if got := ClampUtil(c.in); got != c.want {
			t.Errorf("ClampUtil(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestSnapClampsProbeCPU(t *testing.T) {
	// Probes may return raw proxies >1; the collector clamps once, centrally.
	c := NewCollector("vm", FuncProbe(func() (float64, float64, int64, int64) {
		return 1.7, 1, 0, 0
	}))
	if s := c.Snap(t0); s.CPUUtil != 1 {
		t.Errorf("CPUUtil = %v, want clamped to 1", s.CPUUtil)
	}
	if got := c.MaxCPU(); got != 1 {
		t.Errorf("MaxCPU = %v, want 1", got)
	}
}

func TestSnapshotsAccumulateAndReset(t *testing.T) {
	c := NewCollector("vm", FuncProbe(func() (float64, float64, int64, int64) { return 0.5, 1, 0, 0 }))
	for i := 0; i < 5; i++ {
		c.Snap(t0.Add(time.Duration(i) * time.Minute))
	}
	snaps := c.Snapshots()
	if len(snaps) != 5 {
		t.Fatalf("snapshots = %d", len(snaps))
	}
	// Returned slice is a copy.
	snaps[0].Hostname = "mutated"
	if c.Snapshots()[0].Hostname == "mutated" {
		t.Error("Snapshots exposes internal slice")
	}
	c.Reset()
	if len(c.Snapshots()) != 0 {
		t.Error("Reset did not clear")
	}
}

func TestMaxCPU(t *testing.T) {
	vals := []float64{0.1, 0.9, 0.4}
	i := 0
	c := NewCollector("vm", FuncProbe(func() (float64, float64, int64, int64) {
		v := vals[i%len(vals)]
		i++
		return v, 1, 0, 0
	}))
	if c.MaxCPU() != 0 {
		t.Error("MaxCPU on empty collector")
	}
	for range vals {
		c.Snap(t0)
	}
	if c.MaxCPU() != 0.9 {
		t.Errorf("MaxCPU = %v", c.MaxCPU())
	}
}

func TestJSONRoundTrip(t *testing.T) {
	c := NewCollector("vm", FuncProbe(func() (float64, float64, int64, int64) { return 0.3, 500, 1000, 2000 }))
	for i := 0; i < 3; i++ {
		c.Snap(t0.Add(time.Duration(i) * time.Second))
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, c.Snapshots()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("round trip count = %d", len(got))
	}
	for i, s := range got {
		orig := c.Snapshots()[i]
		if !s.Timestamp.Equal(orig.Timestamp) || s.CPUUtil != orig.CPUUtil || s.NetBytesOut != orig.NetBytesOut {
			t.Errorf("snapshot %d mismatch: %+v vs %+v", i, s, orig)
		}
	}
}

func TestReadJSONGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{bad")); err == nil {
		t.Error("garbage: want error")
	}
}
