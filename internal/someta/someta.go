// Package someta records measurement metadata alongside each experiment,
// after SoMeta (Sommers, Durairajan, Barford, IMC 2017): periodic snapshots
// of host state (CPU, memory, network counters, clock) that let the
// analysis verify a test was not confounded by resource exhaustion — the
// paper checked that its n1-standard-2 VMs never depleted CPU during tests
// (§3.2).
package someta

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"github.com/clasp-measurement/clasp/internal/obs"
)

// Metadata telemetry (see DESIGN.md §8).
var (
	obsSnapshots    = obs.Default().Counter("someta_snapshots_total")
	obsLastSnapUnix = obs.Default().Gauge("someta_last_snapshot_unix_seconds")
)

// ClampUtil bounds a utilisation value to [0, 1]. Probe implementations are
// free to return raw proxies (the LocalProbe goroutine-pressure heuristic
// can exceed 1 on oversubscribed hosts); every snapshot passes through this
// single clamp so downstream consumers — MaxCPU filtering, the analysis'
// CPU-exhaustion check — never see out-of-range utilisation.
func ClampUtil(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Snapshot is one metadata record.
type Snapshot struct {
	Timestamp   time.Time `json:"timestamp"`
	Hostname    string    `json:"hostname"`
	CPUUtil     float64   `json:"cpu_util"` // 0..1
	MemUsedMB   float64   `json:"mem_used_mb"`
	NetBytesIn  int64     `json:"net_bytes_in"`
	NetBytesOut int64     `json:"net_bytes_out"`
	Goroutines  int       `json:"goroutines"`
	GoVersion   string    `json:"go_version"`
}

// Probe supplies host counters for a snapshot. Implementations exist for
// the local process (LocalProbe) and for simulated VMs (FuncProbe).
type Probe interface {
	Sample() (cpuUtil float64, memUsedMB float64, netIn, netOut int64)
}

// LocalProbe samples the current process: memory from runtime.MemStats and
// a CPU proxy from goroutine pressure. Network counters must be fed by the
// caller via AddNetBytes.
type LocalProbe struct {
	mu  sync.Mutex
	in  int64
	out int64
}

// AddNetBytes accumulates observed network traffic.
func (p *LocalProbe) AddNetBytes(in, out int64) {
	p.mu.Lock()
	p.in += in
	p.out += out
	p.mu.Unlock()
}

// Sample implements Probe.
func (p *LocalProbe) Sample() (float64, float64, int64, int64) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	cpu := ClampUtil(float64(runtime.NumGoroutine()) / float64(runtime.NumCPU()*8))
	p.mu.Lock()
	in, out := p.in, p.out
	p.mu.Unlock()
	return cpu, float64(ms.Alloc) / (1 << 20), in, out
}

// FuncProbe adapts a function to the Probe interface (simulated VMs).
type FuncProbe func() (cpuUtil, memUsedMB float64, netIn, netOut int64)

// Sample implements Probe.
func (f FuncProbe) Sample() (float64, float64, int64, int64) { return f() }

// Collector takes snapshots from a probe.
type Collector struct {
	Hostname string
	Probe    Probe

	mu        sync.Mutex
	snapshots []Snapshot
}

// NewCollector creates a collector. A nil probe uses LocalProbe.
func NewCollector(hostname string, probe Probe) *Collector {
	if probe == nil {
		probe = &LocalProbe{}
	}
	return &Collector{Hostname: hostname, Probe: probe}
}

// Snap records one snapshot at the given (possibly virtual) time.
func (c *Collector) Snap(at time.Time) Snapshot {
	cpu, mem, in, out := c.Probe.Sample()
	s := Snapshot{
		Timestamp:   at,
		Hostname:    c.Hostname,
		CPUUtil:     ClampUtil(cpu),
		MemUsedMB:   mem,
		NetBytesIn:  in,
		NetBytesOut: out,
		Goroutines:  runtime.NumGoroutine(),
		GoVersion:   runtime.Version(),
	}
	c.mu.Lock()
	c.snapshots = append(c.snapshots, s)
	c.mu.Unlock()
	obsSnapshots.Inc()
	obsLastSnapUnix.Set(float64(at.Unix()))
	return s
}

// Snapshots returns a copy of the records so far.
func (c *Collector) Snapshots() []Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Snapshot, len(c.snapshots))
	copy(out, c.snapshots)
	return out
}

// Reset discards recorded snapshots.
func (c *Collector) Reset() {
	c.mu.Lock()
	c.snapshots = nil
	c.mu.Unlock()
}

// MaxCPU returns the highest CPU utilisation observed (0 when empty). The
// analysis uses it to discard tests run on a starved VM.
func (c *Collector) MaxCPU() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	max := 0.0
	for _, s := range c.snapshots {
		if s.CPUUtil > max {
			max = s.CPUUtil
		}
	}
	return max
}

// WriteJSON streams snapshots as JSON lines.
func WriteJSON(w io.Writer, snaps []Snapshot) error {
	enc := json.NewEncoder(w)
	for i := range snaps {
		if err := enc.Encode(&snaps[i]); err != nil {
			return fmt.Errorf("someta: encoding snapshot: %w", err)
		}
	}
	return nil
}

// ReadJSON parses snapshots written by WriteJSON.
func ReadJSON(r io.Reader) ([]Snapshot, error) {
	dec := json.NewDecoder(r)
	var out []Snapshot
	for {
		var s Snapshot
		if err := dec.Decode(&s); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, fmt.Errorf("someta: decoding snapshot: %w", err)
		}
		out = append(out, s)
	}
}
