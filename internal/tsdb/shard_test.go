package tsdb

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestConcurrentInsertDistinctSeries inserts from many goroutines into
// distinct series (the common campaign shape: each worker owns its own
// server/tier/dir streams) and checks nothing is lost or misfiled.
func TestConcurrentInsertDistinctSeries(t *testing.T) {
	s := NewStore()
	base := time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)
	const goroutines = 8
	const perG = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tags := Tags{"server": fmt.Sprintf("%d", g), "region": "us-east1"}
			for i := 0; i < perG; i++ {
				err := s.Insert("speedtest", tags, base.Add(time.Duration(i)*time.Minute),
					map[string]float64{"mbps": float64(g*1000 + i)})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	if got := s.SeriesCount(); got != goroutines {
		t.Fatalf("SeriesCount = %d, want %d", got, goroutines)
	}
	for g := 0; g < goroutines; g++ {
		res := s.Query("speedtest", Tags{"server": fmt.Sprintf("%d", g)}, time.Time{}, time.Time{})
		if len(res) != 1 {
			t.Fatalf("series %d: got %d series, want 1", g, len(res))
		}
		if len(res[0].Points) != perG {
			t.Fatalf("series %d: got %d points, want %d", g, len(res[0].Points), perG)
		}
		for i, p := range res[0].Points {
			if want := float64(g*1000 + i); p.Fields["mbps"] != want {
				t.Fatalf("series %d point %d: mbps = %v, want %v", g, i, p.Fields["mbps"], want)
			}
		}
	}
}

// TestConcurrentInsertSameSeries hammers one series (all writers collide on
// one shard lock) and checks every point lands, time-sorted.
func TestConcurrentInsertSameSeries(t *testing.T) {
	s := NewStore()
	base := time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)
	tags := Tags{"server": "1", "region": "us-east1"}
	const goroutines = 8
	const perG = 100
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Interleaved, partly out-of-order timestamps to exercise
				// both insert paths under contention.
				at := base.Add(time.Duration((i*goroutines+g)%(perG*goroutines)) * time.Second)
				if err := s.Insert("speedtest", tags, at, map[string]float64{"v": 1}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	res := s.Query("speedtest", nil, time.Time{}, time.Time{})
	if len(res) != 1 {
		t.Fatalf("got %d series, want 1", len(res))
	}
	pts := res[0].Points
	if len(pts) != goroutines*perG {
		t.Fatalf("got %d points, want %d", len(pts), goroutines*perG)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Time.Before(pts[i-1].Time) {
			t.Fatalf("points out of order at %d: %v < %v", i, pts[i].Time, pts[i-1].Time)
		}
	}
}

// TestHandleMatchesInsert asserts the interned-handle path is observably
// identical to Store.Insert: same series, same points, same serialisation.
func TestHandleMatchesInsert(t *testing.T) {
	base := time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)
	tagSets := benchTagSets(4)

	plain := NewStore()
	handled := NewStore()
	for i, tags := range tagSets {
		h, err := handled.Handle("speedtest", tags)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 5; j++ {
			at := base.Add(time.Duration(i*7+j) * time.Minute)
			fields := map[string]float64{"mbps": float64(i*10 + j), "loss": 0.1}
			if err := plain.Insert("speedtest", tags, at, fields); err != nil {
				t.Fatal(err)
			}
			if err := h.Insert(at, fields); err != nil {
				t.Fatal(err)
			}
		}
	}

	var a, b bytes.Buffer
	if _, err := plain.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := handled.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("handle inserts serialise differently:\n%s\nvs\n%s", a.String(), b.String())
	}
}

// TestHandleValidation pins the handle API's input checking.
func TestHandleValidation(t *testing.T) {
	s := NewStore()
	if _, err := s.Handle("bad measurement", nil); err == nil {
		t.Fatal("expected error for measurement with space")
	}
	if _, err := s.Handle("m", Tags{"k": "a,b"}); err == nil {
		t.Fatal("expected error for tag value with comma")
	}
	h, err := s.Handle("m", Tags{"k": "v"})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Insert(time.Now(), nil); err == nil {
		t.Fatal("expected error for point without fields")
	}
	if err := h.Insert(time.Now(), map[string]float64{"bad field": 1}); err == nil {
		t.Fatal("expected error for field name with space")
	}
}
