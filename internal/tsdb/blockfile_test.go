package tsdb

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// writeBlockFile spills s into dir and opens the result.
func writeBlockFile(t *testing.T, s *Store) *BlockFile {
	t.Helper()
	path := filepath.Join(t.TempDir(), "campaign.clbf")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteBlocks(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	bf, err := OpenBlockFile(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bf.Close() })
	return bf
}

// TestBlockFileRoundTrip pins that a spilled store answers queries
// identically to the live one — full range, tag filters, and time bounds
// that cross block boundaries — with a mix of sealed blocks and unsealed
// tails on disk.
func TestBlockFileRoundTrip(t *testing.T) {
	s := NewStore()
	s.SetSealThreshold(16) // force several blocks plus a partial tail
	fillStores(t, 500, s)
	bf := writeBlockFile(t, s)

	if bf.SeriesCount() != s.SeriesCount() {
		t.Fatalf("series count %d, want %d", bf.SeriesCount(), s.SeriesCount())
	}

	from := time.Date(2020, 5, 3, 7, 0, 0, 0, time.UTC)
	to := time.Date(2020, 5, 5, 19, 0, 0, 0, time.UTC)
	cases := []struct {
		name     string
		match    Tags
		from, to time.Time
	}{
		{"all", nil, time.Time{}, time.Time{}},
		{"tag", Tags{"server": "b"}, time.Time{}, time.Time{}},
		{"range", nil, from, to},
		{"tag+range", Tags{"server": "a"}, from, to},
		{"no-match", Tags{"server": "zz"}, time.Time{}, time.Time{}},
	}
	for _, tc := range cases {
		want := s.Query("speedtest", tc.match, tc.from, tc.to)
		got, err := bf.Query("speedtest", tc.match, tc.from, tc.to)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: block file query differs from store", tc.name)
		}
	}
	if got, err := bf.Query("absent", nil, time.Time{}, time.Time{}); err != nil || got != nil {
		t.Fatalf("absent measurement: got %v, %v", got, err)
	}
}

// TestBlockFileUnsealedStore pins that WriteBlocks works on a store with
// sealing disabled: every tail becomes one transient block, without
// mutating the store.
func TestBlockFileUnsealedStore(t *testing.T) {
	s := NewStore()
	s.SetSealThreshold(0)
	fillStores(t, 120, s)
	bf := writeBlockFile(t, s)
	if b, p, _ := s.BlockStats(); b != 0 || p != 0 {
		t.Fatalf("WriteBlocks mutated the store: %d blocks / %d points", b, p)
	}
	want := s.Query("speedtest", nil, time.Time{}, time.Time{})
	got, err := bf.Query("speedtest", nil, time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("block file query differs from store")
	}
}

func TestBlockFileEmptyStore(t *testing.T) {
	bf := writeBlockFile(t, NewStore())
	if bf.SeriesCount() != 0 {
		t.Fatalf("series count %d, want 0", bf.SeriesCount())
	}
	got, err := bf.Query("speedtest", nil, time.Time{}, time.Time{})
	if err != nil || got != nil {
		t.Fatalf("got %v, %v", got, err)
	}
}

// TestBlockFileCorruption pins that a damaged file fails to open or query
// with an error rather than a panic.
func TestBlockFileCorruption(t *testing.T) {
	s := NewStore()
	s.SetSealThreshold(8)
	fillStores(t, 60, s)
	var buf bytes.Buffer
	if _, err := s.WriteBlocks(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	dir := t.TempDir()
	write := func(name string, b []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if _, err := OpenBlockFile(write("short", raw[:10])); err == nil {
		t.Fatal("truncated file should not open")
	}
	badMagic := append([]byte(nil), raw...)
	badMagic[0] ^= 0xff
	if _, err := OpenBlockFile(write("magic", badMagic)); err == nil {
		t.Fatal("bad magic should not open")
	}
	noTrailer := raw[:len(raw)-4]
	if _, err := OpenBlockFile(write("trailer", noTrailer)); err == nil {
		t.Fatal("bad trailer should not open")
	}
}

// TestBlockFilePartialRejection sweeps truncation points over a valid
// block file: no strict prefix — a file cut short by a crash mid-write —
// may open successfully. Together with WriteBlocksFile's atomic rename
// this pins the crash-safety contract: a reader sees either a complete
// file or an open error, never silently partial data.
func TestBlockFilePartialRejection(t *testing.T) {
	s := NewStore()
	s.SetSealThreshold(8)
	fillStores(t, 60, s)
	var buf bytes.Buffer
	if _, err := s.WriteBlocks(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	dir := t.TempDir()
	p := filepath.Join(dir, "partial.clbf")
	for cut := 0; cut < len(raw); cut += 7 {
		if err := os.WriteFile(p, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if bf, err := OpenBlockFile(p); err == nil {
			bf.Close()
			t.Fatalf("file truncated to %d of %d bytes opened without error", cut, len(raw))
		}
	}
}

// TestWriteBlocksFileAtomic pins the crash-safe dump path: the file is
// complete and openable, a second dump replaces it in place, and no temp
// files survive either commit.
func TestWriteBlocksFileAtomic(t *testing.T) {
	s := NewStore()
	s.SetSealThreshold(16)
	fillStores(t, 120, s)
	dir := t.TempDir()
	path := filepath.Join(dir, "telemetry.clbf")
	for i := 0; i < 2; i++ { // second pass overwrites the first dump
		if err := s.WriteBlocksFile(path); err != nil {
			t.Fatal(err)
		}
		bf, err := OpenBlockFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if bf.SeriesCount() != s.SeriesCount() {
			t.Fatalf("series count %d, want %d", bf.SeriesCount(), s.SeriesCount())
		}
		bf.Close()
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 1 || entries[0].Name() != "telemetry.clbf" {
			t.Fatalf("dump left extra files: %v", entries)
		}
	}
}

// TestParseSeriesKey pins the key grammar the index relies on.
func TestParseSeriesKey(t *testing.T) {
	m, tags, err := parseSeriesKey(seriesKey("speedtest", Tags{"b": "2", "a": "1"}))
	if err != nil {
		t.Fatal(err)
	}
	if m != "speedtest" || !reflect.DeepEqual(tags, Tags{"a": "1", "b": "2"}) {
		t.Fatalf("got %q %v", m, tags)
	}
	if _, _, err := parseSeriesKey(",a=1"); err == nil {
		t.Fatal("empty measurement should fail")
	}
	if _, _, err := parseSeriesKey("m,broken"); err == nil {
		t.Fatal("bad tag should fail")
	}
}
