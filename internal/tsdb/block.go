// Sealed columnar blocks: when a series' mutable tail exceeds the store's
// seal threshold, the tail is frozen into an immutable compressed block —
// delta-of-delta varint timestamps plus one Gorilla XOR float column per
// field (see internal/colenc). The sharded in-memory store stays the write
// head; queries decode blocks on the fly, losslessly.
//
// Sealed-block purity invariant: encode(points) followed by decode is
// bit-identical to the input — timestamps to the nanosecond (normalised to
// UTC) and field values to the IEEE-754 bit pattern, pinned by the
// round-trip property tests and fuzzer in block_test.go. Nothing
// downstream (Query, WriteTo, analysis) can observe whether a series was
// sealed, except through memory use.

package tsdb

import (
	"fmt"
	"sort"
	"time"

	"github.com/clasp-measurement/clasp/internal/colenc"
)

// DefaultSealThreshold is the tail length at which NewStore seals a series
// into a compressed block. At hourly campaign cadence one block holds ~21
// days of one pair's samples.
const DefaultSealThreshold = 512

// block is one immutable compressed run of points. Blocks of a series are
// time-ordered and non-overlapping: every point in block i+1 is at or
// after every point in block i, and the mutable tail follows the last
// block. All fields are read-only after encodeBlock returns, so blocks may
// be shared across snapshots without locks.
type block struct {
	n            int
	minNs, maxNs int64 // UnixNano of first and last point
	data         []byte
}

// Layout of block.data (all integers varint unless noted):
//
//	uvarint pointCount
//	uvarint fieldCount, then fieldCount × (uvarint nameLen, name bytes),
//	  names sorted ascending
//	timestamp column: delta-of-delta zigzag varints (colenc.AppendTimes)
//	fieldCount × field column:
//	  presence byte: 1 = every point carries the field,
//	                 0 = ceil(n/8)-byte bitmap follows (bit 7-i%8 of
//	                     byte i/8 set when point i carries the field)
//	  value column: uvarint byte length + Gorilla XOR bit stream of the
//	                present values in point order (colenc.AppendFloats)

// encodeBlock seals a time-sorted run of points. Points and their field
// maps are only read.
func encodeBlock(points []Point) *block {
	n := len(points)
	b := &block{
		n:     n,
		minNs: points[0].Time.UnixNano(),
		maxNs: points[n-1].Time.UnixNano(),
	}
	// Field union, sorted for deterministic layout.
	fieldSet := make(map[string]bool)
	for i := range points {
		for f := range points[i].Fields {
			fieldSet[f] = true
		}
	}
	fields := make([]string, 0, len(fieldSet))
	for f := range fieldSet {
		fields = append(fields, f)
	}
	sort.Strings(fields)

	buf := make([]byte, 0, 16*n/4+64)
	buf = colenc.AppendUvarint(buf, uint64(n))
	buf = colenc.AppendUvarint(buf, uint64(len(fields)))
	for _, f := range fields {
		buf = colenc.AppendUvarint(buf, uint64(len(f)))
		buf = append(buf, f...)
	}
	ts := make([]int64, n)
	for i := range points {
		ts[i] = points[i].Time.UnixNano()
	}
	buf = colenc.AppendTimes(buf, ts)
	vals := make([]float64, 0, n)
	for _, f := range fields {
		vals = vals[:0]
		missing := false
		for i := range points {
			if v, ok := points[i].Fields[f]; ok {
				vals = append(vals, v)
			} else {
				missing = true
			}
		}
		if !missing {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
			bitmap := make([]byte, (n+7)/8)
			for i := range points {
				if _, ok := points[i].Fields[f]; ok {
					bitmap[i/8] |= 1 << (7 - i%8)
				}
			}
			buf = append(buf, bitmap...)
		}
		buf = colenc.AppendFloats(buf, vals)
	}
	b.data = buf
	return b
}

// appendPoints decodes the block into dst, keeping only points within
// [from, to) (zero bounds disable). Decoded points carry fresh field maps,
// so callers own them outright. Decode never fails on data produced by
// encodeBlock; a corrupt buffer (possible via OpenBlockFile) panics with a
// tsdb-prefixed message, matching the parse-time validation the block file
// reader performs.
func (b *block) appendPoints(dst []Point, from, to time.Time) []Point {
	pts, err := b.decode(nil)
	if err != nil {
		panic(fmt.Sprintf("tsdb: corrupt block: %v", err))
	}
	for i := range pts {
		if !from.IsZero() && pts[i].Time.Before(from) {
			continue
		}
		if !to.IsZero() && !pts[i].Time.Before(to) {
			continue
		}
		dst = append(dst, pts[i])
	}
	return dst
}

// decode reconstructs the block's points, appending to dst. Every point
// gets a freshly allocated Fields map; timestamps come back in UTC.
func (b *block) decode(dst []Point) ([]Point, error) {
	buf := b.data
	n64, k := colenc.Uvarint(buf)
	if k == 0 {
		return nil, fmt.Errorf("truncated block header")
	}
	buf = buf[k:]
	n := int(n64)
	if n != b.n {
		return nil, fmt.Errorf("block count mismatch: header %d, index %d", n, b.n)
	}
	fc64, k := colenc.Uvarint(buf)
	if k == 0 {
		return nil, fmt.Errorf("truncated field count")
	}
	buf = buf[k:]
	fields := make([]string, int(fc64))
	for i := range fields {
		ln, k := colenc.Uvarint(buf)
		if k == 0 || uint64(len(buf)-k) < ln {
			return nil, fmt.Errorf("truncated field name")
		}
		fields[i] = string(buf[k : k+int(ln)])
		buf = buf[k+int(ln):]
	}
	ts, k, err := colenc.DecodeTimes(make([]int64, 0, n), buf, n)
	if err != nil {
		return nil, err
	}
	buf = buf[k:]

	base := len(dst)
	for i := 0; i < n; i++ {
		dst = append(dst, Point{
			Time:   time.Unix(0, ts[i]).UTC(),
			Fields: make(map[string]float64, len(fields)),
		})
	}
	var vals []float64
	for _, f := range fields {
		if len(buf) == 0 {
			return nil, fmt.Errorf("truncated presence flag for %q", f)
		}
		flag := buf[0]
		buf = buf[1:]
		var bitmap []byte
		count := n
		switch flag {
		case 1:
		case 0:
			bl := (n + 7) / 8
			if len(buf) < bl {
				return nil, fmt.Errorf("truncated presence bitmap for %q", f)
			}
			bitmap = buf[:bl]
			buf = buf[bl:]
			count = 0
			for i := 0; i < n; i++ {
				if bitmap[i/8]&(1<<(7-i%8)) != 0 {
					count++
				}
			}
		default:
			return nil, fmt.Errorf("bad presence flag %d for %q", flag, f)
		}
		vals, k, err = colenc.DecodeFloats(vals, buf, count)
		if err != nil {
			return nil, err
		}
		buf = buf[k:]
		vi := 0
		for i := 0; i < n; i++ {
			if bitmap != nil && bitmap[i/8]&(1<<(7-i%8)) == 0 {
				continue
			}
			dst[base+i].Fields[f] = vals[vi]
			vi++
		}
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("%d trailing bytes after block", len(buf))
	}
	return dst, nil
}

// --- Series seal/reopen --------------------------------------------------------

// sealedPoints returns the number of points held in sealed blocks.
func (sr *Series) sealedPoints() int {
	n := 0
	for _, b := range sr.blocks {
		n += b.n
	}
	return n
}

// seal freezes the entire tail into one compressed block. Callers hold the
// owning shard's write lock and guarantee a non-empty, time-sorted tail.
func (sr *Series) seal() {
	sr.blocks = append(sr.blocks, encodeBlock(sr.Points))
	sr.Points = nil
}

// reopen decodes every sealed block back into the mutable tail — the rare
// path taken when a point arrives before the sealed range (out-of-order
// ingest across a seal boundary). Blocks are ordered and the tail follows
// them, so concatenation preserves time order.
func (sr *Series) reopen() {
	pts := make([]Point, 0, sr.sealedPoints()+len(sr.Points))
	for _, b := range sr.blocks {
		var err error
		pts, err = b.decode(pts)
		if err != nil {
			panic(fmt.Sprintf("tsdb: corrupt block: %v", err))
		}
	}
	pts = append(pts, sr.Points...)
	sr.blocks = nil
	sr.Points = pts
}

// insertSealed adds a point to a series that may carry sealed blocks,
// sealing the tail when it reaches threshold (0 disables sealing). Callers
// hold the owning shard's write lock.
func (sr *Series) insertSealed(p Point, threshold int) {
	if n := len(sr.blocks); n > 0 && p.Time.UnixNano() < sr.blocks[n-1].maxNs {
		sr.reopen()
	}
	sr.insertPoint(p)
	if threshold > 0 && len(sr.Points) >= threshold {
		sr.seal()
	}
}
