package tsdb

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// benchTagSets mirrors a campaign's series population: one series per
// (server, tier, dir), inserted round-robin the way StoreSink sees records.
func benchTagSets(n int) []Tags {
	out := make([]Tags, 0, n*4)
	for i := 0; i < n; i++ {
		for _, tier := range []string{"premium", "standard"} {
			for _, dir := range []string{"download", "upload"} {
				out = append(out, Tags{
					"server": fmt.Sprintf("%d", i),
					"region": "us-east1",
					"tier":   tier,
					"dir":    dir,
				})
			}
		}
	}
	return out
}

// BenchmarkInsert measures concurrent tagged inserts across many series:
// the orchestrator's ingest shape at parallelism >= 4.
func BenchmarkInsert(b *testing.B) {
	s := NewStore()
	tagSets := benchTagSets(16)
	base := time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)
	var next atomic.Int64
	b.ReportAllocs()
	b.SetParallelism(4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := next.Add(1)
			tags := tagSets[int(i)%len(tagSets)]
			err := s.Insert("speedtest", tags, base.Add(time.Duration(i)*time.Second),
				map[string]float64{"mbps": float64(i), "rtt_ms": 12, "loss": 0})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAnalysisAggPercentile is the p95 rollup behind the paper's
// hourly-to-daily aggregation: GroupByTime over a 90-day hourly series.
func BenchmarkAnalysisAggPercentile(b *testing.B) {
	base := time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)
	sr := Series{Measurement: "speedtest"}
	for h := 0; h < 90*24; h++ {
		sr.Points = append(sr.Points, Point{
			Time:   base.Add(time.Duration(h) * time.Hour),
			Fields: map[string]float64{"mbps": 300 + float64(h%37)},
		})
	}
	p95 := AggPercentile(95)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if buckets := GroupByTime(sr, "mbps", 24*time.Hour, p95); len(buckets) != 90 {
			b.Fatalf("buckets = %d", len(buckets))
		}
	}
}
