package tsdb

import (
	"math/rand"
	"testing"
	"time"
)

// benchBlockPoints synthesises one seal-threshold's worth of campaign-shaped
// points: hourly timestamps and the three speedtest fields, with the loss
// column mostly the simulator's clean-path constant — the data profile the
// compression numbers are honest against.
func benchBlockPoints(n int) []Point {
	rng := rand.New(rand.NewSource(11))
	base := time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)
	pts := make([]Point, n)
	for i := range pts {
		loss := 3e-7
		if rng.Intn(20) == 0 {
			loss = rng.Float64() * 0.05
		}
		pts[i] = Point{
			Time: base.Add(time.Duration(i) * time.Hour),
			Fields: map[string]float64{
				"mbps":   250 + 60*rng.Float64(),
				"rtt_ms": 20 + 10*rng.Float64(),
				"loss":   loss,
			},
		}
	}
	return pts
}

// BenchmarkBlockEncode seals one default-threshold block and reports the
// encoded footprint per sample (a sample is one Point: timestamp + three
// fields, 88 bytes as an analysis.Measurement, ~200 B as a live Point map).
func BenchmarkBlockEncode(b *testing.B) {
	pts := benchBlockPoints(DefaultSealThreshold)
	b.ResetTimer()
	b.ReportAllocs()
	var blk *block
	for i := 0; i < b.N; i++ {
		blk = encodeBlock(pts)
	}
	b.ReportMetric(float64(len(blk.data))/float64(blk.n), "bytes/sample")
}

// BenchmarkBlockDecode is the read side: one sealed block decoded back into
// a reused Point slice (the Fields maps are fresh per point — the same
// ownership Query hands to callers).
func BenchmarkBlockDecode(b *testing.B) {
	blk := encodeBlock(benchBlockPoints(DefaultSealThreshold))
	dst := make([]Point, 0, blk.n)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		dst, err = blk.decode(dst[:0])
		if err != nil {
			b.Fatal(err)
		}
		if len(dst) != blk.n {
			b.Fatalf("decoded %d points, want %d", len(dst), blk.n)
		}
	}
}
