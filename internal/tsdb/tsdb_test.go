package tsdb

import (
	"bytes"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)

func TestInsertAndQuery(t *testing.T) {
	s := NewStore()
	tags := Tags{"server": "42", "region": "us-west1", "dir": "down"}
	for h := 0; h < 24; h++ {
		err := s.Insert("throughput", tags, t0.Add(time.Duration(h)*time.Hour),
			map[string]float64{"mbps": float64(100 + h), "rtt_ms": 20})
		if err != nil {
			t.Fatal(err)
		}
	}
	if s.SeriesCount() != 1 {
		t.Errorf("series = %d", s.SeriesCount())
	}
	got := s.Query("throughput", Tags{"server": "42"}, time.Time{}, time.Time{})
	if len(got) != 1 || len(got[0].Points) != 24 {
		t.Fatalf("query returned %d series", len(got))
	}
	// Time-range restriction.
	got = s.Query("throughput", nil, t0.Add(6*time.Hour), t0.Add(12*time.Hour))
	if len(got) != 1 || len(got[0].Points) != 6 {
		t.Fatalf("range query points = %v", got)
	}
	if got[0].Points[0].Fields["mbps"] != 106 {
		t.Errorf("first point = %v", got[0].Points[0])
	}
	// Mismatch returns nothing.
	if r := s.Query("throughput", Tags{"server": "43"}, time.Time{}, time.Time{}); len(r) != 0 {
		t.Error("tag mismatch returned series")
	}
	if r := s.Query("latency", nil, time.Time{}, time.Time{}); len(r) != 0 {
		t.Error("wrong measurement returned series")
	}
}

func TestInsertValidation(t *testing.T) {
	s := NewStore()
	if err := s.Insert("", nil, t0, map[string]float64{"x": 1}); err == nil {
		t.Error("empty measurement accepted")
	}
	if err := s.Insert("m", Tags{"bad key": "v"}, t0, map[string]float64{"x": 1}); err == nil {
		t.Error("space in tag key accepted")
	}
	if err := s.Insert("m", Tags{"k": "a,b"}, t0, map[string]float64{"x": 1}); err == nil {
		t.Error("comma in tag value accepted")
	}
	if err := s.Insert("m", nil, t0, nil); err == nil {
		t.Error("fieldless point accepted")
	}
}

func TestOutOfOrderInsertKeptSorted(t *testing.T) {
	s := NewStore()
	times := []int{5, 1, 3, 2, 4, 0}
	for _, h := range times {
		s.Insert("m", nil, t0.Add(time.Duration(h)*time.Hour), map[string]float64{"v": float64(h)})
	}
	got := s.Query("m", nil, time.Time{}, time.Time{})[0]
	for i := 1; i < len(got.Points); i++ {
		if got.Points[i].Time.Before(got.Points[i-1].Time) {
			t.Fatalf("points not sorted: %v", got.Points)
		}
	}
	if got.Points[0].Fields["v"] != 0 || got.Points[5].Fields["v"] != 5 {
		t.Error("sorted values wrong")
	}
}

func TestSeparateSeriesPerTagSet(t *testing.T) {
	s := NewStore()
	s.Insert("m", Tags{"a": "1"}, t0, map[string]float64{"v": 1})
	s.Insert("m", Tags{"a": "2"}, t0, map[string]float64{"v": 2})
	s.Insert("m", Tags{"a": "1", "b": "x"}, t0, map[string]float64{"v": 3})
	if s.SeriesCount() != 3 {
		t.Errorf("series = %d, want 3", s.SeriesCount())
	}
	if got := s.Query("m", Tags{"a": "1"}, time.Time{}, time.Time{}); len(got) != 2 {
		t.Errorf("partial tag match returned %d series", len(got))
	}
}

func TestFieldValues(t *testing.T) {
	s := NewStore()
	s.Insert("m", Tags{"a": "1"}, t0, map[string]float64{"v": 1})
	s.Insert("m", Tags{"a": "2"}, t0, map[string]float64{"v": 2, "w": 9})
	vals := FieldValues(s.Query("m", nil, time.Time{}, time.Time{}), "v")
	if len(vals) != 2 {
		t.Errorf("FieldValues = %v", vals)
	}
	if len(FieldValues(s.Query("m", nil, time.Time{}, time.Time{}), "nope")) != 0 {
		t.Error("missing field returned values")
	}
}

func TestGroupByTime(t *testing.T) {
	s := NewStore()
	// Two points per hour for 4 hours.
	for h := 0; h < 4; h++ {
		for m := 0; m < 2; m++ {
			s.Insert("m", nil, t0.Add(time.Duration(h)*time.Hour+time.Duration(m*20)*time.Minute),
				map[string]float64{"v": float64(h*10 + m)})
		}
	}
	sr := s.Query("m", nil, time.Time{}, time.Time{})[0]
	buckets := GroupByTime(sr, "v", time.Hour, AggMax)
	if len(buckets) != 4 {
		t.Fatalf("buckets = %d", len(buckets))
	}
	for i, b := range buckets {
		if b.N != 2 {
			t.Errorf("bucket %d N = %d", i, b.N)
		}
		if b.Value != float64(i*10+1) {
			t.Errorf("bucket %d max = %v", i, b.Value)
		}
	}
	// Mean and min aggregators.
	if b := GroupByTime(sr, "v", time.Hour, AggMean); b[0].Value != 0.5 {
		t.Errorf("mean = %v", b[0].Value)
	}
	if b := GroupByTime(sr, "v", time.Hour, AggMin); b[3].Value != 30 {
		t.Errorf("min = %v", b[3].Value)
	}
	if GroupByTime(sr, "v", 0, AggMean) != nil {
		t.Error("zero window should return nil")
	}
}

// Regression: windows under one second used to compute bucket starts with
// int64(window.Seconds()) == 0 and panic with an integer divide by zero.
func TestGroupByTimeSubSecondWindow(t *testing.T) {
	s := NewStore()
	for i := 0; i < 8; i++ {
		s.Insert("m", nil, t0.Add(time.Duration(i)*100*time.Millisecond),
			map[string]float64{"v": float64(i)})
	}
	sr := s.Query("m", nil, time.Time{}, time.Time{})[0]
	buckets := GroupByTime(sr, "v", 250*time.Millisecond, AggMean)
	// Points at 0..700 ms in 250 ms windows: [0,250) [250,500) [500,750).
	if len(buckets) != 3 {
		t.Fatalf("buckets = %d, want 3", len(buckets))
	}
	for i, b := range buckets {
		want := t0.Add(time.Duration(i) * 250 * time.Millisecond)
		if !b.Start.Equal(want) {
			t.Errorf("bucket %d start = %v, want %v", i, b.Start, want)
		}
	}
	if buckets[0].N != 3 || buckets[1].N != 2 { // 0,100,200 ms then 300,400 ms
		t.Errorf("bucket sizes = %d, %d, want 3, 2", buckets[0].N, buckets[1].N)
	}
}

// Pre-epoch points round down to their window start (floored modulo), not
// toward zero.
func TestGroupByTimePreEpochFloors(t *testing.T) {
	s := NewStore()
	at := time.Unix(-90, 0).UTC() // 90 s before the epoch
	s.Insert("m", nil, at, map[string]float64{"v": 1})
	sr := s.Query("m", nil, time.Time{}, time.Time{})[0]
	buckets := GroupByTime(sr, "v", time.Minute, AggMean)
	if len(buckets) != 1 {
		t.Fatalf("buckets = %d", len(buckets))
	}
	if want := time.Unix(-120, 0).UTC(); !buckets[0].Start.Equal(want) {
		t.Errorf("bucket start = %v, want %v", buckets[0].Start, want)
	}
}

// Regression: Query used to return the store's own Tags and Point.Fields
// maps, so callers mutating a result silently corrupted stored samples.
func TestQueryResultsDoNotAliasStore(t *testing.T) {
	s := NewStore()
	tags := Tags{"server": "7"}
	if err := s.Insert("m", tags, t0, map[string]float64{"mbps": 100}); err != nil {
		t.Fatal(err)
	}
	got := s.Query("m", nil, time.Time{}, time.Time{})
	if len(got) != 1 {
		t.Fatalf("query returned %d series", len(got))
	}
	got[0].Tags["server"] = "evil"
	got[0].Tags["extra"] = "x"
	got[0].Points[0].Fields["mbps"] = -1
	got[0].Points[0].Fields["injected"] = 42

	again := s.Query("m", nil, time.Time{}, time.Time{})
	if len(again) != 1 {
		t.Fatalf("re-query returned %d series", len(again))
	}
	if v := again[0].Tags["server"]; v != "7" {
		t.Errorf("stored tag mutated through query result: server = %q", v)
	}
	if _, ok := again[0].Tags["extra"]; ok {
		t.Error("tag added through query result reached the store")
	}
	if v := again[0].Points[0].Fields["mbps"]; v != 100 {
		t.Errorf("stored field mutated through query result: mbps = %v", v)
	}
	if _, ok := again[0].Points[0].Fields["injected"]; ok {
		t.Error("field added through query result reached the store")
	}
}

func TestLineProtocolRoundTrip(t *testing.T) {
	s := NewStore()
	s.Insert("throughput", Tags{"server": "7", "tier": "premium"}, t0, map[string]float64{"mbps": 312.25, "loss": 0.001})
	s.Insert("throughput", Tags{"server": "7", "tier": "standard"}, t0.Add(time.Hour), map[string]float64{"mbps": 355})
	s.Insert("latency", nil, t0, map[string]float64{"rtt_ms": 42.5})

	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.SeriesCount() != 3 {
		t.Fatalf("round trip series = %d", got.SeriesCount())
	}
	q := got.Query("throughput", Tags{"tier": "premium"}, time.Time{}, time.Time{})
	if len(q) != 1 || q[0].Points[0].Fields["mbps"] != 312.25 || q[0].Points[0].Fields["loss"] != 0.001 {
		t.Errorf("round trip lost data: %+v", q)
	}
	if !q[0].Points[0].Time.Equal(t0) {
		t.Errorf("timestamp = %v", q[0].Points[0].Time)
	}
	// Serialisation is canonical: write(read(x)) == x.
	var buf2 bytes.Buffer
	got.WriteTo(&buf2)
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("serialisation not canonical")
	}
}

func TestParseLineErrors(t *testing.T) {
	bad := []string{
		"",
		"onlymeasurement",
		"m,badtag v=1",
		"m v=notafloat",
		"m v=1 notatimestamp",
		"m v=1 1 2 3",
		",empty v=1",
	}
	for _, line := range bad {
		if line == "" {
			continue
		}
		if _, _, _, _, err := ParseLine(line); err == nil {
			t.Errorf("ParseLine(%q): want error", line)
		}
	}
	// Timestampless line is valid.
	m, tags, fields, ts, err := ParseLine("cpu,host=a util=0.5")
	if err != nil || m != "cpu" || tags["host"] != "a" || fields["util"] != 0.5 || !ts.IsZero() {
		t.Errorf("ParseLine = %v %v %v %v %v", m, tags, fields, ts, err)
	}
}

func TestReadComments(t *testing.T) {
	src := "# header\n\ncpu util=1 1000\n"
	s, err := Read(bytes.NewReader([]byte(src)))
	if err != nil || s.SeriesCount() != 1 {
		t.Errorf("Read with comments: %v, series %d", err, s.SeriesCount())
	}
}

// Property: random stores round-trip through the line protocol.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewStore()
		for i := 0; i < 30; i++ {
			tags := Tags{"s": string(rune('a' + rng.Intn(5)))}
			at := t0.Add(time.Duration(rng.Intn(1000)) * time.Minute)
			s.Insert("m", tags, at, map[string]float64{"v": rng.Float64() * 1000})
		}
		var buf bytes.Buffer
		if _, err := s.WriteTo(&buf); err != nil {
			return false
		}
		got, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		var buf2 bytes.Buffer
		if _, err := got.WriteTo(&buf2); err != nil {
			return false
		}
		return bytes.Equal(buf.Bytes(), buf2.Bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: the line protocol round-trips the edge cases scenario fixtures
// lean on — negative and zero (epoch) timestamps, g-format float fields
// down to tiny exponents (1e-07 and friends), multi-field points, and
// tag-less series. WriteTo → Read must preserve every parsed value exactly,
// and a second WriteTo must be byte-identical (canonical serialisation).
func TestRoundTripEdgeCasesProperty(t *testing.T) {
	fieldNames := []string{"v", "mbps", "rtt_ms", "loss"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewStore()
		for i := 0; i < 40; i++ {
			var tags Tags
			if rng.Intn(3) > 0 { // one third of points land in tag-less series
				tags = Tags{"s": string(rune('a' + rng.Intn(3)))}
			}
			// Timestamps straddle the epoch: negative, zero and positive
			// nanosecond counts all occur.
			at := time.Unix(0, rng.Int63n(2_000_000)-1_000_000).UTC()
			if i == 0 {
				at = time.Unix(0, 0).UTC()
			}
			fields := make(map[string]float64)
			for _, fn := range fieldNames[:1+rng.Intn(len(fieldNames))] {
				v := rng.NormFloat64() * 1e3
				switch rng.Intn(4) {
				case 0:
					v = rng.Float64() * 1e-7 // forces 'g' exponent form, e.g. 1e-08
				case 1:
					v = 1e-07
				case 2:
					v = -v
				}
				fields[fn] = v
			}
			if err := s.Insert("m", tags, at, fields); err != nil {
				t.Logf("seed %d: insert: %v", seed, err)
				return false
			}
		}
		var buf bytes.Buffer
		if _, err := s.WriteTo(&buf); err != nil {
			return false
		}
		got, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Logf("seed %d: read: %v", seed, err)
			return false
		}
		// Value-level check, not just textual: every queried point survives
		// with bit-exact fields and timestamps.
		want := s.Query("m", nil, time.Time{}, time.Time{})
		have := got.Query("m", nil, time.Time{}, time.Time{})
		if !reflect.DeepEqual(want, have) {
			t.Logf("seed %d: queried series diverged after round trip", seed)
			return false
		}
		var buf2 bytes.Buffer
		if _, err := got.WriteTo(&buf2); err != nil {
			return false
		}
		return bytes.Equal(buf.Bytes(), buf2.Bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestConcurrentInsert hammers one store from many goroutines; under -race
// it verifies the locking, and the final counts verify no point was lost.
func TestConcurrentInsert(t *testing.T) {
	s := NewStore()
	const goroutines, points = 8, 100
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tags := Tags{"worker": string(rune('a' + g))}
			for i := 0; i < points; i++ {
				at := t0.Add(time.Duration(i) * time.Minute)
				if err := s.Insert("m", tags, at, map[string]float64{"v": float64(i)}); err != nil {
					errs[g] = err
					return
				}
				// Interleave reads with writes.
				if i%10 == 0 {
					s.Query("m", tags, time.Time{}, time.Time{})
					s.SeriesCount()
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if s.SeriesCount() != goroutines {
		t.Errorf("series = %d, want %d", s.SeriesCount(), goroutines)
	}
	for g := 0; g < goroutines; g++ {
		got := s.Query("m", Tags{"worker": string(rune('a' + g))}, time.Time{}, time.Time{})
		if len(got) != 1 || len(got[0].Points) != points {
			t.Errorf("worker %d: lost points: %d series", g, len(got))
		}
	}
}

func TestAggPercentile(t *testing.T) {
	agg := AggPercentile(95)
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	got := agg(xs)
	if got < 9.5 || got > 10 {
		t.Errorf("p95 = %v", got)
	}
	if v := AggPercentile(0)(xs); v != 1 {
		t.Errorf("p0 = %v", v)
	}
	if v := AggPercentile(100)(xs); v != 10 {
		t.Errorf("p100 = %v", v)
	}
	if v := AggPercentile(50)([]float64{7}); v != 7 {
		t.Errorf("single-sample median = %v", v)
	}
	// Out-of-range percentiles clamp.
	if v := AggPercentile(-5)(xs); v != 1 {
		t.Errorf("clamped low = %v", v)
	}
	if v := AggPercentile(200)(xs); v != 10 {
		t.Errorf("clamped high = %v", v)
	}
}

func TestGroupByTimeWithPercentile(t *testing.T) {
	s := NewStore()
	for m := 0; m < 60; m++ {
		s.Insert("tput", nil, t0.Add(time.Duration(m)*time.Minute), map[string]float64{"mbps": float64(m)})
	}
	sr := s.Query("tput", nil, time.Time{}, time.Time{})[0]
	buckets := GroupByTime(sr, "mbps", time.Hour, AggPercentile(95))
	if len(buckets) != 1 {
		t.Fatalf("buckets = %d", len(buckets))
	}
	if buckets[0].Value < 55 || buckets[0].Value > 59 {
		t.Errorf("hourly p95 = %v", buckets[0].Value)
	}
}

func TestAggregatorsEmptyInput(t *testing.T) {
	// Direct callers may hand aggregators an empty bucket; the built-ins
	// return 0 instead of NaN (AggMean) or panicking (the others).
	for name, agg := range map[string]Aggregator{
		"mean": AggMean, "max": AggMax, "min": AggMin, "p95": AggPercentile(95),
	} {
		if v := agg(nil); v != 0 {
			t.Errorf("%s(nil) = %v, want 0", name, v)
		}
		if v := agg([]float64{}); v != 0 {
			t.Errorf("%s(empty) = %v, want 0", name, v)
		}
	}
}

func TestAggPercentileScratchReuse(t *testing.T) {
	// The pooled scratch buffer must not leak state between calls or
	// mutate the caller's slice.
	agg := AggPercentile(50)
	xs := []float64{3, 1, 2}
	if v := agg(xs); v != 2 {
		t.Fatalf("median = %v", v)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
	if v := agg([]float64{10, 30}); v != 20 {
		t.Errorf("second call = %v (scratch leaked?)", v)
	}
	if v := agg([]float64{5}); v != 5 {
		t.Errorf("shrinking call = %v", v)
	}
}
