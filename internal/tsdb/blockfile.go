// On-disk block file format: a campaign's sealed store spills to a single
// file that can be re-opened and queried per series without decoding the
// rest. Layout (all integers varint unless noted):
//
//	header   8-byte magic "CLBF0001"
//	body     one section per series, at the offset its index entry records:
//	           uvarint blockCount, then per block:
//	             uvarint pointCount, varint minNs, varint maxNs,
//	             uvarint dataLen, data (block.data, see block.go)
//	index    uvarint seriesCount, then per series (sorted by key):
//	           uvarint keyLen, key bytes, uvarint offset, uvarint length
//	trailer  8-byte little-endian index offset + the magic again
//
// The series key is the store's own (measurement + canonical ",k=v" tags),
// so the index alone recovers measurement and tags: Query matches against
// parsed keys and reads only the matching sections via ReadAt.

package tsdb

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"github.com/clasp-measurement/clasp/internal/colenc"
)

const blockFileMagic = "CLBF0001"

// countWriter tracks the byte offset of a streamed write.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// WriteBlocks serialises the store in the block file format. Tails that
// have not reached the seal threshold are encoded into transient blocks on
// the fly without mutating the store. The snapshot is shard-by-shard, like
// WriteTo. Returns the bytes written.
func (s *Store) WriteBlocks(w io.Writer) (int64, error) {
	snaps := s.snapshotSeries()
	cw := &countWriter{w: w}
	if _, err := io.WriteString(cw, blockFileMagic); err != nil {
		return cw.n, err
	}
	type entry struct {
		key    string
		off    int64
		length int64
	}
	entries := make([]entry, 0, len(snaps))
	var buf []byte
	for _, snap := range snaps {
		blocks := snap.blocks
		if len(snap.tail) > 0 {
			blocks = append(append([]*block(nil), blocks...), encodeBlock(snap.tail))
		}
		if len(blocks) == 0 {
			continue
		}
		off := cw.n
		buf = colenc.AppendUvarint(buf[:0], uint64(len(blocks)))
		for _, b := range blocks {
			buf = colenc.AppendUvarint(buf, uint64(b.n))
			buf = colenc.AppendVarint(buf, b.minNs)
			buf = colenc.AppendVarint(buf, b.maxNs)
			buf = colenc.AppendUvarint(buf, uint64(len(b.data)))
			buf = append(buf, b.data...)
		}
		if _, err := cw.Write(buf); err != nil {
			return cw.n, err
		}
		entries = append(entries, entry{key: snap.key, off: off, length: cw.n - off})
	}
	indexOff := cw.n
	buf = colenc.AppendUvarint(buf[:0], uint64(len(entries)))
	for _, e := range entries {
		buf = colenc.AppendUvarint(buf, uint64(len(e.key)))
		buf = append(buf, e.key...)
		buf = colenc.AppendUvarint(buf, uint64(e.off))
		buf = colenc.AppendUvarint(buf, uint64(e.length))
	}
	var trailer [8]byte
	binary.LittleEndian.PutUint64(trailer[:], uint64(indexOff))
	buf = append(buf, trailer[:]...)
	buf = append(buf, blockFileMagic...)
	if _, err := cw.Write(buf); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// WriteBlocksFile writes the block-file serialisation to path crash-safely:
// the bytes go to a temp file in path's directory, are synced, and the temp
// file is renamed over path. A process killed mid-dump (the daemon-shutdown
// telemetry path) therefore never leaves a truncated block file at path —
// either the previous complete file survives, or the new one is complete.
func (s *Store) WriteBlocksFile(path string) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("tsdb: %w", err)
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("tsdb: writing block file: %w", err)
	}
	if _, err := s.WriteBlocks(f); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("tsdb: writing block file: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("tsdb: committing block file: %w", err)
	}
	return nil
}

// blockFileSeries is one index entry with its key parsed back into
// measurement and tags.
type blockFileSeries struct {
	key         string
	measurement string
	tags        Tags
	off         int64
	length      int64
}

// BlockFile is a read-only handle on a spilled store. Only the index lives
// in memory; Query reads and decodes just the matching series' sections.
// Safe for concurrent Query calls (reads go through ReadAt).
type BlockFile struct {
	f      *os.File
	series []blockFileSeries // sorted by key, as written
}

// OpenBlockFile opens a file written by WriteBlocks and parses its index.
func OpenBlockFile(path string) (*BlockFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	bf, err := newBlockFile(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return bf, nil
}

func newBlockFile(f *os.File) (*BlockFile, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < int64(2*len(blockFileMagic)+8) {
		return nil, fmt.Errorf("tsdb: block file too short (%d bytes)", size)
	}
	head := make([]byte, len(blockFileMagic))
	if _, err := f.ReadAt(head, 0); err != nil {
		return nil, err
	}
	if string(head) != blockFileMagic {
		return nil, fmt.Errorf("tsdb: bad block file magic %q", head)
	}
	trailer := make([]byte, 8+len(blockFileMagic))
	if _, err := f.ReadAt(trailer, size-int64(len(trailer))); err != nil {
		return nil, err
	}
	if string(trailer[8:]) != blockFileMagic {
		return nil, fmt.Errorf("tsdb: bad block file trailer magic %q", trailer[8:])
	}
	indexOff := int64(binary.LittleEndian.Uint64(trailer[:8]))
	indexEnd := size - int64(len(trailer))
	if indexOff < int64(len(blockFileMagic)) || indexOff > indexEnd {
		return nil, fmt.Errorf("tsdb: block file index offset %d out of range", indexOff)
	}
	raw := make([]byte, indexEnd-indexOff)
	if _, err := f.ReadAt(raw, indexOff); err != nil {
		return nil, err
	}
	n64, k := colenc.Uvarint(raw)
	if k == 0 {
		return nil, fmt.Errorf("tsdb: truncated block file index")
	}
	raw = raw[k:]
	series := make([]blockFileSeries, 0, int(n64))
	for i := 0; i < int(n64); i++ {
		kl, k := colenc.Uvarint(raw)
		if k == 0 || uint64(len(raw)-k) < kl {
			return nil, fmt.Errorf("tsdb: truncated block file index entry %d", i)
		}
		key := string(raw[k : k+int(kl)])
		raw = raw[k+int(kl):]
		off, k := colenc.Uvarint(raw)
		if k == 0 {
			return nil, fmt.Errorf("tsdb: truncated block file index entry %d", i)
		}
		raw = raw[k:]
		length, k := colenc.Uvarint(raw)
		if k == 0 {
			return nil, fmt.Errorf("tsdb: truncated block file index entry %d", i)
		}
		raw = raw[k:]
		measurement, tags, err := parseSeriesKey(key)
		if err != nil {
			return nil, fmt.Errorf("tsdb: block file index entry %d: %w", i, err)
		}
		series = append(series, blockFileSeries{
			key: key, measurement: measurement, tags: tags,
			off: int64(off), length: int64(length),
		})
	}
	return &BlockFile{f: f, series: series}, nil
}

// parseSeriesKey splits a store series key (measurement + canonical tag
// string) back into its parts; identifiers cannot contain ',' or '=', so
// the split is unambiguous.
func parseSeriesKey(key string) (string, Tags, error) {
	parts := strings.Split(key, ",")
	if parts[0] == "" {
		return "", nil, fmt.Errorf("empty measurement in key %q", key)
	}
	tags := make(Tags, len(parts)-1)
	for _, kv := range parts[1:] {
		k, v, ok := strings.Cut(kv, "=")
		if !ok || k == "" || v == "" {
			return "", nil, fmt.Errorf("bad tag %q in key %q", kv, key)
		}
		tags[k] = v
	}
	return parts[0], tags, nil
}

// Close releases the underlying file.
func (bf *BlockFile) Close() error { return bf.f.Close() }

// SeriesCount returns the number of series in the file.
func (bf *BlockFile) SeriesCount() int { return len(bf.series) }

// Keys returns the series keys in index (sorted) order.
func (bf *BlockFile) Keys() []string {
	keys := make([]string, len(bf.series))
	for i := range bf.series {
		keys[i] = bf.series[i].key
	}
	return keys
}

// Query selects points with Store.Query semantics (tag match, [from, to)
// bounds, series sorted by key, deep-owned results) but reads and decodes
// only the sections of matching series. Blocks wholly outside the time
// range are skipped using the per-block bounds in the section header,
// without decoding.
func (bf *BlockFile) Query(measurement string, match Tags, from, to time.Time) ([]Series, error) {
	var out []Series
	for i := range bf.series {
		e := &bf.series[i]
		if e.measurement != measurement {
			continue
		}
		ok := true
		for mk, mv := range match {
			if e.tags[mk] != mv {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		pts, err := bf.readSeries(e, from, to)
		if err != nil {
			return nil, err
		}
		if len(pts) == 0 {
			continue
		}
		tags := make(Tags, len(e.tags))
		for tk, tv := range e.tags {
			tags[tk] = tv
		}
		out = append(out, Series{Measurement: e.measurement, Tags: tags, Points: pts})
	}
	sort.Slice(out, func(i, j int) bool {
		return seriesKey(out[i].Measurement, out[i].Tags) < seriesKey(out[j].Measurement, out[j].Tags)
	})
	return out, nil
}

// readSeries loads one series' section and decodes the blocks overlapping
// [from, to).
func (bf *BlockFile) readSeries(e *blockFileSeries, from, to time.Time) ([]Point, error) {
	raw := make([]byte, e.length)
	if _, err := bf.f.ReadAt(raw, e.off); err != nil {
		return nil, fmt.Errorf("tsdb: block file read %q: %w", e.key, err)
	}
	nb64, k := colenc.Uvarint(raw)
	if k == 0 {
		return nil, fmt.Errorf("tsdb: truncated section for %q", e.key)
	}
	raw = raw[k:]
	var pts []Point
	for bi := 0; bi < int(nb64); bi++ {
		n64, k := colenc.Uvarint(raw)
		if k == 0 {
			return nil, fmt.Errorf("tsdb: truncated block header for %q", e.key)
		}
		raw = raw[k:]
		minNs, k := colenc.Varint(raw)
		if k == 0 {
			return nil, fmt.Errorf("tsdb: truncated block header for %q", e.key)
		}
		raw = raw[k:]
		maxNs, k := colenc.Varint(raw)
		if k == 0 {
			return nil, fmt.Errorf("tsdb: truncated block header for %q", e.key)
		}
		raw = raw[k:]
		dl, k := colenc.Uvarint(raw)
		if k == 0 || uint64(len(raw)-k) < dl {
			return nil, fmt.Errorf("tsdb: truncated block data for %q", e.key)
		}
		data := raw[k : k+int(dl)]
		raw = raw[k+int(dl):]
		if !from.IsZero() && maxNs < from.UnixNano() {
			continue
		}
		if !to.IsZero() && minNs >= to.UnixNano() {
			continue
		}
		b := &block{n: int(n64), minNs: minNs, maxNs: maxNs, data: data}
		decoded, err := b.decode(nil)
		if err != nil {
			return nil, fmt.Errorf("tsdb: block file %q: %w", e.key, err)
		}
		for i := range decoded {
			if !from.IsZero() && decoded[i].Time.Before(from) {
				continue
			}
			if !to.IsZero() && !decoded[i].Time.Before(to) {
				continue
			}
			pts = append(pts, decoded[i])
		}
	}
	return pts, nil
}
