package tsdb

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"
)

// --- Codec round trips -----------------------------------------------------------

// pointsEqual compares by timestamp nanosecond and field bit pattern, the
// sealed-block purity contract.
func pointsEqual(a, b []Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Time.UnixNano() != b[i].Time.UnixNano() {
			return false
		}
		if len(a[i].Fields) != len(b[i].Fields) {
			return false
		}
		for k, v := range a[i].Fields {
			w, ok := b[i].Fields[k]
			if !ok || math.Float64bits(v) != math.Float64bits(w) {
				return false
			}
		}
	}
	return true
}

func sortedTimes(ns []int64) []time.Time {
	out := make([]time.Time, len(ns))
	for i, v := range ns {
		out[i] = time.Unix(0, v).UTC()
	}
	return out
}

// TestBlockRoundTrip pins the codec on the shapes the issue calls out:
// pre-epoch timestamps, NaN/±Inf/denormal floats, constant and monotone
// series, single-sample blocks, and sparse fields.
func TestBlockRoundTrip(t *testing.T) {
	nan := math.Float64frombits(0x7ff8000000000001)
	cases := []struct {
		name string
		pts  []Point
	}{
		{"single", []Point{{Time: time.Unix(0, 42).UTC(), Fields: map[string]float64{"mbps": 1.5}}}},
		{"pre-epoch", []Point{
			{Time: time.Unix(0, -86400e9).UTC(), Fields: map[string]float64{"v": -1}},
			{Time: time.Unix(0, 0).UTC(), Fields: map[string]float64{"v": 0}},
			{Time: time.Unix(0, 1).UTC(), Fields: map[string]float64{"v": 1}},
		}},
		{"specials", []Point{
			{Time: time.Unix(1, 0).UTC(), Fields: map[string]float64{"v": nan}},
			{Time: time.Unix(2, 0).UTC(), Fields: map[string]float64{"v": math.Inf(1)}},
			{Time: time.Unix(3, 0).UTC(), Fields: map[string]float64{"v": math.Inf(-1)}},
			{Time: time.Unix(4, 0).UTC(), Fields: map[string]float64{"v": 5e-324}},
			{Time: time.Unix(5, 0).UTC(), Fields: map[string]float64{"v": math.Copysign(0, -1)}},
		}},
		{"constant", func() []Point {
			pts := make([]Point, 100)
			for i := range pts {
				pts[i] = Point{Time: time.Unix(int64(i)*3600, 0).UTC(), Fields: map[string]float64{"mbps": 250}}
			}
			return pts
		}()},
		{"monotone", func() []Point {
			pts := make([]Point, 100)
			for i := range pts {
				pts[i] = Point{Time: time.Unix(int64(i), 0).UTC(), Fields: map[string]float64{"v": float64(i) * 1.25}}
			}
			return pts
		}()},
		{"sparse-fields", []Point{
			{Time: time.Unix(1, 0).UTC(), Fields: map[string]float64{"mbps": 1, "rtt_ms": 2}},
			{Time: time.Unix(2, 0).UTC(), Fields: map[string]float64{"mbps": 3}},
			{Time: time.Unix(3, 0).UTC(), Fields: map[string]float64{"rtt_ms": 4, "loss": 0.1}},
			{Time: time.Unix(4, 0).UTC(), Fields: map[string]float64{"loss": 0}},
		}},
		{"duplicate-times", []Point{
			{Time: time.Unix(7, 0).UTC(), Fields: map[string]float64{"v": 1}},
			{Time: time.Unix(7, 0).UTC(), Fields: map[string]float64{"v": 2}},
			{Time: time.Unix(7, 0).UTC(), Fields: map[string]float64{"v": 3}},
		}},
	}
	for _, tc := range cases {
		b := encodeBlock(tc.pts)
		got, err := b.decode(nil)
		if err != nil {
			t.Fatalf("%s: decode: %v", tc.name, err)
		}
		if !pointsEqual(tc.pts, got) {
			t.Fatalf("%s: round trip drifted:\n in: %v\nout: %v", tc.name, tc.pts, got)
		}
		if b.minNs != tc.pts[0].Time.UnixNano() || b.maxNs != tc.pts[len(tc.pts)-1].Time.UnixNano() {
			t.Fatalf("%s: bad bounds [%d, %d]", tc.name, b.minNs, b.maxNs)
		}
	}
}

// TestBlockRoundTripRandom is the property test: arbitrary sorted
// timestamps, arbitrary bit-pattern floats, random field sparsity.
func TestBlockRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	fields := []string{"mbps", "rtt_ms", "loss"}
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(300) + 1
		ns := make([]int64, n)
		cur := rng.Int63n(2e18) - 1e18
		for i := range ns {
			ns[i] = cur
			cur += rng.Int63n(7200e9) // includes zero deltas
		}
		times := sortedTimes(ns)
		pts := make([]Point, n)
		for i := range pts {
			f := make(map[string]float64)
			for _, name := range fields {
				if rng.Intn(4) == 0 {
					continue // sparse
				}
				f[name] = math.Float64frombits(rng.Uint64())
			}
			if len(f) == 0 {
				f["v"] = float64(i)
			}
			pts[i] = Point{Time: times[i], Fields: f}
		}
		b := encodeBlock(pts)
		got, err := b.decode(nil)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if !pointsEqual(pts, got) {
			t.Fatalf("trial %d: round trip drifted", trial)
		}
	}
}

// FuzzBlockRoundTrip drives the codec from raw fuzz input: bytes become
// timestamps deltas and value bit patterns. The invariant under test is the
// sealed-block purity contract — encode→decode == input, bit for bit.
func FuzzBlockRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17})
	f.Add([]byte{0xff, 0x00, 0xff, 0x00, 0xff, 0x00, 0xff, 0x00, 0x80})
	f.Add(bytes.Repeat([]byte{0x42}, 64))
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < 17 {
			return
		}
		rng := rand.New(rand.NewSource(int64(raw[0])))
		n := int(raw[1])%64 + 1
		cur := int64(raw[2])<<40 - 1 // mix of pre/post epoch starts
		pts := make([]Point, 0, n)
		off := 3
		next := func() byte {
			b := raw[off%len(raw)]
			off++
			return b
		}
		for i := 0; i < n; i++ {
			cur += int64(next()) * 1e9
			var bits uint64
			for j := 0; j < 8; j++ {
				bits = bits<<8 | uint64(next())
			}
			f := map[string]float64{"v": math.Float64frombits(bits)}
			if next()%2 == 0 {
				f["w"] = float64(rng.NormFloat64())
			}
			pts = append(pts, Point{Time: time.Unix(0, cur).UTC(), Fields: f})
		}
		b := encodeBlock(pts)
		got, err := b.decode(nil)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !pointsEqual(pts, got) {
			t.Fatal("round trip drifted")
		}
	})
}

// --- Store behaviour with sealing ------------------------------------------------

// fillStores inserts the same pseudo-random campaign-shaped data into every
// store passed in.
func fillStores(t testing.TB, n int, stores ...*Store) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	base := time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		tags := Tags{"server": string(rune('a' + i%3)), "tier": "premium"}
		at := base.Add(time.Duration(i/3) * time.Hour)
		fields := map[string]float64{"mbps": rng.Float64() * 1000, "rtt_ms": rng.Float64() * 100}
		for _, s := range stores {
			if err := s.Insert("speedtest", tags, at, fields); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestSealedStoreMatchesUnsealed pins that sealing is invisible: Query
// results and WriteTo bytes are identical whether blocks are enabled
// (small threshold, many blocks) or disabled.
func TestSealedStoreMatchesUnsealed(t *testing.T) {
	sealed, plain := NewStore(), NewStore()
	sealed.SetSealThreshold(16)
	plain.SetSealThreshold(0)
	fillStores(t, 500, sealed, plain)

	blocks, pts, _ := sealed.BlockStats()
	if blocks == 0 || pts == 0 {
		t.Fatalf("expected sealed blocks, got %d blocks / %d points", blocks, pts)
	}
	if b, p, _ := plain.BlockStats(); b != 0 || p != 0 {
		t.Fatalf("plain store sealed anyway: %d blocks / %d points", b, p)
	}

	qs := sealed.Query("speedtest", nil, time.Time{}, time.Time{})
	qp := plain.Query("speedtest", nil, time.Time{}, time.Time{})
	if !reflect.DeepEqual(qs, qp) {
		t.Fatal("sealed Query differs from unsealed")
	}

	// Range query crossing block boundaries.
	from := time.Date(2020, 5, 3, 7, 0, 0, 0, time.UTC)
	to := time.Date(2020, 5, 5, 19, 0, 0, 0, time.UTC)
	if !reflect.DeepEqual(
		sealed.Query("speedtest", Tags{"server": "a"}, from, to),
		plain.Query("speedtest", Tags{"server": "a"}, from, to),
	) {
		t.Fatal("sealed range Query differs from unsealed")
	}

	var bs, bp bytes.Buffer
	if _, err := sealed.WriteTo(&bs); err != nil {
		t.Fatal(err)
	}
	if _, err := plain.WriteTo(&bp); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bs.Bytes(), bp.Bytes()) {
		t.Fatal("sealed WriteTo differs from unsealed")
	}
}

// TestSealedOutOfOrderInsertReopens covers the reopen path: a point older
// than the sealed range must land in its sorted position.
func TestSealedOutOfOrderInsertReopens(t *testing.T) {
	s := NewStore()
	s.SetSealThreshold(8)
	base := time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 20; i++ {
		if err := s.Insert("m", Tags{"k": "v"}, base.Add(time.Duration(i)*time.Hour), map[string]float64{"v": float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if blocks, _, _ := s.BlockStats(); blocks == 0 {
		t.Fatal("expected at least one sealed block")
	}
	// Before everything, and into the middle of the sealed range.
	late := []time.Time{base.Add(-time.Hour), base.Add(90 * time.Minute)}
	for i, at := range late {
		if err := s.Insert("m", Tags{"k": "v"}, at, map[string]float64{"v": -float64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	got := s.Query("m", nil, time.Time{}, time.Time{})
	if len(got) != 1 {
		t.Fatalf("got %d series", len(got))
	}
	pts := got[0].Points
	if len(pts) != 22 {
		t.Fatalf("got %d points, want 22", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Time.Before(pts[i-1].Time) {
			t.Fatalf("points out of order at %d: %v after %v", i, pts[i].Time, pts[i-1].Time)
		}
	}
	if !pts[0].Time.Equal(base.Add(-time.Hour)) {
		t.Fatalf("first point %v, want %v", pts[0].Time, base.Add(-time.Hour))
	}
}

// TestBlockStatsCompression pins the headline storage win: campaign-shaped
// hourly data must seal to well under the raw 16-byte (ts, value) pair
// per sample per field.
func TestBlockStatsCompression(t *testing.T) {
	s := NewStore()
	s.SetSealThreshold(512)
	fillStores(t, 3*2048, s)
	_, pts, encoded := s.BlockStats()
	if pts == 0 {
		t.Fatal("nothing sealed")
	}
	perSample := float64(encoded) / float64(2*pts) // two fields per point
	if perSample >= 16 {
		t.Fatalf("sealed bytes/sample = %.1f, want < 16 (raw pair size)", perSample)
	}
}

// --- QueryView -------------------------------------------------------------------

func TestQueryViewMatchesQuery(t *testing.T) {
	s := NewStore()
	s.SetSealThreshold(16)
	fillStores(t, 300, s)
	from := time.Date(2020, 5, 2, 0, 0, 0, 0, time.UTC)
	q := s.Query("speedtest", Tags{"server": "b"}, from, time.Time{})
	v := s.QueryView("speedtest", Tags{"server": "b"}, from, time.Time{})
	if !reflect.DeepEqual(q, v) {
		t.Fatal("QueryView differs from Query")
	}
	if !reflect.DeepEqual(s.Query("speedtest", nil, time.Time{}, time.Time{}),
		s.QueryView("speedtest", nil, time.Time{}, time.Time{})) {
		t.Fatal("unbounded QueryView differs from Query")
	}
}

// TestQueryViewAliasesStore pins the aliasing contract both ways: the view
// shares tail Fields maps and Tags with the store (that is the point — no
// copies on the hot path), and because stored maps are never mutated after
// insert, a reader holding a view stays correct across later inserts.
func TestQueryViewAliasesStore(t *testing.T) {
	s := NewStore()
	s.SetSealThreshold(0) // all points in the tail, where sharing applies
	at := time.Unix(100, 0).UTC()
	if err := s.Insert("m", Tags{"k": "v"}, at, map[string]float64{"f": 1}); err != nil {
		t.Fatal(err)
	}

	view := s.QueryView("m", nil, time.Time{}, time.Time{})
	copied := s.Query("m", nil, time.Time{}, time.Time{})

	sh := s.shardFor(seriesKey("m", Tags{"k": "v"}))
	stored := sh.series[seriesKey("m", Tags{"k": "v"})]

	viewFields := reflect.ValueOf(view[0].Points[0].Fields).Pointer()
	storeFields := reflect.ValueOf(stored.Points[0].Fields).Pointer()
	copyFields := reflect.ValueOf(copied[0].Points[0].Fields).Pointer()
	if viewFields != storeFields {
		t.Fatal("QueryView tail Fields should alias the store")
	}
	if copyFields == storeFields {
		t.Fatal("Query Fields must not alias the store")
	}
	if reflect.ValueOf(view[0].Tags).Pointer() != reflect.ValueOf(stored.Tags).Pointer() {
		t.Fatal("QueryView Tags should alias the store")
	}

	// A later insert must not disturb the view's already-captured points.
	if err := s.Insert("m", Tags{"k": "v"}, at.Add(time.Hour), map[string]float64{"f": 2}); err != nil {
		t.Fatal(err)
	}
	if len(view[0].Points) != 1 || view[0].Points[0].Fields["f"] != 1 {
		t.Fatal("view mutated by subsequent insert")
	}
}

// --- Concurrency -----------------------------------------------------------------

// TestWriteToConcurrentWithInserts is the -race pin for the shard-by-shard
// snapshot: serialisation runs while writers insert, and every serialised
// store must itself parse back cleanly.
func TestWriteToConcurrentWithInserts(t *testing.T) {
	s := NewStore()
	s.SetSealThreshold(32)
	base := time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tags := Tags{"server": string(rune('a' + g))}
			for i := 0; i < 600; i++ {
				at := base.Add(time.Duration(i) * time.Minute)
				if err := s.Insert("speedtest", tags, at, map[string]float64{"mbps": float64(i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	for round := 0; round < 6; round++ {
		var buf bytes.Buffer
		if _, err := s.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		if _, err := Read(&buf); err != nil {
			t.Fatalf("round %d: serialised store does not parse: %v", round, err)
		}
	}
	wg.Wait()
}
