// Package tsdb is the time-series store behind CLASP's data pipeline,
// standing in for InfluxDB: an in-memory series store with tagged points,
// an InfluxDB-style line protocol for persistence, time-range and tag
// queries, and time-bucketed aggregation for the hourly/daily rollups the
// congestion analysis consumes.
package tsdb

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/clasp-measurement/clasp/internal/obs"
	"github.com/clasp-measurement/clasp/internal/stats"
)

// Ingest telemetry (see DESIGN.md §8): per-shard insert counts expose the
// lock-stripe distribution, and the lock-wait histogram is a contention
// proxy — it times the Lock() acquisition itself, so queueing behind
// another writer shows up as a fat tail. Both no-op while the obs registry
// is disabled.
var (
	obsShardInserts [numShards]*obs.Counter
	obsLockWait     = obs.Default().Histogram("tsdb_lock_wait_ns")
)

func init() {
	for i := range obsShardInserts {
		obsShardInserts[i] = obs.Default().Counter("tsdb_inserts_total", "shard", strconv.Itoa(i))
	}
}

// lockShard write-locks sh, timing the acquisition when metrics are on.
func lockShard(sh *shard) {
	if !obs.Enabled() {
		sh.mu.Lock()
		return
	}
	start := time.Now()
	sh.mu.Lock()
	obsLockWait.Observe(float64(time.Since(start)))
}

// Tags are the indexed dimensions of a series (server, region, tier,
// direction, ...). Values must not contain spaces or commas.
type Tags map[string]string

// canonical renders tags in sorted key=value form.
func (t Tags) canonical() string {
	keys := make([]string, 0, len(t))
	for k := range t {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteByte(',')
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(t[k])
	}
	return b.String()
}

// Point is one timestamped observation with float fields.
type Point struct {
	Time   time.Time
	Fields map[string]float64
}

// Series is an ordered sequence of points for one measurement+tags. Inside
// the store, older points may live in sealed compressed blocks (see
// block.go) with Points holding only the mutable tail; series returned by
// Query/QueryView always have everything decoded into Points.
type Series struct {
	Measurement string
	Tags        Tags
	Points      []Point  // mutable tail, kept sorted by time
	blocks      []*block // sealed runs preceding the tail, time-ordered
}

// numShards stripes the store lock by series-key hash so concurrent
// inserts into different series rarely contend. Must be a power of two.
const numShards = 16

type shard struct {
	id     int // index into obsShardInserts
	mu     sync.RWMutex
	series map[string]*Series
}

// Store is a thread-safe collection of series. The lock is sharded by
// series key: writers to distinct series take distinct locks; whole-store
// readers (Query, QueryView, SeriesCount) lock every shard in order for a
// consistent snapshot, while WriteTo snapshots one shard at a time so
// serialisation never stalls more than one shard's writers.
type Store struct {
	shards        [numShards]shard
	sealThreshold int
}

// NewStore creates an empty store with sealing at DefaultSealThreshold.
func NewStore() *Store {
	s := &Store{sealThreshold: DefaultSealThreshold}
	for i := range s.shards {
		s.shards[i].id = i
		s.shards[i].series = make(map[string]*Series)
	}
	return s
}

// SetSealThreshold changes the tail length at which a series is sealed
// into a compressed block; 0 disables sealing (pure in-memory points, the
// pre-block behaviour). Call before concurrent use: the threshold is read
// without synchronisation on the insert path.
func (s *Store) SetSealThreshold(n int) {
	if n < 0 {
		n = 0
	}
	s.sealThreshold = n
}

// BlockStats reports the sealed state of the store: number of sealed
// blocks, points held inside them, and their total encoded bytes. Used by
// the compression benchmarks and tests.
func (s *Store) BlockStats() (blocks, points, bytes int) {
	defer s.lockAll()()
	for i := range s.shards {
		for _, sr := range s.shards[i].series {
			for _, b := range sr.blocks {
				blocks++
				points += b.n
				bytes += len(b.data)
			}
		}
	}
	return blocks, points, bytes
}

// DropBefore discards history older than cutoff and returns the number of
// points removed — the retention knob for long-lived self-telemetry stores.
// Granularity is deliberately coarse on the sealed side: a compressed block
// is dropped only when its entire time range precedes the cutoff (blocks
// are immutable; splitting one would mean decode + re-seal). The mutable
// tail drops its strict prefix of points before the cutoff. Series entries
// themselves are never removed, even when emptied: interned Handles hold
// *Series pointers, and deleting the map entry would silently divorce a
// handle's future inserts from queries.
func (s *Store) DropBefore(cutoff time.Time) int {
	cut := cutoff.UnixNano()
	dropped := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, sr := range sh.series {
			if len(sr.blocks) > 0 {
				keep := sr.blocks[:0:0] // fresh backing; snapshots may share the old one
				for _, b := range sr.blocks {
					if b.maxNs < cut {
						dropped += b.n
						continue
					}
					keep = append(keep, b)
				}
				sr.blocks = keep
			}
			idx := sort.Search(len(sr.Points), func(j int) bool { return !sr.Points[j].Time.Before(cutoff) })
			if idx > 0 {
				dropped += idx
				sr.Points = append(sr.Points[:0:0], sr.Points[idx:]...)
			}
		}
		sh.mu.Unlock()
	}
	return dropped
}

func seriesKey(measurement string, tags Tags) string {
	return measurement + tags.canonical()
}

// shardFor hashes a series key (FNV-1a) onto its shard.
func (s *Store) shardFor(key string) *shard {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return &s.shards[h&(numShards-1)]
}

// lockAll read-locks every shard in index order and returns the unlock.
func (s *Store) lockAll() func() {
	for i := range s.shards {
		s.shards[i].mu.RLock()
	}
	return func() {
		for i := range s.shards {
			s.shards[i].mu.RUnlock()
		}
	}
}

func validateIdent(s string) error {
	if s == "" {
		return fmt.Errorf("tsdb: empty identifier")
	}
	if strings.ContainsAny(s, " ,=\n") {
		return fmt.Errorf("tsdb: identifier %q contains reserved characters", s)
	}
	return nil
}

// Insert adds a point. Fields are copied.
func (s *Store) Insert(measurement string, tags Tags, at time.Time, fields map[string]float64) error {
	if err := validateIdent(measurement); err != nil {
		return err
	}
	for k, v := range tags {
		if err := validateIdent(k); err != nil {
			return err
		}
		if err := validateIdent(v); err != nil {
			return err
		}
	}
	if len(fields) == 0 {
		return fmt.Errorf("tsdb: point without fields")
	}
	for k := range fields {
		if err := validateIdent(k); err != nil {
			return err
		}
	}
	cp := make(map[string]float64, len(fields))
	for k, v := range fields {
		cp[k] = v
	}
	key := seriesKey(measurement, tags)
	sh := s.shardFor(key)
	lockShard(sh)
	defer sh.mu.Unlock()
	sr := sh.series[key]
	if sr == nil {
		tcp := make(Tags, len(tags))
		for k, v := range tags {
			tcp[k] = v
		}
		sr = &Series{Measurement: measurement, Tags: tcp}
		sh.series[key] = sr
	}
	sr.insertSealed(Point{Time: at, Fields: cp}, s.sealThreshold)
	obsShardInserts[sh.id].Inc()
	return nil
}

// insertPoint adds a point keeping Points time-sorted. Callers hold the
// owning shard's write lock.
func (sr *Series) insertPoint(p Point) {
	at := p.Time
	// Fast path: append in time order.
	if n := len(sr.Points); n == 0 || !at.Before(sr.Points[n-1].Time) {
		sr.Points = append(sr.Points, p)
		return
	}
	idx := sort.Search(len(sr.Points), func(i int) bool { return sr.Points[i].Time.After(at) })
	sr.Points = append(sr.Points, Point{})
	copy(sr.Points[idx+1:], sr.Points[idx:])
	sr.Points[idx] = p
}

// Handle is an interned reference to one series: the canonical tag string
// is rendered and hashed once, so repeated inserts into the same series
// (the orchestrator's sink pattern) skip key construction entirely.
type Handle struct {
	st *Store
	sh *shard
	sr *Series
}

// Handle interns a (measurement, tags) series, creating it if absent. Tags
// are copied; later mutation of the argument does not affect the handle.
func (s *Store) Handle(measurement string, tags Tags) (*Handle, error) {
	if err := validateIdent(measurement); err != nil {
		return nil, err
	}
	for k, v := range tags {
		if err := validateIdent(k); err != nil {
			return nil, err
		}
		if err := validateIdent(v); err != nil {
			return nil, err
		}
	}
	key := seriesKey(measurement, tags)
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sr := sh.series[key]
	if sr == nil {
		tcp := make(Tags, len(tags))
		for k, v := range tags {
			tcp[k] = v
		}
		sr = &Series{Measurement: measurement, Tags: tcp}
		sh.series[key] = sr
	}
	return &Handle{st: s, sh: sh, sr: sr}, nil
}

// Insert adds a point to the handle's series. Fields are copied. Equivalent
// to Store.Insert with the handle's measurement and tags.
func (h *Handle) Insert(at time.Time, fields map[string]float64) error {
	if len(fields) == 0 {
		return fmt.Errorf("tsdb: point without fields")
	}
	for k := range fields {
		if err := validateIdent(k); err != nil {
			return err
		}
	}
	cp := make(map[string]float64, len(fields))
	for k, v := range fields {
		cp[k] = v
	}
	lockShard(h.sh)
	defer h.sh.mu.Unlock()
	h.sr.insertSealed(Point{Time: at, Fields: cp}, h.st.sealThreshold)
	obsShardInserts[h.sh.id].Inc()
	return nil
}

// SeriesCount returns the number of distinct series.
func (s *Store) SeriesCount() int {
	defer s.lockAll()()
	n := 0
	for i := range s.shards {
		n += len(s.shards[i].series)
	}
	return n
}

// Query selects points from series of a measurement whose tags match all
// entries of `match` (empty matches everything) within [from, to).
// Zero times disable that bound. Results are grouped per series, sorted by
// series key.
//
// The returned series are deep copies: Tags and every Point.Fields map are
// owned by the caller, so mutating a query result never corrupts stored
// samples (pinned by TestQueryResultsDoNotAliasStore).
func (s *Store) Query(measurement string, match Tags, from, to time.Time) []Series {
	defer s.lockAll()()
	byKey := make(map[string]*Series)
	keys := make([]string, 0)
	for i := range s.shards {
		for k, sr := range s.shards[i].series {
			if sr.Measurement != measurement {
				continue
			}
			ok := true
			for mk, mv := range match {
				if sr.Tags[mk] != mv {
					ok = false
					break
				}
			}
			if ok {
				keys = append(keys, k)
				byKey[k] = sr
			}
		}
	}
	sort.Strings(keys)
	var out []Series
	for _, k := range keys {
		sr := byKey[k]
		pts := sr.appendBlockPoints(nil, from, to)
		for _, p := range sr.Points {
			if !from.IsZero() && p.Time.Before(from) {
				continue
			}
			if !to.IsZero() && !p.Time.Before(to) {
				continue
			}
			fields := make(map[string]float64, len(p.Fields))
			for fk, fv := range p.Fields {
				fields[fk] = fv
			}
			pts = append(pts, Point{Time: p.Time, Fields: fields})
		}
		if len(pts) == 0 {
			continue
		}
		tags := make(Tags, len(sr.Tags))
		for tk, tv := range sr.Tags {
			tags[tk] = tv
		}
		out = append(out, Series{Measurement: sr.Measurement, Tags: tags, Points: pts})
	}
	return out
}

// appendBlockPoints decodes the series' sealed blocks overlapping
// [from, to) into dst. Decoded points carry fresh field maps either way, so
// Query and QueryView share this path. Callers hold at least a read lock on
// the owning shard.
func (sr *Series) appendBlockPoints(dst []Point, from, to time.Time) []Point {
	for _, b := range sr.blocks {
		if !from.IsZero() && b.maxNs < from.UnixNano() {
			continue
		}
		if !to.IsZero() && b.minNs >= to.UnixNano() {
			continue
		}
		dst = b.appendPoints(dst, from, to)
	}
	return dst
}

// QueryView is Query without the defensive deep copy: the hot path for the
// analysis engine, which reads millions of points and never mutates them.
//
// Aliasing contract: the returned Tags maps and the tail points' Fields
// maps ALIAS live store memory. This is safe to read concurrently with
// inserts — the store treats both as immutable after creation (Insert
// copies its arguments into fresh maps and never mutates a stored map) —
// but a caller that writes through a view corrupts the store. Treat every
// map in the result as read-only; callers that need ownership must use
// Query. Point structs themselves are copied (insertions memmove the
// stored slice), so the Time/len structure of a view is stable. Pinned by
// TestQueryViewAliasesStore and TestQueryViewMatchesQuery.
func (s *Store) QueryView(measurement string, match Tags, from, to time.Time) []Series {
	defer s.lockAll()()
	byKey := make(map[string]*Series)
	keys := make([]string, 0)
	for i := range s.shards {
		for k, sr := range s.shards[i].series {
			if sr.Measurement != measurement {
				continue
			}
			ok := true
			for mk, mv := range match {
				if sr.Tags[mk] != mv {
					ok = false
					break
				}
			}
			if ok {
				keys = append(keys, k)
				byKey[k] = sr
			}
		}
	}
	sort.Strings(keys)
	var out []Series
	for _, k := range keys {
		sr := byKey[k]
		pts := sr.appendBlockPoints(nil, from, to)
		for _, p := range sr.Points {
			if !from.IsZero() && p.Time.Before(from) {
				continue
			}
			if !to.IsZero() && !p.Time.Before(to) {
				continue
			}
			pts = append(pts, p) // struct copy; Fields map shared
		}
		if len(pts) == 0 {
			continue
		}
		out = append(out, Series{Measurement: sr.Measurement, Tags: sr.Tags, Points: pts})
	}
	return out
}

// FieldValues flattens a queried series list into the values of one field.
func FieldValues(series []Series, field string) []float64 {
	var out []float64
	for _, sr := range series {
		for _, p := range sr.Points {
			if v, ok := p.Fields[field]; ok {
				out = append(out, v)
			}
		}
	}
	return out
}

// Aggregator reduces a bucket of values to one value. GroupByTime only
// invokes aggregators with non-empty buckets; the built-ins additionally
// guard the empty case for direct callers, returning 0 rather than NaN
// (AggMean's old behaviour) or panicking (AggMax/AggMin/AggPercentile).
type Aggregator func([]float64) float64

// Built-in aggregators.
var (
	AggMean Aggregator = func(xs []float64) float64 {
		if len(xs) == 0 {
			return 0
		}
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	AggMax Aggregator = func(xs []float64) float64 {
		if len(xs) == 0 {
			return 0
		}
		m := xs[0]
		for _, x := range xs[1:] {
			if x > m {
				m = x
			}
		}
		return m
	}
	AggMin Aggregator = func(xs []float64) float64 {
		if len(xs) == 0 {
			return 0
		}
		m := xs[0]
		for _, x := range xs[1:] {
			if x < m {
				m = x
			}
		}
		return m
	}
)

// aggScratch pools the sort buffer behind AggPercentile so per-bucket
// rollups stop allocating once the pool is warm.
var aggScratch = sync.Pool{New: func() any { b := make([]float64, 0, 64); return &b }}

// AggPercentile returns an aggregator for the p-th percentile (0-100),
// linearly interpolated — the rollup behind the paper's p95/p5 plots.
// Returns 0 on an empty bucket (see Aggregator).
func AggPercentile(p float64) Aggregator {
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	return func(xs []float64) float64 {
		if len(xs) == 0 {
			return 0
		}
		// Selection, not a sort: rollup buckets are small and only the two
		// bracketing order statistics matter. Typical buckets (hourly
		// rollups) fit the stack buffer; larger ones borrow pooled scratch.
		var a [32]float64
		if len(xs) <= len(a) {
			t := a[:len(xs)]
			copy(t, xs)
			v, _ := stats.PercentileInPlace(t, p)
			return v
		}
		bp := aggScratch.Get().(*[]float64)
		s := append((*bp)[:0], xs...)
		v, _ := stats.PercentileInPlace(s, p)
		*bp = s
		aggScratch.Put(bp)
		return v
	}
}

// Bucket is one aggregated time window.
type Bucket struct {
	Start time.Time
	Value float64
	N     int
}

// GroupByTime buckets one series' field by window and aggregates each
// bucket. Buckets align to the Unix epoch. Empty buckets are never
// materialised, so agg is always called with at least one value.
//
// Bucket starts are computed in nanoseconds with a floored modulo, so
// sub-second windows work (the old seconds-based arithmetic divided by
// int64(window.Seconds()) == 0 for window < time.Second) and pre-epoch
// points round down rather than toward zero.
func GroupByTime(sr Series, field string, window time.Duration, agg Aggregator) []Bucket {
	if window <= 0 || agg == nil {
		return nil
	}
	w := window.Nanoseconds()
	byStart := make(map[int64][]float64)
	for _, p := range sr.Points {
		v, ok := p.Fields[field]
		if !ok {
			continue
		}
		ns := p.Time.UnixNano()
		rem := ns % w
		if rem < 0 {
			rem += w
		}
		byStart[ns-rem] = append(byStart[ns-rem], v)
	}
	starts := make([]int64, 0, len(byStart))
	for s := range byStart {
		starts = append(starts, s)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	out := make([]Bucket, 0, len(starts))
	for _, st := range starts {
		xs := byStart[st]
		out = append(out, Bucket{Start: time.Unix(0, st).UTC(), Value: agg(xs), N: len(xs)})
	}
	return out
}

// --- Line protocol -------------------------------------------------------------

// seriesSnap is a point-in-time copy of one series taken under its shard's
// read lock: blocks are immutable and shared, tail Point structs are copied
// (insertions memmove the live slice) while their Fields maps are shared
// (never mutated after insert), and Tags are shared for the same reason.
type seriesSnap struct {
	key         string
	measurement string
	tags        Tags
	blocks      []*block
	tail        []Point
}

// snapshotSeries collects a consistent-per-shard snapshot of every series,
// holding only one shard's read lock at a time so concurrent inserts stall
// for at most one shard, not the whole store (pinned by the -race test
// TestWriteToConcurrentWithInserts).
func (s *Store) snapshotSeries() []seriesSnap {
	var snaps []seriesSnap
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, sr := range sh.series {
			snaps = append(snaps, seriesSnap{
				key:         k,
				measurement: sr.Measurement,
				tags:        sr.Tags,
				blocks:      append([]*block(nil), sr.blocks...),
				tail:        append([]Point(nil), sr.Points...),
			})
		}
		sh.mu.RUnlock()
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].key < snaps[j].key })
	return snaps
}

// WriteTo serialises the store in InfluxDB line protocol, sorted by series
// key then time. The snapshot is taken shard-by-shard: each series is
// internally consistent and the output is a valid store state, but series
// on different shards may be captured at slightly different instants when
// inserts run concurrently.
func (s *Store) WriteTo(w io.Writer) (int64, error) {
	snaps := s.snapshotSeries()
	bw := bufio.NewWriter(w)
	var n int64
	var scratch []Point
	for _, snap := range snaps {
		scratch = scratch[:0]
		for _, b := range snap.blocks {
			scratch = b.appendPoints(scratch, time.Time{}, time.Time{})
		}
		scratch = append(scratch, snap.tail...)
		for _, p := range scratch {
			fields := make([]string, 0, len(p.Fields))
			for fk := range p.Fields {
				fields = append(fields, fk)
			}
			sort.Strings(fields)
			var fb strings.Builder
			for i, fk := range fields {
				if i > 0 {
					fb.WriteByte(',')
				}
				fmt.Fprintf(&fb, "%s=%s", fk, strconv.FormatFloat(p.Fields[fk], 'g', -1, 64))
			}
			c, err := fmt.Fprintf(bw, "%s%s %s %d\n", snap.measurement, snap.tags.canonical(), fb.String(), p.Time.UnixNano())
			n += int64(c)
			if err != nil {
				return n, err
			}
		}
	}
	return n, bw.Flush()
}

// Read parses line protocol into a new store.
func Read(r io.Reader) (*Store, error) {
	s := NewStore()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		measurement, tags, fields, ts, err := ParseLine(line)
		if err != nil {
			return nil, fmt.Errorf("tsdb: line %d: %w", lineNo, err)
		}
		if err := s.Insert(measurement, tags, ts, fields); err != nil {
			return nil, fmt.Errorf("tsdb: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// ParseLine parses one line-protocol record:
// measurement[,tag=value...] field=value[,field=value...] [timestamp_ns]
func ParseLine(line string) (measurement string, tags Tags, fields map[string]float64, ts time.Time, err error) {
	parts := strings.Fields(line)
	if len(parts) < 2 || len(parts) > 3 {
		return "", nil, nil, time.Time{}, fmt.Errorf("want 2-3 space-separated sections, got %d", len(parts))
	}
	head := strings.Split(parts[0], ",")
	measurement = head[0]
	if measurement == "" {
		return "", nil, nil, time.Time{}, fmt.Errorf("empty measurement")
	}
	tags = make(Tags)
	for _, kv := range head[1:] {
		k, v, ok := strings.Cut(kv, "=")
		if !ok || k == "" || v == "" {
			return "", nil, nil, time.Time{}, fmt.Errorf("bad tag %q", kv)
		}
		tags[k] = v
	}
	fields = make(map[string]float64)
	for _, kv := range strings.Split(parts[1], ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return "", nil, nil, time.Time{}, fmt.Errorf("bad field %q", kv)
		}
		f, perr := strconv.ParseFloat(v, 64)
		if perr != nil {
			return "", nil, nil, time.Time{}, fmt.Errorf("bad field value %q", v)
		}
		fields[k] = f
	}
	if len(parts) == 3 {
		ns, perr := strconv.ParseInt(parts[2], 10, 64)
		if perr != nil {
			return "", nil, nil, time.Time{}, fmt.Errorf("bad timestamp %q", parts[2])
		}
		ts = time.Unix(0, ns).UTC()
	}
	return measurement, tags, fields, ts, nil
}
