// Package loadgen drives a running speedtestd with concurrent
// real-protocol clients — Ookla over raw TCP, ndt7 over WebSocket and
// Xfinity-style HTTP — and then reports the daemon's serving-path latency
// percentiles. The percentiles are deliberately NOT measured client-side:
// they are reconstructed from the daemon's own scraped self-telemetry via
// /debug/obs/history, so the harness exercises the whole observability
// pipeline (middleware histogram → scraper → columnar self-store → history
// endpoint → windowed quantile) end to end.
package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"github.com/clasp-measurement/clasp/internal/speedtest/ndt7"
	"github.com/clasp-measurement/clasp/internal/speedtest/ookla"
	"github.com/clasp-measurement/clasp/internal/speedtest/xfinity"
	"github.com/clasp-measurement/clasp/internal/telemetry"
	"github.com/clasp-measurement/clasp/internal/tsdb"
)

// HTTPDurationFamily mirrors daemon.HTTPDurationFamily without importing
// the server side: loadgen only needs the daemon's HTTP surface, so it can
// drive a remote speedtestd it does not link against.
const HTTPDurationFamily = "speedtestd_http_request_duration_ns"

// OoklaDurationFamily is the per-command histogram family the Ookla server
// records (the TCP protocol never passes through the HTTP middleware).
const OoklaDurationFamily = "ookla_command_duration_ns"

// Config tunes one load run.
type Config struct {
	// HTTPAddr is the daemon's HTTP address (ndt7 + xfinity + history).
	HTTPAddr string
	// OoklaAddr is the daemon's Ookla TCP address; "" drops ookla from
	// the platform mix.
	OoklaAddr string

	// Clients is the number of concurrent client goroutines (default 8).
	Clients int
	// PerClient is how many tests each client runs back to back
	// (default 1). Total tests = Clients × PerClient.
	PerClient int
	// Duration bounds each transfer phase within a test (default 100ms;
	// a full test runs a handful of phases).
	Duration time.Duration
	// Platforms is the mix cycled across tests ("ookla", "mlab",
	// "comcast"); default is all three (minus ookla when OoklaAddr is "").
	Platforms []string

	// SettleTimeout bounds the post-drive wait for the daemon's scraper
	// to publish the final counts into its self-store (default 10s). The
	// harness polls the history endpoint until the serving-path window
	// stops growing.
	SettleTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.PerClient <= 0 {
		c.PerClient = 1
	}
	if c.Duration <= 0 {
		c.Duration = 100 * time.Millisecond
	}
	if len(c.Platforms) == 0 {
		if c.OoklaAddr != "" {
			c.Platforms = []string{"ookla", "mlab", "comcast"}
		} else {
			c.Platforms = []string{"mlab", "comcast"}
		}
	}
	if c.SettleTimeout <= 0 {
		c.SettleTimeout = 10 * time.Second
	}
	return c
}

// Quantiles is the windowed latency summary of one tagged histogram
// series group (one route/status pair, or one ookla command). Values are
// nanoseconds, straight from the daemon's histograms.
type Quantiles struct {
	Tags  map[string]string `json:"tags"`
	Count uint64            `json:"count"`
	P50   float64           `json:"p50_ns"`
	P90   float64           `json:"p90_ns"`
	P99   float64           `json:"p99_ns"`
}

// Result is one load run's outcome.
type Result struct {
	Requested int            `json:"requested"`
	Succeeded int            `json:"succeeded"`
	Failed    int            `json:"failed"`
	ByPlat    map[string]int `json:"by_platform"`
	Errors    []string       `json:"errors,omitempty"` // first few failure messages
	Elapsed   time.Duration  `json:"elapsed_ns"`

	// HTTP holds per-route/status serving-path percentiles for the drive
	// window, computed from the daemon's scraped history. Ookla holds the
	// per-command equivalents when OoklaAddr was set.
	HTTP  []Quantiles `json:"http"`
	Ookla []Quantiles `json:"ookla,omitempty"`
}

// maxErrors bounds how many failure messages a Result carries.
const maxErrors = 5

// Run executes the load drive and assembles percentiles from the daemon's
// scraped history. A client failure does not abort the run — it is
// tallied — but a history/scrape failure does, since the percentiles are
// the harness's whole point.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	start := time.Now()
	res := &Result{
		Requested: cfg.Clients * cfg.PerClient,
		ByPlat:    make(map[string]int),
	}

	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			for j := 0; j < cfg.PerClient; j++ {
				plat := cfg.Platforms[(client*cfg.PerClient+j)%len(cfg.Platforms)]
				err := cfg.runOne(ctx, plat)
				mu.Lock()
				if err != nil {
					res.Failed++
					if len(res.Errors) < maxErrors {
						res.Errors = append(res.Errors, fmt.Sprintf("%s: %v", plat, err))
					}
				} else {
					res.Succeeded++
					res.ByPlat[plat]++
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)

	// The daemon scrapes on its own cadence; wait until the serving-path
	// window covering the drive stops growing before reading percentiles.
	// The stability check must ignore the introspection routes: polling
	// the history endpoint is itself instrumented traffic, so counting it
	// would chase our own tail and never converge.
	settle, cancel := context.WithTimeout(ctx, cfg.SettleTimeout)
	httpQ, err := settleQuantiles(settle, cfg.HTTPAddr, HTTPDurationFamily, start, func(q Quantiles) bool {
		r := q.Tags["route"]
		return r != "/debug/obs/history" && r != "/metrics"
	})
	cancel()
	if err != nil {
		return res, fmt.Errorf("loadgen: serving-path history: %w", err)
	}
	res.HTTP = httpQ
	if cfg.OoklaAddr != "" {
		settle, cancel := context.WithTimeout(ctx, cfg.SettleTimeout)
		oq, err := settleQuantiles(settle, cfg.HTTPAddr, OoklaDurationFamily, start, nil)
		cancel()
		if err != nil {
			return res, fmt.Errorf("loadgen: ookla history: %w", err)
		}
		res.Ookla = oq
	}
	return res, nil
}

// runOne executes a single test on the chosen platform.
func (c Config) runOne(ctx context.Context, plat string) error {
	switch plat {
	case "ookla":
		_, err := ookla.NewClient(ookla.Config{
			PingCount:        2,
			DownloadDuration: c.Duration,
			UploadDuration:   c.Duration,
			BlockBytes:       64 << 10,
		}).Run(ctx, c.OoklaAddr)
		return err
	case "mlab":
		_, err := ndt7.NewClient(ndt7.Config{Duration: c.Duration}).Run(ctx, c.HTTPAddr)
		return err
	case "comcast":
		_, err := xfinity.NewClient(xfinity.Config{
			Connections: 2,
			Duration:    c.Duration,
			ObjectBytes: 256 << 10,
			PingCount:   2,
		}).Run(ctx, c.HTTPAddr)
		return err
	default:
		return fmt.Errorf("unknown platform %q", plat)
	}
}

// FetchQuantiles reads one histogram family's scraped bucket series from a
// daemon's /debug/obs/history endpoint and reduces the [from, now] window
// to per-group p50/p90/p99.
func FetchQuantiles(ctx context.Context, httpAddr, family string, from time.Time) ([]Quantiles, error) {
	series, to, err := fetchBuckets(ctx, httpAddr, family)
	if err != nil {
		return nil, err
	}
	return reduce(series, from, to), nil
}

// settleQuantiles polls FetchQuantiles until the family's total windowed
// count — over groups passing the include filter (nil includes all) — is
// stable across two polls (the scraper has caught up with the drive) or
// ctx expires, returning the last snapshot either way, so a slow scraper
// degrades to "best effort" only after the full timeout.
func settleQuantiles(ctx context.Context, httpAddr, family string, from time.Time, include func(Quantiles) bool) ([]Quantiles, error) {
	var prev uint64
	var last []Quantiles
	first := true
	for {
		q, err := FetchQuantiles(ctx, httpAddr, family, from)
		if err != nil {
			return nil, err
		}
		var total uint64
		for _, g := range q {
			if include != nil && !include(g) {
				continue
			}
			total += g.Count
		}
		if !first && total > 0 && total == prev {
			return q, nil
		}
		first, prev, last = false, total, q
		select {
		case <-ctx.Done():
			return last, nil
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// fetchBuckets GETs the family's "<family>_bucket" history (unbounded
// window: quantile reconstruction needs the pre-drive baselines too).
func fetchBuckets(ctx context.Context, httpAddr, family string) ([]tsdb.Series, time.Time, error) {
	url := fmt.Sprintf("http://%s/debug/obs/history?measurement=%s_bucket", httpAddr, family)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, time.Time{}, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, time.Time{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, time.Time{}, fmt.Errorf("history endpoint: HTTP %d", resp.StatusCode)
	}
	var hr telemetry.HistoryResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		return nil, time.Time{}, fmt.Errorf("history decode: %w", err)
	}
	return hr.ToSeries(), time.Now(), nil
}

// reduce windows the bucket series and keeps only groups active in the
// window, sorted by descending count (busiest route first).
func reduce(series []tsdb.Series, from, to time.Time) []Quantiles {
	windows := telemetry.WindowsFromSeries(series, from, to)
	out := make([]Quantiles, 0, len(windows))
	for _, w := range windows {
		if w.Count == 0 {
			continue
		}
		out = append(out, Quantiles{
			Tags:  w.Tags,
			Count: w.Count,
			P50:   w.Quantile(0.50),
			P90:   w.Quantile(0.90),
			P99:   w.Quantile(0.99),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return fmt.Sprint(out[i].Tags) < fmt.Sprint(out[j].Tags)
	})
	return out
}
