// Package analysis turns CLASP's raw measurement records into the paper's
// result artifacts: monthly p95-throughput/p5-latency performance points
// (Fig. 4), relative tier differences and their CDFs (Fig. 5), premium-tier
// loss attribution (§4.1), and business-type breakdowns of congested
// servers (Fig. 8).
package analysis

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"github.com/clasp-measurement/clasp/internal/bgp"
	"github.com/clasp-measurement/clasp/internal/congestion"
	"github.com/clasp-measurement/clasp/internal/netsim"
	"github.com/clasp-measurement/clasp/internal/obs"
	"github.com/clasp-measurement/clasp/internal/stats"
	"github.com/clasp-measurement/clasp/internal/topology"
	"github.com/clasp-measurement/clasp/internal/tsdb"
)

// Measurement is one completed speed test record, the unit stored in the
// results bucket and indexed into the time-series store.
type Measurement struct {
	ServerID int
	Region   string
	Tier     bgp.Tier
	Dir      netsim.Direction
	Time     time.Time
	Mbps     float64
	RTTms    float64
	Loss     float64
}

// PairKey identifies a VM-server measurement pair.
type PairKey struct {
	ServerID int
	Region   string
	Tier     bgp.Tier
	Dir      netsim.Direction
}

// Key returns the measurement's pair key.
func (m Measurement) Key() PairKey {
	return PairKey{ServerID: m.ServerID, Region: m.Region, Tier: m.Tier, Dir: m.Dir}
}

// pairIDString renders "region/serverID/tier/dir" without fmt — the only
// string construction in the grouping hot loop, called once per pair.
func pairIDString(region string, serverID int, tier bgp.Tier, dir netsim.Direction) string {
	t, d := tier.String(), dir.String()
	b := make([]byte, 0, len(region)+len(t)+len(d)+23)
	b = append(b, region...)
	b = append(b, '/')
	b = strconv.AppendInt(b, int64(serverID), 10)
	b = append(b, '/')
	b = append(b, t...)
	b = append(b, '/')
	b = append(b, d...)
	return string(b)
}

// GroupSeries converts measurements into congestion-analysis series, one
// per pair, filtered by direction and tier. It is a projection of
// GroupSeriesWithServer (same kernel, server attribution dropped).
func GroupSeries(ms []Measurement, dir netsim.Direction, tier bgp.Tier) []congestion.Series {
	return GroupSeriesCursor(NewSliceCursor(ms), dir, tier)
}

// GroupSeriesCursor is GroupSeries over a measurement cursor.
func GroupSeriesCursor(c Cursor, dir netsim.Direction, tier bgp.Tier) []congestion.Series {
	withServer := GroupSeriesWithServerCursor(c, dir, tier)
	out := make([]congestion.Series, len(withServer))
	for i := range withServer {
		out[i] = withServer[i].Series
	}
	return out
}

// SeriesWithServer pairs a congestion series with the server it measures.
type SeriesWithServer struct {
	ServerID int
	Region   string
	Series   congestion.Series
}

// denseServerMax bounds the dense serverID→slot tables: IDs in [0, denseMax)
// index a flat slice (no hashing); anything else falls back to a map keyed
// by the full PairKey. Real topologies number servers from zero, so the
// fallback never runs in practice.
const denseServerMax = 1 << 20

// groupBuffers is the per-call scratch of the grouping kernel — the staged
// samples and their slot assignments never escape, so they are pooled.
type groupBuffers struct {
	samples []congestion.Sample
	slotOf  []int32
}

var groupScratch = sync.Pool{New: func() any { return new(groupBuffers) }}

// GroupSeriesWithServer groups measurements into per-pair series with the
// server attribution the congestion-by-business-type and Fig. 6 analyses
// need. One count-then-fill kernel: pass 1 stages each matching sample in a
// pooled scratch buffer and resolves its pair slot through interned regions
// plus a dense serverID table (no string hashing in the hot loop), then a
// scatter pass fills one contiguous pre-sized buffer whose subslices become
// the series. Sortedness is tracked per slot during the scan, so already
// time-ordered pairs (the campaign's hour-major layout) skip sorting.
func GroupSeriesWithServer(ms []Measurement, dir netsim.Direction, tier bgp.Tier) []SeriesWithServer {
	return GroupSeriesWithServerCursor(NewSliceCursor(ms), dir, tier)
}

// GroupSeriesWithServerCursor runs the grouping kernel over a measurement
// cursor, one batch at a time: only the matching samples are staged, so
// the peak footprint is the output plus one input block, independent of
// stream length. A SliceCursor degenerates to the old contiguous loop.
func GroupSeriesWithServerCursor(c Cursor, dir netsim.Direction, tier bgp.Tier) []SeriesWithServer {
	sp := obs.Trace("analysis.group")
	defer sp.End()
	obsGroupCalls.Inc()

	type pairSlot struct {
		regionIdx   int32
		serverID    int
		count, next int       // sample count; fill cursor into buf
		last        time.Time // last staged sample time, for the sorted check
		unsorted    bool
	}
	var (
		regions    []string  // interned region names; index = regionIdx
		tables     [][]int32 // per region: serverID -> slot+1
		lastRegion string
		lastIdx    int32
		overflow   map[PairKey]int32 // IDs outside [0, denseServerMax)
		slots      []pairSlot
	)
	gb := groupScratch.Get().(*groupBuffers)
	tmp := gb.samples[:0]
	slotOf := gb.slotOf[:0]
	records := 0
	for ms := c.Next(); ms != nil; ms = c.Next() {
		records += len(ms)
		for i := range ms {
			m := &ms[i]
			if m.Dir != dir || m.Tier != tier {
				continue
			}
			ri := lastIdx
			if m.Region != lastRegion || regions == nil {
				ri = -1
				for r, name := range regions {
					if name == m.Region {
						ri = int32(r)
						break
					}
				}
				if ri < 0 {
					ri = int32(len(regions))
					regions = append(regions, m.Region)
					tables = append(tables, nil)
				}
				lastRegion, lastIdx = m.Region, ri
			}
			var si int32
			if id := m.ServerID; id >= 0 && id < denseServerMax {
				t := tables[ri]
				if id >= len(t) {
					nt := make([]int32, id+64)
					copy(nt, t)
					tables[ri] = nt
					t = nt
				}
				si = t[id] - 1
				if si < 0 {
					si = int32(len(slots))
					t[id] = si + 1
					slots = append(slots, pairSlot{regionIdx: ri, serverID: id})
				}
			} else {
				if overflow == nil {
					overflow = make(map[PairKey]int32)
				}
				k := PairKey{ServerID: id, Region: m.Region, Tier: tier, Dir: dir}
				v, ok := overflow[k]
				if !ok {
					v = int32(len(slots))
					overflow[k] = v
					slots = append(slots, pairSlot{regionIdx: ri, serverID: id})
				}
				si = v
			}
			s := &slots[si]
			if s.count > 0 && m.Time.Before(s.last) {
				s.unsorted = true
			}
			s.last = m.Time
			s.count++
			tmp = append(tmp, congestion.Sample{Time: m.Time, Mbps: m.Mbps})
			slotOf = append(slotOf, si)
		}
	}
	obsGroupRecords.Add(uint64(records))
	sp.WithInt("records", records)
	if len(slots) == 0 {
		gb.samples, gb.slotOf = tmp, slotOf
		groupScratch.Put(gb)
		return nil
	}
	// Deterministic pair order: region, then server ID (unchanged from the
	// map-of-slices implementation).
	order := make([]int32, len(slots))
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		ka, kb := &slots[order[a]], &slots[order[b]]
		if ka.regionIdx != kb.regionIdx {
			return regions[ka.regionIdx] < regions[kb.regionIdx]
		}
		return ka.serverID < kb.serverID
	})
	total := len(tmp)
	off := 0
	for _, si := range order {
		slots[si].next = off
		off += slots[si].count
	}
	buf := make([]congestion.Sample, total)
	for j, si := range slotOf {
		s := &slots[si]
		buf[s.next] = tmp[j]
		s.next++
	}
	out := make([]SeriesWithServer, 0, len(order))
	for _, si := range order {
		s := &slots[si]
		samples := buf[s.next-s.count : s.next : s.next]
		if s.unsorted {
			sort.Slice(samples, func(a, b int) bool { return samples[a].Time.Before(samples[b].Time) })
		}
		out = append(out, SeriesWithServer{
			ServerID: s.serverID,
			Region:   regions[s.regionIdx],
			Series: congestion.Series{
				PairID:  pairIDString(regions[s.regionIdx], s.serverID, tier, dir),
				Samples: samples,
			},
		})
	}
	gb.samples, gb.slotOf = tmp, slotOf
	groupScratch.Put(gb)
	obsGroupSeries.Add(uint64(len(out)))
	sp.WithInt("series", len(out))
	return out
}

// SeriesFromStore reconstructs congestion-analysis series from the
// time-series store (the paper's pipeline: raw results land in InfluxDB,
// the analysis reads hourly series back out). Filters mirror GroupSeries.
// Reads go through QueryView — the store's maps are never written to, so
// the copy-free read-only path is safe here (see tsdb.Store.QueryView).
func SeriesFromStore(store *tsdb.Store, dir netsim.Direction, tier bgp.Tier) []congestion.Series {
	match := tsdb.Tags{"dir": dir.String(), "tier": tier.String()}
	var out []congestion.Series
	for _, sr := range store.QueryView("speedtest", match, time.Time{}, time.Time{}) {
		cs := congestion.Series{
			PairID: fmt.Sprintf("%s/%s/%s/%s", sr.Tags["region"], sr.Tags["server"], sr.Tags["tier"], sr.Tags["dir"]),
		}
		for _, p := range sr.Points {
			if v, ok := p.Fields["mbps"]; ok {
				cs.Samples = append(cs.Samples, congestion.Sample{Time: p.Time, Mbps: v})
			}
		}
		if len(cs.Samples) > 0 {
			out = append(out, cs)
		}
	}
	return out
}

// --- Fig. 4: monthly performance points ---------------------------------------

// PerfPoint is one scatter point of Fig. 4: a server's 95th-percentile
// download throughput and 5th-percentile latency within one month.
type PerfPoint struct {
	ServerID int
	Region   string
	Month    time.Month
	Year     int
	P95Down  float64
	P5LatMs  float64
	N        int
}

// PerfPoints computes one point per (server, region, month) from download
// measurements, mirroring Fig. 4's use of p95/p5 to mitigate outliers.
// Same count-then-fill kernel as the series grouping, with interned region
// names keeping strings out of the slot map. The per-group throughput and
// latency samples land in two contiguous buffers and each percentile is
// selected (stats.PercentileInPlace) rather than paying a full sort.
func PerfPoints(ms []Measurement) []PerfPoint {
	return PerfPointsCursor(NewSliceCursor(ms))
}

// PerfPointsCursor is PerfPoints over a measurement cursor. The kernel was
// already two-pass (count, then re-scan and fill); the cursor version
// replays the stream with Reset instead of re-walking a slice, so it holds
// two contiguous float columns plus one input block, never the records.
func PerfPointsCursor(c Cursor) []PerfPoint {
	type slotKey struct {
		server, ym int // ym = year*12 + month: (year, month) order preserved
		ri         int32
	}
	type slot struct {
		server      int
		ri          int32
		year        int
		month       time.Month
		count, next int
	}
	var (
		regions    []string
		lastRegion string
		lastIdx    int32
	)
	idx := make(map[slotKey]int32)
	var slots []slot
	var slotOf []int32
	for ms := c.Next(); ms != nil; ms = c.Next() {
		for i := range ms {
			m := &ms[i]
			if m.Dir != netsim.Download {
				continue
			}
			ri := lastIdx
			if m.Region != lastRegion || regions == nil {
				ri = -1
				for r, name := range regions {
					if name == m.Region {
						ri = int32(r)
						break
					}
				}
				if ri < 0 {
					ri = int32(len(regions))
					regions = append(regions, m.Region)
				}
				lastRegion, lastIdx = m.Region, ri
			}
			year, month, _ := m.Time.Date()
			k := slotKey{server: m.ServerID, ym: year*12 + int(month), ri: ri}
			si, ok := idx[k]
			if !ok {
				si = int32(len(slots))
				idx[k] = si
				slots = append(slots, slot{server: m.ServerID, ri: ri, year: year, month: month})
			}
			slots[si].count++
			slotOf = append(slotOf, si)
		}
	}
	if len(slots) == 0 {
		return nil
	}
	order := make([]int32, len(slots))
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := &slots[order[i]], &slots[order[j]]
		if a.ri != b.ri {
			return regions[a.ri] < regions[b.ri]
		}
		if a.server != b.server {
			return a.server < b.server
		}
		if a.year != b.year {
			return a.year < b.year
		}
		return a.month < b.month
	})
	total := len(slotOf)
	off := 0
	for _, si := range order {
		slots[si].next = off
		off += slots[si].count
	}
	down := make([]float64, total)
	lat := make([]float64, total)
	j := 0
	c.Reset()
	for ms := c.Next(); ms != nil; ms = c.Next() {
		for i := range ms {
			m := &ms[i]
			if m.Dir != netsim.Download {
				continue
			}
			s := &slots[slotOf[j]]
			j++
			down[s.next] = m.Mbps
			lat[s.next] = m.RTTms
			s.next++
		}
	}
	out := make([]PerfPoint, 0, len(order))
	for _, si := range order {
		s := &slots[si]
		d := down[s.next-s.count : s.next]
		l := lat[s.next-s.count : s.next]
		p95, _ := stats.PercentileInPlace(d, 95)
		p5, _ := stats.PercentileInPlace(l, 5)
		out = append(out, PerfPoint{
			ServerID: s.server, Region: regions[s.ri], Month: s.month, Year: s.year,
			P95Down: p95, P5LatMs: p5, N: len(d),
		})
	}
	return out
}

// MarginalKDE returns the kernel density of one PerfPoint dimension, for
// the marginal curves on Fig. 4's axes.
func MarginalKDE(points []PerfPoint, latency bool) ([]stats.KDEPoint, error) {
	xs := make([]float64, 0, len(points))
	for _, p := range points {
		if latency {
			xs = append(xs, p.P5LatMs)
		} else {
			xs = append(xs, p.P95Down)
		}
	}
	return stats.KDE(xs, 128, 0)
}

// --- Fig. 5: relative tier differences ------------------------------------------

// Metric selects which measurement dimension a tier delta compares.
type Metric int

// Comparable metrics (the paper's d/u/l subscripts).
const (
	MetricDownload Metric = iota
	MetricUpload
	MetricLatency
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	switch m {
	case MetricDownload:
		return "download"
	case MetricUpload:
		return "upload"
	default:
		return "latency"
	}
}

// TierDelta is one same-hour premium/standard comparison:
// Δ = (T_prem - T_std) / T_std (§4.1).
type TierDelta struct {
	ServerID int
	Time     time.Time
	Metric   Metric
	Delta    float64
}

// TierDeltas pairs measurements of the two tiers taken for the same
// (server, region, direction) in the same hour and computes the relative
// difference for the requested metric.
func TierDeltas(ms []Measurement, region string, metric Metric) []TierDelta {
	return TierDeltasCursor(NewSliceCursor(ms), region, metric)
}

// TierDeltasCursor is TierDeltas over a measurement cursor. Only the
// matched (server, hour) pairs are retained, not the input stream.
func TierDeltasCursor(c Cursor, region string, metric Metric) []TierDelta {
	type key struct {
		server int
		hour   int64
	}
	wantDir := netsim.Download
	if metric == MetricUpload {
		wantDir = netsim.Upload
	}
	prem := make(map[key]Measurement)
	std := make(map[key]Measurement)
	for ms := c.Next(); ms != nil; ms = c.Next() {
		for _, m := range ms {
			if m.Region != region {
				continue
			}
			// Latency deltas ride on download tests (each test reports RTT).
			if m.Dir != wantDir {
				continue
			}
			k := key{m.ServerID, m.Time.Unix() / 3600}
			if m.Tier == bgp.Premium {
				prem[k] = m
			} else {
				std[k] = m
			}
		}
	}
	var out []TierDelta
	for k, p := range prem {
		s, ok := std[k]
		if !ok {
			continue
		}
		var pv, sv float64
		if metric == MetricLatency {
			pv, sv = p.RTTms, s.RTTms
		} else {
			pv, sv = p.Mbps, s.Mbps
		}
		if sv == 0 {
			continue
		}
		out = append(out, TierDelta{
			ServerID: k.server,
			Time:     time.Unix(k.hour*3600, 0).UTC(),
			Metric:   metric,
			Delta:    (pv - sv) / sv,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Time.Equal(out[j].Time) {
			return out[i].Time.Before(out[j].Time)
		}
		return out[i].ServerID < out[j].ServerID
	})
	return out
}

// DeltaCDF builds the empirical CDF of the deltas (one Fig. 5 curve).
func DeltaCDF(deltas []TierDelta) ([]stats.CDFPoint, error) {
	xs := make([]float64, len(deltas))
	for i, d := range deltas {
		xs[i] = d.Delta
	}
	return stats.CDF(xs)
}

// FractionStandardHigher returns the fraction of throughput deltas where
// the standard tier outperformed premium (Δ < 0).
func FractionStandardHigher(deltas []TierDelta) float64 {
	if len(deltas) == 0 {
		return 0
	}
	n := 0
	for _, d := range deltas {
		if d.Delta < 0 {
			n++
		}
	}
	return float64(n) / float64(len(deltas))
}

// FractionWithin returns the fraction of deltas with |Δ| < bound (the
// paper: <50 % in over 92 % of measurements).
func FractionWithin(deltas []TierDelta, bound float64) float64 {
	if len(deltas) == 0 {
		return 0
	}
	n := 0
	for _, d := range deltas {
		if d.Delta < bound && d.Delta > -bound {
			n++
		}
	}
	return float64(n) / float64(len(deltas))
}

// --- §4.1: premium-tier loss attribution ----------------------------------------

// LossySummary reports a server whose premium-tier download tests carried
// persistent loss.
type LossySummary struct {
	ServerID int
	MeanLoss float64
	N        int
}

// PremiumLossTargets returns servers whose average premium-tier download
// loss exceeds the threshold (the paper found eight above 10 %).
func PremiumLossTargets(ms []Measurement, region string, threshold float64) []LossySummary {
	return PremiumLossTargetsCursor(NewSliceCursor(ms), region, threshold)
}

// PremiumLossTargetsCursor is PremiumLossTargets over a measurement cursor.
func PremiumLossTargetsCursor(c Cursor, region string, threshold float64) []LossySummary {
	sum := make(map[int]float64)
	n := make(map[int]int)
	for ms := c.Next(); ms != nil; ms = c.Next() {
		for _, m := range ms {
			if m.Region != region || m.Tier != bgp.Premium || m.Dir != netsim.Download {
				continue
			}
			sum[m.ServerID] += m.Loss
			n[m.ServerID]++
		}
	}
	var out []LossySummary
	for id, s := range sum {
		mean := s / float64(n[id])
		if mean > threshold {
			out = append(out, LossySummary{ServerID: id, MeanLoss: mean, N: n[id]})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].MeanLoss > out[j].MeanLoss })
	return out
}

// --- Fig. 8: business-type breakdown ---------------------------------------------

// BusinessOf resolves a server's ipinfo-style business category via its AS.
func BusinessOf(topo *topology.Topology, serverID int) topology.BusinessType {
	s := topo.Server(serverID)
	if s == nil {
		return topology.BizUnknown
	}
	a := topo.AS(s.ASN)
	if a == nil {
		return topology.BizUnknown
	}
	return a.Business
}

// Fig8Row counts congested and total servers of one business type.
type Fig8Row struct {
	Region    string
	Type      topology.BusinessType
	Congested int
	Total     int
}

// Fig8Counts groups servers by business type per region, splitting
// congested from non-congested (congested = pair flagged by the >10 %-of-
// days rule).
func Fig8Counts(topo *topology.Topology, region string, serverIDs []int, congested map[int]bool) []Fig8Row {
	counts := make(map[topology.BusinessType]*Fig8Row)
	for _, id := range serverIDs {
		b := BusinessOf(topo, id)
		row := counts[b]
		if row == nil {
			row = &Fig8Row{Region: region, Type: b}
			counts[b] = row
		}
		row.Total++
		if congested[id] {
			row.Congested++
		}
	}
	var out []Fig8Row
	for _, row := range counts {
		out = append(out, *row)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Type < out[j].Type })
	return out
}
