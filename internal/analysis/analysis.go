// Package analysis turns CLASP's raw measurement records into the paper's
// result artifacts: monthly p95-throughput/p5-latency performance points
// (Fig. 4), relative tier differences and their CDFs (Fig. 5), premium-tier
// loss attribution (§4.1), and business-type breakdowns of congested
// servers (Fig. 8).
package analysis

import (
	"fmt"
	"sort"
	"time"

	"github.com/clasp-measurement/clasp/internal/bgp"
	"github.com/clasp-measurement/clasp/internal/congestion"
	"github.com/clasp-measurement/clasp/internal/netsim"
	"github.com/clasp-measurement/clasp/internal/stats"
	"github.com/clasp-measurement/clasp/internal/topology"
	"github.com/clasp-measurement/clasp/internal/tsdb"
)

// Measurement is one completed speed test record, the unit stored in the
// results bucket and indexed into the time-series store.
type Measurement struct {
	ServerID int
	Region   string
	Tier     bgp.Tier
	Dir      netsim.Direction
	Time     time.Time
	Mbps     float64
	RTTms    float64
	Loss     float64
}

// PairKey identifies a VM-server measurement pair.
type PairKey struct {
	ServerID int
	Region   string
	Tier     bgp.Tier
	Dir      netsim.Direction
}

// Key returns the measurement's pair key.
func (m Measurement) Key() PairKey {
	return PairKey{ServerID: m.ServerID, Region: m.Region, Tier: m.Tier, Dir: m.Dir}
}

// GroupSeries converts measurements into congestion-analysis series, one
// per pair, filtered by direction and tier.
func GroupSeries(ms []Measurement, dir netsim.Direction, tier bgp.Tier) []congestion.Series {
	byPair := make(map[PairKey][]congestion.Sample)
	for _, m := range ms {
		if m.Dir != dir || m.Tier != tier {
			continue
		}
		k := m.Key()
		byPair[k] = append(byPair[k], congestion.Sample{Time: m.Time, Mbps: m.Mbps})
	}
	keys := make([]PairKey, 0, len(byPair))
	for k := range byPair {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Region != keys[j].Region {
			return keys[i].Region < keys[j].Region
		}
		return keys[i].ServerID < keys[j].ServerID
	})
	out := make([]congestion.Series, 0, len(keys))
	for _, k := range keys {
		samples := byPair[k]
		sort.Slice(samples, func(i, j int) bool { return samples[i].Time.Before(samples[j].Time) })
		out = append(out, congestion.Series{
			PairID:  fmt.Sprintf("%s/%d/%s/%s", k.Region, k.ServerID, k.Tier, k.Dir),
			Samples: samples,
		})
	}
	return out
}

// SeriesWithServer pairs a congestion series with the server it measures.
type SeriesWithServer struct {
	ServerID int
	Region   string
	Series   congestion.Series
}

// GroupSeriesWithServer is GroupSeries keeping the server attribution that
// the congestion-by-business-type and Fig. 6 analyses need.
func GroupSeriesWithServer(ms []Measurement, dir netsim.Direction, tier bgp.Tier) []SeriesWithServer {
	byPair := make(map[PairKey][]congestion.Sample)
	for _, m := range ms {
		if m.Dir != dir || m.Tier != tier {
			continue
		}
		byPair[m.Key()] = append(byPair[m.Key()], congestion.Sample{Time: m.Time, Mbps: m.Mbps})
	}
	keys := make([]PairKey, 0, len(byPair))
	for k := range byPair {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Region != keys[j].Region {
			return keys[i].Region < keys[j].Region
		}
		return keys[i].ServerID < keys[j].ServerID
	})
	out := make([]SeriesWithServer, 0, len(keys))
	for _, k := range keys {
		samples := byPair[k]
		sort.Slice(samples, func(i, j int) bool { return samples[i].Time.Before(samples[j].Time) })
		out = append(out, SeriesWithServer{
			ServerID: k.ServerID,
			Region:   k.Region,
			Series: congestion.Series{
				PairID:  fmt.Sprintf("%s/%d/%s/%s", k.Region, k.ServerID, k.Tier, k.Dir),
				Samples: samples,
			},
		})
	}
	return out
}

// SeriesFromStore reconstructs congestion-analysis series from the
// time-series store (the paper's pipeline: raw results land in InfluxDB,
// the analysis reads hourly series back out). Filters mirror GroupSeries.
func SeriesFromStore(store *tsdb.Store, dir netsim.Direction, tier bgp.Tier) []congestion.Series {
	match := tsdb.Tags{"dir": dir.String(), "tier": tier.String()}
	var out []congestion.Series
	for _, sr := range store.Query("speedtest", match, time.Time{}, time.Time{}) {
		cs := congestion.Series{
			PairID: fmt.Sprintf("%s/%s/%s/%s", sr.Tags["region"], sr.Tags["server"], sr.Tags["tier"], sr.Tags["dir"]),
		}
		for _, p := range sr.Points {
			if v, ok := p.Fields["mbps"]; ok {
				cs.Samples = append(cs.Samples, congestion.Sample{Time: p.Time, Mbps: v})
			}
		}
		if len(cs.Samples) > 0 {
			out = append(out, cs)
		}
	}
	return out
}

// --- Fig. 4: monthly performance points ---------------------------------------

// PerfPoint is one scatter point of Fig. 4: a server's 95th-percentile
// download throughput and 5th-percentile latency within one month.
type PerfPoint struct {
	ServerID int
	Region   string
	Month    time.Month
	Year     int
	P95Down  float64
	P5LatMs  float64
	N        int
}

// PerfPoints computes one point per (server, region, month) from download
// measurements, mirroring Fig. 4's use of p95/p5 to mitigate outliers.
func PerfPoints(ms []Measurement) []PerfPoint {
	type key struct {
		server int
		region string
		year   int
		month  time.Month
	}
	down := make(map[key][]float64)
	lat := make(map[key][]float64)
	for _, m := range ms {
		if m.Dir != netsim.Download {
			continue
		}
		k := key{m.ServerID, m.Region, m.Time.Year(), m.Time.Month()}
		down[k] = append(down[k], m.Mbps)
		lat[k] = append(lat[k], m.RTTms)
	}
	keys := make([]key, 0, len(down))
	for k := range down {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.region != b.region {
			return a.region < b.region
		}
		if a.server != b.server {
			return a.server < b.server
		}
		if a.year != b.year {
			return a.year < b.year
		}
		return a.month < b.month
	})
	out := make([]PerfPoint, 0, len(keys))
	for _, k := range keys {
		d := down[k]
		l := lat[k]
		p95, err1 := stats.Percentile(d, 95)
		p5, err2 := stats.Percentile(l, 5)
		if err1 != nil || err2 != nil {
			continue
		}
		out = append(out, PerfPoint{
			ServerID: k.server, Region: k.region, Month: k.month, Year: k.year,
			P95Down: p95, P5LatMs: p5, N: len(d),
		})
	}
	return out
}

// MarginalKDE returns the kernel density of one PerfPoint dimension, for
// the marginal curves on Fig. 4's axes.
func MarginalKDE(points []PerfPoint, latency bool) ([]stats.KDEPoint, error) {
	xs := make([]float64, 0, len(points))
	for _, p := range points {
		if latency {
			xs = append(xs, p.P5LatMs)
		} else {
			xs = append(xs, p.P95Down)
		}
	}
	return stats.KDE(xs, 128, 0)
}

// --- Fig. 5: relative tier differences ------------------------------------------

// Metric selects which measurement dimension a tier delta compares.
type Metric int

// Comparable metrics (the paper's d/u/l subscripts).
const (
	MetricDownload Metric = iota
	MetricUpload
	MetricLatency
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	switch m {
	case MetricDownload:
		return "download"
	case MetricUpload:
		return "upload"
	default:
		return "latency"
	}
}

// TierDelta is one same-hour premium/standard comparison:
// Δ = (T_prem - T_std) / T_std (§4.1).
type TierDelta struct {
	ServerID int
	Time     time.Time
	Metric   Metric
	Delta    float64
}

// TierDeltas pairs measurements of the two tiers taken for the same
// (server, region, direction) in the same hour and computes the relative
// difference for the requested metric.
func TierDeltas(ms []Measurement, region string, metric Metric) []TierDelta {
	type key struct {
		server int
		hour   int64
	}
	wantDir := netsim.Download
	if metric == MetricUpload {
		wantDir = netsim.Upload
	}
	prem := make(map[key]Measurement)
	std := make(map[key]Measurement)
	for _, m := range ms {
		if m.Region != region {
			continue
		}
		// Latency deltas ride on download tests (each test reports RTT).
		if m.Dir != wantDir {
			continue
		}
		k := key{m.ServerID, m.Time.Unix() / 3600}
		if m.Tier == bgp.Premium {
			prem[k] = m
		} else {
			std[k] = m
		}
	}
	var out []TierDelta
	for k, p := range prem {
		s, ok := std[k]
		if !ok {
			continue
		}
		var pv, sv float64
		if metric == MetricLatency {
			pv, sv = p.RTTms, s.RTTms
		} else {
			pv, sv = p.Mbps, s.Mbps
		}
		if sv == 0 {
			continue
		}
		out = append(out, TierDelta{
			ServerID: k.server,
			Time:     time.Unix(k.hour*3600, 0).UTC(),
			Metric:   metric,
			Delta:    (pv - sv) / sv,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Time.Equal(out[j].Time) {
			return out[i].Time.Before(out[j].Time)
		}
		return out[i].ServerID < out[j].ServerID
	})
	return out
}

// DeltaCDF builds the empirical CDF of the deltas (one Fig. 5 curve).
func DeltaCDF(deltas []TierDelta) ([]stats.CDFPoint, error) {
	xs := make([]float64, len(deltas))
	for i, d := range deltas {
		xs[i] = d.Delta
	}
	return stats.CDF(xs)
}

// FractionStandardHigher returns the fraction of throughput deltas where
// the standard tier outperformed premium (Δ < 0).
func FractionStandardHigher(deltas []TierDelta) float64 {
	if len(deltas) == 0 {
		return 0
	}
	n := 0
	for _, d := range deltas {
		if d.Delta < 0 {
			n++
		}
	}
	return float64(n) / float64(len(deltas))
}

// FractionWithin returns the fraction of deltas with |Δ| < bound (the
// paper: <50 % in over 92 % of measurements).
func FractionWithin(deltas []TierDelta, bound float64) float64 {
	if len(deltas) == 0 {
		return 0
	}
	n := 0
	for _, d := range deltas {
		if d.Delta < bound && d.Delta > -bound {
			n++
		}
	}
	return float64(n) / float64(len(deltas))
}

// --- §4.1: premium-tier loss attribution ----------------------------------------

// LossySummary reports a server whose premium-tier download tests carried
// persistent loss.
type LossySummary struct {
	ServerID int
	MeanLoss float64
	N        int
}

// PremiumLossTargets returns servers whose average premium-tier download
// loss exceeds the threshold (the paper found eight above 10 %).
func PremiumLossTargets(ms []Measurement, region string, threshold float64) []LossySummary {
	sum := make(map[int]float64)
	n := make(map[int]int)
	for _, m := range ms {
		if m.Region != region || m.Tier != bgp.Premium || m.Dir != netsim.Download {
			continue
		}
		sum[m.ServerID] += m.Loss
		n[m.ServerID]++
	}
	var out []LossySummary
	for id, s := range sum {
		mean := s / float64(n[id])
		if mean > threshold {
			out = append(out, LossySummary{ServerID: id, MeanLoss: mean, N: n[id]})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].MeanLoss > out[j].MeanLoss })
	return out
}

// --- Fig. 8: business-type breakdown ---------------------------------------------

// BusinessOf resolves a server's ipinfo-style business category via its AS.
func BusinessOf(topo *topology.Topology, serverID int) topology.BusinessType {
	s := topo.Server(serverID)
	if s == nil {
		return topology.BizUnknown
	}
	a := topo.AS(s.ASN)
	if a == nil {
		return topology.BizUnknown
	}
	return a.Business
}

// Fig8Row counts congested and total servers of one business type.
type Fig8Row struct {
	Region    string
	Type      topology.BusinessType
	Congested int
	Total     int
}

// Fig8Counts groups servers by business type per region, splitting
// congested from non-congested (congested = pair flagged by the >10 %-of-
// days rule).
func Fig8Counts(topo *topology.Topology, region string, serverIDs []int, congested map[int]bool) []Fig8Row {
	counts := make(map[topology.BusinessType]*Fig8Row)
	for _, id := range serverIDs {
		b := BusinessOf(topo, id)
		row := counts[b]
		if row == nil {
			row = &Fig8Row{Region: region, Type: b}
			counts[b] = row
		}
		row.Total++
		if congested[id] {
			row.Congested++
		}
	}
	var out []Fig8Row
	for _, row := range counts {
		out = append(out, *row)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Type < out[j].Type })
	return out
}
