package analysis

import (
	"sort"
	"time"

	"github.com/clasp-measurement/clasp/internal/bgp"
	"github.com/clasp-measurement/clasp/internal/congestion"
	"github.com/clasp-measurement/clasp/internal/netsim"
)

// CampaignPrep is the incremental twin of the grouping kernel: it is fed
// one Measurement at a time from a campaign's emit phase and maintains,
// per (direction, tier), exactly the per-pair series that
// GroupSeriesWithServerCursor would produce over the finished record
// stream — same slot resolution (interned regions, dense serverID tables,
// overflow map), same delivery-order samples, same per-slot sortedness
// tracking, same (region, serverID) output order. Download slots
// additionally feed a congestion.PartitionBuilder as samples arrive, so
// the day-partitioning work that every congestion analysis starts from
// overlaps measurement instead of following it.
//
// Record is called from one goroutine (the emit phase is serial per
// campaign); after Finish the accessors are read-only and safe to call
// from concurrent artifact renderers. Record implements the orchestrator
// sink contract, so a prep can be appended to a campaign's sink list and
// is equally fed by a checkpoint replay.
type CampaignPrep struct {
	combos   map[prepKey]*prepGroup
	finished bool
}

type prepKey struct {
	Dir  netsim.Direction
	Tier bgp.Tier
}

// prepGroup is one (direction, tier) instance of the grouping kernel's
// state, with per-slot sample slices in place of the post-hoc scatter
// buffer (values and order are identical; only the backing layout differs).
type prepGroup struct {
	dir  netsim.Direction
	tier bgp.Tier

	regions    []string
	tables     [][]int32 // per region: serverID -> slot+1
	lastRegion string
	lastIdx    int32
	overflow   map[PairKey]int32
	slots      []*prepSlot

	series []SeriesWithServer
	parts  []*congestion.Partition // download groups only, index-aligned with series
}

type prepSlot struct {
	regionIdx int32
	serverID  int
	samples   []congestion.Sample
	last      time.Time
	unsorted  bool
	// part accumulates the day partition while the slot stays time-sorted
	// (the campaign's hour-major emit order always is). A slot that turns
	// unsorted drops it and falls back to NewPartition over the sorted
	// samples at Finish — identical to the post-hoc path by construction.
	part *congestion.PartitionBuilder
}

// NewCampaignPrep returns an empty prep.
func NewCampaignPrep() *CampaignPrep {
	return &CampaignPrep{combos: make(map[prepKey]*prepGroup)}
}

// Record folds one measurement into its (direction, tier) group.
func (p *CampaignPrep) Record(m Measurement) {
	k := prepKey{Dir: m.Dir, Tier: m.Tier}
	g := p.combos[k]
	if g == nil {
		g = &prepGroup{dir: m.Dir, tier: m.Tier}
		p.combos[k] = g
	}
	g.add(m)
}

func (g *prepGroup) add(m Measurement) {
	ri := g.lastIdx
	if m.Region != g.lastRegion || g.regions == nil {
		ri = -1
		for r, name := range g.regions {
			if name == m.Region {
				ri = int32(r)
				break
			}
		}
		if ri < 0 {
			ri = int32(len(g.regions))
			g.regions = append(g.regions, m.Region)
			g.tables = append(g.tables, nil)
		}
		g.lastRegion, g.lastIdx = m.Region, ri
	}
	var si int32
	if id := m.ServerID; id >= 0 && id < denseServerMax {
		t := g.tables[ri]
		if id >= len(t) {
			nt := make([]int32, id+64)
			copy(nt, t)
			g.tables[ri] = nt
			t = nt
		}
		si = t[id] - 1
		if si < 0 {
			si = int32(len(g.slots))
			t[id] = si + 1
			g.slots = append(g.slots, g.newSlot(ri, id))
		}
	} else {
		if g.overflow == nil {
			g.overflow = make(map[PairKey]int32)
		}
		k := PairKey{ServerID: id, Region: m.Region, Tier: g.tier, Dir: g.dir}
		v, ok := g.overflow[k]
		if !ok {
			v = int32(len(g.slots))
			g.overflow[k] = v
			g.slots = append(g.slots, g.newSlot(ri, id))
		}
		si = v
	}
	s := g.slots[si]
	if len(s.samples) > 0 && m.Time.Before(s.last) {
		s.unsorted = true
		s.part = nil
	}
	s.last = m.Time
	s.samples = append(s.samples, congestion.Sample{Time: m.Time, Mbps: m.Mbps})
	if s.part != nil {
		s.part.Add(s.samples[len(s.samples)-1:])
	}
}

func (g *prepGroup) newSlot(ri int32, id int) *prepSlot {
	s := &prepSlot{regionIdx: ri, serverID: id}
	if g.dir == netsim.Download {
		s.part = congestion.NewPartitionBuilder(pairIDString(g.regions[ri], id, g.tier, g.dir))
	}
	return s
}

// Finish seals every group: slots are ordered by (region, serverID), any
// unsorted slot's samples are time-sorted, and the download partitions are
// completed. Idempotent; Record must not be called afterwards.
func (p *CampaignPrep) Finish() {
	if p.finished {
		return
	}
	p.finished = true
	for _, g := range p.combos {
		g.finish()
	}
}

func (g *prepGroup) finish() {
	order := make([]int32, len(g.slots))
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		ka, kb := g.slots[order[a]], g.slots[order[b]]
		if ka.regionIdx != kb.regionIdx {
			return g.regions[ka.regionIdx] < g.regions[kb.regionIdx]
		}
		return ka.serverID < kb.serverID
	})
	g.series = make([]SeriesWithServer, 0, len(order))
	if g.dir == netsim.Download {
		g.parts = make([]*congestion.Partition, 0, len(order))
	}
	for _, si := range order {
		s := g.slots[si]
		if s.unsorted {
			samples := s.samples
			sort.Slice(samples, func(a, b int) bool { return samples[a].Time.Before(samples[b].Time) })
		}
		ser := congestion.Series{
			PairID:  pairIDString(g.regions[s.regionIdx], s.serverID, g.tier, g.dir),
			Samples: s.samples,
		}
		g.series = append(g.series, SeriesWithServer{
			ServerID: s.serverID,
			Region:   g.regions[s.regionIdx],
			Series:   ser,
		})
		if g.dir == netsim.Download {
			if s.part != nil {
				g.parts = append(g.parts, s.part.Finish())
			} else {
				g.parts = append(g.parts, congestion.NewPartition(ser))
			}
		}
	}
	g.slots, g.tables, g.overflow = nil, nil, nil
}

// Series returns the prepared per-pair series for a (direction, tier), or
// (nil, false) before Finish or when no record matched. The result is what
// GroupSeriesWithServerCursor over the campaign's cursor would return.
func (p *CampaignPrep) Series(dir netsim.Direction, tier bgp.Tier) ([]SeriesWithServer, bool) {
	if p == nil || !p.finished {
		return nil, false
	}
	g := p.combos[prepKey{Dir: dir, Tier: tier}]
	if g == nil {
		return nil, false
	}
	return g.series, true
}

// Partitions returns the prepared day partitions for a download group,
// index-aligned with Series. Each partition equals
// congestion.NewPartition of the corresponding series.
func (p *CampaignPrep) Partitions(dir netsim.Direction, tier bgp.Tier) ([]*congestion.Partition, bool) {
	if p == nil || !p.finished || dir != netsim.Download {
		return nil, false
	}
	g := p.combos[prepKey{Dir: dir, Tier: tier}]
	if g == nil || g.parts == nil {
		return nil, false
	}
	return g.parts, true
}
