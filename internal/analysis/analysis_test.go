package analysis

import (
	"math"
	"testing"
	"time"

	"github.com/clasp-measurement/clasp/internal/bgp"
	"github.com/clasp-measurement/clasp/internal/netsim"
	"github.com/clasp-measurement/clasp/internal/topology"
	"github.com/clasp-measurement/clasp/internal/tsdb"
)

var t0 = time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)

func mkMeasure(server int, hour int, tier bgp.Tier, dir netsim.Direction, mbps, rtt, loss float64) Measurement {
	return Measurement{
		ServerID: server, Region: "us-east1", Tier: tier, Dir: dir,
		Time: t0.Add(time.Duration(hour) * time.Hour), Mbps: mbps, RTTms: rtt, Loss: loss,
	}
}

func TestGroupSeries(t *testing.T) {
	var ms []Measurement
	for h := 0; h < 48; h++ {
		ms = append(ms, mkMeasure(1, h, bgp.Premium, netsim.Download, 300, 30, 0))
		ms = append(ms, mkMeasure(2, h, bgp.Premium, netsim.Download, 200, 40, 0))
		ms = append(ms, mkMeasure(1, h, bgp.Premium, netsim.Upload, 95, 30, 0))
		ms = append(ms, mkMeasure(1, h, bgp.Standard, netsim.Download, 320, 35, 0))
	}
	series := GroupSeries(ms, netsim.Download, bgp.Premium)
	if len(series) != 2 {
		t.Fatalf("series = %d, want 2", len(series))
	}
	for _, s := range series {
		if len(s.Samples) != 48 {
			t.Errorf("series %s has %d samples", s.PairID, len(s.Samples))
		}
		for i := 1; i < len(s.Samples); i++ {
			if s.Samples[i].Time.Before(s.Samples[i-1].Time) {
				t.Error("samples not time-ordered")
			}
		}
	}
}

func TestPerfPoints(t *testing.T) {
	var ms []Measurement
	// Two months of hourly data for one server.
	for d := 0; d < 60; d++ {
		for h := 0; h < 24; h += 6 {
			m := mkMeasure(7, d*24+h, bgp.Premium, netsim.Download, 300+float64(h), 40-float64(h)/10, 0)
			ms = append(ms, m)
		}
	}
	pts := PerfPoints(ms)
	if len(pts) != 3 { // May, June, and the tail day in July
		// 60 days from May 1: May (31), June (29) -> 2 months.
		if len(pts) != 2 {
			t.Fatalf("points = %d, want 2", len(pts))
		}
	}
	for _, p := range pts {
		// p95 of 300..318 is near 318; p5 of 38.2..40 is near 38.2.
		if p.P95Down < 315 || p.P95Down > 318.1 {
			t.Errorf("p95 = %v", p.P95Down)
		}
		if p.P5LatMs < 38 || p.P5LatMs > 39 {
			t.Errorf("p5 latency = %v", p.P5LatMs)
		}
		if p.N == 0 || p.Region != "us-east1" || p.ServerID != 7 {
			t.Errorf("point fields: %+v", p)
		}
	}
	// Uploads are excluded.
	up := []Measurement{mkMeasure(1, 0, bgp.Premium, netsim.Upload, 95, 10, 0)}
	if len(PerfPoints(up)) != 0 {
		t.Error("upload produced perf points")
	}
}

func TestMarginalKDE(t *testing.T) {
	pts := []PerfPoint{{P95Down: 300, P5LatMs: 30}, {P95Down: 400, P5LatMs: 50}, {P95Down: 350, P5LatMs: 40}}
	for _, latency := range []bool{false, true} {
		kde, err := MarginalKDE(pts, latency)
		if err != nil || len(kde) == 0 {
			t.Errorf("KDE(latency=%v): %v", latency, err)
		}
	}
}

func TestTierDeltas(t *testing.T) {
	var ms []Measurement
	for h := 0; h < 24; h++ {
		ms = append(ms, mkMeasure(1, h, bgp.Premium, netsim.Download, 250, 30, 0))
		ms = append(ms, mkMeasure(1, h, bgp.Standard, netsim.Download, 300, 45, 0))
		ms = append(ms, mkMeasure(1, h, bgp.Premium, netsim.Upload, 90, 30, 0))
		ms = append(ms, mkMeasure(1, h, bgp.Standard, netsim.Upload, 95, 45, 0))
	}
	down := TierDeltas(ms, "us-east1", MetricDownload)
	if len(down) != 24 {
		t.Fatalf("download deltas = %d", len(down))
	}
	want := (250.0 - 300.0) / 300.0
	for _, d := range down {
		if math.Abs(d.Delta-want) > 1e-9 {
			t.Errorf("delta = %v, want %v", d.Delta, want)
		}
	}
	up := TierDeltas(ms, "us-east1", MetricUpload)
	if len(up) != 24 || math.Abs(up[0].Delta-(90.0-95.0)/95.0) > 1e-9 {
		t.Errorf("upload deltas wrong: %v", up[:1])
	}
	lat := TierDeltas(ms, "us-east1", MetricLatency)
	if len(lat) != 24 || math.Abs(lat[0].Delta-(30.0-45.0)/45.0) > 1e-9 {
		t.Errorf("latency deltas wrong: %v", lat[:1])
	}
	// Different region: nothing.
	if len(TierDeltas(ms, "europe-west1", MetricDownload)) != 0 {
		t.Error("wrong region matched")
	}
}

func TestTierDeltasUnpaired(t *testing.T) {
	ms := []Measurement{mkMeasure(1, 0, bgp.Premium, netsim.Download, 250, 30, 0)}
	if len(TierDeltas(ms, "us-east1", MetricDownload)) != 0 {
		t.Error("unpaired measurement produced a delta")
	}
}

func TestDeltaHelpers(t *testing.T) {
	deltas := []TierDelta{{Delta: -0.2}, {Delta: -0.1}, {Delta: 0.3}, {Delta: -0.6}}
	if f := FractionStandardHigher(deltas); math.Abs(f-0.75) > 1e-9 {
		t.Errorf("FractionStandardHigher = %v", f)
	}
	if f := FractionWithin(deltas, 0.5); math.Abs(f-0.75) > 1e-9 {
		t.Errorf("FractionWithin = %v", f)
	}
	if FractionStandardHigher(nil) != 0 || FractionWithin(nil, 1) != 0 {
		t.Error("empty delta helpers should be 0")
	}
	cdf, err := DeltaCDF(deltas)
	if err != nil || len(cdf) == 0 {
		t.Errorf("DeltaCDF: %v", err)
	}
}

func TestPremiumLossTargets(t *testing.T) {
	var ms []Measurement
	for h := 0; h < 10; h++ {
		ms = append(ms, mkMeasure(1, h, bgp.Premium, netsim.Download, 10, 50, 0.12))
		ms = append(ms, mkMeasure(2, h, bgp.Premium, netsim.Download, 300, 50, 0.001))
		ms = append(ms, mkMeasure(3, h, bgp.Standard, netsim.Download, 300, 50, 0.2))
	}
	lossy := PremiumLossTargets(ms, "us-east1", 0.1)
	if len(lossy) != 1 || lossy[0].ServerID != 1 {
		t.Fatalf("lossy = %+v", lossy)
	}
	if math.Abs(lossy[0].MeanLoss-0.12) > 1e-9 || lossy[0].N != 10 {
		t.Errorf("summary: %+v", lossy[0])
	}
}

func TestBusinessAndFig8(t *testing.T) {
	topo, err := topology.New(topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var ids []int
	congested := make(map[int]bool)
	for i, s := range topo.Servers() {
		ids = append(ids, s.ID)
		if i%3 == 0 {
			congested[s.ID] = true
		}
	}
	rows := Fig8Counts(topo, "us-east1", ids, congested)
	if len(rows) < 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	totalCong, total := 0, 0
	for _, r := range rows {
		if r.Congested > r.Total {
			t.Errorf("row %v has more congested than total", r)
		}
		totalCong += r.Congested
		total += r.Total
	}
	if total != len(ids) || totalCong != len(congested) {
		t.Errorf("totals %d/%d, want %d/%d", totalCong, total, len(congested), len(ids))
	}
	// Unknown server resolves to BizUnknown.
	if BusinessOf(topo, 1<<30) != topology.BizUnknown {
		t.Error("unknown server business")
	}
}

func TestSeriesFromStore(t *testing.T) {
	store := tsdb.NewStore()
	for h := 0; h < 24; h++ {
		at := t0.Add(time.Duration(h) * time.Hour)
		store.Insert("speedtest", tsdb.Tags{"server": "9", "region": "us-west1", "tier": "premium", "dir": "download"},
			at, map[string]float64{"mbps": 300 + float64(h), "rtt_ms": 30})
		store.Insert("speedtest", tsdb.Tags{"server": "9", "region": "us-west1", "tier": "premium", "dir": "upload"},
			at, map[string]float64{"mbps": 95, "rtt_ms": 30})
	}
	series := SeriesFromStore(store, netsim.Download, bgp.Premium)
	if len(series) != 1 {
		t.Fatalf("series = %d, want 1 (upload must be filtered)", len(series))
	}
	if len(series[0].Samples) != 24 {
		t.Errorf("samples = %d", len(series[0].Samples))
	}
	if series[0].PairID != "us-west1/9/premium/download" {
		t.Errorf("pair ID = %q", series[0].PairID)
	}
	if got := SeriesFromStore(store, netsim.Upload, bgp.Standard); len(got) != 0 {
		t.Errorf("standard upload series = %d, want 0", len(got))
	}
}
