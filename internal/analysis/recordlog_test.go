package analysis

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/clasp-measurement/clasp/internal/bgp"
	"github.com/clasp-measurement/clasp/internal/netsim"
)

// campaignRecords builds n hour-major campaign-shaped measurements, the
// layout the orchestrator's sink delivers.
func campaignRecords(n int) []Measurement {
	rng := rand.New(rand.NewSource(3))
	base := time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)
	regions := []string{"us-west1", "us-east1", "europe-west1"}
	ms := make([]Measurement, n)
	for i := range ms {
		ms[i] = Measurement{
			ServerID: i % 40,
			Region:   regions[(i/40)%len(regions)],
			Tier:     bgp.Tier(i % 2),
			Dir:      netsim.Direction((i / 2) % 2),
			Time:     base.Add(time.Duration(i/160) * time.Hour),
			Mbps:     rng.Float64() * 900,
			RTTms:    rng.Float64() * 80,
			// Loss mirrors the simulator: the clean-path residual constant
			// almost always, a congestion value occasionally.
			Loss: 3e-7,
		}
		if rng.Intn(20) == 0 {
			ms[i].Loss = rng.Float64() * 0.05
		}
	}
	return ms
}

func measurementsEqual(a, b Measurement) bool {
	return a.ServerID == b.ServerID && a.Region == b.Region &&
		a.Tier == b.Tier && a.Dir == b.Dir &&
		a.Time.Equal(b.Time) &&
		math.Float64bits(a.Mbps) == math.Float64bits(b.Mbps) &&
		math.Float64bits(a.RTTms) == math.Float64bits(b.RTTms) &&
		math.Float64bits(a.Loss) == math.Float64bits(b.Loss)
}

func drain(c Cursor) []Measurement {
	var out []Measurement
	for batch := c.Next(); batch != nil; batch = c.Next() {
		out = append(out, batch...)
	}
	return out
}

func newLog(t *testing.T, ms []Measurement) *RecordLog {
	t.Helper()
	l := NewRecordLog()
	for _, m := range ms {
		l.Append(m)
	}
	return l
}

// TestRecordLogRoundTrip pins losslessness: a cursor replays the exact
// append sequence across block boundaries, twice (Reset determinism).
func TestRecordLogRoundTrip(t *testing.T) {
	ms := campaignRecords(3*logBlockSize + 177) // blocks + partial tail
	l := newLog(t, ms)
	if l.Len() != len(ms) {
		t.Fatalf("Len = %d, want %d", l.Len(), len(ms))
	}
	if !measurementsEqual(l.First(), ms[0]) || !measurementsEqual(l.Last(), ms[len(ms)-1]) {
		t.Fatal("First/Last drifted")
	}
	c := l.Cursor()
	for pass := 0; pass < 2; pass++ {
		got := drain(c)
		if len(got) != len(ms) {
			t.Fatalf("pass %d: got %d records, want %d", pass, len(got), len(ms))
		}
		for i := range ms {
			if !measurementsEqual(got[i], ms[i]) {
				t.Fatalf("pass %d: record %d drifted:\n in: %+v\nout: %+v", pass, i, ms[i], got[i])
			}
		}
		c.Reset()
	}
}

// TestRecordLogSpill pins that spilling to disk changes nothing a reader
// can see, drops the resident footprint, and supports concurrent cursors.
func TestRecordLogSpill(t *testing.T) {
	ms := campaignRecords(2*logBlockSize + 17)
	l := newLog(t, ms)
	before := l.MemoryBytes()
	if err := l.Spill(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if !l.Spilled() {
		t.Fatal("not spilled")
	}
	if l.MemoryBytes() != 0 {
		t.Fatalf("MemoryBytes = %d after spill, want 0 (was %d)", l.MemoryBytes(), before)
	}
	if l.CompressedBytes() == 0 {
		t.Fatal("CompressedBytes = 0")
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := drain(l.Cursor())
			if len(got) != len(ms) {
				t.Errorf("got %d records, want %d", len(got), len(ms))
				return
			}
			for i := range ms {
				if !measurementsEqual(got[i], ms[i]) {
					t.Errorf("record %d drifted after spill", i)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := l.Spill(t.TempDir()); err != nil {
		t.Fatalf("second Spill: %v", err)
	}
}

// TestRecordLogSerializeRoundTrip pins WriteTo/ReadRecordLog losslessness
// — the checkpoint sidecar contract. Every log shape (empty, tail-only,
// sealed blocks + tail, spilled) serializes to a byte stream that reads
// back into an identical replay, serializing never mutates the live log,
// and the byte stream itself is deterministic.
func TestRecordLogSerializeRoundTrip(t *testing.T) {
	shapes := []struct {
		name  string
		n     int
		spill bool
	}{
		{"empty", 0, false},
		{"tail-only", 13, false},
		{"blocks+tail", 2*logBlockSize + 177, false},
		{"spilled", logBlockSize + 29, true},
	}
	for _, tc := range shapes {
		t.Run(tc.name, func(t *testing.T) {
			ms := campaignRecords(tc.n)
			l := newLog(t, ms)
			if tc.spill {
				if err := l.Spill(t.TempDir()); err != nil {
					t.Fatal(err)
				}
				defer l.Close()
			}
			var buf bytes.Buffer
			n, err := l.WriteTo(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if n != int64(buf.Len()) {
				t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
			}
			var again bytes.Buffer
			if _, err := l.WriteTo(&again); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), again.Bytes()) {
				t.Fatal("two WriteTo passes over the same log differ")
			}
			got, err := ReadRecordLog(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if got.Len() != len(ms) {
				t.Fatalf("decoded Len = %d, want %d", got.Len(), len(ms))
			}
			out := drain(got.Cursor())
			for i := range ms {
				if !measurementsEqual(out[i], ms[i]) {
					t.Fatalf("record %d drifted through serialization", i)
				}
			}
			if len(ms) > 0 {
				if !measurementsEqual(got.First(), ms[0]) || !measurementsEqual(got.Last(), ms[len(ms)-1]) {
					t.Fatal("First/Last drifted through serialization")
				}
			}
			// The source log must still replay — WriteTo may not consume
			// or reorder anything (it serves live sinks after a commit).
			src := drain(l.Cursor())
			if len(src) != len(ms) {
				t.Fatalf("WriteTo mutated the source log: %d records left, want %d", len(src), len(ms))
			}
		})
	}
}

// TestReadRecordLogRejectsPartial sweeps truncation points over a valid
// sidecar stream: no strict prefix may decode, and garbage magic fails.
// Together with the checkpoint writer's atomic rename this pins that a
// resume sees either a complete record stream or an error.
func TestReadRecordLogRejectsPartial(t *testing.T) {
	l := newLog(t, campaignRecords(logBlockSize+57))
	var buf bytes.Buffer
	if _, err := l.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for cut := 0; cut < len(raw); cut += 11 {
		if _, err := ReadRecordLog(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("stream truncated to %d of %d bytes decoded without error", cut, len(raw))
		}
	}
	bad := append([]byte(nil), raw...)
	bad[0] ^= 0xff
	if _, err := ReadRecordLog(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic decoded without error")
	}
	if _, err := ReadRecordLog(bytes.NewReader(append(raw, 0))); err == nil {
		t.Fatal("trailing byte decoded without error")
	}
}

// TestRecordLogCompression pins the ≥4x bytes/record win over the 88-byte
// in-memory Measurement struct on campaign-shaped data.
func TestRecordLogCompression(t *testing.T) {
	ms := campaignRecords(4 * logBlockSize) // sealed blocks only
	l := newLog(t, ms)
	perRecord := float64(l.CompressedBytes()) / float64(4*logBlockSize)
	if perRecord > 21.5 {
		t.Fatalf("compressed bytes/record = %.1f, want <= 21.5 (>4x vs 88B struct)", perRecord)
	}
	t.Logf("bytes/record = %.1f (%.1fx vs in-memory struct)", perRecord, 88/perRecord)
}

// TestRecordLogUnpackableTierDir pins the fallback column for enum values
// outside the packed 4-bit range.
func TestRecordLogUnpackableTierDir(t *testing.T) {
	ms := campaignRecords(100)
	ms[17].Tier = 99
	ms[23].Dir = -3
	l := NewRecordLog()
	for _, m := range ms {
		l.Append(m)
	}
	l.sealTail() // force encode despite the short tail
	got := drain(l.Cursor())
	if len(got) != len(ms) {
		t.Fatalf("got %d records, want %d", len(got), len(ms))
	}
	for i := range ms {
		if !measurementsEqual(got[i], ms[i]) {
			t.Fatalf("record %d drifted", i)
		}
	}
}

// TestCursorKernelsMatchSlice pins byte-identity of the streaming path:
// every cursor kernel over a compressed (and spilled) log produces exactly
// the slice kernel's output.
func TestCursorKernelsMatchSlice(t *testing.T) {
	ms := campaignRecords(2*logBlockSize + 503)
	l := newLog(t, ms)
	if err := l.Spill(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	if got, want := GroupSeriesWithServerCursor(l.Cursor(), netsim.Download, bgp.Premium),
		GroupSeriesWithServer(ms, netsim.Download, bgp.Premium); !reflect.DeepEqual(got, want) {
		t.Fatal("GroupSeriesWithServerCursor differs from slice kernel")
	}
	if got, want := GroupSeriesCursor(l.Cursor(), netsim.Upload, bgp.Standard),
		GroupSeries(ms, netsim.Upload, bgp.Standard); !reflect.DeepEqual(got, want) {
		t.Fatal("GroupSeriesCursor differs from slice kernel")
	}
	if got, want := PerfPointsCursor(l.Cursor()), PerfPoints(ms); !reflect.DeepEqual(got, want) {
		t.Fatal("PerfPointsCursor differs from slice kernel")
	}
	for _, metric := range []Metric{MetricDownload, MetricUpload, MetricLatency} {
		if got, want := TierDeltasCursor(l.Cursor(), "us-west1", metric),
			TierDeltas(ms, "us-west1", metric); !reflect.DeepEqual(got, want) {
			t.Fatalf("TierDeltasCursor(%v) differs from slice kernel", metric)
		}
	}
	if got, want := PremiumLossTargetsCursor(l.Cursor(), "us-east1", 0.01),
		PremiumLossTargets(ms, "us-east1", 0.01); !reflect.DeepEqual(got, want) {
		t.Fatal("PremiumLossTargetsCursor differs from slice kernel")
	}
}

// TestFilterCursor pins the filtered view used by the Fig. 4 tier split.
func TestFilterCursor(t *testing.T) {
	ms := campaignRecords(logBlockSize + 301)
	l := newLog(t, ms)
	keep := func(m *Measurement) bool { return m.Tier == bgp.Premium }
	var want []Measurement
	for _, m := range ms {
		if m.Tier == bgp.Premium {
			want = append(want, m)
		}
	}
	fc := NewFilterCursor(l.Cursor(), keep)
	for pass := 0; pass < 2; pass++ {
		got := drain(fc)
		if len(got) != len(want) {
			t.Fatalf("pass %d: got %d records, want %d", pass, len(got), len(want))
		}
		for i := range want {
			if !measurementsEqual(got[i], want[i]) {
				t.Fatalf("pass %d: record %d drifted", pass, i)
			}
		}
		fc.Reset()
	}
	// Filtered cursor drives the same kernel output as a filtered slice.
	if got, want := PerfPointsCursor(NewFilterCursor(l.Cursor(), keep)), PerfPoints(want); !reflect.DeepEqual(got, want) {
		t.Fatal("PerfPoints over FilterCursor differs from filtered slice")
	}
}

// TestSliceCursorEmpty pins the EOF contract on empty input.
func TestSliceCursorEmpty(t *testing.T) {
	c := NewSliceCursor(nil)
	if c.Next() != nil {
		t.Fatal("empty cursor should yield nil")
	}
	if out := GroupSeriesWithServerCursor(NewSliceCursor(nil), netsim.Download, bgp.Premium); out != nil {
		t.Fatalf("got %v, want nil", out)
	}
	l := NewRecordLog()
	if l.Cursor().Next() != nil {
		t.Fatal("empty log cursor should yield nil")
	}
}
