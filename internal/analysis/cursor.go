// Streaming analysis: every grouping kernel consumes measurements through
// a Cursor — batches of records delivered block-at-a-time — instead of one
// contiguous slice. The slice entry points (GroupSeries, PerfPoints, ...)
// are thin wrappers over a single-batch cursor, so both paths run the
// exact same kernel and produce byte-identical results (pinned by
// TestCursorKernelsMatchSlice and the blocksmoke CI gate); the cursor path
// just never needs all records resident at once.

package analysis

// Cursor yields measurements in a fixed order, one batch at a time. Next
// returns nil at end of stream; a returned batch is only valid until the
// next Next or Reset call and must be treated as read-only. Reset rewinds
// to the start, replaying the identical sequence — the two-pass kernels
// (PerfPoints) depend on that.
//
// A Cursor is single-goroutine; concurrent readers each open their own
// (RecordLog.Cursor, NewSliceCursor are cheap).
type Cursor interface {
	Next() []Measurement
	Reset()
}

// SliceCursor adapts an in-memory record slice to the Cursor interface as
// one single batch — the kernels run over it with the same code and
// near-identical cost as the old contiguous loop.
type SliceCursor struct {
	ms   []Measurement
	done bool
}

// NewSliceCursor returns a cursor over ms. The slice is not copied.
func NewSliceCursor(ms []Measurement) *SliceCursor {
	return &SliceCursor{ms: ms}
}

// Next returns the whole slice on the first call, nil after.
func (c *SliceCursor) Next() []Measurement {
	if c.done || len(c.ms) == 0 {
		return nil
	}
	c.done = true
	return c.ms
}

// Reset rewinds the cursor.
func (c *SliceCursor) Reset() { c.done = false }

// FilterCursor yields only the records of an underlying cursor that pass
// keep, preserving order. Batches are re-staged in an owned buffer, so the
// peak footprint stays one block regardless of stream length.
type FilterCursor struct {
	c    Cursor
	keep func(*Measurement) bool
	buf  []Measurement
}

// NewFilterCursor wraps c with a filter predicate.
func NewFilterCursor(c Cursor, keep func(*Measurement) bool) *FilterCursor {
	return &FilterCursor{c: c, keep: keep}
}

// Next returns the next non-empty filtered batch, nil at end of stream.
func (f *FilterCursor) Next() []Measurement {
	for {
		batch := f.c.Next()
		if batch == nil {
			return nil
		}
		f.buf = f.buf[:0]
		for i := range batch {
			if f.keep(&batch[i]) {
				f.buf = append(f.buf, batch[i])
			}
		}
		if len(f.buf) > 0 {
			return f.buf
		}
	}
}

// Reset rewinds the underlying cursor.
func (f *FilterCursor) Reset() { f.c.Reset() }
