package analysis

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"github.com/clasp-measurement/clasp/internal/bgp"
	"github.com/clasp-measurement/clasp/internal/congestion"
	"github.com/clasp-measurement/clasp/internal/netsim"
	"github.com/clasp-measurement/clasp/internal/tsdb"
)

// naiveGroup is the pre-kernel map-of-slices implementation, kept here as
// the reference the count-then-fill kernel must reproduce exactly.
func naiveGroup(ms []Measurement, dir netsim.Direction, tier bgp.Tier) []SeriesWithServer {
	byPair := make(map[PairKey][]congestion.Sample)
	for _, m := range ms {
		if m.Dir != dir || m.Tier != tier {
			continue
		}
		byPair[m.Key()] = append(byPair[m.Key()], congestion.Sample{Time: m.Time, Mbps: m.Mbps})
	}
	keys := make([]PairKey, 0, len(byPair))
	for k := range byPair {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Region != keys[j].Region {
			return keys[i].Region < keys[j].Region
		}
		return keys[i].ServerID < keys[j].ServerID
	})
	out := make([]SeriesWithServer, 0, len(keys))
	for _, k := range keys {
		samples := byPair[k]
		sort.Slice(samples, func(i, j int) bool { return samples[i].Time.Before(samples[j].Time) })
		out = append(out, SeriesWithServer{
			ServerID: k.ServerID,
			Region:   k.Region,
			Series: congestion.Series{
				PairID:  fmt.Sprintf("%s/%d/%s/%s", k.Region, k.ServerID, k.Tier, k.Dir),
				Samples: samples,
			},
		})
	}
	return out
}

// randomMeasurements mixes regions, tiers, directions and (optionally)
// shuffled timestamps, so the kernel's sort/skip-sort paths both run.
func randomMeasurements(seed int64, n int, shuffleTime bool) []Measurement {
	rng := rand.New(rand.NewSource(seed))
	start := time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)
	regions := []string{"us-west1", "us-east1", "europe-west1"}
	tiers := []bgp.Tier{bgp.Premium, bgp.Standard}
	dirs := []netsim.Direction{netsim.Download, netsim.Upload}
	out := make([]Measurement, 0, n)
	for i := 0; i < n; i++ {
		at := start.Add(time.Duration(i) * time.Minute)
		if shuffleTime {
			at = start.Add(time.Duration(rng.Intn(n)) * time.Minute)
		}
		out = append(out, Measurement{
			ServerID: 100 + rng.Intn(12),
			Region:   regions[rng.Intn(len(regions))],
			Tier:     tiers[rng.Intn(len(tiers))],
			Dir:      dirs[rng.Intn(len(dirs))],
			Time:     at,
			Mbps:     50 + 400*rng.Float64(),
			RTTms:    5 + 50*rng.Float64(),
			Loss:     rng.Float64() * 0.01,
		})
	}
	return out
}

func TestGroupSeriesWithServerMatchesNaive(t *testing.T) {
	for _, tc := range []struct {
		name    string
		shuffle bool
	}{{"time-sorted", false}, {"time-shuffled", true}} {
		t.Run(tc.name, func(t *testing.T) {
			ms := randomMeasurements(7, 4000, tc.shuffle)
			for _, dir := range []netsim.Direction{netsim.Download, netsim.Upload} {
				got := GroupSeriesWithServer(ms, dir, bgp.Premium)
				want := naiveGroup(ms, dir, bgp.Premium)
				if len(got) != len(want) {
					t.Fatalf("%s: %d series, want %d", dir, len(got), len(want))
				}
				for i := range got {
					if got[i].ServerID != want[i].ServerID || got[i].Region != want[i].Region ||
						got[i].Series.PairID != want[i].Series.PairID {
						t.Fatalf("%s series %d: header %+v != %+v", dir, i, got[i], want[i])
					}
					if !reflect.DeepEqual(got[i].Series.Samples, want[i].Series.Samples) {
						t.Fatalf("%s series %d (%s): samples differ", dir, i, got[i].Series.PairID)
					}
				}
			}
		})
	}
}

func TestGroupSeriesIsProjection(t *testing.T) {
	ms := randomMeasurements(11, 2000, true)
	ws := GroupSeriesWithServer(ms, netsim.Download, bgp.Premium)
	series := GroupSeries(ms, netsim.Download, bgp.Premium)
	if len(series) != len(ws) {
		t.Fatalf("lengths differ: %d vs %d", len(series), len(ws))
	}
	for i := range series {
		if !reflect.DeepEqual(series[i], ws[i].Series) {
			t.Fatalf("series %d differs from projection", i)
		}
	}
}

func TestGroupSeriesEmpty(t *testing.T) {
	if got := GroupSeriesWithServer(nil, netsim.Download, bgp.Premium); len(got) != 0 {
		t.Errorf("nil input: %d series", len(got))
	}
	// Records present but none matching the filter.
	ms := randomMeasurements(3, 50, false)
	for i := range ms {
		ms[i].Tier = bgp.Standard
	}
	if got := GroupSeries(ms, netsim.Download, bgp.Premium); len(got) != 0 {
		t.Errorf("no matches: %d series", len(got))
	}
}

func TestPerfPointsMatchesPercentile(t *testing.T) {
	ms := randomMeasurements(13, 3000, true)
	pts := PerfPoints(ms)
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	// Recompute one point the naive way.
	p := pts[len(pts)/2]
	var down, lat []float64
	for _, m := range ms {
		if m.Dir != netsim.Download || m.ServerID != p.ServerID || m.Region != p.Region ||
			m.Time.Year() != p.Year || m.Time.Month() != p.Month {
			continue
		}
		down = append(down, m.Mbps)
		lat = append(lat, m.RTTms)
	}
	if len(down) != p.N {
		t.Fatalf("N = %d, want %d", p.N, len(down))
	}
	sort.Float64s(down)
	sort.Float64s(lat)
	if want := percentileRef(down, 95); p.P95Down != want {
		t.Errorf("P95Down = %v, want %v", p.P95Down, want)
	}
	if want := percentileRef(lat, 5); p.P5LatMs != want {
		t.Errorf("P5LatMs = %v, want %v", p.P5LatMs, want)
	}
}

// percentileRef re-derives the linear-interpolation percentile locally so
// the test does not depend on the stats package internals.
func percentileRef(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

func TestParallelForCoversAllIndices(t *testing.T) {
	for _, par := range []int{0, 1, 2, 4, 16, 100} {
		n := 257
		var hits atomic.Int64
		out := make([]int, n)
		ParallelFor(par, n, func(i int) {
			out[i] = i * i
			hits.Add(1)
		})
		if hits.Load() != int64(n) {
			t.Fatalf("par=%d: fn ran %d times, want %d", par, hits.Load(), n)
		}
		for i := range out {
			if out[i] != i*i {
				t.Fatalf("par=%d: index %d not computed", par, i)
			}
		}
	}
	ParallelFor(4, 0, func(i int) { t.Fatal("fn called for n=0") })
}

func TestParallelForDeterministicOutput(t *testing.T) {
	ms := randomMeasurements(17, 3000, false)
	ws := GroupSeriesWithServer(ms, netsim.Download, bgp.Premium)
	run := func(par int) []int {
		out := make([]int, len(ws))
		ParallelFor(par, len(ws), func(i int) {
			det := congestion.NewDetector()
			out[i] = len(det.Events(ws[i].Series))
		})
		return out
	}
	serial := run(1)
	for _, par := range []int{2, 4, 16} {
		if got := run(par); !reflect.DeepEqual(got, serial) {
			t.Fatalf("parallelism %d diverged from serial", par)
		}
	}
}

// TestParallelAnalysisConcurrentWithInserts drives the parallel analysis
// engine while another goroutine streams inserts into the time-series
// store — the continuous re-analysis shape (Globalping-style) where
// reports are computed mid-campaign. Run under -race in CI.
func TestParallelAnalysisConcurrentWithInserts(t *testing.T) {
	store := tsdb.NewStore()
	ms := randomMeasurements(23, 2000, false)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i, m := range ms {
			err := store.Insert("speedtest",
				tsdb.Tags{"server": strconv.Itoa(m.ServerID), "region": m.Region, "tier": m.Tier.String(), "dir": m.Dir.String()},
				m.Time, map[string]float64{"mbps": m.Mbps, "rtt_ms": m.RTTms})
			if err != nil {
				t.Errorf("insert %d: %v", i, err)
				return
			}
		}
	}()
	det := congestion.NewDetector()
	for round := 0; round < 4; round++ {
		ws := GroupSeriesWithServer(ms, netsim.Download, bgp.Premium)
		events := make([]int, len(ws))
		ParallelFor(8, len(ws), func(i int) {
			p := congestion.NewPartition(ws[i].Series)
			events[i] = len(det.EventsIn(p))
		})
		// Interleave reads of the store mid-insert.
		series := SeriesFromStore(store, netsim.Download, bgp.Premium)
		ParallelFor(4, len(series), func(i int) {
			congestion.NewPartition(series[i]).DayTally(0.5, 0)
		})
	}
	<-done
	if got := SeriesFromStore(store, netsim.Download, bgp.Premium); len(got) == 0 {
		t.Fatal("no series reached the store")
	}
}
