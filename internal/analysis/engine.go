package analysis

import (
	"sync"
	"sync/atomic"

	"github.com/clasp-measurement/clasp/internal/obs"
)

var (
	obsGroupCalls   = obs.Default().Counter("analysis_group_calls_total")
	obsGroupRecords = obs.Default().Counter("analysis_records_scanned_total")
	obsGroupSeries  = obs.Default().Counter("analysis_series_grouped_total")
	obsParTasks     = obs.Default().Counter("analysis_parallel_tasks_total")
)

// ParallelFor runs fn(i) for every i in [0, n) across up to parallelism
// workers, the analysis engine's only fan-out primitive. Work is handed
// out by an atomic counter, so goroutines self-balance across uneven
// per-index costs (series differ wildly in sample count).
//
// Determinism contract: fn must write its result to index i of a
// pre-sized output slice and read nothing another index writes. The merge
// is then by index — the same order a serial loop produces — so anything
// derived from the output is bit-identical at any parallelism. Sums
// folded after the loop must be integer tallies (event counts, day
// counts), not floats, so the fold is order-independent too.
//
// parallelism <= 1 (the default Options.Parallelism) runs inline with no
// goroutines at all.
func ParallelFor(parallelism, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if parallelism > n {
		parallelism = n
	}
	if parallelism <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	obsParTasks.Add(uint64(n))
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(parallelism)
	for w := 0; w < parallelism; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
