package analysis

import (
	"testing"

	"github.com/clasp-measurement/clasp/internal/bgp"
	"github.com/clasp-measurement/clasp/internal/netsim"
)

// benchLog compresses a benchmark record stream into a sealed record log.
func benchLog(ms []Measurement) *RecordLog {
	l := NewRecordLog()
	for _, m := range ms {
		l.Append(m)
	}
	return l
}

// BenchmarkBlockRecordLogAppend is the streaming ingest path: one op is one
// record appended (block sealing amortised in). The bytes/record metric is
// the compressed footprint of the sealed blocks — the ≥4x win over the
// 88-byte in-memory Measurement that BENCH_tsdb.json records.
func BenchmarkBlockRecordLogAppend(b *testing.B) {
	ms := campaignRecords(logBlockSize)
	b.ResetTimer()
	b.ReportAllocs()
	l := NewRecordLog()
	for i := 0; i < b.N; i++ {
		l.Append(ms[i%len(ms)])
	}
	if sealed := l.Len() - len(l.tail); sealed > 0 {
		b.ReportMetric(float64(l.CompressedBytes())/float64(sealed), "bytes/record")
	}
}

// BenchmarkBlockStreamGroupSeries is the grouping kernel consuming a
// compressed log block-at-a-time through a cursor — the streaming
// counterpart of BenchmarkAnalysisGroupSeries (same 128-pair, 45-day
// campaign), so the two JSON records give the decode overhead directly.
func BenchmarkBlockStreamGroupSeries(b *testing.B) {
	ms := benchRecords(128, 45)
	l := benchLog(ms)
	// One warm pass pays first-use lazy costs outside the timer so
	// allocs/op is the same at any -benchtime.
	if series := GroupSeriesCursor(l.Cursor(), netsim.Download, bgp.Premium); len(series) != 128 {
		b.Fatalf("series = %d", len(series))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		series := GroupSeriesCursor(l.Cursor(), netsim.Download, bgp.Premium)
		if len(series) != 128 {
			b.Fatalf("series = %d", len(series))
		}
	}
}

// BenchmarkBlockStreamPerfPoints is the two-pass Fig. 4 kernel over a
// cursor: pass one tallies, Reset rewinds, pass two fills — the shape that
// proves Reset replay costs one extra decode, not a materialised copy.
func BenchmarkBlockStreamPerfPoints(b *testing.B) {
	ms := benchRecords(128, 45)
	l := benchLog(ms)
	if pts := PerfPointsCursor(l.Cursor()); len(pts) == 0 {
		b.Fatal("no perf points")
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts := PerfPointsCursor(l.Cursor())
		if len(pts) == 0 {
			b.Fatal("no perf points")
		}
	}
}
