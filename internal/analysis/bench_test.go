package analysis

import (
	"math/rand"
	"testing"
	"time"

	"github.com/clasp-measurement/clasp/internal/bgp"
	"github.com/clasp-measurement/clasp/internal/netsim"
)

// benchRecords synthesises a campaign-shaped record stream: `pairs` servers
// measured hourly in both directions for `days` days, in the hour-major
// order the orchestrator emits. Deterministic (fixed seed) so allocs/op and
// the grouped output are stable across runs.
func benchRecords(pairs, days int) []Measurement {
	rng := rand.New(rand.NewSource(7))
	start := time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)
	regions := []string{"us-west1", "us-east1"}
	out := make([]Measurement, 0, pairs*days*24*2)
	for h := 0; h < days*24; h++ {
		at := start.Add(time.Duration(h) * time.Hour)
		for s := 0; s < pairs; s++ {
			base := 250 + 25*float64(s%7)
			mbps := base + 60*rng.Float64()
			if s%5 == 0 && h%24 >= 19 && h%24 <= 22 {
				mbps *= 0.3 // evening dip on every fifth pair
			}
			out = append(out, Measurement{
				ServerID: 1000 + s, Region: regions[s%len(regions)],
				Tier: bgp.Premium, Dir: netsim.Download,
				Time: at, Mbps: mbps, RTTms: 20 + 10*rng.Float64(), Loss: 0.001,
			})
			out = append(out, Measurement{
				ServerID: 1000 + s, Region: regions[s%len(regions)],
				Tier: bgp.Premium, Dir: netsim.Upload,
				Time: at, Mbps: 80 + 15*rng.Float64(), RTTms: 20 + 10*rng.Float64(), Loss: 0.001,
			})
		}
	}
	return out
}

// BenchmarkAnalysisGroupSeries is the grouping kernel on a 128-pair,
// 45-day campaign (~276k records, half matching the download filter).
func BenchmarkAnalysisGroupSeries(b *testing.B) {
	ms := benchRecords(128, 45)
	// One warm pass pays first-use lazy costs outside the timer so
	// allocs/op is the same at any -benchtime.
	if series := GroupSeries(ms, netsim.Download, bgp.Premium); len(series) != 128 {
		b.Fatalf("series = %d", len(series))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		series := GroupSeries(ms, netsim.Download, bgp.Premium)
		if len(series) != 128 {
			b.Fatalf("series = %d", len(series))
		}
	}
}

// BenchmarkAnalysisGroupSeriesWithServer is the server-attributed variant
// feeding Fig. 6/Fig. 8 and the congestion report.
func BenchmarkAnalysisGroupSeriesWithServer(b *testing.B) {
	ms := benchRecords(128, 45)
	if series := GroupSeriesWithServer(ms, netsim.Download, bgp.Premium); len(series) != 128 {
		b.Fatalf("series = %d", len(series))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		series := GroupSeriesWithServer(ms, netsim.Download, bgp.Premium)
		if len(series) != 128 {
			b.Fatalf("series = %d", len(series))
		}
	}
}

// BenchmarkAnalysisPerfPoints is the Fig. 4 kernel: per-(server, month)
// p95-download / p5-latency points.
func BenchmarkAnalysisPerfPoints(b *testing.B) {
	ms := benchRecords(128, 45)
	if pts := PerfPoints(ms); len(pts) == 0 {
		b.Fatal("no perf points")
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts := PerfPoints(ms)
		if len(pts) == 0 {
			b.Fatal("no perf points")
		}
	}
}
