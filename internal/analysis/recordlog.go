// RecordLog is the streaming-analysis storage for raw measurement records:
// an append-only columnar log that compresses Measurements ~5x against the
// in-memory struct slice (delta-of-delta times, zigzag-delta server IDs,
// interned regions, XOR float columns — internal/colenc, the same codecs
// as tsdb's sealed blocks) and can spill its sealed blocks to an unlinked
// temp file so a campaign's footprint stays bounded by the block size, not
// the record count. Decode is lossless: a cursor replays the exact
// append sequence, so every analysis is byte-identical to the in-memory
// path (pinned by TestRecordLogRoundTrip and the blocksmoke CI gate).

package analysis

import (
	"fmt"
	"io"
	"os"

	"github.com/clasp-measurement/clasp/internal/bgp"
	"github.com/clasp-measurement/clasp/internal/colenc"
	"github.com/clasp-measurement/clasp/internal/netsim"
	"time"
)

// logBlockSize is the records-per-block granularity: one block is the unit
// of compression, of spill I/O, and of cursor batches — the peak streaming
// footprint per reader.
const logBlockSize = 4096

type logBlock struct {
	n    int
	data []byte // nil once spilled
	off  int64  // offset in the spill file, valid when data is nil
	size int64
}

// RecordLog accumulates measurements in append order. Append is
// single-writer (the orchestrator's sink goroutine); cursors may be opened
// concurrently once appending is done. Spill moves sealed block payloads
// into an anonymous temp file (created then immediately removed, so the
// space is reclaimed when the process exits no matter how).
type RecordLog struct {
	regions   []string
	regionIdx map[string]int

	blocks []logBlock
	tail   []Measurement

	count       int
	firstRec    Measurement
	lastRec     Measurement
	spill       *os.File
	spilled     bool
	inlineBytes int // total encoded bytes still held in memory
}

// NewRecordLog returns an empty log.
func NewRecordLog() *RecordLog {
	return &RecordLog{regionIdx: make(map[string]int)}
}

// Append adds one record. Not safe for concurrent use, and must not be
// called after Spill.
func (l *RecordLog) Append(m Measurement) {
	if l.spilled {
		panic("analysis: RecordLog.Append after Spill")
	}
	if l.count == 0 {
		l.firstRec = m
	}
	l.lastRec = m
	l.count++
	l.tail = append(l.tail, m)
	if len(l.tail) >= logBlockSize {
		l.sealTail()
	}
}

// Len returns the number of records appended.
func (l *RecordLog) Len() int { return l.count }

// First returns the first appended record (zero value when empty).
func (l *RecordLog) First() Measurement { return l.firstRec }

// Last returns the last appended record (zero value when empty).
func (l *RecordLog) Last() Measurement { return l.lastRec }

// CompressedBytes returns the encoded size of all sealed blocks, wherever
// they live (memory or spill file).
func (l *RecordLog) CompressedBytes() int {
	n := 0
	for i := range l.blocks {
		n += int(l.blocks[i].size)
	}
	return n
}

// MemoryBytes approximates the log's resident footprint: encoded blocks
// still in memory plus the raw tail.
func (l *RecordLog) MemoryBytes() int {
	const measurementSize = 88 // unsafe.Sizeof(Measurement{}), kept literal for doc value
	return l.inlineBytes + len(l.tail)*measurementSize
}

// Spill seals the tail and moves every block payload into an unlinked temp
// file under dir (""+os.TempDir() semantics of os.CreateTemp). After Spill
// the log is read-only; cursors read blocks back with ReadAt, so any
// number may run concurrently. Close releases the file descriptor.
func (l *RecordLog) Spill(dir string) error {
	if l.spilled {
		return nil
	}
	if len(l.tail) > 0 {
		l.sealTail()
	}
	f, err := os.CreateTemp(dir, "clasp-recordlog-*.spill")
	if err != nil {
		return err
	}
	// Unlink immediately: the kernel reclaims the space when the last fd
	// closes, even on crash. The name is gone but ReadAt still works.
	if err := os.Remove(f.Name()); err != nil {
		f.Close()
		return err
	}
	var off int64
	for i := range l.blocks {
		b := &l.blocks[i]
		if _, err := f.WriteAt(b.data, off); err != nil {
			f.Close()
			return err
		}
		b.off = off
		off += b.size
		b.data = nil
	}
	l.inlineBytes = 0
	l.spill = f
	l.spilled = true
	return nil
}

// Spilled reports whether the log's blocks live on disk.
func (l *RecordLog) Spilled() bool { return l.spilled }

// Close releases the spill file, if any. Cursors must not be used after.
func (l *RecordLog) Close() error {
	if l.spill == nil {
		return nil
	}
	err := l.spill.Close()
	l.spill = nil
	return err
}

func (l *RecordLog) internRegion(r string) int {
	if i, ok := l.regionIdx[r]; ok {
		return i
	}
	i := len(l.regions)
	l.regions = append(l.regions, r)
	l.regionIdx[r] = i
	return i
}

// sealTail compresses the tail into one block. Column order: times,
// server IDs, region indices, tiers, dirs, mbps, rtt, loss.
func (l *RecordLog) sealTail() {
	buf := encodeRecords(l.tail, l.internRegion)
	l.blocks = append(l.blocks, logBlock{n: len(l.tail), data: buf, size: int64(len(buf))})
	l.inlineBytes += len(buf)
	l.tail = l.tail[:0]
}

// encodeRecords compresses one batch of records into block form, interning
// regions through the supplied function. sealTail uses it against the log's
// own table; WriteTo uses it with a copy so serialising a snapshot never
// mutates the live log.
func encodeRecords(ms []Measurement, internRegion func(string) int) []byte {
	n := len(ms)
	buf := make([]byte, 0, 20*n)
	ts := make([]int64, n)
	for i := range ms {
		ts[i] = ms[i].Time.UnixNano()
	}
	buf = colenc.AppendTimes(buf, ts)
	prev := int64(0)
	for i := range ms {
		id := int64(ms[i].ServerID)
		buf = colenc.AppendVarint(buf, id-prev)
		prev = id
	}
	for i := range ms {
		buf = colenc.AppendUvarint(buf, uint64(internRegion(ms[i].Region)))
	}
	// Tier and direction are tiny enums; the common case packs both into
	// one byte per record (flag 1). Out-of-range values fall back to two
	// zigzag varint columns (flag 0), keeping the log lossless for any int.
	packable := true
	for i := range ms {
		if t, d := int64(ms[i].Tier), int64(ms[i].Dir); t < 0 || t > 15 || d < 0 || d > 15 {
			packable = false
			break
		}
	}
	if packable {
		buf = append(buf, 1)
		for i := range ms {
			buf = append(buf, byte(ms[i].Tier)<<4|byte(ms[i].Dir))
		}
	} else {
		buf = append(buf, 0)
		for i := range ms {
			buf = colenc.AppendVarint(buf, int64(ms[i].Tier))
		}
		for i := range ms {
			buf = colenc.AppendVarint(buf, int64(ms[i].Dir))
		}
	}
	vals := make([]float64, n)
	for _, get := range []func(*Measurement) float64{
		func(m *Measurement) float64 { return m.Mbps },
		func(m *Measurement) float64 { return m.RTTms },
		func(m *Measurement) float64 { return m.Loss },
	} {
		for i := range ms {
			vals[i] = get(&ms[i])
		}
		buf = colenc.AppendFloats(buf, vals)
	}
	return buf
}

// decodeLogBlock reconstructs one block into dst (resliced). Scratch
// slices are reused across calls.
func (l *RecordLog) decodeLogBlock(data []byte, n int, dst []Measurement, ts []int64, vals []float64) ([]Measurement, []int64, []float64, error) {
	dst = dst[:0]
	var k int
	var err error
	ts, k, err = colenc.DecodeTimes(ts, data, n)
	if err != nil {
		return dst, ts, vals, err
	}
	data = data[k:]
	if cap(dst) < n {
		dst = make([]Measurement, 0, n)
	}
	for i := 0; i < n; i++ {
		dst = append(dst, Measurement{Time: time.Unix(0, ts[i]).UTC()})
	}
	prev := int64(0)
	for i := 0; i < n; i++ {
		d, k := colenc.Varint(data)
		if k == 0 {
			return dst, ts, vals, fmt.Errorf("truncated server column")
		}
		data = data[k:]
		prev += d
		dst[i].ServerID = int(prev)
	}
	for i := 0; i < n; i++ {
		ri, k := colenc.Uvarint(data)
		if k == 0 || ri >= uint64(len(l.regions)) {
			return dst, ts, vals, fmt.Errorf("bad region index")
		}
		data = data[k:]
		dst[i].Region = l.regions[ri]
	}
	if len(data) == 0 {
		return dst, ts, vals, fmt.Errorf("truncated tier/dir flag")
	}
	packed := data[0]
	data = data[1:]
	switch packed {
	case 1:
		if len(data) < n {
			return dst, ts, vals, fmt.Errorf("truncated packed tier/dir column")
		}
		for i := 0; i < n; i++ {
			dst[i].Tier = bgp.Tier(data[i] >> 4)
			dst[i].Dir = netsim.Direction(data[i] & 0xf)
		}
		data = data[n:]
	case 0:
		for i := 0; i < n; i++ {
			v, k := colenc.Varint(data)
			if k == 0 {
				return dst, ts, vals, fmt.Errorf("truncated tier column")
			}
			data = data[k:]
			dst[i].Tier = bgp.Tier(v)
		}
		for i := 0; i < n; i++ {
			v, k := colenc.Varint(data)
			if k == 0 {
				return dst, ts, vals, fmt.Errorf("truncated dir column")
			}
			data = data[k:]
			dst[i].Dir = netsim.Direction(v)
		}
	default:
		return dst, ts, vals, fmt.Errorf("bad tier/dir flag %d", packed)
	}
	for col := 0; col < 3; col++ {
		vals, k, err = colenc.DecodeFloats(vals, data, n)
		if err != nil {
			return dst, ts, vals, err
		}
		data = data[k:]
		for i := 0; i < n; i++ {
			switch col {
			case 0:
				dst[i].Mbps = vals[i]
			case 1:
				dst[i].RTTms = vals[i]
			case 2:
				dst[i].Loss = vals[i]
			}
		}
	}
	if len(data) != 0 {
		return dst, ts, vals, fmt.Errorf("%d trailing bytes", len(data))
	}
	return dst, ts, vals, nil
}

// Cursor returns a new cursor over the log, replaying records in append
// order one block at a time. Each cursor owns its scratch, so independent
// cursors (ParallelFor workers, repeated artifact renders) can run
// concurrently once appending is done.
func (l *RecordLog) Cursor() Cursor {
	return &logCursor{l: l}
}

type logCursor struct {
	l       *RecordLog
	next    int // block index; len(blocks) = tail, beyond = EOF
	batch   []Measurement
	readBuf []byte
	ts      []int64
	vals    []float64
}

// Next decodes and returns the next block of records; the batch is only
// valid until the following Next or Reset. A corrupt or unreadable spill
// block panics: the log wrote these bytes itself moments ago, so damage
// means the environment is failing and silent truncation of results would
// be worse.
func (c *logCursor) Next() []Measurement {
	l := c.l
	if c.next > len(l.blocks) {
		return nil
	}
	if c.next == len(l.blocks) {
		c.next++
		if len(l.tail) == 0 {
			return nil
		}
		return l.tail
	}
	b := &l.blocks[c.next]
	c.next++
	data := b.data
	if data == nil {
		if cap(c.readBuf) < int(b.size) {
			c.readBuf = make([]byte, b.size)
		}
		c.readBuf = c.readBuf[:b.size]
		if _, err := l.spill.ReadAt(c.readBuf, b.off); err != nil {
			panic(fmt.Sprintf("analysis: record log spill read: %v", err))
		}
		data = c.readBuf
	}
	var err error
	c.batch, c.ts, c.vals, err = l.decodeLogBlock(data, b.n, c.batch, c.ts, c.vals)
	if err != nil {
		panic(fmt.Sprintf("analysis: record log corrupt: %v", err))
	}
	return c.batch
}

// Reset rewinds the cursor to the first record.
func (c *logCursor) Reset() { c.next = 0 }

// Serialised record-log format (the campaign checkpoint's records sidecar):
//
//	header   8-byte magic "CLRL0001"
//	regions  uvarint count, then per region: uvarint len, bytes
//	blocks   uvarint count, then per block: uvarint pointCount,
//	         uvarint dataLen, data (encodeRecords payload)
//
// The unsealed tail is serialised as one extra block, so a reader sees one
// uniform block sequence; any regions first interned by the tail extend the
// region table, which is why the table is built before the header goes out.
const recordLogMagic = "CLRL0001"

// WriteTo serialises the log's current state — sealed blocks, spilled or
// in memory, plus the unsealed tail — so a reader reconstructs the exact
// append sequence. It never mutates the log: the campaign checkpoint calls
// it at every round boundary while the orchestrator keeps appending
// afterwards. Not safe concurrently with Append.
func (l *RecordLog) WriteTo(w io.Writer) (int64, error) {
	// Extend a copy of the region table with anything only the tail has
	// seen; the live table must not grow from a serialisation pass.
	regions := append([]string(nil), l.regions...)
	idx := make(map[string]int, len(regions))
	for i, r := range regions {
		idx[r] = i
	}
	intern := func(r string) int {
		if i, ok := idx[r]; ok {
			return i
		}
		i := len(regions)
		regions = append(regions, r)
		idx[r] = i
		return i
	}
	var tailBlock []byte
	if len(l.tail) > 0 {
		tailBlock = encodeRecords(l.tail, intern)
	}

	cw := &recordLogCountWriter{w: w}
	buf := make([]byte, 0, 256)
	buf = append(buf, recordLogMagic...)
	buf = colenc.AppendUvarint(buf, uint64(len(regions)))
	for _, r := range regions {
		buf = colenc.AppendUvarint(buf, uint64(len(r)))
		buf = append(buf, r...)
	}
	nBlocks := len(l.blocks)
	if tailBlock != nil {
		nBlocks++
	}
	buf = colenc.AppendUvarint(buf, uint64(nBlocks))
	if _, err := cw.Write(buf); err != nil {
		return cw.n, err
	}
	var readBuf []byte
	for i := range l.blocks {
		b := &l.blocks[i]
		data := b.data
		if data == nil {
			if cap(readBuf) < int(b.size) {
				readBuf = make([]byte, b.size)
			}
			readBuf = readBuf[:b.size]
			if _, err := l.spill.ReadAt(readBuf, b.off); err != nil {
				return cw.n, fmt.Errorf("analysis: record log spill read: %w", err)
			}
			data = readBuf
		}
		buf = colenc.AppendUvarint(buf[:0], uint64(b.n))
		buf = colenc.AppendUvarint(buf, uint64(len(data)))
		buf = append(buf, data...)
		if _, err := cw.Write(buf); err != nil {
			return cw.n, err
		}
	}
	if tailBlock != nil {
		buf = colenc.AppendUvarint(buf[:0], uint64(len(l.tail)))
		buf = colenc.AppendUvarint(buf, uint64(len(tailBlock)))
		buf = append(buf, tailBlock...)
		if _, err := cw.Write(buf); err != nil {
			return cw.n, err
		}
	}
	return cw.n, nil
}

type recordLogCountWriter struct {
	w io.Writer
	n int64
}

func (c *recordLogCountWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// ReadRecordLog parses a log serialised by WriteTo back into memory. Every
// block is decoded once to validate the payload and rebuild the record
// count and first/last records, so a truncated or corrupt file fails here
// with an error instead of panicking later in a cursor.
func ReadRecordLog(r io.Reader) (*RecordLog, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("analysis: reading record log: %w", err)
	}
	if len(raw) < len(recordLogMagic) || string(raw[:len(recordLogMagic)]) != recordLogMagic {
		return nil, fmt.Errorf("analysis: bad record log magic")
	}
	raw = raw[len(recordLogMagic):]
	nr64, k := colenc.Uvarint(raw)
	if k == 0 {
		return nil, fmt.Errorf("analysis: truncated record log region table")
	}
	raw = raw[k:]
	l := NewRecordLog()
	for i := 0; i < int(nr64); i++ {
		rl, k := colenc.Uvarint(raw)
		if k == 0 || uint64(len(raw)-k) < rl {
			return nil, fmt.Errorf("analysis: truncated record log region %d", i)
		}
		l.internRegion(string(raw[k : k+int(rl)]))
		raw = raw[k+int(rl):]
	}
	nb64, k := colenc.Uvarint(raw)
	if k == 0 {
		return nil, fmt.Errorf("analysis: truncated record log block count")
	}
	raw = raw[k:]
	var scratch []Measurement
	var ts []int64
	var vals []float64
	for i := 0; i < int(nb64); i++ {
		n64, k := colenc.Uvarint(raw)
		if k == 0 {
			return nil, fmt.Errorf("analysis: truncated record log block %d header", i)
		}
		raw = raw[k:]
		dl, k := colenc.Uvarint(raw)
		if k == 0 || uint64(len(raw)-k) < dl {
			return nil, fmt.Errorf("analysis: truncated record log block %d data", i)
		}
		data := raw[k : k+int(dl)]
		raw = raw[k+int(dl):]
		scratch, ts, vals, err = l.decodeLogBlock(data, int(n64), scratch, ts, vals)
		if err != nil {
			return nil, fmt.Errorf("analysis: record log block %d: %w", i, err)
		}
		if len(scratch) > 0 {
			if l.count == 0 {
				l.firstRec = scratch[0]
			}
			l.lastRec = scratch[len(scratch)-1]
		}
		l.count += int(n64)
		l.blocks = append(l.blocks, logBlock{n: int(n64), data: data, size: int64(len(data))})
		l.inlineBytes += len(data)
	}
	if len(raw) != 0 {
		return nil, fmt.Errorf("analysis: %d trailing bytes after record log", len(raw))
	}
	return l, nil
}
