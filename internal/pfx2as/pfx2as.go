// Package pfx2as implements a prefix-to-AS mapping equivalent to CAIDA's
// RouteViews Prefix-to-AS dataset. CLASP uses it to resolve traceroute hops
// to AS numbers and bdrmap uses it to assign ownership of router interfaces.
//
// The table is a binary (per-bit) trie keyed by the prefix bits, answering
// longest-prefix-match queries. The text serialisation follows the
// RouteViews pfx2as format: one "prefix<TAB>length<TAB>AS" line per prefix,
// with multi-origin prefixes written as underscore-joined AS sets (e.g.
// "701_702") and AS sets from distinct announcements joined by commas.
package pfx2as

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"strconv"
	"strings"
)

// ASN is an autonomous system number.
type ASN uint32

// String implements fmt.Stringer ("AS15169").
func (a ASN) String() string { return fmt.Sprintf("AS%d", uint32(a)) }

// Origin is the origin AS set announced for one prefix. Almost always a
// single AS; multi-origin announcements (MOAS) carry more.
type Origin []ASN

// Primary returns the first (preferred) AS of the set, or 0 if empty.
func (o Origin) Primary() ASN {
	if len(o) == 0 {
		return 0
	}
	return o[0]
}

// Contains reports whether the set contains asn.
func (o Origin) Contains(asn ASN) bool {
	for _, a := range o {
		if a == asn {
			return true
		}
	}
	return false
}

// String renders the origin in RouteViews notation (underscore-joined).
func (o Origin) String() string {
	parts := make([]string, len(o))
	for i, a := range o {
		parts[i] = strconv.FormatUint(uint64(a), 10)
	}
	return strings.Join(parts, "_")
}

type trieNode struct {
	child  [2]*trieNode
	origin Origin // non-nil when a prefix terminates here
	set    bool
}

// Table is a longest-prefix-match table from IP prefixes to origin AS sets.
// The zero value is not usable; call New.
type Table struct {
	v4, v6   *trieNode
	prefixes int
}

// New returns an empty table.
func New() *Table {
	return &Table{v4: &trieNode{}, v6: &trieNode{}}
}

// Len returns the number of distinct prefixes inserted.
func (t *Table) Len() int { return t.prefixes }

// Insert adds or replaces the origin for a prefix. An invalid prefix or an
// empty origin is rejected.
func (t *Table) Insert(p netip.Prefix, origin Origin) error {
	if !p.IsValid() {
		return fmt.Errorf("pfx2as: invalid prefix %v", p)
	}
	if len(origin) == 0 {
		return fmt.Errorf("pfx2as: empty origin for %v", p)
	}
	p = p.Masked()
	root := t.v4
	if p.Addr().Is6() && !p.Addr().Is4In6() {
		root = t.v6
	}
	n := root
	addr := p.Addr().AsSlice()
	for i := 0; i < p.Bits(); i++ {
		b := bitAt(addr, i)
		if n.child[b] == nil {
			n.child[b] = &trieNode{}
		}
		n = n.child[b]
	}
	if !n.set {
		t.prefixes++
	}
	o := make(Origin, len(origin))
	copy(o, origin)
	n.origin = o
	n.set = true
	return nil
}

// Lookup returns the origin AS set and matched prefix length for the longest
// prefix covering addr. ok is false when no prefix matches.
func (t *Table) Lookup(addr netip.Addr) (origin Origin, bits int, ok bool) {
	if !addr.IsValid() {
		return nil, 0, false
	}
	root := t.v4
	maxBits := 32
	if addr.Is6() && !addr.Is4In6() {
		root = t.v6
		maxBits = 128
	}
	if addr.Is4In6() {
		addr = addr.Unmap()
	}
	slice := addr.AsSlice()
	n := root
	for i := 0; i <= maxBits; i++ {
		if n.set {
			origin, bits, ok = n.origin, i, true
		}
		if i == maxBits {
			break
		}
		b := bitAt(slice, i)
		if n.child[b] == nil {
			break
		}
		n = n.child[b]
	}
	return origin, bits, ok
}

// LookupASN is a convenience wrapper returning the primary origin AS for
// addr, or 0 when unmapped.
func (t *Table) LookupASN(addr netip.Addr) ASN {
	o, _, ok := t.Lookup(addr)
	if !ok {
		return 0
	}
	return o.Primary()
}

func bitAt(b []byte, i int) int {
	return int(b[i/8]>>(7-uint(i%8))) & 1
}

// entry pairs a prefix with its origin for serialisation.
type entry struct {
	prefix netip.Prefix
	origin Origin
}

func (t *Table) entries() []entry {
	var out []entry
	var walk func(n *trieNode, addr [16]byte, bits int, v6 bool)
	walk = func(n *trieNode, addr [16]byte, bits int, v6 bool) {
		if n == nil {
			return
		}
		if n.set {
			var ip netip.Addr
			if v6 {
				ip = netip.AddrFrom16(addr)
			} else {
				var a4 [4]byte
				copy(a4[:], addr[:4])
				ip = netip.AddrFrom4(a4)
			}
			out = append(out, entry{netip.PrefixFrom(ip, bits), n.origin})
		}
		for b := 0; b < 2; b++ {
			if n.child[b] == nil {
				continue
			}
			next := addr
			if b == 1 {
				next[bits/8] |= 1 << (7 - uint(bits%8))
			}
			walk(n.child[b], next, bits+1, v6)
		}
	}
	walk(t.v4, [16]byte{}, 0, false)
	walk(t.v6, [16]byte{}, 0, true)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].prefix, out[j].prefix
		if c := a.Addr().Compare(b.Addr()); c != 0 {
			return c < 0
		}
		return a.Bits() < b.Bits()
	})
	return out
}

// WriteTo serialises the table in RouteViews pfx2as text format.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	for _, e := range t.entries() {
		c, err := fmt.Fprintf(bw, "%s\t%d\t%s\n", e.prefix.Addr(), e.prefix.Bits(), e.origin)
		n += int64(c)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// Read parses a RouteViews pfx2as text stream into a new table. Lines are
// "addr<TAB>length<TAB>origin" where origin is an underscore- or
// comma-separated AS list. Blank lines and lines starting with '#' are
// skipped.
func Read(r io.Reader) (*Table, error) {
	t := New()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("pfx2as: line %d: want 3 fields, got %d", lineNo, len(fields))
		}
		addr, err := netip.ParseAddr(fields[0])
		if err != nil {
			return nil, fmt.Errorf("pfx2as: line %d: %v", lineNo, err)
		}
		bits, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("pfx2as: line %d: bad length: %v", lineNo, err)
		}
		prefix := netip.PrefixFrom(addr, bits)
		if !prefix.IsValid() {
			return nil, fmt.Errorf("pfx2as: line %d: invalid prefix %s/%d", lineNo, addr, bits)
		}
		origin, err := ParseOrigin(fields[2])
		if err != nil {
			return nil, fmt.Errorf("pfx2as: line %d: %v", lineNo, err)
		}
		if err := t.Insert(prefix, origin); err != nil {
			return nil, fmt.Errorf("pfx2as: line %d: %v", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

// ParseOrigin parses a RouteViews origin field: AS numbers joined with '_'
// (MOAS set) or ',' (alternative sets, flattened here).
func ParseOrigin(s string) (Origin, error) {
	var out Origin
	for _, group := range strings.Split(s, ",") {
		for _, part := range strings.Split(group, "_") {
			part = strings.TrimPrefix(strings.TrimSpace(part), "AS")
			if part == "" {
				continue
			}
			v, err := strconv.ParseUint(part, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("pfx2as: bad AS %q", part)
			}
			out = append(out, ASN(v))
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("pfx2as: empty origin %q", s)
	}
	return out, nil
}
