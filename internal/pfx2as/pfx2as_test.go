package pfx2as

import (
	"bytes"
	"math/rand"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
)

func mustPrefix(t *testing.T, s string) netip.Prefix {
	t.Helper()
	p, err := netip.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLookupLongestMatch(t *testing.T) {
	tb := New()
	if err := tb.Insert(mustPrefix(t, "10.0.0.0/8"), Origin{100}); err != nil {
		t.Fatal(err)
	}
	if err := tb.Insert(mustPrefix(t, "10.1.0.0/16"), Origin{200}); err != nil {
		t.Fatal(err)
	}
	if err := tb.Insert(mustPrefix(t, "10.1.2.0/24"), Origin{300}); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		addr string
		want ASN
		bits int
	}{
		{"10.2.3.4", 100, 8},
		{"10.1.9.9", 200, 16},
		{"10.1.2.9", 300, 24},
	}
	for _, c := range cases {
		o, bits, ok := tb.Lookup(netip.MustParseAddr(c.addr))
		if !ok {
			t.Errorf("Lookup(%s): no match", c.addr)
			continue
		}
		if o.Primary() != c.want || bits != c.bits {
			t.Errorf("Lookup(%s) = %v/%d, want AS%d/%d", c.addr, o, bits, c.want, c.bits)
		}
	}
	if _, _, ok := tb.Lookup(netip.MustParseAddr("11.0.0.1")); ok {
		t.Error("Lookup(11.0.0.1): unexpected match")
	}
}

func TestLookupASN(t *testing.T) {
	tb := New()
	tb.Insert(mustPrefix(t, "192.0.2.0/24"), Origin{64496})
	if got := tb.LookupASN(netip.MustParseAddr("192.0.2.55")); got != 64496 {
		t.Errorf("LookupASN = %v", got)
	}
	if got := tb.LookupASN(netip.MustParseAddr("198.51.100.1")); got != 0 {
		t.Errorf("LookupASN miss = %v, want 0", got)
	}
	if got := tb.LookupASN(netip.Addr{}); got != 0 {
		t.Errorf("LookupASN invalid = %v, want 0", got)
	}
}

func TestInsertErrors(t *testing.T) {
	tb := New()
	if err := tb.Insert(netip.Prefix{}, Origin{1}); err == nil {
		t.Error("invalid prefix: want error")
	}
	if err := tb.Insert(mustPrefix(t, "10.0.0.0/8"), nil); err == nil {
		t.Error("empty origin: want error")
	}
}

func TestInsertReplace(t *testing.T) {
	tb := New()
	p := mustPrefix(t, "10.0.0.0/8")
	tb.Insert(p, Origin{1})
	tb.Insert(p, Origin{2})
	if tb.Len() != 1 {
		t.Errorf("Len = %d, want 1", tb.Len())
	}
	if got := tb.LookupASN(netip.MustParseAddr("10.0.0.1")); got != 2 {
		t.Errorf("replaced origin = %v, want 2", got)
	}
}

func TestInsertMasksHostBits(t *testing.T) {
	tb := New()
	tb.Insert(netip.PrefixFrom(netip.MustParseAddr("10.1.2.3"), 8), Origin{7})
	if got := tb.LookupASN(netip.MustParseAddr("10.200.0.1")); got != 7 {
		t.Errorf("masked insert lookup = %v, want 7", got)
	}
}

func TestIPv6(t *testing.T) {
	tb := New()
	tb.Insert(mustPrefix(t, "2001:db8::/32"), Origin{15169})
	tb.Insert(mustPrefix(t, "2001:db8:1::/48"), Origin{13335})
	if got := tb.LookupASN(netip.MustParseAddr("2001:db8:1::5")); got != 13335 {
		t.Errorf("v6 /48 lookup = %v", got)
	}
	if got := tb.LookupASN(netip.MustParseAddr("2001:db8:2::5")); got != 15169 {
		t.Errorf("v6 /32 lookup = %v", got)
	}
	// v4 and v6 tries are independent.
	if got := tb.LookupASN(netip.MustParseAddr("32.1.13.184")); got != 0 {
		t.Errorf("v4 lookup in v6-only table = %v", got)
	}
}

func TestMappedV4Lookup(t *testing.T) {
	tb := New()
	tb.Insert(mustPrefix(t, "10.0.0.0/8"), Origin{42})
	mapped := netip.AddrFrom16(netip.MustParseAddr("::ffff:10.1.1.1").As16())
	if got := tb.LookupASN(mapped); got != 42 {
		t.Errorf("4-in-6 lookup = %v, want 42", got)
	}
}

func TestOriginHelpers(t *testing.T) {
	o := Origin{701, 702}
	if o.Primary() != 701 {
		t.Errorf("Primary = %v", o.Primary())
	}
	if !o.Contains(702) || o.Contains(703) {
		t.Error("Contains broken")
	}
	if o.String() != "701_702" {
		t.Errorf("String = %q", o.String())
	}
	var empty Origin
	if empty.Primary() != 0 {
		t.Error("empty Primary should be 0")
	}
	if ASN(15169).String() != "AS15169" {
		t.Errorf("ASN.String = %q", ASN(15169).String())
	}
}

func TestParseOrigin(t *testing.T) {
	cases := []struct {
		in   string
		want Origin
		err  bool
	}{
		{"15169", Origin{15169}, false},
		{"701_702", Origin{701, 702}, false},
		{"1_2,3", Origin{1, 2, 3}, false},
		{"AS15169", Origin{15169}, false},
		{"", nil, true},
		{"abc", nil, true},
		{"99999999999", nil, true},
	}
	for _, c := range cases {
		got, err := ParseOrigin(c.in)
		if c.err {
			if err == nil {
				t.Errorf("ParseOrigin(%q): want error", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseOrigin(%q): %v", c.in, err)
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("ParseOrigin(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("ParseOrigin(%q)[%d] = %v, want %v", c.in, i, got[i], c.want[i])
			}
		}
	}
}

func TestRoundTripSerialisation(t *testing.T) {
	tb := New()
	tb.Insert(mustPrefix(t, "10.0.0.0/8"), Origin{100})
	tb.Insert(mustPrefix(t, "10.1.0.0/16"), Origin{200, 201})
	tb.Insert(mustPrefix(t, "192.168.0.0/16"), Origin{300})
	tb.Insert(mustPrefix(t, "2001:db8::/32"), Origin{400})

	var buf bytes.Buffer
	if _, err := tb.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tb.Len() {
		t.Fatalf("round trip Len = %d, want %d", got.Len(), tb.Len())
	}
	for _, addr := range []string{"10.5.0.1", "10.1.1.1", "192.168.4.4", "2001:db8::1"} {
		a := netip.MustParseAddr(addr)
		w, _, _ := tb.Lookup(a)
		g, _, _ := got.Lookup(a)
		if w.Primary() != g.Primary() {
			t.Errorf("round trip Lookup(%s) = %v, want %v", addr, g, w)
		}
	}
	// MOAS set preserved.
	o, _, _ := got.Lookup(netip.MustParseAddr("10.1.1.1"))
	if len(o) != 2 || o[1] != 201 {
		t.Errorf("MOAS not preserved: %v", o)
	}
}

func TestReadErrorsAndComments(t *testing.T) {
	good := "# comment\n\n10.0.0.0\t8\t100\n"
	tb, err := Read(strings.NewReader(good))
	if err != nil || tb.Len() != 1 {
		t.Errorf("Read(good) = len %d, err %v", tb.Len(), err)
	}
	for _, bad := range []string{
		"10.0.0.0\t8",              // too few fields
		"nonsense\t8\t100",         // bad addr
		"10.0.0.0\tx\t100",         // bad length
		"10.0.0.0\t99\t100",        // invalid prefix bits
		"10.0.0.0\t8\tjunk",        // bad origin
		"10.0.0.0\t8\t100\textra4", // too many fields
	} {
		if _, err := Read(strings.NewReader(bad)); err == nil {
			t.Errorf("Read(%q): want error", bad)
		}
	}
}

// Property: after inserting a random set of /16s keyed by their first two
// octets, lookups inside each prefix return the inserted AS.
func TestRandomPrefixLookupProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := New()
		type ins struct {
			a, b byte
			asn  ASN
		}
		var inserted []ins
		seen := map[[2]byte]bool{}
		for i := 0; i < 50; i++ {
			a, b := byte(rng.Intn(200)+1), byte(rng.Intn(256))
			if seen[[2]byte{a, b}] {
				continue
			}
			seen[[2]byte{a, b}] = true
			asn := ASN(rng.Intn(60000) + 1)
			p := netip.PrefixFrom(netip.AddrFrom4([4]byte{a, b, 0, 0}), 16)
			if err := tb.Insert(p, Origin{asn}); err != nil {
				return false
			}
			inserted = append(inserted, ins{a, b, asn})
		}
		for _, in := range inserted {
			addr := netip.AddrFrom4([4]byte{in.a, in.b, byte(rng.Intn(256)), byte(rng.Intn(256))})
			if tb.LookupASN(addr) != in.asn {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: serialisation round-trips for random tables.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := New()
		for i := 0; i < 30; i++ {
			bits := rng.Intn(25) + 8
			addr := netip.AddrFrom4([4]byte{byte(rng.Intn(224)), byte(rng.Intn(256)), byte(rng.Intn(256)), 0})
			tb.Insert(netip.PrefixFrom(addr, bits), Origin{ASN(rng.Intn(64000) + 1)})
		}
		var buf bytes.Buffer
		if _, err := tb.WriteTo(&buf); err != nil {
			return false
		}
		got, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		var buf2 bytes.Buffer
		if _, err := got.WriteTo(&buf2); err != nil {
			return false
		}
		return bytes.Equal(buf.Bytes(), buf2.Bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
