package tcpmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSteadyStateZeroLossIsUnbounded(t *testing.T) {
	if v := SteadyStateMbps(50, 0, 0); !math.IsInf(v, 1) {
		t.Errorf("zero loss = %v, want +Inf", v)
	}
}

func TestSteadyStateTotalLossIsZero(t *testing.T) {
	if v := SteadyStateMbps(50, 1, 0); v != 0 {
		t.Errorf("loss=1 gives %v, want 0", v)
	}
}

func TestSteadyStateKnownMagnitudes(t *testing.T) {
	// 50 ms RTT, 1e-6 loss (clean path): hundreds of Mbps.
	v := SteadyStateMbps(50, 1e-6, 0)
	if v < 100 || v > 3000 {
		t.Errorf("50ms/1e-6 = %.1f Mbps, want hundreds", v)
	}
	// 50 ms RTT, 10% loss (the premium-tier pathology): a few Mbps at most.
	w := SteadyStateMbps(50, 0.10, 0)
	if w > 10 {
		t.Errorf("50ms/10%% = %.1f Mbps, want < 10", w)
	}
	if w >= v {
		t.Error("higher loss should give lower throughput")
	}
}

func TestSteadyStateMonotoneInLoss(t *testing.T) {
	prev := math.Inf(1)
	for _, p := range []float64{1e-5, 1e-4, 1e-3, 1e-2, 0.05, 0.1, 0.3} {
		v := SteadyStateMbps(60, p, 0)
		if v > prev {
			t.Errorf("throughput rose with loss at p=%v: %v > %v", p, v, prev)
		}
		prev = v
	}
}

func TestSteadyStateMonotoneInRTT(t *testing.T) {
	prev := math.Inf(1)
	for _, rtt := range []float64{10, 30, 60, 120, 250} {
		v := SteadyStateMbps(rtt, 0.001, 0)
		if v > prev {
			t.Errorf("throughput rose with RTT at %vms", rtt)
		}
		prev = v
	}
}

func TestMathisVsPFTKLowLoss(t *testing.T) {
	// At low loss, PFTK approaches Mathis (timeout term negligible).
	m := MathisMbps(80, 1e-5, 0)
	p := SteadyStateMbps(80, 1e-5, 0)
	ratio := p / m
	if ratio < 0.5 || ratio > 1.5 {
		t.Errorf("PFTK/Mathis = %.2f at low loss, want ~1", ratio)
	}
	// At high loss, PFTK must be well below Mathis.
	m = MathisMbps(80, 0.2, 0)
	p = SteadyStateMbps(80, 0.2, 0)
	if p > m*0.8 {
		t.Errorf("PFTK (%.2f) not sufficiently below Mathis (%.2f) at 20%% loss", p, m)
	}
}

func TestMathisEdgeCases(t *testing.T) {
	if !math.IsInf(MathisMbps(50, 0, 0), 1) {
		t.Error("Mathis zero loss should be +Inf")
	}
	if v := MathisMbps(0, 0.01, 0); v <= 0 {
		t.Errorf("Mathis with zero RTT = %v", v)
	}
}

func TestThroughputCappedByBottleneck(t *testing.T) {
	v := Throughput(FlowParams{RTTms: 20, Loss: 0, BottleneckMbps: 400, DurationSec: 30})
	if v > 400 {
		t.Errorf("throughput %v exceeds bottleneck 400", v)
	}
	if v < 300 {
		t.Errorf("throughput %v too far below bottleneck for a 30s test", v)
	}
}

func TestThroughputLossLimited(t *testing.T) {
	// 10% loss makes the flow loss-limited far below a 1 Gbps bottleneck.
	v := Throughput(FlowParams{RTTms: 50, Loss: 0.1, BottleneckMbps: 1000, DurationSec: 30})
	if v > 20 {
		t.Errorf("10%% loss throughput = %v Mbps, want heavily degraded", v)
	}
}

func TestThroughputSlowStartPenaltyShortTests(t *testing.T) {
	short := Throughput(FlowParams{RTTms: 150, Loss: 0, BottleneckMbps: 600, DurationSec: 5})
	long := Throughput(FlowParams{RTTms: 150, Loss: 0, BottleneckMbps: 600, DurationSec: 120})
	if short >= long {
		t.Errorf("short test (%v) should average below long test (%v)", short, long)
	}
	if long < 550 {
		t.Errorf("120s test = %v, want near 600", long)
	}
}

func TestThroughputZeroes(t *testing.T) {
	if v := Throughput(FlowParams{RTTms: 50, Loss: 0.01, BottleneckMbps: 0, DurationSec: 10}); v != 0 {
		t.Errorf("zero bottleneck: %v", v)
	}
	if v := Throughput(FlowParams{RTTms: 50, Loss: 0.01, BottleneckMbps: 100, DurationSec: 0}); v != 0 {
		t.Errorf("zero duration: %v", v)
	}
}

func TestSlowStartSeconds(t *testing.T) {
	if s := slowStartSeconds(0, 50, DefaultMSS); s != 0 {
		t.Errorf("zero target: %v", s)
	}
	// 600 Mbps at 100 ms: BDP ~5180 segments, ~12.3 rounds, ~1.2 s.
	s := slowStartSeconds(600, 100, DefaultMSS)
	if s < 0.8 || s > 2 {
		t.Errorf("slow start = %vs, want ~1.2", s)
	}
	// Tiny target below one segment per RTT needs no ramp.
	if s := slowStartSeconds(0.01, 10, DefaultMSS); s != 0 {
		t.Errorf("sub-segment target: %v", s)
	}
}

// Property: throughput is always within [0, bottleneck] and finite.
func TestThroughputBoundsProperty(t *testing.T) {
	f := func(rtt, loss, cap, dur uint16) bool {
		p := FlowParams{
			RTTms:          float64(rtt%500) + 1,
			Loss:           float64(loss%1000) / 1000,
			BottleneckMbps: float64(cap%2000) + 1,
			DurationSec:    float64(dur%120) + 1,
		}
		v := Throughput(p)
		return v >= 0 && v <= p.BottleneckMbps+1e-9 && !math.IsNaN(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: more available bandwidth never hurts.
func TestThroughputMonotoneInBottleneckProperty(t *testing.T) {
	f := func(rtt, loss uint16) bool {
		base := FlowParams{
			RTTms:       float64(rtt%300) + 5,
			Loss:        float64(loss%100) / 2000,
			DurationSec: 30,
		}
		prev := -1.0
		for _, c := range []float64{10, 50, 100, 500, 1000} {
			base.BottleneckMbps = c
			v := Throughput(base)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
