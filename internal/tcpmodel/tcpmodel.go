// Package tcpmodel estimates the throughput a TCP bulk-transfer flow
// achieves over a path, given round-trip time, loss rate, the bandwidth
// available at the bottleneck, and test duration. CLASP's speed tests are
// 10-120 s TCP transfers, so the reported number is the time-average of a
// flow that spends its first round trips in slow start and then runs at the
// minimum of the available bandwidth and the loss-limited TCP-friendly rate.
//
// The steady-state model is PFTK (Padhye, Firoiu, Towsley, Kurose, 1998),
// which extends the Mathis 1/sqrt(p) law with retransmission timeouts and is
// accurate at the >10 % loss rates the paper observed on lossy premium-tier
// egress ports (§4.1).
package tcpmodel

import "math"

// Default protocol constants.
const (
	// DefaultMSS is the sender's maximum segment size in bytes.
	DefaultMSS = 1448.0
	// ackedPerWindow is the PFTK "b" parameter: packets acknowledged per
	// ACK (2 with delayed ACKs).
	ackedPerWindow = 2.0
	// minRTOms is the conventional minimum retransmission timeout.
	minRTOms = 200.0
)

// FlowParams describes one modelled TCP transfer.
type FlowParams struct {
	RTTms          float64 // base round-trip time, milliseconds
	Loss           float64 // packet loss probability in [0, 1)
	BottleneckMbps float64 // bandwidth available to this flow at the bottleneck
	DurationSec    float64 // test duration in seconds
	MSSBytes       float64 // segment size; DefaultMSS when zero
	// Streams is the number of parallel TCP connections; speed test
	// clients open several (Ookla and the Xfinity web test use 4-8) so
	// clean long-RTT paths are not single-flow-Reno limited. Zero means 1.
	Streams int
}

// SteadyStateMbps returns the PFTK loss-limited send rate in Mbps for the
// given RTT and loss rate, ignoring any bandwidth cap. Zero loss returns
// +Inf (the flow is then purely bandwidth-limited).
func SteadyStateMbps(rttMs, loss, mssBytes float64) float64 {
	if mssBytes <= 0 {
		mssBytes = DefaultMSS
	}
	if rttMs <= 0 {
		rttMs = 1
	}
	if loss <= 0 {
		return math.Inf(1)
	}
	if loss >= 1 {
		return 0
	}
	rtt := rttMs / 1000
	rto := math.Max(4*rttMs, minRTOms) / 1000
	b := ackedPerWindow
	// PFTK full model, packets per second.
	denom := rtt*math.Sqrt(2*b*loss/3) +
		rto*math.Min(1, 3*math.Sqrt(3*b*loss/8))*loss*(1+32*loss*loss)
	pps := 1 / denom
	return pps * mssBytes * 8 / 1e6
}

// MathisMbps returns the classic Mathis et al. approximation
// (MSS/RTT)*(C/sqrt(p)); exported for comparison and tests.
func MathisMbps(rttMs, loss, mssBytes float64) float64 {
	if mssBytes <= 0 {
		mssBytes = DefaultMSS
	}
	if loss <= 0 {
		return math.Inf(1)
	}
	if rttMs <= 0 {
		rttMs = 1
	}
	const c = 1.22
	bps := mssBytes * 8 / (rttMs / 1000) * c / math.Sqrt(loss)
	return bps / 1e6
}

// slowStartSeconds estimates the time a flow needs to ramp from one segment
// to the target rate, doubling its window every RTT.
func slowStartSeconds(targetMbps, rttMs, mssBytes float64) float64 {
	if targetMbps <= 0 || rttMs <= 0 {
		return 0
	}
	bdpSegments := targetMbps * 1e6 / 8 * (rttMs / 1000) / mssBytes
	if bdpSegments <= 1 {
		return 0
	}
	rounds := math.Log2(bdpSegments)
	return rounds * rttMs / 1000
}

// Throughput returns the average throughput in Mbps a TCP flow reports over
// the test duration: the minimum of the bottleneck share and the PFTK rate,
// discounted for the slow-start ramp.
func Throughput(p FlowParams) float64 {
	mss := p.MSSBytes
	if mss <= 0 {
		mss = DefaultMSS
	}
	if p.DurationSec <= 0 || p.BottleneckMbps <= 0 {
		return 0
	}
	streams := p.Streams
	if streams < 1 {
		streams = 1
	}
	rate := p.BottleneckMbps
	if ss := SteadyStateMbps(p.RTTms, p.Loss, mss) * float64(streams); ss < rate {
		rate = ss
	}
	if rate <= 0 {
		return 0
	}
	// Slow-start discount: roughly half the ramp time is "lost". Streams
	// ramp concurrently, so the ramp is per-stream.
	ramp := slowStartSeconds(rate/float64(streams), p.RTTms, mss)
	effective := p.DurationSec - ramp/2
	if effective < p.DurationSec*0.25 {
		effective = p.DurationSec * 0.25
	}
	return rate * effective / p.DurationSec
}
