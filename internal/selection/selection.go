// Package selection implements CLASP's two speed-test-server selection
// methods (§3.1):
//
//   - Topology-based: run a bdrmap pilot scan from the region, traceroute
//     to every US test server, group servers by the far-side interface of
//     the interdomain link they traverse, and keep — per link — the server
//     with the shortest AS path (then lowest RTT), subject to the region's
//     measurement budget.
//   - Differential-based: from the Speedchecker preliminary latency scan,
//     find ⟨city, AS⟩ tuples where the premium/standard tier latency
//     difference is large (≥ 50 ms) or negligible (< 10 ms), and pick test
//     servers in those tuples, maximising geographic and network coverage.
package selection

import (
	"fmt"
	"math"
	"net/netip"
	"sort"

	"github.com/clasp-measurement/clasp/internal/bdrmap"
	"github.com/clasp-measurement/clasp/internal/bgp"
	"github.com/clasp-measurement/clasp/internal/netsim"
	"github.com/clasp-measurement/clasp/internal/speedchecker"
	"github.com/clasp-measurement/clasp/internal/topology"
	"github.com/clasp-measurement/clasp/internal/traceroute"
)

// --- Topology-based selection ------------------------------------------------

// TopoParams tunes the topology-based method.
type TopoParams struct {
	Region string
	// Budget caps the number of selected servers (0 = unlimited). The
	// paper deployed all selected servers in us-west1/us-east1 but only
	// 25/40/56 in us-west2/us-east4/us-central1.
	Budget int
	// MaxASHops keeps only links whose best server is at most this many
	// AS hops away (default 2; the paper preferred directly peering
	// servers).
	MaxASHops int
	// Seed drives probe flow IDs.
	Seed int64
}

// Selected is one chosen server with the link it measures.
type Selected struct {
	Server   *topology.Server
	FarIP    netip.Addr // far side of the interdomain link it traverses
	Neighbor bdrmap.ASN
	ASHops   int
	RTTms    float64
}

// TopoResult is the outcome of the topology-based method, carrying the
// numbers reported in Table 1.
type TopoResult struct {
	Region string
	// PilotLinks is what bdrmap found in the pilot scan (~6k per region).
	PilotLinks *bdrmap.Result
	// ServerLinkCount is the number of distinct interdomain links that
	// traceroutes to all US servers traversed (Table 1, middle column).
	ServerLinkCount int
	// Selected is the final server list (Table 1, right column).
	Selected []Selected
	// SharedFraction is the fraction of servers that shared their link
	// with at least one other server (75.5-91.6 % in the paper).
	SharedFraction float64
}

// Coverage returns the fraction of server-traversed links that the
// selected servers measure (Table 1: 20.7-69.4 %).
func (r *TopoResult) Coverage() float64 {
	if r.ServerLinkCount == 0 {
		return 0
	}
	return float64(len(r.Selected)) / float64(r.ServerLinkCount)
}

// TopologyBased runs the full topology-based pipeline.
func TopologyBased(sim *netsim.Sim, mapper *bdrmap.Mapper, params TopoParams) (*TopoResult, error) {
	if params.MaxASHops <= 0 {
		params.MaxASHops = 2
	}
	topo := sim.Topology()
	if _, ok := topo.Region(params.Region); !ok {
		return nil, fmt.Errorf("selection: unknown region %q", params.Region)
	}
	prober := traceroute.NewProber(sim, params.Region, params.Seed)

	// 1. Pilot scan: traceroute to every visible link's engineered probe
	// target, then infer borders.
	var pilotTraces []traceroute.Result
	for _, l := range topo.VisibleLinks(params.Region) {
		addr, ok := topo.ProbeTarget(l.ID)
		if !ok {
			continue
		}
		nb := topo.AS(l.Neighbor)
		if nb == nil || len(nb.Cities) == 0 {
			continue
		}
		tr, err := prober.Trace(traceroute.Destination{
			IP: addr, ASN: l.Neighbor, City: nb.Cities[0], LinkID: l.ID, Tier: bgp.Premium,
		}, traceroute.Options{Mode: traceroute.Paris, FlowID: uint64(l.ID)})
		if err != nil {
			return nil, fmt.Errorf("selection: pilot trace: %w", err)
		}
		pilotTraces = append(pilotTraces, tr)
	}
	pilot, err := mapper.Infer(params.Region, pilotTraces)
	if err != nil {
		return nil, fmt.Errorf("selection: pilot inference: %w", err)
	}

	// 2. Traceroute to every US server and attribute each to the far-side
	// interface it crossed.
	type serverObs struct {
		server *topology.Server
		farIP  netip.Addr
		asHops int
		rtt    float64
	}
	var observations []serverObs
	for _, s := range topo.ServersInCountry("US") {
		tr, err := prober.Trace(traceroute.Destination{
			IP: s.IP, ASN: s.ASN, City: s.City, LinkID: -1, Tier: bgp.Premium,
		}, traceroute.Options{Mode: traceroute.Paris, FlowID: uint64(1_000_000 + s.ID)})
		if err != nil {
			return nil, fmt.Errorf("selection: server trace: %w", err)
		}
		far, hops, rtt, ok := attributeTrace(topo, pilot, &tr)
		if !ok {
			continue
		}
		observations = append(observations, serverObs{server: s, farIP: far, asHops: hops, rtt: rtt})
	}

	// 3. Group by far IP (merging alias-resolved routers keeps one entry
	// per link, identified by far IP as bdrmap does).
	groups := make(map[netip.Addr][]serverObs)
	for _, o := range observations {
		groups[o.farIP] = append(groups[o.farIP], o)
	}
	shared := 0
	for _, g := range groups {
		if len(g) > 1 {
			shared += len(g)
		}
	}
	var sharedFrac float64
	if len(observations) > 0 {
		sharedFrac = float64(shared) / float64(len(observations))
	}

	// 4. Per link, keep the best server: shortest AS path, then lowest
	// RTT; drop links whose best server is too many AS hops away.
	var selected []Selected
	farIPs := make([]netip.Addr, 0, len(groups))
	for ip := range groups {
		farIPs = append(farIPs, ip)
	}
	sort.Slice(farIPs, func(i, j int) bool { return farIPs[i].Compare(farIPs[j]) < 0 })
	neighborOf := make(map[netip.Addr]bdrmap.ASN)
	for _, l := range pilot.Links {
		neighborOf[l.FarIP] = l.Neighbor
	}
	for _, ip := range farIPs {
		g := groups[ip]
		sort.Slice(g, func(i, j int) bool {
			if g[i].asHops != g[j].asHops {
				return g[i].asHops < g[j].asHops
			}
			if g[i].rtt != g[j].rtt {
				return g[i].rtt < g[j].rtt
			}
			return g[i].server.ID < g[j].server.ID
		})
		best := g[0]
		if best.asHops > params.MaxASHops {
			continue
		}
		selected = append(selected, Selected{
			Server:   best.server,
			FarIP:    ip,
			Neighbor: neighborOf[ip],
			ASHops:   best.asHops,
			RTTms:    best.rtt,
		})
	}

	// 5. Budget: keep the lowest-latency selections first ("heuristically
	// maximizing coverage" under cost limits).
	if params.Budget > 0 && len(selected) > params.Budget {
		sort.Slice(selected, func(i, j int) bool {
			if selected[i].RTTms != selected[j].RTTms {
				return selected[i].RTTms < selected[j].RTTms
			}
			return selected[i].Server.ID < selected[j].Server.ID
		})
		selected = selected[:params.Budget]
	}
	sort.Slice(selected, func(i, j int) bool { return selected[i].Server.ID < selected[j].Server.ID })

	return &TopoResult{
		Region:          params.Region,
		PilotLinks:      pilot,
		ServerLinkCount: len(groups),
		Selected:        selected,
		SharedFraction:  sharedFrac,
	}, nil
}

// attributeTrace finds the interdomain link a server trace crossed, the AS
// path length, and the destination RTT.
func attributeTrace(topo *topology.Topology, pilot *bdrmap.Result, tr *traceroute.Result) (far netip.Addr, asHops int, rtt float64, ok bool) {
	table := topo.PrefixTable()
	known := make(map[netip.Addr]bool, len(pilot.Links))
	for _, l := range pilot.Links {
		known[l.FarIP] = true
	}
	// Walk hops: the far side is the first hop matching a pilot link (or,
	// failing that, the first non-cloud hop). Count AS transitions after
	// the cloud for the AS path length.
	cloud := topo.Cloud.ASN
	var lastASN bdrmap.ASN = cloud
	hopsSeen := 0
	reachedRTT := 0.0
	for _, h := range tr.Hops {
		if !h.Responded {
			continue
		}
		reachedRTT = h.RTTms
		asn := table.LookupASN(h.IP)
		if known[h.IP] && far == (netip.Addr{}) {
			far = h.IP
		}
		if asn != 0 && asn != lastASN {
			if lastASN != cloud || asn != cloud {
				hopsSeen++
			}
			lastASN = asn
		}
	}
	if far == (netip.Addr{}) || !tr.Reached {
		return netip.Addr{}, 0, 0, false
	}
	return far, hopsSeen, reachedRTT, true
}

// --- Differential-based selection ---------------------------------------------

// DiffClass is the latency relationship between the tiers for a candidate.
type DiffClass int

// Candidate classes (Fig. 5's green/red/blue grouping).
const (
	// Comparable: |standard - premium| < 10 ms.
	Comparable DiffClass = iota
	// PremiumLower: premium tier at least 50 ms faster.
	PremiumLower
	// StandardLower: standard tier at least 50 ms faster.
	StandardLower
)

// String implements fmt.Stringer.
func (c DiffClass) String() string {
	switch c {
	case Comparable:
		return "comparable"
	case PremiumLower:
		return "premium-lower"
	default:
		return "standard-lower"
	}
}

// DiffParams tunes the differential-based method.
type DiffParams struct {
	Region string
	// HighMs and LowMs are the |Δ| thresholds (defaults 50 and 10).
	HighMs float64
	LowMs  float64
	// Target is the number of servers to select (the paper chose 15-17).
	Target int
	// MinSamples drops tuples with fewer measurements (default 100).
	MinSamples int
}

// DiffSelected is one server chosen by the differential method.
type DiffSelected struct {
	Server  *topology.Server
	Class   DiffClass
	DeltaMs float64 // standard - premium median latency
}

// DifferentialBased selects servers from preliminary-scan deltas.
func DifferentialBased(topo *topology.Topology, deltas []speedchecker.TierDelta, params DiffParams) ([]DiffSelected, error) {
	if params.HighMs <= 0 {
		params.HighMs = 50
	}
	if params.LowMs <= 0 {
		params.LowMs = 10
	}
	if params.Target <= 0 {
		params.Target = 16
	}
	if params.MinSamples <= 0 {
		params.MinSamples = 100
	}
	if _, ok := topo.Region(params.Region); !ok {
		return nil, fmt.Errorf("selection: unknown region %q", params.Region)
	}

	// Candidate tuples: |delta| >= HighMs or < LowMs.
	type cand struct {
		city  string
		asn   topology.ASN
		class DiffClass
		delta float64
	}
	var candidates []cand
	for _, d := range deltas {
		if d.Region != params.Region || d.MinCount < params.MinSamples {
			continue
		}
		abs := math.Abs(d.DeltaMs)
		switch {
		case abs >= params.HighMs && d.DeltaMs > 0:
			candidates = append(candidates, cand{d.City, d.ASN, PremiumLower, d.DeltaMs})
		case abs >= params.HighMs:
			candidates = append(candidates, cand{d.City, d.ASN, StandardLower, d.DeltaMs})
		case abs < params.LowMs:
			candidates = append(candidates, cand{d.City, d.ASN, Comparable, d.DeltaMs})
		}
	}

	// Map candidates to servers in the same <city, AS>.
	type scored struct {
		sel DiffSelected
		cc  string
		asn topology.ASN
	}
	var pool []scored
	seenServer := make(map[int]bool)
	for _, c := range candidates {
		for _, s := range topo.Servers() {
			if s.ASN != c.asn || s.City != c.city || seenServer[s.ID] {
				continue
			}
			seenServer[s.ID] = true
			pool = append(pool, scored{
				sel: DiffSelected{Server: s, Class: c.class, DeltaMs: c.delta},
				cc:  s.Country, asn: s.ASN,
			})
		}
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i].sel.Server.ID < pool[j].sel.Server.ID })

	// Greedy pick maximising coverage: prefer unseen (class, country, AS)
	// combinations, cycling through the classes.
	var out []DiffSelected
	usedCountry := make(map[string]int)
	usedAS := make(map[topology.ASN]int)
	picked := make(map[int]bool)
	for len(out) < params.Target {
		bestIdx := -1
		bestScore := math.Inf(-1)
		wantClass := DiffClass(len(out) % 3)
		for i, p := range pool {
			if picked[p.sel.Server.ID] {
				continue
			}
			score := 0.0
			if p.sel.Class == wantClass {
				score += 4
			}
			score -= 2 * float64(usedAS[p.asn])
			score -= float64(usedCountry[p.cc])
			if score > bestScore {
				bestScore = score
				bestIdx = i
			}
		}
		if bestIdx < 0 {
			break
		}
		p := pool[bestIdx]
		picked[p.sel.Server.ID] = true
		usedCountry[p.cc]++
		usedAS[p.asn]++
		out = append(out, p.sel)
	}
	return out, nil
}
