package selection

import (
	"testing"
)

func TestRefreshIdenticalPilotKeepsEverything(t *testing.T) {
	sim, mapper := setup(t)
	params := TopoParams{Region: "us-east1", Seed: 13}
	prev, err := TopologyBased(sim, mapper, params)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Refresh(sim, mapper, prev, params)
	if err != nil {
		t.Fatal(err)
	}
	// Same topology, same seed: nothing should change except possibly
	// response-loss jitter in traces — allow tiny churn.
	if res.Diff.DroppedServers > len(prev.Selected)/20 {
		t.Errorf("dropped %d of %d on identical refresh", res.Diff.DroppedServers, len(prev.Selected))
	}
	if res.Diff.KeptServers < len(prev.Selected)*9/10 {
		t.Errorf("kept only %d of %d", res.Diff.KeptServers, len(prev.Selected))
	}
	// Continuity: kept links keep their original server.
	prevByLink := make(map[string]int)
	for _, s := range prev.Selected {
		prevByLink[s.FarIP.String()] = s.Server.ID
	}
	for _, s := range res.Selection.Selected {
		if old, ok := prevByLink[s.FarIP.String()]; ok && old != s.Server.ID {
			t.Errorf("link %s changed server %d -> %d on refresh", s.FarIP, old, s.Server.ID)
		}
	}
}

func TestRefreshDetectsVisibilityChange(t *testing.T) {
	sim, mapper := setup(t)
	prev, err := TopologyBased(sim, mapper, TopoParams{Region: "us-east1", Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	// A different probing seed changes which silent hops hide links,
	// standing in for real-world link churn between pilots.
	res, err := Refresh(sim, mapper, prev, TopoParams{Region: "us-east1", Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	total := res.Diff.KeptServers + res.Diff.NewServers
	if total != len(res.Selection.Selected) {
		t.Errorf("diff accounting: kept %d + new %d != selected %d",
			res.Diff.KeptServers, res.Diff.NewServers, len(res.Selection.Selected))
	}
	if len(res.Diff.AddedLinks) != res.Diff.NewServers {
		t.Errorf("added links %d != new servers %d", len(res.Diff.AddedLinks), res.Diff.NewServers)
	}
	if len(res.Diff.RemovedLinks) != res.Diff.DroppedServers {
		t.Errorf("removed links %d != dropped %d", len(res.Diff.RemovedLinks), res.Diff.DroppedServers)
	}
}

func TestRefreshNeedsPrevious(t *testing.T) {
	sim, mapper := setup(t)
	if _, err := Refresh(sim, mapper, nil, TopoParams{Region: "us-east1"}); err == nil {
		t.Error("nil previous selection accepted")
	}
}

func TestRefreshInheritsRegion(t *testing.T) {
	sim, mapper := setup(t)
	prev, err := TopologyBased(sim, mapper, TopoParams{Region: "us-west1", Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Refresh(sim, mapper, prev, TopoParams{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if res.Selection.Region != "us-west1" {
		t.Errorf("region = %q", res.Selection.Region)
	}
}
