package selection

import (
	"testing"

	"github.com/clasp-measurement/clasp/internal/alias"
	"github.com/clasp-measurement/clasp/internal/bdrmap"
	"github.com/clasp-measurement/clasp/internal/netsim"
	"github.com/clasp-measurement/clasp/internal/speedchecker"
	"github.com/clasp-measurement/clasp/internal/topology"
)

func setup(t *testing.T) (*netsim.Sim, *bdrmap.Mapper) {
	t.Helper()
	topo, err := topology.New(topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sim := netsim.New(topo, nil, netsim.Config{Seed: 13})
	mapper := bdrmap.FromTopology(topo, alias.NewProber(topo, 13))
	return sim, mapper
}

func TestTopologyBasedPipeline(t *testing.T) {
	sim, mapper := setup(t)
	res, err := TopologyBased(sim, mapper, TopoParams{Region: "us-east1", Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if res.PilotLinks.LinkCount() < 100 {
		t.Errorf("pilot found %d links", res.PilotLinks.LinkCount())
	}
	if res.ServerLinkCount == 0 {
		t.Fatal("no server-traversed links")
	}
	// Most servers must share links with others (75.5-91.6% in Table 1
	// discussion).
	if res.SharedFraction < 0.5 {
		t.Errorf("shared fraction %.2f, want > 0.5", res.SharedFraction)
	}
	// Selection: one server per link; coverage within (0, 1].
	if len(res.Selected) == 0 {
		t.Fatal("no servers selected")
	}
	cov := res.Coverage()
	if cov <= 0 || cov > 1 {
		t.Errorf("coverage = %v", cov)
	}
	// No duplicate links or servers.
	links := make(map[string]bool)
	servers := make(map[int]bool)
	for _, s := range res.Selected {
		if links[s.FarIP.String()] {
			t.Errorf("link %v selected twice", s.FarIP)
		}
		links[s.FarIP.String()] = true
		if servers[s.Server.ID] {
			t.Errorf("server %d selected twice", s.Server.ID)
		}
		servers[s.Server.ID] = true
		if s.ASHops > 2 {
			t.Errorf("selected server %d with %d AS hops", s.Server.ID, s.ASHops)
		}
		if s.RTTms <= 0 {
			t.Errorf("selected server %d without RTT", s.Server.ID)
		}
	}
}

func TestTopologyBasedPicksShortestPath(t *testing.T) {
	sim, mapper := setup(t)
	res, err := TopologyBased(sim, mapper, TopoParams{Region: "us-west1", Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	// Most selections should be direct peers (1 AS hop), as the paper
	// observed.
	direct := 0
	for _, s := range res.Selected {
		if s.ASHops <= 1 {
			direct++
		}
	}
	if float64(direct) < float64(len(res.Selected))*0.4 {
		t.Errorf("only %d/%d selections directly peer", direct, len(res.Selected))
	}
}

func TestTopologyBasedBudget(t *testing.T) {
	sim, mapper := setup(t)
	res, err := TopologyBased(sim, mapper, TopoParams{Region: "us-central1", Budget: 10, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) > 10 {
		t.Errorf("budget exceeded: %d", len(res.Selected))
	}
}

func TestTopologyBasedUnknownRegion(t *testing.T) {
	sim, mapper := setup(t)
	if _, err := TopologyBased(sim, mapper, TopoParams{Region: "nope"}); err == nil {
		t.Error("unknown region: want error")
	}
}

func TestDifferentialBasedSelection(t *testing.T) {
	sim, _ := setup(t)
	p := speedchecker.New(sim)
	aggs := p.RunPreliminary(speedchecker.Params{
		Regions:      []string{"europe-west1"},
		SamplesPerVP: 3,
		MinSamples:   6,
	})
	deltas := speedchecker.Deltas(aggs)
	sel, err := DifferentialBased(sim.Topology(), deltas, DiffParams{
		Region: "europe-west1", Target: 16, MinSamples: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) == 0 {
		t.Fatal("no differential servers selected")
	}
	if len(sel) > 16 {
		t.Errorf("selected %d > target 16", len(sel))
	}
	classes := make(map[DiffClass]int)
	servers := make(map[int]bool)
	for _, s := range sel {
		classes[s.Class]++
		if servers[s.Server.ID] {
			t.Errorf("server %d selected twice", s.Server.ID)
		}
		servers[s.Server.ID] = true
		// Class consistent with delta.
		switch s.Class {
		case Comparable:
			if s.DeltaMs >= 10 || s.DeltaMs <= -10 {
				t.Errorf("comparable server with delta %v", s.DeltaMs)
			}
		case PremiumLower:
			if s.DeltaMs < 50 {
				t.Errorf("premium-lower server with delta %v", s.DeltaMs)
			}
		case StandardLower:
			if s.DeltaMs > -50 {
				t.Errorf("standard-lower server with delta %v", s.DeltaMs)
			}
		}
	}
	if len(classes) < 2 {
		t.Errorf("selection lacks class diversity: %v", classes)
	}
}

func TestDifferentialBasedErrors(t *testing.T) {
	sim, _ := setup(t)
	if _, err := DifferentialBased(sim.Topology(), nil, DiffParams{Region: "nope"}); err == nil {
		t.Error("unknown region: want error")
	}
	sel, err := DifferentialBased(sim.Topology(), nil, DiffParams{Region: "europe-west1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 0 {
		t.Error("selection from no deltas")
	}
}

func TestDiffClassString(t *testing.T) {
	if Comparable.String() != "comparable" || PremiumLower.String() != "premium-lower" || StandardLower.String() != "standard-lower" {
		t.Error("DiffClass.String broken")
	}
}
