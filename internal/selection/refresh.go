package selection

import (
	"fmt"
	"net/netip"
	"sort"

	"github.com/clasp-measurement/clasp/internal/bdrmap"
	"github.com/clasp-measurement/clasp/internal/netsim"
)

// The paper ran its pilot scans once, at the start of the campaign, and
// notes in §5 that CLASP therefore "cannot adapt to changes in the use of
// interdomain links and any new deployment of speed test servers". Refresh
// implements that future-work item: re-run the pilot, diff the link and
// server landscape against the previous selection, and produce an updated
// server list that keeps still-valid picks stable (continuity matters for
// longitudinal series) while covering newly appeared links.

// RefreshDiff describes how the landscape moved between two pilots.
type RefreshDiff struct {
	// AddedLinks are interdomain links present now but absent before.
	AddedLinks []netip.Addr
	// RemovedLinks disappeared since the previous pilot.
	RemovedLinks []netip.Addr
	// KeptServers are selections carried over unchanged.
	KeptServers int
	// NewServers are selections added for newly covered links.
	NewServers int
	// DroppedServers were removed because their link vanished.
	DroppedServers int
}

// RefreshResult bundles the new selection with the diff.
type RefreshResult struct {
	Selection *TopoResult
	Diff      RefreshDiff
}

// Refresh re-runs the topology-based pipeline and reconciles it with a
// previous selection: servers whose links still exist are kept (even when
// a marginally better server appeared, to preserve series continuity);
// links that vanished lose their server; new links get the freshly chosen
// one, budget permitting.
func Refresh(sim *netsim.Sim, mapper *bdrmap.Mapper, prev *TopoResult, params TopoParams) (*RefreshResult, error) {
	if prev == nil {
		return nil, fmt.Errorf("selection: refresh needs a previous selection")
	}
	if params.Region == "" {
		params.Region = prev.Region
	}
	next, err := TopologyBased(sim, mapper, params)
	if err != nil {
		return nil, fmt.Errorf("selection: refresh pilot: %w", err)
	}

	prevByLink := make(map[netip.Addr]Selected, len(prev.Selected))
	for _, s := range prev.Selected {
		prevByLink[s.FarIP] = s
	}
	nextByLink := make(map[netip.Addr]Selected, len(next.Selected))
	for _, s := range next.Selected {
		nextByLink[s.FarIP] = s
	}

	var diff RefreshDiff
	merged := make([]Selected, 0, len(next.Selected))
	for link, s := range nextByLink {
		if old, ok := prevByLink[link]; ok {
			merged = append(merged, old) // continuity: keep the old pick
			diff.KeptServers++
		} else {
			merged = append(merged, s)
			diff.AddedLinks = append(diff.AddedLinks, link)
			diff.NewServers++
		}
	}
	for link := range prevByLink {
		if _, ok := nextByLink[link]; !ok {
			diff.RemovedLinks = append(diff.RemovedLinks, link)
			diff.DroppedServers++
		}
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].Server.ID < merged[j].Server.ID })
	sort.Slice(diff.AddedLinks, func(i, j int) bool { return diff.AddedLinks[i].Compare(diff.AddedLinks[j]) < 0 })
	sort.Slice(diff.RemovedLinks, func(i, j int) bool { return diff.RemovedLinks[i].Compare(diff.RemovedLinks[j]) < 0 })

	next.Selected = merged
	return &RefreshResult{Selection: next, Diff: diff}, nil
}
