package traceroute

import (
	"bytes"
	"testing"

	"github.com/clasp-measurement/clasp/internal/bgp"
	"github.com/clasp-measurement/clasp/internal/netsim"
	"github.com/clasp-measurement/clasp/internal/topology"
)

func newProber(t *testing.T) (*Prober, *topology.Topology) {
	t.Helper()
	topo, err := topology.New(topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sim := netsim.New(topo, nil, netsim.Config{Seed: 11})
	return NewProber(sim, "us-east1", 11), topo
}

func serverDest(s *topology.Server) Destination {
	return Destination{IP: s.IP, ASN: s.ASN, City: s.City, LinkID: -1, Tier: bgp.Premium}
}

func TestTraceReachesServer(t *testing.T) {
	p, topo := newProber(t)
	srv := topo.Servers()[0]
	res, err := p.Trace(serverDest(srv), Options{FlowID: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached {
		t.Fatalf("trace did not reach destination: %+v", res)
	}
	last := res.Hops[len(res.Hops)-1]
	if last.IP != srv.IP {
		t.Errorf("last hop %v, want %v", last.IP, srv.IP)
	}
	// TTLs must be sequential from 1.
	for i, h := range res.Hops {
		if h.TTL != i+1 {
			t.Errorf("hop %d has TTL %d", i, h.TTL)
		}
	}
	// Responding hops have increasing RTT.
	prev := -1.0
	for _, h := range res.Hops {
		if !h.Responded {
			continue
		}
		if h.RTTms < prev {
			t.Errorf("RTT decreased at TTL %d", h.TTL)
		}
		prev = h.RTTms
	}
}

func TestParisStableAcrossRuns(t *testing.T) {
	p, topo := newProber(t)
	srv := topo.Servers()[4]
	a, err := p.Trace(serverDest(srv), Options{Mode: Paris, FlowID: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Trace(serverDest(srv), Options{Mode: Paris, FlowID: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Hops) != len(b.Hops) {
		t.Fatalf("paris traces differ in length")
	}
	for i := range a.Hops {
		if a.Hops[i].IP != b.Hops[i].IP {
			t.Errorf("paris trace hop %d differs", i)
		}
	}
}

func TestClassicModeCanOscillate(t *testing.T) {
	p, topo := newProber(t)
	// Across many servers, classic mode must produce at least one trace
	// whose hop set differs from the paris trace (ECMP oscillation).
	differs := false
	for _, srv := range topo.Servers()[:25] {
		paris, err := p.Trace(serverDest(srv), Options{Mode: Paris, FlowID: 5, ResponseLoss: -1})
		if err != nil {
			t.Fatal(err)
		}
		classic, err := p.Trace(serverDest(srv), Options{Mode: Classic, FlowID: 5, ResponseLoss: -1})
		if err != nil {
			t.Fatal(err)
		}
		if len(paris.Hops) != len(classic.Hops) {
			differs = true
			break
		}
		for i := range paris.Hops {
			if paris.Hops[i].IP != classic.Hops[i].IP {
				differs = true
				break
			}
		}
	}
	if !differs {
		t.Error("classic mode never diverged from paris; ECMP modelling inert")
	}
}

func TestResponseLossProducesSilentHops(t *testing.T) {
	p, topo := newProber(t)
	silent, total := 0, 0
	for _, srv := range topo.Servers()[:40] {
		res, err := p.Trace(serverDest(srv), Options{FlowID: 1, ResponseLoss: 0.3, Attempts: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range res.Hops {
			total++
			if !h.Responded {
				silent++
			}
		}
		// Destination still reached (servers always respond).
		if !res.Reached {
			t.Errorf("server %d unreached under response loss", srv.ID)
		}
	}
	frac := float64(silent) / float64(total)
	if frac < 0.1 || frac > 0.5 {
		t.Errorf("silent hop fraction %.2f with loss 0.3", frac)
	}
}

func TestTraceToProbeTarget(t *testing.T) {
	p, topo := newProber(t)
	links := topo.VisibleLinks("us-east1")
	l := links[7]
	addr, _ := topo.ProbeTarget(l.ID)
	nb := topo.AS(l.Neighbor)
	res, err := p.Trace(Destination{IP: addr, ASN: l.Neighbor, City: nb.Cities[0], LinkID: l.ID, Tier: bgp.Premium}, Options{FlowID: 2, ResponseLoss: -1})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, h := range res.Hops {
		if h.IP == l.FarIP {
			found = true
		}
	}
	if !found {
		t.Errorf("engineered trace missed far IP of link %d", l.ID)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p, topo := newProber(t)
	var results []Result
	for _, srv := range topo.Servers()[:3] {
		res, err := p.Trace(serverDest(srv), Options{FlowID: 1})
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, results); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(results) {
		t.Fatalf("round trip count %d, want %d", len(got), len(results))
	}
	for i := range got {
		if got[i].Dst != results[i].Dst || len(got[i].Hops) != len(results[i].Hops) {
			t.Errorf("result %d mismatch", i)
		}
		for j := range got[i].Hops {
			if got[i].Hops[j].IP != results[i].Hops[j].IP {
				t.Errorf("result %d hop %d mismatch", i, j)
			}
		}
	}
}

func TestReadJSONGarbage(t *testing.T) {
	if _, err := ReadJSON(bytes.NewReader([]byte("{not json"))); err == nil {
		t.Error("garbage JSON: want error")
	}
}
