// Package traceroute implements a scamper-style paris-traceroute prober
// over the network simulator. Paris traceroute keeps the flow identifier
// constant across probes so per-flow load balancing (ECMP) cannot split one
// measurement across multiple paths; classic mode varies the flow ID per
// probe, reproducing the path oscillation bdrmap must avoid.
package traceroute

import (
	"encoding/json"
	"fmt"
	"io"
	"net/netip"

	"github.com/clasp-measurement/clasp/internal/bgp"
	"github.com/clasp-measurement/clasp/internal/netsim"
)

// Mode selects probe flow-ID behaviour.
type Mode int

// Probing modes.
const (
	// Paris keeps the probe flow ID fixed (scamper's paris-traceroute).
	Paris Mode = iota
	// Classic varies the flow ID per probe, as classic traceroute does.
	Classic
)

// Destination identifies a traceroute target and its routing hints.
type Destination struct {
	IP   netip.Addr
	ASN  netsim.ASN
	City string
	// LinkID pins an engineered pilot-probe target to its interconnect;
	// -1 for ordinary destinations.
	LinkID int
	// Tier selects the cloud egress policy.
	Tier bgp.Tier
}

// Options tunes a trace.
type Options struct {
	Mode   Mode
	FlowID uint64 // base flow identifier (paris keeps it fixed)
	MaxTTL int    // default 32
	// Attempts is the number of probes per TTL before declaring the hop
	// silent (scamper's -q; default 3).
	Attempts int
	// ResponseLoss is the per-probe probability a hop stays silent
	// (default 0.04; pass a negative value for zero loss).
	ResponseLoss float64
}

// HopReply is the response observed at one TTL.
type HopReply struct {
	TTL       int        `json:"ttl"`
	IP        netip.Addr `json:"addr"`
	RTTms     float64    `json:"rtt_ms"`
	Responded bool       `json:"responded"`
}

// Result is one completed traceroute.
type Result struct {
	Dst     netip.Addr `json:"dst"`
	Region  string     `json:"region"`
	Mode    string     `json:"mode"`
	FlowID  uint64     `json:"flow_id"`
	Hops    []HopReply `json:"hops"`
	Reached bool       `json:"reached"`
}

// Prober issues traceroutes from one cloud region.
type Prober struct {
	sim    *netsim.Sim
	region string
	seed   int64
}

// NewProber creates a prober for a region.
func NewProber(sim *netsim.Sim, region string, seed int64) *Prober {
	return &Prober{sim: sim, region: region, seed: seed}
}

// Trace probes the destination hop by hop.
func (p *Prober) Trace(dst Destination, opts Options) (Result, error) {
	if opts.MaxTTL <= 0 {
		opts.MaxTTL = 32
	}
	if opts.Attempts <= 0 {
		opts.Attempts = 3
	}
	if opts.ResponseLoss == 0 {
		opts.ResponseLoss = 0.04
	}
	res := Result{Dst: dst.IP, Region: p.region, FlowID: opts.FlowID}
	if opts.Mode == Paris {
		res.Mode = "paris"
	} else {
		res.Mode = "classic"
	}

	for ttl := 1; ttl <= opts.MaxTTL; ttl++ {
		flowID := opts.FlowID
		if opts.Mode == Classic {
			// Classic traceroute varies ports per probe, so the flow
			// hashes differently at every TTL.
			flowID = opts.FlowID*131 + uint64(ttl)
		}
		path, err := p.sim.ForwardPath(p.region, dst.IP, dst.ASN, dst.City, dst.LinkID, dst.Tier, flowID)
		if err != nil {
			return res, fmt.Errorf("traceroute: %w", err)
		}
		if ttl > len(path) {
			break
		}
		hop := path[ttl-1]
		// Some routers rate-limit or drop TTL-exceeded responses; retry
		// up to Attempts times like scamper does.
		reply := HopReply{TTL: ttl, Responded: false}
		for attempt := 0; attempt < opts.Attempts; attempt++ {
			if !silentHop(p.seed, hop.IP, flowID+uint64(attempt)<<48, opts.ResponseLoss) {
				reply = HopReply{TTL: ttl, IP: hop.IP, RTTms: hop.RTTms, Responded: true}
				break
			}
		}
		res.Hops = append(res.Hops, reply)
		if hop.IP == dst.IP && ttl == len(path) {
			res.Reached = reply.Responded
			if !reply.Responded {
				// The destination itself always answers probes aimed at
				// it (speed test servers are responsive web services).
				res.Hops[len(res.Hops)-1] = HopReply{TTL: ttl, IP: hop.IP, RTTms: hop.RTTms, Responded: true}
				res.Reached = true
			}
			break
		}
	}
	return res, nil
}

// silentHop deterministically decides whether a router suppresses its
// TTL-exceeded reply for this probe.
func silentHop(seed int64, ip netip.Addr, flowID uint64, p float64) bool {
	if p <= 0 {
		return false
	}
	h := uint64(14695981039346656037)
	for _, b := range ip.AsSlice() {
		h ^= uint64(b)
		h *= 1099511628211
	}
	h ^= flowID
	h *= 1099511628211
	h ^= uint64(seed)
	h *= 1099511628211
	h ^= h >> 33
	return float64(h>>11)/(1<<53) < p
}

// WriteJSON streams results in a scamper-like JSON-lines format.
func WriteJSON(w io.Writer, results []Result) error {
	enc := json.NewEncoder(w)
	for i := range results {
		if err := enc.Encode(&results[i]); err != nil {
			return fmt.Errorf("traceroute: encoding result: %w", err)
		}
	}
	return nil
}

// ReadJSON parses results written by WriteJSON.
func ReadJSON(r io.Reader) ([]Result, error) {
	dec := json.NewDecoder(r)
	var out []Result
	for {
		var res Result
		if err := dec.Decode(&res); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, fmt.Errorf("traceroute: decoding result: %w", err)
		}
		out = append(out, res)
	}
}
