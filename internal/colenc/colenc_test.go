package colenc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		type run struct {
			v    uint64
			bits uint
		}
		runs := make([]run, 0, n)
		w := NewBitWriter(nil)
		for i := 0; i < n; i++ {
			bits := uint(rng.Intn(64) + 1)
			v := rng.Uint64()
			if bits < 64 {
				v &= 1<<bits - 1
			}
			runs = append(runs, run{v, bits})
			w.WriteBits(v, bits)
		}
		r := NewBitReader(w.Bytes())
		for i, ru := range runs {
			if got := r.ReadBits(ru.bits); got != ru.v {
				t.Fatalf("trial %d run %d: got %#x, want %#x (%d bits)", trial, i, got, ru.v, ru.bits)
			}
		}
		if r.Err() != nil {
			t.Fatalf("trial %d: reader error: %v", trial, r.Err())
		}
	}
}

func TestBitReaderOverrun(t *testing.T) {
	r := NewBitReader([]byte{0xff})
	r.ReadBits(8)
	if r.Err() != nil {
		t.Fatalf("unexpected error inside buffer: %v", r.Err())
	}
	r.ReadBit()
	if r.Err() == nil {
		t.Fatal("expected overrun error")
	}
}

func TestVarintRoundTrip(t *testing.T) {
	vals := []int64{0, 1, -1, 63, -64, 1 << 20, -(1 << 40), math.MaxInt64, math.MinInt64}
	for _, v := range vals {
		buf := AppendVarint(nil, v)
		got, n := Varint(buf)
		if got != v || n != len(buf) {
			t.Fatalf("varint %d: got %d (n=%d, len=%d)", v, got, n, len(buf))
		}
	}
	if _, n := Uvarint(nil); n != 0 {
		t.Fatal("empty buffer should not decode")
	}
	if _, n := Uvarint([]byte{0x80, 0x80}); n != 0 {
		t.Fatal("truncated varint should not decode")
	}
}

// TestTimesRoundTrip pins the delta-of-delta codec on the shapes the
// campaign produces (hourly cadence) and the adversarial ones (pre-epoch,
// unsorted, duplicate, min/max deltas).
func TestTimesRoundTrip(t *testing.T) {
	cases := [][]int64{
		nil,
		{0},
		{-1},
		{1588291200e9}, // 2020-05-01
		{5, 5, 5, 5},
		{-86400e9, 0, 86400e9},
		{10, 5, 7, 7, -100, 3},
	}
	hourly := make([]int64, 720)
	for i := range hourly {
		hourly[i] = 1588291200e9 + int64(i)*3600e9
	}
	cases = append(cases, hourly)
	for ci, ts := range cases {
		buf := AppendTimes(nil, ts)
		got, n, err := DecodeTimes(nil, buf, len(ts))
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		if n != len(buf) {
			t.Fatalf("case %d: consumed %d of %d bytes", ci, n, len(buf))
		}
		if len(got) != len(ts) {
			t.Fatalf("case %d: got %d values, want %d", ci, len(got), len(ts))
		}
		for i := range ts {
			if got[i] != ts[i] {
				t.Fatalf("case %d: value %d = %d, want %d", ci, i, got[i], ts[i])
			}
		}
	}
	// Hourly cadence must cost ~1 byte per timestamp after the first two.
	buf := AppendTimes(nil, hourly)
	if len(buf) > len(hourly)+16 {
		t.Fatalf("hourly encoding too large: %d bytes for %d timestamps", len(buf), len(hourly))
	}
}

func TestTimesQuick(t *testing.T) {
	f := func(ts []int64) bool {
		buf := AppendTimes(nil, ts)
		got, _, err := DecodeTimes(nil, buf, len(ts))
		if err != nil || len(got) != len(ts) {
			return false
		}
		for i := range ts {
			if got[i] != ts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// floatBitsEqual compares by bit pattern so NaN payloads count.
func floatBitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestFloatsRoundTrip covers the IEEE-754 corners the sealed-block purity
// invariant depends on: NaNs with distinct payloads, infinities, signed
// zeros, denormals, constants, and monotone ramps.
func TestFloatsRoundTrip(t *testing.T) {
	nanA := math.Float64frombits(0x7ff8000000000001)
	nanB := math.Float64frombits(0xfff0000000000042)
	cases := [][]float64{
		nil,
		{0},
		{math.NaN(), nanA, nanB, math.NaN()},
		{math.Inf(1), math.Inf(-1), 0, math.Copysign(0, -1)},
		{5e-324, 2.2250738585072009e-308, -5e-324}, // denormals
		{42.5, 42.5, 42.5, 42.5},
		{1, 2, 3, 4, 5, 6, 7, 8},
		{123.456, -123.456, 123.456},
		{math.MaxFloat64, -math.MaxFloat64, math.SmallestNonzeroFloat64},
	}
	for ci, vals := range cases {
		buf := AppendFloats(nil, vals)
		got, n, err := DecodeFloats(nil, buf, len(vals))
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		if n != len(buf) {
			t.Fatalf("case %d: consumed %d of %d bytes", ci, n, len(buf))
		}
		if !floatBitsEqual(got, vals) {
			t.Fatalf("case %d: round trip drifted: got %v, want %v", ci, got, vals)
		}
	}
}

func TestFloatsQuick(t *testing.T) {
	f := func(raw []uint64) bool {
		vals := make([]float64, len(raw))
		for i, u := range raw {
			vals[i] = math.Float64frombits(u)
		}
		buf := AppendFloats(nil, vals)
		got, _, err := DecodeFloats(nil, buf, len(vals))
		return err == nil && floatBitsEqual(got, vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestConstantColumnCompresses(t *testing.T) {
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = 250.0
	}
	buf := AppendFloats(nil, vals)
	// First value 8 bytes + 1 bit per repeat + length prefix.
	if len(buf) > 8+1000/8+4 {
		t.Fatalf("constant column too large: %d bytes for %d values", len(buf), len(vals))
	}
}
