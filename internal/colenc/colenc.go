// Package colenc holds the bit-level column codecs behind CLASP's
// compressed storage: a little-endian bit writer/reader, zigzag varints,
// a delta-of-delta timestamp codec, and a Gorilla-lineage XOR float codec
// (Pelkonen et al., "Gorilla: A Fast, Scalable, In-Memory Time Series
// Database", VLDB 2015).
//
// Both the tsdb sealed-block format and the analysis record log encode
// their columns with these primitives. Every codec is lossless: decode
// reproduces the input bit-for-bit, including NaN payloads, signed zeros,
// infinities and denormals (floats travel as raw IEEE-754 bit patterns)
// and pre-epoch timestamps (deltas are zigzag-coded signed integers).
package colenc

import (
	"fmt"
	"math"
	"math/bits"
)

// --- Bit writer ----------------------------------------------------------------

// BitWriter appends MSB-first bit runs to a byte buffer.
type BitWriter struct {
	buf  []byte
	free uint8 // unused low bits in the last byte (0 when buf ends on a byte boundary)
}

// NewBitWriter returns a writer appending to buf (may be nil).
func NewBitWriter(buf []byte) *BitWriter {
	return &BitWriter{buf: buf}
}

// WriteBit appends one bit.
func (w *BitWriter) WriteBit(bit uint64) {
	if w.free == 0 {
		w.buf = append(w.buf, 0)
		w.free = 8
	}
	w.free--
	if bit != 0 {
		w.buf[len(w.buf)-1] |= 1 << w.free
	}
}

// WriteBits appends the low n bits of v, most significant first. n must be
// in [0, 64].
func (w *BitWriter) WriteBits(v uint64, n uint) {
	for n > 0 {
		if w.free == 0 {
			w.buf = append(w.buf, 0)
			w.free = 8
		}
		take := uint(w.free)
		if take > n {
			take = n
		}
		chunk := (v >> (n - take)) & ((1 << take) - 1)
		w.free -= uint8(take)
		w.buf[len(w.buf)-1] |= byte(chunk << w.free)
		n -= take
	}
}

// Bytes returns the encoded buffer. Trailing unused bits are zero.
func (w *BitWriter) Bytes() []byte { return w.buf }

// --- Bit reader ----------------------------------------------------------------

// BitReader consumes MSB-first bit runs from a byte buffer.
type BitReader struct {
	buf []byte
	pos int   // next byte
	rem uint8 // unread low bits of buf[pos-1]... actually of current byte
	cur byte
	err error
}

// NewBitReader returns a reader over buf.
func NewBitReader(buf []byte) *BitReader {
	return &BitReader{buf: buf}
}

// Err reports whether the reader ran past the end of its buffer.
func (r *BitReader) Err() error { return r.err }

// ReadBit reads one bit (0 or 1).
func (r *BitReader) ReadBit() uint64 {
	if r.rem == 0 {
		if r.pos >= len(r.buf) {
			if r.err == nil {
				r.err = fmt.Errorf("colenc: bit reader overrun at byte %d", r.pos)
			}
			return 0
		}
		r.cur = r.buf[r.pos]
		r.pos++
		r.rem = 8
	}
	r.rem--
	return uint64(r.cur>>r.rem) & 1
}

// ReadBits reads n bits (n in [0, 64]), most significant first.
func (r *BitReader) ReadBits(n uint) uint64 {
	var v uint64
	for n > 0 {
		if r.rem == 0 {
			if r.pos >= len(r.buf) {
				if r.err == nil {
					r.err = fmt.Errorf("colenc: bit reader overrun at byte %d", r.pos)
				}
				return 0
			}
			r.cur = r.buf[r.pos]
			r.pos++
			r.rem = 8
		}
		take := uint(r.rem)
		if take > n {
			take = n
		}
		r.rem -= uint8(take)
		v = v<<take | uint64(r.cur>>r.rem)&((1<<take)-1)
		n -= take
	}
	return v
}

// --- Varints -------------------------------------------------------------------

// Zigzag maps a signed integer onto an unsigned one with small absolute
// values staying small (the protobuf sint encoding).
func Zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// Unzigzag inverts Zigzag.
func Unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// AppendUvarint appends a LEB128 varint.
func AppendUvarint(buf []byte, v uint64) []byte {
	for v >= 0x80 {
		buf = append(buf, byte(v)|0x80)
		v >>= 7
	}
	return append(buf, byte(v))
}

// AppendVarint appends a zigzag-coded signed varint.
func AppendVarint(buf []byte, v int64) []byte {
	return AppendUvarint(buf, Zigzag(v))
}

// Uvarint decodes a LEB128 varint from buf, returning the value and the
// number of bytes consumed (0 on truncated input).
func Uvarint(buf []byte) (uint64, int) {
	var v uint64
	var shift uint
	for i, b := range buf {
		if b < 0x80 {
			if i > 9 || i == 9 && b > 1 {
				return 0, 0 // overflow
			}
			return v | uint64(b)<<shift, i + 1
		}
		v |= uint64(b&0x7f) << shift
		shift += 7
	}
	return 0, 0
}

// Varint decodes a zigzag-coded signed varint.
func Varint(buf []byte) (int64, int) {
	u, n := Uvarint(buf)
	return Unzigzag(u), n
}

// --- Timestamp column: delta-of-delta varints -----------------------------------

// AppendTimes appends a delta-of-delta varint encoding of ts (int64
// nanoseconds, arbitrary sign and order) to buf. The first value is stored
// as a zigzag varint, the second as a zigzag delta, and the rest as zigzag
// second differences — a constant-cadence series (hourly campaign samples)
// costs one byte per timestamp after the first two.
func AppendTimes(buf []byte, ts []int64) []byte {
	if len(ts) == 0 {
		return buf
	}
	buf = AppendVarint(buf, ts[0])
	if len(ts) == 1 {
		return buf
	}
	delta := ts[1] - ts[0]
	buf = AppendVarint(buf, delta)
	for i := 2; i < len(ts); i++ {
		d := ts[i] - ts[i-1]
		buf = AppendVarint(buf, d-delta)
		delta = d
	}
	return buf
}

// DecodeTimes decodes n timestamps appended by AppendTimes into dst
// (resliced to length n) and returns dst plus the bytes consumed.
func DecodeTimes(dst []int64, buf []byte, n int) ([]int64, int, error) {
	dst = dst[:0]
	if n == 0 {
		return dst, 0, nil
	}
	off := 0
	v, k := Varint(buf)
	if k == 0 {
		return nil, 0, fmt.Errorf("colenc: truncated timestamp column")
	}
	off += k
	dst = append(dst, v)
	if n == 1 {
		return dst, off, nil
	}
	delta, k := Varint(buf[off:])
	if k == 0 {
		return nil, 0, fmt.Errorf("colenc: truncated timestamp column")
	}
	off += k
	v += delta
	dst = append(dst, v)
	for i := 2; i < n; i++ {
		dd, k := Varint(buf[off:])
		if k == 0 {
			return nil, 0, fmt.Errorf("colenc: truncated timestamp column")
		}
		off += k
		delta += dd
		v += delta
		dst = append(dst, v)
	}
	return dst, off, nil
}

// --- Float column: Gorilla XOR --------------------------------------------------

// FloatEncoder XOR-compresses a float column into a BitWriter. The scheme
// is the Gorilla paper's: a repeated value is one bit; otherwise the XOR
// with the previous value is stored either inside the previous leading/
// trailing-zero window ('10' prefix) or with a fresh window ('11' prefix,
// 6 bits of leading-zero count, 6 bits of significant-bit count). Values
// are raw IEEE-754 bit patterns, so the column is lossless for every
// float64 including NaN payloads.
type FloatEncoder struct {
	w        *BitWriter
	prev     uint64
	leading  uint8
	trailing uint8
	first    bool
}

// NewFloatEncoder returns an encoder writing to w.
func NewFloatEncoder(w *BitWriter) *FloatEncoder {
	return &FloatEncoder{w: w, first: true, leading: 0xff}
}

// Write appends one value.
func (e *FloatEncoder) Write(f float64) {
	v := math.Float64bits(f)
	if e.first {
		e.first = false
		e.w.WriteBits(v, 64)
		e.prev = v
		return
	}
	xor := v ^ e.prev
	e.prev = v
	if xor == 0 {
		e.w.WriteBit(0)
		return
	}
	e.w.WriteBit(1)
	leading := uint8(bits.LeadingZeros64(xor))
	trailing := uint8(bits.TrailingZeros64(xor))
	// 6 bits of leading-zero count caps at 63; clamping only costs
	// compression, never correctness.
	if leading > 63 {
		leading = 63
	}
	if e.leading != 0xff && leading >= e.leading && trailing >= e.trailing {
		// Fits the previous window: '0' + the window's significant bits.
		e.w.WriteBit(0)
		e.w.WriteBits(xor>>e.trailing, uint(64-e.leading-e.trailing))
		return
	}
	e.leading, e.trailing = leading, trailing
	sig := 64 - leading - trailing
	e.w.WriteBit(1)
	e.w.WriteBits(uint64(leading), 6)
	// sig is in [1, 64]; store sig-1 in 6 bits.
	e.w.WriteBits(uint64(sig-1), 6)
	e.w.WriteBits(xor>>trailing, uint(sig))
}

// FloatDecoder decodes a column written by FloatEncoder.
type FloatDecoder struct {
	r        *BitReader
	prev     uint64
	leading  uint8
	trailing uint8
	first    bool
}

// NewFloatDecoder returns a decoder reading from r.
func NewFloatDecoder(r *BitReader) *FloatDecoder {
	return &FloatDecoder{r: r, first: true}
}

// Read decodes the next value.
func (d *FloatDecoder) Read() float64 {
	if d.first {
		d.first = false
		d.prev = d.r.ReadBits(64)
		return math.Float64frombits(d.prev)
	}
	if d.r.ReadBit() == 0 {
		return math.Float64frombits(d.prev)
	}
	if d.r.ReadBit() == 1 {
		d.leading = uint8(d.r.ReadBits(6))
		d.trailing = 64 - d.leading - uint8(d.r.ReadBits(6)) - 1
	}
	sig := 64 - d.leading - d.trailing
	xor := d.r.ReadBits(uint(sig)) << d.trailing
	d.prev ^= xor
	return math.Float64frombits(d.prev)
}

// AppendFloats appends an XOR-compressed float column (the values of one
// field, in order) to buf as a self-contained byte run: a uvarint byte
// length followed by the bit stream.
func AppendFloats(buf []byte, vals []float64) []byte {
	w := NewBitWriter(nil)
	enc := NewFloatEncoder(w)
	for _, v := range vals {
		enc.Write(v)
	}
	body := w.Bytes()
	buf = AppendUvarint(buf, uint64(len(body)))
	return append(buf, body...)
}

// DecodeFloats decodes n values appended by AppendFloats into dst
// (resliced) and returns dst plus the bytes consumed.
func DecodeFloats(dst []float64, buf []byte, n int) ([]float64, int, error) {
	ln, k := Uvarint(buf)
	if k == 0 || uint64(len(buf)-k) < ln {
		return nil, 0, fmt.Errorf("colenc: truncated float column")
	}
	r := NewBitReader(buf[k : k+int(ln)])
	dec := NewFloatDecoder(r)
	dst = dst[:0]
	for i := 0; i < n; i++ {
		dst = append(dst, dec.Read())
	}
	if err := r.Err(); err != nil {
		return nil, 0, err
	}
	return dst, k + int(ln), nil
}
