package orchestrator

import (
	"bytes"
	"compress/gzip"
	"io"
	"strings"
	"testing"
	"time"

	"github.com/clasp-measurement/clasp/internal/analysis"
	"github.com/clasp-measurement/clasp/internal/bgp"
	"github.com/clasp-measurement/clasp/internal/cloud"
	"github.com/clasp-measurement/clasp/internal/flowstats"
	"github.com/clasp-measurement/clasp/internal/netsim"
	"github.com/clasp-measurement/clasp/internal/topology"
	"github.com/clasp-measurement/clasp/internal/tsdb"
)

type fixture struct {
	topo     *topology.Topology
	sim      *netsim.Sim
	platform *cloud.Platform
	bucket   *cloud.Bucket
	orch     *Orchestrator
}

func setup(t *testing.T) *fixture {
	t.Helper()
	topo, err := topology.New(topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sim := netsim.New(topo, nil, netsim.Config{Seed: 31})
	platform := cloud.New(topo, sim, cloud.Pricing{})
	bucket, err := platform.CreateBucket("clasp-results", "us-east1")
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{topo: topo, sim: sim, platform: platform, bucket: bucket,
		orch: New(sim, platform, bucket)}
}

func TestPlanVMs(t *testing.T) {
	// Each server consumes two hourly test slots (download + upload), so
	// the plan is ceil(2n / 17).
	cases := []struct{ n, want int }{
		{0, 0}, {1, 1}, {8, 1}, {9, 2}, {17, 2}, {18, 3}, {100, 12}, {184, 22},
	}
	for _, c := range cases {
		if got := PlanVMs(c.n); got != c.want {
			t.Errorf("PlanVMs(%d) = %d, want %d", c.n, got, c.want)
		}
	}
	testCases := []struct{ tests, want int }{
		{0, 0}, {1, 1}, {17, 1}, {18, 2}, {34, 2}, {35, 3},
	}
	for _, c := range testCases {
		if got := PlanVMsForTests(c.tests); got != c.want {
			t.Errorf("PlanVMsForTests(%d) = %d, want %d", c.tests, got, c.want)
		}
	}
}

func TestUploadSlotOffsets(t *testing.T) {
	f := setup(t)
	servers := f.topo.Servers()[:3]
	sink := &SliceSink{}
	_, err := f.orch.Run(Config{Region: "us-east1", Servers: servers, Days: 1, Seed: 6}, sink)
	if err != nil {
		t.Fatal(err)
	}
	// Within each hour every test occupies its own slot: the download and
	// upload of one server must not collide, and 3 servers x 2 directions
	// must spread over 6 distinct timestamps.
	byHour := make(map[int]map[int64]int)
	upAt := make(map[[2]int64]bool) // (server, hour) -> upload seen
	for _, m := range sink.Out {
		h := m.Time.Hour()
		if byHour[h] == nil {
			byHour[h] = make(map[int64]int)
		}
		byHour[h][m.Time.UnixNano()]++
		if m.Dir == netsim.Upload {
			upAt[[2]int64{int64(m.ServerID), m.Time.Unix()}] = true
		}
	}
	for h, slots := range byHour {
		if len(slots) != len(servers)*TestsPerServerPerHour {
			t.Errorf("hour %d: %d distinct slots, want %d", h, len(slots), len(servers)*TestsPerServerPerHour)
		}
		for at, n := range slots {
			if n != 1 {
				t.Errorf("hour %d: %d tests share slot %d", h, n, at)
			}
		}
	}
}

func TestHourOrderGolden(t *testing.T) {
	// Pins the splitmix64-derived per-hour schedule so future changes to
	// the seed mixing are deliberate.
	golden := map[int][]int{
		0: {1, 7, 0, 2, 4, 6, 5, 3},
		1: {7, 4, 3, 2, 1, 0, 6, 5},
		2: {3, 6, 7, 0, 2, 4, 5, 1},
	}
	for hour, want := range golden {
		got := HourOrder(1, hour, 8)
		if len(got) != len(want) {
			t.Fatalf("hour %d: %d elements, want %d", hour, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("HourOrder(1, %d, 8) = %v, want %v", hour, got, want)
			}
		}
	}
	// Adjacent hours must differ for small seeds (the old xor mixing
	// correlated them).
	for seed := int64(0); seed < 8; seed++ {
		for hour := 0; hour < 23; hour++ {
			a, b := HourOrder(seed, hour, 16), HourOrder(seed, hour+1, 16)
			same := true
			for i := range a {
				if a[i] != b[i] {
					same = false
					break
				}
			}
			if same {
				t.Errorf("seed %d: hours %d and %d share order %v", seed, hour, hour+1, a)
			}
		}
	}
}

func TestRunBasicCampaign(t *testing.T) {
	f := setup(t)
	servers := f.topo.ServersInCountry("US")[:20]
	sink := &SliceSink{}
	rep, err := f.orch.Run(Config{
		Region:  "us-east1",
		Servers: servers,
		Days:    2,
		Seed:    1,
	}, sink)
	if err != nil {
		t.Fatal(err)
	}
	// 20 servers, hourly, 2 days, 2 directions.
	want := 20 * 48 * 2
	if rep.Tests != want || len(sink.Out) != want {
		t.Fatalf("tests = %d / records %d, want %d", rep.Tests, len(sink.Out), want)
	}
	if rep.VMs != 3 {
		t.Errorf("VMs = %d, want 3 (20 servers x 2 tests / 17 per VM)", rep.VMs)
	}
	if rep.MaxVMCPUUtil <= 0 {
		t.Errorf("MaxVMCPUUtil = %v, want > 0 (hourly SoMeta snapshots)", rep.MaxVMCPUUtil)
	}
	if rep.Hours != 48 {
		t.Errorf("hours = %d", rep.Hours)
	}
	// Records are sane.
	downs, ups := 0, 0
	for _, m := range sink.Out {
		if m.Mbps <= 0 {
			t.Fatalf("non-positive throughput: %+v", m)
		}
		if m.Dir == netsim.Download {
			downs++
		} else {
			ups++
		}
		if m.Time.Before(time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)) {
			t.Fatalf("bad time: %+v", m)
		}
	}
	if downs != ups {
		t.Errorf("downloads %d != uploads %d", downs, ups)
	}
	// VMs were cleaned up.
	if vms := f.platform.ListVMs("us-east1"); len(vms) != 0 {
		t.Errorf("VMs left running: %d", len(vms))
	}
	// Costs accrued: compute + egress.
	c := f.platform.Costs()
	if c.ComputeUSD <= 0 || c.EgressUSD <= 0 {
		t.Errorf("costs not accrued: %+v", c)
	}
}

func TestRunErrors(t *testing.T) {
	f := setup(t)
	if _, err := f.orch.Run(Config{Region: "us-east1"}, nil); err == nil {
		t.Error("no servers: want error")
	}
	if _, err := f.orch.Run(Config{Region: "atlantis", Servers: f.topo.Servers()[:1]}, nil); err == nil {
		t.Error("unknown region: want error")
	}
}

func TestRandomisedOrderDiffersAcrossHours(t *testing.T) {
	f := setup(t)
	servers := f.topo.ServersInCountry("US")[:10]
	sink := &SliceSink{}
	_, err := f.orch.Run(Config{Region: "us-west1", Servers: servers, Days: 1, Seed: 7}, sink)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct per-hour test order from the download records and
	// verify at least two hours ordered servers differently.
	orders := make(map[int][]int)
	for _, m := range sink.Out {
		if m.Dir != netsim.Download {
			continue
		}
		h := m.Time.Hour()
		orders[h] = append(orders[h], m.ServerID)
	}
	base := orders[0]
	differs := false
	for h := 1; h < 24; h++ {
		for i := range orders[h] {
			if orders[h][i] != base[i] {
				differs = true
			}
		}
	}
	if !differs {
		t.Error("test order identical across all hours")
	}
}

func TestDifferentialTierPairs(t *testing.T) {
	f := setup(t)
	servers := f.topo.Servers()[:5]
	sink := &SliceSink{}
	rep, err := f.orch.Run(Config{
		Region:  "europe-west1",
		Servers: servers,
		Tiers:   []bgp.Tier{bgp.Premium, bgp.Standard},
		Days:    1,
		Seed:    2,
	}, sink)
	if err != nil {
		t.Fatal(err)
	}
	if rep.VMs != 2 { // one VM pair (5 servers fit in one VM per tier)
		t.Errorf("VMs = %d, want 2", rep.VMs)
	}
	// Same-hour pairs must exist for the tier comparison.
	deltas := analysis.TierDeltas(sink.Out, "europe-west1", analysis.MetricDownload)
	if len(deltas) != 5*24 {
		t.Errorf("paired deltas = %d, want %d", len(deltas), 5*24)
	}
}

func TestCapturesUploadedAndParseable(t *testing.T) {
	f := setup(t)
	servers := f.topo.Servers()[:3]
	rep, err := f.orch.Run(Config{
		Region:       "us-east1",
		Servers:      servers,
		Days:         1,
		Seed:         3,
		CaptureEvery: 10,
	}, &SliceSink{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Captures == 0 {
		t.Fatal("no captures recorded")
	}
	keys := f.bucket.List("us-east1/pcap/")
	if len(keys) == 0 {
		t.Fatal("no captures uploaded")
	}
	// Every capture must decompress and analyse cleanly.
	data, ok := f.bucket.Get(keys[0])
	if !ok {
		t.Fatal("capture object missing")
	}
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	flows, err := flowstats.Analyze(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 1 || flows[0].DataSegments == 0 {
		t.Errorf("capture analysis: %+v", flows)
	}
	// SoMeta records alongside.
	if len(f.bucket.List("us-east1/someta/")) == 0 {
		t.Error("no someta records uploaded")
	}
}

func TestTraceroutesUploaded(t *testing.T) {
	f := setup(t)
	servers := f.topo.Servers()[:3]
	rep, err := f.orch.Run(Config{
		Region:          "us-east1",
		Servers:         servers,
		Days:            2,
		Seed:            4,
		TracerouteEvery: 1,
	}, &SliceSink{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Traceroutes != 6 { // 3 servers x 2 days
		t.Errorf("traceroutes = %d, want 6", rep.Traceroutes)
	}
	keys := f.bucket.List("us-east1/traceroute/")
	if len(keys) != 6 {
		t.Errorf("uploaded traceroutes = %d", len(keys))
	}
	data, _ := f.bucket.Get(keys[0])
	if !strings.Contains(string(data), "hops") {
		t.Error("traceroute JSON malformed")
	}
}

func TestStoreSinkIndexes(t *testing.T) {
	f := setup(t)
	store := tsdb.NewStore()
	_, err := f.orch.Run(Config{
		Region:  "us-west1",
		Servers: f.topo.Servers()[:4],
		Days:    1,
		Seed:    5,
	}, MultiSink{&StoreSink{Store: store}})
	if err != nil {
		t.Fatal(err)
	}
	// 4 servers x 1 tier x 2 directions = 8 series.
	if store.SeriesCount() != 8 {
		t.Errorf("series = %d, want 8", store.SeriesCount())
	}
	got := store.Query("speedtest", tsdb.Tags{"dir": "download"}, time.Time{}, time.Time{})
	if len(got) != 4 {
		t.Errorf("download series = %d", len(got))
	}
	for _, sr := range got {
		if len(sr.Points) != 24 {
			t.Errorf("series %v has %d points", sr.Tags, len(sr.Points))
		}
	}
}

func TestDeterministicCampaign(t *testing.T) {
	f1 := setup(t)
	f2 := setup(t)
	cfg := Config{Region: "us-east1", Servers: nil, Days: 1, Seed: 11}
	cfg.Servers = f1.topo.Servers()[:5]
	s1 := &SliceSink{}
	if _, err := f1.orch.Run(cfg, s1); err != nil {
		t.Fatal(err)
	}
	cfg.Servers = f2.topo.Servers()[:5]
	s2 := &SliceSink{}
	if _, err := f2.orch.Run(cfg, s2); err != nil {
		t.Fatal(err)
	}
	if len(s1.Out) != len(s2.Out) {
		t.Fatal("campaign lengths differ")
	}
	for i := range s1.Out {
		if s1.Out[i] != s2.Out[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, s1.Out[i], s2.Out[i])
		}
	}
}

func TestFixedOrderAblation(t *testing.T) {
	f := setup(t)
	servers := f.topo.Servers()[:6]
	run := func(fixed bool) []int {
		sink := &SliceSink{}
		_, err := f.orch.Run(Config{Region: "us-west1", Servers: servers, Days: 1, Seed: 9, FixedOrder: fixed}, sink)
		if err != nil {
			t.Fatal(err)
		}
		var order []int
		for _, m := range sink.Out {
			if m.Dir == netsim.Download && m.Time.Hour() <= 1 {
				order = append(order, m.ServerID)
			}
		}
		return order
	}
	fixed := run(true)
	// Fixed order: hour 0 and hour 1 have identical server sequences.
	half := len(fixed) / 2
	for i := 0; i < half; i++ {
		if fixed[i] != fixed[half+i] {
			t.Fatalf("fixed order differs across hours at %d", i)
		}
	}
	random := run(false)
	same := true
	for i := 0; i < half; i++ {
		if random[i] != random[half+i] {
			same = false
			break
		}
	}
	if same {
		t.Error("randomised order identical across hours")
	}
}
