package orchestrator

// WorkerPool is a global VM-worker budget shared by every campaign of a
// multi-campaign command. `-parallelism` has always bounded the workers of
// one campaign; when several campaigns run concurrently (report all, costs)
// each would otherwise bring its own budget and the command would run at
// campaigns×parallelism. A single pool threaded through Config.Workers
// keeps the command-wide concurrency at exactly the requested parallelism
// no matter how many campaigns are in flight.
//
// The pool is a plain counting semaphore: workers acquire a slot for the
// duration of one VM's round (or one traceroute batch entry), so slots
// freed by a campaign draining its round barrier are immediately usable by
// another campaign mid-round. Determinism is unaffected — results are
// indexed by deterministic task order and emitted serially per campaign —
// so the pool only changes scheduling, never bytes.
type WorkerPool struct {
	sem chan struct{}
}

// NewWorkerPool returns a pool with the given number of slots (minimum 1).
func NewWorkerPool(slots int) *WorkerPool {
	if slots < 1 {
		slots = 1
	}
	return &WorkerPool{sem: make(chan struct{}, slots)}
}

// Slots reports the pool's capacity.
func (p *WorkerPool) Slots() int { return cap(p.sem) }

func (p *WorkerPool) acquire() { p.sem <- struct{}{} }
func (p *WorkerPool) release() { <-p.sem }

// Wrap returns fn bracketed by a pool slot. A nil pool is a no-op, so
// call sites can wrap unconditionally.
func (p *WorkerPool) Wrap(fn func(int) error) func(int) error {
	if p == nil {
		return fn
	}
	return func(i int) error {
		p.acquire()
		defer p.release()
		return fn(i)
	}
}
