package orchestrator

import (
	"sync"
	"testing"

	"github.com/clasp-measurement/clasp/internal/analysis"
	"github.com/clasp-measurement/clasp/internal/bgp"
	"github.com/clasp-measurement/clasp/internal/tsdb"
)

// TestParallelMatchesSequential is the engine's determinism guarantee: a
// campaign run at any parallelism produces the same record stream, counters
// and artifacts as the sequential run. Run with -race it doubles as the
// data-pipeline race test.
func TestParallelMatchesSequential(t *testing.T) {
	run := func(parallelism int) (*Report, []analysis.Measurement, []string) {
		f := setup(t)
		sink := &SliceSink{}
		rep, err := f.orch.Run(Config{
			Region:          "us-east1",
			Servers:         f.topo.ServersInCountry("US")[:12],
			Tiers:           []bgp.Tier{bgp.Premium, bgp.Standard},
			Days:            2,
			Seed:            17,
			TestDurationSec: 3, // keeps the synthesized captures small
			CaptureEvery:    97,
			TracerouteEvery: 1,
			Parallelism:     parallelism,
		}, sink)
		if err != nil {
			t.Fatal(err)
		}
		return rep, sink.Out, f.bucket.List("")
	}

	seqRep, seqOut, seqKeys := run(1)
	for _, parallelism := range []int{4, 16} {
		rep, out, keys := run(parallelism)
		if len(out) != len(seqOut) {
			t.Fatalf("parallelism %d: %d records, want %d", parallelism, len(out), len(seqOut))
		}
		for i := range out {
			if out[i] != seqOut[i] {
				t.Fatalf("parallelism %d: record %d = %+v, want %+v", parallelism, i, out[i], seqOut[i])
			}
		}
		if rep.Tests != seqRep.Tests || rep.Hours != seqRep.Hours ||
			rep.VMs != seqRep.VMs || rep.Captures != seqRep.Captures ||
			rep.Traceroutes != seqRep.Traceroutes {
			t.Errorf("parallelism %d: report %+v, want %+v", parallelism, rep, seqRep)
		}
		if len(keys) != len(seqKeys) {
			t.Fatalf("parallelism %d: %d bucket objects, want %d", parallelism, len(keys), len(seqKeys))
		}
		for i := range keys {
			if keys[i] != seqKeys[i] {
				t.Errorf("parallelism %d: bucket key %q, want %q", parallelism, keys[i], seqKeys[i])
			}
		}
	}
}

// TestParallelEgressAccounting verifies the accrued bill is identical at
// any parallelism: egress metering runs in the deterministic emit phase,
// so even the floating-point sums match bit for bit.
func TestParallelEgressAccounting(t *testing.T) {
	run := func(parallelism int) float64 {
		f := setup(t)
		_, err := f.orch.Run(Config{
			Region:      "us-west1",
			Servers:     f.topo.Servers()[:9],
			Days:        1,
			Seed:        3,
			Parallelism: parallelism,
		}, &SliceSink{})
		if err != nil {
			t.Fatal(err)
		}
		return f.platform.Costs().EgressUSD
	}
	seq := run(1)
	if seq <= 0 {
		t.Fatal("no egress accrued")
	}
	if par := run(4); par != seq {
		t.Errorf("egress at parallelism 4 = %v, want %v", par, seq)
	}
}

// TestLockedSinkConcurrent hammers a LockedSink-wrapped SliceSink from many
// goroutines; -race verifies the locking, the count verifies delivery.
func TestLockedSinkConcurrent(t *testing.T) {
	inner := &SliceSink{}
	sink := NewLockedSink(inner)
	const goroutines, records = 16, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < records; i++ {
				sink.Record(analysis.Measurement{ServerID: g*records + i, Region: "us-east1"})
			}
		}(g)
	}
	wg.Wait()
	if len(inner.Out) != goroutines*records {
		t.Fatalf("records = %d, want %d", len(inner.Out), goroutines*records)
	}
}

// TestMultiSinkConcurrentFanOut fans records out to a store sink and a
// locked slice sink from concurrent campaigns sharing one MultiSink.
func TestMultiSinkConcurrentFanOut(t *testing.T) {
	store := tsdb.NewStore()
	slice := &SliceSink{}
	sink := MultiSink{&StoreSink{Store: store}, NewLockedSink(slice)}

	f := setup(t)
	servers := f.topo.Servers()
	regions := []string{"us-east1", "us-west1", "europe-west1"}
	var wg sync.WaitGroup
	errs := make([]error, len(regions))
	for i, region := range regions {
		wg.Add(1)
		go func(i int, region string) {
			defer wg.Done()
			_, errs[i] = f.orch.Run(Config{
				Region:      region,
				Servers:     servers[:4],
				Days:        1,
				Seed:        int64(i + 1),
				Parallelism: 2,
			}, sink)
		}(i, region)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("campaign %s: %v", regions[i], err)
		}
	}
	want := len(regions) * 4 * 24 * 2
	if len(slice.Out) != want {
		t.Errorf("fanned-out records = %d, want %d", len(slice.Out), want)
	}
	// 4 servers x 2 dirs x 3 regions = 24 series.
	if store.SeriesCount() != 24 {
		t.Errorf("series = %d, want 24", store.SeriesCount())
	}
}
