package orchestrator

import (
	"time"

	"github.com/clasp-measurement/clasp/internal/faults"
	"github.com/clasp-measurement/clasp/internal/obs"
)

// campaignPhases are the labelled stages of one campaign Run whose
// wall-clock time is accrued into campaign_phase_seconds_total.
var campaignPhases = []string{"warm", "deploy", "measure", "emit", "traceroute"}

// campaignMetrics holds one region's campaign-progress series (see
// DESIGN.md §8). Registration is idempotent, so repeated campaigns in the
// same region accumulate into the same counters. All methods are safe on a
// nil receiver so tests can exercise orchestrator internals without
// constructing metrics.
type campaignMetrics struct {
	scheduled   *obs.Counter
	completed   *obs.Counter
	captures    *obs.Counter
	traceroutes *obs.Counter
	snapshots   *obs.Counter
	phase       map[string]*obs.Gauge

	// Resilience series, only moved by fault-injected campaigns.
	failed          *obs.Counter
	retried         *obs.Counter
	dropped         *obs.Counter
	preemptions     *obs.Counter
	vmCreateRetries *obs.Counter
	breakerOpen     *obs.Counter
	breakerState    *obs.Gauge

	// Progress gauges published per hourly round so a live -debug-addr
	// introspection server can render a campaign's position and ETA.
	hoursTotal *obs.Gauge
	hoursDone  *obs.Gauge
	eta        *obs.Gauge
}

func newCampaignMetrics(region string) *campaignMetrics {
	r := obs.Default()
	m := &campaignMetrics{
		scheduled:   r.Counter("campaign_tests_scheduled_total", "region", region),
		completed:   r.Counter("campaign_tests_completed_total", "region", region),
		captures:    r.Counter("campaign_captures_total", "region", region),
		traceroutes: r.Counter("campaign_traceroutes_total", "region", region),
		snapshots:   r.Counter("campaign_someta_snapshots_total", "region", region),
		phase:       make(map[string]*obs.Gauge, len(campaignPhases)),

		failed:          r.Counter("campaign_tests_failed_total", "region", region),
		retried:         r.Counter("campaign_tests_retried_total", "region", region),
		dropped:         r.Counter("campaign_tests_dropped_total", "region", region),
		preemptions:     r.Counter("campaign_vm_preemptions_total", "region", region),
		vmCreateRetries: r.Counter("campaign_vm_create_retries_total", "region", region),
		breakerOpen:     r.Counter("campaign_breaker_open_rounds_total", "region", region),
		breakerState:    r.Gauge("campaign_breaker_state", "region", region),

		hoursTotal: r.Gauge("campaign_hours_total", "region", region),
		hoursDone:  r.Gauge("campaign_hours_done", "region", region),
		eta:        r.Gauge("campaign_eta_seconds", "region", region),
	}
	for _, p := range campaignPhases {
		m.phase[p] = r.Gauge("campaign_phase_seconds_total", "region", region, "phase", p)
	}
	return m
}

// phaseDone accrues wall-clock seconds since start into one phase's gauge.
// The gauge is cumulative across hourly rounds (a per-phase stopwatch), so
// a campaign's final dump shows where its runtime went.
func (m *campaignMetrics) phaseDone(phase string, start time.Time) {
	if m == nil {
		return
	}
	if g := m.phase[phase]; g != nil {
		g.Add(time.Since(start).Seconds())
	}
}

func (m *campaignMetrics) addScheduled(n int) {
	if m != nil {
		m.scheduled.Add(uint64(n))
	}
}

func (m *campaignMetrics) incCompleted() {
	if m != nil {
		m.completed.Inc()
	}
}

func (m *campaignMetrics) incCaptures() {
	if m != nil {
		m.captures.Inc()
	}
}

func (m *campaignMetrics) incTraceroutes() {
	if m != nil {
		m.traceroutes.Inc()
	}
}

func (m *campaignMetrics) incSnapshots() {
	if m != nil {
		m.snapshots.Inc()
	}
}

// addFaultTally ingests one round's resilience counts.
func (m *campaignMetrics) addFaultTally(t roundTally) {
	if m == nil {
		return
	}
	m.failed.Add(uint64(t.failed))
	m.retried.Add(uint64(t.retried))
	m.dropped.Add(uint64(t.dropped))
	m.preemptions.Add(uint64(t.preemptions))
	m.vmCreateRetries.Add(uint64(t.vmCreateRetries))
}

func (m *campaignMetrics) addDropped(n int) {
	if m != nil {
		m.dropped.Add(uint64(n))
	}
}

func (m *campaignMetrics) addVMCreateRetries(n int) {
	if m != nil {
		m.vmCreateRetries.Add(uint64(n))
	}
}

func (m *campaignMetrics) incBreakerOpenRounds() {
	if m != nil {
		m.breakerOpen.Inc()
	}
}

// setBreakerState records the breaker state as a gauge (0 closed,
// 1 half-open, 2 open — the faults.BreakerState values).
func (m *campaignMetrics) setBreakerState(s faults.BreakerState) {
	if m != nil {
		m.breakerState.Set(float64(s))
	}
}

// setProgress publishes the campaign's position after `done` of `total`
// hourly rounds. The ETA extrapolates the wall clock elapsed since
// wallStart — simulated timestamps and measurement data never feed it, so
// the gauges are pure observers and cannot perturb campaign results.
func (m *campaignMetrics) setProgress(done, total int, wallStart time.Time) {
	if m == nil {
		return
	}
	m.hoursTotal.Set(float64(total))
	m.hoursDone.Set(float64(done))
	if done <= 0 || done >= total {
		m.eta.Set(0)
		return
	}
	elapsed := time.Since(wallStart).Seconds()
	m.eta.Set(elapsed / float64(done) * float64(total-done))
}
