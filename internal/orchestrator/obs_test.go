package orchestrator

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"strconv"
	"testing"
	"time"

	"github.com/clasp-measurement/clasp/internal/netsim"
	"github.com/clasp-measurement/clasp/internal/obs"
	"github.com/clasp-measurement/clasp/internal/someta"
	"github.com/clasp-measurement/clasp/internal/telemetry"
)

func TestLatestSnapshot(t *testing.T) {
	// Regression for the capture path: slicing Snapshots()[len-1:] panicked
	// on an empty collector; latestSnapshot must return nil instead.
	if got := latestSnapshot(nil); got != nil {
		t.Errorf("latestSnapshot(nil) = %v, want nil", got)
	}
	if got := latestSnapshot([]someta.Snapshot{}); got != nil {
		t.Errorf("latestSnapshot(empty) = %v, want nil", got)
	}
	snaps := []someta.Snapshot{
		{Hostname: "a"}, {Hostname: "b"}, {Hostname: "c"},
	}
	got := latestSnapshot(snaps)
	if len(got) != 1 || got[0].Hostname != "c" {
		t.Errorf("latestSnapshot = %+v, want one-element slice holding the newest", got)
	}
}

func TestCaptureTestUploadsLatestSnapshotOnly(t *testing.T) {
	f := setup(t)
	srv := f.topo.Servers()[0]
	at := time.Date(2020, 5, 1, 3, 0, 0, 0, time.UTC)
	collector := someta.NewCollector("vm-cap", nil)
	// Pre-load history: the meta artifact must hold only the snapshot taken
	// at capture time, not the whole campaign's history.
	collector.Snap(at.Add(-2 * time.Hour))
	collector.Snap(at.Add(-1 * time.Hour))

	res := netsim.TestResult{ThroughputMbps: 80, RTTms: 40, LossRate: 0.001}
	cfg := Config{Region: "us-east1", Seed: 3, TestDurationSec: 15}
	if err := f.orch.captureTest(cfg, srv, cfg.withDefaults().Tiers[0], at, res, collector, nil); err != nil {
		t.Fatal(err)
	}

	key := "us-east1/someta/2020-05-01/server-" + strconv.Itoa(srv.ID) + "-premium.json"
	data, ok := f.bucket.Get(key)
	if !ok {
		t.Fatalf("meta artifact %s not uploaded", key)
	}
	snaps, err := someta.ReadJSON(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 {
		t.Fatalf("meta artifact holds %d snapshots, want 1", len(snaps))
	}
	if !snaps[0].Timestamp.Equal(at) {
		t.Errorf("uploaded snapshot at %v, want capture time %v", snaps[0].Timestamp, at)
	}
}

// TestMetricsDoNotChangeResults pins the disabled-path invariant from the
// obs package doc: a campaign produces bit-identical measurements and
// reports whether metrics and tracing are enabled or not — telemetry never
// feeds back into measurement arithmetic. A third run adds the full
// -debug-addr introspection stack (live HTTP server being polled plus a
// background scrape pipeline) and must still match byte for byte.
func TestMetricsDoNotChangeResults(t *testing.T) {
	run := func(enabled, introspect bool, trace *bytes.Buffer) ([]byte, *Report) {
		f := setup(t)
		if enabled {
			obs.SetEnabled(true)
			obs.SetTraceWriter(trace)
			defer func() {
				obs.SetTraceWriter(nil)
				obs.SetEnabled(false)
			}()
		}
		if introspect {
			// Mirror cmd/clasp -debug-addr: background scraper into a
			// self-store plus a live introspection server, polled while the
			// campaign runs to exercise the concurrent read path.
			pipe := telemetry.NewPipeline(telemetry.PipelineConfig{Interval: 5 * time.Millisecond})
			pipe.Start()
			defer pipe.Stop()
			dbg, err := telemetry.StartDebug("127.0.0.1:0", telemetry.Introspection{
				History:  pipe.Store,
				Progress: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer dbg.Close()
			base := "http://" + dbg.Addr().String()
			stop := make(chan struct{})
			done := make(chan struct{})
			go func() {
				defer close(done)
				for {
					select {
					case <-stop:
						return
					default:
					}
					for _, p := range []string{"/metrics", "/progress"} {
						resp, err := http.Get(base + p)
						if err == nil {
							_, _ = io.Copy(io.Discard, resp.Body)
							resp.Body.Close()
						}
					}
				}
			}()
			defer func() {
				// Final poll before teardown: progress gauges must show the
				// finished campaign.
				close(stop)
				<-done
				resp, err := http.Get(base + "/progress")
				if err != nil {
					t.Fatal(err)
				}
				var pr telemetry.ProgressResponse
				if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
					t.Fatal(err)
				}
				resp.Body.Close()
				found := false
				for _, r := range pr.Regions {
					if r.Region == "us-east1" {
						found = true
						if r.HoursTotal != 24 || r.HoursDone != 24 {
							t.Errorf("progress hours = %v/%v, want 24/24", r.HoursDone, r.HoursTotal)
						}
						if r.ETASeconds != 0 {
							t.Errorf("finished campaign ETA = %v, want 0", r.ETASeconds)
						}
					}
				}
				if !found {
					t.Error("no us-east1 entry in /progress after campaign")
				}
			}()
		}
		sink := &SliceSink{}
		rep, err := f.orch.Run(Config{
			Region:          "us-east1",
			Servers:         f.topo.ServersInCountry("US")[:6],
			Days:            1,
			Seed:            99,
			CaptureEvery:    5,
			TracerouteEvery: 1,
			Parallelism:     2,
		}, sink)
		if err != nil {
			t.Fatal(err)
		}
		enc, err := json.Marshal(sink.Out)
		if err != nil {
			t.Fatal(err)
		}
		return enc, rep
	}

	plain, repPlain := run(false, false, nil)
	var trace bytes.Buffer
	instrumented, repObs := run(true, false, &trace)
	var trace2 bytes.Buffer
	introspected, repIntro := run(true, true, &trace2)

	if !bytes.Equal(plain, instrumented) {
		t.Error("measurement stream differs with metrics enabled")
	}
	if !reflect.DeepEqual(repPlain, repObs) {
		t.Errorf("reports differ: %+v vs %+v", repPlain, repObs)
	}
	if !bytes.Equal(plain, introspected) {
		t.Error("measurement stream differs with live introspection + scraper active")
	}
	// MaxVMCPUUtil is host metadata: the someta default probe samples the
	// live goroutine count, which the introspection server's own goroutines
	// legitimately raise. Everything derived from measurements must still
	// match exactly.
	normPlain, normIntro := *repPlain, *repIntro
	normPlain.MaxVMCPUUtil, normIntro.MaxVMCPUUtil = 0, 0
	if !reflect.DeepEqual(&normPlain, &normIntro) {
		t.Errorf("reports differ under introspection: %+v vs %+v", repPlain, repIntro)
	}
	if trace.Len() == 0 {
		t.Fatal("tracing enabled but no span events written")
	}
	// Every trace line must be standalone JSON with the span fields.
	sc := bufio.NewScanner(&trace)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	sawCampaign, lines := false, 0
	for sc.Scan() {
		lines++
		var ev struct {
			Span  string            `json:"span"`
			ID    uint64            `json:"id"`
			DurNS int64             `json:"dur_ns"`
			Attrs map[string]string `json:"attrs"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad span line %q: %v", sc.Text(), err)
		}
		if ev.Span == "campaign" && ev.Attrs["region"] == "us-east1" {
			sawCampaign = true
		}
	}
	if !sawCampaign {
		t.Errorf("no campaign root span among %d events", lines)
	}
}

// TestCampaignMetricsMatchReport cross-checks the campaign counters against
// the report the same Run returns, using deltas so earlier tests in the
// package (which share the default registry) don't interfere.
func TestCampaignMetricsMatchReport(t *testing.T) {
	f := setup(t)
	m := newCampaignMetrics("us-east1")
	before := map[string]uint64{
		"scheduled": m.scheduled.Value(),
		"completed": m.completed.Value(),
		"captures":  m.captures.Value(),
		"trs":       m.traceroutes.Value(),
		"snaps":     m.snapshots.Value(),
	}
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)

	sink := &SliceSink{}
	rep, err := f.orch.Run(Config{
		Region:          "us-east1",
		Servers:         f.topo.ServersInCountry("US")[:5],
		Days:            1,
		Seed:            7,
		CaptureEvery:    4,
		TracerouteEvery: 1,
	}, sink)
	if err != nil {
		t.Fatal(err)
	}

	if d := m.completed.Value() - before["completed"]; d != uint64(rep.Tests) {
		t.Errorf("completed delta = %d, want %d", d, rep.Tests)
	}
	if d := m.scheduled.Value() - before["scheduled"]; d != uint64(rep.Tests) {
		t.Errorf("scheduled delta = %d, want %d (all scheduled tests ran)", d, rep.Tests)
	}
	if d := m.captures.Value() - before["captures"]; d != uint64(rep.Captures) {
		t.Errorf("captures delta = %d, want %d", d, rep.Captures)
	}
	if d := m.traceroutes.Value() - before["trs"]; d != uint64(rep.Traceroutes) {
		t.Errorf("traceroutes delta = %d, want %d", d, rep.Traceroutes)
	}
	// One snapshot per VM-hour plus one per capture.
	wantSnaps := uint64(rep.VMs*rep.Hours + rep.Captures)
	if d := m.snapshots.Value() - before["snaps"]; d != wantSnaps {
		t.Errorf("snapshots delta = %d, want %d", d, wantSnaps)
	}
}
